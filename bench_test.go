// Benchmark harness regenerating every measured artifact of the paper:
//
//   - BenchmarkTableI           — Table I rows (serial vs parallel solve per case)
//   - BenchmarkFig6ThreadSweep  — Fig. 6 (speedup vs thread count, Case 5)
//   - BenchmarkAblation*        — design-choice ablations from DESIGN.md
//
// Under -short (and in plain `go test -bench=.` runs with the default
// -benchtime) the harness uses reduced-size stand-ins for the twelve cases
// so the suite completes in minutes; `go test -bench BenchmarkTableI
// -benchfull` (custom flag) runs the paper-size cases, and cmd/benchtable /
// cmd/speedup print the full paper-formatted outputs.
package repro_test

import (
	"flag"
	"fmt"
	"runtime"
	"testing"

	"repro"
	"repro/internal/statespace"
)

var benchFull = flag.Bool("benchfull", false, "run benchmarks on the paper-size Table-I cases")

// benchCase returns the model for a Table-I case, shrunk unless -benchfull.
func benchCase(b *testing.B, id int) *repro.Model {
	b.Helper()
	spec, err := repro.FindCase(id)
	if err != nil {
		b.Fatal(err)
	}
	if *benchFull {
		m, err := statespace.CachedCase(spec, "testdata/cases")
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	// Reduced stand-in: same port/order *ratio* at ~1/5 the order, same
	// target peak — keeps the per-case character while fitting benchtime.
	shrunk := spec
	shrunk.N = spec.N / 5
	if shrunk.P > shrunk.N {
		shrunk.P = shrunk.N
	}
	m, err := statespace.CachedCase(shrunk, "testdata/cases-mini")
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchThreads() int { return min16(runtime.NumCPU()) }

func min16(v int) int {
	if v > 16 {
		return 16
	}
	return v
}

// BenchmarkTableI regenerates Table I: one sub-benchmark per case for the
// serial solver (τ1) and the parallel solver (τ16).
func BenchmarkTableI(b *testing.B) {
	for _, spec := range repro.TableICases() {
		spec := spec
		m := benchCase(b, spec.ID)
		b.Run(fmt.Sprintf("case%02d/serial", spec.ID), func(b *testing.B) {
			var nl int
			for i := 0; i < b.N; i++ {
				res, err := repro.FindImagEigs(m, repro.SolverOptions{Threads: 1, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				nl = len(res.Crossings)
			}
			b.ReportMetric(float64(nl), "Nlambda")
		})
		b.Run(fmt.Sprintf("case%02d/parallel", spec.ID), func(b *testing.B) {
			t := benchThreads()
			var nl int
			for i := 0; i < b.N; i++ {
				res, err := repro.FindImagEigs(m, repro.SolverOptions{Threads: t, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				nl = len(res.Crossings)
			}
			b.ReportMetric(float64(nl), "Nlambda")
			b.ReportMetric(float64(t), "threads")
		})
	}
}

// BenchmarkFig6ThreadSweep regenerates Fig. 6: Case-5 solve time for every
// thread count 1…16. Speedup = time(T1)/time(Tn).
func BenchmarkFig6ThreadSweep(b *testing.B) {
	m := benchCase(b, 5)
	for t := 1; t <= benchThreads(); t++ {
		t := t
		b.Run(fmt.Sprintf("T%02d", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.FindImagEigs(m, repro.SolverOptions{Threads: t, Seed: int64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStaticGrid compares the paper's dynamic scheduler with
// the statically pre-distributed shift grid it argues against (Sec. IV).
func BenchmarkAblationStaticGrid(b *testing.B) {
	m := benchCase(b, 5)
	t := benchThreads()
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repro.FindImagEigs(m, repro.SolverOptions{Threads: t, Seed: int64(i + 1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("staticgrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repro.FindImagEigsStaticGrid(m, repro.SolverOptions{Threads: t, Seed: int64(i + 1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationKappa sweeps the initial-subdivision factor κ (Sec.
// IV-A prescribes κ ≥ 2).
func BenchmarkAblationKappa(b *testing.B) {
	m := benchCase(b, 5)
	t := benchThreads()
	for _, kappa := range []int{2, 4, 8} {
		kappa := kappa
		b.Run(fmt.Sprintf("kappa%d", kappa), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.FindImagEigs(m, repro.SolverOptions{
					Threads: t, Kappa: kappa, Seed: int64(i + 1),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSMWApply isolates the claim behind Eq. 6: the structured
// shift-invert apply is O(n·p) while a dense solve is O(n²) per apply after
// an O(n³) factorization.
func BenchmarkAblationSMWApply(b *testing.B) {
	m := benchCase(b, 1)
	op, err := repro.NewHamiltonian(m, repro.Scattering)
	if err != nil {
		b.Fatal(err)
	}
	theta := complex(0, 0.5*m.MaxPoleMagnitude())
	b.Run("structured-setup+apply", func(b *testing.B) {
		x := make([]complex128, op.Dim())
		y := make([]complex128, op.Dim())
		for i := range x {
			x[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		for i := 0; i < b.N; i++ {
			so, err := op.ShiftInvert(theta)
			if err != nil {
				b.Fatal(err)
			}
			if err := so.Apply(y, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("structured-apply-only", func(b *testing.B) {
		so, err := op.ShiftInvert(theta)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]complex128, op.Dim())
		y := make([]complex128, op.Dim())
		for i := range x {
			x[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := so.Apply(y, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-apply", func(b *testing.B) {
		dm := op.Dense().ToComplex()
		x := make([]complex128, op.Dim())
		for i := range x {
			x[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = dm.MulVec(x)
		}
	})
}

// BenchmarkAblationFullEig measures the O(n³) dense full eigensolution the
// paper replaces, on a reduced case (the full-size baseline would dominate
// the suite).
func BenchmarkAblationFullEig(b *testing.B) {
	spec, err := repro.FindCase(1)
	if err != nil {
		b.Fatal(err)
	}
	spec.N = 120
	spec.P = 4
	m, err := statespace.CachedCase(spec, "testdata/cases-mini-eig")
	if err != nil {
		b.Fatal(err)
	}
	op, err := repro.NewHamiltonian(m, repro.Scattering)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dense-full-eig", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := op.FullImagEigs(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multishift-arnoldi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repro.FindImagEigs(m, repro.SolverOptions{Threads: 1, Seed: int64(i + 1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVectorFitting measures the identification substrate (Sec. II).
func BenchmarkVectorFitting(b *testing.B) {
	device, err := repro.GenerateModel(99, repro.GenOptions{Ports: 2, Order: 24, TargetPeak: 0.95})
	if err != nil {
		b.Fatal(err)
	}
	samples := repro.SampleModel(device, repro.LogGrid(3e7, 3e10, 150))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.FitVector(samples, 24, repro.VFOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnpcheckFit measures the snpcheck fit stage on a synthetic
// many-port (8-port) sweep — the workload whose per-column SVD-heavy LS
// solves the pool-routed PhaseFit batches overlap. T01 is the sequential
// baseline; T08 runs the same fit on an 8-worker pool (bit-identical
// output; cmd/fleetbench's vectfit A/B records the wall-time ratio in
// BENCH_fleet.json).
func BenchmarkSnpcheckFit(b *testing.B) {
	device, err := repro.GenerateModel(7, repro.GenOptions{Ports: 8, Order: 48, TargetPeak: 1.02})
	if err != nil {
		b.Fatal(err)
	}
	samples := repro.SampleModel(device, repro.LogGrid(1e8, 1e11, 40))
	for _, threads := range []int{1, 8} {
		b.Run(fmt.Sprintf("T%02d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.FitVector(samples, 6, repro.VFOptions{Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnforcement measures the full characterize→enforce loop.
func BenchmarkEnforcement(b *testing.B) {
	m, err := repro.GenerateModel(44, repro.GenOptions{Ports: 2, Order: 60, TargetPeak: 1.05})
	if err != nil {
		b.Fatal(err)
	}
	opts := repro.EnforceOptions{Char: repro.CharOptions{
		Core: repro.SolverOptions{Threads: benchThreads(), Seed: 5},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Enforce(m, opts); err != nil {
			b.Fatal(err)
		}
	}
}
