// Command passcheck is the CLI front end of the passivity tools: it builds
// (or loads) a macromodel, runs the parallel Hamiltonian characterization,
// optionally enforces passivity, and prints a report.
//
// Usage examples:
//
//	passcheck -case 5 -threads 16
//	passcheck -n 1200 -p 24 -peak 1.05 -seed 3 -enforce
//	passcheck -n 800 -p 8 -peak 0.95 -verify
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"runtime"

	"repro"
	"repro/internal/statespace"
)

func main() {
	caseID := flag.Int("case", 0, "Table-I benchmark case (1-12); overrides -n/-p/-peak")
	order := flag.Int("n", 400, "dynamic order of the generated model")
	ports := flag.Int("p", 8, "port count")
	peak := flag.Float64("peak", 1.05, "calibrated peak singular value (>1: non-passive)")
	seed := flag.Int64("seed", 1, "generator seed")
	threads := flag.Int("threads", runtime.NumCPU(), "solver worker threads")
	enforce := flag.Bool("enforce", false, "run passivity enforcement if violations are found")
	verify := flag.Bool("verify", false, "cross-check the report with a frequency sweep")
	cacheDir := flag.String("cache", "testdata/cases", "model cache directory for -case")
	jsonOut := flag.String("json", "", "write the characterization report as JSON to this file ('-' = stdout)")
	flag.Parse()

	var model *repro.Model
	var err error
	if *caseID != 0 {
		spec, ferr := repro.FindCase(*caseID)
		if ferr != nil {
			log.Fatal(ferr)
		}
		fmt.Printf("Table-I case %d: n=%d p=%d (paper Nλ=%d)\n", spec.ID, spec.N, spec.P, spec.PaperNlambda)
		model, err = statespace.CachedCase(spec, *cacheDir)
	} else {
		model, err = repro.GenerateModel(*seed, repro.GenOptions{
			Ports: *ports, Order: *order, TargetPeak: *peak,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d ports, %d states\n", model.P, model.Order())

	charOpts := repro.CharOptions{Core: repro.SolverOptions{Threads: *threads, Seed: *seed}}
	report, err := repro.Characterize(model, charOpts)
	if err != nil {
		log.Fatal(err)
	}
	printReport(report)

	if *jsonOut != "" {
		var w io.Writer = os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := report.WriteJSON(w); err != nil {
			log.Fatal(err)
		}
	}

	if *verify {
		if err := repro.VerifyBySampling(model, report, 800); err != nil {
			fmt.Println("sweep verification: FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("sweep verification: OK")
	}

	if *enforce && !report.Passive {
		passive, erep, err := repro.Enforce(model, repro.EnforceOptions{Char: charOpts})
		if err != nil {
			if errors.Is(err, repro.ErrEnforcementFailed) && erep != nil {
				// The budget ran out but the partially-enforced model and its
				// last characterization survive — report the progress made.
				fmt.Printf("\nenforcement FAILED after %d iterations: worst σ %.6f → %.6f, relative residue change %.4g\n",
					erep.Iterations, erep.InitialWorst, erep.FinalWorst, erep.ResidueChange)
				os.Exit(1)
			}
			log.Fatal(err)
		}
		fmt.Printf("\nenforcement: %d iterations, relative residue change %.4g\n",
			erep.Iterations, erep.ResidueChange)
		fmt.Printf("final model passive: %v\n", erep.FinalReport.Passive)
		_ = passive
	}
}

func printReport(r *repro.Report) {
	fmt.Printf("searched band: [0, %.6g] rad/s\n", r.OmegaMax)
	fmt.Printf("N_lambda (imaginary Hamiltonian eigenvalues): %d\n", len(r.Crossings))
	fmt.Printf("solver: %d shifts, %d restarts, %d applies, %d tentative shifts deleted, %v\n",
		r.Solver.ShiftsProcessed, r.Solver.Restarts, r.Solver.OpApplies,
		r.Solver.TentativeDeleted, r.Solver.Elapsed)
	if r.Passive {
		fmt.Println("verdict: PASSIVE")
		return
	}
	fmt.Println("verdict: NOT PASSIVE")
	for _, b := range r.Violations() {
		hi := fmt.Sprintf("%.6g", b.Hi)
		if math.IsInf(b.Hi, 1) {
			hi = "inf"
		}
		fmt.Printf("  violation band [%.6g, %s] rad/s  peak σ=%.6f @ ω=%.6g\n",
			b.Lo, hi, b.PeakSigma, b.PeakOmega)
	}
}
