// Command speedup regenerates Fig. 6 of the paper: the speedup factor
// η_t = τ̄₁/τ_t versus the number of worker threads t for benchmark Case 5,
// with mean and standard deviation over independent runs, printed as a
// series and as an ASCII plot against the ideal line.
//
//	speedup -runs 20 -maxthreads 16
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/statespace"
)

func main() {
	caseID := flag.Int("case", 5, "Table-I case to use (paper: Case 5)")
	runs := flag.Int("runs", 20, "independent runs per thread count (paper: 20)")
	maxT := flag.Int("maxthreads", min(16, runtime.NumCPU()), "largest thread count")
	cacheDir := flag.String("cache", "testdata/cases", "model cache directory")
	flag.Parse()

	spec, err := repro.FindCase(*caseID)
	if err != nil {
		log.Fatal(err)
	}
	model, err := statespace.CachedCase(spec, *cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 6 reproduction — Case %d (n=%d, p=%d), %d runs per point\n",
		spec.ID, spec.N, spec.P, *runs)

	// Serial reference τ̄₁ (averaged over the same number of runs).
	var tau1 float64
	for r := 0; r < *runs; r++ {
		start := time.Now()
		if _, err := repro.FindImagEigs(model, repro.SolverOptions{Threads: 1, Seed: int64(100 + r)}); err != nil {
			log.Fatal(err)
		}
		tau1 += time.Since(start).Seconds()
	}
	tau1 /= float64(*runs)
	fmt.Printf("serial reference τ̄₁ = %.3fs\n\n", tau1)

	type point struct {
		t    int
		mean float64
		std  float64
	}
	var pts []point
	fmt.Printf("%7s %10s %10s %8s\n", "threads", "η̄ (mean)", "σ (std)", "ideal")
	for t := 1; t <= *maxT; t++ {
		etas := make([]float64, *runs)
		for r := 0; r < *runs; r++ {
			start := time.Now()
			if _, err := repro.FindImagEigs(model, repro.SolverOptions{Threads: t, Seed: int64(1000*t + r)}); err != nil {
				log.Fatal(err)
			}
			etas[r] = tau1 / time.Since(start).Seconds()
		}
		var mean float64
		for _, e := range etas {
			mean += e
		}
		mean /= float64(*runs)
		var varr float64
		for _, e := range etas {
			varr += (e - mean) * (e - mean)
		}
		std := math.Sqrt(varr / float64(*runs))
		pts = append(pts, point{t, mean, std})
		fmt.Printf("%7d %10.2f %10.2f %8d\n", t, mean, std, t)
	}

	// ASCII plot: speedup vs threads against the ideal diagonal.
	fmt.Println("\nspeedup vs threads ('o' measured ±σ bar, '.' ideal):")
	maxY := float64(*maxT) + 1
	height := 18
	for row := height; row >= 0; row-- {
		y := maxY * float64(row) / float64(height)
		line := make([]byte, *maxT*4+2)
		for i := range line {
			line[i] = ' '
		}
		for _, p := range pts {
			x := (p.t - 1) * 4
			if math.Abs(float64(p.t)-y) < maxY/float64(2*height) {
				line[x] = '.'
			}
			if p.mean-p.std <= y && y <= p.mean+p.std {
				line[x] = '|'
			}
			if math.Abs(p.mean-y) < maxY/float64(2*height) {
				line[x] = 'o'
			}
		}
		fmt.Printf("%5.1f %s\n", y, strings.TrimRight(string(line), " "))
	}
	fmt.Printf("      %s\n", strings.Repeat("-", *maxT*4))
	fmt.Print("      ")
	for t := 1; t <= *maxT; t++ {
		fmt.Printf("%-4d", t)
	}
	fmt.Println()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
