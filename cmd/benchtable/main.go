// Command benchtable regenerates Table I of the paper: for each of the
// twelve benchmark cases it reports the dynamic order n, port count p,
// detected number of imaginary Hamiltonian eigenvalues Nλ, the serial
// solve time τ̄₁, the T-thread mean and worst-case times τ̄_T / τ_T^max,
// and the average speedup η̄_T = τ̄₁/τ̄_T.
//
// Absolute times depend on the host; the reproduction target is the shape:
// all cases solve in seconds, with substantial (occasionally superlinear)
// speedups from the dynamic shift scheduler.
//
//	benchtable -threads 16 -runs 3 -cases 1,2,3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/statespace"
)

// tableRow is the machine-readable form of one Table-I line, written to the
// -json file so the perf trajectory across PRs is trackable (ns, not
// seconds, to match `go test -bench` output units).
type tableRow struct {
	Case         int     `json:"case"`
	N            int     `json:"n"`
	P            int     `json:"p"`
	Threads      int     `json:"threads"`
	Nlambda      int     `json:"nlambda"`
	PaperNlambda int     `json:"nlambda_paper"`
	Tau1NS       int64   `json:"tau1_ns"`
	TauTMeanNS   int64   `json:"tauT_mean_ns"`
	TauTMaxNS    int64   `json:"tauT_max_ns"`
	Speedup      float64 `json:"speedup"`
}

func main() {
	threads := flag.Int("threads", min(16, runtime.NumCPU()), "parallel thread count T")
	runs := flag.Int("runs", 3, "independent runs for the parallel mean/worst-case")
	serialRuns := flag.Int("serialruns", 1, "runs for the serial reference")
	cases := flag.String("cases", "", "comma-separated case IDs (default: all twelve)")
	cacheDir := flag.String("cache", "testdata/cases", "model cache directory")
	jsonOut := flag.String("json", "BENCH_table1.json", "machine-readable output file (empty to disable)")
	flag.Parse()

	specs := repro.TableICases()
	if *cases != "" {
		var sel []repro.CaseSpec
		for _, tok := range strings.Split(*cases, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				log.Fatalf("bad case id %q", tok)
			}
			spec, err := repro.FindCase(id)
			if err != nil {
				log.Fatal(err)
			}
			sel = append(sel, spec)
		}
		specs = sel
	}

	fmt.Printf("Table I reproduction — T=%d threads, %d parallel runs (host: %d cores)\n",
		*threads, *runs, runtime.NumCPU())
	fmt.Printf("%-7s %5s %4s %8s %4s | %9s %9s %9s %8s | %6s\n",
		"Case", "n", "p", "Nλ(pap)", "Nλ", "τ1[s]", "τT[s]", "τTmax[s]", "η", "shifts")

	var rows []tableRow
	for _, spec := range specs {
		model, err := statespace.CachedCase(spec, *cacheDir)
		if err != nil {
			log.Fatalf("case %d: %v", spec.ID, err)
		}
		// Serial reference.
		var tau1 float64
		var nl int
		for r := 0; r < *serialRuns; r++ {
			start := time.Now()
			res, err := repro.FindImagEigs(model, repro.SolverOptions{Threads: 1, Seed: int64(1000 + r)})
			if err != nil {
				log.Fatalf("case %d serial: %v", spec.ID, err)
			}
			tau1 += time.Since(start).Seconds()
			nl = len(res.Crossings)
		}
		tau1 /= float64(*serialRuns)
		// Parallel runs.
		var sum, worst float64
		for r := 0; r < *runs; r++ {
			start := time.Now()
			res, err := repro.FindImagEigs(model, repro.SolverOptions{Threads: *threads, Seed: int64(2000 + r)})
			if err != nil {
				log.Fatalf("case %d parallel: %v", spec.ID, err)
			}
			el := time.Since(start).Seconds()
			sum += el
			if el > worst {
				worst = el
			}
			if len(res.Crossings) != nl {
				fmt.Printf("  note: case %d run %d found Nλ=%d (serial found %d)\n",
					spec.ID, r, len(res.Crossings), nl)
			}
		}
		mean := sum / float64(*runs)
		fmt.Printf("Case %-2d %5d %4d %8d %4d | %9.3f %9.3f %9.3f %7.2fx | \n",
			spec.ID, spec.N, spec.P, spec.PaperNlambda, nl, tau1, mean, worst, tau1/mean)
		rows = append(rows, tableRow{
			Case: spec.ID, N: spec.N, P: spec.P, Threads: *threads,
			Nlambda: nl, PaperNlambda: spec.PaperNlambda,
			Tau1NS:     int64(tau1 * 1e9),
			TauTMeanNS: int64(mean * 1e9),
			TauTMaxNS:  int64(worst * 1e9),
			Speedup:    tau1 / mean,
		})
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d cases)\n", *jsonOut, len(rows))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
