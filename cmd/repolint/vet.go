package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"repro/internal/analysis"
)

// vetConfig is the package description `go vet` hands a -vettool via a
// .cfg file — the subset of fields repolint needs. The compiler has
// already built export data for every dependency, so vet mode
// type-checks against that instead of re-loading source.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers `go vet`'s -V=full probe. The build ID must
// change when the tool's behavior does, so it hashes the executable.
func printVersion() {
	var sum [8]byte
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h := sha256.Sum256(data)
			copy(sum[:], h[:8])
		}
	}
	fmt.Printf("repolint version devel buildID=%x\n", sum)
}

// vetMode lints the single package described by cfgPath and returns the
// process exit code: 0 clean, 2 findings, 1 internal failure.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// go vet expects the facts file regardless of the outcome; the suite
	// exchanges no facts, so an empty one satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	findings, err := lintVetPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// lintVetPackage parses and type-checks the cfg's files against the
// compiler's export data and runs the suite over them.
func lintVetPackage(cfg *vetConfig) ([]analysis.Finding, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	pkg := &analysis.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Types: tpkg, Info: info}
	return analysis.RunAnalyzers(fset, pkg, suite())
}
