package main

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// TestModuleIsClean is the in-tree mirror of the CI gate: the whole
// module must be free of suite findings. A failure here names the
// violated invariant and its location; fix the code or add a documented
// //lint:ignore directive at the finding site.
func TestModuleIsClean(t *testing.T) {
	root, modPath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(modPath, root)
	paths, err := loader.ModulePackages(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no packages found in module")
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		findings, err := analysis.RunAnalyzers(loader.Fset, pkg, suite())
		if err != nil {
			t.Fatalf("running suite on %s: %v", path, err)
		}
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(root, f.Position.Filename); err == nil {
				rel.Position.Filename = r
			}
			t.Errorf("%s", rel)
		}
	}
}

// TestSuiteIsComplete pins the analyzer roster: a new analyzer must be
// registered here and in DESIGN.md's invariant table.
func TestSuiteIsComplete(t *testing.T) {
	want := []string{"ctxflow", "detfloat", "doccheck", "pinrelease", "pooltask"}
	got := suite()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no Doc", a.Name)
		}
	}
}
