// Command repolint runs the repository's compile-time invariant suite —
// the analyzers under internal/analysis — over module packages. It is
// both a standalone linter and a `go vet` tool:
//
//	go run ./cmd/repolint ./...                  # standalone, whole module
//	go run ./cmd/repolint ./internal/core        # one package
//	go run ./cmd/repolint -list                  # describe the analyzers
//	go vet -vettool=$(which repolint) ./...      # vet-tool mode
//
// Findings print one per line as file:line:col: analyzer: message, and
// any finding makes the exit status non-zero, so CI can gate on it.
// Deliberate exceptions are suppressed in source with a documented
// directive: //lint:ignore <analyzer>[,<analyzer>] <reason>.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/detfloat"
	"repro/internal/analysis/doccheck"
	"repro/internal/analysis/pinrelease"
	"repro/internal/analysis/pooltask"
)

// suite is every analyzer repolint runs, sorted by name.
func suite() []*analysis.Analyzer {
	as := []*analysis.Analyzer{
		ctxflow.Analyzer,
		detfloat.Analyzer,
		doccheck.Analyzer,
		pinrelease.Analyzer,
		pooltask.Analyzer,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

func main() {
	args := os.Args[1:]
	// go vet's tool protocol: version probe, flag discovery, then a
	// .cfg file describing one package.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(vetMode(args[n-1]))
	}
	os.Exit(standalone(args))
}

// standalone lints the given package patterns (default ./...) against
// the enclosing module. Returns the process exit code.
func standalone(args []string) int {
	patterns := []string{"./..."}
	if len(args) > 0 {
		if args[0] == "-list" || args[0] == "--list" {
			for _, a := range suite() {
				fmt.Printf("%s: %s\n", a.Name, a.Doc)
			}
			return 0
		}
		patterns = args
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	root, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	loader := analysis.NewLoader(modPath, root)
	paths, err := resolvePatterns(loader, cwd, root, modPath, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	var all []analysis.Finding
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		fs, err := analysis.RunAnalyzers(loader.Fset, pkg, suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		all = append(all, fs...)
	}
	for _, f := range all {
		fmt.Println(f)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

// resolvePatterns maps command-line package patterns — ./..., dir/...,
// plain directories, or import paths — to module import paths.
func resolvePatterns(loader *analysis.Loader, cwd, root, modPath string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(ps ...string) {
		for _, p := range ps {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ps, err := loader.ModulePackages(root)
			if err != nil {
				return nil, err
			}
			add(ps...)
		case strings.HasSuffix(pat, "/..."):
			dir := filepath.Join(cwd, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			ps, err := loader.ModulePackages(dir)
			if err != nil {
				return nil, err
			}
			add(ps...)
		case strings.HasPrefix(pat, modPath):
			add(pat)
		default:
			dir := filepath.Join(cwd, filepath.FromSlash(pat))
			rel, err := filepath.Rel(root, dir)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("package pattern %q is outside module %s", pat, modPath)
			}
			if rel == "." {
				add(modPath)
			} else {
				add(modPath + "/" + filepath.ToSlash(rel))
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
