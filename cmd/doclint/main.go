// Command doclint is the documentation gate of the CI doc-lint stage: it
// parses every non-test Go file under the given root (default ".") and
// fails — one finding per line, non-zero exit — when a package lacks a
// package-level doc comment or an exported top-level identifier (function,
// method on an exported type, type, const, var) lacks a doc comment. A
// doc comment on a grouped const/var/type declaration covers the group.
//
//	go run ./cmd/doclint        # lint the repository
//	go run ./cmd/doclint ./internal
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := lintTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintTree walks root for directories containing Go files and lints each
// as a package. Hidden directories, testdata, and vendor are skipped.
func lintTree(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	return findings, nil
}

// lintDir lints the non-test files of one directory.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for name, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
				break
			}
		}
		if !hasPkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s missing package doc comment", dir, name))
		}
		for fname, f := range pkg.Files {
			findings = append(findings, lintFile(fset, fname, f)...)
		}
	}
	return findings, nil
}

// lintFile reports every undocumented exported top-level identifier of one
// parsed file.
func lintFile(fset *token.FileSet, fname string, f *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s missing doc comment", fname, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv := receiverType(d); recv != "" {
				if !ast.IsExported(recv) {
					continue // method on an unexported type: not API surface
				}
				report(d.Pos(), "method", recv+"."+d.Name.Name)
				continue
			}
			report(d.Pos(), "function", d.Name.Name)
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "const/var", n.Name)
						}
					}
				}
			}
		}
	}
	return findings
}

// receiverType returns the bare receiver type name of a method ("" for
// plain functions), unwrapping pointers and type parameters.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return "(unknown)"
		}
	}
}
