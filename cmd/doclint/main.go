// Command doclint is a deprecated shim: the documentation gate moved
// into the repolint analyzer suite as internal/analysis/doccheck, so one
// driver runs it alongside the determinism, pin/release, context, and
// scheduler checks. This shim keeps the old invocation working — it runs
// just the doccheck analyzer over the given root (default ".") with the
// old one-finding-per-line output and exit codes — and will be removed
// once nothing calls it.
//
//	go run ./cmd/repolint ./...   # the replacement
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/doccheck"
)

func main() {
	fmt.Fprintln(os.Stderr, "doclint: deprecated, use `go run ./cmd/repolint ./...` (doccheck analyzer)")
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	root, err := filepath.Abs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	mroot, modPath, err := analysis.FindModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(modPath, mroot)
	paths, err := loader.ModulePackages(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	count := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		findings, err := analysis.RunAnalyzers(loader.Fset, pkg, []*analysis.Analyzer{doccheck.Analyzer})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			count++
		}
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", count)
		os.Exit(1)
	}
}
