// Command passivityd is the characterization-as-a-service daemon: one
// long-running process owning one fleet engine (and hence one worker pool
// sized to the machine), fronted by the HTTP API of internal/server.
//
//	POST   /v1/jobs             submit a JSON model spec or a .snp stream
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job state + report once finished
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/events SSE: progress, crossings-as-found, report
//	GET    /healthz             liveness (503 while draining)
//	GET    /status              pool, admission, phase, cache, job state
//
// Submissions map onto the engine's admission control and scheduler:
// priority/weight select the job's class and fairness share, a full
// fail-fast queue answers 429, and drain (SIGTERM/SIGINT) stops the
// listener, refuses new submits with 503, lets in-flight jobs finish
// (bounded by -drain-timeout), then exits.
//
// With -store, every job is journaled to an append-only, fsync'd,
// CRC-framed log and survives daemon restarts — including SIGKILL
// mid-solve: on boot, terminal jobs are served from their persisted
// document and event history, incomplete jobs resume from their last
// committed checkpoint and finish with a report bit-identical to an
// uninterrupted run's (the kill-and-restart harness in crash_test.go
// proves this end to end).
//
// Usage:
//
//	passivityd -addr :8080 -workers 8 -max-queued 32 -fail-fast -store jobs.jlog
//
// Submit and watch:
//
//	curl -s localhost:8080/v1/jobs -d '{"model":{"case":{"id":1,"order":40}}}'
//	curl -N localhost:8080/v1/jobs/job-1/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "passivityd:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("passivityd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "shared worker-pool width")
	maxQueued := fs.Int("max-queued", 0, "admission cap on in-flight jobs (0 = unbounded)")
	failFast := fs.Bool("fail-fast", false, "answer 429 when the admission queue is full instead of blocking the submit")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "bound on waiting for in-flight jobs at shutdown")
	order := fs.Int("order", 20, "default per-column Vector Fitting order for .snp submissions")
	storePath := fs.String("store", "", "durable job-log path: jobs survive restarts, incomplete jobs resume from their last checkpoint (empty = no persistence)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	engine := fleet.NewEngine(fleet.EngineOptions{
		Workers:   *workers,
		MaxQueued: *maxQueued,
		FailFast:  *failFast,
	})
	defer engine.Close()

	cfg := server.Config{Engine: engine, FitOrder: *order}
	if *storePath != "" {
		st, err := store.Open(*storePath)
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		defer st.Close()
		cfg.Store = st
	}
	// Jobs deliberately do NOT descend from the signal context: drain
	// means "finish what you started", not "cancel everything". The
	// drain-timeout fallback cancels stragglers via srv.DrainJobs's ctx.
	srv := server.New(cfg)
	if cfg.Store != nil {
		fmt.Fprintf(out, "passivityd: recovered %d job(s) from %s\n", srv.RecoveredJobs(), *storePath)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(out, "passivityd: listening on %s (%d workers, max-queued %d)\n",
		ln.Addr(), engine.Workers(), *maxQueued)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "passivityd: draining (in-flight jobs finish; new submits get 503)")
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.DrainJobs(dctx); err != nil {
		fmt.Fprintln(out, "passivityd:", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		return err
	}
	return nil
}
