// Kill-and-restart harness: the durability acceptance test for the -store
// flag. A child passivityd (this test binary re-exec'd in daemon mode) is
// SIGKILLed at seeded-random delays mid-solve, restarted on the same store,
// and killed again until the job finally completes; the surviving report
// must be gob-identical to one from an uninterrupted daemon. SIGKILL (not
// SIGTERM) means no drain, no deferred Close, no atexit flushing — the
// store sees exactly what fsync committed, including torn tails.
//
// The timeline (spawns, kills, recoveries) is appended to the file named by
// $CRASH_HARNESS_LOG when set (CI uploads it as an artifact on failure),
// else to a file under the test's TempDir.
package main

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

const crashChildEnv = "PASSIVITYD_CRASH_CHILD"

// TestMain doubles as the child entry point: with PASSIVITYD_CRASH_CHILD=1
// the test binary IS passivityd (same run() as the real command), so the
// harness crashes the genuine daemon code path, not a mock.
func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "passivityd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// harnessLog is the shared crash timeline, written both to the artifact
// file and (via t.Logf on the printf path's callers) to the test log.
type harnessLog struct {
	mu sync.Mutex
	f  *os.File
}

func openHarnessLog(t *testing.T) *harnessLog {
	t.Helper()
	path := os.Getenv("CRASH_HARNESS_LOG")
	var f *os.File
	var err error
	if path != "" {
		f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	} else {
		path = filepath.Join(t.TempDir(), "crash-harness.log")
		f, err = os.Create(path)
	}
	if err != nil {
		t.Fatalf("open harness log: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	t.Logf("crash-harness timeline: %s", path)
	return &harnessLog{f: f}
}

func (l *harnessLog) printf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.f, "%s ", time.Now().Format("15:04:05.000"))
	fmt.Fprintf(l.f, format, args...)
	fmt.Fprintln(l.f)
}

// Write lets the child's stderr stream straight into the timeline.
func (l *harnessLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Write(p)
}

// child is one spawned passivityd process.
type child struct {
	cmd       *exec.Cmd
	base      string // http://127.0.0.1:port
	recovered int    // jobs replayed from the store at boot
}

// spawnChild starts a daemon on the given store and blocks until it prints
// its listening line (so the recovery replay, if any, has completed).
func spawnChild(t *testing.T, lg *harnessLog, storePath string) *child {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-workers", "2", "-store", storePath)
	cmd.Env = append(os.Environ(), crashChildEnv+"=1")
	cmd.Stderr = lg
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn child: %v", err)
	}
	c := &child{cmd: cmd, recovered: -1}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		lg.printf("child[%d]: %s", cmd.Process.Pid, line)
		if rest, ok := strings.CutPrefix(line, "passivityd: recovered "); ok {
			fmt.Sscanf(rest, "%d", &c.recovered)
		}
		if rest, ok := strings.CutPrefix(line, "passivityd: listening on "); ok {
			c.base = "http://" + strings.Fields(rest)[0]
			break
		}
	}
	if c.base == "" {
		c.kill()
		t.Fatalf("child[%d] exited before listening (scan err: %v)", cmd.Process.Pid, sc.Err())
	}
	go func() {
		for sc.Scan() {
			lg.printf("child[%d]: %s", cmd.Process.Pid, sc.Text())
		}
	}()
	return c
}

// kill SIGKILLs the child and reaps it. Errors are ignored: the process may
// already be gone, which is fine for a crash harness.
func (c *child) kill() {
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
	}
	c.cmd.Wait()
}

var harnessClient = &http.Client{Timeout: 2 * time.Second}

type harnessJobDoc struct {
	ID     string            `json:"id"`
	State  string            `json:"state"`
	Error  string            `json:"error,omitempty"`
	Report *server.ReportDoc `json:"report,omitempty"`
}

func (c *child) postJob(spec string) (string, error) {
	resp, err := harnessClient.Post(c.base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %s: %s", resp.Status, body)
	}
	var doc harnessJobDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return "", err
	}
	return doc.ID, nil
}

func (c *child) getJob(id string) (*harnessJobDoc, error) {
	resp, err := harnessClient.Get(c.base + "/v1/jobs/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("get job: %s", resp.Status)
	}
	var doc harnessJobDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// runCrashCase drives one job on one store through up to maxKills SIGKILLs
// to completion, returning the terminal report and how many kills landed.
// Every kill fires only while the job is not yet terminal (the poll loop
// checks state right up to the kill instant), so each one interrupts live
// solver work — a checkpoint-boundary resume, not a terminal replay.
func runCrashCase(t *testing.T, lg *harnessLog, storePath, spec string, rng *rand.Rand, maxKills int) (*server.ReportDoc, int) {
	t.Helper()
	kills := 0
	const maxCycles = 12
	for cycle := 0; cycle < maxCycles; cycle++ {
		c := spawnChild(t, lg, storePath)
		if cycle == 0 {
			if c.recovered != 0 {
				c.kill()
				t.Fatalf("fresh store recovered %d jobs", c.recovered)
			}
			id, err := c.postJob(spec)
			if err != nil {
				c.kill()
				t.Fatalf("submit: %v", err)
			}
			lg.printf("cycle 0: submitted %s", id)
		} else if c.recovered != 1 {
			c.kill()
			t.Fatalf("cycle %d: recovered %d job(s), want 1", cycle, c.recovered)
		}
		var killAt time.Time
		if kills < maxKills {
			delay := time.Duration(20+rng.Intn(130)) * time.Millisecond
			killAt = time.Now().Add(delay)
			lg.printf("cycle %d: arming SIGKILL in %v", cycle, delay)
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			if !killAt.IsZero() && time.Now().After(killAt) {
				c.kill()
				kills++
				lg.printf("cycle %d: SIGKILL landed mid-run", cycle)
				break
			}
			doc, err := c.getJob("job-1")
			if err == nil {
				switch doc.State {
				case "done":
					lg.printf("cycle %d: job done (%d solver shifts this generation, %d crossings)",
						cycle, doc.Report.Solver.ShiftsProcessed, len(doc.Report.Crossings))
					c.kill()
					return doc.Report, kills
				case "failed", "canceled":
					c.kill()
					t.Fatalf("cycle %d: job reached %q: %s", cycle, doc.State, doc.Error)
				}
			}
			if time.Now().After(deadline) {
				c.kill()
				t.Fatalf("cycle %d: job did not finish within 60s", cycle)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}
	t.Fatalf("job did not finish within %d crash cycles", maxCycles)
	return nil, 0
}

// gobSansSolver serializes a report with its schedule-dependent solver
// telemetry zeroed: the deterministic sections must match bit-exactly.
func gobSansSolver(t *testing.T, doc *server.ReportDoc) []byte {
	t.Helper()
	d := *doc
	d.Solver = server.SolverDoc{}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCrashResumeEquivalence is the headline durability guarantee on three
// shrunk Table-I cases: a daemon SIGKILLed at randomized points mid-solve
// and restarted on the same store must converge to a report gob-identical
// to an uninterrupted run's. Order 125 puts a solve at roughly 150–300ms
// on two workers — wide enough for 20–150ms kill delays to land inside
// live Arnoldi sweeps rather than before or after them.
func TestCrashResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child daemons")
	}
	lg := openHarnessLog(t)
	for _, id := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("case%d", id), func(t *testing.T) {
			const order = 125
			spec := fmt.Sprintf(`{"model":{"case":{"id":%d,"order":%d}},"char":{"seed":5,"threads":2}}`, id, order)
			lg.printf("=== case %d (order %d) ===", id, order)

			lg.printf("case %d: uninterrupted reference run", id)
			ref, refKills := runCrashCase(t, lg, filepath.Join(t.TempDir(), "ref.jlog"), spec,
				rand.New(rand.NewSource(int64(100+id))), 0)
			if refKills != 0 {
				t.Fatalf("reference run recorded %d kills", refKills)
			}
			if len(ref.Bands) == 0 {
				t.Fatal("reference report has no bands")
			}

			rng := rand.New(rand.NewSource(int64(id)))
			maxKills := 2 + rng.Intn(3)
			lg.printf("case %d: crash run, up to %d kills", id, maxKills)
			got, kills := runCrashCase(t, lg, filepath.Join(t.TempDir(), "crash.jlog"), spec, rng, maxKills)
			if kills < 1 {
				t.Fatalf("no kill landed mid-run: solve finished before the first %v-range delay", 150*time.Millisecond)
			}
			if !bytes.Equal(gobSansSolver(t, ref), gobSansSolver(t, got)) {
				t.Fatalf("resumed report diverges from uninterrupted run after %d kill(s):\nref: %+v\ngot: %+v",
					kills, ref, got)
			}
			lg.printf("case %d: PASS — %d kill(s), report gob-identical (%d crossings, %d bands)",
				id, kills, len(got.Crossings), len(got.Bands))
			t.Logf("case %d: %d kill(s), resumed report gob-identical (%d crossings, %d bands, ref %d shifts / final generation %d)",
				id, kills, len(got.Crossings), len(got.Bands),
				ref.Solver.ShiftsProcessed, got.Solver.ShiftsProcessed)
		})
	}
}
