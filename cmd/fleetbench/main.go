// Command fleetbench exercises the shared-pool fleet engine on the paper's
// twelve Table-I cases:
//
//  1. Solo baseline — each case characterized one after another, each with
//     its own private pool of -workers threads (the pre-fleet deployment
//     model: total wall time is the sum).
//  2. Fleet — all cases submitted concurrently to ONE shared pool of
//     -workers threads. Wall time is the makespan; per-case crossings must
//     come out bit-identical to the solo run (the canonical-polish
//     guarantee in core.collect).
//  3. Warm-start A/B — enforcement on a violating case with and without
//     warm-started re-characterizations, reporting the drop in total
//     Stats.ShiftsProcessed.
//  4. Shift-cache A/B — the same enforcement with the shift-factorization
//     cache off (every shift refactors) vs on (LRU over SMW factors +
//     batched multi-shift prefactor), asserting bit-identical crossings
//     and reporting the hit rate and wall-time delta.
//  5. Priority + admission — batch enforcement jobs fill a bounded-
//     admission engine, then an interactive characterization submitted
//     mid-batch must overtake the queued batch work and finish first; a
//     fail-fast engine at its cap must reject the over-cap submit.
//  6. Vector Fitting A/B — a synthetic many-port sweep fitted with one
//     worker vs the full pool (pool-routed PhaseFit column batches),
//     asserting the fitted models are bit-identical and reporting the
//     wall-time win (the BenchmarkSnpcheckFit scenario).
//  7. Half-path A/B — reciprocal Table-I variants characterized with the
//     full 2n×2n Hamiltonian (HalfOff) vs the half-size squared
//     eigenproblem (HalfAuto), asserting crossing agreement within
//     1e-9·ω_max and reporting the per-case speedup.
//  8. Sparse-backend A/B — a synthetic n≥10⁴ model with port-local
//     residues characterized with the packed-dense vs the CSR sparse
//     kernels, asserting crossing agreement within 1e-9·ω_max and that
//     BackendAuto resolves to sparse for this structure.
//
// The fleet phase also reports per-phase pool utilization (eig / probe /
// constraint / refine task counts and worker-busy share), so the
// probe-phase speedup from pool-routed classifyBands and the pool-routed
// refinement tails stay trackable.
//
// Results go to stdout and to -json (BENCH_fleet.json) so the throughput
// trajectory stays trackable across PRs.
//
//	fleetbench -workers 16 -cases 1,2,3 -warmcase 2
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/hamiltonian"
	"repro/internal/statespace"
)

// sameCrossings reports whether two characterizations found bit-identical
// crossing lists.
func sameCrossings(a, b *repro.Report) bool {
	if len(a.Crossings) != len(b.Crossings) {
		return false
	}
	for i := range a.Crossings {
		if a.Crossings[i] != b.Crossings[i] {
			return false
		}
	}
	return true
}

// sameFit reports whether two Vector Fitting results are bit-identical:
// same gob-encoded model, same RMS error, same per-column iterations.
func sameFit(a, b *repro.VFResult) bool {
	if a.RMSError != b.RMSError || len(a.Iterations) != len(b.Iterations) {
		return false
	}
	for i := range a.Iterations {
		if a.Iterations[i] != b.Iterations[i] {
			return false
		}
	}
	enc := func(m *repro.Model) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			log.Fatalf("gob-encoding fit model: %v", err)
		}
		return buf.Bytes()
	}
	return bytes.Equal(enc(a.Model), enc(b.Model))
}

type caseRow struct {
	Case         int   `json:"case"`
	N            int   `json:"n"`
	P            int   `json:"p"`
	Nlambda      int   `json:"nlambda"`
	NlambdaSolo  int   `json:"nlambda_solo"`
	PaperNlambda int   `json:"nlambda_paper"`
	BitIdentical bool  `json:"crossings_bit_identical"`
	SoloNS       int64 `json:"solo_ns"`
	// FleetBusyNS is the pool-worker time actually spent computing this
	// job (fleet.Job.BusyTime); FleetLatencyNS is the job's submit-to-done
	// wall time inside the concurrent fleet run, which also counts time
	// queued behind the other jobs. The old single "fleet_ns" conflated
	// the two (it was latency, easily misread as per-job cost).
	FleetBusyNS    int64   `json:"fleet_busy_ns"`
	FleetLatencyNS int64   `json:"fleet_latency_ns"`
	Shifts         int     `json:"shifts"`
	ShiftsSolo     int     `json:"shifts_solo"`
	ShiftsPerSec   float64 `json:"shifts_per_sec"` // fleet-leg shifts per busy second
	CacheHits      uint64  `json:"cache_hits"`     // this case's traffic on the engine-wide shift cache
	CacheMisses    uint64  `json:"cache_misses"`
	Passive        bool    `json:"passive"`
	WorstSigma     float64 `json:"worst_sigma"`
}

type warmRow struct {
	Case          int     `json:"case"`
	ColdShifts    int     `json:"cold_shifts"`
	WarmShifts    int     `json:"warm_shifts"`
	ShiftsSavedPC float64 `json:"shifts_saved_pct"`
	ColdNS        int64   `json:"cold_ns"`
	WarmNS        int64   `json:"warm_ns"`
	Iterations    int     `json:"iterations"`
	Passive       bool    `json:"passive"`
}

type phaseRow struct {
	Phase       string  `json:"phase"`
	Tasks       int     `json:"tasks"`
	BusyNS      int64   `json:"busy_ns"`
	Utilization float64 `json:"utilization"` // busy / (workers × fleet wall)
}

type priorityRow struct {
	BatchJobs         int     `json:"batch_jobs"`
	MaxQueued         int     `json:"max_queued"`
	InteractiveNS     int64   `json:"interactive_ns"`
	LastBatchNS       int64   `json:"last_batch_ns"`
	Overtook          bool    `json:"interactive_overtook_batch"`
	OvertakeFactor    float64 `json:"overtake_factor"` // last batch / interactive latency
	FailFastRejected  bool    `json:"failfast_rejected"`
	FailFastMaxQueued int     `json:"failfast_max_queued"`
}

type vfRow struct {
	Ports        int     `json:"ports"`
	OrderPerCol  int     `json:"order_per_column"`
	Samples      int     `json:"samples"`
	Fit1NS       int64   `json:"fit_threads1_ns"`
	FitNNS       int64   `json:"fit_threadsN_ns"`
	FitThreads   int     `json:"fit_threads"`
	Speedup      float64 `json:"speedup"`
	BitIdentical bool    `json:"fit_bit_identical"`
	RMSError     float64 `json:"rms_error"`
}

type cacheRow struct {
	Case         int     `json:"case"`
	OffNS        int64   `json:"cache_off_ns"`
	OnNS         int64   `json:"cache_on_ns"`
	Speedup      float64 `json:"speedup"`
	Hits         uint64  `json:"cache_hits"`
	Misses       uint64  `json:"cache_misses"`
	HitRate      float64 `json:"hit_rate"`
	Evictions    uint64  `json:"evictions"`
	Iterations   int     `json:"iterations"`
	BitIdentical bool    `json:"crossings_bit_identical"`
}

type halfRow struct {
	Case        int     `json:"case"`
	N           int     `json:"n"`
	P           int     `json:"p"`
	FullNS      int64   `json:"full_ns"`
	HalfNS      int64   `json:"half_ns"`
	Speedup     float64 `json:"speedup"`
	Nlambda     int     `json:"nlambda"`
	NlambdaFull int     `json:"nlambda_full"`
	Agree       bool    `json:"crossings_agree"` // within 1e-9·ω_max
	HalfPath    bool    `json:"half_path"`       // Report.HalfPath of the half leg
}

type sparseRow struct {
	N             int     `json:"n"`
	P             int     `json:"p"`
	SparsePorts   int     `json:"sparse_ports"`
	DenseNS       int64   `json:"packed_dense_ns"`
	SparseNS      int64   `json:"sparse_ns"`
	Speedup       float64 `json:"speedup"`
	DenseBackend  string  `json:"packed_dense_backend"`
	SparseBackend string  `json:"sparse_backend"`
	AutoBackend   string  `json:"auto_backend"` // what BackendAuto resolves to
	Nlambda       int     `json:"nlambda"`
	NlambdaDense  int     `json:"nlambda_dense"`
	Agree         bool    `json:"crossings_agree"` // within 1e-9·ω_max
}

type resumeRow struct {
	Case          int     `json:"case"`
	N             int     `json:"n"`
	FromSeq       int     `json:"resumed_from_seq"`
	FreshShifts   int     `json:"fresh_shifts"`
	ResumedShifts int     `json:"resumed_shifts"`
	ShiftsSavedPC float64 `json:"shifts_saved_pct"`
	FreshNS       int64   `json:"fresh_ns"`
	ResumedNS     int64   `json:"resumed_ns"`
	// StrictlyFewer is the durability acceptance gate: a resumed run must
	// re-execute only the shifts its checkpoint prefix had not committed.
	StrictlyFewer bool `json:"resumed_strictly_fewer_shifts"`
	BitIdentical  bool `json:"crossings_bit_identical"`
}

type benchOut struct {
	Workers          int          `json:"workers"`
	HostCores        int          `json:"host_cores"`
	Cases            []caseRow    `json:"cases"`
	SoloWallNS       int64        `json:"solo_wall_ns"`
	FleetWallNS      int64        `json:"fleet_wall_ns"`
	Speedup          float64      `json:"speedup"`
	ThroughputJobsS  float64      `json:"fleet_throughput_jobs_per_s"`
	AllBitIdentical  bool         `json:"all_crossings_bit_identical"`
	FleetCacheHits   uint64       `json:"fleet_cache_hits"` // engine-wide shift-cache totals for the fleet run
	FleetCacheMisses uint64       `json:"fleet_cache_misses"`
	Phases           []phaseRow   `json:"fleet_phase_utilization"`
	WarmStart        *warmRow     `json:"warmstart,omitempty"`
	Cache            *cacheRow    `json:"cache,omitempty"`
	Priority         *priorityRow `json:"priority,omitempty"`
	VectFit          *vfRow       `json:"vectfit,omitempty"`
	HalfPath         []halfRow    `json:"halfpath,omitempty"`
	Sparse           *sparseRow   `json:"sparse,omitempty"`
	Resume           []resumeRow  `json:"resume,omitempty"`
}

func main() {
	workers := flag.Int("workers", min(16, runtime.NumCPU()), "shared pool worker count")
	cases := flag.String("cases", "", "comma-separated case IDs (default: all twelve)")
	cacheDir := flag.String("cache", "testdata/cases", "model cache directory")
	jsonOut := flag.String("json", "BENCH_fleet.json", "machine-readable output file (empty to disable)")
	warmCase := flag.Int("warmcase", 2, "violating Table-I case for the warm-start A/B (0 to skip)")
	cacheCase := flag.Int("cachecase", 2, "violating Table-I case for the shift-cache on/off enforcement A/B (0 to skip)")
	prioCase := flag.Int("priocase", 2, "violating Table-I case for the batch jobs of the priority/admission demo (0 to skip)")
	vfPorts := flag.Int("vfports", 8, "port count of the synthetic sweep for the Vector Fitting A/B (0 to skip)")
	halfAB := flag.Bool("half", true, "run the half-path A/B on the reciprocal Table-I variants")
	sparseOrder := flag.Int("sparseorder", 10000, "dynamic order of the synthetic large-n case for the sparse-backend A/B (0 to skip)")
	resumeOrder := flag.Int("resumeorder", 125, "shrunk order for the checkpoint-resume A/B on Table-I cases 1-3 (0 to skip)")
	flag.Parse()

	specs := repro.TableICases()
	if *cases != "" {
		var sel []repro.CaseSpec
		for _, tok := range strings.Split(*cases, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				log.Fatalf("bad case id %q", tok)
			}
			spec, err := repro.FindCase(id)
			if err != nil {
				log.Fatal(err)
			}
			sel = append(sel, spec)
		}
		specs = sel
	}

	charOpts := func() repro.CharOptions {
		return repro.CharOptions{Core: repro.SolverOptions{Threads: *workers, Seed: 1}}
	}

	models := make([]*repro.Model, len(specs))
	for i, spec := range specs {
		m, err := statespace.CachedCase(spec, *cacheDir)
		if err != nil {
			log.Fatalf("case %d: %v", spec.ID, err)
		}
		models[i] = m
	}

	out := benchOut{Workers: *workers, HostCores: runtime.NumCPU(), AllBitIdentical: true}
	fmt.Printf("Fleet bench — %d cases, shared pool of %d workers (host: %d cores)\n",
		len(specs), *workers, runtime.NumCPU())

	// Phase 1: solo baseline, sequential, private pool per solve.
	soloReps := make([]*repro.Report, len(specs))
	soloNS := make([]int64, len(specs))
	soloStart := time.Now()
	for i, spec := range specs {
		start := time.Now()
		rep, err := repro.Characterize(models[i], charOpts())
		if err != nil {
			log.Fatalf("solo case %d: %v", spec.ID, err)
		}
		soloNS[i] = time.Since(start).Nanoseconds()
		soloReps[i] = rep
	}
	out.SoloWallNS = time.Since(soloStart).Nanoseconds()

	// Phase 2: the same characterizations, all at once, on one shared pool.
	engine := repro.NewFleet(*workers)
	jobs := make([]*repro.FleetJob, len(specs))
	fleetStart := time.Now()
	for i := range specs {
		j, err := engine.Submit(context.Background(), repro.FleetRequest{
			Model: models[i],
			Char:  charOpts(),
		})
		if err != nil {
			log.Fatalf("submit case %d: %v", specs[i].ID, err)
		}
		jobs[i] = j
	}
	fleetReps := make([]*repro.Report, len(specs))
	fleetBusyNS := make([]int64, len(specs))
	fleetLatencyNS := make([]int64, len(specs))
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			log.Fatalf("fleet case %d: %v", specs[i].ID, err)
		}
		fleetReps[i] = res.Report
		fleetBusyNS[i] = j.BusyTime().Nanoseconds()
		fleetLatencyNS[i] = j.WallTime().Nanoseconds()
	}
	out.FleetWallNS = time.Since(fleetStart).Nanoseconds()
	// Per-case traffic on the engine-wide shift-factorization cache, plus
	// the cache-wide totals (read before Close while the ops are alive).
	caseCache := make([]repro.CacheStats, len(specs))
	for i := range specs {
		caseCache[i] = engine.ModelCacheStats(models[i])
	}
	fleetCache := engine.ShiftCacheStats()
	out.FleetCacheHits, out.FleetCacheMisses = fleetCache.Hits, fleetCache.Misses
	// Per-phase worker utilization of the fleet run: which fraction of the
	// pool's capacity each compute phase kept busy.
	stats := engine.PhaseStats()
	phases := make([]string, 0, len(stats))
	for ph := range stats {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	// engine.Workers() is the clamped worker count (-workers 0 means
	// GOMAXPROCS); the raw flag would make the capacity zero.
	capacity := float64(engine.Workers()) * float64(out.FleetWallNS)
	for _, ph := range phases {
		st := stats[ph]
		out.Phases = append(out.Phases, phaseRow{
			Phase: ph, Tasks: st.Tasks, BusyNS: st.Busy.Nanoseconds(),
			Utilization: float64(st.Busy.Nanoseconds()) / capacity,
		})
		fmt.Printf("phase %-10s %6d tasks, %8.3fs busy, %5.1f%% of pool capacity\n",
			ph, st.Tasks, st.Busy.Seconds(), 100*float64(st.Busy.Nanoseconds())/capacity)
	}
	engine.Close()

	fmt.Printf("%-7s %5s %4s %8s %4s %6s %8s %5s %5s | %9s %9s %9s | %4s\n",
		"Case", "n", "p", "Nλ(pap)", "Nλ", "shifts", "sh/s", "hits", "miss", "solo[s]", "busy[s]", "lat[s]", "bit=")
	for i, spec := range specs {
		solo, fl := soloReps[i], fleetReps[i]
		bit := len(solo.Crossings) == len(fl.Crossings)
		if bit {
			for k := range solo.Crossings {
				if solo.Crossings[k] != fl.Crossings[k] {
					bit = false
					break
				}
			}
		}
		if !bit {
			out.AllBitIdentical = false
		}
		row := caseRow{
			Case: spec.ID, N: spec.N, P: spec.P,
			Nlambda: len(fl.Crossings), NlambdaSolo: len(solo.Crossings),
			PaperNlambda: spec.PaperNlambda, BitIdentical: bit,
			SoloNS: soloNS[i], FleetBusyNS: fleetBusyNS[i], FleetLatencyNS: fleetLatencyNS[i],
			Shifts: fl.Solver.ShiftsProcessed, ShiftsSolo: solo.Solver.ShiftsProcessed,
			CacheHits: caseCache[i].Hits, CacheMisses: caseCache[i].Misses,
			Passive: fl.Passive, WorstSigma: fl.WorstViolation(),
		}
		if fleetBusyNS[i] > 0 {
			row.ShiftsPerSec = float64(row.Shifts) / (float64(fleetBusyNS[i]) / 1e9)
		}
		out.Cases = append(out.Cases, row)
		fmt.Printf("Case %-2d %5d %4d %8d %4d %6d %8.1f %5d %5d | %9.3f %9.3f %9.3f | %v\n",
			spec.ID, spec.N, spec.P, spec.PaperNlambda, row.Nlambda, row.Shifts,
			row.ShiftsPerSec, row.CacheHits, row.CacheMisses,
			float64(row.SoloNS)/1e9, float64(row.FleetBusyNS)/1e9, float64(row.FleetLatencyNS)/1e9, bit)
	}
	out.Speedup = float64(out.SoloWallNS) / float64(out.FleetWallNS)
	out.ThroughputJobsS = float64(len(specs)) / (float64(out.FleetWallNS) / 1e9)
	fmt.Printf("solo wall %.3fs, fleet wall %.3fs → %.2fx, %.2f jobs/s, all bit-identical: %v\n",
		float64(out.SoloWallNS)/1e9, float64(out.FleetWallNS)/1e9,
		out.Speedup, out.ThroughputJobsS, out.AllBitIdentical)

	// Phase 3: warm-start A/B on a violating case.
	if *warmCase > 0 {
		spec, err := repro.FindCase(*warmCase)
		if err != nil {
			log.Fatal(err)
		}
		m, err := statespace.CachedCase(spec, *cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		run := func(cold bool) (*repro.EnforceReport, int64) {
			start := time.Now()
			_, rep, err := repro.Enforce(m, repro.EnforceOptions{
				Char: charOpts(), ColdStart: cold,
			})
			if err != nil {
				log.Fatalf("enforce (cold=%v) case %d: %v", cold, spec.ID, err)
			}
			return rep, time.Since(start).Nanoseconds()
		}
		coldRep, coldNS := run(true)
		warmRep, warmNS := run(false)
		w := warmRow{
			Case:       spec.ID,
			ColdShifts: coldRep.SolverTotals.ShiftsProcessed,
			WarmShifts: warmRep.SolverTotals.ShiftsProcessed,
			ColdNS:     coldNS, WarmNS: warmNS,
			Iterations: warmRep.Iterations,
			Passive:    warmRep.FinalReport.Passive,
		}
		w.ShiftsSavedPC = 100 * (1 - float64(w.WarmShifts)/float64(w.ColdShifts))
		out.WarmStart = &w
		fmt.Printf("warm-start A/B (case %d, %d iterations): shifts cold %d → warm %d (%.1f%% saved), time %.3fs → %.3fs\n",
			w.Case, w.Iterations, w.ColdShifts, w.WarmShifts, w.ShiftsSavedPC,
			float64(w.ColdNS)/1e9, float64(w.WarmNS)/1e9)
	}

	// Phase 4: shift-cache on/off A/B — the same enforcement run with the
	// factorization cache disabled (every shift refactors from scratch, no
	// batched prefactor) vs enabled through an operator cache, asserting the
	// final crossings are bit-identical and reporting the hit rate and the
	// wall-time delta the cache buys.
	if *cacheCase > 0 {
		spec, err := repro.FindCase(*cacheCase)
		if err != nil {
			log.Fatal(err)
		}
		m, err := statespace.CachedCase(spec, *cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		run := func(ops *hamiltonian.OpCache, cacheSize int) (*repro.EnforceReport, int64) {
			opts := repro.EnforceOptions{Char: charOpts()}
			opts.Char.Core.ShiftCacheSize = cacheSize
			opts.Char.Ops = ops
			start := time.Now()
			_, rep, err := repro.Enforce(m, opts)
			if err != nil {
				log.Fatalf("enforce (cache=%d) case %d: %v", cacheSize, spec.ID, err)
			}
			return rep, time.Since(start).Nanoseconds()
		}
		offRep, offNS := run(nil, -1)
		oc := hamiltonian.NewOpCache(repro.DefaultShiftCacheSize)
		onRep, onNS := run(oc, 0)
		st := oc.ShiftCache().Stats()
		cr := cacheRow{
			Case:  spec.ID,
			OffNS: offNS, OnNS: onNS,
			Speedup: float64(offNS) / float64(onNS),
			Hits:    st.Hits, Misses: st.Misses, Evictions: st.Evictions,
			Iterations:   onRep.Iterations,
			BitIdentical: sameCrossings(offRep.FinalReport, onRep.FinalReport),
		}
		if total := st.Hits + st.Misses; total > 0 {
			cr.HitRate = float64(st.Hits) / float64(total)
		}
		out.Cache = &cr
		fmt.Printf("cache A/B (case %d, %d iterations): %.3fs off → %.3fs on (%.2fx), %d hits / %d misses (%.1f%% hit rate, %d evictions), bit-identical: %v\n",
			cr.Case, cr.Iterations, float64(offNS)/1e9, float64(onNS)/1e9, cr.Speedup,
			cr.Hits, cr.Misses, 100*cr.HitRate, cr.Evictions, cr.BitIdentical)
	}

	// Phase 5: priority + admission demo. Batch enforcement jobs fill a
	// bounded-admission engine; an interactive characterization submitted
	// mid-batch must overtake the queued batch work.
	if *prioCase > 0 {
		spec, err := repro.FindCase(*prioCase)
		if err != nil {
			log.Fatal(err)
		}
		batchModel, err := statespace.CachedCase(spec, *cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		interSpec := specs[0]
		interModel, err := statespace.CachedCase(interSpec, *cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		const nBatch = 3
		pr := priorityRow{BatchJobs: nBatch, MaxQueued: nBatch + 1}
		eng := repro.NewFleetEngine(repro.FleetOptions{Workers: *workers, MaxQueued: pr.MaxQueued})
		prioStart := time.Now()
		batchJobs := make([]*repro.FleetJob, nBatch)
		for i := range batchJobs {
			j, err := eng.Submit(context.Background(), repro.FleetRequest{
				Model:    batchModel,
				Enforce:  &repro.EnforceOptions{Char: charOpts()},
				Priority: repro.PriorityBatch,
			})
			if err != nil {
				log.Fatalf("batch submit %d: %v", i, err)
			}
			batchJobs[i] = j
		}
		inter, err := eng.Submit(context.Background(), repro.FleetRequest{
			Model:    interModel,
			Char:     charOpts(),
			Priority: repro.PriorityInteractive,
		})
		if err != nil {
			log.Fatalf("interactive submit: %v", err)
		}
		if _, err := inter.Wait(); err != nil {
			log.Fatalf("interactive job: %v", err)
		}
		pr.InteractiveNS = time.Since(prioStart).Nanoseconds()
		for i, j := range batchJobs {
			if _, err := j.Wait(); err != nil && !errors.Is(err, repro.ErrEnforcementFailed) {
				log.Fatalf("batch job %d: %v", i, err)
			}
		}
		pr.LastBatchNS = time.Since(prioStart).Nanoseconds()
		pr.Overtook = pr.InteractiveNS < pr.LastBatchNS
		pr.OvertakeFactor = float64(pr.LastBatchNS) / float64(pr.InteractiveNS)
		eng.Close()

		// Admission fail-fast: a second engine at its cap must reject.
		pr.FailFastMaxQueued = 1
		ff := repro.NewFleetEngine(repro.FleetOptions{Workers: 1, MaxQueued: 1, FailFast: true})
		hold, err := ff.Submit(context.Background(), repro.FleetRequest{
			Model: interModel, Char: charOpts(),
		})
		if err != nil {
			log.Fatalf("fail-fast holder: %v", err)
		}
		_, err = ff.Submit(context.Background(), repro.FleetRequest{
			Model: interModel, Char: charOpts(),
		})
		pr.FailFastRejected = errors.Is(err, repro.ErrFleetQueueFull)
		if _, err := hold.Wait(); err != nil {
			log.Fatalf("fail-fast holder job: %v", err)
		}
		ff.Close()

		out.Priority = &pr
		fmt.Printf("priority demo: interactive case %d done in %.3fs vs %.3fs for %d batch enforcements of case %d (overtook: %v, %.1fx headroom); fail-fast over-cap rejected: %v\n",
			interSpec.ID, float64(pr.InteractiveNS)/1e9, float64(pr.LastBatchNS)/1e9,
			nBatch, spec.ID, pr.Overtook, pr.OvertakeFactor, pr.FailFastRejected)
	}

	// Phase 6: Vector Fitting A/B — one worker vs the pool on a synthetic
	// many-port sweep (the per-column PhaseFit batches of vectfit.Fitter).
	if *vfPorts > 0 {
		const vfOrder, vfSamples = 6, 40
		device, err := repro.GenerateModel(7, repro.GenOptions{
			Ports: *vfPorts, Order: 6 * *vfPorts, TargetPeak: 1.02,
		})
		if err != nil {
			log.Fatalf("vectfit device: %v", err)
		}
		samples := repro.SampleModel(device, repro.LogGrid(1e8, 1e11, vfSamples))
		fitWith := func(threads int) (*repro.VFResult, int64) {
			start := time.Now()
			fit, err := repro.FitVector(samples, vfOrder, repro.VFOptions{Threads: threads})
			if err != nil {
				log.Fatalf("vectfit (threads=%d): %v", threads, err)
			}
			return fit, time.Since(start).Nanoseconds()
		}
		// The parallel leg uses at least 8 workers (the BenchmarkSnpcheckFit
		// T08 scenario) even when -workers is smaller; on a host with fewer
		// cores the pool time-shares and the ratio honestly reports ~1.
		threadsN := *workers
		if threadsN < 8 {
			threadsN = 8
		}
		fit1, ns1 := fitWith(1)
		fitN, nsN := fitWith(threadsN)
		vf := vfRow{
			Ports: *vfPorts, OrderPerCol: vfOrder, Samples: vfSamples,
			Fit1NS: ns1, FitNNS: nsN, FitThreads: threadsN,
			Speedup:      float64(ns1) / float64(nsN),
			BitIdentical: sameFit(fit1, fitN),
			RMSError:     fitN.RMSError,
		}
		out.VectFit = &vf
		fmt.Printf("vectfit A/B (%d ports, order %d, %d samples): %.3fs @1 thread → %.3fs @%d (%.2fx), bit-identical: %v\n",
			vf.Ports, vf.OrderPerCol, vf.Samples, float64(ns1)/1e9, float64(nsN)/1e9,
			vf.FitThreads, vf.Speedup, vf.BitIdentical)
	}

	// crossingsAgree checks two crossing lists pairwise against the
	// cross-backend/cross-path tolerance 1e-9·ω_max: the two legs solve
	// different eigenproblems (full vs squared; dense vs sparse kernels),
	// so agreement is to round-off, not bit-exact.
	crossingsAgree := func(a, b *repro.Report) bool {
		if len(a.Crossings) != len(b.Crossings) {
			return false
		}
		tol := 1e-9 * a.OmegaMax
		for i := range a.Crossings {
			if d := a.Crossings[i] - b.Crossings[i]; d > tol || d < -tol {
				return false
			}
		}
		return true
	}

	// Phase 7: half-path A/B — the reciprocal Table-I variants characterized
	// with the half-size squared eigenproblem (HalfAuto engages on detected
	// reciprocity) vs the full 2n×2n path forced with HalfOff. Crossings
	// must agree within 1e-9·ω_max; the half leg should win ≥1.5× on the
	// eigensolver-dominated cases.
	if *halfAB {
		for _, spec := range repro.ReciprocalTableICases() {
			m, err := statespace.CachedCase(spec, *cacheDir)
			if err != nil {
				log.Fatalf("reciprocal case %d: %v", spec.ID, err)
			}
			leg := func(half repro.HalfMode) (*repro.Report, int64) {
				opts := charOpts()
				opts.Half = half
				start := time.Now()
				rep, err := repro.Characterize(m, opts)
				if err != nil {
					log.Fatalf("half A/B case %d (mode %v): %v", spec.ID, half, err)
				}
				return rep, time.Since(start).Nanoseconds()
			}
			fullRep, fullNS := leg(repro.HalfOff)
			halfRep, halfNS := leg(repro.HalfAuto)
			hr := halfRow{
				Case: spec.ID, N: m.Order(), P: spec.P,
				FullNS: fullNS, HalfNS: halfNS,
				Speedup: float64(fullNS) / float64(halfNS),
				Nlambda: len(halfRep.Crossings), NlambdaFull: len(fullRep.Crossings),
				Agree:    crossingsAgree(fullRep, halfRep),
				HalfPath: halfRep.HalfPath,
			}
			out.HalfPath = append(out.HalfPath, hr)
			fmt.Printf("half A/B (case %d, n=%d p=%d): %.3fs full → %.3fs half (%.2fx), Nλ %d vs %d, agree@1e-9ωmax: %v, half path: %v\n",
				hr.Case, hr.N, hr.P, float64(fullNS)/1e9, float64(halfNS)/1e9, hr.Speedup,
				hr.NlambdaFull, hr.Nlambda, hr.Agree, hr.HalfPath)
		}
	}

	// Phase 8: sparse-backend A/B — a synthetic n≥10⁴ model with port-local
	// residues (banded C), characterized with the packed-dense kernels vs
	// the CSR sparse kernels. BackendAuto resolves to sparse for this
	// structure; crossings must agree within 1e-9·ω_max.
	if *sparseOrder > 0 {
		const sparsePorts, portsPerCol = 40, 2
		spec := repro.CaseSpec{
			ID: 200, N: *sparseOrder, P: sparsePorts, TargetPeak: 1.02,
			Seed: 200, SparsePorts: portsPerCol,
		}
		m, err := statespace.CachedCase(spec, *cacheDir)
		if err != nil {
			log.Fatalf("sparse case: %v", err)
		}
		leg := func(b repro.Backend) (*repro.Report, int64) {
			opts := charOpts()
			opts.Backend = b
			start := time.Now()
			rep, err := repro.Characterize(m, opts)
			if err != nil {
				log.Fatalf("sparse A/B (backend %v): %v", b, err)
			}
			return rep, time.Since(start).Nanoseconds()
		}
		denseRep, denseNS := leg(repro.BackendPackedDense)
		sparseRep, sparseNS := leg(repro.BackendSparse)
		m.SetBackend(repro.BackendAuto)
		sr := sparseRow{
			N: m.Order(), P: sparsePorts, SparsePorts: portsPerCol,
			DenseNS: denseNS, SparseNS: sparseNS,
			Speedup:      float64(denseNS) / float64(sparseNS),
			DenseBackend: denseRep.Backend.String(), SparseBackend: sparseRep.Backend.String(),
			AutoBackend: m.ActiveBackend().String(),
			Nlambda:     len(sparseRep.Crossings), NlambdaDense: len(denseRep.Crossings),
			Agree: crossingsAgree(denseRep, sparseRep),
		}
		out.Sparse = &sr
		fmt.Printf("sparse A/B (n=%d, p=%d, %d ports/col): %.3fs packed-dense → %.3fs sparse (%.2fx), auto resolves to %s, Nλ %d vs %d, agree@1e-9ωmax: %v\n",
			sr.N, sr.P, portsPerCol, float64(denseNS)/1e9, float64(sparseNS)/1e9, sr.Speedup,
			sr.AutoBackend, sr.NlambdaDense, sr.Nlambda, sr.Agree)
	}

	// Phase 9: checkpoint-resume A/B — the durable-store restart economics
	// on shrunk Table-I cases. Each case is solved cold on the fleet engine
	// while its per-shift checkpoint stream is recorded; the first half of
	// the stream (in sequence order — callbacks land out of order) is folded
	// into a ResumeState and the case is re-submitted seeded from it. The
	// resumed run must report bit-identical crossings while executing
	// strictly fewer shifts: a daemon restart pays for the uncommitted
	// suffix only, never the whole solve.
	if *resumeOrder > 0 {
		eng := repro.NewFleetEngine(repro.FleetOptions{Workers: *workers})
		for _, id := range []int{1, 2, 3} {
			spec, err := repro.FindCase(id)
			if err != nil {
				log.Fatal(err)
			}
			spec.N = *resumeOrder
			m, err := repro.BuildCase(spec)
			if err != nil {
				log.Fatalf("resume case %d: %v", id, err)
			}
			var mu sync.Mutex
			var cks []core.Checkpoint
			freshStart := time.Now()
			j, err := eng.Submit(context.Background(), repro.FleetRequest{
				Model: m,
				Char:  charOpts(),
				Checkpoint: func(ck core.Checkpoint) {
					mu.Lock()
					cks = append(cks, ck)
					mu.Unlock()
				},
			})
			if err != nil {
				log.Fatalf("resume A/B fresh submit case %d: %v", id, err)
			}
			res, err := j.Wait()
			if err != nil {
				log.Fatalf("resume A/B fresh case %d: %v", id, err)
			}
			freshNS := time.Since(freshStart).Nanoseconds()
			fresh := res.Report
			mu.Lock()
			sort.Slice(cks, func(a, b int) bool { return cks[a].Seq < cks[b].Seq })
			half := (len(cks) + 1) / 2
			var rs core.ResumeState
			for _, ck := range cks[:half] {
				rs.Apply(ck)
			}
			freshShifts := 0
			for _, ck := range cks {
				if ck.Out != nil {
					freshShifts++
				}
			}
			mu.Unlock()
			// A resumed run preloads the prefix's committed shifts into its
			// Result (Solver.ShiftsProcessed describes the whole solve), so
			// the work actually re-executed is counted the same way on both
			// legs: one checkpoint commit (Out != nil) per shift run.
			var newMu sync.Mutex
			newShifts := 0
			resumedStart := time.Now()
			j2, err := eng.Submit(context.Background(), repro.FleetRequest{
				Model:  m,
				Char:   charOpts(),
				Resume: &rs,
				Checkpoint: func(ck core.Checkpoint) {
					if ck.Out != nil {
						newMu.Lock()
						newShifts++
						newMu.Unlock()
					}
				},
			})
			if err != nil {
				log.Fatalf("resume A/B resumed submit case %d: %v", id, err)
			}
			res2, err := j2.Wait()
			if err != nil {
				log.Fatalf("resume A/B resumed case %d: %v", id, err)
			}
			resumedNS := time.Since(resumedStart).Nanoseconds()
			resumed := res2.Report
			newMu.Lock()
			rr := resumeRow{
				Case: id, N: *resumeOrder, FromSeq: rs.Seq,
				FreshShifts:   freshShifts,
				ResumedShifts: newShifts,
				FreshNS:       freshNS, ResumedNS: resumedNS,
				StrictlyFewer: newShifts < freshShifts,
				BitIdentical:  sameCrossings(fresh, resumed),
			}
			newMu.Unlock()
			rr.ShiftsSavedPC = 100 * (1 - float64(rr.ResumedShifts)/float64(rr.FreshShifts))
			out.Resume = append(out.Resume, rr)
			fmt.Printf("resume A/B (case %d, n=%d, from seq %d): shifts fresh %d → resumed %d (%.1f%% saved, strictly fewer: %v), %.3fs → %.3fs, bit-identical: %v\n",
				rr.Case, rr.N, rr.FromSeq, rr.FreshShifts, rr.ResumedShifts, rr.ShiftsSavedPC,
				rr.StrictlyFewer, float64(freshNS)/1e9, float64(resumedNS)/1e9, rr.BitIdentical)
		}
		eng.Close()
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
