// Command fleetbench exercises the shared-pool fleet engine on the paper's
// twelve Table-I cases:
//
//  1. Solo baseline — each case characterized one after another, each with
//     its own private pool of -workers threads (the pre-fleet deployment
//     model: total wall time is the sum).
//  2. Fleet — all cases submitted concurrently to ONE shared pool of
//     -workers threads. Wall time is the makespan; per-case crossings must
//     come out bit-identical to the solo run (the canonical-polish
//     guarantee in core.collect).
//  3. Warm-start A/B — enforcement on a violating case with and without
//     warm-started re-characterizations, reporting the drop in total
//     Stats.ShiftsProcessed.
//
// Results go to stdout and to -json (BENCH_fleet.json) so the throughput
// trajectory stays trackable across PRs.
//
//	fleetbench -workers 16 -cases 1,2,3 -warmcase 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/statespace"
)

type caseRow struct {
	Case         int     `json:"case"`
	N            int     `json:"n"`
	P            int     `json:"p"`
	Nlambda      int     `json:"nlambda"`
	NlambdaSolo  int     `json:"nlambda_solo"`
	PaperNlambda int     `json:"nlambda_paper"`
	BitIdentical bool    `json:"crossings_bit_identical"`
	SoloNS       int64   `json:"solo_ns"`
	FleetNS      int64   `json:"fleet_ns"` // per-job latency inside the fleet run
	Shifts       int     `json:"shifts"`
	ShiftsSolo   int     `json:"shifts_solo"`
	Passive      bool    `json:"passive"`
	WorstSigma   float64 `json:"worst_sigma"`
}

type warmRow struct {
	Case          int     `json:"case"`
	ColdShifts    int     `json:"cold_shifts"`
	WarmShifts    int     `json:"warm_shifts"`
	ShiftsSavedPC float64 `json:"shifts_saved_pct"`
	ColdNS        int64   `json:"cold_ns"`
	WarmNS        int64   `json:"warm_ns"`
	Iterations    int     `json:"iterations"`
	Passive       bool    `json:"passive"`
}

type benchOut struct {
	Workers         int       `json:"workers"`
	HostCores       int       `json:"host_cores"`
	Cases           []caseRow `json:"cases"`
	SoloWallNS      int64     `json:"solo_wall_ns"`
	FleetWallNS     int64     `json:"fleet_wall_ns"`
	Speedup         float64   `json:"speedup"`
	ThroughputJobsS float64   `json:"fleet_throughput_jobs_per_s"`
	AllBitIdentical bool      `json:"all_crossings_bit_identical"`
	WarmStart       *warmRow  `json:"warmstart,omitempty"`
}

func main() {
	workers := flag.Int("workers", min(16, runtime.NumCPU()), "shared pool worker count")
	cases := flag.String("cases", "", "comma-separated case IDs (default: all twelve)")
	cacheDir := flag.String("cache", "testdata/cases", "model cache directory")
	jsonOut := flag.String("json", "BENCH_fleet.json", "machine-readable output file (empty to disable)")
	warmCase := flag.Int("warmcase", 2, "violating Table-I case for the warm-start A/B (0 to skip)")
	flag.Parse()

	specs := repro.TableICases()
	if *cases != "" {
		var sel []repro.CaseSpec
		for _, tok := range strings.Split(*cases, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				log.Fatalf("bad case id %q", tok)
			}
			spec, err := repro.FindCase(id)
			if err != nil {
				log.Fatal(err)
			}
			sel = append(sel, spec)
		}
		specs = sel
	}

	charOpts := func() repro.CharOptions {
		return repro.CharOptions{Core: repro.SolverOptions{Threads: *workers, Seed: 1}}
	}

	models := make([]*repro.Model, len(specs))
	for i, spec := range specs {
		m, err := statespace.CachedCase(spec, *cacheDir)
		if err != nil {
			log.Fatalf("case %d: %v", spec.ID, err)
		}
		models[i] = m
	}

	out := benchOut{Workers: *workers, HostCores: runtime.NumCPU(), AllBitIdentical: true}
	fmt.Printf("Fleet bench — %d cases, shared pool of %d workers (host: %d cores)\n",
		len(specs), *workers, runtime.NumCPU())

	// Phase 1: solo baseline, sequential, private pool per solve.
	soloReps := make([]*repro.Report, len(specs))
	soloNS := make([]int64, len(specs))
	soloStart := time.Now()
	for i, spec := range specs {
		start := time.Now()
		rep, err := repro.Characterize(models[i], charOpts())
		if err != nil {
			log.Fatalf("solo case %d: %v", spec.ID, err)
		}
		soloNS[i] = time.Since(start).Nanoseconds()
		soloReps[i] = rep
	}
	out.SoloWallNS = time.Since(soloStart).Nanoseconds()

	// Phase 2: the same characterizations, all at once, on one shared pool.
	engine := repro.NewFleet(*workers)
	jobs := make([]*repro.FleetJob, len(specs))
	fleetNS := make([]int64, len(specs))
	var latencyWG sync.WaitGroup
	fleetStart := time.Now()
	for i := range specs {
		j, err := engine.Submit(context.Background(), repro.FleetRequest{
			Model: models[i],
			Char:  charOpts(),
		})
		if err != nil {
			log.Fatalf("submit case %d: %v", specs[i].ID, err)
		}
		jobs[i] = j
		latencyWG.Add(1)
		go func(i int) {
			defer latencyWG.Done()
			<-jobs[i].Done()
			fleetNS[i] = time.Since(fleetStart).Nanoseconds()
		}(i)
	}
	fleetReps := make([]*repro.Report, len(specs))
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			log.Fatalf("fleet case %d: %v", specs[i].ID, err)
		}
		fleetReps[i] = res.Report
	}
	out.FleetWallNS = time.Since(fleetStart).Nanoseconds()
	latencyWG.Wait()
	engine.Close()

	fmt.Printf("%-7s %5s %4s %8s %4s %6s | %9s %9s | %4s\n",
		"Case", "n", "p", "Nλ(pap)", "Nλ", "shifts", "solo[s]", "fleet[s]", "bit=")
	for i, spec := range specs {
		solo, fl := soloReps[i], fleetReps[i]
		bit := len(solo.Crossings) == len(fl.Crossings)
		if bit {
			for k := range solo.Crossings {
				if solo.Crossings[k] != fl.Crossings[k] {
					bit = false
					break
				}
			}
		}
		if !bit {
			out.AllBitIdentical = false
		}
		row := caseRow{
			Case: spec.ID, N: spec.N, P: spec.P,
			Nlambda: len(fl.Crossings), NlambdaSolo: len(solo.Crossings),
			PaperNlambda: spec.PaperNlambda, BitIdentical: bit,
			SoloNS: soloNS[i], FleetNS: fleetNS[i],
			Shifts: fl.Solver.ShiftsProcessed, ShiftsSolo: solo.Solver.ShiftsProcessed,
			Passive: fl.Passive, WorstSigma: fl.WorstViolation(),
		}
		out.Cases = append(out.Cases, row)
		fmt.Printf("Case %-2d %5d %4d %8d %4d %6d | %9.3f %9.3f | %v\n",
			spec.ID, spec.N, spec.P, spec.PaperNlambda, row.Nlambda, row.Shifts,
			float64(row.SoloNS)/1e9, float64(row.FleetNS)/1e9, bit)
	}
	out.Speedup = float64(out.SoloWallNS) / float64(out.FleetWallNS)
	out.ThroughputJobsS = float64(len(specs)) / (float64(out.FleetWallNS) / 1e9)
	fmt.Printf("solo wall %.3fs, fleet wall %.3fs → %.2fx, %.2f jobs/s, all bit-identical: %v\n",
		float64(out.SoloWallNS)/1e9, float64(out.FleetWallNS)/1e9,
		out.Speedup, out.ThroughputJobsS, out.AllBitIdentical)

	// Phase 3: warm-start A/B on a violating case.
	if *warmCase > 0 {
		spec, err := repro.FindCase(*warmCase)
		if err != nil {
			log.Fatal(err)
		}
		m, err := statespace.CachedCase(spec, *cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		run := func(cold bool) (*repro.EnforceReport, int64) {
			start := time.Now()
			_, rep, err := repro.Enforce(m, repro.EnforceOptions{
				Char: charOpts(), ColdStart: cold,
			})
			if err != nil {
				log.Fatalf("enforce (cold=%v) case %d: %v", cold, spec.ID, err)
			}
			return rep, time.Since(start).Nanoseconds()
		}
		coldRep, coldNS := run(true)
		warmRep, warmNS := run(false)
		w := warmRow{
			Case:       spec.ID,
			ColdShifts: coldRep.SolverTotals.ShiftsProcessed,
			WarmShifts: warmRep.SolverTotals.ShiftsProcessed,
			ColdNS:     coldNS, WarmNS: warmNS,
			Iterations: warmRep.Iterations,
			Passive:    warmRep.FinalReport.Passive,
		}
		w.ShiftsSavedPC = 100 * (1 - float64(w.WarmShifts)/float64(w.ColdShifts))
		out.WarmStart = &w
		fmt.Printf("warm-start A/B (case %d, %d iterations): shifts cold %d → warm %d (%.1f%% saved), time %.3fs → %.3fs\n",
			w.Case, w.Iterations, w.ColdShifts, w.WarmShifts, w.ShiftsSavedPC,
			float64(w.ColdNS)/1e9, float64(w.WarmNS)/1e9)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
