package main

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

var update = flag.Bool("update", false, "regenerate the .snp fixture under testdata/touchstone")

// fixture is a real (checked-in) two-port Touchstone sweep of a
// deliberately non-passive device: the end-to-end acceptance path
// stream-parse → vector fit → Hamiltonian characterization must find its
// violation band.
const fixture = "../../testdata/touchstone/coupled.s2p"

func regenFixture(t *testing.T) {
	t.Helper()
	model, err := repro.GenerateModel(42, repro.GenOptions{
		Ports: 2, Order: 12, TargetPeak: 1.05, GridPoints: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := repro.SampleModel(model, repro.LogGrid(2*math.Pi*1e8, 2*math.Pi*2e10, 240))
	if err := os.MkdirAll(filepath.Dir(fixture), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(fixture)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := repro.WriteTouchstone(f, samples, repro.TouchstoneRI, 50); err != nil {
		t.Fatal(err)
	}
}

func TestSnpcheckEndToEnd(t *testing.T) {
	if *update {
		regenFixture(t)
	}
	var buf bytes.Buffer
	// Port count comes from the .s2p extension; order matches the device.
	if err := run([]string{"-order", "12", "-threads", "2", fixture}, nil, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"ingested 240 samples",
		"2 ports",
		"vector fit",
		"verdict: NOT PASSIVE",
		"violation band",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSnpcheckStdin(t *testing.T) {
	src, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-ports", "2", "-order", "12", "-threads", "2", "-"},
		bytes.NewReader(src), &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "verdict:") {
		t.Fatalf("no verdict in output:\n%s", buf.String())
	}
}

func TestSnpcheckErrors(t *testing.T) {
	var buf bytes.Buffer
	// Stdin without -ports: the extension cannot be inferred.
	if err := run([]string{"-"}, strings.NewReader(""), &buf); err == nil ||
		!strings.Contains(err.Error(), "-ports") {
		t.Fatalf("want a -ports error, got %v", err)
	}
	// Parse errors must surface the line/byte offsets of the streaming reader.
	bad := "# GHz S RI R 50\n1 0.1 0.2 0.3 0.4 0.5 0.6 0.7 0.8\n2 0.1 oops\n"
	err := run([]string{"-ports", "2", "-"}, strings.NewReader(bad), &buf)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a positioned parse error, got %v", err)
	}
	// No input file at all.
	if err := run(nil, nil, &buf); err == nil {
		t.Fatal("want an argument-count error")
	}
}
