package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

var update = flag.Bool("update", false, "regenerate the .snp fixture under testdata/touchstone")

// fixture is a real (checked-in) two-port Touchstone sweep of a
// deliberately non-passive device: the end-to-end acceptance path
// stream-parse → vector fit → Hamiltonian characterization must find its
// violation band.
const fixture = "../../testdata/touchstone/coupled.s2p"

func regenFixture(t *testing.T) {
	t.Helper()
	model, err := repro.GenerateModel(42, repro.GenOptions{
		Ports: 2, Order: 12, TargetPeak: 1.05, GridPoints: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := repro.SampleModel(model, repro.LogGrid(2*math.Pi*1e8, 2*math.Pi*2e10, 240))
	if err := os.MkdirAll(filepath.Dir(fixture), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(fixture)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := repro.WriteTouchstone(f, samples, repro.TouchstoneRI, 50); err != nil {
		t.Fatal(err)
	}
}

func TestSnpcheckEndToEnd(t *testing.T) {
	if *update {
		regenFixture(t)
	}
	var buf bytes.Buffer
	// Port count comes from the .s2p extension; order matches the device.
	if err := run([]string{"-order", "12", "-threads", "2", fixture}, nil, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"ingested 240 samples",
		"2 ports",
		"vector fit",
		"verdict: NOT PASSIVE",
		"violation band",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSnpcheckJSONPhases: -json must carry the characterization report
// plus the fit diagnostics and the per-phase stats of the one pool the
// whole pipeline ran on — including the new fit and refine phases.
func TestSnpcheckJSONPhases(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-order", "12", "-threads", "2", "-json", "-", fixture}, nil, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	start := strings.Index(out, "{")
	if start < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var doc struct {
		Report struct {
			Passive   bool      `json:"passive"`
			Crossings []float64 `json:"crossings"`
		} `json:"report"`
		Fit struct {
			Order    int     `json:"order"`
			States   int     `json:"states"`
			RMSError float64 `json:"rms_error"`
		} `json:"fit"`
		PoolPhases map[string]struct {
			Tasks  int   `json:"tasks"`
			BusyNS int64 `json:"busy_ns"`
		} `json:"pool_phases"`
	}
	if err := json.Unmarshal([]byte(out[start:]), &doc); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out[start:])
	}
	if doc.Report.Passive || len(doc.Report.Crossings) == 0 {
		t.Fatalf("fixture must characterize as non-passive with crossings: %+v", doc.Report)
	}
	if doc.Fit.Order != 12 || doc.Fit.States == 0 || doc.Fit.RMSError <= 0 {
		t.Fatalf("fit diagnostics missing: %+v", doc.Fit)
	}
	for _, phase := range []string{"fit", "eig", "probe", "refine"} {
		if doc.PoolPhases[phase].Tasks == 0 {
			t.Fatalf("phase %q absent from pool_phases: %+v", phase, doc.PoolPhases)
		}
	}
}

func TestSnpcheckStdin(t *testing.T) {
	src, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-ports", "2", "-order", "12", "-threads", "2", "-"},
		bytes.NewReader(src), &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "verdict:") {
		t.Fatalf("no verdict in output:\n%s", buf.String())
	}
}

func TestSnpcheckErrors(t *testing.T) {
	var buf bytes.Buffer
	// Stdin without -ports: the extension cannot be inferred.
	if err := run([]string{"-"}, strings.NewReader(""), &buf); err == nil ||
		!strings.Contains(err.Error(), "-ports") {
		t.Fatalf("want a -ports error, got %v", err)
	}
	// Parse errors must surface the line/byte offsets of the streaming reader.
	bad := "# GHz S RI R 50\n1 0.1 0.2 0.3 0.4 0.5 0.6 0.7 0.8\n2 0.1 oops\n"
	err := run([]string{"-ports", "2", "-"}, strings.NewReader(bad), &buf)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a positioned parse error, got %v", err)
	}
	// No input file at all.
	if err := run(nil, nil, &buf); err == nil {
		t.Fatal("want an argument-count error")
	}
}
