// Command snpcheck is the measured-data front door of the passivity tools:
// it streams a Touchstone .snp file (or stdin) through the bounded-memory
// parser, identifies a rational macromodel with Vector Fitting as samples
// arrive, runs the parallel Hamiltonian characterization, and prints a
// passivity report. Parse errors include line and byte offsets.
//
// Usage examples:
//
//	snpcheck coupled.s2p
//	snpcheck -order 24 -threads 8 measured.s4p
//	cat sweep.s2p | snpcheck -ports 2 -order 16 -
//
// The port count is inferred from the .sNp extension when -ports is 0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"strconv"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "snpcheck:", err)
		os.Exit(1)
	}
}

var snpExt = regexp.MustCompile(`(?i)\.s(\d+)p$`)

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("snpcheck", flag.ContinueOnError)
	fs.SetOutput(out)
	ports := fs.Int("ports", 0, "port count (0 = infer from the .sNp extension; required for stdin)")
	order := fs.Int("order", 20, "per-column Vector Fitting order")
	relaxed := fs.Bool("relaxed", false, "use the relaxed VF non-triviality constraint")
	threads := fs.Int("threads", runtime.NumCPU(), "eigensolver worker threads")
	seed := fs.Int64("seed", 1, "eigensolver start-vector seed")
	jsonOut := fs.String("json", "", "write the characterization report as JSON to this file ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file (or '-' for stdin), got %d args", fs.NArg())
	}
	path := fs.Arg(0)

	var in io.Reader
	if path == "-" {
		in = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		if *ports == 0 {
			if m := snpExt.FindStringSubmatch(path); m != nil {
				*ports, _ = strconv.Atoi(m[1])
			}
		}
	}
	if *ports == 0 {
		return fmt.Errorf("cannot infer port count from %q: pass -ports", path)
	}

	// Stream: parse → accumulate the fit system sample by sample.
	rd, err := repro.NewTouchstoneReader(in, *ports)
	if err != nil {
		return err
	}
	ft := repro.NewVFFitter(*order, repro.VFOptions{Relaxed: *relaxed})
	var lo, hi float64
	if err := rd.Each(func(s repro.VFSample) error {
		if ft.Len() == 0 {
			lo = s.Omega
		}
		hi = s.Omega
		return ft.Add(s)
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "ingested %d samples, %d ports, %s format, ref %g Ω, band [%.6g, %.6g] rad/s\n",
		rd.Samples(), rd.Ports(), rd.Format(), rd.Reference(), lo, hi)

	fit, err := ft.Finish()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "vector fit: order %d per column → %d states, RMS error %.3e\n",
		*order, fit.Model.Order(), fit.RMSError)

	report, err := repro.Characterize(fit.Model, repro.CharOptions{
		Core: repro.SolverOptions{Threads: *threads, Seed: *seed},
	})
	if err != nil {
		return err
	}
	printReport(out, report)

	if *jsonOut != "" {
		if *jsonOut == "-" {
			return report.WriteJSON(out)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		// A failed Close (e.g. ENOSPC flush) must not leave a truncated
		// report behind a zero exit status.
		return f.Close()
	}
	return nil
}

func printReport(out io.Writer, r *repro.Report) {
	fmt.Fprintf(out, "searched band: [0, %.6g] rad/s\n", r.OmegaMax)
	fmt.Fprintf(out, "N_lambda (imaginary Hamiltonian eigenvalues): %d\n", len(r.Crossings))
	fmt.Fprintf(out, "solver: %d shifts, %d restarts, %d applies, %v\n",
		r.Solver.ShiftsProcessed, r.Solver.Restarts, r.Solver.OpApplies, r.Solver.Elapsed)
	if r.Passive {
		fmt.Fprintln(out, "verdict: PASSIVE")
		return
	}
	fmt.Fprintln(out, "verdict: NOT PASSIVE")
	for _, b := range r.Violations() {
		hi := fmt.Sprintf("%.6g", b.Hi)
		if math.IsInf(b.Hi, 1) {
			hi = "inf"
		}
		fmt.Fprintf(out, "  violation band [%.6g, %s] rad/s  peak σ=%.6f @ ω=%.6g\n",
			b.Lo, hi, b.PeakSigma, b.PeakOmega)
	}
}
