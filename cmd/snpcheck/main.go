// Command snpcheck is the measured-data front door of the passivity tools:
// it streams a Touchstone .snp file (or stdin) through the bounded-memory
// parser, identifies a rational macromodel with Vector Fitting as samples
// arrive, runs the parallel Hamiltonian characterization, and prints a
// passivity report. Parse errors include line and byte offsets.
//
// One worker pool of -threads workers spans the whole pipeline: the
// per-column Vector Fitting LS solves, the eigensolver shifts, the band
// probes, and the refinement tails all run as tasks of one scheduling
// client, so the machine stays full from the first fitted column to the
// last polished crossing. -json reports the per-phase pool utilization
// alongside the characterization.
//
// Usage examples:
//
//	snpcheck coupled.s2p
//	snpcheck -order 24 -threads 8 measured.s4p
//	cat sweep.s2p | snpcheck -ports 2 -order 16 -
//
// The port count is inferred from the .sNp extension when -ports is 0.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "snpcheck:", err)
		os.Exit(1)
	}
}

var snpExt = regexp.MustCompile(`(?i)\.s(\d+)p$`)

// jsonFit summarizes the Vector Fitting stage for -json output.
type jsonFit struct {
	Order      int     `json:"order"`
	States     int     `json:"states"`
	RMSError   float64 `json:"rms_error"`
	Iterations []int   `json:"iterations_per_column"`
}

// jsonPhase is one pool compute phase's execution counters.
type jsonPhase struct {
	Tasks  int   `json:"tasks"`
	BusyNS int64 `json:"busy_ns"`
}

// jsonOut is the -json document: the characterization report plus the fit
// diagnostics and the per-phase utilization of the shared worker pool
// (keys: fit, eig, probe, refine, ...).
type jsonOut struct {
	Report     json.RawMessage      `json:"report"`
	Fit        jsonFit              `json:"fit"`
	PoolPhases map[string]jsonPhase `json:"pool_phases"`
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("snpcheck", flag.ContinueOnError)
	fs.SetOutput(out)
	ports := fs.Int("ports", 0, "port count (0 = infer from the .sNp extension; required for stdin)")
	order := fs.Int("order", 20, "per-column Vector Fitting order")
	relaxed := fs.Bool("relaxed", false, "use the relaxed VF non-triviality constraint")
	threads := fs.Int("threads", runtime.NumCPU(), "shared worker-pool width (fit + eigensolver + probes)")
	seed := fs.Int64("seed", 1, "eigensolver start-vector seed")
	jsonOutPath := fs.String("json", "", "write the report, fit diagnostics and pool phase stats as JSON to this file ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file (or '-' for stdin), got %d args", fs.NArg())
	}
	path := fs.Arg(0)

	var in io.Reader
	if path == "-" {
		in = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		if *ports == 0 {
			if m := snpExt.FindStringSubmatch(path); m != nil {
				*ports, _ = strconv.Atoi(m[1])
			}
		}
	}
	if *ports == 0 {
		return fmt.Errorf("cannot infer port count from %q: pass -ports", path)
	}

	// One shared pool for the whole pipeline: the fleet engine owns it, the
	// client is the scheduling identity every compute phase runs under.
	engine := repro.NewFleet(*threads)
	defer engine.Close()
	client := engine.NewClient(repro.PriorityInteractive, 1)

	// Stream: parse → accumulate the fit system sample by sample.
	rd, err := repro.NewTouchstoneReader(in, *ports)
	if err != nil {
		return err
	}
	ft := repro.NewVFFitter(*order, repro.VFOptions{Relaxed: *relaxed, Client: client})
	var lo, hi float64
	if err := rd.Each(func(s repro.VFSample) error {
		if ft.Len() == 0 {
			lo = s.Omega
		}
		hi = s.Omega
		return ft.Add(s)
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "ingested %d samples, %d ports, %s format, ref %g Ω, band [%.6g, %.6g] rad/s\n",
		rd.Samples(), rd.Ports(), rd.Format(), rd.Reference(), lo, hi)

	// The per-column LS solves fan out as PhaseFit tasks on the pool.
	fit, err := ft.Finish()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "vector fit: order %d per column → %d states, RMS error %.3e\n",
		*order, fit.Model.Order(), fit.RMSError)

	report, err := repro.Characterize(fit.Model, repro.CharOptions{
		Core: repro.SolverOptions{Threads: *threads, Seed: *seed, Client: client},
	})
	if err != nil {
		return err
	}
	printReport(out, report)
	printPhases(out, engine.PhaseStats())

	if *jsonOutPath != "" {
		doc, err := buildJSON(report, *order, fit, engine.PhaseStats())
		if err != nil {
			return err
		}
		if *jsonOutPath == "-" {
			_, err := out.Write(doc)
			return err
		}
		f, err := os.Create(*jsonOutPath)
		if err != nil {
			return err
		}
		if _, err := f.Write(doc); err != nil {
			f.Close()
			return err
		}
		// A failed Close (e.g. ENOSPC flush) must not leave a truncated
		// report behind a zero exit status.
		return f.Close()
	}
	return nil
}

// buildJSON assembles the -json document: report + fit + pool phases.
func buildJSON(report *repro.Report, order int, fit *repro.VFResult, phases map[string]repro.PhaseStat) ([]byte, error) {
	var repBuf bytes.Buffer
	if err := report.WriteJSON(&repBuf); err != nil {
		return nil, err
	}
	doc := jsonOut{
		Report: json.RawMessage(repBuf.Bytes()),
		Fit: jsonFit{
			Order:      order,
			States:     fit.Model.Order(),
			RMSError:   fit.RMSError,
			Iterations: fit.Iterations,
		},
		PoolPhases: make(map[string]jsonPhase, len(phases)),
	}
	for ph, st := range phases {
		doc.PoolPhases[ph] = jsonPhase{Tasks: st.Tasks, BusyNS: st.Busy.Nanoseconds()}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func printReport(out io.Writer, r *repro.Report) {
	fmt.Fprintf(out, "searched band: [0, %.6g] rad/s\n", r.OmegaMax)
	fmt.Fprintf(out, "N_lambda (imaginary Hamiltonian eigenvalues): %d\n", len(r.Crossings))
	fmt.Fprintf(out, "solver: %d shifts, %d restarts, %d applies, %v\n",
		r.Solver.ShiftsProcessed, r.Solver.Restarts, r.Solver.OpApplies, r.Solver.Elapsed)
	if r.Passive {
		fmt.Fprintln(out, "verdict: PASSIVE")
		return
	}
	fmt.Fprintln(out, "verdict: NOT PASSIVE")
	for _, b := range r.Violations() {
		hi := fmt.Sprintf("%.6g", b.Hi)
		if math.IsInf(b.Hi, 1) {
			hi = "inf"
		}
		fmt.Fprintf(out, "  violation band [%.6g, %s] rad/s  peak σ=%.6f @ ω=%.6g\n",
			b.Lo, hi, b.PeakSigma, b.PeakOmega)
	}
}

// printPhases reports how the shared pool's work split across compute
// phases (fit/eig/probe/refine/...), sorted by busy time.
func printPhases(out io.Writer, phases map[string]repro.PhaseStat) {
	names := make([]string, 0, len(phases))
	for ph := range phases {
		names = append(names, ph)
	}
	sort.Slice(names, func(i, j int) bool { return phases[names[i]].Busy > phases[names[j]].Busy })
	fmt.Fprintf(out, "pool phases:")
	for _, ph := range names {
		st := phases[ph]
		fmt.Fprintf(out, " %s=%d tasks/%.3fs", ph, st.Tasks, st.Busy.Seconds())
	}
	fmt.Fprintln(out)
}
