// Command quickstart demonstrates the minimal passivity-characterization
// workflow: generate (or obtain) a macromodel, run the parallel Hamiltonian
// eigensolver, and print the violation bands.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	// A 4-port, 120-state synthetic interconnect macromodel whose maximum
	// singular value peaks slightly above 1 — i.e., a typical slightly
	// non-passive Vector Fitting output.
	model, err := repro.GenerateModel(2024, repro.GenOptions{
		Ports:      4,
		Order:      120,
		TargetPeak: 1.04,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d ports, %d states\n", model.P, model.Order())

	report, err := repro.Characterize(model, repro.CharOptions{
		Core: repro.SolverOptions{
			Threads: runtime.NumCPU(),
			Seed:    1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("searched band: [0, %.4g] rad/s\n", report.OmegaMax)
	fmt.Printf("imaginary Hamiltonian eigenvalues (N_lambda): %d\n", len(report.Crossings))
	if report.Passive {
		fmt.Println("model is PASSIVE")
		return
	}
	fmt.Println("model is NOT passive; violation bands:")
	for _, b := range report.Violations() {
		fmt.Printf("  [%.6g, %.6g] rad/s   peak sigma %.6f at %.6g rad/s\n",
			b.Lo, b.Hi, b.PeakSigma, b.PeakOmega)
	}
	fmt.Printf("solver: %d shifts, %d Arnoldi restarts, %d operator applies in %v\n",
		report.Solver.ShiftsProcessed, report.Solver.Restarts,
		report.Solver.OpApplies, report.Solver.Elapsed)
}
