// Command enforcement runs the full characterize → enforce → re-verify
// loop on a non-passive interconnect macromodel: the workflow the paper's
// eigensolver exists to accelerate (title: "… Passivity Characterization
// and Enforcement …").
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	model, err := repro.GenerateModel(7, repro.GenOptions{
		Ports:      3,
		Order:      90,
		TargetPeak: 1.06, // ~6% worst-case passivity violation
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d ports, %d states\n", model.P, model.Order())

	charOpts := repro.CharOptions{Core: repro.SolverOptions{
		Threads: runtime.NumCPU(),
		Seed:    3,
	}}

	before, err := repro.Characterize(model, charOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: passive=%v, %d crossings, worst sigma %.6f\n",
		before.Passive, len(before.Crossings), before.WorstViolation())
	for _, b := range before.Violations() {
		fmt.Printf("  violation band [%.5g, %.5g] rad/s, peak %.6f\n", b.Lo, b.Hi, b.PeakSigma)
	}

	passive, erep, err := repro.Enforce(model, repro.EnforceOptions{
		Char:   charOpts,
		Margin: 1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enforcement: %d iterations, relative residue change %.4g\n",
		erep.Iterations, erep.ResidueChange)
	fmt.Printf("after: passive=%v (worst sigma %.6f)\n",
		erep.FinalReport.Passive, erep.FinalReport.WorstViolation())

	// Independent verification by frequency sweep.
	if err := repro.VerifyBySampling(passive, erep.FinalReport, 800); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("sweep verification: OK — all sampled sigma <= 1")

	// The fit quality impact of the perturbation.
	grid := repro.LogGrid(1e8, 1e10, 30)
	var worst float64
	for _, w := range grid {
		h0 := model.EvalJW(w)
		h1 := passive.EvalJW(w)
		d := h1.Sub(h0)
		if m := d.MaxAbs(); m > worst {
			worst = m
		}
	}
	fmt.Printf("max |H_passive - H_original| entry over the band: %.4g\n", worst)
}
