// Command touchstone shows the interchange flow a real signal-integrity
// team would use: tabulated S-parameters arrive as a Touchstone .s2p file,
// get identified with Vector Fitting, and the fit is screened with BOTH
// the adaptive-sampling baseline (paper ref. [17]) and the exact
// Hamiltonian test — illustrating why the algebraic test is the reliable
// one.
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	// Fabricate "measured" data and serialize it as a Touchstone stream,
	// as a VNA or field solver would deliver it.
	device, err := repro.GenerateModel(123, repro.GenOptions{
		Ports: 2, Order: 20, TargetPeak: 1.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	samples := repro.SampleModel(device, repro.LogGrid(6.28e8, 1.26e11, 300))
	var file bytes.Buffer
	if err := repro.WriteTouchstone(&file, samples, repro.TouchstoneDB, 50); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("touchstone file: %d bytes (# GHz S DB R 50)\n", file.Len())

	// Stream it back and identify a macromodel: the reader hands out one
	// sample at a time with O(ports²) working memory (multi-GB sweeps never
	// materialize), and the fitter accumulates its system as samples
	// arrive — parse errors would carry line+byte offsets.
	rd, err := repro.NewTouchstoneReader(&file, 2)
	if err != nil {
		log.Fatal(err)
	}
	fitter := repro.NewVFFitter(20, repro.VFOptions{})
	if err := rd.Each(fitter.Add); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d samples, %d ports, %s format, ref %g Ω\n",
		rd.Samples(), rd.Ports(), rd.Format(), rd.Reference())
	fit, err := fitter.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vector fit: RMS error %.3e, %d states\n", fit.RMSError, fit.Model.Order())

	// Screen 1: adaptive sampling (fast, resolution-limited).
	sweep, err := repro.CharacterizeBySampling(fit.Model, repro.SamplingOptions{
		Workers: runtime.NumCPU(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampling baseline: passive=%v, %d crossings, %d σ evaluations, resolution %.3g rad/s\n",
		sweep.Passive, len(sweep.Crossings), sweep.Evaluations, sweep.Resolution)

	// Screen 2: the exact Hamiltonian test.
	report, err := repro.Characterize(fit.Model, repro.CharOptions{
		Core: repro.SolverOptions{Threads: runtime.NumCPU(), Seed: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hamiltonian test:  passive=%v, %d crossings (exact, certified)\n",
		report.Passive, len(report.Crossings))
	for _, b := range report.Violations() {
		fmt.Printf("  violation band [%.6g, %.6g] rad/s, peak σ %.6f\n", b.Lo, b.Hi, b.PeakSigma)
	}
}
