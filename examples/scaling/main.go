// Command scaling reproduces the paper's headline claim on whatever
// machine it runs: near-ideal speedup of the dynamic multi-shift scheduler
// with the number of worker threads (paper Fig. 6 shape).
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
)

func main() {
	order := flag.Int("n", 800, "dynamic order of the benchmark model")
	ports := flag.Int("p", 16, "port count")
	runs := flag.Int("runs", 3, "timed runs per thread count")
	maxT := flag.Int("maxthreads", runtime.NumCPU(), "largest thread count to test")
	flag.Parse()

	model, err := repro.GenerateModel(5, repro.GenOptions{
		Ports:      *ports,
		Order:      *order,
		TargetPeak: 1.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d ports, %d states; %d runs per point\n", model.P, model.Order(), *runs)

	var tau1 float64
	fmt.Println("threads   mean time     speedup   (ideal)")
	for t := 1; t <= *maxT; t *= 2 {
		var total time.Duration
		var crossings int
		for r := 0; r < *runs; r++ {
			start := time.Now()
			res, err := repro.FindImagEigs(model, repro.SolverOptions{
				Threads: t,
				Seed:    int64(100 + r),
			})
			if err != nil {
				log.Fatal(err)
			}
			total += time.Since(start)
			crossings = len(res.Crossings)
		}
		mean := total.Seconds() / float64(*runs)
		if t == 1 {
			tau1 = mean
		}
		fmt.Printf("%7d   %8.3fs   %7.2fx   (%d)    N_lambda=%d\n",
			t, mean, tau1/mean, t, crossings)
	}
}
