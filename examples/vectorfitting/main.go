// Command vectorfitting demonstrates the full macromodeling flow of the
// paper's Sec. II: tabulated scattering samples (standing in for field
// solver or VNA data) → Vector Fitting → structured SIMO macromodel →
// Hamiltonian passivity characterization of the fit.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	// "Measured" data: a reference 2-port device tabulated on 200 points.
	// In a real flow these samples come from an EM solver or a VNA.
	device, err := repro.GenerateModel(99, repro.GenOptions{
		Ports:      2,
		Order:      24,
		TargetPeak: 1.03, // the device data embeds a mild violation
	})
	if err != nil {
		log.Fatal(err)
	}
	grid := repro.LogGrid(3e7, 3e10, 200)
	samples := repro.SampleModel(device, grid)
	fmt.Printf("tabulated data: %d samples, %d ports\n", len(samples), samples[0].H.Rows)

	// Identify a rational macromodel of order 24 per column.
	fit, err := repro.FitVector(samples, 24, repro.VFOptions{Iterations: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vector fitting: RMS error %.3e, per-column iterations %v\n",
		fit.RMSError, fit.Iterations)
	fmt.Printf("fitted model: %d states, %d ports\n", fit.Model.Order(), fit.Model.P)

	// Characterize the passivity of the *fitted* model — rational fits of
	// passive data are routinely slightly non-passive, which is precisely
	// why fast characterization matters.
	report, err := repro.Characterize(fit.Model, repro.CharOptions{
		Core: repro.SolverOptions{Threads: runtime.NumCPU(), Seed: 17},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model passive: %v (%d crossings)\n", report.Passive, len(report.Crossings))
	for _, b := range report.Violations() {
		fmt.Printf("  violation band [%.5g, %.5g] rad/s, peak sigma %.6f\n",
			b.Lo, b.Hi, b.PeakSigma)
	}
	if !report.Passive {
		passive, erep, err := repro.Enforce(fit.Model, repro.EnforceOptions{
			Char: repro.CharOptions{Core: repro.SolverOptions{Threads: runtime.NumCPU(), Seed: 18}},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("enforced in %d iterations (residue change %.3g); final passive: %v\n",
			erep.Iterations, erep.ResidueChange, erep.FinalReport.Passive)
		_ = passive
	}
}
