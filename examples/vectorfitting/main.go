// Command vectorfitting demonstrates the full macromodeling flow of the
// paper's Sec. II on ONE shared worker pool: tabulated scattering samples
// (standing in for field solver or VNA data) → pool-routed Vector Fitting
// (the per-column LS solves run as PhaseFit task batches) → structured
// SIMO macromodel → Hamiltonian passivity characterization of the fit,
// with every compute phase scheduled under one client.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"

	"repro"
)

func main() {
	// "Measured" data: a reference 2-port device tabulated on 200 points.
	// In a real flow these samples come from an EM solver or a VNA.
	device, err := repro.GenerateModel(99, repro.GenOptions{
		Ports:      2,
		Order:      24,
		TargetPeak: 1.03, // the device data embeds a mild violation
	})
	if err != nil {
		log.Fatal(err)
	}
	grid := repro.LogGrid(3e7, 3e10, 200)
	samples := repro.SampleModel(device, grid)
	fmt.Printf("tabulated data: %d samples, %d ports\n", len(samples), samples[0].H.Rows)

	// One pool spans the whole pipeline. The engine owns the workers; the
	// client is the scheduling identity every phase below runs under.
	engine := repro.NewFleet(runtime.NumCPU())
	defer engine.Close()
	client := engine.NewClient(repro.PriorityInteractive, 1)

	// Identify a rational macromodel of order 24 per column. The columns
	// are fitted as pool tasks — bit-identical to the sequential fit, but
	// the SVD-heavy column solves overlap on the pool's workers.
	fit, err := repro.FitVector(samples, 24, repro.VFOptions{Iterations: 8, Client: client})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vector fitting: RMS error %.3e, per-column iterations %v\n",
		fit.RMSError, fit.Iterations)
	fmt.Printf("fitted model: %d states, %d ports\n", fit.Model.Order(), fit.Model.P)

	// Characterize the passivity of the *fitted* model — rational fits of
	// passive data are routinely slightly non-passive, which is precisely
	// why fast characterization matters. Same pool, same client: shifts,
	// probes, and refinement tails all queue behind the same policy.
	report, err := repro.Characterize(fit.Model, repro.CharOptions{
		Core: repro.SolverOptions{Threads: runtime.NumCPU(), Seed: 17, Client: client},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model passive: %v (%d crossings)\n", report.Passive, len(report.Crossings))
	for _, b := range report.Violations() {
		fmt.Printf("  violation band [%.5g, %.5g] rad/s, peak sigma %.6f\n",
			b.Lo, b.Hi, b.PeakSigma)
	}
	if !report.Passive {
		passive, erep, err := repro.Enforce(fit.Model, repro.EnforceOptions{
			Char: repro.CharOptions{Core: repro.SolverOptions{Threads: runtime.NumCPU(), Seed: 18, Client: client}},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("enforced in %d iterations (residue change %.3g); final passive: %v\n",
			erep.Iterations, erep.ResidueChange, erep.FinalReport.Passive)
		_ = passive
	}

	// Where the pool's time went, phase by phase (fit/eig/probe/refine/…).
	stats := engine.PhaseStats()
	phases := make([]string, 0, len(stats))
	for ph := range stats {
		phases = append(phases, ph)
	}
	sort.Slice(phases, func(i, j int) bool { return stats[phases[i]].Busy > stats[phases[j]].Busy })
	fmt.Println("pool phases:")
	for _, ph := range phases {
		fmt.Printf("  %-10s %5d tasks %9.3fs busy\n", ph, stats[ph].Tasks, stats[ph].Busy.Seconds())
	}
}
