// Command fleet demonstrates the shared-pool job engine: a batch of
// macromodels characterized (and the non-passive ones enforced)
// concurrently on ONE worker pool sized to the machine, with bounded
// admission, a deadline on the whole batch, an interactive job that
// overtakes the queued batch work, and a Vector Fitting ingest whose
// per-column solves run on the same pool (Fleet.NewClient +
// VFOptions.Client). Compare examples/quickstart, which runs a single
// model with a private pool.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
)

func main() {
	jobs := flag.Int("jobs", 6, "number of synthetic models in the batch")
	workers := flag.Int("workers", runtime.NumCPU(), "shared pool worker count")
	maxQueued := flag.Int("maxqueued", 0, "admission cap on in-flight jobs (0 = unbounded)")
	timeout := flag.Duration("timeout", 5*time.Minute, "deadline for the whole batch")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	engine := repro.NewFleetEngine(repro.FleetOptions{
		Workers:   *workers,
		MaxQueued: *maxQueued, // Submit blocks when the queue is full
	})
	defer engine.Close()

	fmt.Printf("fleet: %d batch jobs on a shared pool of %d workers (admission cap %d)\n",
		*jobs, engine.Workers(), *maxQueued)
	//lint:ignore detfloat demo wall-clock display only; it never feeds numeric state
	start := time.Now()
	handles := make([]*repro.FleetJob, *jobs)
	for i := range handles {
		model, err := repro.GenerateModel(int64(i+1), repro.GenOptions{
			Ports: 4, Order: 120,
			TargetPeak: 0.95 + 0.02*float64(i), // a mix of passive and violating
		})
		if err != nil {
			log.Fatal(err)
		}
		// Non-passive models get enforced; Enforce characterizes first, so
		// submitting everything as an enforcement job is not wasteful.
		h, err := engine.Submit(ctx, repro.FleetRequest{
			Model:    model,
			Enforce:  &repro.EnforceOptions{},
			Priority: repro.PriorityBatch,
		})
		if err != nil {
			log.Fatal(err)
		}
		handles[i] = h
	}

	// An interactive characterization submitted mid-batch: its tasks pop
	// before any queued batch task, so it returns while the batch grinds.
	small, err := repro.GenerateModel(99, repro.GenOptions{Ports: 2, Order: 40, TargetPeak: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	interactive, err := engine.Submit(ctx, repro.FleetRequest{
		Model:    small,
		Priority: repro.PriorityInteractive,
	})
	if err != nil {
		log.Fatal(err)
	}
	ires, err := interactive.Wait()
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore detfloat demo wall-clock display only; it never feeds numeric state
	elapsed := time.Since(start)
	fmt.Printf("interactive job done in %.2fs (passive=%v) while the batch keeps running\n",
		elapsed.Seconds(), ires.Report.Passive)

	// Ingest path on the same pool: tabulated data fitted with Vector
	// Fitting whose per-column LS solves run as PhaseFit tasks of the
	// engine's pool (via a client from NewClient), then the fitted model
	// is submitted like any other job.
	device, err := repro.GenerateModel(7, repro.GenOptions{Ports: 2, Order: 16, TargetPeak: 1.02})
	if err != nil {
		log.Fatal(err)
	}
	vfClient := engine.NewClient(repro.PriorityBatch, 1)
	fit, err := repro.FitVector(
		repro.SampleModel(device, repro.LogGrid(3e7, 3e10, 80)), 16,
		repro.VFOptions{Client: vfClient})
	if err != nil {
		log.Fatal(err)
	}
	fitted, err := engine.Submit(ctx, repro.FleetRequest{Model: fit.Model})
	if err != nil {
		log.Fatal(err)
	}
	fres, err := fitted.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted ingest: RMS %.2e, fitted model passive=%v\n",
		fit.RMSError, fres.Report.Passive)

	for i, h := range handles {
		res, err := h.Wait()
		switch {
		case errors.Is(err, repro.ErrEnforcementFailed):
			fmt.Printf("job %d: enforcement budget exhausted, worst σ still %.4f (partial model kept)\n",
				i, res.EnforceReport.FinalWorst)
		case err != nil:
			log.Fatalf("job %d: %v", i, err)
		case res.EnforceReport.Iterations == 0:
			fmt.Printf("job %d: already passive (N_lambda=%d)\n", i, len(res.Report.Crossings))
		default:
			fmt.Printf("job %d: enforced in %d iterations, %d total shifts, residue change %.3g\n",
				i, res.EnforceReport.Iterations,
				res.EnforceReport.SolverTotals.ShiftsProcessed,
				res.EnforceReport.ResidueChange)
		}
	}
	//lint:ignore detfloat demo wall-clock display only; it never feeds numeric state
	fmt.Printf("batch done in %.2fs; per-phase pool work:\n", time.Since(start).Seconds())
	//lint:ignore detfloat demo display of a stats snapshot; print order does not feed results
	for ph, st := range engine.PhaseStats() {
		fmt.Printf("  %-10s %6d tasks %10.3fs busy\n", ph, st.Tasks, st.Busy.Seconds())
	}
}
