package core

import (
	"errors"
	"sync"
	"time"
)

// ErrPoolClosed is returned by Submit/RunBatch on a closed pool, and
// reported by Wait for jobs whose remaining work was discarded by Close.
var ErrPoolClosed = errors.New("core: worker pool closed")

// PriorityClass selects the scheduling tier of a Client's tasks. Workers
// always pop from the highest non-empty class, so every queued task of a
// higher class runs before any queued task of a lower one — preemption at
// task granularity (in-flight tasks are never interrupted).
type PriorityClass int

const (
	// PriorityBatch is the default class: throughput work (bulk
	// enforcement sweeps, benchmark batches).
	PriorityBatch PriorityClass = iota
	// PriorityInteractive is the latency class: a characterization a user
	// is waiting on overtakes all queued batch work.
	PriorityInteractive

	numPriorityClasses
)

// Phase labels for the pool's per-phase execution counters. Every task
// names the compute phase it belongs to; PhaseStats aggregates executed
// tasks and busy time per label, which is how cmd/fleetbench tracks
// worker utilization outside the eigensolver phase.
const (
	// PhaseEig is a tentative-interval shift task of a multi-shift solve.
	PhaseEig = "eig"
	// PhaseSetup is a batched shift-factorization task: one chunk of a
	// solve's startup shifts prefactored into the operator's shift cache
	// via the multi-shift resolvent-panel kernels (Job submission batches
	// these ahead of the per-shift PhaseEig tasks).
	PhaseSetup = "setup"
	// PhaseProbe is a per-band σ_max probe of passivity.classifyBands.
	PhaseProbe = "probe"
	// PhaseConstraint is a per-band constraint-assembly task of
	// passivity enforcement.
	PhaseConstraint = "constraint"
	// PhaseSample is a per-ω σ evaluation of the sampling baseline.
	PhaseSample = "sample"
	// PhaseFit is a Vector Fitting task: one column's pole-relocation
	// iteration (with its convergence-monitor residue solve) or final
	// residue LS solve (vectfit.Fitter).
	PhaseFit = "fit"
	// PhaseRefine is an eigenvalue-refinement task of a solve's collect
	// tail: a structured inverse-iteration polish of one near-axis
	// candidate or one canonical-polish re-refinement (each re-factors a
	// shift-invert operator).
	PhaseRefine = "refine"
)

// PhaseStat aggregates the pool-worker work spent in one compute phase.
type PhaseStat struct {
	// Tasks is the number of tasks of this phase executed by workers.
	Tasks int
	// Busy is the cumulative worker time spent executing them.
	Busy time.Duration
}

// task is one unit of pool work: a closure (batch tasks) or a tentative
// eigensolver interval, owned by a Client (its scheduling identity) and
// labeled with its compute phase. Exactly one of run and iv is set.
type task struct {
	client *Client
	phase  string

	// Batch task: run executes on a worker; abort is called instead when
	// the pool closes with the task still queued (it must unblock the
	// batch join); batch identifies siblings so a failed/canceled batch
	// can purge its queued remainder.
	run   func(worker int)
	abort func()
	batch *batch

	// Eigensolver task: the tentative interval and its owning Job.
	iv  *interval
	job *Job
}

// Client is a scheduling identity registered with a Pool: every task it
// submits (eigensolver intervals via Submit, generic batches via RunBatch)
// is queued FIFO under the client and competes with other clients under
// the client's priority class and weighted-round-robin share. A fleet job
// uses one client across all of its compute phases; a standalone Solve
// gets an ephemeral one.
//
// Clients hold no resources and need no teardown; all fields below mu are
// guarded by the owning pool's mutex.
type Client struct {
	pool      *Pool
	pri       PriorityClass
	weight    int
	maxQueued int // RunBatch enqueue window, 0 = unbounded

	queue  []*task       // this client's pending tasks, FIFO
	credit int           // WRR pops left before the client rotates to the back
	queued bool          // client is in its class ring
	busy   time.Duration // cumulative worker time spent on this client's tasks
}

// ClientOptions configures a pool client.
type ClientOptions struct {
	// Priority selects the scheduling class (default PriorityBatch).
	Priority PriorityClass
	// Weight is the weighted-round-robin share relative to other clients
	// of the same class: a weight-2 client gets two task pops per round
	// for every one of a weight-1 client. Minimum (and default) 1.
	Weight int
	// MaxQueuedTasks bounds how many tasks of one RunBatch call sit in the
	// client's queue at a time: larger batches are enqueued in chunks of
	// this size, each chunk joining before the next is queued. A
	// pathological fan-out (a 10⁵-band report's probe batch) then costs
	// O(MaxQueuedTasks) pool-queue memory instead of O(batch). 0 (the
	// default) enqueues every batch whole — the historical behavior.
	// Chunking is invisible to results: tasks still write only their own
	// index-assigned slots, and per-client FIFO order is preserved.
	MaxQueuedTasks int
}

// NewClient registers a scheduling identity with the pool.
func (p *Pool) NewClient(o ClientOptions) *Client {
	if o.Weight < 1 {
		o.Weight = 1
	}
	if o.Priority < 0 || o.Priority >= numPriorityClasses {
		o.Priority = PriorityBatch
	}
	if o.MaxQueuedTasks < 0 {
		o.MaxQueuedTasks = 0
	}
	return &Client{pool: p, pri: o.Priority, weight: o.Weight, maxQueued: o.MaxQueuedTasks}
}

// Pool returns the pool the client is registered with.
func (c *Client) Pool() *Pool { return c.pool }

// BusyTime returns the cumulative worker time spent executing this
// client's tasks — the job's actual compute cost on the pool, as opposed
// to its wall-clock latency, which on a contended pool also counts time
// spent queued behind other clients' work. Telemetry only; it never feeds
// numeric state.
func (c *Client) BusyTime() time.Duration {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	return c.busy
}

// Pool is a fixed set of worker goroutines shared by any number of
// concurrent jobs. It is a phase-agnostic task executor: multi-shift
// eigensolver solves feed it tentative-interval tasks (Submit), and the
// non-eigensolver phases — σ_max band probes, enforcement constraint
// assembly, sampling sweeps — feed it closure batches (Client.RunBatch),
// so a fleet machine stays exactly full between eigensolver phases too.
// A standalone Solve is the degenerate case: a private pool with
// Options.Threads workers and a single job.
//
// Scheduling is two-level. Tasks are queued FIFO per Client; clients with
// pending work sit in one round-robin ring per priority class. A worker
// pops from the highest non-empty class (interactive work overtakes batch
// work at task granularity) and rotates through that class's clients by
// weighted round robin, so equal-priority jobs share the workers fairly
// instead of the oldest job monopolizing them. Per-client FIFO preserves
// the paper's interval pick order (Sec. IV-B/C/D) within each solve; the
// per-job scheduler state itself lives on Job. Everything is serialized
// by mu; cond wakes workers when tasks appear.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	rings   [numPriorityClasses][]*Client // clients with pending tasks, WRR order
	phase   map[string]PhaseStat
	closed  bool
	workers int
	wg      sync.WaitGroup
}

// NewPool starts a pool with the given number of workers (minimum 1).
// Callers must Close it to release the worker goroutines.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := newIdlePool(workers)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// newIdlePool builds the pool state without spawning workers (used directly
// by scheduler unit tests that drive the queue synchronously).
func newIdlePool(workers int) *Pool {
	p := &Pool{workers: workers, phase: make(map[string]PhaseStat)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Workers returns the worker count the pool was created with.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth returns the number of tasks currently queued (not yet picked
// up by a worker) across all clients and priority classes. Observational
// only — the value can change the instant the lock is released.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	depth := 0
	for class := range p.rings {
		for _, c := range p.rings[class] {
			depth += len(c.queue)
		}
	}
	return depth
}

// PhaseStats returns a snapshot of the per-phase execution counters:
// tasks executed and cumulative worker-busy time, keyed by phase label
// (PhaseEig, PhaseProbe, ...).
func (p *Pool) PhaseStats() map[string]PhaseStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]PhaseStat, len(p.phase))
	//lint:ignore detfloat map-to-map snapshot copy; iteration order cannot affect the result
	for k, v := range p.phase {
		out[k] = v
	}
	return out
}

// Close discards all queued tasks (failing their jobs and batches with
// ErrPoolClosed), lets in-flight tasks finish, and blocks until every
// worker has exited. Closing an already-closed pool is a no-op.
func (p *Pool) Close() {
	p.mu.Lock()
	var aborts []func()
	if !p.closed {
		p.closed = true
		orphaned := make(map[*Job]bool)
		for class := range p.rings {
			for _, c := range p.rings[class] {
				for _, t := range c.queue {
					if t.iv != nil {
						t.job.pending--
						orphaned[t.job] = true
					} else if t.abort != nil {
						aborts = append(aborts, t.abort)
					}
				}
				c.queue = nil
				c.queued = false
			}
			p.rings[class] = nil
		}
		//lint:ignore detfloat order-free drain of the orphaned-job set; each job is finalized independently
		for j := range orphaned {
			if j.err == nil {
				j.err = ErrPoolClosed
			}
			j.maybeFinishLocked()
		}
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	// Aborts close batch done channels; run them outside mu so joiners can
	// wake without lock-ordering concerns.
	for _, a := range aborts {
		a()
	}
	p.wg.Wait()
}

// enqueueLocked appends a task to its client's FIFO and makes sure the
// client is in its class ring. Callers broadcast cond after enqueueing.
func (p *Pool) enqueueLocked(t *task) {
	c := t.client
	c.queue = append(c.queue, t)
	if !c.queued {
		c.queued = true
		c.credit = c.weight
		p.rings[c.pri] = append(p.rings[c.pri], c)
	}
}

// worker is the pool's work loop: take the next runnable task under the
// priority/fairness policy, execute it, account its phase.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		var t *task
		for {
			t = p.popLocked()
			if t != nil || p.closed {
				break
			}
			p.cond.Wait()
		}
		p.mu.Unlock()
		if t == nil {
			return
		}
		p.execute(t, id)
	}
}

// execute runs one admitted task on the calling goroutine and accounts
// its phase and client busy time. Shared by the worker loop and the
// mid-shift yield path.
func (p *Pool) execute(t *task, worker int) {
	//lint:ignore detfloat worker busy-time telemetry only; it never feeds numeric state
	start := time.Now()
	if t.iv != nil {
		t.job.runInterval(p, worker, t.iv)
	} else {
		t.run(worker)
	}
	//lint:ignore detfloat worker busy-time telemetry only; it never feeds numeric state
	busy := time.Since(start)
	p.mu.Lock()
	s := p.phase[t.phase]
	s.Tasks++
	s.Busy += busy
	p.phase[t.phase] = s
	t.client.busy += busy
	p.mu.Unlock()
}

// YieldInteractive runs queued interactive-class tasks to exhaustion on
// the calling goroutine. It is the cooperative mid-shift preemption
// point: a batch-class shift invokes it at every Arnoldi restart
// boundary (via arnoldi.SingleShiftParams.Yield), so an interactive
// job's first pop latency is bounded by one restart sweep instead of a
// whole shift. Admission, fairness, and accounting are identical to a
// worker pop — the yield only changes WHEN the interactive task runs,
// never with what data, so results stay bit-identical. Interactive tasks
// themselves never yield, bounding the inline nesting at depth one; the
// yielding task's own busy-time measurement includes the inline work
// (telemetry skew only, documented in PhaseStats consumers).
func (p *Pool) YieldInteractive(worker int) {
	for {
		p.mu.Lock()
		t := p.popClassLocked(int(PriorityInteractive))
		p.mu.Unlock()
		if t == nil {
			return
		}
		p.execute(t, worker)
	}
}

// popLocked removes and admits the next runnable task: highest priority
// class first, weighted round robin across that class's clients, FIFO
// within a client. Skipped tasks (failed jobs, exhausted shift budgets)
// are accounted on the fly. Returns nil when no runnable work is queued.
func (p *Pool) popLocked() *task {
	for class := int(numPriorityClasses) - 1; class >= 0; class-- {
		if t := p.popClassLocked(class); t != nil {
			return t
		}
	}
	return nil
}

// popClassLocked removes and admits the next runnable task of one
// priority class (weighted round robin across the class's clients, FIFO
// within a client), or nil when the class has none.
func (p *Pool) popClassLocked(class int) *task {
	ring := p.rings[class]
	for len(ring) > 0 {
		c := ring[0]
		t := c.nextRunnableLocked(p)
		switch {
		case t == nil || len(c.queue) == 0:
			// Drained (possibly by skips): leave the ring; credit is
			// re-armed on re-entry.
			ring = ring[1:]
			c.queued = false
		default:
			c.credit--
			if c.credit <= 0 {
				ring = append(ring[1:], c)
				c.credit = c.weight
			}
		}
		if t != nil {
			p.rings[class] = ring
			return t
		}
	}
	p.rings[class] = ring
	return nil
}

// nextRunnableLocked pops the client's oldest runnable task, skipping (and
// accounting for) eigensolver tasks of failed jobs and enforcing each
// job's shift budget. Returns nil when the client queue holds no runnable
// work.
func (c *Client) nextRunnableLocked(p *Pool) *task {
	for len(c.queue) > 0 {
		t := c.queue[0]
		c.queue = c.queue[1:]
		if t.iv == nil {
			return t
		}
		j := t.job
		j.pending--
		if j.err != nil {
			j.maybeFinishLocked()
			continue
		}
		if j.processed >= j.opts.MaxShifts {
			j.failLocked(p, errShiftBudget(j.opts.MaxShifts))
			continue
		}
		j.processed++
		j.inflight++
		// Track the in-flight interval: its result is not committed yet,
		// so checkpoint snapshots must include it in the uncovered set.
		j.running = append(j.running, t.iv)
		return t
	}
	return nil
}
