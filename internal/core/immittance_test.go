package core

import (
	"math"
	"testing"

	"repro/internal/arnoldi"
	"repro/internal/hamiltonian"
	"repro/internal/mat"
	"repro/internal/statespace"
)

// immittanceModel builds a model with positive-definite D+Dᵀ whose
// Hermitian-part margin λ_min(H+Hᴴ) dips below zero (scale > critical) or
// stays positive (scale small).
func immittanceModel(t *testing.T, seed int64, order int, scale float64) *statespace.Model {
	t.Helper()
	m, err := statespace.Generate(seed, statespace.GenOptions{
		Ports: 2, Order: order, TargetPeak: 1.05, GridPoints: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replace D with a solidly positive-real direct coupling.
	m.D = mat.DenseFromSlice(2, 2, []float64{1.0, 0.2, -0.1, 0.8})
	for k := range m.Cols {
		m.Cols[k].C = m.Cols[k].C.Scale(scale)
	}
	return m
}

// denseImmittanceCrossings finds sign changes of λ_min(H+Hᴴ) on a fine
// sweep (ground truth up to grid resolution).
func denseImmittanceCrossings(t *testing.T, m *statespace.Model, omegaMax float64) []float64 {
	t.Helper()
	grid := statespace.SweepGrid(m, omegaMax*1e-5, omegaMax, 4000)
	var crossings []float64
	prev, err := m.MinHermEig(grid[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range grid[1:] {
		cur, err := m.MinHermEig(w)
		if err != nil {
			t.Fatal(err)
		}
		if prev*cur < 0 {
			crossings = append(crossings, w)
		}
		prev = cur
	}
	return crossings
}

func TestImmittanceSolveMatchesDenseBaseline(t *testing.T) {
	m := immittanceModel(t, 81, 20, 2.0)
	op, err := hamiltonian.New(m, hamiltonian.Immittance)
	if err != nil {
		t.Fatal(err)
	}
	want, err := op.FullImagEigs(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(op, Options{
		Threads: 2, Seed: 7,
		Arnoldi: arnoldi.SingleShiftParams{NWanted: 4, MaxDim: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crossings) != len(want) {
		t.Fatalf("multi-shift found %d crossings %v, dense found %d %v",
			len(res.Crossings), res.Crossings, len(want), want)
	}
	for i := range want {
		if math.Abs(res.Crossings[i]-want[i]) > 1e-5*res.OmegaMax {
			t.Fatalf("crossing %d: %g vs %g", i, res.Crossings[i], want[i])
		}
	}
}

func TestImmittanceCrossingsAreSingularityFrequencies(t *testing.T) {
	// Every immittance Hamiltonian crossing must be a frequency where an
	// eigenvalue of the Hermitian part crosses zero (checked by sweep).
	m := immittanceModel(t, 82, 18, 2.5)
	op, err := hamiltonian.New(m, hamiltonian.Immittance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(op, Options{Threads: 2, Seed: 3, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crossings) == 0 {
		t.Skip("model has no immittance violations at this scale")
	}
	sweep := denseImmittanceCrossings(t, m, res.OmegaMax)
	// Each sweep crossing must have a Hamiltonian counterpart (the sweep
	// may miss narrow features, so only check this direction).
	for _, w := range sweep {
		best := math.Inf(1)
		for _, g := range res.Crossings {
			if d := math.Abs(g - w); d < best {
				best = d
			}
		}
		// The sweep localizes a crossing only to one log-grid interval
		// (~3e-3 relative at 4000 points over 5 decades).
		if best > 5e-3*w {
			t.Fatalf("sweep zero-crossing near ω=%g has no Hamiltonian eigenvalue (gap %g)", w, best)
		}
	}
	// At each crossing, the Hermitian part must be (nearly) singular.
	for _, w := range res.Crossings {
		lm, err := m.MinHermEig(w)
		if err != nil {
			t.Fatal(err)
		}
		// Use the margin slope scale: compare against the value a bit away.
		ref, err := m.MinHermEig(w * 1.01)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lm) > math.Abs(ref)+1e-6 && math.Abs(lm) > 1e-3 {
			t.Fatalf("λ_min at crossing ω=%g is %g (not near zero; nearby %g)", w, lm, ref)
		}
	}
}

func TestImmittancePassiveModelNoCrossings(t *testing.T) {
	m := immittanceModel(t, 83, 16, 0.05) // tiny residues: strictly positive real
	op, err := hamiltonian.New(m, hamiltonian.Immittance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(op, Options{Threads: 2, Seed: 5, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crossings) != 0 {
		t.Fatalf("positive-real model reported crossings %v", res.Crossings)
	}
}
