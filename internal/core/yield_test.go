package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/arnoldi"
)

// TestYieldInteractiveInline pins the cooperative-preemption semantics of
// YieldInteractive on a single-worker pool, timing-free: while a batch
// task occupies the only worker, a queued interactive task can run ONLY
// through the yield, inline on the yielding worker — and a queued
// batch-class task must NOT be picked up by it.
func TestYieldInteractiveInline(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	batch := pool.NewClient(ClientOptions{Priority: PriorityBatch})
	batch2 := pool.NewClient(ClientOptions{Priority: PriorityBatch})
	inter := pool.NewClient(ClientOptions{Priority: PriorityInteractive})

	ranOn := make(chan int, 1)    // worker index the interactive task executed on
	interDone := make(chan error, 1)
	batchRan := make(chan struct{}, 1)
	batch2Done := make(chan error, 1)

	err := batch.RunBatch(context.Background(), PhaseEig, []func(int) error{func(w int) error {
		// The only worker is busy here; everything queued now can start
		// only via yield or after this task returns.
		go func() {
			interDone <- inter.RunBatch(context.Background(), PhaseProbe, []func(int) error{
				func(iw int) error { ranOn <- iw; return nil },
			})
		}()
		go func() {
			batch2Done <- batch2.RunBatch(context.Background(), PhaseProbe, []func(int) error{
				func(int) error { batchRan <- struct{}{}; return nil },
			})
		}()
		deadline := time.Now().Add(10 * time.Second)
		for pool.QueueDepth() < 2 {
			if time.Now().After(deadline) {
				return errors.New("queued tasks never appeared")
			}
			time.Sleep(50 * time.Microsecond)
		}
		pool.YieldInteractive(w)
		// The interactive task ran inline during the yield, so its result
		// is observable synchronously, before this task returns.
		select {
		case iw := <-ranOn:
			if iw != w {
				return fmt.Errorf("interactive task ran on worker %d, want inline on %d", iw, w)
			}
		default:
			return errors.New("YieldInteractive returned without running the queued interactive task")
		}
		// The batch-class task must still be queued: yield serves strictly
		// interactive work.
		select {
		case <-batchRan:
			return errors.New("YieldInteractive ran a batch-class task")
		default:
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-interDone; err != nil {
		t.Fatalf("interactive batch: %v", err)
	}
	if err := <-batch2Done; err != nil {
		t.Fatalf("second batch: %v", err)
	}
}

// TestMidShiftYieldLatency is the regression test for the mid-shift
// preemption point: on a single-worker pool running a batch-class solve
// whose shifts each take many Arnoldi restarts, an interactive task
// submitted mid-shift must start within a fraction of one shift duration
// (the yield fires at restart boundaries) instead of waiting for the
// whole shift — i.e. first-pop latency stays below one checkpoint
// interval. Timing-based, so it takes the best of a few attempts before
// judging.
func TestMidShiftYieldLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	op := buildOp(t, 61, 2, 60, 1.05)
	// NWanted close to MaxDim forces several restarts per shift, giving
	// the yield hook real boundaries to fire at.
	params := arnoldi.SingleShiftParams{NWanted: 10, MaxDim: 16, MaxRestarts: 24}

	// Reference pass: measure per-shift duration and confirm the
	// parameters actually produce multi-restart shifts.
	pool := NewPool(1)
	defer pool.Close()
	j, err := pool.Submit(context.Background(), op, Options{Seed: 7, Arnoldi: params})
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	ref, err := j.Wait()
	if err != nil {
		t.Fatalf("reference wait: %v", err)
	}
	shifts := ref.Stats.ShiftsProcessed
	if shifts < 2 {
		t.Fatalf("setup: only %d shifts, cannot observe a mid-shift window", shifts)
	}
	if avg := float64(ref.Stats.Restarts) / float64(shifts); avg < 3 {
		t.Fatalf("setup: %.1f restarts/shift, too few yield boundaries", avg)
	}

	inter := pool.NewClient(ClientOptions{Priority: PriorityInteractive})
	var best, shiftDur time.Duration
	attempts := 3
	for attempt := 0; attempt < attempts; attempt++ {
		// Commit timestamps delimit the shifts; ck1 marks the start of
		// shift 2, giving a known-in-flight window to land the probe in.
		commits := make(chan time.Time, 64)
		j, err := pool.Submit(context.Background(), op, Options{
			Seed:     7,
			OmegaMax: ref.OmegaMax, // skip estimation: first task is a shift
			Arnoldi:  params,
			Checkpoint: func(ck Checkpoint) {
				if ck.Out != nil {
					commits <- time.Now()
				}
			},
		})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		t1 := <-commits // first shift committed; shift 2 now in flight
		ranAt := make(chan time.Time, 1)
		t0 := time.Now()
		perr := inter.RunBatch(context.Background(), PhaseProbe, []func(int) error{
			// First-pop latency is measured at the moment the task starts
			// executing, not when RunBatch's join returns: on a saturated
			// single-CPU machine the joining goroutine's wake-up can lag
			// the pop by whole scheduler quanta.
			func(int) error { ranAt <- time.Now(); return nil },
		})
		latency := (<-ranAt).Sub(t0)
		t2 := <-commits // second shift committed
		dur := t2.Sub(t1)
		if _, err := j.Wait(); err != nil {
			t.Fatalf("solve: %v", err)
		}
		if perr != nil {
			t.Fatalf("interactive probe: %v", perr)
		}
		if best == 0 || latency < best {
			best, shiftDur = latency, dur
		}
		if latency < dur/2 {
			break
		}
	}
	t.Logf("interactive first-pop latency %v, shift duration %v (%d shifts, %d restarts)",
		best, shiftDur, shifts, ref.Stats.Restarts)
	if best >= shiftDur/2 {
		t.Fatalf("first-pop latency %v not below half a shift (%v): mid-shift yield not effective",
			best, shiftDur)
	}
}
