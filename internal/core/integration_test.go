package core

import (
	"math"
	"testing"

	"repro/internal/arnoldi"
	"repro/internal/hamiltonian"
	"repro/internal/statespace"
)

func buildOp(t *testing.T, seed int64, ports, order int, peak float64) *hamiltonian.Op {
	t.Helper()
	m, err := statespace.Generate(seed, statespace.GenOptions{
		Ports: ports, Order: order, TargetPeak: peak, GridPoints: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.New(m, hamiltonian.Scattering)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// matchCrossings verifies got ≈ want (both sorted) within relative tol.
func matchCrossings(t *testing.T, got, want []float64, scale float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: found %d crossings %v, want %d %v", label, len(got), got, len(want), want)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-5*scale {
			t.Fatalf("%s: crossing %d: got %g want %g", label, i, got[i], want[i])
		}
	}
}

func TestSolveMatchesDenseBaseline(t *testing.T) {
	for _, tc := range []struct {
		seed  int64
		order int
		peak  float64
	}{
		{seed: 21, order: 24, peak: 1.06},
		{seed: 22, order: 30, peak: 1.03},
		{seed: 23, order: 26, peak: 0.92}, // passive: no crossings
	} {
		op := buildOp(t, tc.seed, 2, tc.order, tc.peak)
		want, err := op.FullImagEigs(1e-6)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(op, Options{
			Threads: 2,
			Seed:    5,
			Arnoldi: arnoldi.SingleShiftParams{NWanted: 4, MaxDim: 40},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		matchCrossings(t, res.Crossings, want, res.OmegaMax, "parallel")
	}
}

func TestSerialBisectionMatchesDense(t *testing.T) {
	op := buildOp(t, 24, 2, 24, 1.05)
	want, err := op.FullImagEigs(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveSerialBisection(op, Options{
		Seed:    3,
		Arnoldi: arnoldi.SingleShiftParams{NWanted: 4, MaxDim: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	matchCrossings(t, res.Crossings, want, res.OmegaMax, "serial")
}

func TestStaticGridMatchesDense(t *testing.T) {
	op := buildOp(t, 25, 2, 24, 1.05)
	want, err := op.FullImagEigs(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveStaticGrid(op, Options{
		Threads: 2,
		Seed:    3,
		Arnoldi: arnoldi.SingleShiftParams{NWanted: 4, MaxDim: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	matchCrossings(t, res.Crossings, want, res.OmegaMax, "staticgrid")
}

func TestSolveDeterministicSerial(t *testing.T) {
	op := buildOp(t, 26, 2, 20, 1.05)
	r1, err := Solve(op, Options{Threads: 1, Seed: 9, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(op, Options{Threads: 1, Seed: 9, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Crossings) != len(r2.Crossings) {
		t.Fatalf("non-deterministic crossing count: %d vs %d", len(r1.Crossings), len(r2.Crossings))
	}
	for i := range r1.Crossings {
		if r1.Crossings[i] != r2.Crossings[i] {
			t.Fatalf("non-deterministic crossing %d", i)
		}
	}
}

func TestSolveThreadCountInvariance(t *testing.T) {
	// The crossing set must not depend on the worker count.
	op := buildOp(t, 27, 2, 28, 1.06)
	ref, err := Solve(op, Options{Threads: 1, Seed: 4, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 4, 8} {
		res, err := Solve(op, Options{Threads: threads, Seed: 4, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
		if err != nil {
			t.Fatalf("T=%d: %v", threads, err)
		}
		matchCrossings(t, res.Crossings, ref.Crossings, res.OmegaMax, "threads")
	}
}

func TestSolveEmptyBandError(t *testing.T) {
	op := buildOp(t, 28, 2, 10, 1.05)
	if _, err := Solve(op, Options{OmegaMin: 10, OmegaMax: 5}); err == nil {
		t.Fatal("expected error for empty band")
	}
}

func TestEstimateOmegaMaxCoversSpectrum(t *testing.T) {
	op := buildOp(t, 29, 2, 20, 1.05)
	est, err := EstimateOmegaMax(op, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every true crossing must be below the estimated bound.
	want, err := op.FullImagEigs(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range want {
		if w > est {
			t.Fatalf("crossing %g above estimated ω_max %g", w, est)
		}
	}
	// And the bound should be within a factor ~2 of the largest pole
	// magnitude (no wild overestimate for these models).
	if est > 100*op.Model.MaxPoleMagnitude() {
		t.Fatalf("ω_max estimate %g looks unreasonably large", est)
	}
}

func TestSolveStatsPopulated(t *testing.T) {
	op := buildOp(t, 30, 2, 20, 1.05)
	res, err := Solve(op, Options{Threads: 2, Seed: 2, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShiftsProcessed == 0 || res.Stats.OpApplies == 0 || res.Stats.Elapsed <= 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
	if res.Stats.ShiftsProcessed != len(res.Shifts) {
		t.Fatalf("ShiftsProcessed %d != len(Shifts) %d", res.Stats.ShiftsProcessed, len(res.Shifts))
	}
	if res.Nlambda() != len(res.Crossings) {
		t.Fatal("Nlambda mismatch")
	}
}
