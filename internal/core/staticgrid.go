package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/hamiltonian"
)

// SolveStaticGrid is the naive parallel strategy dismissed in Sec. IV: the
// shifts are pre-distributed on a regular grid and all of them are
// processed, regardless of whether earlier disks already cover them. Gaps
// left between the fixed disks are closed with a serial bisection pass.
// Its parallel efficiency is poor because workers burn time on shifts whose
// intervals a neighbouring disk has already swallowed — the ablation bench
// quantifies exactly that wasted work against the dynamic scheduler.
func SolveStaticGrid(op *hamiltonian.Op, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	//lint:ignore detfloat elapsed-time telemetry only; it never feeds numeric state
	start := time.Now()
	res := &Result{}

	omegaMax := opts.OmegaMax
	if omegaMax == 0 {
		est, err := EstimateOmegaMax(op, opts.Seed)
		if err != nil {
			return nil, err
		}
		omegaMax = est
	}
	if omegaMax <= opts.OmegaMin {
		return nil, fmt.Errorf("core: empty band [%g, %g]", opts.OmegaMin, omegaMax)
	}
	res.OmegaMax = omegaMax

	n := opts.Kappa * opts.Threads
	if n < 2 {
		n = 2
	}
	w := (omegaMax - opts.OmegaMin) / float64(n)
	type job struct {
		idx   int
		omega float64
		rho0  float64
	}
	jobs := make(chan job)
	type out struct {
		rec    ShiftRecord
		eigs   []complex128
		residM []float64
		rst    int
		app    int
		lo     float64
		hi     float64
		rad    float64
		omg    float64
	}
	var mu sync.Mutex
	var outs []out
	var firstErr error

	var wg sync.WaitGroup
	for t := 0; t < opts.Threads; t++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := range jobs {
				params := opts.Arnoldi
				params.Seed = opts.Seed*1_000_003 + int64(j.idx)*7919 + 1
				sres, err := runShift(op, j.omega, j.rho0, params)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("core: shift ω=%g: %w", j.omega, err)
					}
				} else {
					outs = append(outs, out{
						rec: ShiftRecord{Omega: j.omega, Radius: sres.Radius,
							NEigs: len(sres.Eigenvalues), Worker: worker},
						eigs:   sres.Eigenvalues,
						residM: sres.ResidualsM,
						rst:    sres.Restarts,
						app:    sres.OpApplies,
						rad:    sres.Radius,
						omg:    j.omega,
					})
				}
				mu.Unlock()
			}
		}(t)
	}
	for v := 0; v < n; v++ {
		lo := opts.OmegaMin + float64(v)*w
		omega := lo + w/2
		if v == 0 {
			omega = opts.OmegaMin
		}
		if v == n-1 {
			omega = omegaMax
		}
		jobs <- job{idx: v, omega: omega, rho0: 0.5 * opts.Alpha * w * 2}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Compute residual gaps and close them serially.
	type gapT struct{ lo, hi float64 }
	gaps := []gapT{{opts.OmegaMin, omegaMax}}
	for _, o := range outs {
		var next []gapT
		for _, g := range gaps {
			for _, rem := range subtract(g.lo, g.hi, o.omg-o.rad, o.omg+o.rad) {
				next = append(next, gapT{rem[0], rem[1]})
			}
		}
		gaps = next
		res.Shifts = append(res.Shifts, o.rec)
		res.Eigenvalues = append(res.Eigenvalues, o.eigs...)
		res.eigResiduals = append(res.eigResiduals, o.residM...)
		res.Stats.Restarts += o.rst
		res.Stats.OpApplies += o.app
		res.Stats.ShiftsProcessed++
	}
	idx := n
	for len(gaps) > 0 {
		if res.Stats.ShiftsProcessed >= opts.MaxShifts {
			return nil, fmt.Errorf("core: shift budget %d exhausted", opts.MaxShifts)
		}
		g := gaps[len(gaps)-1]
		gaps = gaps[:len(gaps)-1]
		mid := 0.5 * (g.lo + g.hi)
		params := opts.Arnoldi
		params.Seed = opts.Seed*1_000_003 + int64(idx)*7919 + 1
		idx++
		sres, err := runShift(op, mid, 0.5*opts.Alpha*(g.hi-g.lo), params)
		if err != nil {
			return nil, fmt.Errorf("core: shift ω=%g: %w", mid, err)
		}
		res.Shifts = append(res.Shifts, ShiftRecord{Omega: mid, Radius: sres.Radius, NEigs: len(sres.Eigenvalues)})
		res.Eigenvalues = append(res.Eigenvalues, sres.Eigenvalues...)
		res.eigResiduals = append(res.eigResiduals, sres.ResidualsM...)
		res.Stats.Restarts += sres.Restarts
		res.Stats.OpApplies += sres.OpApplies
		res.Stats.ShiftsProcessed++
		var next []gapT
		for _, gg := range gaps {
			for _, rem := range subtract(gg.lo, gg.hi, mid-sres.Radius, mid+sres.Radius) {
				next = append(next, gapT{rem[0], rem[1]})
			}
		}
		for _, rem := range subtract(g.lo, g.hi, mid-sres.Radius, mid+sres.Radius) {
			next = append(next, gapT{rem[0], rem[1]})
		}
		gaps = next
	}
	//lint:ignore detfloat elapsed-time telemetry only; it never feeds numeric state
	res.Stats.Elapsed = time.Since(start)
	if err := collectStandalone(res, op, opts.AxisTol, opts.Threads); err != nil {
		return nil, err
	}
	return res, nil
}
