// Package core implements the paper's primary contribution: a parallel
// multi-shift restarted Arnoldi scheme that extracts all purely imaginary
// Hamiltonian eigenvalues of a large interconnect macromodel (DATE'11,
// Sec. IV). Individual single-shift iterations S(ϑ, ρ₀) run concurrently on
// worker goroutines; a dynamic scheduler keeps their work disjoint and
// guarantees that the union of the returned convergence disks covers the
// whole search band [ω_min, ω_max].
//
// Two baselines are provided for the paper's comparisons: a serial
// bisection solver (Sec. III / ref. [9]) and a statically pre-distributed
// shift grid whose poor parallel efficiency motivates the dynamic scheme.
//
// The package also owns the system-wide scheduler: Pool is a phase-
// agnostic priority task executor, and every heavy compute phase of the
// whole pipeline — eigensolver shifts, ω_max estimates, band probes,
// enforcement constraints, sampling sweeps, Vector Fitting columns, and
// the eigenvalue-refinement/arbitration tails — runs as its tasks (phase
// labels PhaseEig … PhaseRefine). Coordinator goroutines do control flow
// and cheap glue only; no heavy compute runs on free goroutines.
//
// Invariants: per job, the queued tentative intervals are pairwise
// disjoint and their union is exactly the uncovered part of the band; the
// scheduler only decides WHEN a task runs, never with what data, so
// solves and batches are bit-identical under any worker count; reported
// crossings are additionally schedule-independent via the canonical
// polish in collect.
//
// Concurrency: Pool/Client/Job methods are safe for concurrent use (all
// scheduler state is guarded by the pool mutex). Client.RunBatch and
// Job.Wait block and must not be called from a pool worker goroutine —
// coordinator goroutines only — or a fully-busy pool could deadlock on
// the join.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/arnoldi"
)

// Options configures the multi-shift eigensolver.
type Options struct {
	// Threads is the number T of concurrent single-shift workers.
	// Default 1.
	Threads int
	// Kappa is κ: the initial interval count is N = κ·T, κ ≥ 2 (paper
	// Sec. IV-A). Default 2.
	Kappa int
	// Alpha is the initial-radius overlap factor α ≳ 1 of paper Eq. 23.
	// Default 1.05.
	Alpha float64
	// OmegaMin is the lower bound of the search band (paper: usually 0).
	OmegaMin float64
	// OmegaMax is the upper bound. Zero means "estimate automatically" as
	// the magnitude of the largest Hamiltonian eigenvalue (Sec. IV-A).
	OmegaMax float64
	// Arnoldi carries the single-shift iteration parameters (n_ϑ, d, tol).
	Arnoldi arnoldi.SingleShiftParams
	// AxisTol is the relative tolerance (vs. ω_max) for accepting an
	// eigenvalue as purely imaginary. Default 1e-6.
	AxisTol float64
	// Seed drives all random start vectors. Runs with the same seed and
	// Threads=1 are fully deterministic.
	Seed int64
	// MaxShifts caps the total number of processed shifts as a safety
	// valve. Default 10000.
	MaxShifts int
	// ShiftCacheSize controls the shift-factorization cache on the solve's
	// Hamiltonian operator (hamiltonian.ShiftCache): 0 attaches a cache of
	// DefaultShiftCacheSize entries when the operator has none yet (an
	// engine-attached shared cache is kept), > 0 likewise with that
	// capacity, and < 0 detaches/disables caching for this operator. The
	// cache only reuses factored SMW state keyed on exact shift bits and
	// the model's kernel epoch, so results are bit-identical with the
	// cache on, off, or thrashing.
	ShiftCacheSize int
	// MultiShiftBatch is the number of startup shifts prefactored per
	// PhaseSetup pool task at submission: each task computes its chunk's
	// resolvent panels in one pass over the packed kernels
	// (statespace.CResolventBMulti / BTResolventCTMulti) and publishes the
	// factorizations into the shift cache ahead of the PhaseEig tasks that
	// consume them. Default 8; < 0 disables batched prefactoring (shifts
	// then factor lazily, one at a time). Ignored when no cache is
	// attached.
	MultiShiftBatch int
	// InitialShifts warm-starts the scheduler: instead of the κT uniform
	// subdivision, the startup intervals are cut around these shift
	// locations (see warmIntervals). Used by passivity enforcement to seed
	// iteration k+1 from iteration k's crossings. Entries outside the band
	// are ignored; an empty or fully-ignored list falls back to the cold
	// start. Ignored by the serial-bisection and static-grid baselines.
	InitialShifts []float64
	// Pool optionally points at a shared worker pool: the solve then runs
	// as one job among many on that pool's workers and Threads only sets
	// the startup interval count N = κT (defaulting to the pool width).
	// When nil, Solve creates a private pool with Threads workers — the
	// standalone semantics of the paper. Ignored by the serial-bisection
	// and static-grid baselines.
	Pool *Pool
	// Client optionally names the pool scheduling identity (priority
	// class + weighted-round-robin share) the solve's shift tasks are
	// charged to. A fleet job passes one client through all of its compute
	// phases so priority and fairness apply to the whole job; when nil, an
	// ephemeral default-priority client is created per solve. Requires the
	// client to be registered with the pool the job runs on; with Pool nil
	// the client's own pool is used. Ignored by the serial-bisection and
	// static-grid baselines.
	Client *Client
	// Progress, when non-nil, receives observational progress events as
	// the solve's compute tasks complete (one per certified eigensolver
	// disk; other phases may emit their own — see ProgressEvent). The
	// callback runs on pool worker goroutines, possibly concurrently, so
	// it must be safe for concurrent use and fast: a slow callback delays
	// the emitting worker, never correctness. Events carry copies of
	// solver state and are emitted after the scheduler has committed the
	// completion update, so consuming them cannot influence shift
	// placement, scheduling, or the bit-identity of the reported result.
	// Ignored by the serial-bisection and static-grid baselines.
	Progress func(ProgressEvent)
	// Checkpoint, when non-nil, receives one durable-resume snapshot per
	// committed scheduler transition: Seq 0 when the startup intervals are
	// queued, then one per completed shift (see Checkpoint). Sequence
	// numbers are assigned inside the pool critical section that commits
	// the transition, but the callback itself runs on worker goroutines
	// outside the lock — possibly concurrently and out of sequence order —
	// so durable consumers must resume only from a contiguous sequence
	// prefix. Like Progress, the callback is observational: it carries
	// copies of solver state and can never perturb shift placement or the
	// bit-identity of the result. Ignored by the serial-bisection and
	// static-grid baselines.
	Checkpoint func(Checkpoint)
	// Resume, when non-nil, seeds the solve from a persisted checkpoint
	// prefix instead of a cold start: the ω_max estimate is skipped, the
	// tentative interval set (IDs and float bits preserved) replaces the
	// startup subdivision, and the committed shifts of the prefix are
	// preloaded into the Result. A resumed run is one more admissible
	// schedule of the same solve, so its reported crossings are
	// bit-identical to an uninterrupted run's while re-executing only the
	// shifts the prefix had not committed. Checkpoint emission (if also
	// set) continues at Resume.Seq+1. OmegaMax and InitialShifts are
	// ignored when resuming.
	Resume *ResumeState
}

// ProgressEvent is one observational solver-progress notification (see
// Options.Progress). Event delivery order across workers is
// timing-dependent; the data inside each event is not.
type ProgressEvent struct {
	// Phase is the compute phase that made progress (PhaseEig for a
	// completed single-shift disk, PhaseProbe for a classified band, ...).
	Phase string
	// Omega is the event's frequency: the shift location of a completed
	// disk (PhaseEig) or the probed band's peak (PhaseProbe).
	Omega float64
	// Radius is the certified disk radius (PhaseEig only).
	Radius float64
	// NearAxis are the |Im λ| of eigenvalues certified inside the disk
	// that pass the coarse near-axis candidate test — crossings as the
	// solver finds them. They are TENTATIVE: refinement and arbitration
	// in the collect tail decide the certified list, which only the final
	// Result carries.
	NearAxis []float64
	// Done and Total count the phase's completed tasks against the
	// currently-known task count. For PhaseEig, Total grows as completed
	// disks spawn remainder intervals and shrinks when disks swallow
	// tentative shifts, so Done/Total is a live lower-bound estimate, not
	// a monotone fraction.
	Done, Total int
}

// validate rejects option values that would silently corrupt a solve: a
// negative Threads used to spawn zero workers and return an empty Result
// that downstream code read as "no crossings, model passive", and a NaN
// band edge would slip past every range check into the interval setup.
func (o *Options) validate() error {
	switch {
	case o.Threads < 0:
		return fmt.Errorf("core: Threads must be ≥ 0, got %d", o.Threads)
	case o.Kappa < 0:
		return fmt.Errorf("core: Kappa must be ≥ 0, got %d", o.Kappa)
	case !(o.Alpha >= 0) || math.IsInf(o.Alpha, 1):
		return fmt.Errorf("core: Alpha must be finite and ≥ 0, got %g", o.Alpha)
	case !(o.AxisTol >= 0) || math.IsInf(o.AxisTol, 1):
		return fmt.Errorf("core: AxisTol must be finite and ≥ 0, got %g", o.AxisTol)
	case o.MaxShifts < 0:
		return fmt.Errorf("core: MaxShifts must be ≥ 0, got %d", o.MaxShifts)
	case !(o.OmegaMin >= 0) || math.IsInf(o.OmegaMin, 1):
		return fmt.Errorf("core: OmegaMin must be finite and ≥ 0, got %g", o.OmegaMin)
	case !(o.OmegaMax >= 0) || math.IsInf(o.OmegaMax, 1):
		return fmt.Errorf("core: OmegaMax must be finite and ≥ 0, got %g", o.OmegaMax)
	}
	for _, s := range o.InitialShifts {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("core: non-finite initial shift %g", s)
		}
	}
	return o.Arnoldi.Validate()
}

func (o *Options) setDefaults() {
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.Kappa < 2 {
		o.Kappa = 2
	}
	if o.Alpha == 0 {
		o.Alpha = 1.05
	}
	if o.AxisTol == 0 {
		o.AxisTol = 1e-6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxShifts == 0 {
		o.MaxShifts = 10000
	}
	if o.ShiftCacheSize == 0 {
		o.ShiftCacheSize = DefaultShiftCacheSize
	}
	if o.MultiShiftBatch == 0 {
		o.MultiShiftBatch = 8
	}
}

// DefaultShiftCacheSize is the factorization-cache capacity attached when
// Options.ShiftCacheSize is left zero: comfortably above the startup shift
// count κT plus the refinement tail of a typical Table-I solve, and one
// 2p×2p complex LU per entry keeps even a 64-entry cache in the tens of
// kilobytes for realistic port counts.
const DefaultShiftCacheSize = 64

// ShiftRecord documents one completed single-shift iteration.
type ShiftRecord struct {
	Omega  float64 // shift location on the imaginary axis
	Radius float64 // certified disk radius
	NEigs  int     // eigenvalues returned inside the disk
	Worker int     // worker goroutine that ran it
}

// Stats aggregates solver work counters.
type Stats struct {
	ShiftsProcessed int
	// TentativeDeleted counts tentative shifts swallowed by completed
	// disks before being processed — the source of the superlinear
	// speedups reported in the paper (Sec. V).
	TentativeDeleted int
	Restarts         int
	OpApplies        int
	Elapsed          time.Duration
}

// Add accumulates another solve's counters into s (used by enforcement to
// total the work across re-characterizations).
func (s *Stats) Add(o Stats) {
	s.ShiftsProcessed += o.ShiftsProcessed
	s.TentativeDeleted += o.TentativeDeleted
	s.Restarts += o.Restarts
	s.OpApplies += o.OpApplies
	s.Elapsed += o.Elapsed
}

// Result is the outcome of a multi-shift solve.
type Result struct {
	// Crossings are the frequencies ω ≥ 0 of all purely imaginary
	// Hamiltonian eigenvalues (singular-value unit crossings), sorted
	// ascending and deduplicated.
	Crossings []float64
	// Eigenvalues are all Hamiltonian eigenvalues certified inside the
	// processed disks (including non-imaginary ones near the axis).
	Eigenvalues []complex128
	// OmegaMax is the actual search bound used.
	OmegaMax float64
	Shifts   []ShiftRecord
	Stats    Stats

	// eigResiduals are per-eigenvalue residuals in M, aligned with
	// Eigenvalues before deduplication (consumed by collect).
	eigResiduals []float64
}

// Nlambda returns the number of imaginary-eigenvalue crossings (the paper's
// Nλ, counting ±jω once).
func (r *Result) Nlambda() int { return len(r.Crossings) }
