package core

import (
	"sync"
	"testing"

	"repro/internal/arnoldi"
	"repro/internal/hamiltonian"
	"repro/internal/mat"
	"repro/internal/statespace"
)

// TestConcurrentSolvesShareOperator verifies that one Hamiltonian operator
// can back several simultaneous Solve calls (Op is documented read-only /
// concurrency-safe). Run with -race to validate the claim.
func TestConcurrentSolvesShareOperator(t *testing.T) {
	op := buildOp(t, 91, 2, 20, 1.05)
	const workers = 4
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Solve(op, Options{
				Threads: 2, Seed: int64(i + 1),
				Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40},
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
	}
	// All runs must agree on the crossing count (different seeds).
	for i := 1; i < workers; i++ {
		if len(results[i].Crossings) != len(results[0].Crossings) {
			t.Fatalf("concurrent solves disagree: %d vs %d crossings",
				len(results[i].Crossings), len(results[0].Crossings))
		}
	}
}

// TestMinimalModels exercises the degenerate ends of the model space.
func TestMinimalModels(t *testing.T) {
	// Single port, single real pole.
	one := &statespace.Model{
		P: 1,
		D: mat.DenseFromSlice(1, 1, []float64{0.2}),
		Cols: []statespace.Column{{
			Blocks: []statespace.Block{{Size: 1, Sigma: -1e9, B1: 1}},
			C:      mat.DenseFromSlice(1, 1, []float64{3e9}), // peak |D + r/σ| > 1 at DC? r/|σ|=3 ⇒ H(0)=0.2−3
		}},
	}
	if err := one.Validate(); err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.New(one, hamiltonian.Scattering)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(op, Options{Threads: 1, Seed: 1, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 4}})
	if err != nil {
		t.Fatal(err)
	}
	// |H(0)| = 2.8 > 1 and |H(∞)| = 0.2 < 1: exactly one crossing.
	if len(res.Crossings) != 1 {
		t.Fatalf("1-pole model: %d crossings %v, want 1", len(res.Crossings), res.Crossings)
	}
	want, err := op.FullImagEigs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 || absDiff(want[0], res.Crossings[0]) > 1e-4*want[0] {
		t.Fatalf("crossing %v vs dense %v", res.Crossings, want)
	}
	// Single complex pair.
	pair := &statespace.Model{
		P: 1,
		D: mat.DenseFromSlice(1, 1, []float64{0.1}),
		Cols: []statespace.Column{{
			Blocks: []statespace.Block{{Size: 2, Sigma: -5e7, Omega: 1e9, B1: 2}},
			C:      mat.DenseFromSlice(1, 2, []float64{7e7, 0}),
		}},
	}
	op2, err := hamiltonian.New(pair, hamiltonian.Scattering)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Solve(op2, Options{Threads: 2, Seed: 2, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 8}})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := op2.FullImagEigs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Crossings) != len(want2) {
		t.Fatalf("pair model: %v vs dense %v", res2.Crossings, want2)
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
