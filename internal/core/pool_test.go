package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arnoldi"
)

// TestSharedPoolMatchesStandalone: several jobs on one shared pool must
// produce bit-identical crossings to the same solves run standalone.
//
// Regression note: a "job 1: crossings 4 vs 5" failure was once recorded
// for this test (see CHANGES.md, shift-cache PR). It does not reproduce
// on this host — the test passes repeatedly (-count=5) both at HEAD and
// at the commit that recorded it, with and without -race. The recorded
// divergence is therefore host/toolchain-specific, not a property of
// the current tree. If it resurfaces, suspect FMA contraction or libm
// differences feeding the near-axis classifier, and compare the
// eigensweep radii for seed 62 (job 1) between the pooled and the
// standalone path before touching scheduler code.
func TestSharedPoolMatchesStandalone(t *testing.T) {
	type tc struct {
		seed  int64
		order int
		peak  float64
	}
	cases := []tc{
		{seed: 61, order: 24, peak: 1.06},
		{seed: 62, order: 30, peak: 1.04},
		{seed: 63, order: 26, peak: 0.92},
		{seed: 64, order: 28, peak: 1.05},
	}
	opts := func() Options {
		return Options{Threads: 2, Seed: 7, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}}
	}
	// Standalone references.
	refs := make([]*Result, len(cases))
	for i, c := range cases {
		op := buildOp(t, c.seed, 2, c.order, c.peak)
		res, err := Solve(op, opts())
		if err != nil {
			t.Fatalf("standalone %d: %v", i, err)
		}
		refs[i] = res
	}
	// Same solves, concurrently, on one shared pool.
	pool := NewPool(4)
	defer pool.Close()
	jobs := make([]*Job, len(cases))
	for i, c := range cases {
		op := buildOp(t, c.seed, 2, c.order, c.peak)
		o := opts()
		j, err := pool.Submit(context.Background(), op, o)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if len(res.Crossings) != len(refs[i].Crossings) {
			t.Fatalf("job %d: %d crossings vs standalone %d",
				i, len(res.Crossings), len(refs[i].Crossings))
		}
		for k := range res.Crossings {
			if res.Crossings[k] != refs[i].Crossings[k] {
				t.Fatalf("job %d crossing %d: pooled %v != standalone %v (not bit-identical)",
					i, k, res.Crossings[k], refs[i].Crossings[k])
			}
		}
	}
}

// TestSolveContextCancel: canceling mid-solve returns ctx.Err() and leaks
// no goroutines (pool workers, ctx watcher, refinement workers all exit).
func TestSolveContextCancel(t *testing.T) {
	op := buildOp(t, 65, 2, 60, 1.05)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var res *Result
	var err error
	go func() {
		defer wg.Done()
		res, err = SolveContext(ctx, op, Options{
			Threads: 2, Seed: 1,
			Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40},
		})
	}()
	// Cancel quickly — usually mid-solve; the assertion holds either way.
	time.Sleep(2 * time.Millisecond)
	cancel()
	wg.Wait()
	if err == nil {
		t.Log("solve finished before cancellation took effect")
		if res == nil {
			t.Fatal("nil result without error")
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// Goroutine count must settle back to the baseline.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak after cancellation: %d before, %d after",
		before, runtime.NumGoroutine())
}

// TestSolveContextPreCanceled: an already-canceled context fails fast.
func TestSolveContextPreCanceled(t *testing.T) {
	op := buildOp(t, 66, 2, 16, 1.05)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, op, Options{Threads: 1, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestPoolCloseFailsPendingJobs: Close discards queued work and pending
// jobs report ErrPoolClosed instead of hanging or returning empty results.
func TestPoolCloseFailsPendingJobs(t *testing.T) {
	op := buildOp(t, 67, 2, 40, 1.05)
	p := NewPool(1)
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := p.Submit(context.Background(), op, Options{
			Threads: 2, Seed: int64(i + 1),
			Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40},
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	p.Close()
	sawClosed := false
	for _, j := range jobs {
		res, err := j.Wait() // must not hang
		if err != nil {
			if !errors.Is(err, ErrPoolClosed) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawClosed = true
		} else if res == nil {
			t.Fatal("nil result without error")
		}
	}
	if !sawClosed {
		t.Log("all jobs finished before Close — queue drained faster than expected")
	}
	if _, err := p.Submit(context.Background(), op, Options{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit on closed pool: want ErrPoolClosed, got %v", err)
	}
}

// TestNegativeOptionsRejected: negative option values must fail loudly in
// every solver instead of producing an empty (⇒ "passive") result.
func TestNegativeOptionsRejected(t *testing.T) {
	op := buildOp(t, 68, 2, 12, 1.05)
	bad := []Options{
		{Threads: -1},
		{Kappa: -2},
		{Alpha: -0.5},
		{AxisTol: -1e-9},
		{MaxShifts: -3},
		{OmegaMin: -1},
		{OmegaMax: -5},
		{Arnoldi: arnoldi.SingleShiftParams{NWanted: -1}},
		{Arnoldi: arnoldi.SingleShiftParams{MaxDim: -1}},
		{Arnoldi: arnoldi.SingleShiftParams{MaxRestarts: -1}},
		{Arnoldi: arnoldi.SingleShiftParams{Tol: -1e-9}},
		{InitialShifts: []float64{1e9, math.Inf(1)}},
		{InitialShifts: []float64{math.NaN()}},
		{OmegaMax: math.NaN()},
		{OmegaMin: math.NaN()},
		{Alpha: math.NaN()},
		{AxisTol: math.NaN()},
		{OmegaMax: math.Inf(1)},
		{Arnoldi: arnoldi.SingleShiftParams{Tol: math.NaN()}},
	}
	for i, o := range bad {
		if _, err := Solve(op, o); err == nil {
			t.Errorf("case %d (%+v): Solve accepted invalid options", i, o)
		}
		if _, err := SolveSerialBisection(op, o); err == nil {
			t.Errorf("case %d (%+v): SolveSerialBisection accepted invalid options", i, o)
		}
		if _, err := SolveStaticGrid(op, o); err == nil {
			t.Errorf("case %d (%+v): SolveStaticGrid accepted invalid options", i, o)
		}
	}
	// A Threads=-1 solve used to spawn zero workers and report an empty
	// Result; make sure the message names the field.
	_, err := Solve(op, Options{Threads: -1})
	if err == nil || !strings.Contains(err.Error(), "Threads") {
		t.Fatalf("want a Threads validation error, got %v", err)
	}
}

// TestWarmStartSolveFindsSameCrossings: a warm-started solve seeded with
// the cold solve's crossings must find the identical crossing set.
func TestWarmStartSolveFindsSameCrossings(t *testing.T) {
	op := buildOp(t, 69, 2, 28, 1.06)
	cold, err := Solve(op, Options{Threads: 2, Seed: 3, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Crossings) == 0 {
		t.Skip("model came out passive")
	}
	warm, err := Solve(op, Options{
		Threads: 2, Seed: 3,
		InitialShifts: cold.Crossings,
		Arnoldi:       arnoldi.SingleShiftParams{MaxDim: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Crossings) != len(cold.Crossings) {
		t.Fatalf("warm start changed the crossing count: %d vs %d",
			len(warm.Crossings), len(cold.Crossings))
	}
	for i := range warm.Crossings {
		if warm.Crossings[i] != cold.Crossings[i] {
			t.Fatalf("crossing %d: warm %v != cold %v", i, warm.Crossings[i], cold.Crossings[i])
		}
	}
}
