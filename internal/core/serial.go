package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/hamiltonian"
)

// SolveSerialBisection is the serial baseline of Sec. III (ref. [9]): the
// band edges are processed first, then the solver repeatedly places a shift
// at the midpoint of the widest still-uncovered gap (paper Eq. 10 /
// Fig. 2) until the union of convergence disks covers [ω_min, ω_max]. Each
// step depends on the radii of the previous ones, which is exactly the
// data dependency that prevents naive parallelization.
func SolveSerialBisection(op *hamiltonian.Op, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	//lint:ignore detfloat elapsed-time telemetry only; it never feeds numeric state
	start := time.Now()
	res := &Result{}

	omegaMax := opts.OmegaMax
	if omegaMax == 0 {
		est, err := EstimateOmegaMax(op, opts.Seed)
		if err != nil {
			return nil, err
		}
		omegaMax = est
	}
	if omegaMax <= opts.OmegaMin {
		return nil, fmt.Errorf("core: empty band [%g, %g]", opts.OmegaMin, omegaMax)
	}
	res.OmegaMax = omegaMax

	type gap struct{ lo, hi float64 }
	gaps := []gap{{opts.OmegaMin, omegaMax}}
	shiftIdx := 0

	process := func(omega, rho0 float64) error {
		params := opts.Arnoldi
		params.Seed = opts.Seed*1_000_003 + int64(shiftIdx)*7919 + 1
		shiftIdx++
		sres, err := runShift(op, omega, rho0, params)
		if err != nil {
			return fmt.Errorf("core: shift ω=%g: %w", omega, err)
		}
		res.Shifts = append(res.Shifts, ShiftRecord{
			Omega: omega, Radius: sres.Radius, NEigs: len(sres.Eigenvalues),
		})
		res.Eigenvalues = append(res.Eigenvalues, sres.Eigenvalues...)
		res.eigResiduals = append(res.eigResiduals, sres.ResidualsM...)
		res.Stats.Restarts += sres.Restarts
		res.Stats.OpApplies += sres.OpApplies
		res.Stats.ShiftsProcessed++
		// Subtract the disk from all gaps.
		var next []gap
		for _, g := range gaps {
			for _, rem := range subtract(g.lo, g.hi, omega-sres.Radius, omega+sres.Radius) {
				next = append(next, gap{rem[0], rem[1]})
			}
		}
		gaps = next
		return nil
	}

	// Edges first (Fig. 2: ϑ1 and ϑ2 at the band extrema).
	bandW := omegaMax - opts.OmegaMin
	if err := process(opts.OmegaMin, opts.Alpha*bandW/float64(2*opts.Kappa)); err != nil {
		return nil, err
	}
	if len(gaps) > 0 {
		if err := process(omegaMax, opts.Alpha*bandW/float64(2*opts.Kappa)); err != nil {
			return nil, err
		}
	}
	// Bisection on the widest remaining gap.
	for len(gaps) > 0 {
		if res.Stats.ShiftsProcessed >= opts.MaxShifts {
			return nil, fmt.Errorf("core: shift budget %d exhausted", opts.MaxShifts)
		}
		sort.Slice(gaps, func(i, j int) bool { return gaps[i].hi-gaps[i].lo > gaps[j].hi-gaps[j].lo })
		g := gaps[0]
		mid := 0.5 * (g.lo + g.hi)
		if err := process(mid, 0.5*opts.Alpha*(g.hi-g.lo)); err != nil {
			return nil, err
		}
	}
	//lint:ignore detfloat elapsed-time telemetry only; it never feeds numeric state
	res.Stats.Elapsed = time.Since(start)
	if err := collectStandalone(res, op, opts.AxisTol, opts.Threads); err != nil {
		return nil, err
	}
	return res, nil
}
