package core

import (
	"strings"
	"testing"

	"repro/internal/arnoldi"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.Threads != 1 || o.Kappa != 2 || o.Alpha != 1.05 {
		t.Fatalf("bad defaults: %+v", o)
	}
	if o.AxisTol != 1e-6 || o.Seed != 1 || o.MaxShifts != 10000 {
		t.Fatalf("bad defaults: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{Threads: 7, Kappa: 3, Alpha: 1.2, AxisTol: 1e-8, Seed: 42, MaxShifts: 5}
	o2.setDefaults()
	if o2.Threads != 7 || o2.Kappa != 3 || o2.Alpha != 1.2 || o2.AxisTol != 1e-8 || o2.Seed != 42 || o2.MaxShifts != 5 {
		t.Fatalf("defaults clobbered explicit options: %+v", o2)
	}
	// κ below 2 is illegal per the paper (N = κT, κ ≥ 2).
	o3 := Options{Kappa: 1}
	o3.setDefaults()
	if o3.Kappa != 2 {
		t.Fatalf("kappa not clamped: %d", o3.Kappa)
	}
}

func TestSolveShiftBudgetError(t *testing.T) {
	op := buildOp(t, 33, 2, 16, 1.05)
	_, err := Solve(op, Options{Threads: 2, MaxShifts: 1, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("expected budget error, got %v", err)
	}
}

func TestSolveSubBand(t *testing.T) {
	// Restricting the band to a region with no crossings must return none,
	// even for a non-passive model.
	op := buildOp(t, 34, 2, 20, 1.06)
	full, err := Solve(op, Options{Threads: 2, Seed: 1, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Crossings) == 0 {
		t.Skip("model came out passive")
	}
	top := full.Crossings[len(full.Crossings)-1]
	res, err := Solve(op, Options{
		Threads: 2, Seed: 1,
		OmegaMin: top * 2, OmegaMax: top * 4,
		Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Crossings {
		if w < top*2 || w > top*4 {
			t.Fatalf("crossing %g outside requested band", w)
		}
	}
}

func TestSerialAndStaticAgreeOnPassive(t *testing.T) {
	op := buildOp(t, 35, 2, 18, 0.9)
	ser, err := SolveSerialBisection(op, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ser.Crossings) != 0 {
		t.Fatalf("serial found phantom crossings %v", ser.Crossings)
	}
	grid, err := SolveStaticGrid(op, Options{Threads: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Crossings) != 0 {
		t.Fatalf("static grid found phantom crossings %v", grid.Crossings)
	}
}

func TestResultNlambda(t *testing.T) {
	r := &Result{Crossings: []float64{1, 2, 3}}
	if r.Nlambda() != 3 {
		t.Fatal("Nlambda broken")
	}
}

func TestShiftRecordsCoverBand(t *testing.T) {
	// The union of completed disks must cover the whole searched band.
	op := buildOp(t, 36, 2, 22, 1.05)
	res, err := Solve(op, Options{Threads: 4, Seed: 3, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}})
	if err != nil {
		t.Fatal(err)
	}
	remaining := [][2]float64{{0, res.OmegaMax}}
	for _, s := range res.Shifts {
		var next [][2]float64
		for _, r := range remaining {
			next = append(next, subtract(r[0], r[1], s.Omega-s.Radius, s.Omega+s.Radius)...)
		}
		remaining = next
	}
	var left float64
	for _, r := range remaining {
		left += r[1] - r[0]
	}
	if left > 1e-9*res.OmegaMax {
		t.Fatalf("band not fully covered: %g rad/s uncovered (%v)", left, remaining)
	}
}
