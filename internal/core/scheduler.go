package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/hamiltonian"
)

// interval is one tentative search interval Ĩ_ν with its tentative shift
// ϑ̃_ν (paper Sec. IV-A). Intervals held by the scheduler are pairwise
// disjoint and their union is exactly the part of the band not yet covered
// by completed or in-flight work.
type interval struct {
	id       int
	lo, hi   float64
	shift    float64
	edgeLeft bool // shift pinned to the left band edge (ν = 1)
	edgeRite bool // shift pinned to the right band edge (ν = N)
}

func (iv *interval) width() float64 { return iv.hi - iv.lo }

// schedState is the shared scheduler state of paper Sec. IV-B/C/D:
// the tentative set Θ̃ (as a FIFO of intervals) plus the count of shifts in
// the processing state. Access is serialized by mu; cond signals workers
// whenever new tentative intervals appear or the in-flight count drops.
type schedState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*interval // tentative intervals in pick order
	inflight int
	nextID   int
	stopped  bool
	err      error

	processed        int
	tentativeDeleted int
	maxShifts        int
}

func newSchedState(maxShifts int) *schedState {
	s := &schedState{maxShifts: maxShifts}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push appends a tentative interval.
func (s *schedState) push(iv *interval) {
	iv.id = s.nextID
	s.nextID++
	s.queue = append(s.queue, iv)
}

// pop removes and returns the next tentative interval, blocking while the
// queue is empty but work is still in flight. Returns nil when the solve is
// complete (queue empty, nothing in flight) or aborted.
func (s *schedState) pop() *interval {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.err != nil {
			return nil
		}
		if len(s.queue) > 0 {
			iv := s.queue[0]
			s.queue = s.queue[1:]
			if s.processed >= s.maxShifts {
				s.err = fmt.Errorf("core: shift budget %d exhausted", s.maxShifts)
				s.cond.Broadcast()
				return nil
			}
			s.processed++
			s.inflight++
			return iv
		}
		if s.inflight == 0 {
			return nil
		}
		s.cond.Wait()
	}
}

// complete applies the paper's completion update (Sec. IV-D) for a finished
// disk [c−ρ, c+ρ] that was responsible for the interval [lo, hi]:
//
//   - the disk is subtracted from the owning interval; uncovered remainders
//     become new tentative intervals with midpoint shifts (Eqs. 25–27);
//   - the disk is also subtracted from every *tentative* interval: fully
//     swallowed intervals are deleted (the paper's Eq. 24 shift deletion —
//     the source of superlinear speedups), partially covered ones are
//     trimmed and re-centered. Trimming rather than deleting guarantees
//     that no part of the band silently loses coverage.
func (s *schedState) complete(own *interval, center, radius float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	dLo, dHi := center-radius, center+radius

	// Remainders of the owning interval.
	for _, rem := range subtract(own.lo, own.hi, dLo, dHi) {
		s.push(&interval{lo: rem[0], hi: rem[1], shift: 0.5 * (rem[0] + rem[1])})
	}
	// Subtract from all tentative intervals.
	kept := s.queue[:0]
	var spawned []*interval
	for _, iv := range s.queue {
		rems := subtract(iv.lo, iv.hi, dLo, dHi)
		switch {
		case len(rems) == 1 && rems[0][0] == iv.lo && rems[0][1] == iv.hi:
			kept = append(kept, iv) // untouched
		case len(rems) == 0:
			s.tentativeDeleted++ // fully swallowed: delete (Eq. 24)
		default:
			s.tentativeDeleted++
			for _, rem := range rems {
				nv := &interval{lo: rem[0], hi: rem[1], shift: 0.5 * (rem[0] + rem[1])}
				// Preserve band-edge pinning when the edge survives.
				if iv.edgeLeft && rem[0] == iv.lo {
					nv.edgeLeft = true
					nv.shift = rem[0]
				}
				if iv.edgeRite && rem[1] == iv.hi {
					nv.edgeRite = true
					nv.shift = rem[1]
				}
				spawned = append(spawned, nv)
			}
		}
	}
	s.queue = kept
	for _, nv := range spawned {
		s.push(nv)
	}
	s.cond.Broadcast()
}

// fail aborts the solve with the first error.
func (s *schedState) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
}

// subtract returns the parts of [lo, hi] not covered by [dLo, dHi]
// (0, 1 or 2 sub-intervals; degenerate slivers below 1e-12 of the width
// are dropped).
func subtract(lo, hi, dLo, dHi float64) [][2]float64 {
	eps := 1e-12 * (hi - lo)
	var out [][2]float64
	if dHi <= lo || dLo >= hi {
		return [][2]float64{{lo, hi}}
	}
	if dLo > lo+eps {
		out = append(out, [2]float64{lo, dLo})
	}
	if dHi < hi-eps {
		out = append(out, [2]float64{dHi, hi})
	}
	return out
}

// initialIntervals subdivides [ωmin, ωmax] into N = κT adjacent intervals
// and assigns tentative shifts per Sec. IV-A: the first and last shifts sit
// at the band edges, interior ones at midpoints. The pick order implements
// the startup rule Eqs. 13–15 (extrema first: ν = 1, N, 2, 3, …).
func initialIntervals(omegaMin, omegaMax float64, n int) []*interval {
	if n < 2 {
		n = 2
	}
	w := (omegaMax - omegaMin) / float64(n)
	ivs := make([]*interval, n)
	for v := 0; v < n; v++ {
		lo := omegaMin + float64(v)*w
		hi := lo + w
		if v == n-1 {
			hi = omegaMax
		}
		iv := &interval{lo: lo, hi: hi, shift: 0.5 * (lo + hi)}
		if v == 0 {
			iv.shift = lo
			iv.edgeLeft = true
		}
		if v == n-1 {
			iv.shift = hi
			iv.edgeRite = true
		}
		ivs[v] = iv
	}
	// Pick order: ν=1, ν=N, then ν=2…N−1.
	order := make([]*interval, 0, n)
	order = append(order, ivs[0], ivs[n-1])
	order = append(order, ivs[1:n-1]...)
	return order
}

// Solve runs the parallel multi-shift Hamiltonian eigensolver of Sec. IV
// with Options.Threads concurrent workers and returns all imaginary
// eigenvalues in [OmegaMin, OmegaMax].
func Solve(op *hamiltonian.Op, opts Options) (*Result, error) {
	opts.setDefaults()
	start := time.Now()
	res := &Result{}

	omegaMax := opts.OmegaMax
	if omegaMax == 0 {
		est, err := EstimateOmegaMax(op, opts.Seed)
		if err != nil {
			return nil, err
		}
		omegaMax = est
	}
	if omegaMax <= opts.OmegaMin {
		return nil, fmt.Errorf("core: empty band [%g, %g]", opts.OmegaMin, omegaMax)
	}
	res.OmegaMax = omegaMax

	st := newSchedState(opts.MaxShifts)
	for _, iv := range initialIntervals(opts.OmegaMin, omegaMax, opts.Kappa*opts.Threads) {
		st.push(iv)
	}

	type shiftOut struct {
		rec    ShiftRecord
		eigs   []complex128
		residM []float64
		rst    int
		apply  int
	}
	var outMu sync.Mutex
	var outs []shiftOut

	var wg sync.WaitGroup
	for w := 0; w < opts.Threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				iv := st.pop()
				if iv == nil {
					return
				}
				rho0 := 0.5 * opts.Alpha * iv.width()
				if iv.edgeLeft || iv.edgeRite {
					// Edge shifts sit at the interval boundary; the disk
					// must be able to reach across the whole interval.
					rho0 = opts.Alpha * iv.width()
				}
				params := opts.Arnoldi
				params.Seed = opts.Seed*1_000_003 + int64(iv.id)*7919 + 1
				sres, err := runShift(op, iv.shift, rho0, params)
				if err != nil {
					st.fail(fmt.Errorf("core: shift ω=%g: %w", iv.shift, err))
					return
				}
				st.complete(iv, iv.shift, sres.Radius)
				outMu.Lock()
				outs = append(outs, shiftOut{
					rec: ShiftRecord{
						Omega:  iv.shift,
						Radius: sres.Radius,
						NEigs:  len(sres.Eigenvalues),
						Worker: worker,
					},
					eigs:   sres.Eigenvalues,
					residM: sres.ResidualsM,
					rst:    sres.Restarts,
					apply:  sres.OpApplies,
				})
				outMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if st.err != nil {
		return nil, st.err
	}

	for _, o := range outs {
		res.Shifts = append(res.Shifts, o.rec)
		res.Eigenvalues = append(res.Eigenvalues, o.eigs...)
		res.eigResiduals = append(res.eigResiduals, o.residM...)
		res.Stats.Restarts += o.rst
		res.Stats.OpApplies += o.apply
	}
	res.Stats.ShiftsProcessed = st.processed
	res.Stats.TentativeDeleted = st.tentativeDeleted
	res.Stats.Elapsed = time.Since(start)
	collect(res, op, opts.AxisTol, opts.Threads)
	return res, nil
}
