package core

import (
	"context"
	"sort"

	"repro/internal/hamiltonian"
)

// interval is one tentative search interval Ĩ_ν with its tentative shift
// ϑ̃_ν (paper Sec. IV-A). Intervals held by the pool queue carry a
// reference to their owning Job; per job they are pairwise disjoint and
// their union is exactly the part of the band not yet covered by completed
// or in-flight work.
type interval struct {
	id       int
	job      *Job
	lo, hi   float64
	shift    float64
	edgeLeft bool // shift pinned to the left band edge (ν = 1)
	edgeRite bool // shift pinned to the right band edge (ν = N)
}

func (iv *interval) width() float64 { return iv.hi - iv.lo }

// subtract returns the parts of [lo, hi] not covered by [dLo, dHi]
// (0, 1 or 2 sub-intervals; degenerate slivers below 1e-12 of the width
// are dropped).
func subtract(lo, hi, dLo, dHi float64) [][2]float64 {
	eps := 1e-12 * (hi - lo)
	var out [][2]float64
	if dHi <= lo || dLo >= hi {
		return [][2]float64{{lo, hi}}
	}
	if dLo > lo+eps {
		out = append(out, [2]float64{lo, dLo})
	}
	if dHi < hi-eps {
		out = append(out, [2]float64{dHi, hi})
	}
	return out
}

// initialIntervals subdivides [ωmin, ωmax] into N = κT adjacent intervals
// and assigns tentative shifts per Sec. IV-A: the first and last shifts sit
// at the band edges, interior ones at midpoints. The pick order implements
// the startup rule Eqs. 13–15 (extrema first: ν = 1, N, 2, 3, …).
func initialIntervals(omegaMin, omegaMax float64, n int) []*interval {
	if n < 2 {
		n = 2
	}
	w := (omegaMax - omegaMin) / float64(n)
	ivs := make([]*interval, n)
	for v := 0; v < n; v++ {
		lo := omegaMin + float64(v)*w
		hi := lo + w
		if v == n-1 {
			hi = omegaMax
		}
		iv := &interval{lo: lo, hi: hi, shift: 0.5 * (lo + hi)}
		if v == 0 {
			iv.shift = lo
			iv.edgeLeft = true
		}
		if v == n-1 {
			iv.shift = hi
			iv.edgeRite = true
		}
		ivs[v] = iv
	}
	// Pick order: ν=1, ν=N, then ν=2…N−1.
	order := make([]*interval, 0, n)
	order = append(order, ivs[0], ivs[n-1])
	order = append(order, ivs[1:n-1]...)
	return order
}

// warmIntervals builds the startup interval set from caller-provided shift
// locations (Options.InitialShifts): the band is cut at the midpoints
// between consecutive warm shifts, and each interval's tentative shift sits
// at the warm location instead of the midpoint. A warm-started enforcement
// re-characterization passes the previous iteration's crossings here —
// violations only shrink under residue perturbation, so prior crossings
// are near-optimal shift locations and far fewer shifts are needed than
// the cold-start κT subdivision.
//
// Shifts outside the band are dropped; near-duplicates (closer than the
// band width over maxN) are merged into their mean so a dense crossing
// cluster does not inflate the startup set beyond the cold-start count.
// Returns nil when no usable shift survives (callers fall back to
// initialIntervals). Coverage of the whole band is guaranteed regardless
// of shift placement by the completion update, which re-queues every
// uncovered remainder.
func warmIntervals(omegaMin, omegaMax float64, shifts []float64, maxN int) []*interval {
	if len(shifts) == 0 {
		return nil
	}
	if maxN < 2 {
		maxN = 2
	}
	span := omegaMax - omegaMin
	ws := make([]float64, 0, len(shifts))
	for _, s := range shifts {
		if s >= omegaMin && s <= omegaMax {
			ws = append(ws, s)
		}
	}
	if len(ws) == 0 {
		return nil
	}
	sort.Float64s(ws)
	// Greedy clustering: merge runs of shifts closer than span/maxN.
	minSep := span / float64(maxN)
	var merged []float64
	sum, count := ws[0], 1
	for _, s := range ws[1:] {
		if s-sum/float64(count) < minSep {
			sum += s
			count++
			continue
		}
		merged = append(merged, sum/float64(count))
		sum, count = s, 1
	}
	merged = append(merged, sum/float64(count))

	ivs := make([]*interval, len(merged))
	lo := omegaMin
	for i, s := range merged {
		hi := omegaMax
		if i+1 < len(merged) {
			hi = 0.5 * (s + merged[i+1])
		}
		ivs[i] = &interval{lo: lo, hi: hi, shift: s}
		lo = hi
	}
	return ivs
}

// Solve runs the parallel multi-shift Hamiltonian eigensolver of Sec. IV
// and returns all imaginary eigenvalues in [OmegaMin, OmegaMax]. It is a
// thin wrapper over the pool engine: with Options.Pool set the job shares
// that pool's workers, otherwise a private pool with Options.Threads
// workers is created for the duration of the solve.
func Solve(op *hamiltonian.Op, opts Options) (*Result, error) {
	return SolveContext(context.Background(), op, opts)
}

// SolveContext is Solve with cancellation/deadline support: when ctx is
// canceled the remaining tentative shifts are dropped and the error is
// ctx.Err(). Cancellation granularity is one shift — shifts already in
// flight run to completion.
func SolveContext(ctx context.Context, op *hamiltonian.Op, opts Options) (*Result, error) {
	p := opts.Pool
	if p == nil && opts.Client != nil {
		p = opts.Client.Pool()
	}
	if p == nil {
		// NewPool clamps Threads < 1 to one worker; Submit validates the
		// options (rejecting negatives) before any solver work runs.
		p = NewPool(opts.Threads)
		defer p.Close()
	}
	j, err := p.Submit(ctx, op, opts)
	if err != nil {
		return nil, err
	}
	return j.Wait()
}
