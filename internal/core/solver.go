package core

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"

	"repro/internal/arnoldi"
	"repro/internal/hamiltonian"
)

// hamOp adapts hamiltonian.Op to the arnoldi.Operator interface (plain
// apply, used for the ω_max estimate).
type hamOp struct{ op *hamiltonian.Op }

func (h hamOp) Dim() int { return h.op.Dim() }
func (h hamOp) Apply(y, x []complex128) error {
	h.op.Apply(y, x)
	return nil
}

// EstimateOmegaMax returns the magnitude of the largest Hamiltonian
// eigenvalue, computed with a plain (non-inverted) Arnoldi iteration on M
// (paper Sec. IV-A), inflated by a small safety margin.
func EstimateOmegaMax(op *hamiltonian.Op, seed int64) (float64, error) {
	cfg := arnoldi.Config{MaxDim: 40, Rng: newRand(seed)}
	v, err := arnoldi.LargestMagnitude(hamOp{op}, cfg, 8, 1e-4)
	if err != nil {
		return 0, fmt.Errorf("core: ω_max estimation failed: %w", err)
	}
	return 1.02 * cmplx.Abs(v), nil
}

// runShift executes one single-shift iteration S(jω, ρ₀) on a factored
// shift-invert operator — freshly factored, or pinned from the operator's
// shift cache when the interval was prefactored (Job.prefactorShifts).
// When the operator carries the half-size reciprocal path, the iteration
// runs in the squared spectral space μ = λ² at shift τ = −ω² and the
// result is mapped back to λ-space (see runShiftHalf); the returned
// eigenvalue estimates feed the same full-size refinement pipeline either
// way.
func runShift(op *hamiltonian.Op, omega, rho0 float64, params arnoldi.SingleShiftParams) (*arnoldi.SingleShiftResult, error) {
	if op.HalfRouted(omega, rho0) {
		return runShiftHalf(op, op.Half(), omega, rho0, params)
	}
	so, err := op.ShiftInvert(complex(0, omega))
	if err != nil {
		// The shift collided with an eigenvalue (a crossing sits exactly at
		// ω). Nudge it by a tiny relative offset and retry once.
		nudge := omega * 1e-9
		if nudge == 0 {
			nudge = rho0 * 1e-9
		}
		so, err = op.ShiftInvert(complex(0, omega+nudge))
		if err != nil {
			return nil, err
		}
	}
	defer so.Release()
	return arnoldi.SingleShift(so, rho0, params)
}

// runShiftHalf is the half-size sweep iteration for reciprocal models.
// The λ-disk |λ − jω| ≤ ρ maps into the μ-disk |μ + ω²| ≤ ρ·(ρ + 2ω)
// (since μ − τ = (λ − jω)(λ + jω) and |λ + jω| ≤ |λ − jω| + 2ω), so
// running the same certified-disk iteration at τ = −ω² with the enlarged
// radius covers every Hamiltonian eigenvalue the full-size shift would
// certify. Found eigenvalues map back through the canonical square root
// (Im λ ≥ 0 — a genuine eigenvalue of M, which is symmetric under λ ↦ −λ,
// and the representative the crossing pipeline wants).
func runShiftHalf(op *hamiltonian.Op, h *hamiltonian.HalfOp, omega, rho0 float64, params arnoldi.SingleShiftParams) (*arnoldi.SingleShiftResult, error) {
	so, err := h.ShiftInvert(op.SweepTheta(omega, rho0))
	if err != nil {
		// τ collided with an eigenvalue of N; nudge ω exactly like the
		// full path and re-square.
		nudge := omega * 1e-9
		if nudge == 0 {
			nudge = rho0 * 1e-9
		}
		so, err = h.ShiftInvert(op.SweepTheta(omega+nudge, rho0))
		if err != nil {
			return nil, err
		}
	}
	defer so.Release()
	rhoMu := rho0 * (rho0 + 2*omega)
	// τ = −ω² is real and N is a real operator, so the μ-space iteration
	// runs in real arithmetic end to end.
	mres, err := arnoldi.SingleShiftReal(so, rhoMu, params)
	if err != nil {
		return nil, err
	}
	return mapHalfResult(mres, omega), nil
}

// mapHalfResult converts a μ-space (μ = λ²) single-shift result to
// λ-space. Radius: inverting ρ_μ = ρ_λ·(ρ_λ + 2ω) gives exactly
// ρ_λ = ρ_μ / (√(ω² + ρ_μ) + ω), additionally capped at
// HalfSafeFraction·ω — a grown μ-certification must never claim the
// near-origin region where the squared spectrum cannot resolve pairs
// (shrinking a certified disk is always sound). Residuals: a backward
// error δμ on μ perturbs λ = √μ by ≈ δμ/(2|λ|); at λ ≈ 0 the map
// degenerates to √δμ.
func mapHalfResult(mres *arnoldi.SingleShiftResult, omega float64) *arnoldi.SingleShiftResult {
	out := &arnoldi.SingleShiftResult{
		Theta:     complex(0, omega),
		Restarts:  mres.Restarts,
		OpApplies: mres.OpApplies,
		Exhausted: mres.Exhausted,
	}
	rhoMu := mres.Radius
	out.Radius = rhoMu / (math.Sqrt(omega*omega+rhoMu) + omega)
	if lim := hamiltonian.HalfSafeFraction * omega; out.Radius > lim {
		out.Radius = lim
	}
	if len(mres.Eigenvalues) == 0 {
		return out
	}
	out.Eigenvalues = make([]complex128, len(mres.Eigenvalues))
	out.ResidualsM = make([]float64, len(mres.Eigenvalues))
	for i, mu := range mres.Eigenvalues {
		lam := cmplx.Sqrt(mu)
		if imag(lam) < 0 {
			lam = -lam
		}
		out.Eigenvalues[i] = lam
		resid := 0.0
		if i < len(mres.ResidualsM) {
			if a := 2 * cmplx.Abs(lam); a > 0 {
				resid = mres.ResidualsM[i] / a
			} else {
				resid = math.Sqrt(mres.ResidualsM[i])
			}
		}
		out.ResidualsM[i] = resid
	}
	return out
}

// collect turns the per-shift eigenvalue sets into the final Result fields:
// deduplicated eigenvalues and imaginary-axis crossings. Near-axis
// candidates are polished with structured inverse iteration before
// classification: Ritz values of the non-normal Hamiltonian can carry
// errors far above the residual tolerance, which would otherwise produce
// phantom or missing crossings.
//
// The refinements (and the canonical polish after them) run as PhaseRefine
// task batches under the given client: each one re-factors a shift-invert
// operator, which would otherwise serialize the tail of a parallel solve —
// and on a shared pool the refinement tails of N jobs finishing together
// obey the same priority/fairness/admission policy as every other compute
// phase instead of oversubscribing the machine on free goroutines. Each
// task writes only its own index-assigned slot, so the refined values (and
// hence the reported crossings) are bit-identical under any worker count.
// The tail is not cancelable (the solve's context governs the shifts, not
// this post-completion work — see Job.Wait); the returned error is
// non-nil only when the pool closed underneath the batch. Per-eigenvalue
// refinement failures fall back to the unrefined estimate as before.
func collect(client *Client, res *Result, op *hamiltonian.Op, axisTol float64) error {
	scale := res.OmegaMax
	if scale == 0 {
		scale = 1
	}
	// Dedup raw eigenvalues across overlapping disks, keeping the
	// per-eigenvalue residuals aligned.
	type eig struct {
		v complex128
		r float64
	}
	pairs := make([]eig, len(res.Eigenvalues))
	for i, v := range res.Eigenvalues {
		pairs[i].v = v
		if i < len(res.eigResiduals) {
			pairs[i].r = res.eigResiduals[i]
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if imag(pairs[i].v) != imag(pairs[j].v) {
			return imag(pairs[i].v) < imag(pairs[j].v)
		}
		return real(pairs[i].v) < real(pairs[j].v)
	})
	kept := pairs[:0]
	for _, p := range pairs {
		if len(kept) > 0 && cmplx.Abs(p.v-kept[len(kept)-1].v) <= 1e-9*scale {
			continue
		}
		kept = append(kept, p)
	}
	res.Eigenvalues = res.Eigenvalues[:0]
	for _, p := range kept {
		res.Eigenvalues = append(res.Eigenvalues, p.v)
	}

	floor := 1e-9 * scale
	var candidates []complex128
	for _, p := range kept {
		// Candidate selection: near the axis within the coarse window, OR
		// with a real part hidden below the eigenvalue's own error bar
		// (residual in M) — ill-conditioned eigenvalues can sit far from
		// the axis in raw Ritz form and still be true crossings.
		if hamiltonian.ClassifyImag(p.v, 1e-3, floor) ||
			(p.r > 0 && math.Abs(real(p.v)) <= 1e4*p.r) {
			candidates = append(candidates, p.v)
		}
	}
	refined := make([]complex128, len(candidates))
	resids := make([]float64, len(candidates))
	fns := make([]func(int) error, len(candidates))
	for i, v := range candidates {
		i, v := i, v
		fns[i] = func(int) error {
			r, resid, err := op.RefineEig(v, 6)
			if err != nil {
				r, resid = v, 0 // keep the unrefined estimate, no error bar
			}
			refined[i], resids[i] = r, resid
			return nil
		}
	}
	//lint:ignore ctxflow the refinement tail is deliberately detached: a cancellation racing completion must not discard a finished result (see collect's contract)
	if err := client.RunBatch(context.Background(), PhaseRefine, fns); err != nil {
		return err
	}
	// Final arbiter: the physical boundary test at the refined frequency.
	// Eigenvalue-based classification (axisTol) fast-paths clear cases;
	// everything else is decided by IsCrossing, which is insensitive to
	// eigenvalue conditioning. The IsCrossing evaluations each factor a
	// shift-invert operator, so they too fan out as PhaseRefine tasks; the
	// verdicts land in index-assigned slots and are collected in candidate
	// order, keeping the crossing list schedule-independent.
	keep := make([]bool, len(refined))
	var arbiter []func(int) error
	for i, r := range refined {
		w := math.Abs(imag(r))
		if hamiltonian.ClassifyImag(r, 1e-12, floor) {
			keep[i] = true
			continue
		}
		if !hamiltonian.ClassifyImagWithResidual(r, resids[i], axisTol, floor) {
			continue
		}
		i, w := i, w
		arbiter = append(arbiter, func(int) error {
			ok, err := op.IsCrossing(w, 0)
			keep[i] = err == nil && ok
			return nil
		})
	}
	//lint:ignore ctxflow same detached-tail contract as the refinement batch above
	if err := client.RunBatch(context.Background(), PhaseRefine, arbiter); err != nil {
		return err
	}
	var crossings []float64
	for i, r := range refined {
		if keep[i] {
			crossings = append(crossings, math.Abs(imag(r)))
		}
	}
	sort.Float64s(crossings)
	out := crossings[:0]
	for _, w := range crossings {
		if len(out) > 0 && w-out[len(out)-1] <= 3e-9*scale {
			continue
		}
		out = append(out, w)
	}
	if err := canonicalPolish(client, out, op, scale); err != nil {
		return err
	}
	// Polish can collapse two barely-distinct candidates (just outside the
	// pre-polish dedup window) onto the exact same eigenvalue; dedup again.
	sort.Float64s(out)
	final := out[:0]
	for _, w := range out {
		if len(final) > 0 && w-final[len(final)-1] <= 3e-9*scale {
			continue
		}
		final = append(final, w)
	}
	res.Crossings = final
	return nil
}

// collectStandalone runs the collect tail of the pool-less baselines
// (serial bisection, static grid) on an ephemeral private pool of the
// given width, so the refinement code path is the same one the pooled
// solves exercise.
func collectStandalone(res *Result, op *hamiltonian.Op, axisTol float64, threads int) error {
	p := NewPool(threads)
	defer p.Close()
	return collect(p.NewClient(ClientOptions{}), res, op, axisTol)
}

// canonicalPolish re-refines each accepted crossing from a quantized seed
// frequency. The refined values entering here depend (in their last bits)
// on which shift first certified the eigenvalue — and the shift schedule is
// timing-dependent for any parallel or pooled solve. Snapping the seed to a
// relative grid (far coarser than the cross-schedule scatter, kept finer
// than a quarter of the closest crossing separation) and re-running the
// deterministic structured refinement makes the reported value a function
// of the model alone: crossings come out bit-identical across thread
// counts and across standalone-vs-fleet scheduling. A polish that wanders
// off to a different eigenvalue (clustered spectra) is discarded in favor
// of the original refined value.
//
// Crossings that share a grid cell — two TRUE crossings separated by less
// than a cell width, a violation band physically narrower than the probe
// resolution — would collapse onto the cell's single canonical seed and
// merge. They instead go through an unquantized multiplicity pass first:
// each member refines from its own frequency to resolve which eigenvalue
// it belongs to, and the resolved value is snapped to a fine sub-grid
// (still far above cross-schedule scatter) for its canonical seed, so
// distinct in-cell crossings keep distinct reported values while genuine
// duplicates still merge.
//
// The polishes run as PhaseRefine batches under the job's client; each
// task reads and writes only its own crossing slot, so scheduling cannot
// influence the result.
func canonicalPolish(client *Client, crossings []float64, op *hamiltonian.Op, scale float64) error {
	if len(crossings) == 0 {
		return nil
	}
	// The grid must NOT adapt to the observed separations: near-duplicate
	// candidates of one eigenvalue appear schedule-dependently just above
	// the dedup window, and any quantum derived from them would shift every
	// other crossing's seed between runs.
	quantum := 1e-7 * scale
	// Fine sub-grid for multi-member cells: coarse enough to absorb the
	// cross-schedule scatter of the refined values (≪ 1e-9·scale, the
	// eigenvalue dedup window), fine enough that crossings surviving the
	// 3e-9·scale crossing dedup land in distinct fine cells.
	fineQuantum := 1e-9 * scale
	cellOf := func(w float64) int64 { return int64(math.Round(w / quantum)) }
	members := make(map[int64]int, len(crossings))
	for _, w := range crossings {
		members[cellOf(w)]++
	}
	seeds := make([]float64, len(crossings))
	guards := make([]float64, len(crossings))
	var multiplicity []func(int) error
	for i, w := range crossings {
		if members[cellOf(w)] == 1 {
			seeds[i] = math.Round(w/quantum) * quantum
			guards[i] = 2 * quantum
			continue
		}
		i, w := i, w
		seeds[i] = math.NaN() // stays NaN if the multiplicity pass fails
		guards[i] = 2 * fineQuantum
		multiplicity = append(multiplicity, func(int) error {
			r, _, err := op.RefineEig(complex(0, w), 6)
			if err != nil {
				return nil
			}
			pw := math.Abs(imag(r))
			if math.Abs(pw-w) > 2*quantum {
				return nil // wandered out of the cell entirely
			}
			seeds[i] = math.Round(pw/fineQuantum) * fineQuantum
			return nil
		})
	}
	//lint:ignore ctxflow canonical polish is part of the detached refinement tail: it must finish once collect has committed to reporting
	if err := client.RunBatch(context.Background(), PhaseRefine, multiplicity); err != nil {
		return err
	}
	fns := make([]func(int) error, len(crossings))
	for i := range crossings {
		i := i
		fns[i] = func(int) error {
			wq := seeds[i]
			if math.IsNaN(wq) {
				return nil // keep the original refined value
			}
			r, _, err := op.RefineEig(complex(0, wq), 6)
			if err != nil {
				return nil // keep the original refined value
			}
			pw := math.Abs(imag(r))
			// A legitimate polish lands within a seed cell of where it
			// started; a larger jump means the iteration converged to a
			// different (neighboring) eigenvalue — keep the original refined
			// value. The jump is measured from the SEED, not the member's
			// original value: in a multi-member cell the seed is the
			// multiplicity-resolved position, and a member that entered as a
			// schedule-dependent phantom of its cell-mate sits a whole
			// phantom-offset away from its own resolved seed. Guarding on
			// the original value would veto exactly the polish that collapses
			// the phantom onto the true eigenvalue (where the final dedup
			// merges it). For in-cell pairs the guard is 2·fineQuantum, below
			// the 3e-9·scale minimum true separation, so a polish that slides
			// onto the pair's other member is still rejected.
			if math.Abs(pw-wq) > guards[i] {
				return nil
			}
			crossings[i] = pw
			return nil
		}
	}
	//lint:ignore ctxflow canonical polish is part of the detached refinement tail: it must finish once collect has committed to reporting
	return client.RunBatch(context.Background(), PhaseRefine, fns)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
