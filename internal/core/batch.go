package core

import (
	"context"
	"sync"
)

// batch tracks one RunBatch fan-out: remaining task count, first error,
// and the join channel. Its own mutex (not the pool's) serializes the
// error/countdown so finishing tasks never contend with the scheduler.
type batch struct {
	mu   sync.Mutex
	left int
	err  error
	done chan struct{}
}

func (b *batch) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *batch) errNow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

func (b *batch) finishOne() {
	b.mu.Lock()
	b.left--
	if b.left == 0 {
		close(b.done)
	}
	b.mu.Unlock()
}

// RunBatch fans the given functions out to the pool's workers as one task
// batch of this client and blocks until every task has drained (join).
// Each function receives the executing worker's id. The first error stops
// the batch: its still-queued tasks are purged from the client queue in
// one pass (they neither run nor cost further scheduler pops) and the
// error is returned. Likewise ctx cancellation purges the not-yet-started
// remainder and returns ctx.Err(); tasks already in flight run to
// completion, so the caller's result slots are quiescent once RunBatch
// returns.
//
// Determinism: the pool only chooses WHEN each function runs, never with
// what arguments — a batch whose functions write to disjoint,
// index-assigned slots produces bit-identical results under any worker
// count or pool load.
//
// Backpressure: a client created with ClientOptions.MaxQueuedTasks > 0
// enqueues large batches in chunks of that size — each chunk drains before
// the next is queued, bounding this client's pool-queue footprint. The
// first failing chunk returns its error without enqueueing the rest.
//
// RunBatch must not be called from a pool worker goroutine (the join
// could then deadlock a fully-busy pool); the solver phases call it from
// job coordinator goroutines only.
func (c *Client) RunBatch(ctx context.Context, phase string, fns []func(worker int) error) error {
	if limit := c.maxQueued; limit > 0 && len(fns) > limit {
		for start := 0; start < len(fns); start += limit {
			end := start + limit
			if end > len(fns) {
				end = len(fns)
			}
			if err := c.runBatchChunk(ctx, phase, fns[start:end]); err != nil {
				return err
			}
		}
		return nil
	}
	return c.runBatchChunk(ctx, phase, fns)
}

// runBatchChunk enqueues one batch of tasks whole and joins it.
func (c *Client) runBatchChunk(ctx context.Context, phase string, fns []func(worker int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(fns) == 0 {
		return nil
	}
	b := &batch{left: len(fns), done: make(chan struct{})}
	p := c.pool
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	for _, fn := range fns {
		p.enqueueLocked(&task{
			client: c,
			phase:  phase,
			batch:  b,
			run: func(worker int) {
				failed := b.errNow() != nil
				if !failed {
					if err := ctx.Err(); err != nil {
						b.fail(err)
						failed = true
					} else if err := fn(worker); err != nil {
						b.fail(err)
						failed = true
					}
				}
				if failed {
					// Dead batch: drop its queued siblings in one pass so
					// the join does not wait for each to be individually
					// popped past live clients' work.
					c.purgeBatch(b)
				}
				b.finishOne()
			},
			abort: func() {
				b.fail(ErrPoolClosed)
				b.finishOne()
			},
		})
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	<-b.done
	return b.errNow()
}

// purgeBatch removes the batch's still-queued tasks from the client queue
// and marks each as finished. Tasks concurrently popped by a worker are
// simply no longer in the queue and account for themselves; a second
// purge finds nothing.
func (c *Client) purgeBatch(b *batch) {
	p := c.pool
	p.mu.Lock()
	purged := 0
	kept := c.queue[:0]
	for _, t := range c.queue {
		if t.batch == b {
			purged++
			continue
		}
		kept = append(kept, t)
	}
	c.queue = kept
	p.mu.Unlock()
	for i := 0; i < purged; i++ {
		b.finishOne()
	}
}
