package core

import (
	"context"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/arnoldi"
)

// ckCollector accumulates checkpoint events. Callbacks run on worker
// goroutines outside the pool lock, so observation order is arbitrary;
// sorted() restores sequence order.
type ckCollector struct {
	mu  sync.Mutex
	cks []Checkpoint
}

func (c *ckCollector) add(ck Checkpoint) {
	c.mu.Lock()
	c.cks = append(c.cks, ck)
	c.mu.Unlock()
}

func (c *ckCollector) sorted() []Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]Checkpoint(nil), c.cks...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// commits counts the checkpoints that committed a shift (Out != nil).
func (c *ckCollector) commits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ck := range c.cks {
		if ck.Out != nil {
			n++
		}
	}
	return n
}

// runWithCheckpoints solves one case on a fresh pool with checkpoint
// collection and returns the result plus the sequence-ordered events.
func runWithCheckpoints(t *testing.T, seed int64, order int, peak float64) (*Result, []Checkpoint) {
	t.Helper()
	op := buildOp(t, seed, 2, order, peak)
	var col ckCollector
	pool := NewPool(3)
	defer pool.Close()
	j, err := pool.Submit(context.Background(), op, Options{
		Seed:       7,
		Arnoldi:    arnoldi.SingleShiftParams{MaxDim: 40},
		Checkpoint: col.add,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return res, col.sorted()
}

// foldPrefix folds checkpoints 0..n-1 into a resume state.
func foldPrefix(cks []Checkpoint, n int) *ResumeState {
	rs := &ResumeState{}
	for _, ck := range cks[:n] {
		rs.Apply(ck)
	}
	return rs
}

// TestCheckpointSequence pins the emission contract: one Seq-0 submission
// snapshot with no Out, then exactly one Out-carrying checkpoint per
// committed shift, contiguous sequence numbers, counters in lockstep, and
// an empty uncovered set at the final commit.
func TestCheckpointSequence(t *testing.T) {
	res, cks := runWithCheckpoints(t, 61, 24, 1.06)
	if len(cks) < 2 {
		t.Fatalf("expected at least 2 checkpoints, got %d", len(cks))
	}
	for i, ck := range cks {
		if ck.Seq != i {
			t.Fatalf("checkpoint %d has Seq %d (gap or duplicate)", i, ck.Seq)
		}
		if ck.Completed != i {
			t.Fatalf("checkpoint Seq %d: Completed %d, want %d (cold run)", ck.Seq, ck.Completed, i)
		}
		if (ck.Out == nil) != (i == 0) {
			t.Fatalf("checkpoint Seq %d: Out nil-ness wrong (want nil only at Seq 0)", ck.Seq)
		}
		if ck.OmegaMax != res.OmegaMax {
			t.Fatalf("checkpoint Seq %d: OmegaMax %v != result %v", ck.Seq, ck.OmegaMax, res.OmegaMax)
		}
	}
	if n := len(cks) - 1; n != res.Stats.ShiftsProcessed {
		t.Fatalf("%d shift checkpoints for %d processed shifts", n, res.Stats.ShiftsProcessed)
	}
	if tail := cks[len(cks)-1].Tentative; len(tail) != 0 {
		t.Fatalf("final checkpoint still has %d tentative intervals", len(tail))
	}
	if len(cks[0].Tentative) == 0 {
		t.Fatal("submission checkpoint has no startup intervals")
	}
}

// TestCheckpointResumeBitIdentical is the core durability guarantee: a
// solve resumed from any contiguous checkpoint prefix reports crossings
// and ω_max bit-identical to the uninterrupted run, while re-executing
// only the uncovered remainder.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cases := []struct {
		seed  int64
		order int
		peak  float64
	}{
		{seed: 61, order: 24, peak: 1.06},
		{seed: 62, order: 30, peak: 1.04},
		{seed: 64, order: 28, peak: 1.05},
	}
	for _, tc := range cases {
		ref, cks := runWithCheckpoints(t, tc.seed, tc.order, tc.peak)
		refShifts := len(cks) - 1
		// Three prefixes: submission only (resume skips estimation but
		// re-runs every shift), mid-run, and the complete log.
		prefixes := []int{1, (len(cks) + 1) / 2, len(cks)}
		for _, n := range prefixes {
			rs := foldPrefix(cks, n)
			op := buildOp(t, tc.seed, 2, tc.order, tc.peak)
			var col ckCollector
			pool := NewPool(3)
			j, err := pool.Submit(context.Background(), op, Options{
				Seed:       7,
				Arnoldi:    arnoldi.SingleShiftParams{MaxDim: 40},
				Checkpoint: col.add,
				Resume:     rs,
			})
			if err != nil {
				pool.Close()
				t.Fatalf("seed %d prefix %d: resume submit: %v", tc.seed, n, err)
			}
			res, err := j.Wait()
			pool.Close()
			if err != nil {
				t.Fatalf("seed %d prefix %d: resumed wait: %v", tc.seed, n, err)
			}
			if res.OmegaMax != ref.OmegaMax {
				t.Fatalf("seed %d prefix %d: ω_max %v != %v", tc.seed, n, res.OmegaMax, ref.OmegaMax)
			}
			if len(res.Crossings) != len(ref.Crossings) {
				t.Fatalf("seed %d prefix %d: %d crossings vs %d uninterrupted",
					tc.seed, n, len(res.Crossings), len(ref.Crossings))
			}
			for k := range res.Crossings {
				if res.Crossings[k] != ref.Crossings[k] {
					t.Fatalf("seed %d prefix %d crossing %d: %v != %v (not bit-identical)",
						tc.seed, n, k, res.Crossings[k], ref.Crossings[k])
				}
			}
			newShifts := col.commits()
			if n > 1 && newShifts >= refShifts {
				t.Fatalf("seed %d prefix %d: resumed run executed %d shifts, not fewer than %d",
					tc.seed, n, newShifts, refShifts)
			}
			if n == len(cks) && newShifts != 0 {
				t.Fatalf("seed %d full prefix: re-executed %d shifts", tc.seed, newShifts)
			}
			// Emission resumes after the prefix: no Seq-0 event, sequence
			// numbers continue contiguously from rs.Seq+1.
			for i, ck := range col.sorted() {
				if want := rs.Seq + 1 + i; ck.Seq != want {
					t.Fatalf("seed %d prefix %d: resumed checkpoint %d has Seq %d, want %d",
						tc.seed, n, i, ck.Seq, want)
				}
			}
		}
	}
}

// TestResumeValidation: corrupted resume states must be rejected at
// submission, before any solver state is touched.
func TestResumeValidation(t *testing.T) {
	op := buildOp(t, 66, 2, 12, 1.05)
	pool := NewPool(2)
	defer pool.Close()
	good := func() *ResumeState {
		return &ResumeState{
			Seq: 1, OmegaMax: 5, NextID: 2, Completed: 1,
			Outs:      []ShiftCheckpoint{{Omega: 1, Radius: 0.5}},
			Tentative: []IntervalCheckpoint{{ID: 1, Lo: 2, Hi: 4, Shift: 3}},
		}
	}
	cases := []struct {
		name string
		mut  func(*ResumeState)
		want string
	}{
		{"nan omega-max", func(rs *ResumeState) { rs.OmegaMax = math.NaN() }, "ω_max"},
		{"negative counter", func(rs *ResumeState) { rs.Completed = -1 }, "negative resume counter"},
		{"interval id out of range", func(rs *ResumeState) { rs.Tentative[0].ID = 7 }, "outside"},
		{"duplicate interval id", func(rs *ResumeState) {
			rs.Tentative = append(rs.Tentative, rs.Tentative[0])
		}, "duplicate"},
		{"shift outside interval", func(rs *ResumeState) { rs.Tentative[0].Shift = 9 }, "shift"},
		{"empty interval", func(rs *ResumeState) { rs.Tentative[0].Hi = rs.Tentative[0].Lo }, "empty"},
		{"negative radius", func(rs *ResumeState) { rs.Outs[0].Radius = -1 }, "bad resume shift"},
		{"residual mismatch", func(rs *ResumeState) {
			rs.Outs[0].Eigenvalues = []complex128{1i}
		}, "residuals"},
	}
	for _, tc := range cases {
		rs := good()
		tc.mut(rs)
		_, err := pool.Submit(context.Background(), op, Options{
			Seed: 7, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}, Resume: rs,
		})
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The untouched state must be accepted (guards against a vacuous test).
	j, err := pool.Submit(context.Background(), op, Options{
		Seed: 7, Arnoldi: arnoldi.SingleShiftParams{MaxDim: 40}, Resume: good(),
	})
	if err != nil {
		t.Fatalf("valid resume state rejected: %v", err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatalf("valid resume solve: %v", err)
	}
}
