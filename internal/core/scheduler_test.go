package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSubtract(t *testing.T) {
	cases := []struct {
		lo, hi, dLo, dHi float64
		want             [][2]float64
	}{
		{0, 10, 20, 30, [][2]float64{{0, 10}}},       // disjoint right
		{0, 10, -5, -1, [][2]float64{{0, 10}}},       // disjoint left
		{0, 10, -1, 11, nil},                         // fully covered
		{0, 10, -1, 4, [][2]float64{{4, 10}}},        // left overlap
		{0, 10, 6, 12, [][2]float64{{0, 6}}},         // right overlap
		{0, 10, 3, 7, [][2]float64{{0, 3}, {7, 10}}}, // interior split
	}
	for i, c := range cases {
		got := subtract(c.lo, c.hi, c.dLo, c.dHi)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v want %v", i, got, c.want)
		}
		for j := range got {
			if math.Abs(got[j][0]-c.want[j][0]) > 1e-12 || math.Abs(got[j][1]-c.want[j][1]) > 1e-12 {
				t.Fatalf("case %d: got %v want %v", i, got, c.want)
			}
		}
	}
}

func TestSubtractDropsSlivers(t *testing.T) {
	// A remainder thinner than 1e-12 of the width must be dropped.
	got := subtract(0, 1, 1e-15, 2)
	if len(got) != 0 {
		t.Fatalf("sliver not dropped: %v", got)
	}
}

func TestSubtractCoverageProperty(t *testing.T) {
	// The union of (remainders ∪ disk∩interval) must equal the interval.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := rng.Float64() * 10
		hi := lo + rng.Float64()*10 + 0.1
		c := lo + (hi-lo)*rng.Float64()*1.4 - 0.2*(hi-lo)
		r := rng.Float64() * (hi - lo)
		rems := subtract(lo, hi, c-r, c+r)
		// Total measure of remainders + covered part == hi−lo.
		covered := math.Max(0, math.Min(hi, c+r)-math.Max(lo, c-r))
		total := covered
		for _, rem := range rems {
			if rem[0] < lo-1e-9 || rem[1] > hi+1e-9 || rem[1] <= rem[0] {
				return false
			}
			total += rem[1] - rem[0]
		}
		return math.Abs(total-(hi-lo)) < 1e-9*(hi-lo)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialIntervals(t *testing.T) {
	ivs := initialIntervals(0, 100, 4)
	if len(ivs) != 4 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	// Pick order: first, last, then interior.
	if !ivs[0].edgeLeft || ivs[0].shift != 0 {
		t.Fatalf("first pick should be the left edge: %+v", ivs[0])
	}
	if !ivs[1].edgeRite || ivs[1].shift != 100 {
		t.Fatalf("second pick should be the right edge: %+v", ivs[1])
	}
	// Interior shifts at midpoints.
	if ivs[2].shift != 37.5 || ivs[3].shift != 62.5 {
		t.Fatalf("interior shifts wrong: %g %g", ivs[2].shift, ivs[3].shift)
	}
	// The union of intervals is the band.
	var segs [][2]float64
	for _, iv := range ivs {
		segs = append(segs, [2]float64{iv.lo, iv.hi})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i][0] < segs[j][0] })
	if segs[0][0] != 0 || segs[len(segs)-1][1] != 100 {
		t.Fatal("band edges not covered")
	}
	for i := 1; i < len(segs); i++ {
		if math.Abs(segs[i][0]-segs[i-1][1]) > 1e-12 {
			t.Fatalf("gap between intervals %v and %v", segs[i-1], segs[i])
		}
	}
}

// fakeScheduleRun drives schedState directly with synthetic radii to check
// the bookkeeping invariants without any numerics.
func TestSchedStateCoverageInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := newSchedState(1000)
		for _, iv := range initialIntervals(0, 1, 4) {
			st.push(iv)
		}
		// Track the still-uncovered part of the band independently.
		remaining := [][2]float64{{0, 1}}
		for {
			iv := st.pop() // single-threaded: never blocks with inflight>0
			if iv == nil {
				break
			}
			// Random radius: sometimes covers, sometimes splits.
			rho := iv.width() * (0.2 + rng.Float64())
			var next [][2]float64
			for _, r := range remaining {
				next = append(next, subtract(r[0], r[1], iv.shift-rho, iv.shift+rho)...)
			}
			remaining = next
			st.complete(iv, iv.shift, rho)
		}
		if len(st.queue) != 0 || st.inflight != 0 {
			return false
		}
		// The scheduler must have driven the uncovered measure to ~zero.
		var left float64
		for _, r := range remaining {
			left += r[1] - r[0]
		}
		return left < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedStateShiftBudget(t *testing.T) {
	st := newSchedState(1)
	for _, iv := range initialIntervals(0, 1, 2) {
		st.push(iv)
	}
	if iv := st.pop(); iv == nil {
		t.Fatal("first pop should succeed")
	}
	if iv := st.pop(); iv != nil {
		t.Fatal("budget-exceeded pop should fail")
	}
	if st.err == nil {
		t.Fatal("expected budget error")
	}
}

func TestSchedStateTentativeDeletion(t *testing.T) {
	st := newSchedState(100)
	for _, iv := range initialIntervals(0, 1, 4) {
		st.push(iv)
	}
	iv := st.pop() // left edge interval [0, 0.25], shift 0
	// Huge disk covering the whole band: every tentative interval must die.
	st.complete(iv, iv.shift, 5)
	if len(st.queue) != 0 {
		t.Fatalf("queue not emptied: %d left", len(st.queue))
	}
	if st.tentativeDeleted != 3 {
		t.Fatalf("tentativeDeleted = %d, want 3", st.tentativeDeleted)
	}
}

func TestSchedStateSplitSpawnsChildren(t *testing.T) {
	st := newSchedState(100)
	for _, iv := range initialIntervals(0, 1, 2) {
		st.push(iv)
	}
	// Take the left-edge interval [0, 0.5] and complete with a tiny radius
	// around its shift (0): remainder (0+r, 0.5) must be requeued.
	iv := st.pop()
	st.complete(iv, 0, 0.1)
	found := false
	for _, q := range st.queue {
		if math.Abs(q.lo-0.1) < 1e-12 && math.Abs(q.hi-0.5) < 1e-12 {
			found = true
			if math.Abs(q.shift-0.3) > 1e-12 {
				t.Fatalf("child shift %g, want midpoint 0.3", q.shift)
			}
		}
	}
	if !found {
		t.Fatalf("remainder interval not requeued: %+v", st.queue)
	}
}
