package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSubtract(t *testing.T) {
	cases := []struct {
		lo, hi, dLo, dHi float64
		want             [][2]float64
	}{
		{0, 10, 20, 30, [][2]float64{{0, 10}}},       // disjoint right
		{0, 10, -5, -1, [][2]float64{{0, 10}}},       // disjoint left
		{0, 10, -1, 11, nil},                         // fully covered
		{0, 10, -1, 4, [][2]float64{{4, 10}}},        // left overlap
		{0, 10, 6, 12, [][2]float64{{0, 6}}},         // right overlap
		{0, 10, 3, 7, [][2]float64{{0, 3}, {7, 10}}}, // interior split
	}
	for i, c := range cases {
		got := subtract(c.lo, c.hi, c.dLo, c.dHi)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v want %v", i, got, c.want)
		}
		for j := range got {
			if math.Abs(got[j][0]-c.want[j][0]) > 1e-12 || math.Abs(got[j][1]-c.want[j][1]) > 1e-12 {
				t.Fatalf("case %d: got %v want %v", i, got, c.want)
			}
		}
	}
}

func TestSubtractDropsSlivers(t *testing.T) {
	// A remainder thinner than 1e-12 of the width must be dropped.
	got := subtract(0, 1, 1e-15, 2)
	if len(got) != 0 {
		t.Fatalf("sliver not dropped: %v", got)
	}
}

func TestSubtractCoverageProperty(t *testing.T) {
	// The union of (remainders ∪ disk∩interval) must equal the interval.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := rng.Float64() * 10
		hi := lo + rng.Float64()*10 + 0.1
		c := lo + (hi-lo)*rng.Float64()*1.4 - 0.2*(hi-lo)
		r := rng.Float64() * (hi - lo)
		rems := subtract(lo, hi, c-r, c+r)
		// Total measure of remainders + covered part == hi−lo.
		covered := math.Max(0, math.Min(hi, c+r)-math.Max(lo, c-r))
		total := covered
		for _, rem := range rems {
			if rem[0] < lo-1e-9 || rem[1] > hi+1e-9 || rem[1] <= rem[0] {
				return false
			}
			total += rem[1] - rem[0]
		}
		return math.Abs(total-(hi-lo)) < 1e-9*(hi-lo)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialIntervals(t *testing.T) {
	ivs := initialIntervals(0, 100, 4)
	if len(ivs) != 4 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	// Pick order: first, last, then interior.
	if !ivs[0].edgeLeft || ivs[0].shift != 0 {
		t.Fatalf("first pick should be the left edge: %+v", ivs[0])
	}
	if !ivs[1].edgeRite || ivs[1].shift != 100 {
		t.Fatalf("second pick should be the right edge: %+v", ivs[1])
	}
	// Interior shifts at midpoints.
	if ivs[2].shift != 37.5 || ivs[3].shift != 62.5 {
		t.Fatalf("interior shifts wrong: %g %g", ivs[2].shift, ivs[3].shift)
	}
	// The union of intervals is the band.
	var segs [][2]float64
	for _, iv := range ivs {
		segs = append(segs, [2]float64{iv.lo, iv.hi})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i][0] < segs[j][0] })
	if segs[0][0] != 0 || segs[len(segs)-1][1] != 100 {
		t.Fatal("band edges not covered")
	}
	for i := 1; i < len(segs); i++ {
		if math.Abs(segs[i][0]-segs[i-1][1]) > 1e-12 {
			t.Fatalf("gap between intervals %v and %v", segs[i-1], segs[i])
		}
	}
}

// newTestJob wires an idle pool (no workers) and one job so the tests can
// drive the scheduler bookkeeping synchronously with synthetic radii,
// without any numerics. Each test job gets its own default client, like a
// fleet submission would.
func newTestJob(p *Pool, maxShifts int, intervals []*interval) *Job {
	j := &Job{
		opts:   Options{MaxShifts: maxShifts},
		client: p.NewClient(ClientOptions{}),
		done:   make(chan struct{}),
	}
	for _, iv := range intervals {
		j.pushLocked(p, iv)
	}
	return j
}

// popInterval drives the scheduler synchronously: next admitted tentative
// interval, or nil when no runnable eigensolver work is queued.
func popInterval(p *Pool) *interval {
	t := p.popLocked()
	if t == nil {
		return nil
	}
	return t.iv
}

// queuedIntervals returns the job's still-queued tentative intervals.
func queuedIntervals(j *Job) []*interval {
	var out []*interval
	for _, t := range j.client.queue {
		if t.iv != nil && t.job == j {
			out = append(out, t.iv)
		}
	}
	return out
}

func TestSchedulerCoverageInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newIdlePool(1)
		j := newTestJob(p, 1000, initialIntervals(0, 1, 4))
		// Track the still-uncovered part of the band independently.
		remaining := [][2]float64{{0, 1}}
		for {
			iv := popInterval(p) // single-threaded: drives to completion
			if iv == nil {
				break
			}
			// Random radius: sometimes covers, sometimes splits.
			rho := iv.width() * (0.2 + rng.Float64())
			var next [][2]float64
			for _, r := range remaining {
				next = append(next, subtract(r[0], r[1], iv.shift-rho, iv.shift+rho)...)
			}
			remaining = next
			j.completeLocked(p, iv, iv.shift, rho)
		}
		if len(queuedIntervals(j)) != 0 || j.inflight != 0 || !j.finished || j.err != nil {
			return false
		}
		// The scheduler must have driven the uncovered measure to ~zero.
		var left float64
		for _, r := range remaining {
			left += r[1] - r[0]
		}
		return left < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerShiftBudget(t *testing.T) {
	p := newIdlePool(1)
	j := newTestJob(p, 1, initialIntervals(0, 1, 2))
	if iv := popInterval(p); iv == nil {
		t.Fatal("first pop should succeed")
	}
	if iv := popInterval(p); iv != nil {
		t.Fatal("budget-exceeded pop should fail")
	}
	if j.err == nil {
		t.Fatal("expected budget error")
	}
}

func TestSchedulerTentativeDeletion(t *testing.T) {
	p := newIdlePool(1)
	j := newTestJob(p, 100, initialIntervals(0, 1, 4))
	iv := popInterval(p) // left edge interval [0, 0.25], shift 0
	// Huge disk covering the whole band: every tentative interval must die.
	j.completeLocked(p, iv, iv.shift, 5)
	if left := len(queuedIntervals(j)); left != 0 {
		t.Fatalf("queue not emptied: %d left", left)
	}
	if j.tentativeDeleted != 3 {
		t.Fatalf("tentativeDeleted = %d, want 3", j.tentativeDeleted)
	}
	if !j.finished {
		t.Fatal("fully covered job not finished")
	}
}

func TestSchedulerSplitSpawnsChildren(t *testing.T) {
	p := newIdlePool(1)
	j := newTestJob(p, 100, initialIntervals(0, 1, 2))
	// Take the left-edge interval [0, 0.5] and complete with a tiny radius
	// around its shift (0): remainder (0+r, 0.5) must be requeued.
	iv := popInterval(p)
	j.completeLocked(p, iv, 0, 0.1)
	found := false
	for _, q := range queuedIntervals(j) {
		if math.Abs(q.lo-0.1) < 1e-12 && math.Abs(q.hi-0.5) < 1e-12 {
			found = true
			if math.Abs(q.shift-0.3) > 1e-12 {
				t.Fatalf("child shift %g, want midpoint 0.3", q.shift)
			}
		}
	}
	if !found {
		t.Fatalf("remainder interval not requeued: %+v", queuedIntervals(j))
	}
}

// TestSchedulerJobIsolation: completing a disk for one job must never touch
// another job's tentative intervals on the same pool.
func TestSchedulerJobIsolation(t *testing.T) {
	p := newIdlePool(1)
	j1 := newTestJob(p, 100, initialIntervals(0, 1, 2))
	j2 := newTestJob(p, 100, initialIntervals(0, 1, 2))
	// Pop j1's first interval and cover the whole band: j1's remaining
	// tentative interval dies, j2's stay intact. Round-robin order across
	// the two equal-priority clients starts with the first-registered one.
	tk := p.popLocked()
	if tk == nil || tk.job != j1 {
		t.Fatal("round-robin order broken: expected j1's interval first")
	}
	iv := tk.iv
	j1.completeLocked(p, iv, iv.shift, 5)
	if j1.tentativeDeleted != 1 || !j1.finished {
		t.Fatalf("j1 not completed: deleted=%d finished=%v", j1.tentativeDeleted, j1.finished)
	}
	if j2.pending != 2 || j2.tentativeDeleted != 0 || j2.finished {
		t.Fatalf("j2 was touched: pending=%d deleted=%d", j2.pending, j2.tentativeDeleted)
	}
	if len(queuedIntervals(j1)) != 0 || len(queuedIntervals(j2)) != 2 {
		t.Fatal("queues inconsistent after j1 finished")
	}
}

// TestSchedulerFailAfterFinishIsNoop: the ctx watcher can race job
// completion (its select may see ctx.Done() and j.done ready together);
// failing an already-finished job must not overwrite its success.
func TestSchedulerFailAfterFinishIsNoop(t *testing.T) {
	p := newIdlePool(1)
	j := newTestJob(p, 100, initialIntervals(0, 1, 2))
	// Drain the job to successful completion.
	for {
		iv := popInterval(p)
		if iv == nil {
			break
		}
		j.completeLocked(p, iv, iv.shift, 5)
	}
	if !j.finished || j.err != nil {
		t.Fatalf("job not cleanly finished: finished=%v err=%v", j.finished, j.err)
	}
	j.failLocked(p, ErrPoolClosed)
	if j.err != nil {
		t.Fatalf("failLocked overwrote a finished job's success with %v", j.err)
	}
}

func TestWarmIntervalsCoverBandWithShiftsAtCrossings(t *testing.T) {
	shifts := []float64{10, 30, 90}
	ivs := warmIntervals(0, 100, shifts, 16)
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals, want 3", len(ivs))
	}
	// Contiguous cover of the whole band, shifts at the warm locations.
	if ivs[0].lo != 0 || ivs[len(ivs)-1].hi != 100 {
		t.Fatalf("band edges not covered: %+v", ivs)
	}
	for i, iv := range ivs {
		if iv.shift != shifts[i] {
			t.Fatalf("interval %d shift %g, want %g", i, iv.shift, shifts[i])
		}
		if iv.shift < iv.lo || iv.shift > iv.hi {
			t.Fatalf("shift %g outside its interval [%g, %g]", iv.shift, iv.lo, iv.hi)
		}
		if i > 0 && math.Abs(iv.lo-ivs[i-1].hi) > 1e-12 {
			t.Fatalf("gap between intervals %d and %d", i-1, i)
		}
	}
}

func TestWarmIntervalsClusterAndClamp(t *testing.T) {
	// Out-of-band shifts dropped; a dense cluster merges to one interval.
	ivs := warmIntervals(0, 100, []float64{-5, 50, 50.001, 50.002, 300}, 8)
	if len(ivs) != 1 {
		t.Fatalf("got %d intervals, want 1 merged cluster: %+v", len(ivs), ivs)
	}
	if math.Abs(ivs[0].shift-50.001) > 1e-9 {
		t.Fatalf("merged shift %g, want cluster mean 50.001", ivs[0].shift)
	}
	// Nothing usable: callers fall back to the cold start.
	if warmIntervals(0, 100, []float64{-1, 101}, 8) != nil {
		t.Fatal("expected nil for fully out-of-band shifts")
	}
	if warmIntervals(0, 100, nil, 8) != nil {
		t.Fatal("expected nil for empty shift list")
	}
}
