package core

import (
	"math"
	"testing"

	"repro/internal/arnoldi"
	"repro/internal/hamiltonian"
	"repro/internal/mat"
	"repro/internal/statespace"
)

// narrowPairModel builds a model whose two unit crossings sit inside ONE
// canonical-polish quantization cell: a single lightly damped resonance at
// ω ≈ 1 pushes σ(H) just above 1 over a ~0.05-wide band (crossings near
// 0.926 and 0.974), while the solve runs with OmegaMax pinned to 5e6 so
// the polish grid quantum is 1e-7·5e6 = 0.5 — the pair's separation is
// ~9.5e-9·ω_max, squarely inside the [3e-9, 2e-7]·ω_max band where the
// quantized-seed-only polish used to merge true crossings.
func narrowPairModel(t *testing.T) *statespace.Model {
	t.Helper()
	m := &statespace.Model{
		P: 1,
		D: mat.NewDense(1, 1),
		Cols: []statespace.Column{{
			Blocks: []statespace.Block{{Size: 2, Sigma: -0.05, Omega: 1, B1: 1}},
			C:      mat.NewDense(1, 2),
		}},
	}
	m.D.Set(0, 0, 0.9)
	m.Cols[0].C.Set(0, 1, -0.02)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

const narrowPairOmegaMax = 5e6

// TestCanonicalPolishResolvesInCellPair is the regression test for the
// carried canonical-polish bug: two TRUE crossings within one quantization
// cell snapped to the same canonical seed, polished to the same eigenvalue
// and merged in the final dedup — the solver silently reported one
// crossing where the dense reference finds two. The multiplicity pass must
// keep both, bit-identically across worker counts.
func TestCanonicalPolishResolvesInCellPair(t *testing.T) {
	m := narrowPairModel(t)
	op, err := hamiltonian.New(m, hamiltonian.Scattering)
	if err != nil {
		t.Fatal(err)
	}
	want, err := op.FullImagEigs(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 {
		t.Fatalf("construction drifted: dense reference finds %d crossings %v, want 2", len(want), want)
	}
	// Guard the construction invariants the regression depends on: the
	// pair separation must sit inside the merge-bug window and both
	// crossings must share a polish cell.
	sep := want[1] - want[0]
	if rel := sep / narrowPairOmegaMax; rel < 3e-9 || rel > 2e-7 {
		t.Fatalf("construction drifted: separation %g = %g·ω_max outside [3e-9, 2e-7]", sep, rel)
	}
	quantum := 1e-7 * narrowPairOmegaMax
	if math.Round(want[0]/quantum) != math.Round(want[1]/quantum) {
		t.Fatalf("construction drifted: crossings %v no longer share a quantization cell", want)
	}

	var ref []float64
	for _, threads := range []int{1, 2, 8} {
		res, err := Solve(op, Options{
			Threads:  threads,
			Seed:     3,
			OmegaMax: narrowPairOmegaMax,
			Arnoldi:  arnoldi.SingleShiftParams{NWanted: 4, MaxDim: 40},
		})
		if err != nil {
			t.Fatalf("T=%d: %v", threads, err)
		}
		if len(res.Crossings) != 2 {
			t.Fatalf("T=%d: in-cell pair merged: got %d crossings %v, want 2 near %v",
				threads, len(res.Crossings), res.Crossings, want)
		}
		for i := range res.Crossings {
			if math.Abs(res.Crossings[i]-want[i]) > 1e-6 {
				t.Fatalf("T=%d: crossing %d = %g, want %g", threads, i, res.Crossings[i], want[i])
			}
		}
		if ref == nil {
			ref = res.Crossings
			continue
		}
		for i := range ref {
			if res.Crossings[i] != ref[i] {
				t.Fatalf("T=%d: crossing %d = %v differs from T=1's %v (bit-identity)",
					threads, i, res.Crossings[i], ref[i])
			}
		}
	}
}
