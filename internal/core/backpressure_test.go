package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunBatchChunkingRunsEveryTask: with MaxQueuedTasks set, a large batch
// still runs every function exactly once and in a state indistinguishable
// from the unchunked path (index-assigned slots all written).
func TestRunBatchChunkingRunsEveryTask(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	c := p.NewClient(ClientOptions{MaxQueuedTasks: 4})

	const n = 19 // deliberately not a multiple of the chunk size
	ran := make([]int32, n)
	fns := make([]func(int) error, n)
	for i := range fns {
		i := i
		fns[i] = func(int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		}
	}
	if err := c.RunBatch(context.Background(), PhaseProbe, fns); err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if r != 1 {
			t.Fatalf("task %d ran %d times, want exactly once", i, r)
		}
	}
}

// TestRunBatchChunkingBoundsQueue: while one chunk is in flight, the
// client's pool-queue footprint never exceeds MaxQueuedTasks — the whole
// point of the knob. A single-worker pool is blocked on the chunk's first
// task so the queue length can be inspected at its maximum.
func TestRunBatchChunkingBoundsQueue(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	const limit = 3
	c := p.NewClient(ClientOptions{MaxQueuedTasks: limit})

	gate := make(chan struct{})
	entered := make(chan struct{})
	const n = 10
	fns := make([]func(int) error, n)
	for i := range fns {
		i := i
		fns[i] = func(int) error {
			if i == 0 {
				close(entered)
				<-gate
			}
			return nil
		}
	}
	done := make(chan error, 1)
	go func() { done <- c.RunBatch(context.Background(), PhaseProbe, fns) }()
	<-entered
	// Worker is parked in task 0; everything else queued is the rest of the
	// first chunk only.
	p.mu.Lock()
	queued := len(c.queue)
	p.mu.Unlock()
	if queued > limit-1 {
		t.Fatalf("%d tasks queued while chunk in flight; MaxQueuedTasks=%d allows at most %d waiting", queued, limit, limit-1)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunBatchChunkingStopsAfterFailedChunk: the first failing chunk
// returns its error and no later chunk's task ever runs.
func TestRunBatchChunkingStopsAfterFailedChunk(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const limit = 4
	c := p.NewClient(ClientOptions{MaxQueuedTasks: limit})

	boom := errors.New("boom")
	const n = 12
	var ran atomic.Int32
	fns := make([]func(int) error, n)
	for i := range fns {
		i := i
		fns[i] = func(int) error {
			ran.Add(1)
			if i == 1 { // inside the first chunk
				return boom
			}
			return nil
		}
	}
	err := c.RunBatch(context.Background(), PhaseProbe, fns)
	if !errors.Is(err, boom) {
		t.Fatalf("RunBatch error = %v, want %v", err, boom)
	}
	// Tasks from the failing chunk may or may not have run (purge races the
	// pops), but nothing beyond it was ever enqueued.
	if got := ran.Load(); got > limit {
		t.Fatalf("%d tasks ran after a first-chunk failure, want ≤ %d (no later chunk enqueued)", got, limit)
	}
}

// TestRunBatchNegativeMaxQueuedClamped: a negative cap is clamped to the
// unbounded historical behavior rather than wedging every batch.
func TestRunBatchNegativeMaxQueuedClamped(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	c := p.NewClient(ClientOptions{MaxQueuedTasks: -7})
	var ran atomic.Int32
	fns := make([]func(int) error, 5)
	for i := range fns {
		fns[i] = func(int) error { ran.Add(1); return nil }
	}
	if err := c.RunBatch(context.Background(), PhaseProbe, fns); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 {
		t.Fatalf("%d tasks ran, want 5", ran.Load())
	}
}
