package core

import (
	"fmt"
	"math"
)

// Checkpoint is one durable-resume snapshot of a multi-shift solve,
// emitted through Options.Checkpoint at every shift boundary. Checkpoint
// Seq 0 is the submission snapshot (startup intervals queued, ω_max
// fixed, no shift committed yet); Seq k > 0 commits the k-th completed
// shift: Out carries that shift's certified disk and eigenvalues, and
// Tentative is the exact uncovered remainder of the band — queued
// intervals plus the intervals of shifts in flight on other workers —
// after the completion update.
//
// A Checkpoint is self-describing scheduler state except for Out, which
// is a delta: replaying a contiguous prefix of checkpoints 0..k
// accumulates the Outs into a ResumeState (see ResumeState.Apply) from
// which Options.Resume restarts the solve as if the remaining intervals
// had simply been scheduled last. Because the scheduler only ever decides
// WHEN an interval runs — never with what data — a resumed run is one
// more admissible schedule, and the solve's schedule-independence
// invariant makes its reported crossings, bands, and ω_max bit-identical
// to an uninterrupted run.
//
// All slices are fresh copies; solver state is never aliased into an
// event.
type Checkpoint struct {
	// Seq is the checkpoint sequence number: 0 at submission, then one
	// per committed shift. Seq assignment happens inside the same pool
	// critical section that commits the completion update, so a
	// checkpoint's counters and Tentative set are exactly the scheduler
	// state after commits 1..Seq — but the callbacks themselves run
	// outside the lock and may be OBSERVED out of order across workers.
	// Durable consumers must therefore resume only from a contiguous
	// sequence prefix.
	Seq int
	// OmegaMax is the solve's search bound (estimated or given); restored
	// verbatim so a resumed run never re-runs the estimation Arnoldi.
	OmegaMax float64
	// NextID is the job's next interval ID. Interval IDs feed the
	// per-shift RNG seeds, so preserving them is what keeps a resumed
	// run's remaining shifts bit-identical to the uninterrupted run's.
	NextID int
	// Completed counts shifts committed so far (== Seq for a run started
	// cold; offset by the resumed prefix otherwise).
	Completed int
	// TentativeDeleted is the cumulative Eq. 24 deletion counter.
	TentativeDeleted int
	// Out is the shift completion this checkpoint commits; nil for Seq 0.
	Out *ShiftCheckpoint
	// Tentative is the full uncovered-band snapshot: every queued
	// tentative interval plus the intervals currently in flight (an
	// in-flight shift's result is not yet committed, so its interval must
	// re-run after a crash or coverage would silently be lost).
	Tentative []IntervalCheckpoint
}

// ShiftCheckpoint is the flattened output of one committed shift — the
// exact data Wait folds into the Result, so restored shifts contribute to
// a resumed Result bit-identically.
type ShiftCheckpoint struct {
	// Omega is the shift location and Radius the certified disk radius.
	Omega, Radius float64
	// Worker records which worker ran the shift (telemetry only).
	Worker int
	// Eigenvalues are the eigenvalues certified inside the disk.
	Eigenvalues []complex128
	// ResidualsM are the per-eigenvalue residuals in M, aligned with
	// Eigenvalues.
	ResidualsM []float64
	// Restarts and OpApplies are the shift's work counters.
	Restarts, OpApplies int
}

// IntervalCheckpoint is one tentative interval, ID and float bits
// preserved exactly.
type IntervalCheckpoint struct {
	// ID is the interval's scheduler ID (feeds the shift's RNG seed).
	ID int
	// Lo and Hi bound the uncovered sub-band; Shift is the tentative
	// shift location.
	Lo, Hi, Shift float64
	// EdgeLeft/EdgeRite preserve band-edge pinning (Sec. IV-A).
	EdgeLeft, EdgeRite bool
}

// ResumeState is the accumulated scheduler state a resumed solve starts
// from (Options.Resume): the fold of a contiguous checkpoint prefix
// 0..Seq. Build it by applying checkpoints in sequence order.
type ResumeState struct {
	// Seq is the sequence number of the last applied checkpoint; the
	// resumed solve continues emitting at Seq+1.
	Seq int
	// OmegaMax, NextID, Completed, TentativeDeleted restore the solve's
	// counters (see the Checkpoint fields of the same names).
	OmegaMax         float64
	NextID           int
	Completed        int
	TentativeDeleted int
	// Outs are the committed shifts of the prefix, in commit order.
	Outs []ShiftCheckpoint
	// Tentative is the uncovered remainder of the band at the last
	// checkpoint.
	Tentative []IntervalCheckpoint
}

// Apply folds one checkpoint event into the resume state. Checkpoints
// must be applied in sequence order starting from Seq 0 (Apply does not
// verify contiguity; durable replay does).
func (rs *ResumeState) Apply(ck Checkpoint) {
	rs.Seq = ck.Seq
	rs.OmegaMax = ck.OmegaMax
	rs.NextID = ck.NextID
	rs.Completed = ck.Completed
	rs.TentativeDeleted = ck.TentativeDeleted
	if ck.Out != nil {
		rs.Outs = append(rs.Outs, *ck.Out)
	}
	rs.Tentative = ck.Tentative
}

// validate rejects resume states that would corrupt the scheduler: the
// invariants are exactly those the emitting solve held when the
// checkpoint was taken, so a failure here means the state was not
// produced by a matching run (or was corrupted in storage).
func (rs *ResumeState) validate(omegaMin float64) error {
	if !(rs.OmegaMax > omegaMin) || math.IsInf(rs.OmegaMax, 1) || math.IsNaN(rs.OmegaMax) {
		return fmt.Errorf("core: resume ω_max %g not above ω_min %g", rs.OmegaMax, omegaMin)
	}
	if rs.NextID < 0 || rs.Completed < 0 || rs.TentativeDeleted < 0 || rs.Seq < 0 {
		return fmt.Errorf("core: negative resume counter (seq %d, next %d, completed %d, deleted %d)",
			rs.Seq, rs.NextID, rs.Completed, rs.TentativeDeleted)
	}
	seen := make([]bool, rs.NextID)
	for _, iv := range rs.Tentative {
		if iv.ID < 0 || iv.ID >= rs.NextID {
			return fmt.Errorf("core: resume interval ID %d outside [0, %d)", iv.ID, rs.NextID)
		}
		if seen[iv.ID] {
			return fmt.Errorf("core: duplicate resume interval ID %d", iv.ID)
		}
		seen[iv.ID] = true
		switch {
		case math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || math.IsNaN(iv.Shift):
			return fmt.Errorf("core: NaN in resume interval %d", iv.ID)
		case !(iv.Lo < iv.Hi):
			return fmt.Errorf("core: empty resume interval %d [%g, %g]", iv.ID, iv.Lo, iv.Hi)
		case iv.Shift < iv.Lo || iv.Shift > iv.Hi:
			return fmt.Errorf("core: resume interval %d shift %g outside [%g, %g]", iv.ID, iv.Shift, iv.Lo, iv.Hi)
		}
	}
	for i := range rs.Outs {
		o := &rs.Outs[i]
		if math.IsNaN(o.Omega) || math.IsNaN(o.Radius) || o.Radius < 0 {
			return fmt.Errorf("core: bad resume shift record %d (ω=%g, ρ=%g)", i, o.Omega, o.Radius)
		}
		if len(o.ResidualsM) != len(o.Eigenvalues) {
			return fmt.Errorf("core: resume shift record %d has %d residuals for %d eigenvalues",
				i, len(o.ResidualsM), len(o.Eigenvalues))
		}
	}
	return nil
}

// shiftOut converts the persisted form back into Wait's buffered form.
func (sc *ShiftCheckpoint) shiftOut() shiftOut {
	return shiftOut{
		rec: ShiftRecord{
			Omega:  sc.Omega,
			Radius: sc.Radius,
			NEigs:  len(sc.Eigenvalues),
			Worker: sc.Worker,
		},
		eigs:   append([]complex128(nil), sc.Eigenvalues...),
		residM: append([]float64(nil), sc.ResidualsM...),
		rst:    sc.Restarts,
		apply:  sc.OpApplies,
	}
}

// newShiftCheckpoint snapshots one completed shift for a checkpoint
// event (fresh copies, never aliasing solver buffers).
func newShiftCheckpoint(o *shiftOut) *ShiftCheckpoint {
	return &ShiftCheckpoint{
		Omega:       o.rec.Omega,
		Radius:      o.rec.Radius,
		Worker:      o.rec.Worker,
		Eigenvalues: append([]complex128(nil), o.eigs...),
		ResidualsM:  append([]float64(nil), o.residM...),
		Restarts:    o.rst,
		OpApplies:   o.apply,
	}
}

// checkpointLocked assigns the next checkpoint sequence number and
// snapshots the job's scheduler state: counters, plus the exact
// uncovered-band set (queued tentative intervals and in-flight
// intervals). Must run inside the pool critical section that committed
// the transition the checkpoint captures; the caller invokes
// Options.Checkpoint with the returned event after unlocking.
func (j *Job) checkpointLocked(out *ShiftCheckpoint) *Checkpoint {
	ck := &Checkpoint{
		Seq:              j.ckptSeq,
		OmegaMax:         j.omegaMax,
		NextID:           j.nextID,
		Completed:        j.completed,
		TentativeDeleted: j.tentativeDeleted,
		Out:              out,
	}
	j.ckptSeq++
	for _, t := range j.client.queue {
		if t.job == j {
			ck.Tentative = append(ck.Tentative, snapshotInterval(t.iv))
		}
	}
	for _, iv := range j.running {
		ck.Tentative = append(ck.Tentative, snapshotInterval(iv))
	}
	return ck
}

// snapshotInterval copies one tentative interval into its persisted form.
func snapshotInterval(iv *interval) IntervalCheckpoint {
	return IntervalCheckpoint{
		ID:       iv.id,
		Lo:       iv.lo,
		Hi:       iv.hi,
		Shift:    iv.shift,
		EdgeLeft: iv.edgeLeft,
		EdgeRite: iv.edgeRite,
	}
}

// restoreIntervals rebuilds the tentative interval set from a resume
// state, IDs and float bits preserved.
func restoreIntervals(tent []IntervalCheckpoint) []*interval {
	ivs := make([]*interval, len(tent))
	for i, t := range tent {
		ivs[i] = &interval{
			id:       t.ID,
			lo:       t.Lo,
			hi:       t.Hi,
			shift:    t.Shift,
			edgeLeft: t.EdgeLeft,
			edgeRite: t.EdgeRite,
		}
	}
	return ivs
}

// pushRestoredLocked queues a restored interval, keeping its persisted ID
// (pushLocked would mint a fresh one, changing the shift's RNG seed and
// breaking resume bit-identity).
func (j *Job) pushRestoredLocked(p *Pool, iv *interval) {
	iv.job = j
	j.pending++
	p.enqueueLocked(&task{client: j.client, phase: PhaseEig, iv: iv, job: j})
}

// removeRunningLocked drops one interval from the job's in-flight set.
func (j *Job) removeRunningLocked(iv *interval) {
	for i, r := range j.running {
		if r == iv {
			j.running = append(j.running[:i], j.running[i+1:]...)
			return
		}
	}
}
