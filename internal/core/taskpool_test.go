package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// gid parses the current goroutine's id from its stack header ("goroutine
// N [running]: ..."). Test-only: the id is the cheapest way to assert WHERE
// a task ran, which the scheduler deliberately hides otherwise.
func gid() uint64 {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	fields := strings.Fields(string(buf[:n]))
	id, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		panic("gid: " + err.Error())
	}
	return id
}

// waitClientQueued polls until the client has n tasks queued (the batch
// submitter runs in a goroutine; tests must not race its enqueue).
func waitClientQueued(t *testing.T, p *Pool, c *Client, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		queued := len(c.queue)
		p.mu.Unlock()
		if queued >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("client never reached %d queued tasks", n)
}

// TestRunBatchExecutesOnWorkers is the acceptance check that no
// solver-phase work runs on the submitting goroutine: every batch task
// must execute on a pool worker, never inline in RunBatch.
func TestRunBatchExecutesOnWorkers(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	c := p.NewClient(ClientOptions{})

	submitter := gid()
	const n = 16
	gids := make([]uint64, n)
	fns := make([]func(int) error, n)
	for i := range fns {
		fns[i] = func(int) error {
			gids[i] = gid()
			return nil
		}
	}
	if err := c.RunBatch(context.Background(), PhaseProbe, fns); err != nil {
		t.Fatal(err)
	}
	workers := make(map[uint64]bool)
	for i, g := range gids {
		if g == 0 {
			t.Fatalf("task %d never ran", i)
		}
		if g == submitter {
			t.Fatalf("task %d ran on the submitting goroutine", i)
		}
		workers[g] = true
	}
	if len(workers) > p.Workers() {
		t.Fatalf("tasks ran on %d distinct goroutines, pool has %d workers", len(workers), p.Workers())
	}
	st := p.PhaseStats()[PhaseProbe]
	if st.Tasks != n {
		t.Fatalf("phase %q counted %d tasks, want %d", PhaseProbe, st.Tasks, n)
	}
	if st.Busy <= 0 {
		t.Fatalf("phase %q busy time not accounted", PhaseProbe)
	}
}

// TestPriorityInteractiveOvertakesBatch: with one worker pinned on a batch
// task and more batch work queued, an interactive client's tasks must all
// pop before any remaining batch task — priority preemption at task-pop
// granularity.
func TestPriorityInteractiveOvertakesBatch(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	batchC := p.NewClient(ClientOptions{Priority: PriorityBatch})
	interC := p.NewClient(ClientOptions{Priority: PriorityInteractive})

	var mu sync.Mutex
	var order []string
	record := func(tag string) {
		mu.Lock()
		order = append(order, tag)
		mu.Unlock()
	}

	gate := make(chan struct{})
	running := make(chan struct{})
	batchFns := []func(int) error{
		func(int) error { close(running); <-gate; return nil },
	}
	for i := 1; i < 5; i++ {
		batchFns = append(batchFns, func(int) error { record("batch"); return nil })
	}
	batchDone := make(chan error, 1)
	go func() { batchDone <- batchC.RunBatch(context.Background(), "t", batchFns) }()
	<-running // worker is pinned; 4 batch tasks queued

	interFns := make([]func(int) error, 3)
	for i := range interFns {
		interFns[i] = func(int) error { record("interactive"); return nil }
	}
	interDone := make(chan error, 1)
	go func() { interDone <- interC.RunBatch(context.Background(), "t", interFns) }()
	waitClientQueued(t, p, interC, len(interFns))

	close(gate)
	if err := <-interDone; err != nil {
		t.Fatal(err)
	}
	if err := <-batchDone; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 7 {
		t.Fatalf("recorded %d executions, want 7: %v", len(order), order)
	}
	for i, tag := range order[:3] {
		if tag != "interactive" {
			t.Fatalf("pop %d was %q; interactive work must overtake all queued batch work: %v",
				i, tag, order)
		}
	}
}

// TestWeightedRoundRobinFairness: two equal-priority clients with weights
// 2 and 1 on a single worker must interleave their queued tasks in the
// exact a,a,b cycle — no client starves and shares follow the weights.
func TestWeightedRoundRobinFairness(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	gateC := p.NewClient(ClientOptions{})
	a := p.NewClient(ClientOptions{Weight: 2})
	b := p.NewClient(ClientOptions{Weight: 1})

	var mu sync.Mutex
	var order []string
	mk := func(tag string, n int) []func(int) error {
		fns := make([]func(int) error, n)
		for i := range fns {
			fns[i] = func(int) error {
				mu.Lock()
				order = append(order, tag)
				mu.Unlock()
				return nil
			}
		}
		return fns
	}

	gate := make(chan struct{})
	running := make(chan struct{})
	gateDone := make(chan error, 1)
	go func() {
		gateDone <- gateC.RunBatch(context.Background(), "t",
			[]func(int) error{func(int) error { close(running); <-gate; return nil }})
	}()
	<-running // worker pinned; now queue both clients' work

	// Queue a's work strictly before b's so the ring order (and hence the
	// expected WRR phase) is deterministic.
	aDone := make(chan error, 1)
	bDone := make(chan error, 1)
	go func() { aDone <- a.RunBatch(context.Background(), "t", mk("a", 6)) }()
	waitClientQueued(t, p, a, 6)
	go func() { bDone <- b.RunBatch(context.Background(), "t", mk("b", 3)) }()
	waitClientQueued(t, p, b, 3)

	close(gate)
	for _, ch := range []chan error{gateDone, aDone, bDone} {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"a", "a", "b", "a", "a", "b", "a", "a", "b"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("recorded %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop %d: got %q, want %q (full order %v)", i, order[i], want[i], order)
		}
	}
}

// TestRunBatchFirstErrorSkipsRemainder: after the first task error the
// not-yet-started tasks are skipped and the error is returned.
func TestRunBatchFirstErrorSkipsRemainder(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	c := p.NewClient(ClientOptions{})

	boom := errors.New("boom")
	ran := 0
	fns := make([]func(int) error, 8)
	for i := range fns {
		fns[i] = func(int) error {
			ran++ // single worker: no synchronization needed
			if i == 0 {
				return boom
			}
			return nil
		}
	}
	err := c.RunBatch(context.Background(), "t", fns)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if ran != 1 {
		t.Fatalf("%d tasks ran after the first error, want 1", ran)
	}
}

// TestRunBatchCanceledContext: a pre-canceled context skips everything; a
// cancellation mid-batch skips the unstarted remainder and reports
// ctx.Err().
func TestRunBatchCanceledContext(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	c := p.NewClient(ClientOptions{})

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := c.RunBatch(pre, "t", []func(int) error{func(int) error { ran = true; return nil }})
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("pre-canceled batch: err=%v ran=%v", err, ran)
	}

	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var count int
	fns := make([]func(int) error, 6)
	for i := range fns {
		fns[i] = func(int) error {
			count++
			if i == 0 {
				cancel2()
			}
			return nil
		}
	}
	err = c.RunBatch(ctx, "t", fns)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if count != 1 {
		t.Fatalf("%d tasks ran after cancellation, want 1", count)
	}
}

// TestCanceledBatchPurgesQueuedTasks: once a batch fails or is canceled,
// its queued tasks must be dropped in one pass — not individually popped
// through the scheduler — so a dead thousand-task batch neither delays
// its join nor steals pops from live clients.
func TestCanceledBatchPurgesQueuedTasks(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	gateC := p.NewClient(ClientOptions{})
	c := p.NewClient(ClientOptions{})

	gate := make(chan struct{})
	running := make(chan struct{})
	gateDone := make(chan error, 1)
	go func() {
		gateDone <- gateC.RunBatch(context.Background(), "gate",
			[]func(int) error{func(int) error { close(running); <-gate; return nil }})
	}()
	<-running // worker pinned: the big batch below stays fully queued

	ctx, cancel := context.WithCancel(context.Background())
	const n = 500
	fns := make([]func(int) error, n)
	for i := range fns {
		fns[i] = func(int) error { return nil }
	}
	done := make(chan error, 1)
	go func() { done <- c.RunBatch(ctx, "purge", fns) }()
	waitClientQueued(t, p, c, n)
	cancel() // kill the batch while everything is still queued
	close(gate)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled batch join did not return")
	}
	if err := <-gateDone; err != nil {
		t.Fatal(err)
	}
	// Exactly one task of the dead batch went through the scheduler (the
	// pop that noticed the cancellation and purged the rest).
	if st := p.PhaseStats()["purge"]; st.Tasks != 1 {
		t.Fatalf("dead batch consumed %d scheduler pops, want 1", st.Tasks)
	}
	p.mu.Lock()
	left := len(c.queue)
	p.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d purged tasks still queued", left)
	}
}

// TestPoolCloseFailsQueuedBatch: Close must unblock a joiner whose tasks
// were still queued, reporting ErrPoolClosed, and reject new batches.
func TestPoolCloseFailsQueuedBatch(t *testing.T) {
	p := NewPool(1)
	c := p.NewClient(ClientOptions{})

	gate := make(chan struct{})
	running := make(chan struct{})
	fns := []func(int) error{
		func(int) error { close(running); <-gate; return nil },
		func(int) error { return nil },
		func(int) error { return nil },
	}
	done := make(chan error, 1)
	go func() { done <- c.RunBatch(context.Background(), "t", fns) }()
	<-running

	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	// Close drains the two queued tasks as failed, then waits for the
	// in-flight gate task.
	time.Sleep(2 * time.Millisecond)
	close(gate)
	select {
	case err := <-done:
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("want ErrPoolClosed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch join deadlocked across Close")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked")
	}
	if err := c.RunBatch(context.Background(), "t", fns[1:]); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("RunBatch on closed pool: want ErrPoolClosed, got %v", err)
	}
}

// TestSubmitRejectsForeignClient: a client of pool A cannot own a job on
// pool B — that would split one job's tasks across two schedulers.
func TestSubmitRejectsForeignClient(t *testing.T) {
	a := NewPool(1)
	defer a.Close()
	b := NewPool(1)
	defer b.Close()
	op := buildOp(t, 95, 2, 10, 1.05)
	_, err := b.Submit(context.Background(), op, Options{Client: a.NewClient(ClientOptions{})})
	if err == nil {
		t.Fatal("foreign client accepted")
	}
	if !strings.Contains(err.Error(), "different pool") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestEigTasksAccountedPerPhase: a pooled solve books its shift tasks
// under PhaseEig — the counter fleetbench uses for per-phase utilization.
// The ω_max estimation sweep is itself one PhaseEig pool task, and the
// collect tail books its refinements under PhaseRefine.
func TestEigTasksAccountedPerPhase(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	op := buildOp(t, 96, 2, 20, 1.05)
	j, err := p.Submit(context.Background(), op, Options{Threads: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	st := p.PhaseStats()[PhaseEig]
	if st.Tasks != res.Stats.ShiftsProcessed+1 {
		t.Fatalf("PhaseEig counted %d tasks, want %d shifts + 1 estimate",
			st.Tasks, res.Stats.ShiftsProcessed)
	}
	if st.Busy <= 0 {
		t.Fatal("PhaseEig busy time not accounted")
	}
	if rf := p.PhaseStats()[PhaseRefine]; rf.Tasks == 0 {
		t.Fatal("collect tail booked no PhaseRefine tasks")
	}
}

// sanity-check the error text used by the budget path (it moved packages
// during the task refactor).
func TestShiftBudgetErrorNamesBudget(t *testing.T) {
	if got := errShiftBudget(7).Error(); !strings.Contains(got, "7") {
		t.Fatalf("budget error lost the cap: %q", got)
	}
	if got := fmt.Sprintf("%v", errShiftBudget(7)); !strings.Contains(got, "budget") {
		t.Fatalf("budget error lost its meaning: %q", got)
	}
}
