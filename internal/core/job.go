package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/hamiltonian"
)

func errShiftBudget(max int) error {
	return fmt.Errorf("core: shift budget %d exhausted", max)
}

// Submit registers one multi-shift solve with the pool and returns a Job
// handle. The job's tentative intervals are queued as PhaseEig tasks under
// opts.Client (an ephemeral default-priority client when nil). The ω_max
// estimate (when Options.OmegaMax is zero) also runs as a PhaseEig pool
// task of that client — Submit blocks until it is scheduled, so a burst
// of submits is bounded by the pool width and obeys the client's
// priority. The context cancels or deadlines the job: remaining tentative
// intervals are dropped and Wait returns ctx.Err() once in-flight shifts
// drain (cancellation granularity is one shift; the post-completion
// refinement tail is not canceled — see Wait).
func (p *Pool) Submit(ctx context.Context, op *hamiltonian.Op, opts Options) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	client := opts.Client
	if client != nil && client.pool != p {
		return nil, errors.New("core: Options.Client is registered with a different pool")
	}
	if client == nil {
		client = p.NewClient(ClientOptions{})
	}
	if opts.Threads == 0 {
		// Jobs on a shared pool default their parallelism hint (initial
		// interval count N = κT, refinement concurrency) to the pool width.
		opts.Threads = p.workers
	}
	opts.setDefaults()
	// Factorization-cache wiring: attach (or, on request, detach) the
	// operator's shift cache before any shift work runs. EnsureShiftCache
	// keeps an already-attached cache — the fleet engine attaches one
	// shared cache across jobs, and a per-solve default must not displace
	// it.
	if opts.ShiftCacheSize < 0 {
		op.SetShiftCache(nil)
	} else {
		op.EnsureShiftCache(opts.ShiftCacheSize)
	}
	//lint:ignore detfloat elapsed-time telemetry only; it never feeds numeric state
	start := time.Now()

	omegaMax := opts.OmegaMax
	if opts.Resume != nil {
		// A resumed solve restarts from persisted scheduler state: the
		// ω_max the original run certified is restored verbatim (never
		// re-estimated — the restored interval set was derived from it).
		if err := opts.Resume.validate(opts.OmegaMin); err != nil {
			return nil, err
		}
		omegaMax = opts.Resume.OmegaMax
	} else if omegaMax == 0 {
		// The estimate is itself an Arnoldi sweep, so it runs as a pool
		// task under the job's client: a burst of N concurrent submits is
		// bounded by the pool width (and obeys the client's priority)
		// instead of oversubscribing the machine the pool is sized to.
		err := client.RunBatch(ctx, PhaseEig, []func(int) error{func(int) error {
			est, err := EstimateOmegaMax(op, opts.Seed)
			if err != nil {
				return err
			}
			omegaMax = est
			return nil
		}})
		if err != nil {
			return nil, err
		}
	}
	if omegaMax <= opts.OmegaMin {
		return nil, fmt.Errorf("core: empty band [%g, %g]", opts.OmegaMin, omegaMax)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	j := &Job{
		op:       op,
		opts:     opts,
		client:   client,
		omegaMax: omegaMax,
		start:    start,
		done:     make(chan struct{}),
	}
	var ivs []*interval
	if rs := opts.Resume; rs != nil {
		// Restore the scheduler state of the checkpoint prefix: counters,
		// committed shift outputs, and the tentative interval set with IDs
		// (and hence per-shift RNG seeds) preserved bit-exactly. The
		// resumed run then re-executes only the uncovered remainder.
		j.nextID = rs.NextID
		j.processed = rs.Completed
		j.completed = rs.Completed
		j.tentativeDeleted = rs.TentativeDeleted
		j.ckptSeq = rs.Seq + 1
		for i := range rs.Outs {
			j.outs = append(j.outs, rs.Outs[i].shiftOut())
		}
		ivs = restoreIntervals(rs.Tentative)
	} else {
		ivs = warmIntervals(opts.OmegaMin, omegaMax, opts.InitialShifts, opts.Kappa*opts.Threads)
		if len(ivs) == 0 {
			ivs = initialIntervals(opts.OmegaMin, omegaMax, opts.Kappa*opts.Threads)
		}
	}
	if opts.MultiShiftBatch > 0 && len(ivs) > 0 && op.ShiftCacheHandle() != nil {
		if err := prefactorIntervals(ctx, client, op, ivs, opts.MultiShiftBatch, opts.Alpha); err != nil {
			return nil, err
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if opts.Resume != nil {
		for _, iv := range ivs {
			j.pushRestoredLocked(p, iv)
		}
		// A crash after the final shift committed leaves nothing tentative:
		// the resumed job is complete the moment it is submitted.
		j.maybeFinishLocked()
	} else {
		for _, iv := range ivs {
			j.pushLocked(p, iv)
		}
	}
	var ck0 *Checkpoint
	if opts.Checkpoint != nil && opts.Resume == nil {
		// The submission snapshot (Seq 0): startup intervals and ω_max,
		// so a crash before the first shift commits still resumes without
		// re-running the estimation Arnoldi.
		ck0 = j.checkpointLocked(nil)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if ck0 != nil {
		opts.Checkpoint(*ck0)
	}

	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				p.mu.Lock()
				j.failLocked(p, ctx.Err())
				p.mu.Unlock()
			case <-j.done:
			}
		}()
	}
	return j, nil
}

// prefactorIntervals batches the startup shifts' SMW setups into the
// operator's shift cache as PhaseSetup pool tasks: each chunk computes its
// resolvent panels in one pass over the packed kernels and publishes the
// factorizations the upcoming PhaseEig tasks will pin. Purely a warm-up —
// the published factors are bit-identical to what each shift task would
// build lazily, so a chunk lost to cancellation or early eviction changes
// timing, never results.
func prefactorIntervals(ctx context.Context, client *Client, op *hamiltonian.Op, ivs []*interval, chunk int, alpha float64) error {
	thetas := make([]complex128, len(ivs))
	for i, iv := range ivs {
		// SweepTheta routes each startup shift to the path runShift will
		// use (jω full-size, −ω² half-size) with the exact bits the
		// corresponding cache lookup will ask for — which is why the disk
		// radius must be derived exactly as runInterval derives it.
		thetas[i] = op.SweepTheta(iv.shift, sweepRho0(alpha, iv))
	}
	var fns []func(int) error
	for lo := 0; lo < len(thetas); lo += chunk {
		hi := lo + chunk
		if hi > len(thetas) {
			hi = len(thetas)
		}
		part := thetas[lo:hi]
		fns = append(fns, func(int) error {
			op.PrefactorSweep(part)
			return nil
		})
	}
	return client.RunBatch(ctx, PhaseSetup, fns)
}

// shiftOut is the raw per-shift output buffered until Wait assembles the
// Result.
type shiftOut struct {
	rec    ShiftRecord
	eigs   []complex128
	residM []float64
	rst    int
	apply  int
}

// Job is a handle to one multi-shift solve submitted to a Pool. It is one
// task producer among several: its tentative intervals enter the pool as
// PhaseEig tasks of its client, interleaved with whatever batch tasks the
// client's other phases queue.
type Job struct {
	op       *hamiltonian.Op
	opts     Options
	client   *Client
	omegaMax float64
	start    time.Time
	elapsed  time.Duration // solve duration, fixed when the job finishes
	done     chan struct{} // closed exactly once, when the job finishes

	// Scheduler bookkeeping, guarded by the owning Pool's mu.
	nextID           int
	pending          int         // tentative intervals of this job in the client queue
	inflight         int         // shifts of this job being processed right now
	running          []*interval // the in-flight shifts' intervals (checkpoint snapshots)
	processed        int
	completed        int // shifts whose completion update has committed
	tentativeDeleted int
	ckptSeq          int // next checkpoint sequence number to assign
	err              error
	finished         bool

	outMu sync.Mutex
	outs  []shiftOut
}

// Done returns a channel closed when the job has finished (successfully or
// not).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes and assembles the Result exactly as a
// standalone Solve would.
func (j *Job) Wait() (*Result, error) {
	<-j.done
	if j.err != nil {
		return nil, j.err
	}
	res := &Result{OmegaMax: j.omegaMax}
	j.outMu.Lock()
	for _, o := range j.outs {
		res.Shifts = append(res.Shifts, o.rec)
		res.Eigenvalues = append(res.Eigenvalues, o.eigs...)
		res.eigResiduals = append(res.eigResiduals, o.residM...)
		res.Stats.Restarts += o.rst
		res.Stats.OpApplies += o.apply
	}
	j.outMu.Unlock()
	res.Stats.ShiftsProcessed = j.processed
	res.Stats.TentativeDeleted = j.tentativeDeleted
	res.Stats.Elapsed = j.elapsed
	// The collect tail (eigenvalue refinements + canonical polish) runs as
	// PhaseRefine batches of this job's client, on the same pool the shifts
	// ran on. It deliberately ignores the submission context: a ctx
	// cancellation racing job completion must not discard a complete
	// Result (the same guarantee failLocked gives the scheduler side), and
	// the pre-pool goroutine tail was never cancelable either. The only
	// possible failure is a pool closed between job completion and Wait.
	if err := collect(j.client, res, j.op, j.opts.AxisTol); err != nil {
		return nil, err
	}
	return res, nil
}

// pushLocked queues a tentative interval of this job as a PhaseEig task of
// the job's client.
func (j *Job) pushLocked(p *Pool, iv *interval) {
	iv.id = j.nextID
	j.nextID++
	iv.job = j
	j.pending++
	p.enqueueLocked(&task{client: j.client, phase: PhaseEig, iv: iv, job: j})
}

// failLocked records the job's first error, purges its remaining tentative
// intervals from the client queue, and finishes the job if nothing is in
// flight. A job that already finished successfully is left untouched: the
// ctx watcher races job completion (its select can see ctx.Done() and
// j.done ready together), and failing a finished job would both discard a
// complete Result and mutate j.err after Wait may have read it.
func (j *Job) failLocked(p *Pool, err error) {
	if j.finished {
		return
	}
	if j.err == nil {
		j.err = err
	}
	c := j.client
	kept := c.queue[:0]
	for _, t := range c.queue {
		if t.job == j {
			j.pending--
			continue
		}
		kept = append(kept, t)
	}
	c.queue = kept
	j.maybeFinishLocked()
}

// maybeFinishLocked closes done once the job can make no further progress:
// nothing in flight and either failed or out of tentative intervals.
func (j *Job) maybeFinishLocked() {
	if j.finished || j.inflight > 0 {
		return
	}
	if j.err == nil && j.pending > 0 {
		return
	}
	j.finished = true
	//lint:ignore detfloat elapsed-time telemetry only; it never feeds numeric state
	j.elapsed = time.Since(j.start)
	close(j.done)
}

// sweepRho0 is the initial disk radius of an interval's shift — the single
// definition runInterval solves with and prefactorIntervals routes with
// (the half-path routing decision depends on it).
func sweepRho0(alpha float64, iv *interval) float64 {
	if iv.edgeLeft || iv.edgeRite {
		// Edge shifts sit at the interval boundary; the disk must be able
		// to reach across the whole interval.
		return alpha * iv.width()
	}
	return 0.5 * alpha * iv.width()
}

// runInterval processes one admitted interval on a worker goroutine.
func (j *Job) runInterval(p *Pool, worker int, iv *interval) {
	rho0 := sweepRho0(j.opts.Alpha, iv)
	params := j.opts.Arnoldi
	params.Seed = j.opts.Seed*1_000_003 + int64(iv.id)*7919 + 1
	if j.client.pri < PriorityInteractive {
		// Mid-shift preemption point: a batch-class shift yields to queued
		// interactive-class tasks at every Arnoldi restart boundary, so an
		// interactive job's first pop waits one restart sweep instead of a
		// whole shift. Interactive shifts never yield (nothing outranks
		// them), which also bounds the inline recursion at depth one.
		params.Yield = func() { p.YieldInteractive(worker) }
	}
	sres, err := runShift(j.op, iv.shift, rho0, params)
	if err != nil {
		p.mu.Lock()
		j.inflight--
		j.removeRunningLocked(iv)
		j.failLocked(p, fmt.Errorf("core: shift ω=%g: %w", iv.shift, err))
		p.mu.Unlock()
		return
	}
	out := shiftOut{
		rec: ShiftRecord{
			Omega:  iv.shift,
			Radius: sres.Radius,
			NEigs:  len(sres.Eigenvalues),
			Worker: worker,
		},
		eigs:   sres.Eigenvalues,
		residM: sres.ResidualsM,
		rst:    sres.Restarts,
		apply:  sres.OpApplies,
	}
	j.outMu.Lock()
	j.outs = append(j.outs, out)
	j.outMu.Unlock()

	p.mu.Lock()
	committed := j.completed
	j.completeLocked(p, iv, iv.shift, sres.Radius)
	var ck *Checkpoint
	if j.opts.Checkpoint != nil && j.completed == committed+1 {
		// The completion update committed (not discarded by a failed job
		// or a closing pool): assign the checkpoint sequence number inside
		// the same critical section so the snapshot is consistent with
		// exactly the commits it claims; the callback runs after unlock.
		ck = j.checkpointLocked(newShiftCheckpoint(&out))
	}
	var done, total int
	if j.opts.Progress != nil {
		// Snapshot the counters inside the same critical section that
		// committed the completion update, so Done/Total are consistent;
		// the callback itself runs outside the pool mutex.
		done = j.processed - j.inflight
		total = j.processed + j.pending
	}
	p.mu.Unlock()
	if ck != nil {
		j.opts.Checkpoint(*ck)
	}
	if j.opts.Progress != nil {
		j.opts.Progress(ProgressEvent{
			Phase:    PhaseEig,
			Omega:    iv.shift,
			Radius:   sres.Radius,
			NearAxis: nearAxis(sres.Eigenvalues, j.omegaMax),
			Done:     done,
			Total:    total,
		})
	}
}

// nearAxis extracts the |Im λ| of eigenvalues passing the same coarse
// near-axis test collect uses for candidate selection — the "crossings as
// found" a progress consumer can surface before the refinement tail
// certifies the final list. Returns a fresh slice; the solver state is
// never aliased into an event.
func nearAxis(eigs []complex128, omegaMax float64) []float64 {
	scale := omegaMax
	if scale == 0 {
		scale = 1
	}
	var out []float64
	for _, v := range eigs {
		if hamiltonian.ClassifyImag(v, 1e-3, 1e-9*scale) {
			out = append(out, math.Abs(imag(v)))
		}
	}
	return out
}

// completeLocked applies the paper's completion update (Sec. IV-D) for a
// finished disk [c−ρ, c+ρ] that was responsible for the interval [lo, hi]:
//
//   - the disk is subtracted from the owning interval; uncovered remainders
//     become new tentative intervals with midpoint shifts (Eqs. 25–27);
//   - the disk is also subtracted from every *tentative* interval of the
//     same job: fully swallowed intervals are deleted (the paper's Eq. 24
//     shift deletion — the source of superlinear speedups), partially
//     covered ones are trimmed and re-centered. Trimming rather than
//     deleting guarantees that no part of the band silently loses coverage.
//
// Tasks of other jobs — including batch tasks sharing the same client —
// are untouched.
func (j *Job) completeLocked(p *Pool, own *interval, center, radius float64) {
	j.inflight--
	j.removeRunningLocked(own)
	if j.err != nil {
		j.maybeFinishLocked()
		return
	}
	dLo, dHi := center-radius, center+radius
	rems := subtract(own.lo, own.hi, dLo, dHi)
	if p.closed {
		// The pool is shutting down: remainders would never run.
		if len(rems) > 0 {
			j.failLocked(p, ErrPoolClosed)
		} else {
			j.maybeFinishLocked()
		}
		return
	}
	j.completed++
	// Subtract from this job's tentative intervals.
	c := j.client
	kept := c.queue[:0]
	var spawned []*interval
	for _, t := range c.queue {
		if t.job != j {
			kept = append(kept, t)
			continue
		}
		iv := t.iv
		ivRems := subtract(iv.lo, iv.hi, dLo, dHi)
		switch {
		case len(ivRems) == 1 && ivRems[0][0] == iv.lo && ivRems[0][1] == iv.hi:
			kept = append(kept, t) // untouched
		case len(ivRems) == 0:
			j.tentativeDeleted++ // fully swallowed: delete (Eq. 24)
			j.pending--
		default:
			j.tentativeDeleted++
			j.pending--
			for _, rem := range ivRems {
				nv := &interval{lo: rem[0], hi: rem[1], shift: 0.5 * (rem[0] + rem[1])}
				// Preserve band-edge pinning when the edge survives.
				if iv.edgeLeft && rem[0] == iv.lo {
					nv.edgeLeft = true
					nv.shift = rem[0]
				}
				if iv.edgeRite && rem[1] == iv.hi {
					nv.edgeRite = true
					nv.shift = rem[1]
				}
				spawned = append(spawned, nv)
			}
		}
	}
	c.queue = kept
	// Remainders of the owning interval, then trimmed children.
	for _, rem := range rems {
		j.pushLocked(p, &interval{lo: rem[0], hi: rem[1], shift: 0.5 * (rem[0] + rem[1])})
	}
	for _, nv := range spawned {
		j.pushLocked(p, nv)
	}
	j.maybeFinishLocked()
	p.cond.Broadcast()
}
