package vectfit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/statespace"
)

// Fitter is the sample-at-a-time entry point to Vector Fitting: Add
// validates each incoming sample (square, consistent dimensions, strictly
// increasing frequency) and packs it into the least-squares sample storage
// immediately — the caller's matrix is not retained — so ingestion (e.g. a
// streaming touchstone.Reader) overlaps I/O with system accumulation and
// never materializes a second copy of the raw file. Finish then runs
// exactly the batch fit: Fit itself is implemented as NewFitter + Add +
// Finish, so the two paths produce bit-identical models by construction.
//
// The pole-relocation iteration is inherently multi-pass, so the samples
// themselves (O(K·p²) floats) must be held until Finish; what streaming
// removes is every other buffer — the raw bytes, the token values and the
// intermediate Data — which dominate for text .snp input.
type Fitter struct {
	order int
	opts  Options

	p      int // ports; 0 until the first sample
	omegas []float64
	// hdata holds each sample's p×p matrix row-major, appended in arrival
	// order: sample k entry (i,j) is hdata[k·p² + i·p + j].
	hdata []complex128
}

// NewFitter prepares an incremental fit of the given per-column order.
func NewFitter(order int, opts Options) *Fitter {
	opts.setDefaults()
	return &Fitter{order: order, opts: opts}
}

// Add appends one sample. Frequencies must arrive strictly increasing and
// all samples must be square with matching dimensions. The sample matrix
// is copied, never retained.
func (ft *Fitter) Add(s Sample) error {
	p := s.H.Rows
	if p < 1 {
		return errors.New("vectfit: empty sample matrix")
	}
	if s.H.Cols != p {
		return errors.New("vectfit: samples must be square matrices")
	}
	if ft.p == 0 {
		ft.p = p
	} else {
		if p != ft.p {
			return errors.New("vectfit: inconsistent sample dimensions")
		}
		if s.Omega <= ft.omegas[len(ft.omegas)-1] {
			return errors.New("vectfit: frequencies must be strictly increasing")
		}
	}
	ft.omegas = append(ft.omegas, s.Omega)
	ft.hdata = append(ft.hdata, s.H.Data...)
	return nil
}

// Len returns the number of samples added so far.
func (ft *Fitter) Len() int { return len(ft.omegas) }

// Finish runs the fit over everything added. It is equivalent to calling
// Fit on the same sample sequence.
func (ft *Fitter) Finish() (*Result, error) {
	k := len(ft.omegas)
	if k < 4 {
		return nil, errors.New("vectfit: need at least 4 samples")
	}
	if ft.order < 2 {
		return nil, errors.New("vectfit: order must be at least 2")
	}
	p := ft.p
	if 2*k*p < ft.order+1+ft.order {
		return nil, fmt.Errorf("vectfit: %d samples insufficient for order %d", k, ft.order)
	}
	opts := ft.opts
	omegas := ft.omegas

	polesByCol := make([][]complex128, p)
	residByCol := make([]*mat.CDense, p)
	dCol := mat.NewDense(p, p)
	iters := make([]int, p)

	for col := 0; col < p; col++ {
		// Column samples: p×K.
		f := mat.NewCDense(p, k)
		for ki := 0; ki < k; ki++ {
			for r := 0; r < p; r++ {
				f.Set(r, ki, ft.hdata[ki*p*p+r*p+col])
			}
		}
		poles := InitialPoles(omegas[0], omegas[len(omegas)-1], ft.order)
		var lastErr float64 = math.Inf(1)
		it := 0
		for ; it < opts.Iterations; it++ {
			next, err := relocatePoles(omegas, f, poles, opts.Relaxed)
			if err != nil {
				return nil, fmt.Errorf("vectfit: column %d iteration %d: %w", col, it, err)
			}
			poles = next
			// Monitor convergence with a residue fit.
			_, _, rms, err := fitResidues(omegas, f, poles)
			if err != nil {
				return nil, fmt.Errorf("vectfit: column %d iteration %d: %w", col, it, err)
			}
			if math.Abs(lastErr-rms) <= opts.RelTol*math.Max(rms, 1e-300) {
				it++
				break
			}
			lastErr = rms
		}
		res, d, _, err := fitResidues(omegas, f, poles)
		if err != nil {
			return nil, fmt.Errorf("vectfit: column %d final fit: %w", col, err)
		}
		polesByCol[col] = poles
		residByCol[col] = res
		for r := 0; r < p; r++ {
			dCol.Set(r, col, d[r])
		}
		iters[col] = it
	}

	model, err := statespace.FromPoleResidue(dCol, polesByCol, residByCol)
	if err != nil {
		return nil, fmt.Errorf("vectfit: assembling realization: %w", err)
	}
	// Final RMS over all entries (same accumulation order as the original
	// batch loop: sample → row → column).
	var ss float64
	cnt := 0
	for ki := 0; ki < k; ki++ {
		h := model.EvalJW(omegas[ki])
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				d := h.At(i, j) - ft.hdata[ki*p*p+i*p+j]
				ss += real(d)*real(d) + imag(d)*imag(d)
				cnt++
			}
		}
	}
	return &Result{
		Model:      model,
		RMSError:   math.Sqrt(ss / float64(cnt)),
		Iterations: iters,
	}, nil
}
