package vectfit

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/statespace"
)

// Fitter is the sample-at-a-time entry point to Vector Fitting: Add
// validates each incoming sample (square, consistent dimensions, strictly
// increasing frequency) and packs it into the least-squares sample storage
// immediately — the caller's matrix is not retained — so ingestion (e.g. a
// streaming touchstone.Reader) overlaps I/O with system accumulation and
// never materializes a second copy of the raw file. Finish then runs
// exactly the batch fit: Fit itself is implemented as NewFitter + Add +
// Finish, so the two paths produce bit-identical models by construction.
//
// The pole-relocation iteration is inherently multi-pass, so the samples
// themselves (O(K·p²) floats) must be held until Finish; what streaming
// removes is every other buffer — the raw bytes, the token values and the
// intermediate Data — which dominate for text .snp input.
type Fitter struct {
	order int
	opts  Options

	p      int // ports; 0 until the first sample
	omegas []float64
	// hdata holds each sample's p×p matrix row-major, appended in arrival
	// order: sample k entry (i,j) is hdata[k·p² + i·p + j].
	hdata []complex128
}

// NewFitter prepares an incremental fit of the given per-column order.
func NewFitter(order int, opts Options) *Fitter {
	opts.setDefaults()
	return &Fitter{order: order, opts: opts}
}

// Add appends one sample. Frequencies must arrive strictly increasing and
// all samples must be square with matching dimensions. The sample matrix
// is copied, never retained.
func (ft *Fitter) Add(s Sample) error {
	p := s.H.Rows
	if p < 1 {
		return errors.New("vectfit: empty sample matrix")
	}
	if s.H.Cols != p {
		return errors.New("vectfit: samples must be square matrices")
	}
	if ft.p == 0 {
		ft.p = p
	} else {
		if p != ft.p {
			return errors.New("vectfit: inconsistent sample dimensions")
		}
		if s.Omega <= ft.omegas[len(ft.omegas)-1] {
			return errors.New("vectfit: frequencies must be strictly increasing")
		}
	}
	ft.omegas = append(ft.omegas, s.Omega)
	ft.hdata = append(ft.hdata, s.H.Data...)
	return nil
}

// Len returns the number of samples added so far.
func (ft *Fitter) Len() int { return len(ft.omegas) }

// Finish runs the fit over everything added. It is equivalent to calling
// Fit on the same sample sequence.
func (ft *Fitter) Finish() (*Result, error) {
	return ft.FinishContext(context.Background())
}

// colFit is the per-column fit state threaded through the PhaseFit rounds.
// Each pool task owns exactly one colFit (index-assigned), so the rounds
// are data-race-free and bit-identical under any worker count.
type colFit struct {
	poles   []complex128
	lastErr float64
	it      int
	done    bool
	resid   *mat.CDense
	d       []float64
}

// columnSamples extracts column col's p×K sample matrix from the packed
// storage. Each pool task builds it on entry and releases it on exit, so
// only the columns currently in flight (≤ pool width) hold a second copy
// of their samples; the O(p·K) re-extraction per round is noise next to
// the round's SVD. The sequential loop likewise held one column at a
// time.
func (ft *Fitter) columnSamples(col int) *mat.CDense {
	k, p := len(ft.omegas), ft.p
	f := mat.NewCDense(p, k)
	for ki := 0; ki < k; ki++ {
		for r := 0; r < p; r++ {
			f.Set(r, ki, ft.hdata[ki*p*p+r*p+col])
		}
	}
	return f
}

// FinishContext is Finish with cancellation/deadline support.
//
// The p columns of the fit are independent; their pole-relocation rounds
// and final residue solves — the SVD-heavy LS systems that dominate
// many-port fits — are submitted to a worker pool as core.PhaseFit task
// batches: one task per still-unconverged column per round, then one
// final-residue task per column. Options.Client selects a shared pool
// (fleet callers); otherwise a private pool of Options.Threads workers
// spans the fit. Each task reads and writes only its own column's state,
// and within a column the computation sequence is exactly the sequential
// algorithm's, so the fitted model, RMS error, and iteration counts are
// bit-identical under any worker count and pool load.
//
// Memory: each task extracts its column's p×K sample matrix on entry and
// releases it on exit, so at most the in-flight columns (≤ pool width)
// hold a second copy of their samples at any moment — the overlapped
// analogue of the sequential loop's one-column-at-a-time copy.
//
// FinishContext must not be called from a pool worker goroutine (the
// batch join could deadlock a fully-busy pool).
func (ft *Fitter) FinishContext(ctx context.Context) (*Result, error) {
	k := len(ft.omegas)
	if k < 4 {
		return nil, errors.New("vectfit: need at least 4 samples")
	}
	if ft.order < 2 {
		return nil, errors.New("vectfit: order must be at least 2")
	}
	if ft.opts.Threads < 0 {
		return nil, fmt.Errorf("vectfit: Threads must be ≥ 0, got %d", ft.opts.Threads)
	}
	p := ft.p
	if 2*k*p < ft.order+1+ft.order {
		return nil, fmt.Errorf("vectfit: %d samples insufficient for order %d", k, ft.order)
	}
	opts := ft.opts
	omegas := ft.omegas

	client := opts.Client
	if client == nil {
		// Standalone fit: a private pool of Threads workers (NewPool clamps
		// < 1 to one worker — the sequential default).
		pool := core.NewPool(opts.Threads)
		defer pool.Close()
		client = pool.NewClient(core.ClientOptions{})
	}

	// Per-column state, owned by one task at a time.
	cols := make([]colFit, p)
	for col := 0; col < p; col++ {
		cols[col] = colFit{
			poles:   InitialPoles(omegas[0], omegas[len(omegas)-1], ft.order),
			lastErr: math.Inf(1),
		}
	}

	// Pole relocation: one round = one sigma-iteration of every
	// still-unconverged column, fanned out as a PhaseFit batch. Converged
	// columns drop out of later rounds, exactly like the sequential loop's
	// early break.
	for round := 0; round < opts.Iterations; round++ {
		var fns []func(int) error
		for ci := range cols {
			if cols[ci].done {
				continue
			}
			c, col := &cols[ci], ci
			fns = append(fns, func(int) error {
				f := ft.columnSamples(col) // task-local; freed when the task returns
				next, err := relocatePoles(omegas, f, c.poles, opts.Relaxed)
				if err != nil {
					return fmt.Errorf("vectfit: column %d iteration %d: %w", col, c.it, err)
				}
				c.poles = next
				// Monitor convergence with a residue fit.
				_, _, rms, err := fitResidues(omegas, f, c.poles)
				if err != nil {
					return fmt.Errorf("vectfit: column %d iteration %d: %w", col, c.it, err)
				}
				c.it++
				if math.Abs(c.lastErr-rms) <= opts.RelTol*math.Max(rms, 1e-300) {
					c.done = true
				}
				c.lastErr = rms
				return nil
			})
		}
		if len(fns) == 0 {
			break
		}
		if err := client.RunBatch(ctx, core.PhaseFit, fns); err != nil {
			return nil, err
		}
	}

	// Final residue solves with the converged poles, one task per column.
	fns := make([]func(int) error, p)
	for ci := range cols {
		c, col := &cols[ci], ci
		fns[ci] = func(int) error {
			res, d, _, err := fitResidues(omegas, ft.columnSamples(col), c.poles)
			if err != nil {
				return fmt.Errorf("vectfit: column %d final fit: %w", col, err)
			}
			c.resid, c.d = res, d
			return nil
		}
	}
	if err := client.RunBatch(ctx, core.PhaseFit, fns); err != nil {
		return nil, err
	}

	polesByCol := make([][]complex128, p)
	residByCol := make([]*mat.CDense, p)
	dCol := mat.NewDense(p, p)
	iters := make([]int, p)
	for col := range cols {
		polesByCol[col] = cols[col].poles
		residByCol[col] = cols[col].resid
		for r := 0; r < p; r++ {
			dCol.Set(r, col, cols[col].d[r])
		}
		iters[col] = cols[col].it
	}

	model, err := statespace.FromPoleResidue(dCol, polesByCol, residByCol)
	if err != nil {
		return nil, fmt.Errorf("vectfit: assembling realization: %w", err)
	}
	// Final RMS over all entries, as one pool task: the accumulation order
	// (sample → row → column) must stay exactly the sequential loop's for
	// the error to be bit-identical, so the K model evaluations are not
	// split — but they still run on a worker, under the client's
	// scheduling policy, not on the coordinator goroutine.
	var ss float64
	cnt := 0
	err = client.RunBatch(ctx, core.PhaseFit, []func(int) error{func(int) error {
		for ki := 0; ki < k; ki++ {
			h := model.EvalJW(omegas[ki])
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					d := h.At(i, j) - ft.hdata[ki*p*p+i*p+j]
					ss += real(d)*real(d) + imag(d)*imag(d)
					cnt++
				}
			}
		}
		return nil
	}})
	if err != nil {
		return nil, err
	}
	return &Result{
		Model:      model,
		RMSError:   math.Sqrt(ss / float64(cnt)),
		Iterations: iters,
	}, nil
}
