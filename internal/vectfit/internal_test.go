package vectfit

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/statespace"
)

func TestStateOrderAndCountComplex(t *testing.T) {
	poles := []complex128{complex(-1, 0), complex(-2, 3), complex(-4, 0), complex(-5, 6)}
	if stateOrder(poles) != 6 {
		t.Fatalf("stateOrder = %d, want 6", stateOrder(poles))
	}
	if countComplex(poles) != 2 {
		t.Fatalf("countComplex = %d, want 2", countComplex(poles))
	}
}

func TestLsSolveMatchesQROnWellConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 20, 6
	a := mat.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, err := lsSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := mat.LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-9*(1+math.Abs(x2[i])) {
			t.Fatalf("lsSolve disagrees with QR at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestLsSolveHandlesWildColumnScales(t *testing.T) {
	// Columns spanning 1e-10 … 1: plain QR's rank test rejects this; the
	// equilibrated SVD solve must recover the exact solution.
	rng := rand.New(rand.NewSource(2))
	m, n := 30, 4
	a := mat.NewDense(m, n)
	scales := []float64{1e-10, 1e-5, 1, 1e3}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64()*scales[j])
		}
	}
	xTrue := []float64{1e9, 2e4, -3, 4e-3}
	b := a.MulVec(xTrue)
	x, err := lsSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestRelocatePolesConvergesOnScalarRational(t *testing.T) {
	// A scalar transfer with two known pole pairs: starting from wrong
	// poles, a few sigma iterations must relocate onto the true ones.
	truePoles := []complex128{complex(-2e8, 3e9), complex(-5e7, 8e8)}
	resid := mat.NewCDense(1, 2)
	resid.Set(0, 0, complex(1e8, -2e8))
	resid.Set(0, 1, complex(3e7, 1e7))
	col, err := statespace.ColumnFromPoleResidue(truePoles, resid)
	if err != nil {
		t.Fatal(err)
	}
	model := &statespace.Model{P: 1, D: mat.DenseFromSlice(1, 1, []float64{0.3}), Cols: []statespace.Column{col}}
	omegas := statespace.LogGrid(1e8, 1e10, 80)
	f := mat.NewCDense(1, len(omegas))
	for k, w := range omegas {
		f.Set(0, k, model.EvalJW(w).At(0, 0))
	}
	poles := InitialPoles(1e8, 1e10, 4)
	for it := 0; it < 10; it++ {
		poles, err = relocatePoles(omegas, f, poles, false)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range truePoles {
		best := math.Inf(1)
		for _, got := range poles {
			if d := cmplx.Abs(got - want); d < best {
				best = d
			}
		}
		if best > 1e-3*cmplx.Abs(want) {
			t.Fatalf("pole %v not recovered (closest gap %g); got %v", want, best, poles)
		}
	}
}

func TestFitResiduesExactOnKnownExpansion(t *testing.T) {
	poles := []complex128{complex(-1e8, 0), complex(-2e8, 5e9)}
	wantRes := mat.NewCDense(1, 2)
	wantRes.Set(0, 0, complex(7e7, 0))
	wantRes.Set(0, 1, complex(-3e7, 9e6))
	wantD := 0.25
	omegas := statespace.LogGrid(1e7, 1e11, 60)
	f := mat.NewCDense(1, len(omegas))
	for k, w := range omegas {
		s := complex(0, w)
		v := complex(wantD, 0) +
			wantRes.At(0, 0)/(s-poles[0]) +
			wantRes.At(0, 1)/(s-poles[1]) +
			cmplx.Conj(wantRes.At(0, 1))/(s-cmplx.Conj(poles[1]))
		f.Set(0, k, v)
	}
	res, d, rms, err := fitResidues(omegas, f, poles)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 1e-6 {
		t.Fatalf("rms %g", rms)
	}
	if math.Abs(d[0]-wantD) > 1e-8 {
		t.Fatalf("d = %v, want %v", d[0], wantD)
	}
	for i := 0; i < 2; i++ {
		if cmplx.Abs(res.At(0, i)-wantRes.At(0, i)) > 1e-3*(1+cmplx.Abs(wantRes.At(0, i))) {
			t.Fatalf("residue %d = %v, want %v", i, res.At(0, i), wantRes.At(0, i))
		}
	}
}

func TestSampleModelShapes(t *testing.T) {
	m, err := statespace.Generate(5, statespace.GenOptions{Ports: 3, Order: 9, TargetPeak: 0.9, GridPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	samples := SampleModel(m, []float64{1e8, 1e9})
	if len(samples) != 2 || samples[0].H.Rows != 3 || samples[1].Omega != 1e9 {
		t.Fatal("SampleModel shapes wrong")
	}
}
