package vectfit

import (
	"math/cmplx"
	"testing"

	"repro/internal/mat"
	"repro/internal/statespace"
)

func TestRelaxedFitMatchesStrictOnCleanData(t *testing.T) {
	m := knownModel(t)
	samples := SampleModel(m, statespace.LogGrid(3e7, 3e10, 120))
	strict, err := Fit(samples, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Fit(samples, 8, Options{Relaxed: true})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.RMSError > 1e-6 {
		t.Fatalf("relaxed RMS %g", relaxed.RMSError)
	}
	// Both must reproduce the device response.
	for _, w := range statespace.LogGrid(1e8, 1e10, 40) {
		h0 := m.EvalJW(w)
		h1 := relaxed.Model.EvalJW(w)
		h2 := strict.Model.EvalJW(w)
		if !h1.Equalish(h0, 1e-4*(1+h0.MaxAbs())) {
			t.Fatalf("relaxed fit deviates at ω=%g", w)
		}
		if !h2.Equalish(h0, 1e-4*(1+h0.MaxAbs())) {
			t.Fatalf("strict fit deviates at ω=%g", w)
		}
	}
}

func TestRelaxedFitNoisyDataConverges(t *testing.T) {
	// Relaxed VF's raison d'être: with noisy data the strict σ(∞)=1
	// constraint biases pole relocation; the relaxed variant still lands a
	// good fit.
	m := knownModel(t)
	grid := statespace.LogGrid(3e7, 3e10, 150)
	samples := SampleModel(m, grid)
	seed := uint64(0xdeadbeefcafef00d)
	noisy := make([]Sample, len(samples))
	for i, s := range samples {
		h := s.H.Clone()
		for j := range h.Data {
			seed = seed*6364136223846793005 + 1442695040888963407
			n1 := float64(seed>>40)/float64(1<<24) - 0.5
			seed = seed*6364136223846793005 + 1442695040888963407
			n2 := float64(seed>>40)/float64(1<<24) - 0.5
			h.Data[j] *= complex(1+2e-3*n1, 2e-3*n2)
		}
		noisy[i] = Sample{Omega: s.Omega, H: h}
	}
	res, err := Fit(noisy, 8, Options{Relaxed: true})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, w := range statespace.LogGrid(1e8, 1e10, 50) {
		h0 := m.EvalJW(w)
		h1 := res.Model.EvalJW(w)
		for i := range h0.Data {
			if d := cmplx.Abs(h1.Data[i] - h0.Data[i]); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.05 {
		t.Fatalf("relaxed noisy fit deviates by %g", worst)
	}
	for _, p := range res.Model.Poles() {
		if real(p) >= 0 {
			t.Fatalf("unstable pole %v from relaxed fit", p)
		}
	}
}

func TestRelaxedRelocationRecoversScalarPoles(t *testing.T) {
	truePoles := []complex128{complex(-2e8, 3e9), complex(-5e7, 8e8)}
	resid := mat.NewCDense(1, 2)
	resid.Set(0, 0, complex(1e8, -2e8))
	resid.Set(0, 1, complex(3e7, 1e7))
	col, err := statespace.ColumnFromPoleResidue(truePoles, resid)
	if err != nil {
		t.Fatal(err)
	}
	model := &statespace.Model{P: 1, D: mat.DenseFromSlice(1, 1, []float64{0.3}), Cols: []statespace.Column{col}}
	omegas := statespace.LogGrid(1e8, 1e10, 80)
	f := mat.NewCDense(1, len(omegas))
	for k, w := range omegas {
		f.Set(0, k, model.EvalJW(w).At(0, 0))
	}
	poles := InitialPoles(1e8, 1e10, 4)
	for it := 0; it < 10; it++ {
		poles, err = relocatePoles(omegas, f, poles, true)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range truePoles {
		best := 1e300
		for _, got := range poles {
			if d := cmplx.Abs(got - want); d < best {
				best = d
			}
		}
		if best > 1e-3*cmplx.Abs(want) {
			t.Fatalf("relaxed relocation missed pole %v (gap %g); got %v", want, best, poles)
		}
	}
}
