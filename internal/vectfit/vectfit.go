// Package vectfit implements the Vector Fitting algorithm of Gustavsen &
// Semlyen (IEEE Trans. Power Delivery 1999), the rational identification
// step that produces the macromodels consumed by the Hamiltonian passivity
// tools (paper Sec. II, refs. [1]–[5]). Each column of the p×p scattering
// matrix is fitted independently with its own pole set, which yields
// exactly the multiple-SIMO block structure of paper Eq. 2.
//
// Invariants: Fit ≡ NewFitter+Add+Finish (streaming and buffered fits are
// bit-identical by construction), and the pool-routed column fit is
// bit-identical to the sequential algorithm under any worker count —
// each core.PhaseFit task performs one column's next pole-relocation
// round (or its final residue solve) on state only that task may touch.
//
// Concurrency: a Fitter is confined to one goroutine at a time (Add
// mutates accumulation state; Finish runs the fit). Finish fans the
// per-column LS solves out to a worker pool — a shared one via
// Options.Client, else a private pool of Options.Threads workers — and
// blocks on the batch joins, so it must not be called from a pool worker
// goroutine. Concurrent fits with distinct Fitters are safe, including on
// one shared pool.
package vectfit

import (
	"context"
	"errors"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/statespace"
)

// Options controls the fit.
type Options struct {
	// Iterations is the number of pole-relocation passes. Default 8.
	Iterations int
	// RelTol stops the pole iteration early when the RMS fit error changes
	// by less than this relative amount. Default 1e-10.
	RelTol float64
	// Relaxed enables the relaxed non-triviality constraint of Gustavsen
	// (2006): the sigma function gets a free constant term and a single
	// normalization row Σ_k Re σ(jω_k) = K replaces the hard σ(∞) = 1
	// assumption, which improves convergence on noisy data.
	Relaxed bool
	// Threads sizes the private worker pool Finish creates when Client is
	// nil. The p columns of the fit are independent, and their SVD-heavy
	// LS solves run as pool tasks; the result is bit-identical under any
	// worker count. Default 1 (the sequential behavior).
	Threads int
	// Client routes the fit's per-column tasks through a shared
	// core.Pool instead of a private one: each pole-relocation round and
	// the final residue solves are submitted as PhaseFit batches under
	// this scheduling identity, so a fleet caller's fit competes for
	// workers under the same priority/fairness policy as every other
	// compute phase. Threads is ignored when Client is set. Finish must
	// not be called from a goroutine that is itself a pool worker.
	Client *core.Client
}

func (o *Options) setDefaults() {
	if o.Iterations == 0 {
		o.Iterations = 8
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-10
	}
}

// Sample is one tabulated frequency response: the p×p matrix H(jω).
type Sample struct {
	Omega float64
	H     *mat.CDense
}

// Result carries the fitted model plus per-column diagnostics.
type Result struct {
	Model *statespace.Model
	// RMSError is the final root-mean-square fit error over all samples
	// and matrix entries.
	RMSError float64
	// Iterations actually performed per column.
	Iterations []int
}

// Fit identifies a stable rational macromodel of the given per-column
// order from tabulated samples. Samples must share a common, positive,
// strictly increasing frequency grid.
//
// Fit is the batch form of the incremental Fitter — it feeds every sample
// through Fitter.Add and calls Finish, so the streaming and buffered paths
// produce bit-identical models by construction.
func Fit(samples []Sample, order int, opts Options) (*Result, error) {
	return FitContext(context.Background(), samples, order, opts)
}

// FitContext is Fit with cancellation/deadline support: a canceled context
// drops the fit's queued pool tasks (in-flight ones drain first) and the
// error is ctx.Err().
func FitContext(ctx context.Context, samples []Sample, order int, opts Options) (*Result, error) {
	if len(samples) < 4 {
		return nil, errors.New("vectfit: need at least 4 samples")
	}
	ft := NewFitter(order, opts)
	for _, s := range samples {
		if err := ft.Add(s); err != nil {
			return nil, err
		}
	}
	return ft.FinishContext(ctx)
}

// InitialPoles produces the standard VF starting poles: complex pairs with
// imaginary parts log-spaced over the sample band and real parts at 1% of
// the imaginary part (Im > 0 representatives only; an odd order adds one
// real pole).
func InitialPoles(omegaLo, omegaHi float64, order int) []complex128 {
	if omegaLo <= 0 {
		omegaLo = omegaHi * 1e-4
	}
	var poles []complex128
	nPairs := order / 2
	if order%2 == 1 {
		poles = append(poles, complex(-omegaHi*1e-2, 0))
	}
	if nPairs == 1 {
		w := math.Sqrt(omegaLo * omegaHi)
		poles = append(poles, complex(-0.01*w, w))
		return poles
	}
	llo, lhi := math.Log(omegaLo), math.Log(omegaHi)
	for i := 0; i < nPairs; i++ {
		w := math.Exp(llo + float64(i)/float64(nPairs-1)*(lhi-llo))
		poles = append(poles, complex(-0.01*w, w))
	}
	return poles
}

// lsSolve solves min‖A·x − b‖ with column equilibration: partial-fraction
// basis columns scale like 1/ω (~1e-10 at GHz) while the d column is O(1),
// which would otherwise defeat the QR rank test.
func lsSolve(a *mat.Dense, b []float64) ([]float64, error) {
	n := a.Cols
	scales := make([]float64, n)
	for j := 0; j < n; j++ {
		var ss float64
		for i := 0; i < a.Rows; i++ {
			v := a.At(i, j)
			ss += v * v
		}
		s := math.Sqrt(ss)
		if s == 0 {
			s = 1
		}
		scales[j] = s
	}
	scaled := a.Clone()
	for i := 0; i < a.Rows; i++ {
		row := scaled.Row(i)
		for j := 0; j < n; j++ {
			row[j] /= scales[j]
		}
	}
	// Truncated-SVD least squares: the sigma systems of VF are routinely
	// ill-conditioned beyond what a QR rank test tolerates; discarding
	// directions below 1e-12·σ_max is the standard remedy.
	sv, err := mat.SVDecompose(scaled)
	if err != nil {
		return nil, err
	}
	utb := sv.U.MulVecT(b)
	cutoff := 1e-12 * sv.S[0]
	x := make([]float64, n)
	for t := 0; t < len(sv.S); t++ {
		if sv.S[t] <= cutoff {
			break
		}
		coef := utb[t] / sv.S[t]
		for j := 0; j < n; j++ {
			x[j] += coef * sv.V.At(j, t)
		}
	}
	for j := range x {
		x[j] /= scales[j]
	}
	return x, nil
}

// basisAt evaluates the real-coefficient partial-fraction basis at s: for a
// real pole one function 1/(s−a); for a complex pair (a, a*) two functions
// 1/(s−a)+1/(s−a*) and j/(s−a)−j/(s−a*). Returns one complex value per
// basis function (order-many total).
func basisAt(s complex128, poles []complex128) []complex128 {
	out := make([]complex128, 0, len(poles)+countComplex(poles))
	for _, a := range poles {
		if imag(a) == 0 {
			out = append(out, 1/(s-a))
			continue
		}
		ac := cmplx.Conj(a)
		f1 := 1/(s-a) + 1/(s-ac)
		f2 := complex(0, 1)/(s-a) - complex(0, 1)/(s-ac)
		out = append(out, f1, f2)
	}
	return out
}

func countComplex(poles []complex128) int {
	c := 0
	for _, a := range poles {
		if imag(a) != 0 {
			c++
		}
	}
	return c
}

// stateOrder returns the realized order of the pole set (complex poles
// count twice: the conjugate is implied).
func stateOrder(poles []complex128) int {
	n := 0
	for _, a := range poles {
		if imag(a) == 0 {
			n++
		} else {
			n += 2
		}
	}
	return n
}

// relocatePoles performs one sigma-iteration of VF: solve the linear LS for
// the sigma residues c̃ and compute the new poles as the zeros of σ(s),
// i.e. the eigenvalues of A − b·c̃ᵀ, flipped into the left half-plane.
// With relaxed=true the sigma function carries a free constant term c̃0 and
// a normalization row Σ_k Re σ(jω_k) = K (Gustavsen's relaxed VF).
func relocatePoles(omegas []float64, f *mat.CDense, poles []complex128, relaxed bool) ([]complex128, error) {
	p := f.Rows
	k := len(omegas)
	m := stateOrder(poles) // number of real basis coefficients
	// Unknown layout: for each output j: [c_j (m), d_j (1)]; then c̃ (m)
	// and, in relaxed mode, c̃0.
	nun := p*(m+1) + m
	rows := 2 * k * p
	if relaxed {
		nun++
		rows++
	}
	a := mat.NewDense(rows, nun)
	b := make([]float64, rows)
	ct := p * (m + 1)
	for ki := 0; ki < k; ki++ {
		s := complex(0, omegas[ki])
		phi := basisAt(s, poles)
		for j := 0; j < p; j++ {
			fjk := f.At(j, ki)
			rowRe := 2 * (ki*p + j)
			rowIm := rowRe + 1
			base := j * (m + 1)
			for t := 0; t < m; t++ {
				a.Set(rowRe, base+t, real(phi[t]))
				a.Set(rowIm, base+t, imag(phi[t]))
			}
			a.Set(rowRe, base+m, 1) // d_j
			a.Set(rowIm, base+m, 0)
			// −f_j(s)·c̃ terms.
			for t := 0; t < m; t++ {
				v := fjk * phi[t]
				a.Set(rowRe, ct+t, -real(v))
				a.Set(rowIm, ct+t, -imag(v))
			}
			if relaxed {
				// −f_j(s)·c̃0 term; RHS moves to zero.
				a.Set(rowRe, ct+m, -real(fjk))
				a.Set(rowIm, ct+m, -imag(fjk))
			} else {
				b[rowRe] = real(fjk)
				b[rowIm] = imag(fjk)
			}
		}
	}
	if relaxed {
		// Normalization: Σ_k Re σ(jω_k) = k (avoids the trivial solution).
		row := rows - 1
		for ki := 0; ki < k; ki++ {
			phi := basisAt(complex(0, omegas[ki]), poles)
			for t := 0; t < m; t++ {
				a.Set(row, ct+t, a.At(row, ct+t)+real(phi[t]))
			}
			a.Set(row, ct+m, a.At(row, ct+m)+1)
		}
		b[row] = float64(k)
	}
	x, err := lsSolve(a, b)
	if err != nil {
		return nil, err
	}
	ctilde := append([]float64(nil), x[ct:ct+m]...)
	if relaxed {
		c0 := x[ct+m]
		if math.Abs(c0) < 1e-8 {
			c0 = 1 // degenerate relaxation: fall back to the strict form
		}
		for t := range ctilde {
			ctilde[t] /= c0
		}
	}

	// New poles: eigenvalues of Â = A − b·c̃ᵀ in the real block realization
	// of the sigma basis.
	am := mat.NewDense(m, m)
	bv := make([]float64, m)
	off := 0
	for _, pl := range poles {
		if imag(pl) == 0 {
			am.Set(off, off, real(pl))
			bv[off] = 1
			off++
			continue
		}
		sr, si := real(pl), imag(pl)
		am.Set(off, off, sr)
		am.Set(off, off+1, si)
		am.Set(off+1, off, -si)
		am.Set(off+1, off+1, sr)
		bv[off] = 2
		bv[off+1] = 0
		off += 2
	}
	for i := 0; i < m; i++ {
		if bv[i] == 0 {
			continue
		}
		for j := 0; j < m; j++ {
			am.Set(i, j, am.At(i, j)-bv[i]*ctilde[j])
		}
	}
	eigs, err := mat.EigValues(am)
	if err != nil {
		return nil, err
	}
	return normalizePoles(eigs), nil
}

// normalizePoles flips unstable poles into the left half-plane, snaps
// almost-real poles to the real axis, and returns one representative per
// conjugate pair (Im > 0), sorted by magnitude.
func normalizePoles(eigs []complex128) []complex128 {
	var out []complex128
	for _, e := range eigs {
		re, im := real(e), imag(e)
		if re > 0 {
			re = -re // stability flip (standard VF step)
		}
		if re == 0 {
			re = -1e-6 * math.Max(math.Abs(im), 1)
		}
		if math.Abs(im) <= 1e-9*math.Abs(re) {
			out = append(out, complex(re, 0))
			continue
		}
		if im < 0 {
			continue // conjugate partner carries the pair
		}
		out = append(out, complex(re, im))
	}
	sort.Slice(out, func(i, j int) bool { return cmplx.Abs(out[i]) < cmplx.Abs(out[j]) })
	return out
}

// fitResidues solves the final LS with fixed poles: per output j,
// f_j(s) ≈ d_j + Σ residues. Returns the p×len(poles) complex residue
// matrix (Im>0 pair representatives), the d vector, and the RMS error.
func fitResidues(omegas []float64, f *mat.CDense, poles []complex128) (*mat.CDense, []float64, float64, error) {
	p := f.Rows
	k := len(omegas)
	m := stateOrder(poles)
	nun := m + 1
	res := mat.NewCDense(p, len(poles))
	d := make([]float64, p)
	var ss float64
	a := mat.NewDense(2*k, nun)
	b := make([]float64, 2*k)
	for j := 0; j < p; j++ {
		for ki := 0; ki < k; ki++ {
			s := complex(0, omegas[ki])
			phi := basisAt(s, poles)
			for t := 0; t < m; t++ {
				a.Set(2*ki, t, real(phi[t]))
				a.Set(2*ki+1, t, imag(phi[t]))
			}
			a.Set(2*ki, m, 1)
			a.Set(2*ki+1, m, 0)
			fjk := f.At(j, ki)
			b[2*ki] = real(fjk)
			b[2*ki+1] = imag(fjk)
		}
		x, err := lsSolve(a, b)
		if err != nil {
			return nil, nil, 0, err
		}
		// Convert real basis coefficients back to complex residues.
		t := 0
		for pi, pl := range poles {
			if imag(pl) == 0 {
				res.Set(j, pi, complex(x[t], 0))
				t++
				continue
			}
			// c·φ1 + c'·φ2 corresponds to residue r = c + j·c' on the
			// Im>0 pole (conjugate on the partner).
			res.Set(j, pi, complex(x[t], x[t+1]))
			t += 2
		}
		d[j] = x[m]
		// Accumulate fit error.
		for ki := 0; ki < k; ki++ {
			s := complex(0, omegas[ki])
			acc := complex(d[j], 0)
			for pi, pl := range poles {
				r := res.At(j, pi)
				if imag(pl) == 0 {
					acc += r / (s - pl)
				} else {
					acc += r/(s-pl) + cmplx.Conj(r)/(s-cmplx.Conj(pl))
				}
			}
			diff := acc - f.At(j, ki)
			ss += real(diff)*real(diff) + imag(diff)*imag(diff)
		}
	}
	return res, d, math.Sqrt(ss / float64(2*k*p)), nil
}

// SampleModel tabulates a model on the given frequency grid (helper for
// tests and examples: it plays the role of the field solver or VNA data).
func SampleModel(m *statespace.Model, omegas []float64) []Sample {
	out := make([]Sample, len(omegas))
	for i, w := range omegas {
		out[i] = Sample{Omega: w, H: m.EvalJW(w)}
	}
	return out
}
