package vectfit

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/statespace"
)

// sequentialFit replicates the pre-pool per-column loop of Fitter.Finish
// (relocate → monitor → converge, then a final residue solve, then the
// sequential RMS accumulation) using the same internal kernels. It is the
// reference the pool-routed fit must match bit for bit.
func sequentialFit(t *testing.T, samples []Sample, order int, opts Options) *Result {
	t.Helper()
	opts.setDefaults()
	k := len(samples)
	p := samples[0].H.Rows
	omegas := make([]float64, k)
	for i, s := range samples {
		omegas[i] = s.Omega
	}
	polesByCol := make([][]complex128, p)
	residByCol := make([]*mat.CDense, p)
	dCol := mat.NewDense(p, p)
	iters := make([]int, p)
	for col := 0; col < p; col++ {
		f := mat.NewCDense(p, k)
		for ki := 0; ki < k; ki++ {
			for r := 0; r < p; r++ {
				f.Set(r, ki, samples[ki].H.At(r, col))
			}
		}
		poles := InitialPoles(omegas[0], omegas[len(omegas)-1], order)
		lastErr := math.Inf(1)
		it := 0
		for ; it < opts.Iterations; it++ {
			next, err := relocatePoles(omegas, f, poles, opts.Relaxed)
			if err != nil {
				t.Fatal(err)
			}
			poles = next
			_, _, rms, err := fitResidues(omegas, f, poles)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(lastErr-rms) <= opts.RelTol*math.Max(rms, 1e-300) {
				it++
				break
			}
			lastErr = rms
		}
		res, d, _, err := fitResidues(omegas, f, poles)
		if err != nil {
			t.Fatal(err)
		}
		polesByCol[col] = poles
		residByCol[col] = res
		for r := 0; r < p; r++ {
			dCol.Set(r, col, d[r])
		}
		iters[col] = it
	}
	model, err := statespace.FromPoleResidue(dCol, polesByCol, residByCol)
	if err != nil {
		t.Fatal(err)
	}
	var ss float64
	cnt := 0
	for ki := 0; ki < k; ki++ {
		h := model.EvalJW(omegas[ki])
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				d := h.At(i, j) - samples[ki].H.At(i, j)
				ss += real(d)*real(d) + imag(d)*imag(d)
				cnt++
			}
		}
	}
	return &Result{Model: model, RMSError: math.Sqrt(ss / float64(cnt)), Iterations: iters}
}

func requireSameFit(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.RMSError != want.RMSError {
		t.Fatalf("%s: RMSError %v != %v", label, got.RMSError, want.RMSError)
	}
	if fmt.Sprint(got.Iterations) != fmt.Sprint(want.Iterations) {
		t.Fatalf("%s: iterations %v != %v", label, got.Iterations, want.Iterations)
	}
	if !bytes.Equal(encode(t, got.Model), encode(t, want.Model)) {
		t.Fatalf("%s: fitted model not bit-identical", label)
	}
}

// TestFitPoolRoutedBitIdentical pins the tentpole guarantee: the
// pool-routed per-column fit is bit-identical to the pre-refactor
// sequential loop under any worker count, in strict and relaxed modes.
func TestFitPoolRoutedBitIdentical(t *testing.T) {
	for _, relaxed := range []bool{false, true} {
		samples := fitterSamples(t, 3)
		opts := Options{Relaxed: relaxed}
		ref := sequentialFit(t, samples, 8, opts)
		for _, threads := range []int{1, 2, 8} {
			o := opts
			o.Threads = threads
			got, err := Fit(samples, 8, o)
			if err != nil {
				t.Fatalf("relaxed=%v threads=%d: %v", relaxed, threads, err)
			}
			requireSameFit(t, fmt.Sprintf("relaxed=%v threads=%d", relaxed, threads), got, ref)
		}
	}
}

// TestFitSharedPoolClient: a fit under an external client runs its column
// work as PhaseFit tasks of the shared pool — one task per column per
// pole-relocation round, one final residue task per column, one RMS
// accumulation task — and still produces the bit-identical model.
func TestFitSharedPoolClient(t *testing.T) {
	p := core.NewPool(2)
	defer p.Close()
	samples := fitterSamples(t, 3)
	ref := sequentialFit(t, samples, 8, Options{})
	got, err := Fit(samples, 8, Options{Client: p.NewClient(core.ClientOptions{})})
	if err != nil {
		t.Fatal(err)
	}
	requireSameFit(t, "shared pool", got, ref)
	total := 0
	for _, it := range got.Iterations {
		total += it
	}
	total += len(got.Iterations) + 1 // final residue solve per column + the RMS task
	if st := p.PhaseStats()[core.PhaseFit]; st.Tasks != total {
		t.Fatalf("PhaseFit counted %d tasks, want %d (Σ iterations + columns + 1)", st.Tasks, total)
	}
}

// TestFinishContextCancelNoLeak: canceling the context mid-fit returns
// ctx.Err() and leaks neither pool workers nor fit goroutines.
func TestFinishContextCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := core.NewPool(2)
	samples := fitterSamples(t, 4)
	ft := NewFitter(10, Options{Client: pool.NewClient(core.ClientOptions{})})
	for _, s := range samples {
		if err := ft.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := ft.FinishContext(ctx)
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the first PhaseFit batch start
	cancel()
	select {
	case err := <-errc:
		// A fast machine may finish the whole fit before the cancel lands;
		// anything other than success must be the context error.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("FinishContext did not return after cancellation")
	}
	pool.Close()
	// The worker goroutines and the batch join must all be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestFinishPoolClosedCleanError: a fit whose shared pool closes under it
// (or was already closed) fails with core.ErrPoolClosed instead of
// deadlocking or panicking.
func TestFinishPoolClosedCleanError(t *testing.T) {
	// Already-closed pool: the very first batch fails.
	pool := core.NewPool(1)
	client := pool.NewClient(core.ClientOptions{})
	pool.Close()
	_, err := Fit(fitterSamples(t, 2), 8, Options{Client: client})
	if !errors.Is(err, core.ErrPoolClosed) {
		t.Fatalf("closed pool: want ErrPoolClosed, got %v", err)
	}

	// Close mid-fit: queued column tasks are aborted, the join wakes, and
	// Finish surfaces the same clean error.
	pool2 := core.NewPool(1)
	ft := NewFitter(10, Options{Client: pool2.NewClient(core.ClientOptions{})})
	for _, s := range fitterSamples(t, 4) {
		if err := ft.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	errc := make(chan error, 1)
	go func() {
		_, err := ft.Finish()
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	pool2.Close()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, core.ErrPoolClosed) {
			t.Fatalf("mid-fit close: want ErrPoolClosed (or a full fit), got %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("Finish did not return after pool close")
	}
}

// TestFinishRejectsNegativeThreads mirrors the core option hygiene: a
// negative Threads must error instead of silently clamping.
func TestFinishRejectsNegativeThreads(t *testing.T) {
	_, err := Fit(fitterSamples(t, 2), 8, Options{Threads: -1})
	if err == nil {
		t.Fatal("negative Threads accepted")
	}
}
