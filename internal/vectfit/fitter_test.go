package vectfit

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/statespace"
)

func fitterSamples(t *testing.T, ports int) []Sample {
	t.Helper()
	m, err := statespace.Generate(11, statespace.GenOptions{
		Ports: ports, Order: 6 * ports, TargetPeak: 0.95, GridPoints: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return SampleModel(m, statespace.LogGrid(2*math.Pi*1e8, 2*math.Pi*2e10, 50))
}

func encode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFitterMatchesBatch pins the core contract: NewFitter+Add+Finish is
// the batch Fit, bit for bit, in both strict and relaxed modes.
func TestFitterMatchesBatch(t *testing.T) {
	for _, relaxed := range []bool{false, true} {
		samples := fitterSamples(t, 2)
		opts := Options{Relaxed: relaxed}
		batch, err := Fit(samples, 10, opts)
		if err != nil {
			t.Fatal(err)
		}
		ft := NewFitter(10, opts)
		for _, s := range samples {
			if err := ft.Add(s); err != nil {
				t.Fatal(err)
			}
		}
		inc, err := ft.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, batch.Model), encode(t, inc.Model)) {
			t.Fatalf("relaxed=%v: incremental model differs from batch", relaxed)
		}
		if batch.RMSError != inc.RMSError {
			t.Fatalf("relaxed=%v: RMS %v vs %v", relaxed, batch.RMSError, inc.RMSError)
		}
	}
}

// TestFitterCopiesSamples: Add must not retain the caller's matrix — a
// streaming producer may reuse or mutate it after the call.
func TestFitterCopiesSamples(t *testing.T) {
	samples := fitterSamples(t, 1)
	want, err := Fit(samples, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ft := NewFitter(6, Options{})
	scratch := mat.NewCDense(1, 1)
	for _, s := range samples {
		scratch.Data[0] = s.H.Data[0]
		if err := ft.Add(Sample{Omega: s.Omega, H: scratch}); err != nil {
			t.Fatal(err)
		}
		scratch.Data[0] = complex(math.NaN(), math.NaN()) // poison after Add
	}
	got, err := ft.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, want.Model), encode(t, got.Model)) {
		t.Fatal("Add retained the caller's matrix")
	}
}

func TestFitterValidation(t *testing.T) {
	h := func(p int) *mat.CDense { return mat.NewCDense(p, p) }

	ft := NewFitter(4, Options{})
	if err := ft.Add(Sample{Omega: 1, H: mat.NewCDense(2, 3)}); err == nil ||
		!strings.Contains(err.Error(), "square") {
		t.Fatalf("non-square: %v", err)
	}
	if err := ft.Add(Sample{Omega: 1, H: mat.NewCDense(0, 0)}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if err := ft.Add(Sample{Omega: 1, H: h(2)}); err != nil {
		t.Fatal(err)
	}
	if err := ft.Add(Sample{Omega: 2, H: h(3)}); err == nil ||
		!strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("dimension change: %v", err)
	}
	if err := ft.Add(Sample{Omega: 1, H: h(2)}); err == nil ||
		!strings.Contains(err.Error(), "strictly increasing") {
		t.Fatalf("non-monotone: %v", err)
	}
	if ft.Len() != 1 {
		t.Fatalf("Len %d after one good Add", ft.Len())
	}
	if _, err := ft.Finish(); err == nil ||
		!strings.Contains(err.Error(), "at least 4 samples") {
		t.Fatalf("too few samples: %v", err)
	}

	ft = NewFitter(1, Options{})
	for i := 0; i < 4; i++ {
		if err := ft.Add(Sample{Omega: float64(i + 1), H: h(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ft.Finish(); err == nil ||
		!strings.Contains(err.Error(), "order must be at least 2") {
		t.Fatalf("bad order: %v", err)
	}

	ft = NewFitter(40, Options{})
	for i := 0; i < 4; i++ {
		if err := ft.Add(Sample{Omega: float64(i + 1), H: h(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ft.Finish(); err == nil ||
		!strings.Contains(err.Error(), "insufficient") {
		t.Fatalf("insufficient samples: %v", err)
	}
}
