package vectfit

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/mat"
	"repro/internal/statespace"
)

// knownModel builds a small 2-port model with known poles for recovery tests.
func knownModel(t *testing.T) *statespace.Model {
	t.Helper()
	m, err := statespace.Generate(77, statespace.GenOptions{
		Ports: 2, Order: 8, TargetPeak: 0.95, GridPoints: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInitialPoles(t *testing.T) {
	poles := InitialPoles(1e8, 1e10, 6)
	if stateOrder(poles) != 6 {
		t.Fatalf("stateOrder = %d, want 6", stateOrder(poles))
	}
	for _, p := range poles {
		if real(p) >= 0 {
			t.Fatalf("unstable initial pole %v", p)
		}
		if imag(p) < 0 {
			t.Fatalf("initial pole with Im < 0: %v", p)
		}
	}
	polesOdd := InitialPoles(1e8, 1e10, 7)
	if stateOrder(polesOdd) != 7 {
		t.Fatalf("odd stateOrder = %d, want 7", stateOrder(polesOdd))
	}
}

func TestBasisMatchesPartialFractions(t *testing.T) {
	poles := []complex128{complex(-2, 0), complex(-1, 5)}
	s := complex(0, 3)
	phi := basisAt(s, poles)
	if len(phi) != 3 {
		t.Fatalf("basis size %d, want 3", len(phi))
	}
	want0 := 1 / (s - poles[0])
	if cmplx.Abs(phi[0]-want0) > 1e-14 {
		t.Fatal("real-pole basis wrong")
	}
	a := poles[1]
	want1 := 1/(s-a) + 1/(s-cmplx.Conj(a))
	want2 := complex(0, 1)/(s-a) - complex(0, 1)/(s-cmplx.Conj(a))
	if cmplx.Abs(phi[1]-want1) > 1e-14 || cmplx.Abs(phi[2]-want2) > 1e-14 {
		t.Fatal("complex-pair basis wrong")
	}
	// Real coefficients must produce conjugate-symmetric functions.
	val := 2*phi[1] + 3*phi[2]
	phiConj := basisAt(cmplx.Conj(s), poles)
	valConj := 2*phiConj[1] + 3*phiConj[2]
	if cmplx.Abs(valConj-cmplx.Conj(val)) > 1e-13 {
		t.Fatal("basis not conjugate-symmetric")
	}
}

func TestFitRecoversExactRational(t *testing.T) {
	// Fit samples generated from a known rational model using the exact
	// order: the fit must reproduce the responses to high accuracy.
	m := knownModel(t)
	grid := statespace.LogGrid(3e7, 3e10, 120)
	samples := SampleModel(m, grid)
	res, err := Fit(samples, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSError > 1e-6 {
		t.Fatalf("RMS fit error %g too large", res.RMSError)
	}
	// Validate on an off-grid frequency set.
	check := statespace.LogGrid(5e7, 2e10, 77)
	for _, w := range check {
		h0 := m.EvalJW(w)
		h1 := res.Model.EvalJW(w)
		if !h1.Equalish(h0, 1e-4*(1+h0.MaxAbs())) {
			t.Fatalf("fit deviates at off-grid ω=%g", w)
		}
	}
}

func TestFitProducesStableSIMOModel(t *testing.T) {
	m := knownModel(t)
	samples := SampleModel(m, statespace.LogGrid(3e7, 3e10, 100))
	res, err := Fit(samples, 10, Options{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Model.Poles() {
		if real(p) >= 0 {
			t.Fatalf("unstable fitted pole %v", p)
		}
	}
	if res.Model.P != 2 {
		t.Fatalf("wrong port count %d", res.Model.P)
	}
	// Per-column order equals the requested order.
	for k := range res.Model.Cols {
		if got := res.Model.Cols[k].Order(); got != 10 {
			t.Fatalf("column %d order %d, want 10", k, got)
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	m := knownModel(t)
	samples := SampleModel(m, statespace.LogGrid(1e8, 1e10, 50))
	if _, err := Fit(samples[:2], 4, Options{}); err == nil {
		t.Fatal("expected error for too few samples")
	}
	if _, err := Fit(samples, 1, Options{}); err == nil {
		t.Fatal("expected error for order < 2")
	}
	bad := append([]Sample(nil), samples...)
	bad[3].Omega = bad[2].Omega
	if _, err := Fit(bad, 4, Options{}); err == nil {
		t.Fatal("expected error for non-increasing grid")
	}
	rect := SampleModel(m, statespace.LogGrid(1e8, 1e10, 50))
	rect[0].H = mat.NewCDense(2, 3)
	if _, err := Fit(rect, 4, Options{}); err == nil {
		t.Fatal("expected error for non-square samples")
	}
}

func TestNormalizePoles(t *testing.T) {
	in := []complex128{
		complex(2, 3),      // unstable: flip
		complex(2, -3),     // conjugate: dropped (partner kept)
		complex(-1, 1e-12), // almost real: snapped
		complex(-1, -1e-12),
		complex(0, 5), // marginal: pushed left
		complex(0, -5),
	}
	out := normalizePoles(in)
	for _, p := range out {
		if real(p) >= 0 {
			t.Fatalf("normalized pole %v not strictly stable", p)
		}
		if imag(p) < 0 {
			t.Fatalf("normalized pole %v has Im < 0", p)
		}
	}
	if stateOrder(out) != 6 {
		t.Fatalf("stateOrder after normalize = %d, want 6", stateOrder(out))
	}
}

func TestFitNoisyDataStillReasonable(t *testing.T) {
	// Add 0.1% multiplicative noise: VF should still land within ~1% of
	// the clean response (robustness property the original paper stresses).
	m := knownModel(t)
	grid := statespace.LogGrid(3e7, 3e10, 150)
	samples := SampleModel(m, grid)
	seed := uint64(0x9e3779b97f4a7c15)
	noisy := make([]Sample, len(samples))
	for i, s := range samples {
		h := s.H.Clone()
		for j := range h.Data {
			seed = seed*6364136223846793005 + 1442695040888963407
			n1 := float64(seed>>40)/float64(1<<24) - 0.5
			seed = seed*6364136223846793005 + 1442695040888963407
			n2 := float64(seed>>40)/float64(1<<24) - 0.5
			h.Data[j] *= complex(1+1e-3*n1, 1e-3*n2)
		}
		noisy[i] = Sample{Omega: s.Omega, H: h}
	}
	res, err := Fit(noisy, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, w := range statespace.LogGrid(1e8, 1e10, 60) {
		h0 := m.EvalJW(w)
		h1 := res.Model.EvalJW(w)
		for i := range h0.Data {
			if d := cmplx.Abs(h1.Data[i] - h0.Data[i]); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.02 {
		t.Fatalf("noisy fit deviates by %g", worst)
	}
}

func TestFittedModelFeedsPassivityPipeline(t *testing.T) {
	// End-to-end: fit → Hamiltonian op construction must succeed (σ(D)<1).
	m := knownModel(t)
	samples := SampleModel(m, statespace.LogGrid(3e7, 3e10, 100))
	res, err := Fit(samples, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dn, err := mat.Norm2Mat(res.Model.D)
	if err != nil {
		t.Fatal(err)
	}
	if dn >= 1 {
		t.Fatalf("fitted D norm %g ≥ 1", dn)
	}
	if math.IsNaN(res.RMSError) {
		t.Fatal("NaN RMS error")
	}
}
