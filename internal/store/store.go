// Package store is passivityd's durable job log: a single append-only,
// fsync'd file that records every job's spec, model snapshot, solver
// checkpoints, streamed events, and terminal document, so a daemon restart
// (or SIGKILL) loses no committed work. The server replays the log on boot
// and re-submits each incomplete job seeded from its last checkpoint; the
// solver's schedule-independence invariant then makes the resumed report
// bit-identical to an uninterrupted run.
//
// # Framing
//
// The file opens with an 8-byte magic. Each record is framed as
//
//	[len uint32 LE][crc uint32 LE][payload len bytes]
//
// where crc is CRC-32C (Castagnoli) over the payload. A crash can only
// tear the TAIL of the file (appends are sequential and each record is
// fsync'd before being acknowledged), so recovery truncates at the first
// frame whose length or checksum fails — committed records are never
// touched. A frame whose checksum passes but whose payload does not decode
// is NOT a torn write; that is real corruption and Open reports it as a
// positioned error instead of silently dropping data.
//
// # Durability contract
//
// Every Append* call returns only after the record is written and synced.
// If a write or sync fails, the store latches broken (ErrStoreBroken wraps
// every later call), rolls the file back to the last committed boundary on
// a best-effort basis, and never retries the sync: after a failed fsync
// the kernel may have dropped the dirty pages, so "retry until it works"
// can acknowledge data that never reached disk.
//
// Concurrency: Store methods are safe for concurrent use; records from
// concurrent appenders interleave at frame granularity.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// magic identifies a passivityd job log (8 bytes, version in the suffix).
const magic = "PSVJLOG1"

// maxRecord caps a frame's payload length. Anything larger is treated as a
// torn/garbage length prefix during recovery and rejected at append time
// (a model snapshot at the spec caps is far below this).
const maxRecord = 16 << 20

// ErrStoreBroken wraps every call made after a write or sync failure.
var ErrStoreBroken = errors.New("store: broken by earlier write failure")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// logFile is the slice of *os.File the store needs — the seam the
// fault-injection tests use to fail the K-th write or sync.
type logFile interface {
	io.Reader
	io.Writer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// Store is an open job log. Create one with Open.
type Store struct {
	mu     sync.Mutex
	f      logFile
	size   int64 // committed length: magic + every acknowledged frame
	broken error // latched first write/sync failure
	jobs   []*JobState
}

// Open opens (or creates) the job log at path, truncates any torn tail,
// and replays the committed records; Recovered returns the replayed jobs.
// A decode or replay inconsistency in committed (CRC-valid) records is a
// hard error — the log is not silently repaired.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s, err := openWith(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// openWith runs Open's recovery on an already-open file — the entry point
// the fault-injection and fuzz tests drive with a test double.
func openWith(f logFile) (*Store, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("store: read log: %w", err)
	}
	s := &Store{f: f}
	valid, frames, err := scanLog(data)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != valid {
		if err := f.Truncate(valid); err != nil {
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	if valid == 0 {
		// Empty (or torn-header) file: start a fresh log.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		if _, err := f.Write([]byte(magic)); err != nil {
			return nil, fmt.Errorf("store: write magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("store: sync magic: %w", err)
		}
		s.size = int64(len(magic))
		return s, nil
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return nil, err
	}
	s.size = valid
	s.jobs, err = replay(frames)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// frame is one committed record located in the log.
type frame struct {
	off     int64 // payload offset in the file, for positioned errors
	payload []byte
}

// scanLog validates the magic and walks the frames, returning the
// committed length (magic + whole valid frames) and the payloads. Torn
// tails — short header, impossible length, short payload, or checksum
// mismatch on the LAST readable frame position — simply end the committed
// region. A file whose first bytes are not (a prefix of) the magic is not
// a job log and is a hard error rather than something to truncate away.
func scanLog(data []byte) (valid int64, frames []frame, err error) {
	if len(data) < len(magic) {
		if string(data) == magic[:len(data)] {
			return 0, nil, nil // torn header: treat as empty
		}
		return 0, nil, fmt.Errorf("store: not a job log (short header %q)", data)
	}
	if string(data[:len(magic)]) != magic {
		return 0, nil, fmt.Errorf("store: not a job log (magic %q)", data[:len(magic)])
	}
	off := int64(len(magic))
	for {
		rest := data[off:]
		if len(rest) < 8 {
			return off, frames, nil
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > maxRecord || int(n) > len(rest)-8 {
			return off, frames, nil
		}
		payload := rest[8 : 8+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, frames, nil
		}
		frames = append(frames, frame{off: off + 8, payload: payload})
		off += 8 + int64(n)
	}
}

// Recovered returns the jobs replayed from the log at Open, in first-seen
// order. The slice is owned by the caller; the store does not use it after
// Open.
func (s *Store) Recovered() []*JobState { return s.jobs }

// append frames, writes, and fsyncs one payload. On any failure the store
// latches broken and rolls the file back to the last committed boundary
// (best effort — if even the rollback fails, recovery's tail truncation
// handles the partial frame on next Open).
func (s *Store) append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("store: record of %d bytes exceeds limit %d", len(payload), maxRecord)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[8:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return fmt.Errorf("%w: %w", ErrStoreBroken, s.broken)
	}
	if _, err := s.f.Write(buf); err != nil {
		s.breakLocked(err)
		return fmt.Errorf("store: write record: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.breakLocked(err)
		return fmt.Errorf("store: sync record: %w", err)
	}
	s.size += int64(len(buf))
	return nil
}

// breakLocked latches the store broken and tries to roll the file back to
// the last committed boundary so the failed record cannot masquerade as
// committed if the pages later reach disk.
func (s *Store) breakLocked(err error) {
	s.broken = err
	_ = s.f.Truncate(s.size)
	_, _ = s.f.Seek(s.size, io.SeekStart)
}

// Err returns the latched write failure, or nil while the store is healthy.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// Close syncs and closes the log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken == nil {
		if err := s.f.Sync(); err != nil {
			s.broken = err
		}
	}
	return s.f.Close()
}
