package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// faultFile wraps a real file and injects one failure: a short write, a
// torn write (half the buffer reaches the file, then error), or an fsync
// error, on the K-th call of that kind. Everything else passes through, so
// the on-disk state is exactly what a real crashed process would leave.
type faultFile struct {
	f          *os.File
	mode       string // "short", "torn", "sync"
	k          int    // 1-based call index to fail at
	writeCalls int
	syncCalls  int
}

var errInjected = errors.New("injected fault")

func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.writeCalls++
	if ff.writeCalls == ff.k {
		switch ff.mode {
		case "short":
			return 0, errInjected
		case "torn":
			n, _ := ff.f.Write(p[:len(p)/2])
			return n, errInjected
		}
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.syncCalls++
	if ff.mode == "sync" && ff.syncCalls == ff.k {
		return errInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error        { return ff.f.Truncate(size) }
func (ff *faultFile) Seek(o int64, w int) (int64, error) { return ff.f.Seek(o, w) }
func (ff *faultFile) Close() error                      { return ff.f.Close() }

// TestStoreFaultInjection drives the append path into a short write, a
// torn write, and an fsync error at the 3rd record, and asserts the
// failure contract: the failing append errors, the store latches broken
// (ErrStoreBroken on all later appends), and a reopen of the same file
// recovers every record committed BEFORE the fault — the failed
// checkpoint never corrupts its predecessors.
func TestStoreFaultInjection(t *testing.T) {
	for _, mode := range []string{"short", "torn", "sync"} {
		t.Run(mode, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "jobs.log")
			f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			// Fail the 3rd record's write (or its sync). Call 1 is the
			// magic header; records are one write + one sync each.
			ff := &faultFile{f: f, mode: mode, k: 4}
			if mode == "sync" {
				ff.k = 4 // magic sync + 2 record syncs precede it
			}
			s, err := openWith(ff)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AppendJobStart("job-1", []byte(`{}`), testModel()); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(0)); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(1)); !errors.Is(err, errInjected) {
				t.Fatalf("append over fault: %v", err)
			}
			// The store is latched broken: no later append may pretend to
			// commit.
			if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(2)); !errors.Is(err, ErrStoreBroken) {
				t.Fatalf("append after fault: %v", err)
			}
			if s.Err() == nil {
				t.Fatal("Err() nil after fault")
			}
			s.Close()

			// Reopen the real file: both committed records must replay,
			// and nothing of the failed one may surface.
			s2, err := Open(path)
			if err != nil {
				t.Fatalf("reopen after %s fault: %v", mode, err)
			}
			defer s2.Close()
			jobs := s2.Recovered()
			if len(jobs) != 1 {
				t.Fatalf("recovered %d jobs, want 1", len(jobs))
			}
			if jobs[0].Core == nil || jobs[0].Core.Seq != 0 || len(jobs[0].Core.Outs) != 0 {
				t.Fatalf("committed prefix after %s fault: %+v", mode, jobs[0].Core)
			}
		})
	}
}

// TestStoreFaultSweep moves a torn write across every record of a longer
// run: for each K, the reopened store must hold exactly the records that
// were acknowledged before the fault — no more, no fewer.
func TestStoreFaultSweep(t *testing.T) {
	const records = 6
	for k := 2; k <= records+1; k++ { // write call 1 is the magic
		path := filepath.Join(t.TempDir(), fmt.Sprintf("jobs-%d.log", k))
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		s, err := openWith(&faultFile{f: f, mode: "torn", k: k})
		if err != nil {
			t.Fatal(err)
		}
		acked := 0
		if err := s.AppendJobStart("job-1", []byte(`{}`), testModel()); err == nil {
			acked++
			for i := 0; i < records-1; i++ {
				if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(i)); err != nil {
					break
				}
				acked++
			}
		}
		s.Close()
		if acked != k-2 {
			t.Fatalf("k=%d: %d acknowledged appends, want %d", k, acked, k-2)
		}

		s2, err := Open(path)
		if err != nil {
			t.Fatalf("k=%d: reopen: %v", k, err)
		}
		jobs := s2.Recovered()
		s2.Close()
		switch {
		case acked == 0:
			if len(jobs) != 0 {
				t.Fatalf("k=%d: recovered %d jobs from empty commit", k, len(jobs))
			}
		case acked == 1:
			if len(jobs) != 1 || jobs[0].Core != nil {
				t.Fatalf("k=%d: want bare job, got %+v", k, jobs)
			}
		default:
			if len(jobs) != 1 || jobs[0].Core == nil || jobs[0].Core.Seq != acked-2 {
				t.Fatalf("k=%d: want prefix through seq %d, got %+v", k, acked-2, jobs[0].Core)
			}
		}
	}
}

var _ io.Reader = (*faultFile)(nil)
