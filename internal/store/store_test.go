package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/passivity"
	"repro/internal/statespace"
)

// testModel builds a minimal valid model (1 port, two states) with
// irrational entries so bit-exact round-tripping is actually exercised.
func testModel() *statespace.Model {
	d := mat.NewDense(1, 1)
	d.Data[0] = 0.25

	c := mat.NewDense(1, 2)
	c.Data[0] = math.Pi
	c.Data[1] = -math.Sqrt2

	return &statespace.Model{
		P: 1,
		D: d,
		Cols: []statespace.Column{{
			Blocks: []statespace.Block{{Size: 2, Sigma: -0.5, Omega: 3.75, B1: 1, B2: 0.125}},
			C:      c,
		}},
	}
}

func testCheckpoint(seq int) core.Checkpoint {
	ck := core.Checkpoint{
		Seq:              seq,
		OmegaMax:         10.5,
		NextID:           seq + 3,
		Completed:        seq,
		TentativeDeleted: 1,
		Tentative: []core.IntervalCheckpoint{
			{ID: seq + 1, Lo: 0.1, Hi: 2.5, Shift: 1.3, EdgeLeft: true},
			{ID: seq + 2, Lo: 2.5, Hi: 10.5, Shift: 5.0, EdgeRite: true},
		},
	}
	if seq > 0 {
		ck.Out = &core.ShiftCheckpoint{
			Omega:       1.5,
			Radius:      0.75,
			Worker:      2,
			Eigenvalues: []complex128{complex(0.1, 1.4), complex(-0.1, 1.6)},
			ResidualsM:  []float64{1e-12, 2e-12},
			Restarts:    3,
			OpApplies:   240,
		}
	}
	return ck
}

func openPath(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return s
}

// TestStoreRoundTrip writes every record type, reopens, and checks the
// replayed job state field for field (floats must be bit-identical).
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s := openPath(t, path)
	m := testModel()

	if err := s.AppendJobStart("job-1", []byte(`{"priority":"batch"}`), m); err != nil {
		t.Fatal(err)
	}
	ck0, ck1 := testCheckpoint(0), testCheckpoint(1)
	if err := s.AppendCoreCheckpoint("job-1", ck0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCoreCheckpoint("job-1", ck1); err != nil {
		t.Fatal(err)
	}
	eck := passivity.EnforceCheckpoint{
		Iter:            2,
		Cumulative:      0.125,
		CarriedOmegaMax: 11.5,
		Carried:         true,
		InitialWorst:    1.25,
		SolverTotals:    core.Stats{ShiftsProcessed: 7, Restarts: 12, OpApplies: 900, Elapsed: 1234},
		LastCrossings:   []float64{1.5, 2.25},
		Residues:        [][]float64{{math.Pi, -math.Sqrt2}},
	}
	if err := s.AppendEnforceCheckpoint("job-1", eck); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvent("job-1", EventRecord{Seq: 0, Type: "status", Data: []byte(`{"state":"running"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvent("job-1", EventRecord{Seq: 1, Type: "crossing", Data: []byte(`{"omega":1.5}`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendJobStart("job-2", []byte(`{}`), m); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTerminal("job-2", TerminalRecord{State: "done", Doc: []byte(`{"id":"job-2"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openPath(t, path)
	defer s2.Close()
	jobs := s2.Recovered()
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(jobs))
	}
	j1 := jobs[0]
	if j1.ID != "job-1" || string(j1.Spec) != `{"priority":"batch"}` {
		t.Fatalf("job-1 identity: %q %q", j1.ID, j1.Spec)
	}
	if j1.Terminal != nil {
		t.Fatal("job-1 should be incomplete")
	}
	if j1.Model.P != 1 || j1.Model.Cols[0].C.Data[0] != math.Pi || j1.Model.Cols[0].C.Data[1] != -math.Sqrt2 {
		t.Fatalf("model round trip lost bits: %+v", j1.Model.Cols[0].C.Data)
	}
	if j1.Model.Cols[0].Blocks[0] != m.Cols[0].Blocks[0] {
		t.Fatalf("block round trip: %+v", j1.Model.Cols[0].Blocks[0])
	}
	want := &core.ResumeState{}
	want.Apply(ck0)
	want.Apply(ck1)
	if !reflect.DeepEqual(j1.Core, want) {
		t.Fatalf("core resume state:\n got %+v\nwant %+v", j1.Core, want)
	}
	if !reflect.DeepEqual(j1.Enforce, &eck) {
		t.Fatalf("enforce checkpoint:\n got %+v\nwant %+v", j1.Enforce, &eck)
	}
	if len(j1.Events) != 2 || j1.Events[1].Type != "crossing" || string(j1.Events[1].Data) != `{"omega":1.5}` {
		t.Fatalf("events: %+v", j1.Events)
	}
	j2 := jobs[1]
	if j2.Terminal == nil || j2.Terminal.State != "done" || string(j2.Terminal.Doc) != `{"id":"job-2"}` {
		t.Fatalf("job-2 terminal: %+v", j2.Terminal)
	}
}

// TestStoreTornTail appends records, then truncates the file at every
// possible byte length down to the end of the first record: reopening must
// always succeed and keep exactly the records whose frames survived whole.
func TestStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s := openPath(t, path)
	if err := s.AppendJobStart("job-1", []byte(`{}`), testModel()); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := int64(len(full))
	if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	full, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(len(full)) - 1; cut >= firstLen; cut-- {
		p := filepath.Join(t.TempDir(), "torn.log")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(p)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		jobs := s2.Recovered()
		if len(jobs) != 1 || jobs[0].Core != nil {
			t.Fatalf("cut=%d: want job-1 with no checkpoint, got %d jobs", cut, len(jobs))
		}
		// The torn tail must be gone from disk.
		if fi, err := os.Stat(p); err != nil || fi.Size() != firstLen {
			t.Fatalf("cut=%d: file size %d after recovery, want %d", cut, fi.Size(), firstLen)
		}
		// And the log must accept appends at the truncated boundary.
		if err := s2.AppendCoreCheckpoint("job-1", testCheckpoint(0)); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		s2.Close()
		s3 := openPath(t, p)
		if jobs := s3.Recovered(); len(jobs) != 1 || jobs[0].Core == nil || jobs[0].Core.Seq != 0 {
			t.Fatalf("cut=%d: append after recovery not replayed", cut)
		}
		s3.Close()
	}
}

// TestStoreBitFlip corrupts one payload byte of a committed (non-tail)
// record: recovery treats the mismatching frame as the start of the torn
// region and truncates it AND everything after it — prefix consistency,
// never a gap.
func TestStoreBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s := openPath(t, path)
	if err := s.AppendJobStart("job-1", []byte(`{}`), testModel()); err != nil {
		t.Fatal(err)
	}
	firstLen := fileSize(t, path)
	if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[firstLen+8+4] ^= 0x40 // one payload byte of the first checkpoint frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openPath(t, path)
	defer s2.Close()
	jobs := s2.Recovered()
	if len(jobs) != 1 || jobs[0].Core != nil {
		t.Fatalf("want job-1 with both checkpoints dropped, got %+v", jobs)
	}
	if got := fileSize(t, path); got != firstLen {
		t.Fatalf("file size %d after recovery, want %d", got, firstLen)
	}
}

// TestStoreOrphanDiscard replays a crashed generation that logged
// checkpoints 0 and 2 (1 lost in flight): the fold stops at the contiguous
// prefix, and after a resume marker the orphan seq-2 must not conflict
// with the resumed generation re-emitting seqs 1 and 2.
func TestStoreOrphanDiscard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s := openPath(t, path)
	if err := s.AppendJobStart("job-1", []byte(`{}`), testModel()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openPath(t, path)
	jobs := s2.Recovered()
	if jobs[0].Core == nil || jobs[0].Core.Seq != 0 {
		t.Fatalf("fold must stop at seq 0, got %+v", jobs[0].Core)
	}
	// Recovery fence + the resumed generation's re-emissions.
	if err := s2.AppendResumeMarker("job-1", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s2.AppendCoreCheckpoint("job-1", testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	if err := s2.AppendCoreCheckpoint("job-1", testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3 := openPath(t, path)
	defer s3.Close()
	jobs = s3.Recovered()
	if jobs[0].Core == nil || jobs[0].Core.Seq != 2 || len(jobs[0].Core.Outs) != 2 {
		t.Fatalf("resumed generation fold: %+v", jobs[0].Core)
	}
}

// TestStoreScratchMarker: a job with no committed checkpoint is restarted
// from scratch (marker seq −1) and the new generation re-emits from 0.
func TestStoreScratchMarker(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s := openPath(t, path)
	if err := s.AppendJobStart("job-1", []byte(`{}`), testModel()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResumeMarker("job-1", -1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openPath(t, path)
	defer s2.Close()
	if jobs := s2.Recovered(); jobs[0].Core == nil || jobs[0].Core.Seq != 0 {
		t.Fatalf("scratch marker fold: %+v", jobs[0].Core)
	}
}

// TestStoreRejectsForeignFile: a file that is not a job log must be
// refused, not silently truncated to nothing.
func TestStoreRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notalog")
	if err := os.WriteFile(path, []byte("definitely not a job log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a foreign file")
	}
}

// TestStoreTornMagic: a crash while writing the very first bytes leaves a
// strict prefix of the magic; recovery treats that as an empty log.
func TestStoreTornMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	if err := os.WriteFile(path, []byte(magic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openPath(t, path)
	defer s.Close()
	if len(s.Recovered()) != 0 {
		t.Fatal("torn magic should recover as empty")
	}
	if err := s.AppendJobStart("job-1", nil, testModel()); err != nil {
		t.Fatal(err)
	}
}

// TestStoreEventGapRejected: committed (CRC-valid) events with a seq gap
// are corruption, not a torn tail — replay must fail with a positioned
// error rather than resume with a silently incomplete stream.
func TestStoreEventGapRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s := openPath(t, path)
	if err := s.AppendJobStart("job-1", []byte(`{}`), testModel()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvent("job-1", EventRecord{Seq: 1, Type: "status"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(path); err == nil || !bytes.Contains([]byte(err.Error()), []byte("seq")) {
		t.Fatalf("want positioned seq error, got %v", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestStoreStragglersAfterTerminal: the dying generation's checkpoint and
// event callbacks can lose the append race against the watcher's terminal
// record. Such stragglers are valid committed frames; replay must treat
// the terminal document as authoritative and skip them, not fail the
// whole log.
func TestStoreStragglersAfterTerminal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s := openPath(t, path)
	if err := s.AppendJobStart("job-1", []byte(`{}`), testModel()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTerminal("job-1", TerminalRecord{State: "done", Doc: []byte(`{"id":"job-1"}`)}); err != nil {
		t.Fatal(err)
	}
	// Stragglers: a late shift commit and a late event.
	if err := s.AppendCoreCheckpoint("job-1", testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvent("job-1", EventRecord{Seq: 0, Type: "progress"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openPath(t, path)
	defer s2.Close()
	jobs := s2.Recovered()
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	j := jobs[0]
	if j.Terminal == nil || j.Terminal.State != "done" {
		t.Fatalf("terminal lost: %+v", j.Terminal)
	}
	if j.Core == nil || j.Core.Seq != 0 {
		t.Fatalf("pre-terminal checkpoint prefix lost: %+v", j.Core)
	}
	if len(j.Events) != 0 {
		t.Fatalf("straggler event applied: %+v", j.Events)
	}
}
