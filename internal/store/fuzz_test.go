package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// validLogBytes builds a small committed log in memory (via a real temp
// file) for seeding the fuzzers with structurally valid inputs.
func validLogBytes(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.log")
	s, err := Open(path)
	if err != nil {
		tb.Fatal(err)
	}
	m := testModel()
	s.AppendJobStart("job-1", []byte(`{"priority":"interactive"}`), m)
	s.AppendCoreCheckpoint("job-1", testCheckpoint(0))
	s.AppendCoreCheckpoint("job-1", testCheckpoint(1))
	s.AppendEvent("job-1", EventRecord{Seq: 0, Type: "status", Data: []byte(`{}`)})
	s.AppendResumeMarker("job-1", 1, 0)
	s.AppendTerminal("job-1", TerminalRecord{State: "done", Doc: []byte(`{}`)})
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzStoreReplay feeds arbitrary bytes through the recovery pipeline —
// magic check, frame scan (tail truncation decision), record decode,
// replay fold. The invariants under fuzzing: never panic; the committed
// region is a stable prefix (re-scanning it is a fixed point, so a second
// recovery of the truncated file replays identical state); a rejection is
// a positioned error, never a silently-wrong fold. The scan/replay pair is
// exactly what Open runs — the file plumbing around it (real truncate,
// reopen) is exercised by TestStoreTornTail's byte-by-byte sweep.
func FuzzStoreReplay(f *testing.F) {
	seed := validLogBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])      // torn tail
	f.Add(seed[:3])                // torn magic
	f.Add([]byte{})                // empty file
	f.Add([]byte("garbage bytes")) // foreign file
	flip := append([]byte(nil), seed...)
	flip[len(magic)+10] ^= 0x80 // bit-flipped frame
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		valid, frames, err := scanLog(data)
		if err != nil {
			return // foreign file, rejected cleanly
		}
		if valid > int64(len(data)) || (valid != 0 && valid < int64(len(magic))) {
			t.Fatalf("scan committed %d of %d bytes", valid, len(data))
		}
		// Truncation must be a fixed point: scanning the committed prefix
		// keeps everything.
		valid2, frames2, err := scanLog(data[:valid])
		if err != nil || valid2 != valid || len(frames2) != len(frames) {
			t.Fatalf("re-scan of committed prefix: valid %d→%d, frames %d→%d, err %v",
				valid, valid2, len(frames), len(frames2), err)
		}
		jobs1, err := replay(frames)
		if err != nil {
			return // positioned error is the correct rejection
		}
		jobs2, err := replay(frames2)
		if err != nil {
			t.Fatalf("second replay of identical frames failed: %v", err)
		}
		if len(jobs1) != len(jobs2) {
			t.Fatalf("replay not stable: %d then %d jobs", len(jobs1), len(jobs2))
		}
		for i := range jobs1 {
			if jobs1[i].ID != jobs2[i].ID || len(jobs1[i].Events) != len(jobs2[i].Events) ||
				(jobs1[i].Core == nil) != (jobs2[i].Core == nil) ||
				(jobs1[i].Terminal == nil) != (jobs2[i].Terminal == nil) {
				t.Fatalf("replay not stable for job %d: %+v vs %+v", i, jobs1[i], jobs2[i])
			}
			if jobs1[i].Core != nil && jobs1[i].Core.Seq != jobs2[i].Core.Seq {
				t.Fatalf("replay not stable: seq %d then %d", jobs1[i].Core.Seq, jobs2[i].Core.Seq)
			}
		}
	})
}

// FuzzRecordDecode frames arbitrary bytes as a single CRC-valid record and
// replays it: the decoder must reject or accept without panicking, and the
// allocation guards must hold even for hostile length prefixes (the 64 MiB
// -fuzzminimizelimit default would OOM long before the t.Fatal fires if a
// count guard regressed).
func FuzzRecordDecode(f *testing.F) {
	// Seed with each record type's valid payload, extracted from a real log.
	_, frames, err := scanLog(validLogBytes(f))
	if err != nil {
		f.Fatal(err)
	}
	for _, fr := range frames {
		f.Add(fr.payload)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 || len(payload) > maxRecord {
			t.Skip()
		}
		var log []byte
		log = append(log, magic...)
		log = binary.LittleEndian.AppendUint32(log, uint32(len(payload)))
		log = binary.LittleEndian.AppendUint32(log, crc32.Checksum(payload, castagnoli))
		log = append(log, payload...)

		valid, frames, err := scanLog(log)
		if err != nil {
			t.Fatalf("CRC-valid frame rejected by scan: %v", err)
		}
		if valid != int64(len(log)) || len(frames) != 1 {
			t.Fatalf("CRC-valid frame not committed: valid=%d frames=%d", valid, len(frames))
		}
		jobs, err := replay(frames)
		if err != nil {
			return // positioned error is the correct rejection
		}
		// Accepted: the record must have been a well-formed JobStart
		// (nothing else can stand alone), with a validated model.
		if len(jobs) != 1 || jobs[0].Model == nil || jobs[0].Model.Validate() != nil {
			t.Fatalf("replay accepted a standalone record without a valid model: %+v", jobs)
		}
	})
}
