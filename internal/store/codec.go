package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/passivity"
	"repro/internal/statespace"
)

// Record payload type tags (first payload byte). The tag space is append-
// only: a tag is never reused or renumbered, so an old log replays under a
// newer binary.
const (
	recJobStart          = 1 // job spec + model snapshot, written before submission
	recCoreCheckpoint    = 2 // one core.Checkpoint (eigensolver shift boundary)
	recEnforceCheckpoint = 3 // one passivity.EnforceCheckpoint (iteration boundary)
	recEvent             = 4 // one SSE event, seq-dense per job
	recResumeMarker      = 5 // recovery fence: the seq/iter the resumed run continues from
	recTerminal          = 6 // job reached a terminal state; final document snapshot
)

// enc is a little-endian append-only payload encoder. All integers are
// varints (zig-zag for signed), floats are IEEE-754 bit images — float
// identity survives the round trip exactly, which the resume bit-identity
// guarantee depends on.
type enc struct {
	buf []byte
}

func (e *enc) u8(v byte)     { e.buf = append(e.buf, v) }
func (e *enc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}
func (e *enc) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *enc) c128(v complex128) {
	e.f64(real(v))
	e.f64(imag(v))
}
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) f64s(v []float64) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// dec is the matching payload decoder. It never panics on malformed input:
// every read checks bounds, element counts are validated against the bytes
// actually remaining before any allocation, and the first failure latches
// an error that subsequent reads pass through (callers check err once at
// the end).
type dec struct {
	data []byte
	off  int
	err  error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("byte %d: "+format, append([]any{d.off}, args...)...)
	}
}

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail("truncated payload")
		return 0
	}
	v := d.data[d.off]
	d.off++
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// count reads an element count and rejects it unless elemSize*count bytes
// could still follow — the allocation guard that keeps a hostile length
// prefix from allocating gigabytes before the bounds check would fail.
func (d *dec) count(elemSize int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if rem := len(d.data) - d.off; elemSize > 0 && v > uint64(rem/elemSize) {
		d.fail("element count %d exceeds remaining payload", v)
		return 0
	}
	return int(v)
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

func (d *dec) c128() complex128 {
	re := d.f64()
	im := d.f64()
	return complex(re, im)
}

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) bytes() []byte {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	v := append([]byte(nil), d.data[d.off:d.off+n]...)
	d.off += n
	return v
}

func (d *dec) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	v := string(d.data[d.off : d.off+n])
	d.off += n
	return v
}

func (d *dec) f64s() []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

// finish fails if decodable bytes remain: a CRC-valid payload with trailing
// garbage means an encoder/decoder mismatch, not a torn write.
func (d *dec) finish() error {
	if d.err == nil && d.off != len(d.data) {
		d.fail("%d trailing bytes after record", len(d.data)-d.off)
	}
	return d.err
}

// --- model codec -----------------------------------------------------------

func encodeModel(e *enc, m *statespace.Model) {
	e.uvarint(uint64(m.P))
	encodeDense(e, m.D)
	e.uvarint(uint64(len(m.Cols)))
	for k := range m.Cols {
		col := &m.Cols[k]
		e.uvarint(uint64(len(col.Blocks)))
		for _, b := range col.Blocks {
			e.uvarint(uint64(b.Size))
			e.f64(b.Sigma)
			e.f64(b.Omega)
			e.f64(b.B1)
			e.f64(b.B2)
		}
		encodeDense(e, col.C)
	}
}

func decodeModel(d *dec) *statespace.Model {
	m := &statespace.Model{P: int(d.uvarint())}
	m.D = decodeDense(d)
	nc := d.count(1)
	if d.err != nil {
		return nil
	}
	m.Cols = make([]statespace.Column, nc)
	for k := range m.Cols {
		nb := d.count(1)
		if d.err != nil {
			return nil
		}
		m.Cols[k].Blocks = make([]statespace.Block, nb)
		for i := range m.Cols[k].Blocks {
			b := &m.Cols[k].Blocks[i]
			b.Size = int(d.uvarint())
			b.Sigma = d.f64()
			b.Omega = d.f64()
			b.B1 = d.f64()
			b.B2 = d.f64()
		}
		m.Cols[k].C = decodeDense(d)
	}
	if d.err != nil {
		return nil
	}
	if err := m.Validate(); err != nil {
		d.fail("decoded model invalid: %v", err)
		return nil
	}
	return m
}

func encodeDense(e *enc, m *mat.Dense) {
	e.uvarint(uint64(m.Rows))
	e.uvarint(uint64(m.Cols))
	for _, v := range m.Data {
		e.f64(v)
	}
}

func decodeDense(d *dec) *mat.Dense {
	rows := d.count(1)
	cols := d.count(1)
	if d.err != nil {
		return nil
	}
	if rows > 0 && cols > (len(d.data)-d.off)/(8*rows) {
		d.fail("dense %d×%d exceeds remaining payload", rows, cols)
		return nil
	}
	m := mat.NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = d.f64()
	}
	return m
}

// --- checkpoint codecs -----------------------------------------------------

func encodeCoreCheckpoint(e *enc, ck *core.Checkpoint) {
	e.varint(int64(ck.Seq))
	e.f64(ck.OmegaMax)
	e.varint(int64(ck.NextID))
	e.varint(int64(ck.Completed))
	e.varint(int64(ck.TentativeDeleted))
	e.bool(ck.Out != nil)
	if ck.Out != nil {
		encodeShift(e, ck.Out)
	}
	e.uvarint(uint64(len(ck.Tentative)))
	for i := range ck.Tentative {
		iv := &ck.Tentative[i]
		e.varint(int64(iv.ID))
		e.f64(iv.Lo)
		e.f64(iv.Hi)
		e.f64(iv.Shift)
		e.bool(iv.EdgeLeft)
		e.bool(iv.EdgeRite)
	}
}

func decodeCoreCheckpoint(d *dec) core.Checkpoint {
	ck := core.Checkpoint{
		Seq:              int(d.varint()),
		OmegaMax:         d.f64(),
		NextID:           int(d.varint()),
		Completed:        int(d.varint()),
		TentativeDeleted: int(d.varint()),
	}
	if d.bool() {
		out := decodeShift(d)
		ck.Out = &out
	}
	n := d.count(1)
	if d.err != nil {
		return ck
	}
	ck.Tentative = make([]core.IntervalCheckpoint, n)
	for i := range ck.Tentative {
		iv := &ck.Tentative[i]
		iv.ID = int(d.varint())
		iv.Lo = d.f64()
		iv.Hi = d.f64()
		iv.Shift = d.f64()
		iv.EdgeLeft = d.bool()
		iv.EdgeRite = d.bool()
	}
	return ck
}

func encodeShift(e *enc, s *core.ShiftCheckpoint) {
	e.f64(s.Omega)
	e.f64(s.Radius)
	e.varint(int64(s.Worker))
	e.uvarint(uint64(len(s.Eigenvalues)))
	for _, z := range s.Eigenvalues {
		e.c128(z)
	}
	e.f64s(s.ResidualsM)
	e.varint(int64(s.Restarts))
	e.varint(int64(s.OpApplies))
}

func decodeShift(d *dec) core.ShiftCheckpoint {
	s := core.ShiftCheckpoint{
		Omega:  d.f64(),
		Radius: d.f64(),
		Worker: int(d.varint()),
	}
	n := d.count(16)
	if d.err != nil {
		return s
	}
	s.Eigenvalues = make([]complex128, n)
	for i := range s.Eigenvalues {
		s.Eigenvalues[i] = d.c128()
	}
	s.ResidualsM = d.f64s()
	s.Restarts = int(d.varint())
	s.OpApplies = int(d.varint())
	return s
}

func encodeEnforceCheckpoint(e *enc, ck *passivity.EnforceCheckpoint) {
	e.varint(int64(ck.Iter))
	e.f64(ck.Cumulative)
	e.f64(ck.CarriedOmegaMax)
	e.bool(ck.Carried)
	e.f64(ck.InitialWorst)
	e.varint(int64(ck.SolverTotals.ShiftsProcessed))
	e.varint(int64(ck.SolverTotals.TentativeDeleted))
	e.varint(int64(ck.SolverTotals.Restarts))
	e.varint(int64(ck.SolverTotals.OpApplies))
	e.varint(int64(ck.SolverTotals.Elapsed))
	e.f64s(ck.LastCrossings)
	e.uvarint(uint64(len(ck.Residues)))
	for _, r := range ck.Residues {
		e.f64s(r)
	}
}

func decodeEnforceCheckpoint(d *dec) passivity.EnforceCheckpoint {
	ck := passivity.EnforceCheckpoint{
		Iter:            int(d.varint()),
		Cumulative:      d.f64(),
		CarriedOmegaMax: d.f64(),
		Carried:         d.bool(),
		InitialWorst:    d.f64(),
	}
	ck.SolverTotals = core.Stats{
		ShiftsProcessed:  int(d.varint()),
		TentativeDeleted: int(d.varint()),
		Restarts:         int(d.varint()),
		OpApplies:        int(d.varint()),
		Elapsed:          time.Duration(d.varint()),
	}
	ck.LastCrossings = d.f64s()
	n := d.count(1)
	if d.err != nil {
		return ck
	}
	ck.Residues = make([][]float64, n)
	for i := range ck.Residues {
		ck.Residues[i] = d.f64s()
	}
	return ck
}
