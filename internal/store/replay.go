package store

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/passivity"
	"repro/internal/statespace"
)

// JobState is one job reconstructed from the log: everything the server
// needs to either serve the job's history (terminal jobs) or re-submit it
// seeded from its last checkpoint (incomplete jobs).
type JobState struct {
	// ID is the job's registry ID ("job-1", …).
	ID string
	// Spec is the server's persisted spec snapshot, verbatim.
	Spec []byte
	// Model is the exact model the job runs on.
	Model *statespace.Model
	// Events are the job's persisted stream events, seq-dense from 0.
	Events []EventRecord
	// Terminal is non-nil once the job finished; no resume is needed.
	Terminal *TerminalRecord
	// Core is the fold of the job's contiguous eigensolver checkpoint
	// prefix, nil if no checkpoint committed (resume from scratch).
	Core *core.ResumeState
	// Enforce is the job's last enforcement iteration boundary, nil if
	// none committed.
	Enforce *passivity.EnforceCheckpoint

	// nextSeq / pending are replay scratch: the contiguous-prefix fold
	// cursor and the out-of-order checkpoints waiting for their
	// predecessors.
	nextSeq int
	pending map[int]core.Checkpoint
}

// replay folds the committed frames into per-job states. Frames are
// CRC-valid by construction here, so every failure is a positioned hard
// error (encoder bug, version skew, or in-place corruption) — never
// something to truncate away.
func replay(frames []frame) ([]*JobState, error) {
	byID := make(map[string]*JobState)
	var order []*JobState
	for _, fr := range frames {
		d := &dec{data: fr.payload}
		tag := d.u8()
		id := ""
		if tag != 0 {
			id = d.str()
		}
		if d.err != nil {
			return nil, posErr(fr, d.err)
		}
		js := byID[id]
		if tag != recJobStart {
			if js == nil {
				return nil, posErr(fr, fmt.Errorf("record type %d for unknown job %q", tag, id))
			}
			if js.Terminal != nil {
				// Late stragglers: checkpoint and event callbacks run on
				// worker goroutines and can append after the watcher's
				// terminal record (the appends themselves are valid and
				// CRC-committed, they just lost the race). The terminal
				// document is authoritative, so everything after it for
				// this job is skipped, never an error.
				continue
			}
		}
		switch tag {
		case recJobStart:
			if js != nil {
				return nil, posErr(fr, fmt.Errorf("duplicate job %q", id))
			}
			js = &JobState{
				ID:      id,
				Spec:    d.bytes(),
				Model:   decodeModel(d),
				pending: make(map[int]core.Checkpoint),
			}
			if err := d.finish(); err != nil {
				return nil, posErr(fr, err)
			}
			byID[id] = js
			order = append(order, js)
		case recCoreCheckpoint:
			ck := decodeCoreCheckpoint(d)
			if err := d.finish(); err != nil {
				return nil, posErr(fr, err)
			}
			if err := js.applyCheckpoint(ck); err != nil {
				return nil, posErr(fr, err)
			}
		case recEnforceCheckpoint:
			ck := decodeEnforceCheckpoint(d)
			if err := d.finish(); err != nil {
				return nil, posErr(fr, err)
			}
			// Self-contained snapshots: the last one wins.
			js.Enforce = &ck
		case recEvent:
			ev := EventRecord{Seq: int(d.varint())}
			ev.Type = d.str()
			ev.Data = d.bytes()
			if err := d.finish(); err != nil {
				return nil, posErr(fr, err)
			}
			if ev.Seq != len(js.Events) {
				return nil, posErr(fr, fmt.Errorf("job %q event seq %d, want %d", id, ev.Seq, len(js.Events)))
			}
			js.Events = append(js.Events, ev)
		case recResumeMarker:
			fromSeq := int(d.varint())
			fromIter := int(d.varint())
			if err := d.finish(); err != nil {
				return nil, posErr(fr, err)
			}
			if err := js.applyMarker(fromSeq, fromIter); err != nil {
				return nil, posErr(fr, err)
			}
		case recTerminal:
			tr := TerminalRecord{State: d.str(), Doc: d.bytes()}
			if err := d.finish(); err != nil {
				return nil, posErr(fr, err)
			}
			js.Terminal = &tr
		default:
			return nil, posErr(fr, fmt.Errorf("unknown record type %d", tag))
		}
	}
	for _, js := range order {
		js.pending = nil
	}
	return order, nil
}

// posErr wraps a replay failure with the frame's file offset.
func posErr(fr frame, err error) error {
	return fmt.Errorf("store: record at offset %d: %w", fr.off, err)
}

// applyCheckpoint folds one eigensolver checkpoint. Seqs may be logged out
// of order (the emitting callbacks run outside the scheduler lock), so the
// fold advances only along the contiguous prefix and parks the rest.
func (js *JobState) applyCheckpoint(ck core.Checkpoint) error {
	if ck.Seq < js.nextSeq {
		return fmt.Errorf("job %q checkpoint seq %d replays committed prefix (next %d)", js.ID, ck.Seq, js.nextSeq)
	}
	if _, dup := js.pending[ck.Seq]; dup {
		return fmt.Errorf("job %q duplicate checkpoint seq %d", js.ID, ck.Seq)
	}
	js.pending[ck.Seq] = ck
	for {
		next, ok := js.pending[js.nextSeq]
		if !ok {
			return nil
		}
		delete(js.pending, js.nextSeq)
		if js.Core == nil {
			js.Core = &core.ResumeState{}
		}
		js.Core.Apply(next)
		js.nextSeq++
	}
}

// applyMarker fences a recovery generation: the marker asserts which
// prefix the resumed run was seeded from, and everything parked beyond it
// is a crashed generation's orphan, discarded so it cannot collide with
// the seqs the new generation re-emits.
func (js *JobState) applyMarker(fromSeq, fromIter int) error {
	switch {
	case fromSeq == -1:
		// Scratch restart: the new generation re-emits from seq 0.
		js.Core = nil
		js.nextSeq = 0
		js.pending = make(map[int]core.Checkpoint)
	case fromSeq == js.nextSeq-1:
		js.pending = make(map[int]core.Checkpoint)
	default:
		return fmt.Errorf("job %q resume marker seq %d, but folded prefix ends at %d", js.ID, fromSeq, js.nextSeq-1)
	}
	switch {
	case fromIter == 0:
		js.Enforce = nil
	case js.Enforce == nil || js.Enforce.Iter != fromIter:
		have := 0
		if js.Enforce != nil {
			have = js.Enforce.Iter
		}
		return fmt.Errorf("job %q resume marker iteration %d, but last committed is %d", js.ID, fromIter, have)
	}
	return nil
}
