package store

import (
	"repro/internal/core"
	"repro/internal/passivity"
	"repro/internal/statespace"
)

// EventRecord is one persisted server-sent event of a job. Seqs are dense
// per job (0, 1, 2, …) in log order — the stream publishes under its lock,
// so log order IS seq order, and replay verifies it.
type EventRecord struct {
	// Seq is the event's position in the job's stream.
	Seq int
	// Type is the SSE event name (e.g. "progress", "crossing", "done").
	Type string
	// Data is the event's JSON payload, stored verbatim.
	Data []byte
}

// TerminalRecord marks a job finished: no record of the job follows it.
type TerminalRecord struct {
	// State is the job's final registry state ("done", "failed", "canceled").
	State string
	// Doc is the final job document JSON, stored verbatim so a restarted
	// daemon serves exactly the bytes the original run produced.
	Doc []byte
}

// AppendJobStart records a job's admission: its ID, the server's spec
// snapshot (opaque JSON the server re-parses on recovery), and the exact
// model the solve runs on. Written — and synced — before the job is
// submitted, so every later record of the ID has a parent.
func (s *Store) AppendJobStart(id string, spec []byte, m *statespace.Model) error {
	var e enc
	e.u8(recJobStart)
	e.str(id)
	e.bytes(spec)
	encodeModel(&e, m)
	return s.append(e.buf)
}

// AppendCoreCheckpoint records one eigensolver checkpoint of the job (see
// core.Checkpoint for the prefix-replay semantics).
func (s *Store) AppendCoreCheckpoint(id string, ck core.Checkpoint) error {
	var e enc
	e.u8(recCoreCheckpoint)
	e.str(id)
	encodeCoreCheckpoint(&e, &ck)
	return s.append(e.buf)
}

// AppendEnforceCheckpoint records one enforcement iteration boundary (see
// passivity.EnforceCheckpoint; last record wins on replay).
func (s *Store) AppendEnforceCheckpoint(id string, ck passivity.EnforceCheckpoint) error {
	var e enc
	e.u8(recEnforceCheckpoint)
	e.str(id)
	encodeEnforceCheckpoint(&e, &ck)
	return s.append(e.buf)
}

// AppendEvent records one stream event. Callers must append events of a
// job in seq order (the server's stream sink runs under the stream lock).
func (s *Store) AppendEvent(id string, ev EventRecord) error {
	var e enc
	e.u8(recEvent)
	e.str(id)
	e.varint(int64(ev.Seq))
	e.str(ev.Type)
	e.bytes(ev.Data)
	return s.append(e.buf)
}

// AppendResumeMarker fences a recovery: it records that the job is being
// re-submitted from eigensolver checkpoint seq fromSeq (-1: from scratch)
// and enforcement iteration fromIter (0: from scratch). Checkpoints from
// the crashed generation with seqs beyond the marker are orphans past the
// contiguous prefix; replay discards them so they can never collide with
// the seqs the resumed generation re-emits.
func (s *Store) AppendResumeMarker(id string, fromSeq, fromIter int) error {
	var e enc
	e.u8(recResumeMarker)
	e.str(id)
	e.varint(int64(fromSeq))
	e.varint(int64(fromIter))
	return s.append(e.buf)
}

// AppendTerminal records the job's final state and document snapshot.
func (s *Store) AppendTerminal(id string, tr TerminalRecord) error {
	var e enc
	e.u8(recTerminal)
	e.str(id)
	e.str(tr.State)
	e.bytes(tr.Doc)
	return s.append(e.buf)
}
