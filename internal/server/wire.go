package server

import (
	"math"

	"repro/internal/passivity"
)

// ReportDoc is the wire form of a passivity characterization. The
// deterministic sections (Passive, Crossings, Bands, OmegaMax, Backend,
// HalfPath) round-trip through JSON bit-exactly — encoding/json emits
// shortest-round-trip float64 — so a report fetched over HTTP can be
// gob-compared against a direct in-process run. Solver is schedule-
// dependent telemetry (shift counts vary with worker timing) and is
// excluded from such comparisons.
type ReportDoc struct {
	Passive   bool      `json:"passive"`
	Crossings []float64 `json:"crossings"`
	Bands     []BandDoc `json:"bands"`
	OmegaMax  float64   `json:"omega_max"`
	Backend   string    `json:"backend"`
	HalfPath  bool      `json:"half_path"`
	Solver    SolverDoc `json:"solver"`
}

// BandDoc is one singular-value band. Hi is nil for the unbounded
// terminal band (JSON has no +Inf).
type BandDoc struct {
	Lo        float64  `json:"lo"`
	Hi        *float64 `json:"hi,omitempty"`
	PeakOmega float64  `json:"peak_omega"`
	PeakSigma float64  `json:"peak_sigma"`
	Violating bool     `json:"violating"`
}

// SolverDoc summarizes the solver work counters (schedule-dependent).
type SolverDoc struct {
	ShiftsProcessed  int   `json:"shifts_processed"`
	TentativeDeleted int   `json:"tentative_deleted"`
	Restarts         int   `json:"restarts"`
	OpApplies        int   `json:"op_applies"`
	ElapsedNS        int64 `json:"elapsed_ns"`
}

// EnforceDoc summarizes an enforcement run alongside its final report.
type EnforceDoc struct {
	Iterations    int     `json:"iterations"`
	InitialWorst  float64 `json:"initial_worst"`
	FinalWorst    float64 `json:"final_worst"`
	ResidueChange float64 `json:"residue_change"`
}

// NewReportDoc converts an in-process report to its wire form.
func NewReportDoc(r *passivity.Report) *ReportDoc {
	doc := &ReportDoc{
		Passive:   r.Passive,
		Crossings: append([]float64(nil), r.Crossings...),
		Bands:     make([]BandDoc, len(r.Bands)),
		OmegaMax:  r.OmegaMax,
		Backend:   r.Backend.String(),
		HalfPath:  r.HalfPath,
		Solver: SolverDoc{
			ShiftsProcessed:  r.Solver.ShiftsProcessed,
			TentativeDeleted: r.Solver.TentativeDeleted,
			Restarts:         r.Solver.Restarts,
			OpApplies:        r.Solver.OpApplies,
			ElapsedNS:        r.Solver.Elapsed.Nanoseconds(),
		},
	}
	for i, b := range r.Bands {
		bd := BandDoc{
			Lo:        b.Lo,
			PeakOmega: b.PeakOmega,
			PeakSigma: b.PeakSigma,
			Violating: b.Violating,
		}
		if !math.IsInf(b.Hi, 1) {
			hi := b.Hi
			bd.Hi = &hi
		}
		doc.Bands[i] = bd
	}
	return doc
}

// progressDoc is the SSE "progress" event payload (one per completed
// compute task of a watched phase).
type progressDoc struct {
	Phase  string  `json:"phase"`
	Omega  float64 `json:"omega"`
	Radius float64 `json:"radius,omitempty"`
	Done   int     `json:"done"`
	Total  int     `json:"total"`
}

// crossingDoc is the SSE "crossing" event payload: one tentative unit
// crossing, emitted as the solver certifies the disk containing it. The
// certified list arrives only with the terminal report.
type crossingDoc struct {
	Omega     float64 `json:"omega"`
	Tentative bool    `json:"tentative"`
}

// jobDoc is the GET /v1/jobs/{id} (and list/terminal-event) document.
type jobDoc struct {
	ID      string      `json:"id"`
	State   string      `json:"state"`
	Error   string      `json:"error,omitempty"`
	Report  *ReportDoc  `json:"report,omitempty"`
	Enforce *EnforceDoc `json:"enforce,omitempty"`
}

// statusDoc is the GET /status document.
type statusDoc struct {
	Draining   bool                 `json:"draining"`
	Workers    int                  `json:"workers"`
	QueueDepth int                  `json:"queue_depth"`
	Admission  admissionDoc         `json:"admission"`
	Phases     map[string]phaseDoc  `json:"phases"`
	ShiftCache shiftCacheDoc        `json:"shift_cache"`
	Jobs       []jobDoc             `json:"jobs"`
	// StoreError surfaces a latched durable-store write failure: the
	// daemon keeps serving, but checkpoints are no longer being committed.
	StoreError string `json:"store_error,omitempty"`
}

type admissionDoc struct {
	Used     int `json:"used"`
	Capacity int `json:"capacity"` // 0 = unbounded
}

type phaseDoc struct {
	Tasks  int   `json:"tasks"`
	BusyNS int64 `json:"busy_ns"`
}

type shiftCacheDoc struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// errorDoc is every non-2xx JSON body.
type errorDoc struct {
	Error string `json:"error"`
}
