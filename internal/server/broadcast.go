package server

import (
	"context"
	"sync"
)

// Event is one entry in a job's append-only event log: a monotonically
// increasing sequence number (the SSE id), an SSE event type, and the
// already-encoded data payload.
type Event struct {
	Seq  int
	Type string
	Data []byte
}

// Stream is the per-job SSE broadcaster: an append-only event log with
// replay. Publishers append and never block; each subscriber walks the
// log at its own pace via Next, so a slow SSE client can never stall a
// pool worker emitting progress events, and a subscriber that connects
// late (or reconnects) replays the full history before tailing live
// events. Close marks the log complete; Next then drains the remaining
// buffered events and reports end-of-stream.
//
// All methods are safe for concurrent use.
type Stream struct {
	mu      sync.Mutex
	events  []Event
	closed  bool
	changed chan struct{} // closed and replaced on every append/Close
	sink    func(Event)   // persistence hook, called under mu per append
}

// NewStream returns an empty open stream.
func NewStream() *Stream {
	return &Stream{changed: make(chan struct{})}
}

// NewStreamSink returns an empty open stream that hands every published
// event to sink. The sink runs inside the same critical section that
// assigns the event's sequence number, so the durable log receives events
// in exactly seq order — the invariant the store's replay verifies. The
// sink must not call back into the stream.
func NewStreamSink(sink func(Event)) *Stream {
	return &Stream{changed: make(chan struct{}), sink: sink}
}

// NewStreamFrom returns a stream preloaded with replayed events (their
// Seq fields must already be dense from 0, as store replay guarantees):
// subscribers replay the persisted history exactly as if they had been
// connected all along, and new events continue the numbering. closed
// preloads a completed log; sink follows NewStreamSink and applies only
// to newly published events.
func NewStreamFrom(events []Event, closed bool, sink func(Event)) *Stream {
	return &Stream{changed: make(chan struct{}), events: events, closed: closed, sink: sink}
}

// Publish appends one event. Publishing to a closed stream is a no-op:
// terminal events are final, and racing progress callbacks that lose the
// race against job completion must not resurrect a finished log.
func (s *Stream) Publish(typ string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publishLocked(typ, data)
}

// PublishFinal atomically appends a terminal event and closes the stream,
// so no other publisher can slip an event after the terminal one.
func (s *Stream) PublishFinal(typ string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publishLocked(typ, data)
	s.closeLocked()
}

func (s *Stream) publishLocked(typ string, data []byte) {
	if s.closed {
		return
	}
	ev := Event{Seq: len(s.events), Type: typ, Data: data}
	s.events = append(s.events, ev)
	if s.sink != nil {
		s.sink(ev)
	}
	close(s.changed)
	s.changed = make(chan struct{})
}

// Close marks the stream complete without a terminal event (used when a
// job is torn down abnormally). Closing twice is a no-op.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeLocked()
}

func (s *Stream) closeLocked() {
	if s.closed {
		return
	}
	s.closed = true
	close(s.changed)
	s.changed = make(chan struct{})
}

// Len returns the number of events published so far.
func (s *Stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Next returns the event at index i, blocking until it exists. ok=false
// means the stream closed and every buffered event at or before i has
// been handed out — the subscriber has seen the complete log. A context
// error is returned when the subscriber gives up waiting.
func (s *Stream) Next(ctx context.Context, i int) (ev Event, ok bool, err error) {
	for {
		s.mu.Lock()
		if i < len(s.events) {
			ev := s.events[i]
			s.mu.Unlock()
			return ev, true, nil
		}
		if s.closed {
			s.mu.Unlock()
			return Event{}, false, nil
		}
		changed := s.changed
		s.mu.Unlock()
		select {
		case <-changed:
		case <-ctx.Done():
			return Event{}, false, ctx.Err()
		}
	}
}
