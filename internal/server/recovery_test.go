// Restart-recovery battery: every test builds a crash image — a byte
// prefix of a finished daemon's durable job log, which is exactly what a
// SIGKILL at that point would have left on disk — and stands a second
// daemon up over it. Recovered terminal jobs must serve their persisted
// documents verbatim; recovered incomplete jobs must resume from their
// last checkpoint and finish with a report bit-identical to the
// uninterrupted run's, doing strictly less eigensolver work than a cold
// start.
package server_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/server"
	"repro/internal/store"
)

// Record tags of the store's framing (see internal/store: each frame
// payload leads with a one-byte record tag).
const (
	tagJobStart       = 1
	tagCoreCheckpoint = 2
	tagEvent          = 4
	tagResumeMarker   = 5
	tagTerminal       = 6
)

// storedDaemon is one daemon generation over a durable store.
type storedDaemon struct {
	srv *server.Server
	ts  *httptest.Server
	eng *repro.Fleet
	st  *store.Store
}

func (d *storedDaemon) close() {
	d.ts.Close()
	d.eng.Close()
	d.st.Close()
}

// newStoredDaemon stands a daemon generation up over the log at path.
func newStoredDaemon(t *testing.T, path string, workers int) *storedDaemon {
	t.Helper()
	st, err := store.Open(path)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	eng := repro.NewFleetEngine(repro.FleetOptions{Workers: workers})
	srv := server.New(server.Config{Engine: eng, Store: st})
	return &storedDaemon{srv: srv, ts: httptest.NewServer(srv), eng: eng, st: st}
}

// logFrame is one parsed frame of the store log.
type logFrame struct {
	end int // byte offset just past this frame
	tag byte
}

// parseLog walks the log's framing (8-byte magic, then [len][crc][payload]
// frames) without decoding payloads. Any byte prefix of the file cut at a
// frame boundary is a valid crash image.
func parseLog(t *testing.T, data []byte) []logFrame {
	t.Helper()
	if len(data) < 8 {
		t.Fatalf("store file too short: %d bytes", len(data))
	}
	off := 8
	var frames []logFrame
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+8+n > len(data) {
			break
		}
		frames = append(frames, logFrame{end: off + 8 + n, tag: data[off+8]})
		off += 8 + n
	}
	return frames
}

// countTag counts frames with the given tag, optionally only past the
// last resume marker (the current generation's records).
func countTag(frames []logFrame, tag byte, afterLastMarker bool) int {
	start := 0
	if afterLastMarker {
		for i, fr := range frames {
			if fr.tag == tagResumeMarker {
				start = i + 1
			}
		}
	}
	n := 0
	for _, fr := range frames[start:] {
		if fr.tag == tag {
			n++
		}
	}
	return n
}

// writePrefix writes the crash image data[:end] to a fresh log path.
func writePrefix(t *testing.T, dir, name string, data []byte, end int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data[:end], 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRecoveryFromCrashImages is the server-level resume battery. One
// uninterrupted run produces the reference report and the full log; three
// crash images cut from it — right after admission, mid-solve after the
// second checkpoint, and just before the terminal record — each recover
// on a fresh daemon to a report gob-identical to the reference.
func TestRecoveryFromCrashImages(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.log")
	a := newStoredDaemon(t, pathA, 2)
	spec := shrunkCaseSpec(t, 2)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	status, v := post(t, a.ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	ref := waitTerminal(t, a.ts.URL, v.ID)
	if ref.State != "done" || ref.Report == nil {
		t.Fatalf("reference job ended %q err %q", ref.State, ref.Error)
	}
	a.close()

	data, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	frames := parseLog(t, data)
	if frames[0].tag != tagJobStart {
		t.Fatalf("log does not start with a job-start record (tag %d)", frames[0].tag)
	}
	// The final checkpoint callback can race the watcher's terminal append,
	// so the terminal record is near — not necessarily at — the log's end.
	terminalIdx := -1
	for i, fr := range frames {
		if fr.tag == tagTerminal {
			terminalIdx = i
			break
		}
	}
	if terminalIdx < 1 {
		t.Fatal("uninterrupted log has no terminal record")
	}
	totalCks := countTag(frames, tagCoreCheckpoint, false)
	if totalCks < 4 {
		t.Fatalf("reference run committed only %d checkpoints; need a longer solve", totalCks)
	}

	// Cut points: after admission (scratch resume), after the 2nd shift
	// checkpoint (mid-solve resume), and one frame short of the terminal
	// record (terminal synthesis from the persisted report event).
	admission := frames[0].end
	nCk := 0
	midSolve := 0
	for _, fr := range frames {
		if fr.tag == tagCoreCheckpoint {
			if nCk++; nCk == 2 {
				midSolve = fr.end
				break
			}
		}
	}
	preTerminal := frames[terminalIdx-1].end

	scenarios := []struct {
		name string
		cut  int
		// maxNewCks bounds the resumed generation's checkpoint count
		// (-1 = no bound).
		maxNewCks int
		// wantMarker: the recovery re-submitted the job (vs serving it
		// terminal straight from the log).
		wantMarker bool
	}{
		{name: "scratch", cut: admission, maxNewCks: -1, wantMarker: true},
		{name: "mid-solve", cut: midSolve, maxNewCks: totalCks - 1, wantMarker: true},
		{name: "pre-terminal", cut: preTerminal, maxNewCks: -1, wantMarker: false},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			path := writePrefix(t, dir, sc.name+".log", data, sc.cut)
			b := newStoredDaemon(t, path, 2)
			defer b.close()
			if n := b.srv.RecoveredJobs(); n != 1 {
				t.Fatalf("recovered %d jobs, want 1", n)
			}
			got := waitTerminal(t, b.ts.URL, v.ID)
			if got.State != "done" || got.Report == nil {
				t.Fatalf("recovered job ended %q err %q", got.State, got.Error)
			}
			if !bytes.Equal(gobBytes(t, sansSolver(*got.Report)), gobBytes(t, sansSolver(*ref.Report))) {
				t.Fatal("recovered report not bit-identical to the uninterrupted run")
			}
			final := parseLog(t, mustRead(t, path))
			// Straggler checkpoints can trail the terminal append here too,
			// so assert presence, not position.
			if countTag(final, tagTerminal, false) == 0 {
				t.Fatal("recovered generation did not write a terminal record")
			}
			markers := countTag(final, tagResumeMarker, false)
			if sc.wantMarker && markers == 0 {
				t.Fatal("resumed generation wrote no resume marker")
			}
			if !sc.wantMarker {
				// Terminal recovery re-submits nothing: the healed log is
				// the crash image plus exactly one terminal record.
				if markers != 0 {
					t.Fatal("terminal recovery should not re-submit the job")
				}
				prefixFrames := parseLog(t, data[:sc.cut])
				if len(final) != len(prefixFrames)+1 {
					t.Fatalf("terminal heal wrote %d frames over a %d-frame image, want exactly one",
						len(final)-len(prefixFrames), len(prefixFrames))
				}
			}
			newCks := countTag(final, tagCoreCheckpoint, true)
			if sc.maxNewCks >= 0 && newCks > sc.maxNewCks {
				t.Fatalf("resumed generation committed %d checkpoints, want ≤ %d (strictly less work than the %d-checkpoint cold run)",
					newCks, sc.maxNewCks, totalCks)
			}

			// The healed log must itself recover cleanly: a third
			// generation serves the job terminal with the same report.
			c := newStoredDaemon(t, path, 2)
			defer c.close()
			third := getJob(t, c.ts.URL, v.ID)
			if third.State != "done" || third.Report == nil ||
				!bytes.Equal(gobBytes(t, sansSolver(*third.Report)), gobBytes(t, sansSolver(*ref.Report))) {
				t.Fatalf("third generation state %q: terminal replay diverged", third.State)
			}
		})
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRecoverySSEContinuity: an SSE client that lost its connection in
// the crash reconnects to the restarted daemon with ?after= and must see
// a gapless continuation — replayed persisted events first, then the
// resumed generation's live events, sequential ids throughout, exactly
// one terminal event.
func TestRecoverySSEContinuity(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.log")
	a := newStoredDaemon(t, pathA, 2)
	spec := shrunkCaseSpec(t, 2)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	status, v := post(t, a.ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	if got := waitTerminal(t, a.ts.URL, v.ID); got.State != "done" {
		t.Fatalf("reference job ended %q err %q", got.State, got.Error)
	}
	a.close()

	data := mustRead(t, pathA)
	frames := parseLog(t, data)
	// Cut after the 3rd persisted event: the reconnecting client has seen
	// events 0..2 when the daemon dies.
	nEv, cut := 0, 0
	for _, fr := range frames {
		if fr.tag == tagEvent {
			if nEv++; nEv == 3 {
				cut = fr.end
				break
			}
		}
	}
	if cut == 0 {
		t.Fatalf("only %d persisted events in reference log", nEv)
	}
	path := writePrefix(t, dir, "b.log", data, cut)
	b := newStoredDaemon(t, path, 2)
	defer b.close()

	// Full replay from 0 across the restart.
	resp, err := http.Get(b.ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(events) <= 3 {
		t.Fatalf("stream has %d events, want the crashed generation's 3 plus the resumed run's", len(events))
	}
	terminals := 0
	for i, ev := range events {
		if ev.id != i {
			t.Fatalf("event %d has id %d: seq numbering broke across the restart", i, ev.id)
		}
		if ev.typ == "report" || ev.typ == "error" || ev.typ == "canceled" {
			terminals++
			if i != len(events)-1 {
				t.Fatalf("terminal event at %d of %d", i, len(events))
			}
		}
	}
	if terminals != 1 {
		t.Fatalf("%d terminal events, want exactly 1", terminals)
	}

	// Reconnect with ?after=2 (the client's last seen id): replay must
	// start exactly at 3, no gap, no duplicates.
	resp, err = http.Get(b.ts.URL + "/v1/jobs/" + v.ID + "/events?after=2")
	if err != nil {
		t.Fatal(err)
	}
	tail := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(tail) != len(events)-3 {
		t.Fatalf("?after=2 returned %d events, want %d", len(tail), len(events)-3)
	}
	for i, ev := range tail {
		if ev.id != i+3 {
			t.Fatalf("?after=2 event %d has id %d, want %d", i, ev.id, i+3)
		}
	}
}

// TestRecoveryIDCounterAndEnforce: after a restart the job-ID counter
// continues past recovered history, and an enforcement job resumes from
// its iteration checkpoint to a bit-identical final report.
func TestRecoveryIDCounterAndEnforce(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.log")
	a := newStoredDaemon(t, pathA, 2)
	spec := shrunkCaseSpec(t, 2)
	spec.Enforce = &server.EnforceSpec{}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	status, v := post(t, a.ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	ref := waitTerminal(t, a.ts.URL, v.ID)
	if ref.State != "done" || ref.Report == nil || ref.Enforce == nil {
		t.Fatalf("reference enforce job ended %q err %q", ref.State, ref.Error)
	}
	a.close()

	data := mustRead(t, pathA)
	frames := parseLog(t, data)
	// Cut after the last enforce checkpoint when the run iterated;
	// otherwise fall back to mid-log (still a valid crash image).
	cut := frames[len(frames)/2].end
	for _, fr := range frames {
		if fr.tag == 3 { // enforce-checkpoint record
			cut = fr.end
		}
	}
	path := writePrefix(t, dir, "b.log", data, cut)
	b := newStoredDaemon(t, path, 2)
	defer b.close()
	got := waitTerminal(t, b.ts.URL, v.ID)
	if got.State != "done" || got.Report == nil || got.Enforce == nil {
		t.Fatalf("recovered enforce job ended %q err %q", got.State, got.Error)
	}
	if !bytes.Equal(gobBytes(t, sansSolver(*got.Report)), gobBytes(t, sansSolver(*ref.Report))) {
		t.Fatal("recovered enforcement report not bit-identical to the uninterrupted run")
	}
	if !bytes.Equal(*got.Enforce, *ref.Enforce) {
		t.Fatalf("recovered enforce summary %s != reference %s", *got.Enforce, *ref.Enforce)
	}

	// New submissions never collide with recovered history.
	status, v2 := post(t, b.ts.URL+"/v1/jobs", "application/json",
		mustJSON(t, shrunkCaseSpec(t, 1)))
	if status != http.StatusAccepted {
		t.Fatalf("post-restart submit: status %d", status)
	}
	if v2.ID == v.ID {
		t.Fatalf("restarted daemon reused job ID %s", v2.ID)
	}
	if got := waitTerminal(t, b.ts.URL, v2.ID); got.State != "done" {
		t.Fatalf("post-restart job ended %q err %q", got.State, got.Error)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
