package server

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/passivity"
	"repro/internal/store"
)

// persistedSpec is the job-options snapshot written to the durable log at
// admission: everything a restart needs to rebuild the fleet request
// except the model, which is persisted separately in realized form — so
// generator drift between daemon versions can never change a recovered
// job's numbers. The fields reuse the public JobSpec vocabulary, so the
// option mapping on recovery is the same code path as a live submission.
type persistedSpec struct {
	Priority string       `json:"priority,omitempty"`
	Weight   int          `json:"weight,omitempty"`
	Char     *CharSpec    `json:"char,omitempty"`
	Enforce  *EnforceSpec `json:"enforce,omitempty"`
}

// jobSpec lifts the snapshot back into a JobSpec (model-less; only the
// option mappers may be called on it).
func (p *persistedSpec) jobSpec() *JobSpec {
	return &JobSpec{Priority: p.Priority, Weight: p.Weight, Char: p.Char, Enforce: p.Enforce}
}

// streamFor builds a fresh job's stream: sink-backed when a store is
// configured, plain otherwise.
func (s *Server) streamFor(id string) *Stream {
	if s.store == nil {
		return NewStream()
	}
	return NewStreamSink(s.eventSink(id))
}

// eventSink persists one stream event. Append errors latch the store
// broken (surfaced via /status); the stream itself keeps serving live
// subscribers.
func (s *Server) eventSink(id string) func(Event) {
	return func(ev Event) {
		_ = s.store.AppendEvent(id, store.EventRecord{Seq: ev.Seq, Type: ev.Type, Data: ev.Data})
	}
}

// attachCheckpointSinks wires the request's durable-checkpoint callbacks
// to the store. The fleet engine routes exactly one of them per job kind
// (per-shift for characterizations, per-iteration for enforcements).
func (s *Server) attachCheckpointSinks(req *fleet.Request, id string) {
	st := s.store
	req.Checkpoint = func(ck core.Checkpoint) { _ = st.AppendCoreCheckpoint(id, ck) }
	req.EnforceCheckpoint = func(ck passivity.EnforceCheckpoint) { _ = st.AppendEnforceCheckpoint(id, ck) }
}

// recoverJobs replays the store's jobs into the registry: terminal jobs
// are served from their persisted documents, incomplete jobs are
// re-submitted seeded from their last checkpoint. Returns the number of
// jobs replayed.
func (s *Server) recoverJobs() int {
	jobs := s.store.Recovered()
	for _, js := range jobs {
		s.recoverJob(js)
	}
	return len(jobs)
}

func (s *Server) recoverJob(js *store.JobState) {
	events := make([]Event, len(js.Events))
	for i, ev := range js.Events {
		events[i] = Event{Seq: ev.Seq, Type: ev.Type, Data: ev.Data}
	}
	if js.Terminal != nil {
		s.recoverTerminal(js, events, js.Terminal.State, js.Terminal.Doc, false)
		return
	}
	if n := len(events); n > 0 {
		if state, terminal := terminalEventState(events[n-1].Type); terminal {
			// The crash hit between the terminal event and the terminal
			// record: the outcome is already in the log, so synthesize the
			// terminal and heal the record for the next restart.
			s.recoverTerminal(js, events, state, events[n-1].Data, true)
			return
		}
	}
	s.resumeJob(js, events)
}

// terminalEventState maps a terminal SSE event type to its job state.
func terminalEventState(typ string) (string, bool) {
	switch typ {
	case "report":
		return stateDone, true
	case "canceled":
		return stateCanceled, true
	case "error":
		return stateFailed, true
	}
	return "", false
}

// recoverTerminal registers a finished job from its persisted document:
// closed preloaded stream, no engine involvement.
func (s *Server) recoverTerminal(js *store.JobState, events []Event, state string, doc []byte, heal bool) {
	entry := s.reg.addRecovered(js.ID, state, NewStreamFrom(events, true, nil), func() {})
	var jd jobDoc
	if err := json.Unmarshal(doc, &jd); err == nil {
		entry.mu.Lock()
		entry.report = jd.Report
		entry.enforce = jd.Enforce
		entry.errMsg = jd.Error
		if jd.State != "" {
			entry.state = jd.State
		}
		entry.mu.Unlock()
	}
	if heal {
		_ = s.store.AppendTerminal(js.ID, store.TerminalRecord{State: state, Doc: doc})
	}
}

// resumeJob re-submits an incomplete job seeded from its replayed
// checkpoint state. The stream is preloaded with the persisted events and
// stays open, so an SSE client reconnecting with ?after= resumes exactly
// where the crashed generation left it; new events continue the seq
// numbering. A resume marker fences the log before the new generation's
// first checkpoint so replay can discard the crashed generation's
// beyond-prefix orphans.
func (s *Server) resumeJob(js *store.JobState, events []Event) {
	jctx, cancel := context.WithCancel(s.base)
	entry := s.reg.addRecovered(js.ID, stateRunning, NewStreamFrom(events, false, s.eventSink(js.ID)), cancel)
	// Re-arm the crossing dedup from persisted events so the resumed run
	// never re-announces a crossing the crashed generation already sent.
	for _, ev := range events {
		if ev.Type != "crossing" {
			continue
		}
		var cd crossingDoc
		if json.Unmarshal(ev.Data, &cd) == nil {
			entry.crossingsSeen = append(entry.crossingsSeen, cd.Omega)
		}
	}

	var pspec persistedSpec
	if err := json.Unmarshal(js.Spec, &pspec); err != nil {
		s.failRecovered(entry, cancel, fmt.Sprintf("recover job spec: %v", err))
		return
	}
	spec := pspec.jobSpec()
	req := fleet.Request{
		Model:         js.Model,
		Char:          spec.CharOptions(),
		Enforce:       spec.EnforceOptions(),
		Priority:      spec.PriorityClass(),
		Weight:        spec.Weight,
		Resume:        js.Core,
		EnforceResume: js.Enforce,
	}
	req.Progress = func(ev core.ProgressEvent) { s.publishProgress(entry, ev) }
	s.attachCheckpointSinks(&req, entry.id)

	fromSeq, fromIter := -1, 0
	if js.Core != nil {
		fromSeq = js.Core.Seq
	}
	if js.Enforce != nil {
		fromIter = js.Enforce.Iter
	}

	s.jobs.Add(1)
	go func() {
		if err := s.store.AppendResumeMarker(entry.id, fromSeq, fromIter); err != nil {
			s.jobs.Done()
			s.failRecovered(entry, cancel, fmt.Sprintf("resume marker: %v", err))
			return
		}
		job, err := s.engine.Submit(jctx, req)
		if err != nil {
			s.jobs.Done()
			s.failRecovered(entry, cancel, fmt.Sprintf("resubmit recovered job: %v", err))
			return
		}
		s.watch(entry, job, jctx, cancel)
	}()
}

// failRecovered marks a recovered entry failed and publishes (and
// persists) its terminal state.
func (s *Server) failRecovered(e *jobEntry, cancel context.CancelFunc, msg string) {
	cancel()
	e.mu.Lock()
	e.state = stateFailed
	e.errMsg = msg
	e.mu.Unlock()
	data, err := json.Marshal(e.doc(true))
	if err != nil {
		data = []byte(`{"error":"encode terminal event"}`)
	}
	e.stream.PublishFinal("error", data)
	_ = s.store.AppendTerminal(e.id, store.TerminalRecord{State: stateFailed, Doc: data})
}
