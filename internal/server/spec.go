package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/passivity"
	"repro/internal/statespace"
)

// Size caps on the JSON ingest boundary. They bound the work a single
// request can demand, not the library's capabilities: a hostile or
// mistaken spec is rejected at decode time instead of tying the pool up
// in a multi-hour solve.
const (
	maxSpecPorts       = 64
	maxSpecOrder       = 4096
	maxSpecGridPoints  = 10000
	maxSpecProbePoints = 10000
	maxSpecMaxShifts   = 100000
	maxSpecMaxIters    = 100
	maxSpecWeight      = 1000
)

// JobSpec is the JSON body of a model-spec job submission: which model to
// analyze, how to schedule it, and the characterization (or enforcement)
// options. Unknown fields are rejected.
type JobSpec struct {
	// Model selects exactly one model source.
	Model ModelSpec `json:"model"`
	// Priority is the scheduling class: "batch" (default) or
	// "interactive" (overtakes queued batch work at task granularity).
	Priority string `json:"priority,omitempty"`
	// Weight is the weighted-round-robin share against other jobs of the
	// same class. Default 1, capped at 1000.
	Weight int `json:"weight,omitempty"`
	// Char tunes the characterization. Optional.
	Char *CharSpec `json:"char,omitempty"`
	// Enforce, when present, turns the job into a passivity-enforcement
	// run (the characterization options still come from Char).
	Enforce *EnforceSpec `json:"enforce,omitempty"`
}

// ModelSpec names the model: exactly one of its fields must be set.
type ModelSpec struct {
	// Generate builds a synthetic macromodel (statespace.Generate).
	Generate *GenerateSpec `json:"generate,omitempty"`
	// Case references a Table-I benchmark case, optionally shrunk.
	Case *CaseRef `json:"case,omitempty"`
	// PoleResidue supplies an explicit pole–residue macromodel.
	PoleResidue *PoleResidueSpec `json:"pole_residue,omitempty"`
}

// GenerateSpec mirrors the statespace.Generate knobs exposed over the
// wire. Seed is required (the same seed always yields the same model).
type GenerateSpec struct {
	Seed           int64   `json:"seed"`
	Ports          int     `json:"ports"`
	Order          int     `json:"order"`
	TargetPeak     float64 `json:"target_peak,omitempty"`
	GridPoints     int     `json:"grid_points,omitempty"`
	Reciprocal     bool    `json:"reciprocal,omitempty"`
	PortsPerColumn int     `json:"ports_per_column,omitempty"`
}

// CaseRef selects a Table-I case by ID; Order and Ports, when positive,
// shrink the case (the e2e-test idiom: same seed and calibrated peak on a
// smaller realization).
type CaseRef struct {
	ID    int `json:"id"`
	Order int `json:"order,omitempty"`
	Ports int `json:"ports,omitempty"`
}

// PoleResidueSpec is an explicit rational macromodel: D is the p×p direct
// coupling, Poles[k] the column-k poles as [re, im] pairs (complex poles
// with im > 0 only, conjugates implied), Residues[k] the column-k residue
// matrix as p rows × len(Poles[k]) entries of [re, im].
type PoleResidueSpec struct {
	D        [][]float64      `json:"d"`
	Poles    [][][2]float64   `json:"poles"`
	Residues [][][][2]float64 `json:"residues"`
}

// CharSpec tunes the characterization.
type CharSpec struct {
	Seed        int64   `json:"seed,omitempty"`
	Threads     int     `json:"threads,omitempty"`
	ProbePoints int     `json:"probe_points,omitempty"`
	OmegaMax    float64 `json:"omega_max,omitempty"`
	MaxShifts   int     `json:"max_shifts,omitempty"`
}

// EnforceSpec tunes the enforcement loop.
type EnforceSpec struct {
	MaxIters  int     `json:"max_iters,omitempty"`
	Margin    float64 `json:"margin,omitempty"`
	ColdStart bool    `json:"cold_start,omitempty"`
}

// DecodeJobSpec strictly decodes one JobSpec from r and validates it:
// unknown fields, trailing garbage, out-of-cap sizes, and non-finite
// floats are all rejected with a descriptive error and never reach the
// solver. It never panics on any input (FuzzJobSpec asserts this).
func DecodeJobSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("decode job spec: %w", err)
	}
	if dec.More() {
		return nil, errors.New("decode job spec: trailing data after JSON document")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate checks structural and range constraints without building the
// model (BuildModel revalidates what only the realization code can).
func (s *JobSpec) Validate() error {
	set := 0
	if s.Model.Generate != nil {
		set++
		if err := s.Model.Generate.validate(); err != nil {
			return err
		}
	}
	if s.Model.Case != nil {
		set++
		if err := s.Model.Case.validate(); err != nil {
			return err
		}
	}
	if s.Model.PoleResidue != nil {
		set++
		if err := s.Model.PoleResidue.validate(); err != nil {
			return err
		}
	}
	if set != 1 {
		return fmt.Errorf("model: exactly one of generate/case/pole_residue must be set, got %d", set)
	}
	switch s.Priority {
	case "", "batch", "interactive":
	default:
		return fmt.Errorf("priority: want \"batch\" or \"interactive\", got %q", s.Priority)
	}
	if s.Weight < 0 || s.Weight > maxSpecWeight {
		return fmt.Errorf("weight: want 0 ≤ w ≤ %d, got %d", maxSpecWeight, s.Weight)
	}
	if s.Char != nil {
		if err := s.Char.validate(); err != nil {
			return err
		}
	}
	if s.Enforce != nil {
		if err := s.Enforce.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (g *GenerateSpec) validate() error {
	switch {
	case g.Ports < 1 || g.Ports > maxSpecPorts:
		return fmt.Errorf("generate.ports: want 1 ≤ p ≤ %d, got %d", maxSpecPorts, g.Ports)
	case g.Order < 1 || g.Order > maxSpecOrder:
		return fmt.Errorf("generate.order: want 1 ≤ n ≤ %d, got %d", maxSpecOrder, g.Order)
	case !finite(g.TargetPeak) || g.TargetPeak < 0 || g.TargetPeak > 10:
		return fmt.Errorf("generate.target_peak: want finite 0 ≤ peak ≤ 10, got %g", g.TargetPeak)
	case g.GridPoints < 0 || g.GridPoints > maxSpecGridPoints:
		return fmt.Errorf("generate.grid_points: want 0 ≤ g ≤ %d, got %d", maxSpecGridPoints, g.GridPoints)
	case g.PortsPerColumn < 0 || g.PortsPerColumn > maxSpecPorts:
		return fmt.Errorf("generate.ports_per_column: want 0 ≤ k ≤ %d, got %d", maxSpecPorts, g.PortsPerColumn)
	}
	return nil
}

func (c *CaseRef) validate() error {
	if _, err := statespace.FindCase(c.ID); err != nil {
		return fmt.Errorf("case.id: %w", err)
	}
	if c.Order < 0 || c.Order > maxSpecOrder {
		return fmt.Errorf("case.order: want 0 ≤ n ≤ %d, got %d", maxSpecOrder, c.Order)
	}
	if c.Ports < 0 || c.Ports > maxSpecPorts {
		return fmt.Errorf("case.ports: want 0 ≤ p ≤ %d, got %d", maxSpecPorts, c.Ports)
	}
	return nil
}

func (pr *PoleResidueSpec) validate() error {
	p := len(pr.D)
	if p < 1 || p > maxSpecPorts {
		return fmt.Errorf("pole_residue.d: want 1 ≤ p ≤ %d rows, got %d", maxSpecPorts, p)
	}
	for i, row := range pr.D {
		if len(row) != p {
			return fmt.Errorf("pole_residue.d: row %d has %d entries, want %d", i, len(row), p)
		}
		for j, v := range row {
			if !finite(v) {
				return fmt.Errorf("pole_residue.d[%d][%d]: non-finite %g", i, j, v)
			}
		}
	}
	if len(pr.Poles) != p || len(pr.Residues) != p {
		return fmt.Errorf("pole_residue: want %d columns of poles and residues, got %d/%d",
			p, len(pr.Poles), len(pr.Residues))
	}
	order := 0
	for k := range pr.Poles {
		np := len(pr.Poles[k])
		if np == 0 {
			return fmt.Errorf("pole_residue.poles[%d]: empty column", k)
		}
		for i, pl := range pr.Poles[k] {
			if !finite(pl[0]) || !finite(pl[1]) {
				return fmt.Errorf("pole_residue.poles[%d][%d]: non-finite", k, i)
			}
			if pl[1] == 0 {
				order++
			} else {
				order += 2
			}
		}
		if len(pr.Residues[k]) != p {
			return fmt.Errorf("pole_residue.residues[%d]: want %d rows, got %d", k, p, len(pr.Residues[k]))
		}
		for r, row := range pr.Residues[k] {
			if len(row) != np {
				return fmt.Errorf("pole_residue.residues[%d][%d]: want %d entries, got %d", k, r, np, len(row))
			}
			for i, v := range row {
				if !finite(v[0]) || !finite(v[1]) {
					return fmt.Errorf("pole_residue.residues[%d][%d][%d]: non-finite", k, r, i)
				}
			}
		}
	}
	if order > maxSpecOrder {
		return fmt.Errorf("pole_residue: total order %d exceeds cap %d", order, maxSpecOrder)
	}
	return nil
}

func (c *CharSpec) validate() error {
	switch {
	case c.Threads < 0 || c.Threads > 1024:
		return fmt.Errorf("char.threads: want 0 ≤ t ≤ 1024, got %d", c.Threads)
	case c.ProbePoints < 0 || c.ProbePoints > maxSpecProbePoints:
		return fmt.Errorf("char.probe_points: want 0 ≤ n ≤ %d, got %d", maxSpecProbePoints, c.ProbePoints)
	case !finite(c.OmegaMax) || c.OmegaMax < 0:
		return fmt.Errorf("char.omega_max: want finite ω ≥ 0, got %g", c.OmegaMax)
	case c.MaxShifts < 0 || c.MaxShifts > maxSpecMaxShifts:
		return fmt.Errorf("char.max_shifts: want 0 ≤ n ≤ %d, got %d", maxSpecMaxShifts, c.MaxShifts)
	}
	return nil
}

func (e *EnforceSpec) validate() error {
	switch {
	case e.MaxIters < 0 || e.MaxIters > maxSpecMaxIters:
		return fmt.Errorf("enforce.max_iters: want 0 ≤ n ≤ %d, got %d", maxSpecMaxIters, e.MaxIters)
	case !finite(e.Margin) || e.Margin < 0 || e.Margin >= 1:
		return fmt.Errorf("enforce.margin: want finite 0 ≤ m < 1, got %g", e.Margin)
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// BuildModel realizes the spec's model. Validate must have passed.
func (s *JobSpec) BuildModel() (*statespace.Model, error) {
	switch {
	case s.Model.Generate != nil:
		g := s.Model.Generate
		return statespace.Generate(g.Seed, statespace.GenOptions{
			Ports:          g.Ports,
			Order:          g.Order,
			TargetPeak:     g.TargetPeak,
			GridPoints:     g.GridPoints,
			Reciprocal:     g.Reciprocal,
			PortsPerColumn: g.PortsPerColumn,
		})
	case s.Model.Case != nil:
		spec, err := statespace.FindCase(s.Model.Case.ID)
		if err != nil {
			return nil, err
		}
		if s.Model.Case.Order > 0 {
			spec.N = s.Model.Case.Order
		}
		if s.Model.Case.Ports > 0 {
			spec.P = s.Model.Case.Ports
		}
		return statespace.Generate(spec.Seed, statespace.GenOptions{
			Ports:      spec.P,
			Order:      spec.N,
			TargetPeak: spec.TargetPeak,
			GridPoints: 40,
		})
	case s.Model.PoleResidue != nil:
		return s.Model.PoleResidue.build()
	}
	return nil, errors.New("no model source set")
}

func (pr *PoleResidueSpec) build() (*statespace.Model, error) {
	p := len(pr.D)
	d := mat.NewDense(p, p)
	for i, row := range pr.D {
		for j, v := range row {
			d.Set(i, j, v)
		}
	}
	poles := make([][]complex128, p)
	residues := make([]*mat.CDense, p)
	for k := range pr.Poles {
		np := len(pr.Poles[k])
		poles[k] = make([]complex128, np)
		for i, pl := range pr.Poles[k] {
			poles[k][i] = complex(pl[0], pl[1])
		}
		rm := mat.NewCDense(p, np)
		for r, row := range pr.Residues[k] {
			for i, v := range row {
				rm.Set(r, i, complex(v[0], v[1]))
			}
		}
		residues[k] = rm
	}
	return statespace.FromPoleResidue(d, poles, residues)
}

// CharOptions maps the spec onto the characterization options the fleet
// request carries.
func (s *JobSpec) CharOptions() passivity.Options {
	var o passivity.Options
	if s.Char != nil {
		o.Core.Seed = s.Char.Seed
		o.Core.Threads = s.Char.Threads
		o.Core.OmegaMax = s.Char.OmegaMax
		o.Core.MaxShifts = s.Char.MaxShifts
		o.ProbePoints = s.Char.ProbePoints
	}
	return o
}

// EnforceOptions maps the spec onto enforcement options, or nil for a
// plain characterization job.
func (s *JobSpec) EnforceOptions() *passivity.EnforceOptions {
	if s.Enforce == nil {
		return nil
	}
	return &passivity.EnforceOptions{
		Char:      s.CharOptions(),
		MaxIters:  s.Enforce.MaxIters,
		Margin:    s.Enforce.Margin,
		ColdStart: s.Enforce.ColdStart,
	}
}

// PriorityClass maps the spec's priority string onto the scheduler class.
func (s *JobSpec) PriorityClass() core.PriorityClass {
	if s.Priority == "interactive" {
		return core.PriorityInteractive
	}
	return core.PriorityBatch
}
