package server

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Job lifecycle states as reported over the API.
const (
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// jobEntry is the server-side record of one submitted job: its API
// state, the cancel hook for DELETE, the SSE stream, and — once terminal
// — the report documents. The entry's mutable fields are guarded by mu;
// the stream has its own lock.
type jobEntry struct {
	id     string
	stream *Stream
	cancel context.CancelFunc

	mu      sync.Mutex
	state   string
	errMsg  string
	report  *ReportDoc
	enforce *EnforceDoc

	// crossingsSeen dedupes crossing events across the job's progress
	// callbacks (guarded by mu).
	crossingsSeen []float64
}

// doc snapshots the entry as its API document. Terminal report payloads
// are included only when full is set (the list endpoint stays small).
func (e *jobEntry) doc(full bool) jobDoc {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := jobDoc{ID: e.id, State: e.state, Error: e.errMsg}
	if full {
		d.Report = e.report
		d.Enforce = e.enforce
	}
	return d
}

// markCrossings returns the near-axis frequencies not yet announced for
// this job (relative dedup tolerance 1e-6 against everything already
// announced) and records them as announced.
func (e *jobEntry) markCrossings(omegas []float64) []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var fresh []float64
	for _, w := range omegas {
		dup := false
		for _, seen := range e.crossingsSeen {
			tol := 1e-6 * (1 + seen)
			if w > seen-tol && w < seen+tol {
				dup = true
				break
			}
		}
		if !dup {
			e.crossingsSeen = append(e.crossingsSeen, w)
			fresh = append(fresh, w)
		}
	}
	return fresh
}

// registry indexes the server's jobs by ID.
type registry struct {
	mu   sync.Mutex
	jobs map[string]*jobEntry
	next int
}

// add mints the next job ID and registers a running entry. mkStream, when
// non-nil, builds the entry's stream from the minted ID (the durable
// event sink needs the ID inside its closure); nil means a plain stream.
func (r *registry) add(cancel context.CancelFunc, mkStream func(id string) *Stream) *jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jobs == nil {
		r.jobs = make(map[string]*jobEntry)
	}
	r.next++
	id := fmt.Sprintf("job-%d", r.next)
	stream := NewStream()
	if mkStream != nil {
		stream = mkStream(id)
	}
	e := &jobEntry{
		id:     id,
		stream: stream,
		cancel: cancel,
		state:  stateRunning,
	}
	r.jobs[e.id] = e
	return e
}

// addRecovered registers a job replayed from the durable store under its
// persisted ID and state, bumping the ID counter past it so new
// submissions never collide with recovered history.
func (r *registry) addRecovered(id, state string, stream *Stream, cancel context.CancelFunc) *jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jobs == nil {
		r.jobs = make(map[string]*jobEntry)
	}
	if n := jobNum(id); n > r.next {
		r.next = n
	}
	e := &jobEntry{id: id, stream: stream, cancel: cancel, state: state}
	r.jobs[id] = e
	return e
}

// get looks an entry up by ID.
func (r *registry) get(id string) (*jobEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.jobs[id]
	return e, ok
}

// list returns every entry in submission order.
func (r *registry) list() []*jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*jobEntry, 0, len(r.jobs))
	for _, e := range r.jobs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return jobNum(out[i].id) < jobNum(out[j].id) })
	return out
}

// jobNum extracts the numeric suffix of a job ID for sorting.
func jobNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}
