package server_test

import (
	"strings"
	"testing"

	"repro/internal/server"
)

// TestDecodeJobSpec covers the strict-ingest contract: well-formed specs
// decode, and every malformed shape — unknown fields, trailing data,
// out-of-cap sizes, non-finite floats, over- and under-specified model
// sources — is rejected with an error, never a panic.
func TestDecodeJobSpec(t *testing.T) {
	valid := []string{
		`{"model":{"case":{"id":1}}}`,
		`{"model":{"case":{"id":12,"order":40,"ports":3}},"priority":"interactive","weight":4}`,
		`{"model":{"generate":{"seed":3,"ports":2,"order":16,"target_peak":1.05}},"char":{"seed":9,"threads":2}}`,
		`{"model":{"generate":{"seed":1,"ports":1,"order":1}},"enforce":{"max_iters":3,"margin":0.01}}`,
		`{"model":{"pole_residue":{
			"d":[[0.1,0],[0,0.1]],
			"poles":[[[-1e8,1e9]],[[-2e8,0]]],
			"residues":[[[[1e8,1e7]],[[2e8,0]]],[[[1e8,0]],[[3e8,0]]]]}}}`,
	}
	for _, body := range valid {
		if _, err := server.DecodeJobSpec(strings.NewReader(body)); err != nil {
			t.Errorf("valid spec rejected: %v\n%s", err, body)
		}
	}

	invalid := []struct{ name, body string }{
		{"empty", ``},
		{"not json", `nonsense`},
		{"no model source", `{"model":{}}`},
		{"two model sources", `{"model":{"case":{"id":1},"generate":{"seed":1,"ports":1,"order":1}}}`},
		{"unknown field", `{"model":{"case":{"id":1}},"bogus":true}`},
		{"trailing data", `{"model":{"case":{"id":1}}} {"again":1}`},
		{"unknown case", `{"model":{"case":{"id":99}}}`},
		{"ports over cap", `{"model":{"generate":{"seed":1,"ports":65,"order":10}}}`},
		{"order over cap", `{"model":{"generate":{"seed":1,"ports":2,"order":5000}}}`},
		{"bad priority", `{"model":{"case":{"id":1}},"priority":"urgent"}`},
		{"negative weight", `{"model":{"case":{"id":1}},"weight":-1}`},
		{"weight over cap", `{"model":{"case":{"id":1}},"weight":1001}`},
		{"negative probes", `{"model":{"case":{"id":1}},"char":{"probe_points":-1}}`},
		{"margin over one", `{"model":{"case":{"id":1}},"enforce":{"margin":1.5}}`},
		{"ragged D", `{"model":{"pole_residue":{"d":[[0.1,0],[0]],"poles":[[[-1,0]],[[-1,0]]],"residues":[[[[1,0]],[[1,0]]],[[[1,0]],[[1,0]]]]}}}`},
		{"residue shape", `{"model":{"pole_residue":{"d":[[0.1]],"poles":[[[-1,0]]],"residues":[[]]}}}`},
	}
	for _, tc := range invalid {
		if _, err := server.DecodeJobSpec(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: accepted, want rejection\n%s", tc.name, tc.body)
		}
	}
}

// TestSpecBuildModelPoleResidue realizes an explicit pole–residue spec
// and checks the resulting dimensions.
func TestSpecBuildModelPoleResidue(t *testing.T) {
	body := `{"model":{"pole_residue":{
		"d":[[0.1,0],[0,0.1]],
		"poles":[[[-1e8,1e9]],[[-2e8,0]]],
		"residues":[[[[1e8,1e7]],[[2e8,0]]],[[[1e8,0]],[[3e8,0]]]]}}}`
	spec, err := server.DecodeJobSpec(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	m, err := spec.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.P != 2 {
		t.Fatalf("ports %d, want 2", m.P)
	}
	// Column 0 holds one complex pair (order 2), column 1 one real pole.
	if got := m.Order(); got != 3 {
		t.Fatalf("order %d, want 3", got)
	}
	// Unstable poles survive JSON decode but die in realization.
	bad := `{"model":{"pole_residue":{"d":[[0.1]],"poles":[[[1e8,0]]],"residues":[[[[1,0]]]]}}}`
	spec, err = server.DecodeJobSpec(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.BuildModel(); err == nil {
		t.Fatal("unstable pole accepted by BuildModel")
	}
}
