package server_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// TestStreamReplayAndClose covers the log semantics: full replay for a
// late subscriber, end-of-stream after close, publish-after-close
// no-ops, and PublishFinal atomicity.
func TestStreamReplayAndClose(t *testing.T) {
	s := server.NewStream()
	s.Publish("a", []byte("1"))
	s.Publish("b", []byte("2"))
	s.PublishFinal("z", []byte("end"))
	s.Publish("late", []byte("nope")) // must be dropped
	if s.Len() != 3 {
		t.Fatalf("len %d, want 3", s.Len())
	}
	ctx := context.Background()
	for i, want := range []server.Event{
		{Seq: 0, Type: "a", Data: []byte("1")},
		{Seq: 1, Type: "b", Data: []byte("2")},
		{Seq: 2, Type: "z", Data: []byte("end")},
	} {
		ev, ok, err := s.Next(ctx, i)
		if err != nil || !ok {
			t.Fatalf("Next(%d): ok=%v err=%v", i, ok, err)
		}
		if ev.Seq != want.Seq || ev.Type != want.Type || string(ev.Data) != string(want.Data) {
			t.Fatalf("Next(%d) = %+v, want %+v", i, ev, want)
		}
	}
	if _, ok, err := s.Next(ctx, 3); ok || err != nil {
		t.Fatalf("Next past close: ok=%v err=%v, want end-of-stream", ok, err)
	}
}

// TestStreamNextBlocksAndWakes asserts a subscriber waiting past the log
// head wakes on publish and on context cancellation.
func TestStreamNextBlocksAndWakes(t *testing.T) {
	s := server.NewStream()
	got := make(chan server.Event, 1)
	go func() {
		ev, ok, err := s.Next(context.Background(), 0)
		if !ok || err != nil {
			t.Errorf("Next: ok=%v err=%v", ok, err)
		}
		got <- ev
	}()
	time.Sleep(20 * time.Millisecond) // let the subscriber block
	s.Publish("x", []byte("data"))
	select {
	case ev := <-got:
		if ev.Type != "x" {
			t.Fatalf("woke with %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never woke on publish")
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.Next(ctx, 1)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("canceled Next returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never woke on cancel")
	}
}

// TestStreamStress is the -race battery for the broadcaster: concurrent
// publishers, N subscribers tailing the log, and churning subscribers
// that abandon mid-stream and re-attach from arbitrary offsets. Every
// persistent subscriber must observe the complete log in order.
func TestStreamStress(t *testing.T) {
	const (
		publishers   = 4
		perPublisher = 200
		subscribers  = 8
		churners     = 8
	)
	s := server.NewStream()
	total := publishers * perPublisher

	var wg sync.WaitGroup
	// Persistent subscribers: read the whole log, verify order.
	results := make([][]server.Event, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var got []server.Event
			for j := 0; ; j++ {
				ev, ok, err := s.Next(context.Background(), j)
				if err != nil {
					t.Errorf("subscriber %d: %v", i, err)
					return
				}
				if !ok {
					break
				}
				got = append(got, ev)
			}
			results[i] = got
		}(i)
	}
	// Churners: attach at a deterministic offset, read a few, abandon.
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				start := (i*37 + round*13) % (total + 1)
				for j := start; j < start+5; j++ {
					ev, ok, err := s.Next(ctx, j)
					if err != nil || !ok {
						break
					}
					if ev.Seq != j {
						t.Errorf("churner %d: event at %d has seq %d", i, j, ev.Seq)
						break
					}
				}
				cancel()
			}
		}(i)
	}
	// Publishers: interleave freely; the log serializes them.
	var pwg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for k := 0; k < perPublisher; k++ {
				s.Publish("e", []byte(fmt.Sprintf("p%d-%d", p, k)))
			}
		}(p)
	}
	pwg.Wait()
	s.PublishFinal("final", []byte("done"))

	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, got := range results {
		if len(got) != total+1 {
			t.Fatalf("subscriber %d saw %d events, want %d", i, len(got), total+1)
		}
		for j, ev := range got {
			if ev.Seq != j {
				t.Fatalf("subscriber %d: event %d has seq %d", i, j, ev.Seq)
			}
		}
		if got[total].Type != "final" {
			t.Fatalf("subscriber %d: last event %+v, want the final event", i, got[total])
		}
		// Every subscriber sees the identical log.
		for j := range got {
			if string(got[j].Data) != string(results[0][j].Data) {
				t.Fatalf("subscribers %d and 0 disagree at %d", i, j)
			}
		}
	}
}
