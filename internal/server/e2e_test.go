// End-to-end battery for the characterization service: every test drives
// the real handler stack over a live httptest listener — submissions,
// SSE streams, cancellation, admission backpressure, and drain — and the
// bit-identity test proves that a report served over HTTP is exactly the
// report a direct in-process repro.Characterize of the same spec yields.
package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
)

// newDaemon stands a full service up: engine + handler set + listener.
func newDaemon(t *testing.T, opts repro.FleetOptions) (*server.Server, *repro.Fleet, *httptest.Server) {
	t.Helper()
	engine := repro.NewFleetEngine(opts)
	t.Cleanup(engine.Close)
	srv := server.New(server.Config{Engine: engine})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, engine, ts
}

// jobView mirrors the job document of the wire API.
type jobView struct {
	ID      string            `json:"id"`
	State   string            `json:"state"`
	Error   string            `json:"error,omitempty"`
	Report  *server.ReportDoc `json:"report,omitempty"`
	Enforce *json.RawMessage  `json:"enforce,omitempty"`
}

func decodeJob(t *testing.T, r io.Reader) jobView {
	t.Helper()
	var v jobView
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatalf("decode job doc: %v", err)
	}
	return v
}

// post sends a body and returns status + parsed job doc (when 2xx).
func post(t *testing.T, url, contentType, body string) (int, jobView) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, jobView{}
	}
	return resp.StatusCode, decodeJob(t, resp.Body)
}

func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	return decodeJob(t, resp.Body)
}

// waitTerminal polls the job until it leaves "running".
func waitTerminal(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		v := getJob(t, base, id)
		if v.State != "running" {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return jobView{}
}

// gobBytes serializes for exact comparison; gob encodes float64 fields
// losslessly, so equal bytes means bit-identical reports.
func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sansSolver strips the schedule-dependent solver telemetry before a
// bit-identity comparison (shift counts legitimately vary with worker
// timing; the characterization must not).
func sansSolver(doc server.ReportDoc) server.ReportDoc {
	doc.Solver = server.SolverDoc{}
	return doc
}

// shrunkCaseSpec is the e2e job shape: a Table-I case shrunk to test
// budget (same seed and calibrated peak, reduced realization).
func shrunkCaseSpec(t *testing.T, id int) server.JobSpec {
	t.Helper()
	spec, err := repro.FindCase(id)
	if err != nil {
		t.Fatal(err)
	}
	ports := spec.P
	if ports > 3 {
		ports = 3
	}
	return server.JobSpec{
		Model: server.ModelSpec{Case: &server.CaseRef{ID: id, Order: spec.N / 50, Ports: ports}},
		Char:  &server.CharSpec{Seed: 5},
	}
}

// TestE2EBitIdentityConcurrent is the headline acceptance test: three
// shrunk Table-I cases submitted concurrently over HTTP must each come
// back bit-identical (gob-compare, solver telemetry excluded) to a
// direct repro.Characterize run of the same spec — the service layer,
// the shared fleet pool, the progress hooks, and the JSON round trip
// perturb nothing.
func TestE2EBitIdentityConcurrent(t *testing.T) {
	_, _, ts := newDaemon(t, repro.FleetOptions{Workers: 3})
	ids := []int{1, 2, 7}

	type submitted struct {
		caseID int
		jobID  string
	}
	results := make([]submitted, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			body, err := json.Marshal(shrunkCaseSpec(t, id))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("case %d: status %d: %s", id, resp.StatusCode, b)
				return
			}
			var v jobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Error(err)
				return
			}
			results[i] = submitted{caseID: id, jobID: v.ID}
		}(i, id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for _, sub := range results {
		v := waitTerminal(t, ts.URL, sub.jobID)
		if v.State != "done" || v.Report == nil {
			t.Fatalf("case %d (%s): state %q err %q", sub.caseID, sub.jobID, v.State, v.Error)
		}

		// Direct in-process run of the identical spec: same model builder,
		// same option mapping, standalone pool (different worker count on
		// purpose — bit-identity is schedule-independent).
		spec := shrunkCaseSpec(t, sub.caseID)
		model, err := spec.BuildModel()
		if err != nil {
			t.Fatal(err)
		}
		direct, err := repro.Characterize(model, spec.CharOptions())
		if err != nil {
			t.Fatal(err)
		}
		want := sansSolver(*server.NewReportDoc(direct))
		got := sansSolver(*v.Report)
		if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
			t.Errorf("case %d: HTTP report is not bit-identical to direct Characterize\nhttp: %+v\ndirect: %+v",
				sub.caseID, got, want)
		}
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id   int
	typ  string
	data string
}

// readSSE consumes an event stream to EOF.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{id: -1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.typ != "" || cur.data != "" {
				events = append(events, cur)
			}
			cur = sseEvent{id: -1}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	return events
}

type progressView struct {
	Phase  string  `json:"phase"`
	Omega  float64 `json:"omega"`
	Radius float64 `json:"radius,omitempty"`
	Done   int     `json:"done"`
	Total  int     `json:"total"`
}

// TestSSEEventInvariants tails a job's event stream live and asserts the
// protocol invariants: ids strictly sequential from 0, known event types
// only, exactly one terminal event (last), per-band probe progress
// covering every band exactly once, crossings announced before the
// report when the model has any, and the terminal report identical to
// the GET document. A second read after completion must replay the
// byte-identical log.
func TestSSEEventInvariants(t *testing.T) {
	_, _, ts := newDaemon(t, repro.FleetOptions{Workers: 2})
	spec := shrunkCaseSpec(t, 2) // calibrated non-passive: crossings expected
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	status, v := post(t, ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}

	// Live tail: the GET attaches while the job runs and must still see
	// the full log from event 0 (replay + follow).
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}

	final := getJob(t, ts.URL, v.ID)
	if final.State != "done" || final.Report == nil {
		t.Fatalf("job ended %q err %q", final.State, final.Error)
	}

	var probeDone []int
	var crossingCount, terminalAt int
	terminalAt = -1
	for i, ev := range events {
		if ev.id != i {
			t.Fatalf("event %d has id %d: ids must be sequential from 0", i, ev.id)
		}
		switch ev.typ {
		case "progress":
			var p progressView
			if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
				t.Fatalf("event %d: bad progress payload %q: %v", i, ev.data, err)
			}
			if p.Done < 1 || (p.Total > 0 && p.Done > p.Total) {
				t.Fatalf("event %d: done/total %d/%d", i, p.Done, p.Total)
			}
			if p.Phase == "probe" {
				probeDone = append(probeDone, p.Done)
			}
		case "crossing":
			if terminalAt >= 0 {
				t.Fatalf("event %d: crossing after terminal", i)
			}
			crossingCount++
		case "report":
			if terminalAt >= 0 {
				t.Fatalf("second terminal event at %d (first %d)", i, terminalAt)
			}
			terminalAt = i
		default:
			t.Fatalf("event %d: unknown type %q", i, ev.typ)
		}
	}
	if terminalAt != len(events)-1 {
		t.Fatalf("terminal event at %d, want last (%d)", terminalAt, len(events)-1)
	}

	// Per-band probe progress: done values are exactly 1..len(bands).
	if len(probeDone) != len(final.Report.Bands) {
		t.Fatalf("%d probe progress events, want one per band (%d)", len(probeDone), len(final.Report.Bands))
	}
	seen := make(map[int]bool)
	for _, d := range probeDone {
		if d < 1 || d > len(probeDone) || seen[d] {
			t.Fatalf("probe done values %v are not a permutation of 1..%d", probeDone, len(probeDone))
		}
		seen[d] = true
	}
	if len(final.Report.Crossings) > 0 && crossingCount == 0 {
		t.Fatalf("report has %d crossings but no crossing events were streamed", len(final.Report.Crossings))
	}

	// Terminal event carries the full report document.
	var termJob jobView
	if err := json.Unmarshal([]byte(events[terminalAt].data), &termJob); err != nil {
		t.Fatalf("terminal payload: %v", err)
	}
	if termJob.Report == nil || !bytes.Equal(gobBytes(t, *termJob.Report), gobBytes(t, *final.Report)) {
		t.Fatal("terminal event report differs from GET report")
	}

	// Replay: a post-completion subscriber gets the identical log.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, resp2.Body)
	resp2.Body.Close()
	if len(replay) != len(events) {
		t.Fatalf("replay has %d events, live tail had %d", len(replay), len(events))
	}
	for i := range replay {
		if replay[i] != events[i] {
			t.Fatalf("replay event %d differs: %+v vs %+v", i, replay[i], events[i])
		}
	}

	// Resume: ?after= skips the already-seen prefix.
	resp3, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events?after=" + strconv.Itoa(len(events)-2))
	if err != nil {
		t.Fatal(err)
	}
	tail := readSSE(t, resp3.Body)
	resp3.Body.Close()
	if len(tail) != 1 || tail[0] != events[len(events)-1] {
		t.Fatalf("?after resume returned %+v, want just the terminal event", tail)
	}
}

// blockWorkers wedges every pool worker on a channel so submitted jobs
// deterministically stay in flight until release is called. The returned
// release is idempotent.
func blockWorkers(t *testing.T, engine *repro.Fleet, n int) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	started := make(chan struct{}, n)
	client := engine.NewClient(repro.PriorityInteractive, 1)
	fns := make([]func(int) error, n)
	for i := range fns {
		fns[i] = func(int) error {
			started <- struct{}{}
			<-ch
			return nil
		}
	}
	go func() {
		if err := client.RunBatch(context.Background(), "testblock", fns); err != nil {
			t.Error(err)
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("pool workers did not pick the blocking tasks up")
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// TestCancelMidJobNoLeak cancels a job that is wedged behind a blocked
// pool and asserts it reaches "canceled", the engine keeps serving new
// jobs, and no goroutines leak.
func TestCancelMidJobNoLeak(t *testing.T) {
	srv, engine, ts := newDaemon(t, repro.FleetOptions{Workers: 1})
	release := blockWorkers(t, engine, 1)
	defer release()

	before := runtime.NumGoroutine()
	body, err := json.Marshal(shrunkCaseSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	status, v := post(t, ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}

	release()
	final := waitTerminal(t, ts.URL, v.ID)
	if final.State != "canceled" {
		t.Fatalf("state %q (err %q), want canceled", final.State, final.Error)
	}

	// The canceled job's watcher and coordinator must be gone: drain
	// returns immediately and the goroutine count settles back.
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.DrainJobs(dctx); err != nil {
		t.Fatalf("drain after cancel: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d before submit, %d after cancel", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// And the engine still takes work (the server is NOT draining).
	status, v2 := post(t, ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("post-cancel submit: status %d", status)
	}
	if final := waitTerminal(t, ts.URL, v2.ID); final.State != "done" {
		t.Fatalf("post-cancel job: state %q err %q", final.State, final.Error)
	}
}

// TestAdmissionFailFast429 asserts the fail-fast queue surfaces
// ErrQueueFull as 429 and recovers once the slot frees.
func TestAdmissionFailFast429(t *testing.T) {
	_, engine, ts := newDaemon(t, repro.FleetOptions{Workers: 1, MaxQueued: 1, FailFast: true})
	release := blockWorkers(t, engine, 1)
	defer release()

	body, err := json.Marshal(shrunkCaseSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	status, first := post(t, ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	if status, _ := post(t, ts.URL+"/v1/jobs", "application/json", string(body)); status != http.StatusTooManyRequests {
		t.Fatalf("second submit on a full fail-fast queue: status %d, want 429", status)
	}
	// Health is unaffected by backpressure.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during backpressure: %d", resp.StatusCode)
	}

	release()
	if final := waitTerminal(t, ts.URL, first.ID); final.State != "done" {
		t.Fatalf("first job: state %q err %q", final.State, final.Error)
	}
	// Slot freed: submissions are accepted again.
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, v := post(t, ts.URL+"/v1/jobs", "application/json", string(body))
		if status == http.StatusAccepted {
			if final := waitTerminal(t, ts.URL, v.ID); final.State != "done" {
				t.Fatalf("recovered job: state %q err %q", final.State, final.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never freed: still status %d", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAdmissionBlockMode asserts the default (non-fail-fast) queue
// blocks the submit until a slot frees instead of erroring.
func TestAdmissionBlockMode(t *testing.T) {
	_, engine, ts := newDaemon(t, repro.FleetOptions{Workers: 1, MaxQueued: 1})
	release := blockWorkers(t, engine, 1)
	defer release()

	body, err := json.Marshal(shrunkCaseSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	status, _ := post(t, ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}

	type result struct {
		status int
		view   jobView
	}
	second := make(chan result, 1)
	go func() {
		st, v := post(t, ts.URL+"/v1/jobs", "application/json", string(body))
		second <- result{st, v}
	}()
	select {
	case r := <-second:
		t.Fatalf("second submit returned %d while the queue was full; want it to block", r.status)
	case <-time.After(300 * time.Millisecond):
	}

	release()
	select {
	case r := <-second:
		if r.status != http.StatusAccepted {
			t.Fatalf("blocked submit resolved with status %d", r.status)
		}
		if final := waitTerminal(t, ts.URL, r.view.ID); final.State != "done" {
			t.Fatalf("blocked-then-admitted job: state %q err %q", final.State, final.Error)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("blocked submit never resolved after the slot freed")
	}
}

// TestGracefulDrain asserts the SIGTERM semantics end to end: after
// BeginDrain, health and new submissions answer 503 while in-flight jobs
// run to completion, reads keep working, and DrainJobs returns once the
// last job lands.
func TestGracefulDrain(t *testing.T) {
	srv, engine, ts := newDaemon(t, repro.FleetOptions{Workers: 1})
	release := blockWorkers(t, engine, 1)
	defer release()

	body, err := json.Marshal(shrunkCaseSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	status, inflight := post(t, ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}

	srv.BeginDrain()
	if status, _ := post(t, ts.URL+"/v1/jobs", "application/json", string(body)); status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	// Reads still serve during drain.
	if v := getJob(t, ts.URL, inflight.ID); v.State != "running" {
		t.Fatalf("in-flight job state %q during drain", v.State)
	}

	// The drain must block until the wedged job finishes.
	quick, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	err = srv.DrainJobs(quick)
	cancel()
	if err == nil {
		t.Fatal("DrainJobs returned before the in-flight job finished")
	}

	release()
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.DrainJobs(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if final := getJob(t, ts.URL, inflight.ID); final.State != "done" {
		t.Fatalf("in-flight job after drain: state %q err %q — drain must finish, not kill", final.State, final.Error)
	}
}

// TestSnpSubmitMatchesDirect routes a Touchstone stream through the POST
// handler and asserts the served report is bit-identical to the direct
// in-process CharacterizeTouchstone pipeline on the same bytes.
func TestSnpSubmitMatchesDirect(t *testing.T) {
	_, _, ts := newDaemon(t, repro.FleetOptions{Workers: 2})

	spec, err := repro.FindCase(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.GenerateModel(spec.Seed, repro.GenOptions{
		Ports: 3, Order: spec.N / 50, TargetPeak: spec.TargetPeak, GridPoints: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := repro.SampleModel(m, repro.LogGrid(2*math.Pi*1e8, 2*math.Pi*2e10, 36))
	var file bytes.Buffer
	if err := repro.WriteTouchstone(&file, samples, repro.TouchstoneRI, 50); err != nil {
		t.Fatal(err)
	}

	// Dry run first: the validator parses the stream without submitting.
	resp, err := http.Post(ts.URL+"/v1/jobs?validate=1&ports=3", "application/octet-stream", bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var vr struct {
		Valid   bool `json:"valid"`
		Samples int  `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !vr.Valid || vr.Samples != len(samples) {
		t.Fatalf("validate: status %d, %+v (want %d samples)", resp.StatusCode, vr, len(samples))
	}

	status, v := post(t, ts.URL+"/v1/jobs?ports=3&order=6", "application/octet-stream", file.String())
	if status != http.StatusAccepted {
		t.Fatalf("snp submit: status %d", status)
	}
	final := waitTerminal(t, ts.URL, v.ID)
	if final.State != "done" || final.Report == nil {
		t.Fatalf("snp job: state %q err %q", final.State, final.Error)
	}

	_, direct, err := repro.CharacterizeTouchstone(bytes.NewReader(file.Bytes()), 3, 6, repro.VFOptions{}, repro.CharOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := sansSolver(*server.NewReportDoc(direct))
	got := sansSolver(*final.Report)
	if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
		t.Fatalf("snp HTTP report differs from direct pipeline\nhttp: %+v\ndirect: %+v", got, want)
	}

	// Garbage bodies are rejected cleanly at the parse boundary.
	if status, _ := post(t, ts.URL+"/v1/jobs?ports=3", "application/octet-stream", "not a touchstone file\x00\xff"); status != http.StatusBadRequest {
		t.Fatalf("garbage snp body: status %d, want 400", status)
	}
}

// TestStatusEndpoint sanity-checks the observability document after real
// work ran: pool width, per-phase counters, and job states.
func TestStatusEndpoint(t *testing.T) {
	_, _, ts := newDaemon(t, repro.FleetOptions{Workers: 2, MaxQueued: 4})
	body, err := json.Marshal(shrunkCaseSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	status, v := post(t, ts.URL+"/v1/jobs", "application/json", string(body))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	waitTerminal(t, ts.URL, v.ID)

	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Draining   bool `json:"draining"`
		Workers    int  `json:"workers"`
		QueueDepth int  `json:"queue_depth"`
		Admission  struct {
			Used     int `json:"used"`
			Capacity int `json:"capacity"`
		} `json:"admission"`
		Phases map[string]struct {
			Tasks  int   `json:"tasks"`
			BusyNS int64 `json:"busy_ns"`
		} `json:"phases"`
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Workers != 2 || doc.Draining {
		t.Fatalf("status: %+v", doc)
	}
	if doc.Admission.Capacity != 4 || doc.Admission.Used != 0 {
		t.Fatalf("admission: %+v", doc.Admission)
	}
	if doc.Phases["eig"].Tasks == 0 || doc.Phases["probe"].Tasks == 0 {
		t.Fatalf("phases missing eig/probe work: %+v", doc.Phases)
	}
	found := false
	for _, j := range doc.Jobs {
		if j.ID == v.ID && j.State == "done" {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s not reported done in status: %+v", v.ID, doc.Jobs)
	}

	// Unknown job IDs 404.
	r404, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r404.Body)
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", r404.StatusCode)
	}
}
