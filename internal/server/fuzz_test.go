package server_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro"
	"repro/internal/server"
)

// FuzzJobSpec hammers the JSON ingest boundary: DecodeJobSpec must never
// panic, and any spec it accepts must be internally consistent enough
// for the pole–residue realization path to run without panicking (the
// synthetic-generation sources are skipped — they are seed-driven and
// expensive, not attacker-shaped).
func FuzzJobSpec(f *testing.F) {
	f.Add([]byte(`{"model":{"case":{"id":1,"order":40,"ports":3}},"char":{"seed":5}}`))
	f.Add([]byte(`{"model":{"generate":{"seed":3,"ports":2,"order":16}},"priority":"interactive","weight":2}`))
	f.Add([]byte(`{"model":{"pole_residue":{"d":[[0.1]],"poles":[[[-1e8,1e9]]],"residues":[[[[1e8,0]]]]}},"enforce":{"max_iters":2}}`))
	f.Add([]byte(`{"model":{}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"model":{"case":{"id":1}},"char":{"omega_max":1e308}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := server.DecodeJobSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		if spec.Model.PoleResidue != nil {
			// Realization must hold up against any numerics that slipped
			// through validation (stability etc. may still error — fine).
			_, _ = spec.BuildModel()
		}
		_ = spec.CharOptions()
		_ = spec.EnforceOptions()
		_ = spec.PriorityClass()
	})
}

// fuzzHandler builds one process-wide handler for ingest fuzzing. The
// validate path never submits work, so the engine stays idle; it is
// deliberately never closed (fuzz worker processes exit abruptly).
var fuzzHandler = sync.OnceValue(func() http.Handler {
	return server.New(server.Config{Engine: repro.NewFleet(1)})
})

// FuzzSnpIngest routes arbitrary bytes through the POST-.snp handler
// path in validate mode: the full HTTP plumbing plus the streaming
// Touchstone parser must reject garbage with 4xx and never panic. Seeds
// include the golden corpus shared with the touchstone fuzz targets.
func FuzzSnpIngest(f *testing.F) {
	golden, err := filepath.Glob(filepath.Join("..", "touchstone", "testdata", "golden", "*.s*p"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range golden {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, byte(2))
	}
	f.Add([]byte("# HZ S RI R 50\n1e9 0.5 0.1\n2e9 0.4 -0.2\n"), byte(1))
	f.Add([]byte("! comment only\n"), byte(1))
	f.Add([]byte{0}, byte(0))
	f.Fuzz(func(t *testing.T, data []byte, ports byte) {
		req := httptest.NewRequest(http.MethodPost,
			"/v1/jobs?validate=1&ports="+strconv.Itoa(int(ports)), bytes.NewReader(data))
		req.Header.Set("Content-Type", "application/octet-stream")
		rec := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest:
		default:
			t.Fatalf("ports=%d: unexpected status %d: %s", ports, rec.Code, rec.Body.Bytes())
		}
	})
}
