// Package server is the HTTP front door over the fleet engine: submit a
// characterization or enforcement job as a JSON model spec or a streamed
// Touchstone .snp body, watch per-phase progress and crossings-as-found
// over SSE, fetch the finished report, cancel via DELETE, and drain
// gracefully on shutdown. cmd/passivityd wraps it in a daemon.
//
// The service layer is strictly observational with respect to the
// numerics: progress events are emitted after the scheduler has committed
// each task's completion, publishers never block on slow subscribers
// (Stream is an append-only log with replay), and reports served over
// HTTP are bit-identical to direct in-process runs of the same request
// (the e2e suite gob-compares them).
//
// Admission maps the engine's backpressure onto status codes: a full
// fail-fast queue answers 429, a draining or closed server answers 503.
// Job contexts descend from the server's base context, not the submit
// request's — a job outlives the POST that created it — and DELETE
// cancels through the same ctx threading the whole pipeline honors.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/store"
	"repro/internal/touchstone"
	"repro/internal/vectfit"
)

// Config wires a Server.
type Config struct {
	// Engine runs the jobs. Required; the caller owns its lifecycle
	// (the server never closes it).
	Engine *fleet.Engine
	// BaseContext is the parent of every job context; canceling it
	// cancels all jobs. Nil means context.Background().
	BaseContext context.Context
	// MaxBodyBytes caps request bodies. Default 32 MiB.
	MaxBodyBytes int64
	// FitOrder is the per-column Vector Fitting order for .snp
	// submissions. Default 20.
	FitOrder int
	// Store, when non-nil, is the durable job log: every submission,
	// solver checkpoint, stream event, and terminal report is persisted
	// (fsync'd) to it, and New replays it — terminal jobs come back
	// queryable, incomplete jobs are re-submitted seeded from their last
	// checkpoint and finish bit-identical to an uninterrupted run. The
	// caller owns the store's lifecycle (close it after DrainJobs).
	Store *store.Store
}

// Server is the HTTP handler set. Create with New; it implements
// http.Handler.
type Server struct {
	engine   *fleet.Engine
	base     context.Context
	maxBody  int64
	fitOrder int
	mux      *http.ServeMux
	reg      registry
	store    *store.Store
	recov    int // jobs replayed from the store at startup
	draining atomic.Bool
	jobs     sync.WaitGroup // one count per submitted job's watcher
}

// New builds the handler set around an engine.
func New(cfg Config) *Server {
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	s := &Server{
		engine:   cfg.Engine,
		base:     base,
		maxBody:  cfg.MaxBodyBytes,
		fitOrder: cfg.FitOrder,
		mux:      http.NewServeMux(),
		store:    cfg.Store,
	}
	if s.maxBody <= 0 {
		s.maxBody = 32 << 20
	}
	if s.fitOrder <= 0 {
		s.fitOrder = 20
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /status", s.handleStatus)
	if s.store != nil {
		s.recov = s.recoverJobs()
	}
	return s
}

// RecoveredJobs reports how many jobs New replayed from the durable store
// (terminal and resumed). Zero without a store.
func (s *Server) RecoveredJobs() int { return s.recov }

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginDrain flips the server into drain mode: /healthz goes 503 and new
// submissions are refused with 503 while everything in flight runs to
// completion. Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// DrainJobs blocks until every submitted job has reached a terminal
// state, or ctx expires. Call BeginDrain first so no new jobs arrive.
func (s *Server) DrainJobs(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/jobs: a JSON JobSpec body, or a Touchstone
// .snp stream with ?ports= (and optional ?order=, ?priority=, ?weight=).
// ?validate=1 dry-runs the ingest (decode/parse + validate) and submits
// nothing. Backpressure: 429 when a fail-fast admission queue is full,
// 503 while draining or after engine close.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if isSnpRequest(r) {
		s.submitSnp(w, r)
		return
	}
	spec, err := DecodeJobSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if r.URL.Query().Get("validate") == "1" {
		writeJSON(w, http.StatusOK, map[string]any{"valid": true})
		return
	}
	model, err := spec.BuildModel()
	if err != nil {
		writeError(w, http.StatusBadRequest, "build model: %v", err)
		return
	}
	s.startJob(w, r, fleet.Request{
		Model:    model,
		Char:     spec.CharOptions(),
		Enforce:  spec.EnforceOptions(),
		Priority: spec.PriorityClass(),
		Weight:   spec.Weight,
	}, &persistedSpec{Priority: spec.Priority, Weight: spec.Weight, Char: spec.Char, Enforce: spec.Enforce})
}

// isSnpRequest detects a Touchstone submission by content type.
func isSnpRequest(r *http.Request) bool {
	switch r.Header.Get("Content-Type") {
	case "application/octet-stream", "text/vnd.touchstone":
		return true
	}
	return false
}

// submitSnp ingests a streamed .snp body: parse → Vector Fit on the
// engine's pool → submit the fitted model. Parse and fit errors are the
// client's fault (400); the fit runs under an interactive-class client so
// an ingest is never starved behind batch jobs.
func (s *Server) submitSnp(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ports, err := strconv.Atoi(q.Get("ports"))
	if err != nil || ports < 1 || ports > maxSpecPorts {
		writeError(w, http.StatusBadRequest, "snp: want 1 ≤ ?ports= ≤ %d", maxSpecPorts)
		return
	}
	order := s.fitOrder
	if v := q.Get("order"); v != "" {
		order, err = strconv.Atoi(v)
		if err != nil || order < 1 || order > 100 {
			writeError(w, http.StatusBadRequest, "snp: want 1 ≤ ?order= ≤ 100")
			return
		}
	}
	var weight int
	if v := q.Get("weight"); v != "" {
		weight, err = strconv.Atoi(v)
		if err != nil || weight < 0 || weight > maxSpecWeight {
			writeError(w, http.StatusBadRequest, "snp: want 0 ≤ ?weight= ≤ %d", maxSpecWeight)
			return
		}
	}
	priority := core.PriorityBatch
	switch q.Get("priority") {
	case "", "batch":
	case "interactive":
		priority = core.PriorityInteractive
	default:
		writeError(w, http.StatusBadRequest, "snp: ?priority= must be batch or interactive")
		return
	}

	rd, err := touchstone.NewReader(r.Body, ports)
	if err != nil {
		writeError(w, http.StatusBadRequest, "snp: %v", err)
		return
	}
	if q.Get("validate") == "1" {
		// Dry run: stream the parse to completion (bounded by
		// MaxBytesReader) without fitting or submitting.
		if err := rd.Each(func(vectfit.Sample) error { return nil }); err != nil {
			writeError(w, http.StatusBadRequest, "snp: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"valid": true, "samples": rd.Samples()})
		return
	}
	client := s.engine.NewClient(core.PriorityInteractive, 1)
	ft := vectfit.NewFitter(order, vectfit.Options{Client: client})
	if err := rd.Each(ft.Add); err != nil {
		writeError(w, http.StatusBadRequest, "snp: %v", err)
		return
	}
	fit, err := ft.FinishContext(r.Context())
	if err != nil {
		writeError(w, http.StatusBadRequest, "snp fit: %v", err)
		return
	}
	// A .snp job is persisted spec-free: the fitted model snapshot carries
	// everything numeric, so recovery never re-runs the fit.
	pspec := &persistedSpec{Weight: weight}
	if priority == core.PriorityInteractive {
		pspec.Priority = "interactive"
	}
	s.startJob(w, r, fleet.Request{Model: fit.Model, Priority: priority, Weight: weight}, pspec)
}

// startJob submits the request to the engine, registers the job, and
// answers 202 with the job document. The job context descends from the
// server's base context; it is tied to the HTTP request's only for the
// duration of admission, so a client that disconnects while blocked on a
// full queue releases its slot, but the job survives the POST completing.
//
// With a store configured, the job's spec and model are persisted — and
// fsync'd — BEFORE submission: a 202 means the job survives any crash
// after it. A persist failure refuses the job (500) rather than running
// work that would silently vanish on restart.
func (s *Server) startJob(w http.ResponseWriter, r *http.Request, req fleet.Request, pspec *persistedSpec) {
	jctx, cancel := context.WithCancel(s.base)
	entry := s.reg.add(cancel, s.streamFor)
	req.Progress = func(ev core.ProgressEvent) { s.publishProgress(entry, ev) }
	if s.store != nil {
		specJSON, err := json.Marshal(pspec)
		if err == nil {
			err = s.store.AppendJobStart(entry.id, specJSON, req.Model)
		}
		if err != nil {
			cancel()
			entry.mu.Lock()
			entry.state = stateFailed
			entry.errMsg = "persist job: " + err.Error()
			entry.mu.Unlock()
			entry.stream.Close()
			writeError(w, http.StatusInternalServerError, "persist job: %v", err)
			return
		}
		s.attachCheckpointSinks(&req, entry.id)
	}

	stop := context.AfterFunc(r.Context(), cancel)
	job, err := s.engine.Submit(jctx, req)
	stop()
	if err != nil {
		cancel()
		entry.mu.Lock()
		entry.state = stateFailed
		entry.errMsg = err.Error()
		entry.mu.Unlock()
		entry.stream.Close()
		switch {
		case errors.Is(err, fleet.ErrQueueFull):
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, fleet.ErrEngineClosed):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusServiceUnavailable, "admission interrupted: %v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.jobs.Add(1)
	go s.watch(entry, job, jctx, cancel)
	writeJSON(w, http.StatusAccepted, entry.doc(false))
}

// publishProgress fans one solver progress event out to the job's SSE
// stream: a "progress" event always, plus one "crossing" event per
// near-axis frequency not announced before. Runs on pool worker
// goroutines; everything it touches is lock-protected and it never
// blocks on subscribers.
func (s *Server) publishProgress(e *jobEntry, ev core.ProgressEvent) {
	data, err := json.Marshal(progressDoc{
		Phase:  ev.Phase,
		Omega:  ev.Omega,
		Radius: ev.Radius,
		Done:   ev.Done,
		Total:  ev.Total,
	})
	if err == nil {
		e.stream.Publish("progress", data)
	}
	for _, omega := range e.markCrossings(ev.NearAxis) {
		if data, err := json.Marshal(crossingDoc{Omega: omega, Tentative: true}); err == nil {
			e.stream.Publish("crossing", data)
		}
	}
}

// watch waits for the job and publishes the terminal event: "report"
// with the full job document on success (including enforcement failures
// that still carry a report), "canceled", or "error". A failure on a
// canceled job context classifies as canceled regardless of how deep in
// the pipeline the ctx error was (un)wrapped.
func (s *Server) watch(e *jobEntry, job *fleet.Job, jctx context.Context, cancel context.CancelFunc) {
	defer s.jobs.Done()
	defer cancel()
	res, err := job.Wait()
	e.mu.Lock()
	if res != nil && res.Report != nil {
		e.report = NewReportDoc(res.Report)
	}
	if res != nil && res.EnforceReport != nil {
		e.enforce = &EnforceDoc{
			Iterations:    res.EnforceReport.Iterations,
			InitialWorst:  res.EnforceReport.InitialWorst,
			FinalWorst:    res.EnforceReport.FinalWorst,
			ResidueChange: res.EnforceReport.ResidueChange,
		}
	}
	var typ string
	switch {
	case err == nil:
		e.state = stateDone
		typ = "report"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded), jctx.Err() != nil:
		e.state = stateCanceled
		e.errMsg = err.Error()
		typ = "canceled"
	default:
		e.state = stateFailed
		e.errMsg = err.Error()
		typ = "error"
	}
	e.mu.Unlock()
	data, merr := json.Marshal(e.doc(true))
	if merr != nil {
		data = []byte(`{"error":"encode terminal event"}`)
	}
	e.stream.PublishFinal(typ, data)
	if s.store != nil {
		e.mu.Lock()
		state := e.state
		e.mu.Unlock()
		// Written after the terminal event: if the crash lands between the
		// two, recovery synthesizes the terminal from the event instead.
		_ = s.store.AppendTerminal(e.id, store.TerminalRecord{State: state, Doc: data})
	}
}

// handleList is GET /v1/jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.list()
	docs := make([]jobDoc, len(entries))
	for i, e := range entries {
		docs[i] = e.doc(false)
	}
	writeJSON(w, http.StatusOK, docs)
}

// handleGet is GET /v1/jobs/{id}: the job document, with the report once
// terminal.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, e.doc(true))
}

// handleCancel is DELETE /v1/jobs/{id}: cancel the job's context. The
// job reaches "canceled" asynchronously (cancellation granularity is one
// shift); canceling a terminal job is a no-op.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	e.cancel()
	writeJSON(w, http.StatusAccepted, e.doc(false))
}

// handleEvents is GET /v1/jobs/{id}/events: the job's SSE stream,
// replayed from the start (or from ?after=<seq>) and followed live until
// the terminal event. Event ids are the log sequence numbers, so a
// reconnecting client resumes with ?after= its last seen id.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	i := 0
	if v := r.URL.Query().Get("after"); v != "" {
		after, err := strconv.Atoi(v)
		if err != nil || after < -1 {
			writeError(w, http.StatusBadRequest, "want ?after= ≥ -1")
			return
		}
		i = after + 1
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		ev, ok, err := e.stream.Next(r.Context(), i)
		if err != nil || !ok {
			return // client gone, or complete log delivered
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
		flusher.Flush()
		i++
	}
}

// handleHealthz is GET /healthz: 200 "ok", or 503 "draining".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStatus is GET /status: engine-wide observability — pool width,
// queue depth, admission occupancy, per-phase execution counters, shift-
// cache traffic, and every job's state.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	used, capacity := s.engine.Admission()
	cache := s.engine.ShiftCacheStats()
	doc := statusDoc{
		Draining:   s.draining.Load(),
		Workers:    s.engine.Workers(),
		QueueDepth: s.engine.QueueDepth(),
		Admission:  admissionDoc{Used: used, Capacity: capacity},
		Phases:     make(map[string]phaseDoc),
		ShiftCache: shiftCacheDoc{Hits: cache.Hits, Misses: cache.Misses, Evictions: cache.Evictions},
	}
	for ph, st := range s.engine.PhaseStats() {
		doc.Phases[ph] = phaseDoc{Tasks: st.Tasks, BusyNS: st.Busy.Nanoseconds()}
	}
	if s.store != nil {
		if err := s.store.Err(); err != nil {
			doc.StoreError = err.Error()
		}
	}
	for _, e := range s.reg.list() {
		doc.Jobs = append(doc.Jobs, e.doc(false))
	}
	writeJSON(w, http.StatusOK, doc)
}
