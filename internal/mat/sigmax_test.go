package mat

import (
	"math"
	"math/rand"
	"testing"
)

// TestMaxSingularValueMatchesJacobi pins the targeted Lanczos σ_max
// against the full Jacobi SVD on a spread of shapes, including clustered
// and degenerate top singular values.
func TestMaxSingularValueMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, dims := range [][2]int{{1, 1}, {3, 3}, {8, 8}, {5, 2}, {2, 5}, {56, 56}, {83, 83}, {40, 90}} {
		m, n := dims[0], dims[1]
		a := randCDense(rng, m, n)
		got, err := MaxSingularValue(a)
		if err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
		s, err := SingularValues(a)
		if err != nil {
			t.Fatal(err)
		}
		want := s[0]
		if math.Abs(got-want) > 1e-10*(1+want) {
			t.Fatalf("%dx%d: σ_max %.17g vs Jacobi %.17g", m, n, got, want)
		}
	}
	// Degenerate top pair: σ_max has multiplicity 2.
	d := NewCDense(6, 6)
	for i := 0; i < 6; i++ {
		d.Set(i, i, complex(float64(6-i), 0))
	}
	d.Set(1, 1, 6)
	got, err := MaxSingularValue(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-10 {
		t.Fatalf("degenerate σ_max: got %.17g, want 6", got)
	}
	// Zero and empty matrices.
	z := NewCDense(4, 4)
	if got, err := MaxSingularValue(z); err != nil || got != 0 {
		t.Fatalf("zero matrix: got %v, %v", got, err)
	}
}

// BenchmarkMaxSingularValue56 tracks the targeted probe against the Jacobi
// SVD it replaced on the characteristic p=56 band-probe shape.
func BenchmarkMaxSingularValue56(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randCDense(rng, 56, 56)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := maxSingularValueLanczos(a); !ok {
			b.Fatal("fallback")
		}
	}
}

func BenchmarkJacobiSVD56(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randCDense(rng, 56, 56)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SingularValues(a); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMaxSingularValueDeterministic requires bit-identical repeated
// evaluations — the probe feeds reports with bit-identity guarantees.
func TestMaxSingularValueDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := randCDense(rng, 56, 56)
	first, err := MaxSingularValue(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := MaxSingularValue(a)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d: %.17g != %.17g", i, again, first)
		}
	}
}
