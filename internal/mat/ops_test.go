package mat

import (
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
)

func TestCDenseScaleSubT(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	a := randCDense(rng, 3, 4)
	s := complex(2, -1)
	scaled := a.Scale(s)
	for i := range a.Data {
		if scaled.Data[i] != s*a.Data[i] {
			t.Fatal("Scale mismatch")
		}
	}
	if !a.Sub(a).Equalish(NewCDense(3, 4), 0) {
		t.Fatal("A−A != 0")
	}
	at := a.T()
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if at.At(j, i) != a.At(i, j) {
				t.Fatal("plain transpose mismatch")
			}
		}
	}
}

func TestCDenseRowIsView(t *testing.T) {
	a := NewCDense(2, 2)
	a.Row(1)[0] = complex(5, 5)
	if a.At(1, 0) != complex(5, 5) {
		t.Fatal("Row is not a view")
	}
}

func TestDenseRowIsView(t *testing.T) {
	a := NewDense(2, 3)
	a.Row(0)[2] = 7
	if a.At(0, 2) != 7 {
		t.Fatal("Row is not a view")
	}
}

func TestEqualishShapeMismatch(t *testing.T) {
	if NewDense(2, 2).Equalish(NewDense(2, 3), 1) {
		t.Fatal("shape mismatch not detected")
	}
	if NewCDense(2, 2).Equalish(NewCDense(3, 2), 1) {
		t.Fatal("complex shape mismatch not detected")
	}
}

func TestCCopyIndependent(t *testing.T) {
	x := []complex128{1, 2, 3}
	y := CCopy(x)
	y[0] = 9
	if x[0] != 1 {
		t.Fatal("CCopy shares storage")
	}
}

func TestStringRendering(t *testing.T) {
	d := DenseFromSlice(1, 2, []float64{1, -2})
	if !strings.Contains(d.String(), "1.0000e") {
		t.Fatalf("Dense.String: %q", d.String())
	}
	c := NewCDense(1, 1)
	c.Set(0, 0, complex(1, -2))
	if !strings.Contains(c.String(), "i)") {
		t.Fatalf("CDense.String: %q", c.String())
	}
}

func TestCDenseMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := randCDense(rng, 4, 3)
	x := make([]complex128, 3)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	xm := NewCDense(3, 1)
	for i := range x {
		xm.Set(i, 0, x[i])
	}
	y := a.MulVec(x)
	ym := a.Mul(xm)
	for i := range y {
		if cmplx.Abs(y[i]-ym.At(i, 0)) > 1e-13 {
			t.Fatal("CDense MulVec mismatch")
		}
	}
}

func TestCEyeAndCDenseFromSlice(t *testing.T) {
	e := CEye(2)
	if e.At(0, 0) != 1 || e.At(0, 1) != 0 {
		t.Fatal("CEye wrong")
	}
	m := CDenseFromSlice(1, 2, []complex128{1, 2})
	if m.At(0, 1) != 2 {
		t.Fatal("CDenseFromSlice wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong length")
		}
	}()
	CDenseFromSlice(2, 2, []complex128{1})
}

func TestVectorOpsLengthPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Dot":   func() { Dot([]float64{1}, []float64{1, 2}) },
		"Axpy":  func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		"CDot":  func() { CDot([]complex128{1}, []complex128{1, 2}) },
		"CAxpy": func() { CAxpy(1, []complex128{1}, []complex128{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestLUSolveDimensionPanics(t *testing.T) {
	f, err := LUFactor(Eye(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Solve([]float64{1, 2, 3})
}

func TestCDenseRealPart(t *testing.T) {
	c := NewCDense(1, 2)
	c.Set(0, 0, complex(3, 4))
	c.Set(0, 1, complex(-1, 2))
	r := c.Real()
	if r.At(0, 0) != 3 || r.At(0, 1) != -1 {
		t.Fatal("Real() wrong")
	}
}
