package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, m, n int) *Dense {
	a := NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

func randCDense(rng *rand.Rand, m, n int) *CDense {
	a := NewCDense(m, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

func TestDenseAtSet(t *testing.T) {
	a := NewDense(3, 4)
	a.Set(1, 2, 7.5)
	if got := a.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := a.At(2, 1); got != 0 {
		t.Fatalf("At(2,1) = %v, want 0", got)
	}
}

func TestDenseFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong data length")
		}
	}()
	DenseFromSlice(2, 2, []float64{1, 2, 3})
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestDenseMulAgainstHandComputed(t *testing.T) {
	a := DenseFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := DenseFromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := DenseFromSlice(2, 2, []float64{58, 64, 139, 154})
	if !c.Equalish(want, 1e-15) {
		t.Fatalf("Mul mismatch:\n%v\nwant\n%v", c, want)
	}
}

func TestDenseMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dimension mismatch")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestDenseTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 4, 7)
	at := a.T()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if at.At(j, i) != a.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !a.T().T().Equalish(a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestDenseMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 5, 3)
	x := make([]float64, 3)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xm := DenseFromSlice(3, 1, append([]float64(nil), x...))
	y := a.MulVec(x)
	ym := a.Mul(xm)
	for i := range y {
		if math.Abs(y[i]-ym.At(i, 0)) > 1e-14 {
			t.Fatalf("MulVec mismatch at %d: %v vs %v", i, y[i], ym.At(i, 0))
		}
	}
}

func TestDenseMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 5, 3)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := a.MulVecT(x)
	want := a.T().MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-14 {
			t.Fatalf("MulVecT mismatch at %d", i)
		}
	}
}

func TestAddSubScaleProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 4, 4)
		b := randDense(rng, 4, 4)
		// (a+b)-b == a
		if !a.Add(b).Sub(b).Equalish(a, 1e-12) {
			return false
		}
		// 2a == a+a
		return a.Scale(2).Equalish(a.Add(a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 3, 4)
		b := randDense(rng, 4, 5)
		c := randDense(rng, 5, 2)
		l := a.Mul(b).Mul(c)
		r := a.Mul(b.Mul(c))
		return l.Equalish(r, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2Overflow(t *testing.T) {
	x := []float64{1e308, 1e308}
	got := Norm2(x)
	want := math.Sqrt2 * 1e308
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Norm2 overflow guard failed: %v", got)
	}
	if Norm2(nil) != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", Norm2(nil))
	}
}

func TestDotAxpyScaleVec(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	z := append([]float64(nil), y...)
	Axpy(2, x, z)
	for i := range z {
		if z[i] != y[i]+2*x[i] {
			t.Fatalf("Axpy mismatch at %d", i)
		}
	}
	ScaleVec(0.5, z)
	for i := range z {
		if z[i] != (y[i]+2*x[i])/2 {
			t.Fatalf("ScaleVec mismatch at %d", i)
		}
	}
}

func TestFrobNormMaxAbs(t *testing.T) {
	a := DenseFromSlice(2, 2, []float64{3, -4, 0, 0})
	if got := a.FrobNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobNorm = %v, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestCDenseHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCDense(rng, 3, 5)
	ah := a.H()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			got := ah.At(j, i)
			want := a.At(i, j)
			if real(got) != real(want) || imag(got) != -imag(want) {
				t.Fatalf("H mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !a.H().H().Equalish(a, 0) {
		t.Fatal("double conjugate transpose is not identity")
	}
}

func TestCDenseMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randCDense(rng, 4, 4)
	if !a.Mul(CEye(4)).Equalish(a, 1e-14) || !CEye(4).Mul(a).Equalish(a, 1e-14) {
		t.Fatal("identity multiplication failed")
	}
}

func TestCDotConjugatesFirstArgument(t *testing.T) {
	x := []complex128{complex(0, 1)}
	y := []complex128{complex(0, 1)}
	if got := CDot(x, y); got != 1 {
		t.Fatalf("CDot(i, i) = %v, want 1", got)
	}
}

func TestCNorm2(t *testing.T) {
	x := []complex128{complex(3, 4)}
	if got := CNorm2(x); math.Abs(got-5) > 1e-15 {
		t.Fatalf("CNorm2 = %v, want 5", got)
	}
}

func TestRealComplexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randDense(rng, 3, 3)
	if !a.ToComplex().Real().Equalish(a, 0) {
		t.Fatal("ToComplex/Real round trip failed")
	}
}
