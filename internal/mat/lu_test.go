package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 3, 5, 10, 40} {
		a := randDense(rng, n, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		f, err := LUFactor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := f.Solve(b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-9*(1+math.Abs(xTrue[i])) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := DenseFromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := LUFactor(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a := DenseFromSlice(2, 2, []float64{1, 2, 3, 4})
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-2)) > 1e-14 {
		t.Fatalf("Det = %v, want -2", d)
	}
}

func TestInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randDense(rng, n, n)
		// Diagonally dominate to keep well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).Equalish(Eye(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 6, 6)
	for i := 0; i < 6; i++ {
		a.Set(i, i, a.At(i, i)+6)
	}
	b := randDense(rng, 6, 3)
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(x).Equalish(b, 1e-10) {
		t.Fatal("SolveDense residual too large")
	}
}

func TestCLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 3, 8, 30} {
		a := randCDense(rng, n, n)
		xTrue := make([]complex128, n)
		for i := range xTrue {
			xTrue[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := a.MulVec(xTrue)
		f, err := CLUFactor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := f.Solve(b)
		for i := range x {
			if cmplx.Abs(x[i]-xTrue[i]) > 1e-9*(1+cmplx.Abs(xTrue[i])) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCLUSolveIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 7
	a := randCDense(rng, n, n)
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	f, err := CLUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	want := f.Solve(b)
	got := append([]complex128(nil), b...)
	f.SolveInto(got, got) // aliased
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("aliased SolveInto mismatch at %d", i)
		}
	}
}

func TestCInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randCDense(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+complex(float64(2*n), 0))
		}
		inv, err := CInverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).Equalish(CEye(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCLUDet(t *testing.T) {
	// det of diag(2i, 3) = 6i.
	a := NewCDense(2, 2)
	a.Set(0, 0, complex(0, 2))
	a.Set(1, 1, 3)
	f, err := CLUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); cmplx.Abs(d-complex(0, 6)) > 1e-14 {
		t.Fatalf("Det = %v, want 6i", d)
	}
}

func TestCLUSingular(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if _, err := CLUFactor(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}
