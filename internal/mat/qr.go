package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned by least-squares solves when the coefficient
// matrix does not have full column rank to working precision.
var ErrRankDeficient = errors.New("mat: rank-deficient least-squares system")

// QR holds a Householder QR factorization A = Q·R of an m×n matrix, m ≥ n.
// The factors are stored compactly: the upper triangle of qr holds R and the
// columns below the diagonal hold the Householder vectors (with implicit
// unit leading entries scaled via tau).
type QR struct {
	qr  *Dense
	tau []float64
}

// QRFactor computes the Householder QR factorization of a (m ≥ n). The
// input is not modified.
func QRFactor(a *Dense) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("mat: QR needs rows ≥ cols, got %d×%d", m, n))
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k, rows k..m-1.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		alpha := qr.At(k, k)
		if alpha > 0 {
			norm = -norm
		}
		// v = x − norm·e1, normalized so v[k] = 1.
		v0 := alpha - norm
		for i := k + 1; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/v0)
		}
		tau[k] = -v0 / norm
		qr.Set(k, k, norm)
		// Apply H = I − tau·v·vᵀ to the trailing columns.
		for j := k + 1; j < n; j++ {
			s := qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s *= tau[k]
			qr.Set(k, j, qr.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau}
}

// applyQT computes y ← Qᵀ·y in place (y has length m).
func (f *QR) applyQT(y []float64) {
	m, n := f.qr.Rows, f.qr.Cols
	for k := 0; k < n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		s := y[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s *= f.tau[k]
		y[k] -= s
		for i := k + 1; i < m; i++ {
			y[i] -= s * f.qr.At(i, k)
		}
	}
}

// applyQ computes y ← Q·y in place (y has length m).
func (f *QR) applyQ(y []float64) {
	m, n := f.qr.Rows, f.qr.Cols
	for k := n - 1; k >= 0; k-- {
		if f.tau[k] == 0 {
			continue
		}
		s := y[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s *= f.tau[k]
		y[k] -= s
		for i := k + 1; i < m; i++ {
			y[i] -= s * f.qr.At(i, k)
		}
	}
}

// SolveLS solves the least-squares problem min‖A·x − b‖₂ and returns x
// (length n). Returns ErrRankDeficient if R has a (near-)zero diagonal.
func (f *QR) SolveLS(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		panic(fmt.Sprintf("mat: QR solve dimension mismatch %d vs %d", len(b), m))
	}
	y := make([]float64, m)
	copy(y, b)
	f.applyQT(y)
	// Back substitution with R.
	x := y[:n]
	rmax := 0.0
	for k := 0; k < n; k++ {
		if a := math.Abs(f.qr.At(k, k)); a > rmax {
			rmax = a
		}
	}
	tol := float64(m) * rmax * 1e-14
	for i := n - 1; i >= 0; i-- {
		d := f.qr.At(i, i)
		if math.Abs(d) <= tol {
			return nil, ErrRankDeficient
		}
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	out := make([]float64, n)
	copy(out, x)
	return out, nil
}

// R returns the n×n upper-triangular factor.
func (f *QR) R() *Dense {
	n := f.qr.Cols
	r := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// Q returns the thin m×n orthonormal factor.
func (f *QR) Q() *Dense {
	m, n := f.qr.Rows, f.qr.Cols
	q := NewDense(m, n)
	col := make([]float64, m)
	for j := 0; j < n; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		f.applyQ(col)
		for i := 0; i < m; i++ {
			q.Set(i, j, col[i])
		}
	}
	return q
}

// LeastSquares solves min‖A·x − b‖₂ directly (convenience wrapper).
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	return QRFactor(a).SolveLS(b)
}
