// Package mat provides the dense linear-algebra substrate used by the
// Hamiltonian eigensolver: real and complex dense matrices, LU and QR
// factorizations, Hessenberg reduction, a shifted-QR eigensolver, and a
// Golub–Kahan–Reinsch SVD. Everything is implemented on top of the
// standard library only.
//
// Conventions:
//   - Matrices are stored row-major in a flat slice.
//   - Dimension mismatches are programmer errors and panic.
//   - Numerical failures (singularity, non-convergence) return errors.
//
// Invariants: factorizations never alias their input unless the name says
// so (CLUFactorInPlace); accumulation orders are fixed, so every routine
// is bit-deterministic for identical inputs — the property the scheduler
// layers above rely on for cross-thread-count reproducibility.
//
// Concurrency: the package has no global state and does no internal
// locking. Distinct matrices/vectors may be used from distinct goroutines
// freely; sharing one object concurrently is the caller's responsibility
// (the pool layers only ever share read-only operands).
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a real matrix stored in row-major order.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense returns a zero-initialized Rows×Cols real matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// DenseFromSlice wraps the given row-major data. The slice is used directly,
// not copied; its length must be rows*cols.
func DenseFromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d×%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	m.assertSameShape(b)
	c := NewDense(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = m.Data[i] + b.Data[i]
	}
	return c
}

// Sub returns m − b.
func (m *Dense) Sub(b *Dense) *Dense {
	m.assertSameShape(b)
	c := NewDense(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = m.Data[i] - b.Data[i]
	}
	return c
}

// Scale returns s·m.
func (m *Dense) Scale(s float64) *Dense {
	c := NewDense(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = s * m.Data[i]
	}
	return c
}

// Mul returns the matrix product m·b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	c := NewDense(m.Rows, b.Cols)
	// ikj loop order: stream over rows of b for cache friendliness.
	for i := 0; i < m.Rows; i++ {
		ci := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range bk {
				ci[j] += a * bv
			}
		}
	}
	return c
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("mat: dimension mismatch %d×%d · vec(%d)", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range ri {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecT returns mᵀ·x without forming the transpose.
func (m *Dense) MulVecT(x []float64) []float64 {
	if m.Rows != len(x) {
		panic(fmt.Sprintf("mat: dimension mismatch %d×%dᵀ · vec(%d)", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		ri := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range ri {
			y[j] += v * xi
		}
	}
	return y
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equalish reports whether m and b agree entrywise within tol.
func (m *Dense) Equalish(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% .4e ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (m *Dense) assertSameShape(b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// ToComplex converts m to a complex matrix with zero imaginary parts.
func (m *Dense) ToComplex() *CDense {
	c := NewCDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		c.Data[i] = complex(v, 0)
	}
	return c
}
