package mat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CHessenberg reduces the square complex matrix a to upper Hessenberg form
// by unitary similarity: a = Q·H·Qᴴ. It returns H and Q. The input is not
// modified.
func CHessenberg(a *CDense) (h, q *CDense) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Hessenberg of non-square %d×%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	h = a.Clone()
	q = CEye(n)
	if n < 3 {
		return h, q
	}
	v := make([]complex128, n)
	for k := 0; k < n-2; k++ {
		// Householder vector annihilating h[k+2..n-1, k].
		var norm float64
		for i := k + 1; i < n; i++ {
			norm = math.Hypot(norm, cmplx.Abs(h.At(i, k)))
		}
		if norm == 0 {
			continue
		}
		alpha := h.At(k+1, k)
		var beta complex128
		if alpha == 0 {
			beta = complex(norm, 0)
		} else {
			beta = -alpha / complex(cmplx.Abs(alpha), 0) * complex(norm, 0)
		}
		// v = x − beta·e1; then normalize to unit 2-norm.
		for i := k + 1; i < n; i++ {
			v[i] = h.At(i, k)
		}
		v[k+1] -= beta
		vn := CNorm2(v[k+1 : n])
		if vn == 0 {
			continue
		}
		inv := complex(1/vn, 0)
		for i := k + 1; i < n; i++ {
			v[i] *= inv
		}
		// H ← (I − 2vvᴴ)·H: rows k+1..n-1.
		for j := k; j < n; j++ {
			var s complex128
			for i := k + 1; i < n; i++ {
				s += cmplx.Conj(v[i]) * h.At(i, j)
			}
			s *= 2
			for i := k + 1; i < n; i++ {
				h.Set(i, j, h.At(i, j)-s*v[i])
			}
		}
		// H ← H·(I − 2vvᴴ): columns k+1..n-1.
		for i := 0; i < n; i++ {
			var s complex128
			for j := k + 1; j < n; j++ {
				s += h.At(i, j) * v[j]
			}
			s *= 2
			for j := k + 1; j < n; j++ {
				h.Set(i, j, h.At(i, j)-s*cmplx.Conj(v[j]))
			}
		}
		// Q ← Q·(I − 2vvᴴ).
		for i := 0; i < n; i++ {
			var s complex128
			for j := k + 1; j < n; j++ {
				s += q.At(i, j) * v[j]
			}
			s *= 2
			for j := k + 1; j < n; j++ {
				q.Set(i, j, q.At(i, j)-s*cmplx.Conj(v[j]))
			}
		}
		// Clean the annihilated entries.
		h.Set(k+1, k, beta)
		for i := k + 2; i < n; i++ {
			h.Set(i, k, 0)
		}
	}
	return h, q
}
