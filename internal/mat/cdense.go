package mat

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// CDense is a complex matrix stored in row-major order.
type CDense struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols
}

// NewCDense returns a zero-initialized Rows×Cols complex matrix.
func NewCDense(rows, cols int) *CDense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", rows, cols))
	}
	return &CDense{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// CDenseFromSlice wraps the given row-major data (not copied).
func CDenseFromSlice(rows, cols int, data []complex128) *CDense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d×%d", len(data), rows, cols))
	}
	return &CDense{Rows: rows, Cols: cols, Data: data}
}

// CEye returns the n×n complex identity matrix.
func CEye(n int) *CDense {
	m := NewCDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *CDense) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CDense) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *CDense) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *CDense) Clone() *CDense {
	c := NewCDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// H returns the conjugate transpose of m as a new matrix.
func (m *CDense) H() *CDense {
	t := NewCDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return t
}

// T returns the plain (unconjugated) transpose of m.
func (m *CDense) T() *CDense {
	t := NewCDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns m + b.
func (m *CDense) Add(b *CDense) *CDense {
	m.assertSameShape(b)
	c := NewCDense(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = m.Data[i] + b.Data[i]
	}
	return c
}

// Sub returns m − b.
func (m *CDense) Sub(b *CDense) *CDense {
	m.assertSameShape(b)
	c := NewCDense(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = m.Data[i] - b.Data[i]
	}
	return c
}

// Scale returns s·m.
func (m *CDense) Scale(s complex128) *CDense {
	c := NewCDense(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = s * m.Data[i]
	}
	return c
}

// Mul returns the matrix product m·b.
func (m *CDense) Mul(b *CDense) *CDense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	c := NewCDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		ci := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range bk {
				ci[j] += a * bv
			}
		}
	}
	return c
}

// MulVec returns the matrix-vector product m·x.
func (m *CDense) MulVec(x []complex128) []complex128 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("mat: dimension mismatch %d×%d · vec(%d)", m.Rows, m.Cols, len(x)))
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, v := range ri {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MaxAbs returns the largest entry modulus of m.
func (m *CDense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobNorm returns the Frobenius norm of m.
func (m *CDense) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// Equalish reports whether m and b agree entrywise within tol (in modulus).
func (m *CDense) Equalish(b *CDense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Real returns the real part of m as a real matrix.
func (m *CDense) Real() *Dense {
	r := NewDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = real(v)
	}
	return r
}

// String renders the matrix for debugging.
func (m *CDense) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&sb, "(% .3e%+.3ei) ", real(v), imag(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (m *CDense) assertSameShape(b *CDense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
