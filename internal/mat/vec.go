package mat

import (
	"fmt"
	"math"
)

// ---- real vector helpers ----

// Dot returns the inner product xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: vector length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y ← y + a·x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: vector length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec computes x ← a·x in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// ProjSub removes the component of w along u: it returns h = uᵀ·w and
// performs w ← w − h·u in one call — the real-arithmetic counterpart of
// CProjSub for the half-size path's real Arnoldi loop.
func ProjSub(u, w []float64) float64 {
	h := Dot(u, w)
	if h != 0 {
		Axpy(-h, u, w)
	}
	return h
}

// ---- complex vector helpers ----
//
// The complex BLAS-1 kernels below sit inside the Arnoldi MGS loop, which
// is the second-largest cost of a solve after the structured operators.
// They are written in explicit real arithmetic — no cmplx.Conj calls, no
// per-element [2]float64 literals — with the accumulation order of the
// original straightforward loops preserved, so results are bit-identical
// up to documented exceptions (CNorm2's fast path reassociates the sum of
// squares; CAxpy's unrolling is exact because it has no cross-iteration
// dependence).

// CDot returns the inner product xᴴy (conjugating x).
func CDot(x, y []complex128) complex128 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: vector length mismatch %d vs %d", len(x), len(y)))
	}
	y = y[:len(x)]
	var re, im float64
	for i, v := range x {
		w := y[i]
		vr, vi := real(v), imag(v)
		wr, wi := real(w), imag(w)
		re += vr*wr + vi*wi
		im += vr*wi - vi*wr
	}
	return complex(re, im)
}

// CNorm2 returns the Euclidean norm of a complex vector. The plain sum of
// squares is used whenever it stays comfortably inside the normal range;
// the scaled overflow-safe recurrence only runs as a fallback.
func CNorm2(x []complex128) float64 {
	var ssq float64
	for _, v := range x {
		vr, vi := real(v), imag(v)
		ssq += vr*vr + vi*vi
	}
	// 1e-292 ≈ 2⁻¹⁰²²/ε: above it no squared term can have lost precision
	// to the denormal range.
	if ssq >= 1e-292 && !math.IsInf(ssq, 1) {
		return math.Sqrt(ssq)
	}
	var scale float64
	ssq = 1
	for _, v := range x {
		for _, p := range [...]float64{real(v), imag(v)} {
			if p == 0 {
				continue
			}
			a := math.Abs(p)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// CAxpy computes y ← y + a·x in place. Iterations are independent, so the
// 4-way unroll is bit-identical to the scalar loop.
func CAxpy(a complex128, x, y []complex128) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: vector length mismatch %d vs %d", len(x), len(y)))
	}
	ar, ai := real(a), imag(a)
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		y0, y1, y2, y3 := y[i], y[i+1], y[i+2], y[i+3]
		y[i] = complex(real(y0)+(ar*real(x0)-ai*imag(x0)), imag(y0)+(ar*imag(x0)+ai*real(x0)))
		y[i+1] = complex(real(y1)+(ar*real(x1)-ai*imag(x1)), imag(y1)+(ar*imag(x1)+ai*real(x1)))
		y[i+2] = complex(real(y2)+(ar*real(x2)-ai*imag(x2)), imag(y2)+(ar*imag(x2)+ai*real(x2)))
		y[i+3] = complex(real(y3)+(ar*real(x3)-ai*imag(x3)), imag(y3)+(ar*imag(x3)+ai*real(x3)))
	}
	for ; i < n; i++ {
		xi := x[i]
		yi := y[i]
		y[i] = complex(real(yi)+(ar*real(xi)-ai*imag(xi)), imag(yi)+(ar*imag(xi)+ai*real(xi)))
	}
}

// CProjSub removes the component of w along u: it returns h = uᴴ·w and
// performs w ← w − h·u in one call. This is the fused Gram–Schmidt
// projection step of the Arnoldi loop (one dot pass + one axpy pass with u
// hot in cache).
func CProjSub(u, w []complex128) complex128 {
	h := CDot(u, w)
	if h != 0 {
		CAxpy(-h, u, w)
	}
	return h
}

// CScaleVec computes x ← a·x in place.
func CScaleVec(a complex128, x []complex128) {
	for i := range x {
		x[i] *= a
	}
}

// CCopy returns a copy of x.
func CCopy(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	copy(y, x)
	return y
}
