package mat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ---- real vector helpers ----

// Dot returns the inner product xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: vector length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y ← y + a·x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: vector length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec computes x ← a·x in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// ---- complex vector helpers ----

// CDot returns the inner product xᴴy (conjugating x).
func CDot(x, y []complex128) complex128 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: vector length mismatch %d vs %d", len(x), len(y)))
	}
	var s complex128
	for i, v := range x {
		s += cmplx.Conj(v) * y[i]
	}
	return s
}

// CNorm2 returns the Euclidean norm of a complex vector.
func CNorm2(x []complex128) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		for _, p := range [2]float64{real(v), imag(v)} {
			if p == 0 {
				continue
			}
			a := math.Abs(p)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// CAxpy computes y ← y + a·x in place.
func CAxpy(a complex128, x, y []complex128) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: vector length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// CScaleVec computes x ← a·x in place.
func CScaleVec(a complex128, x []complex128) {
	for i := range x {
		x[i] *= a
	}
}

// CCopy returns a copy of x.
func CCopy(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	copy(y, x)
	return y
}
