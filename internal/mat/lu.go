package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters an
// (numerically) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
// L (unit lower) and U (upper) are packed into a single matrix.
type LU struct {
	lu   *Dense
	piv  []int // row i of the factor came from row piv[i] of A
	sign int   // parity of the permutation, ±1
}

// LUFactor computes the LU factorization of the square matrix a with
// partial pivoting. The input is not modified.
func LUFactor(a *Dense) (*LU, error) {
	return luFactor(a.Clone())
}

// LUFactorInPlace is LUFactor without the defensive copy: the input is
// overwritten with the factors and owned by the returned LU. Use it when a
// is a freshly built scratch matrix (e.g. the half path's real per-shift
// SMW capacitance).
func LUFactorInPlace(a *Dense) (*LU, error) {
	return luFactor(a)
}

func luFactor(lu *Dense) (*LU, error) {
	if lu.Rows != lu.Cols {
		panic(fmt.Sprintf("mat: LU of non-square %d×%d matrix", lu.Rows, lu.Cols))
	}
	n := lu.Rows
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot search.
		p := k
		mx := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.Row(k)
			rp := lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri := lu.Row(i)
			rk := lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b and returns x.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: LU solve dimension mismatch %d vs %d", len(b), n))
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		var s float64
		for j := 0; j < i; j++ {
			s += ri[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		var s float64
		for j := i + 1; j < n; j++ {
			s += ri[j] * x[j]
		}
		x[i] = (x[i] - s) / ri[i]
	}
	return x
}

// SolveIntoScratch solves A·x = b, writing the solution into dst (len n)
// with a caller-provided permutation gather buffer (len ≥ n). dst and b may
// alias. It only reads the factorization, so any number of goroutines may
// solve against the same LU concurrently as long as each brings its own
// scratch — the property the half path's shift-factorization cache relies
// on to share one factored real SMW capacitance across in-flight runs.
func (f *LU) SolveIntoScratch(dst, b, scratch []float64) {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n || len(scratch) < n {
		panic("mat: LU SolveIntoScratch dimension mismatch")
	}
	// Gather b through the permutation first so dst may alias b.
	tmp := scratch
	for i := 0; i < n; i++ {
		tmp[i] = b[f.piv[i]]
	}
	copy(dst, tmp)
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		var s float64
		for j := 0; j < i; j++ {
			s += ri[j] * dst[j]
		}
		dst[i] -= s
	}
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		var s float64
		for j := i + 1; j < n; j++ {
			s += ri[j] * dst[j]
		}
		dst[i] = (dst[i] - s) / ri[i]
	}
}

// SolveMat solves A·X = B column-by-column and returns X.
func (f *LU) SolveMat(b *Dense) *Dense {
	n := f.lu.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("mat: LU solve dimension mismatch %d vs %d", b.Rows, n))
	}
	x := NewDense(n, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		sol := f.Solve(col)
		for i := 0; i < n; i++ {
			x.Set(i, j, sol[i])
		}
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns A⁻¹ for the square matrix a.
func Inverse(a *Dense) (*Dense, error) {
	f, err := LUFactor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMat(Eye(a.Rows)), nil
}

// SolveDense solves A·X = B directly (convenience wrapper).
func SolveDense(a, b *Dense) (*Dense, error) {
	f, err := LUFactor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMat(b), nil
}
