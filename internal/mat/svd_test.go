package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func csvdReconstruct(sv *CSVD) *CDense {
	k := len(sv.S)
	sig := NewCDense(k, k)
	for i, s := range sv.S {
		sig.Set(i, i, complex(s, 0))
	}
	return sv.U.Mul(sig).Mul(sv.V.H())
}

func TestCSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, dims := range [][2]int{{1, 1}, {3, 3}, {5, 2}, {2, 5}, {10, 10}, {30, 8}} {
		m, n := dims[0], dims[1]
		a := randCDense(rng, m, n)
		sv, err := CSVDecompose(a)
		if err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
		if !csvdReconstruct(sv).Equalish(a, 1e-9*(1+a.FrobNorm())) {
			t.Fatalf("%dx%d: UΣVᴴ != A", m, n)
		}
		k := len(sv.S)
		if !sv.U.H().Mul(sv.U).Equalish(CEye(k), 1e-9) {
			t.Fatalf("%dx%d: U not orthonormal", m, n)
		}
		if !sv.V.H().Mul(sv.V).Equalish(CEye(k), 1e-9) {
			t.Fatalf("%dx%d: V not orthonormal", m, n)
		}
		for i := 1; i < k; i++ {
			if sv.S[i] > sv.S[i-1]+1e-12 {
				t.Fatalf("%dx%d: singular values not sorted: %v", m, n, sv.S)
			}
		}
		for _, s := range sv.S {
			if s < 0 {
				t.Fatalf("%dx%d: negative singular value", m, n)
			}
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) padded: singular values are 3, 2.
	a := NewCDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	s, err := SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]-3) > 1e-12 || math.Abs(s[1]-2) > 1e-12 {
		t.Fatalf("got %v, want [3 2]", s)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value must be ~0 and U still orthonormal.
	a := NewCDense(3, 2)
	for i := 0; i < 3; i++ {
		a.Set(i, 0, complex(float64(i+1), 0))
		a.Set(i, 1, complex(2*float64(i+1), 0))
	}
	sv, err := CSVDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if sv.S[1] > 1e-10 {
		t.Fatalf("rank-1 matrix second singular value %v", sv.S[1])
	}
	if !sv.U.H().Mul(sv.U).Equalish(CEye(2), 1e-9) {
		t.Fatal("U not orthonormal after zero-σ completion")
	}
}

func TestSVDSingularValuesInvariantUnderUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randCDense(rng, n, n)
		s1, err := SingularValues(a)
		if err != nil {
			return false
		}
		// Multiply by a unitary from a QR of a random complex matrix:
		// use Hessenberg Q of a random matrix as a convenient unitary.
		_, q := CHessenberg(randCDense(rng, n, n))
		s2, err := SingularValues(q.Mul(a))
		if err != nil {
			return false
		}
		for i := range s1 {
			if math.Abs(s1[i]-s2[i]) > 1e-8*(1+s1[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDRealFactorsAreReal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randDense(rng, 6, 4)
	sv, err := SVDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	k := len(sv.S)
	sig := NewDense(k, k)
	for i, s := range sv.S {
		sig.Set(i, i, s)
	}
	if !sv.U.Mul(sig).Mul(sv.V.T()).Equalish(a, 1e-9*(1+a.FrobNorm())) {
		t.Fatal("real SVD reconstruction failed")
	}
	if !sv.U.T().Mul(sv.U).Equalish(Eye(k), 1e-9) {
		t.Fatal("real U not orthonormal")
	}
}

func TestNorm2MatAndCond2(t *testing.T) {
	a := DenseFromSlice(2, 2, []float64{4, 0, 0, 0.5})
	n2, err := Norm2Mat(a)
	if err != nil || math.Abs(n2-4) > 1e-12 {
		t.Fatalf("Norm2Mat = %v (%v), want 4", n2, err)
	}
	c, err := Cond2(a)
	if err != nil || math.Abs(c-8) > 1e-11 {
		t.Fatalf("Cond2 = %v (%v), want 8", c, err)
	}
	sing := DenseFromSlice(2, 2, []float64{1, 1, 1, 1})
	c, err = Cond2(sing)
	if err != nil || !math.IsInf(c, 1) {
		t.Fatalf("Cond2(singular) = %v (%v), want +Inf", c, err)
	}
}

func TestMaxSingularValueEmpty(t *testing.T) {
	s, err := MaxSingularValue(NewCDense(0, 0))
	if err != nil || s != 0 {
		t.Fatalf("MaxSingularValue(empty) = %v (%v)", s, err)
	}
}
