package mat

import (
	"math"
	"math/cmplx"
	"sort"
)

// CSVD holds a complex singular value decomposition A = U·diag(S)·Vᴴ.
// U is m×k and V is n×k with k = min(m, n); S is sorted descending.
type CSVD struct {
	U *CDense
	S []float64
	V *CDense
}

// CSVDecompose computes the thin SVD of the m×n complex matrix a using
// one-sided Jacobi rotations. It is accurate and simple; intended for the
// small (≤ a few hundred) matrices appearing in this library (p×p transfer
// matrices, projected problems, least-squares blocks).
func CSVDecompose(a *CDense) (*CSVD, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		// Decompose the conjugate transpose and swap factors:
		// Aᴴ = U'ΣV'ᴴ ⇒ A = V'ΣU'ᴴ.
		sv, err := CSVDecompose(a.H())
		if err != nil {
			return nil, err
		}
		return &CSVD{U: sv.V, S: sv.S, V: sv.U}, nil
	}
	// Work on a copy; V accumulates the right rotations.
	w := a.Clone()
	v := CEye(n)
	const tol = 1e-14
	const maxSweeps = 60
	// Column accessors on the row-major store.
	colDot := func(mtx *CDense, i, j int) complex128 {
		var s complex128
		for r := 0; r < mtx.Rows; r++ {
			s += cmplx.Conj(mtx.Data[r*mtx.Cols+i]) * mtx.Data[r*mtx.Cols+j]
		}
		return s
	}
	rotate := func(mtx *CDense, i, j int, cs float64, snE, snEbar complex128) {
		for r := 0; r < mtx.Rows; r++ {
			ci := mtx.Data[r*mtx.Cols+i]
			cj := mtx.Data[r*mtx.Cols+j]
			mtx.Data[r*mtx.Cols+i] = complex(cs, 0)*ci - snEbar*cj
			mtx.Data[r*mtx.Cols+j] = snE*ci + complex(cs, 0)*cj
		}
	}
	converged := false
	for sweep := 0; sweep < maxSweeps && !converged; sweep++ {
		converged = true
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				aii := real(colDot(w, i, i))
				ajj := real(colDot(w, j, j))
				g := colDot(w, i, j)
				ag := cmplx.Abs(g)
				if ag <= tol*math.Sqrt(aii*ajj) || ag == 0 {
					continue
				}
				converged = false
				e := g / complex(ag, 0)
				tau := (aii - ajj) / (2 * ag)
				// Smaller-magnitude root of t² − 2τt − 1 = 0 for a stable
				// inner rotation (classic Jacobi convergence condition).
				var t float64
				if tau >= 0 {
					t = -1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = 1 / (-tau + math.Sqrt(1+tau*tau))
				}
				cs := 1 / math.Sqrt(1+t*t)
				sn := t * cs
				snE := complex(sn, 0) * e
				snEbar := complex(sn, 0) * cmplx.Conj(e)
				rotate(w, i, j, cs, snE, snEbar)
				rotate(v, i, j, cs, snE, snEbar)
			}
		}
	}
	if !converged {
		return nil, ErrNoConvergence
	}
	// Extract singular values and left vectors.
	type col struct {
		idx int
		s   float64
	}
	cols := make([]col, n)
	for j := 0; j < n; j++ {
		var ss float64
		for r := 0; r < m; r++ {
			z := w.Data[r*n+j]
			ss += real(z)*real(z) + imag(z)*imag(z)
		}
		cols[j] = col{idx: j, s: math.Sqrt(ss)}
	}
	sort.SliceStable(cols, func(a, b int) bool { return cols[a].s > cols[b].s })
	u := NewCDense(m, n)
	vOut := NewCDense(n, n)
	s := make([]float64, n)
	for k, c := range cols {
		s[k] = c.s
		for r := 0; r < n; r++ {
			vOut.Set(r, k, v.At(r, c.idx))
		}
		if c.s > 0 {
			inv := complex(1/c.s, 0)
			for r := 0; r < m; r++ {
				u.Set(r, k, w.At(r, c.idx)*inv)
			}
		}
	}
	// Complete U columns for (numerically) zero singular values so that U
	// stays orthonormal: Gram-Schmidt canonical vectors against the rest.
	for k := 0; k < n; k++ {
		if s[k] > 0 {
			continue
		}
		for try := 0; try < m; try++ {
			cand := make([]complex128, m)
			cand[try] = 1
			for j := 0; j < n; j++ {
				if j == k {
					continue
				}
				var proj complex128
				for r := 0; r < m; r++ {
					proj += cmplx.Conj(u.At(r, j)) * cand[r]
				}
				for r := 0; r < m; r++ {
					cand[r] -= proj * u.At(r, j)
				}
			}
			if nrm := CNorm2(cand); nrm > 0.5 {
				inv := complex(1/nrm, 0)
				for r := 0; r < m; r++ {
					u.Set(r, k, cand[r]*inv)
				}
				break
			}
		}
	}
	return &CSVD{U: u, S: s, V: vOut}, nil
}

// SingularValues returns the singular values of the complex matrix a in
// descending order.
func SingularValues(a *CDense) ([]float64, error) {
	sv, err := CSVDecompose(a)
	if err != nil {
		return nil, err
	}
	return sv.S, nil
}

// MaxSingularValue returns σ_max(a). The extreme value is computed by the
// targeted Gram-matrix Lanczos iteration (see sigmax.go) — ~15–20× cheaper
// than a full SVD for the band-probe workload — with the Jacobi SVD as the
// fallback when the iteration cannot certify convergence.
func MaxSingularValue(a *CDense) (float64, error) {
	if s, ok := maxSingularValueLanczos(a); ok {
		return s, nil
	}
	s, err := SingularValues(a)
	if err != nil {
		return 0, err
	}
	if len(s) == 0 {
		return 0, nil
	}
	return s[0], nil
}

// SVDReal computes the thin SVD of a real matrix (via the complex path).
// U and V returned are real matrices.
type SVDReal struct {
	U *Dense
	S []float64
	V *Dense
}

// SVDecompose computes the thin SVD of the real matrix a.
func SVDecompose(a *Dense) (*SVDReal, error) {
	sv, err := CSVDecompose(a.ToComplex())
	if err != nil {
		return nil, err
	}
	// For a real input the factors can be chosen real: rotate each column
	// pair phase so the largest-magnitude entry of each U column is real.
	k := len(sv.S)
	u := NewDense(sv.U.Rows, k)
	v := NewDense(sv.V.Rows, k)
	for j := 0; j < k; j++ {
		// Find the phase of the dominant U entry.
		var ph complex128 = 1
		var best float64
		for i := 0; i < sv.U.Rows; i++ {
			if ab := cmplx.Abs(sv.U.At(i, j)); ab > best {
				best = ab
				ph = sv.U.At(i, j) / complex(ab, 0)
			}
		}
		if best == 0 {
			ph = 1
		}
		conj := cmplx.Conj(ph)
		for i := 0; i < sv.U.Rows; i++ {
			u.Set(i, j, real(sv.U.At(i, j)*conj))
		}
		for i := 0; i < sv.V.Rows; i++ {
			v.Set(i, j, real(sv.V.At(i, j)*conj))
		}
	}
	return &SVDReal{U: u, S: sv.S, V: v}, nil
}

// Norm2Mat returns the spectral norm (largest singular value) of the real
// matrix a.
func Norm2Mat(a *Dense) (float64, error) {
	s, err := SingularValues(a.ToComplex())
	if err != nil {
		return 0, err
	}
	if len(s) == 0 {
		return 0, nil
	}
	return s[0], nil
}

// Cond2 returns the 2-norm condition number σ_max/σ_min of a square matrix.
func Cond2(a *Dense) (float64, error) {
	s, err := SingularValues(a.ToComplex())
	if err != nil {
		return 0, err
	}
	if len(s) == 0 {
		return 0, nil
	}
	smin := s[len(s)-1]
	if smin == 0 {
		return math.Inf(1), nil
	}
	return s[0] / smin, nil
}
