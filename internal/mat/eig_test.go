package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sortComplex sorts eigenvalues by real part, then imaginary part, so
// spectra can be compared set-wise.
func sortComplex(v []complex128) {
	sort.Slice(v, func(i, j int) bool {
		if real(v[i]) != real(v[j]) {
			return real(v[i]) < real(v[j])
		}
		return imag(v[i]) < imag(v[j])
	})
}

func spectraMatch(got, want []complex128, tol float64) bool {
	if len(got) != len(want) {
		return false
	}
	g := append([]complex128(nil), got...)
	w := append([]complex128(nil), want...)
	sortComplex(g)
	sortComplex(w)
	// Greedy matching after sort can fail on ties; use full bipartite
	// greedy: for each want, find the closest unused got.
	used := make([]bool, len(g))
	for _, wv := range w {
		best, bi := math.Inf(1), -1
		for i, gv := range g {
			if used[i] {
				continue
			}
			if d := cmplx.Abs(gv - wv); d < best {
				best, bi = d, i
			}
		}
		if bi < 0 || best > tol {
			return false
		}
		used[bi] = true
	}
	return true
}

func TestCHessenbergForm(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, n := range []int{1, 2, 3, 6, 15} {
		a := randCDense(rng, n, n)
		h, q := CHessenberg(a)
		// Similarity: a = Q H Qᴴ.
		if !q.Mul(h).Mul(q.H()).Equalish(a, 1e-10) {
			t.Fatalf("n=%d: QHQᴴ != A", n)
		}
		// Unitarity of Q.
		if !q.H().Mul(q).Equalish(CEye(n), 1e-10) {
			t.Fatalf("n=%d: Q not unitary", n)
		}
		// Hessenberg structure.
		for i := 2; i < n; i++ {
			for j := 0; j < i-1; j++ {
				if h.At(i, j) != 0 {
					t.Fatalf("n=%d: H[%d,%d] = %v != 0", n, i, j, h.At(i, j))
				}
			}
		}
	}
}

func TestCEigDiagonal(t *testing.T) {
	d := NewCDense(3, 3)
	want := []complex128{complex(1, 2), complex(-3, 0), complex(0, -5)}
	for i, v := range want {
		d.Set(i, i, v)
	}
	got, err := CEigValues(d)
	if err != nil {
		t.Fatal(err)
	}
	if !spectraMatch(got, want, 1e-12) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCEigKnown2x2(t *testing.T) {
	// [[0, 1], [-1, 0]] has eigenvalues ±i.
	a := NewCDense(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, -1)
	got, err := CEigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{complex(0, 1), complex(0, -1)}
	if !spectraMatch(got, want, 1e-12) {
		t.Fatalf("got %v, want ±i", got)
	}
}

func TestEigRealMatrixConjugatePairs(t *testing.T) {
	// Real matrices have spectra closed under conjugation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := randDense(rng, n, n)
		vals, err := EigValues(a)
		if err != nil {
			return false
		}
		conj := make([]complex128, len(vals))
		for i, v := range vals {
			conj[i] = cmplx.Conj(v)
		}
		return spectraMatch(vals, conj, 1e-7*(1+a.FrobNorm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEigTraceAndDetInvariants(t *testing.T) {
	// Sum of eigenvalues = trace; product = det.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randDense(rng, n, n)
		vals, err := EigValues(a)
		if err != nil {
			return false
		}
		var sum, prod complex128 = 0, 1
		for _, v := range vals {
			sum += v
			prod *= v
		}
		var tr float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		lu, err := LUFactor(a)
		var det float64
		if err == nil {
			det = lu.Det()
		}
		scale := 1 + a.FrobNorm()
		if cmplx.Abs(sum-complex(tr, 0)) > 1e-8*scale {
			return false
		}
		if err == nil && cmplx.Abs(prod-complex(det, 0)) > 1e-6*(1+math.Abs(det)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSchurDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 4, 9, 20} {
		a := randCDense(rng, n, n)
		res, err := CSchur(a, true)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// A = Z T Zᴴ.
		if !res.Z.Mul(res.T).Mul(res.Z.H()).Equalish(a, 1e-8*(1+a.FrobNorm())) {
			t.Fatalf("n=%d: ZTZᴴ != A", n)
		}
		// Z unitary.
		if !res.Z.H().Mul(res.Z).Equalish(CEye(n), 1e-10) {
			t.Fatalf("n=%d: Z not unitary", n)
		}
		// T upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if cmplx.Abs(res.T.At(i, j)) > 1e-9*(1+a.FrobNorm()) {
					t.Fatalf("n=%d: T[%d,%d] = %v not negligible", n, i, j, res.T.At(i, j))
				}
			}
		}
	}
}

func TestCEigVectorsResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{2, 5, 12} {
		a := randCDense(rng, n, n)
		vals, vecs, err := CEig(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for k := 0; k < n; k++ {
			v := make([]complex128, n)
			for i := range v {
				v[i] = vecs.At(i, k)
			}
			av := a.MulVec(v)
			CAxpy(-vals[k], v, av) // av ← A v − λ v
			if res := CNorm2(av); res > 1e-7*(1+a.FrobNorm()) {
				t.Fatalf("n=%d: eigenpair %d residual %v", n, k, res)
			}
		}
	}
}

func TestCInverseIterationRefines(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 10
	a := randCDense(rng, n, n)
	vals, err := CEigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb an eigenvalue and recover it by inverse iteration.
	approx := vals[0] + complex(1e-4, -1e-4)
	v, mu, err := CInverseIteration(a, approx, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(mu-vals[0]) > 1e-8*(1+cmplx.Abs(vals[0])) {
		t.Fatalf("refined eigenvalue %v, want %v", mu, vals[0])
	}
	av := a.MulVec(v)
	CAxpy(-mu, v, av)
	if res := CNorm2(av); res > 1e-8*(1+a.FrobNorm()) {
		t.Fatalf("eigenvector residual %v", res)
	}
}

func TestEigCompanionMatrixRoots(t *testing.T) {
	// Companion matrix of z³ − 6z² + 11z − 6 has roots 1, 2, 3.
	a := DenseFromSlice(3, 3, []float64{
		6, -11, 6,
		1, 0, 0,
		0, 1, 0,
	})
	got, err := EigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, 2, 3}
	if !spectraMatch(got, want, 1e-8) {
		t.Fatalf("got %v, want 1,2,3", got)
	}
}

func TestHessenbergQREmptyAndTiny(t *testing.T) {
	if _, err := CEigValues(NewCDense(0, 0)); err != nil {
		t.Fatalf("0×0: %v", err)
	}
	one := NewCDense(1, 1)
	one.Set(0, 0, complex(3, 4))
	v, err := CEigValues(one)
	if err != nil || v[0] != complex(3, 4) {
		t.Fatalf("1×1: %v %v", v, err)
	}
}
