package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, dims := range [][2]int{{3, 3}, {5, 3}, {10, 4}, {20, 20}, {50, 7}} {
		m, n := dims[0], dims[1]
		a := randDense(rng, m, n)
		f := QRFactor(a)
		q, r := f.Q(), f.R()
		if !q.Mul(r).Equalish(a, 1e-10) {
			t.Fatalf("%dx%d: QR != A", m, n)
		}
		// Orthonormality of Q.
		if !q.T().Mul(q).Equalish(Eye(n), 1e-10) {
			t.Fatalf("%dx%d: QᵀQ != I", m, n)
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("%dx%d: R not upper triangular", m, n)
				}
			}
		}
	}
}

func TestQRLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system: solution must be recovered exactly.
	rng := rand.New(rand.NewSource(21))
	m, n := 12, 5
	a := randDense(rng, m, n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestQRLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space: Aᵀ(Ax−b) = 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 6 + rng.Intn(10)
		n := 2 + rng.Intn(4)
		a := randDense(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw: vacuously fine
		}
		r := a.MulVec(x)
		for i := range r {
			r[i] -= b[i]
		}
		g := a.MulVecT(r)
		return Norm2(g) < 1e-9*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := DenseFromSlice(4, 2, []float64{1, 2, 2, 4, 3, 6, 4, 8}) // rank 1
	_, err := LeastSquares(a, []float64{1, 0, 0, 0})
	if err != ErrRankDeficient {
		t.Fatalf("expected ErrRankDeficient, got %v", err)
	}
}

func TestQRTallPanicsOnWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wide matrix")
		}
	}()
	QRFactor(NewDense(2, 3))
}
