package mat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrNoConvergence is returned when an iterative eigenvalue or singular
// value routine fails to converge within its iteration budget.
var ErrNoConvergence = errors.New("mat: eigenvalue iteration did not converge")

// givens holds a complex Givens rotation:
//
//	[ c        s ] [ f ]   [ r ]
//	[ -conj(s) c ] [ g ] = [ 0 ]
//
// with real c ≥ 0 and c² + |s|² = 1.
type givens struct {
	c float64
	s complex128
}

// makeGivens computes the rotation zeroing g against f.
func makeGivens(f, g complex128) givens {
	if g == 0 {
		return givens{c: 1, s: 0}
	}
	if f == 0 {
		return givens{c: 0, s: cmplx.Conj(g) / complex(cmplx.Abs(g), 0)}
	}
	af, ag := cmplx.Abs(f), cmplx.Abs(g)
	r := math.Hypot(af, ag)
	c := af / r
	s := f / complex(af, 0) * cmplx.Conj(g) / complex(r, 0)
	return givens{c: c, s: s}
}

// SchurResult holds a complex Schur decomposition A = Z·T·Zᴴ with T upper
// triangular. Z may be nil when vectors were not requested.
type SchurResult struct {
	T *CDense
	Z *CDense
	// Values are the eigenvalues (the diagonal of T).
	Values []complex128
}

// CSchur computes the complex Schur decomposition of the square matrix a.
// If wantZ is false, Z is nil and only T/eigenvalues are produced.
func CSchur(a *CDense, wantZ bool) (*SchurResult, error) {
	h, q := CHessenberg(a)
	var z *CDense
	if wantZ {
		z = q
	}
	if err := hessenbergQR(h, z); err != nil {
		return nil, err
	}
	n := a.Rows
	vals := make([]complex128, n)
	for i := 0; i < n; i++ {
		vals[i] = h.At(i, i)
	}
	return &SchurResult{T: h, Z: z, Values: vals}, nil
}

// hessenbergQR triangularizes the upper Hessenberg matrix h in place using
// shifted QR iterations with Givens rotations, accumulating the unitary
// transformations into z when z is non-nil.
func hessenbergQR(h *CDense, z *CDense) error {
	n := h.Rows
	if n == 0 {
		return nil
	}
	const maxIterPerEig = 40
	eps := 2.2e-16
	hi := n - 1
	iter := 0
	totalBudget := maxIterPerEig * n
	total := 0
	for hi > 0 {
		// Deflate: find lo such that h[lo, lo-1] is negligible.
		lo := hi
		for lo > 0 {
			sub := cmplx.Abs(h.At(lo, lo-1))
			if sub <= eps*(cmplx.Abs(h.At(lo-1, lo-1))+cmplx.Abs(h.At(lo, lo))) {
				h.Set(lo, lo-1, 0)
				break
			}
			lo--
		}
		if lo == hi {
			// Eigenvalue converged at position hi.
			hi--
			iter = 0
			continue
		}
		if total >= totalBudget {
			return ErrNoConvergence
		}
		// Wilkinson shift from the trailing 2×2 of the active block.
		var shift complex128
		iter++
		total++
		if iter > 0 && iter%12 == 0 {
			// Exceptional shift to break symmetry-induced stagnation.
			shift = h.At(hi, hi) + complex(0.75*cmplx.Abs(h.At(hi, hi-1)), 0)
		} else {
			a11 := h.At(hi-1, hi-1)
			a12 := h.At(hi-1, hi)
			a21 := h.At(hi, hi-1)
			a22 := h.At(hi, hi)
			tr := a11 + a22
			det := a11*a22 - a12*a21
			disc := cmplx.Sqrt(tr*tr - 4*det)
			l1 := (tr + disc) / 2
			l2 := (tr - disc) / 2
			if cmplx.Abs(l1-a22) < cmplx.Abs(l2-a22) {
				shift = l1
			} else {
				shift = l2
			}
		}
		// One implicit single-shift QR sweep on rows/cols lo..hi: the first
		// rotation is taken from the shifted column, then the bulge is
		// chased down the subdiagonal (implicit Q theorem).
		gv := makeGivens(h.At(lo, lo)-shift, h.At(lo+1, lo))
		applyGivensLeft(h, gv, lo, lo+1, lo, n-1)
		top := lo + 2
		if top > hi {
			top = hi
		}
		applyGivensRight(h, gv, lo, lo+1, 0, top)
		if z != nil {
			applyGivensRight(z, gv, lo, lo+1, 0, z.Rows-1)
		}
		for k := lo + 1; k < hi; k++ {
			gv = makeGivens(h.At(k, k-1), h.At(k+1, k-1))
			applyGivensLeft(h, gv, k, k+1, k-1, n-1)
			h.Set(k+1, k-1, 0)
			top = k + 2
			if top > hi {
				top = hi
			}
			applyGivensRight(h, gv, k, k+1, 0, top)
			if z != nil {
				applyGivensRight(z, gv, k, k+1, 0, z.Rows-1)
			}
		}
	}
	return nil
}

// applyGivensLeft applies the rotation to rows (r1, r2) over columns
// [cLo, cHi]: [row r1; row r2] ← G·[row r1; row r2].
func applyGivensLeft(m *CDense, g givens, r1, r2, cLo, cHi int) {
	c := complex(g.c, 0)
	for j := cLo; j <= cHi; j++ {
		a := m.At(r1, j)
		b := m.At(r2, j)
		m.Set(r1, j, c*a+g.s*b)
		m.Set(r2, j, -cmplx.Conj(g.s)*a+c*b)
	}
}

// applyGivensRight applies the conjugate rotation to columns (c1, c2) over
// rows [rLo, rHi]: [col c1, col c2] ← [col c1, col c2]·Gᴴ.
func applyGivensRight(m *CDense, g givens, c1, c2, rLo, rHi int) {
	c := complex(g.c, 0)
	for i := rLo; i <= rHi; i++ {
		a := m.At(i, c1)
		b := m.At(i, c2)
		m.Set(i, c1, c*a+cmplx.Conj(g.s)*b)
		m.Set(i, c2, -g.s*a+c*b)
	}
}

// CEigValues returns the eigenvalues of the square complex matrix a.
func CEigValues(a *CDense) ([]complex128, error) {
	res, err := CSchur(a, false)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// EigValues returns the eigenvalues of the square real matrix a as complex
// numbers (conjugate pairs for complex eigenvalues).
func EigValues(a *Dense) ([]complex128, error) {
	return CEigValues(a.ToComplex())
}

// CEig computes eigenvalues and right eigenvectors of the square complex
// matrix a. Column j of the returned matrix is a unit-norm eigenvector for
// Values[j]. Eigenvectors of defective matrices are best-effort.
func CEig(a *CDense) (values []complex128, vectors *CDense, err error) {
	res, err := CSchur(a, true)
	if err != nil {
		return nil, nil, err
	}
	n := a.Rows
	t, z := res.T, res.Z
	vectors = NewCDense(n, n)
	y := make([]complex128, n)
	// Scale floor for near-singular diagonal differences.
	var tnorm float64
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			tnorm += cmplx.Abs(t.At(i, j))
		}
	}
	small := 2.2e-16 * tnorm
	if small == 0 {
		small = 2.2e-16
	}
	for k := 0; k < n; k++ {
		lambda := t.At(k, k)
		for i := range y {
			y[i] = 0
		}
		y[k] = 1
		// Back-substitute (T − λI)·y = 0 above row k.
		for i := k - 1; i >= 0; i-- {
			var s complex128
			for j := i + 1; j <= k; j++ {
				s += t.At(i, j) * y[j]
			}
			d := t.At(i, i) - lambda
			if cmplx.Abs(d) < small {
				d = complex(small, 0)
			}
			y[i] = -s / d
		}
		// Transform back: x = Z·y and normalize.
		for i := 0; i < n; i++ {
			var s complex128
			for j := 0; j <= k; j++ {
				s += z.At(i, j) * y[j]
			}
			vectors.Set(i, k, s)
		}
		col := make([]complex128, n)
		for i := 0; i < n; i++ {
			col[i] = vectors.At(i, k)
		}
		nrm := CNorm2(col)
		if nrm > 0 {
			inv := complex(1/nrm, 0)
			for i := 0; i < n; i++ {
				vectors.Set(i, k, vectors.At(i, k)*inv)
			}
		}
	}
	return res.Values, vectors, nil
}

// CInverseIteration refines an eigenvector of a for the approximate
// eigenvalue lambda by a few shifted inverse-power steps. v0 is the start
// vector (may be nil for a deterministic pseudo-random start). Returns the
// unit-norm eigenvector and the Rayleigh-quotient refined eigenvalue.
func CInverseIteration(a *CDense, lambda complex128, v0 []complex128, steps int) ([]complex128, complex128, error) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("mat: inverse iteration on non-square %d×%d", n, a.Cols))
	}
	shifted := a.Clone()
	// Perturb the shift slightly off the eigenvalue so the solve is stable.
	scale := a.FrobNorm()
	if scale == 0 {
		scale = 1
	}
	pert := complex(1e-10*scale, 0)
	for {
		for i := 0; i < n; i++ {
			shifted.Set(i, i, a.At(i, i)-lambda-pert)
		}
		f, err := CLUFactor(shifted)
		if err == nil {
			v := v0
			if v == nil {
				v = make([]complex128, n)
				st := uint64(0x9e3779b97f4a7c15)
				for i := range v {
					st = st*6364136223846793005 + 1442695040888963407
					v[i] = complex(float64(st>>40)/float64(1<<24)-0.5, float64(st>>33&0xffffff)/float64(1<<24)-0.5)
				}
			}
			nrm := CNorm2(v)
			if nrm == 0 {
				return nil, 0, errors.New("mat: zero start vector")
			}
			CScaleVec(complex(1/nrm, 0), v)
			for s := 0; s < steps; s++ {
				v = f.Solve(v)
				nrm = CNorm2(v)
				if nrm == 0 || math.IsInf(nrm, 0) || math.IsNaN(nrm) {
					break
				}
				CScaleVec(complex(1/nrm, 0), v)
			}
			av := a.MulVec(v)
			mu := CDot(v, av)
			return v, mu, nil
		}
		// Singular shift: widen the perturbation and retry.
		pert *= 10
		if cmplx.Abs(pert) > 1e-3*scale {
			return nil, 0, ErrSingular
		}
	}
}
