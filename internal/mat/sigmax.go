package mat

import "math"

// Targeted σ_max computation. Passivity characterization evaluates
// σ_max(H(jω)) at hundreds of band-probe frequencies per model, and the
// full one-sided Jacobi SVD (CSVDecompose) — O(p³) per sweep with several
// sweeps and per-rotation column dots — is far more machinery than the
// single extreme singular value needs. σ_max(A)² is the top eigenvalue of
// the Hermitian PSD Gram matrix G = AᴴA, which Hermitian Lanczos with full
// reorthogonalization pins down in a few dozen p²-cost matvecs after one
// p³ pass to form G: ~15–20× cheaper than the Jacobi route at p ≈ 56.
//
// Determinism: the start vector comes from a fixed splitmix-style integer
// recurrence, the iteration has no data-dependent ordering, and the
// convergence test is a residual bound on the projected problem — repeated
// calls are bit-identical, which the report bit-identity guarantees
// require. On the (never observed) chance the iteration fails to certify
// convergence within the iteration cap, MaxSingularValue falls back to the
// Jacobi SVD rather than return an uncertified estimate.

// sigmaMaxRelTol is the relative residual bound certifying the Lanczos
// eigenvalue: ‖G·x − λx‖ ≤ tol·λ gives a σ_max relative error ≤ ~tol/2,
// far below the 1e-9 agreement contracts built on these probes.
const sigmaMaxRelTol = 1e-12

// maxSingularValueLanczos returns (σ_max, true) when the Lanczos bound
// certifies convergence, (0, false) otherwise.
func maxSingularValueLanczos(a *CDense) (float64, bool) {
	m, n := a.Rows, a.Cols
	if m == 0 || n == 0 {
		return 0, true
	}
	if m < n {
		// Work with the smaller Gram matrix: σ(A) = σ(Aᴴ).
		return maxSingularValueLanczos(a.H())
	}
	// G = AᴴA, Hermitian n×n: G[i][j] = Σ_r conj(A[r][i])·A[r][j].
	g := NewCDense(n, n)
	for r := 0; r < m; r++ {
		row := a.Row(r)
		for i := 0; i < n; i++ {
			ci := row[i]
			cir, cii := real(ci), -imag(ci)
			if cir == 0 && cii == 0 {
				continue
			}
			gi := g.Row(i)
			for j := i; j < n; j++ {
				cj := row[j]
				gi[j] += complex(cir*real(cj)-cii*imag(cj), cir*imag(cj)+cii*real(cj))
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := g.At(i, j)
			g.Set(j, i, complex(real(v), -imag(v)))
		}
	}
	// Scale guard: λ_max(G) ≤ trace(G); an all-zero matrix is σ_max = 0.
	var trace float64
	for i := 0; i < n; i++ {
		trace += real(g.At(i, i))
	}
	if trace == 0 {
		return 0, true
	}

	maxIter := n
	if maxIter > 64 {
		maxIter = 64
	}
	v := make([][]complex128, 0, maxIter+1)
	v0 := deterministicStart(n)
	v = append(v, v0)
	alpha := make([]float64, 0, maxIter)
	beta := make([]float64, 0, maxIter) // beta[k] couples v[k] to v[k+1]
	w := make([]complex128, n)
	for k := 0; k < maxIter; k++ {
		vk := v[k]
		for i := 0; i < n; i++ {
			row := g.Row(i)
			var sr, si float64
			for j, x := range vk {
				r := row[j]
				sr += real(r)*real(x) - imag(r)*imag(x)
				si += real(r)*imag(x) + imag(r)*real(x)
			}
			w[i] = complex(sr, si)
		}
		// Full reorthogonalization keeps the basis orthonormal in floating
		// point; the subspace is tiny compared to the G matvec.
		var ak float64
		for i, u := range v {
			c := CProjSub(u, w)
			if i == k {
				ak = real(c)
			}
		}
		for _, u := range v {
			CProjSub(u, w)
		}
		alpha = append(alpha, ak)
		bk := CNorm2(w)
		lam, yLast := lanczosTopEig(alpha, beta)
		// Residual of the lifted Ritz pair: β_k·|y_k|. An (numerically)
		// invariant subspace certifies exactly.
		if resid := bk * math.Abs(yLast); resid <= sigmaMaxRelTol*lam || bk <= 1e-14*trace {
			if lam < 0 {
				lam = 0
			}
			return math.Sqrt(lam), true
		}
		beta = append(beta, bk)
		next := make([]complex128, n)
		inv := complex(1/bk, 0)
		for i, z := range w {
			next[i] = z * inv
		}
		v = append(v, next)
	}
	return 0, false
}

// lanczosTopEig returns the largest eigenvalue of the symmetric tridiagonal
// T(alpha, beta) and the |last component| of its unit eigenvector — the two
// quantities the residual bound needs — in O(k) per bisection step: Sturm
// counts bracket λ_max to machine precision, then two steps of tridiagonal
// inverse iteration recover the eigenvector. This runs every Lanczos
// iteration, so it must stay far below the O(n²) matvec (a dense
// eigensolve here would dominate the whole probe).
func lanczosTopEig(alpha, beta []float64) (lam, yLast float64) {
	k := len(alpha)
	if k == 1 {
		return alpha[0], 1
	}
	// Gershgorin bracket.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < k; i++ {
		var r float64
		if i > 0 {
			r += math.Abs(beta[i-1])
		}
		if i < k-1 {
			r += math.Abs(beta[i])
		}
		if alpha[i]-r < lo {
			lo = alpha[i] - r
		}
		if alpha[i]+r > hi {
			hi = alpha[i] + r
		}
	}
	// Sturm count: the number of eigenvalues below x is the number of
	// negative terms in the LDLᵀ pivot recurrence of T − xI.
	countBelow := func(x float64) int {
		cnt := 0
		d := alpha[0] - x
		if d < 0 {
			cnt++
		}
		for i := 1; i < k; i++ {
			den := d
			if den == 0 {
				den = 1e-300
			}
			d = alpha[i] - x - beta[i-1]*beta[i-1]/den
			if d < 0 {
				cnt++
			}
		}
		return cnt
	}
	for it := 0; it < 100 && hi-lo > 1e-15*(math.Abs(lo)+math.Abs(hi)+1e-300); it++ {
		mid := 0.5 * (lo + hi)
		if countBelow(mid) >= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	lam = 0.5 * (lo + hi)
	return lam, tridiagEigvecLast(alpha, beta, lam)
}

// tridiagEigvecLast returns |y_k| for the unit eigenvector y of the
// symmetric tridiagonal T(alpha, beta) at (converged) eigenvalue lam, via
// two steps of inverse iteration with a partial-pivoting tridiagonal LU.
func tridiagEigvecLast(alpha, beta []float64, lam float64) float64 {
	k := len(alpha)
	// Factor T − λI = P·L·U once (LAPACK gttrf shape: d diagonal, du first
	// superdiagonal, du2 second superdiagonal from pivoting, dl holds the
	// multipliers, piv the interchange flags).
	d := make([]float64, k)
	du := make([]float64, k)
	du2 := make([]float64, k)
	dl := make([]float64, k)
	piv := make([]bool, k)
	var scale float64
	for i := 0; i < k; i++ {
		d[i] = alpha[i] - lam
		if a := math.Abs(alpha[i]); a > scale {
			scale = a
		}
		if i < k-1 {
			du[i] = beta[i]
			dl[i] = beta[i]
			if a := math.Abs(beta[i]); a > scale {
				scale = a
			}
		}
	}
	// λ is an eigenvalue to machine precision, so a pivot of T − λI may
	// vanish; a tiny scale-relative substitute keeps the solve finite while
	// still blowing the solution up along the eigenvector — exactly what
	// inverse iteration wants.
	tiny := 1e-30 * (scale + 1e-300)
	for i := 0; i < k-1; i++ {
		if math.Abs(d[i]) >= math.Abs(dl[i]) {
			if d[i] == 0 {
				d[i] = tiny
			}
			fact := dl[i] / d[i]
			dl[i] = fact
			d[i+1] -= fact * du[i]
			if i < k-2 {
				du2[i] = 0
			}
		} else {
			fact := d[i] / dl[i]
			d[i] = dl[i]
			dl[i] = fact
			tmp := du[i]
			du[i] = d[i+1]
			d[i+1] = tmp - fact*d[i+1]
			if i < k-2 {
				du2[i] = du[i+1]
				du[i+1] = -fact * du[i+1]
			}
			piv[i] = true
		}
	}
	if d[k-1] == 0 {
		d[k-1] = tiny
	}
	y := make([]float64, k)
	for i := range y {
		y[i] = 1 / math.Sqrt(float64(k))
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < k-1; i++ {
			if !piv[i] {
				y[i+1] -= dl[i] * y[i]
			} else {
				tmp := y[i]
				y[i] = y[i+1]
				y[i+1] = tmp - dl[i]*y[i+1]
			}
		}
		y[k-1] /= d[k-1]
		y[k-2] = (y[k-2] - du[k-2]*y[k-1]) / d[k-2]
		for i := k - 3; i >= 0; i-- {
			y[i] = (y[i] - du[i]*y[i+1] - du2[i]*y[i+2]) / d[i]
		}
		nrm := Norm2(y)
		if nrm == 0 || math.IsInf(nrm, 1) || math.IsNaN(nrm) {
			// Hopelessly ill-scaled solve: treat the component as O(1) so
			// the caller keeps iterating instead of certifying spuriously.
			return 1
		}
		ScaleVec(1/nrm, y)
	}
	return math.Abs(y[k-1])
}

// deterministicStart builds a fixed pseudo-random unit start vector from an
// integer recurrence — no shared state, no runtime randomness.
func deterministicStart(n int) []complex128 {
	v := make([]complex128, n)
	s := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11)/float64(1<<53) - 0.5
	}
	for i := range v {
		re := next()
		im := next()
		v[i] = complex(re, im)
	}
	nrm := CNorm2(v)
	if nrm > 0 {
		CScaleVec(complex(1/nrm, 0), v)
	}
	return v
}
