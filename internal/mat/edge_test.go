package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// ---- factorization edge cases and numerically nasty inputs ----

func TestLU1x1(t *testing.T) {
	f, err := LUFactor(DenseFromSlice(1, 1, []float64{-4}))
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{8})
	if x[0] != -2 {
		t.Fatalf("x = %v", x)
	}
	if f.Det() != -4 {
		t.Fatalf("det = %v", f.Det())
	}
}

func TestLUPermutationParity(t *testing.T) {
	// A permutation matrix: determinant must be the permutation sign.
	a := DenseFromSlice(3, 3, []float64{
		0, 1, 0,
		0, 0, 1,
		1, 0, 0,
	}) // cyclic permutation: even, det = +1
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-1) > 1e-14 {
		t.Fatalf("det = %v, want 1", f.Det())
	}
}

func TestLUIllConditionedStillSolves(t *testing.T) {
	// Hilbert-like matrix: ill conditioned but solvable at n=6.
	n := 6
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1/float64(i+j+1))
		}
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = 1
	}
	b := a.MulVec(xTrue)
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(b)
	for i := range x {
		if math.Abs(x[i]-1) > 1e-6 {
			t.Fatalf("Hilbert solve x[%d] = %v", i, x[i])
		}
	}
}

func TestQRSquareMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	a := randDense(rng, 5, 5)
	f := QRFactor(a)
	x, err := f.SolveLS(a.MulVec([]float64{1, -2, 3, -4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 3, -4, 5}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("square QR solve x[%d] = %v", i, x[i])
		}
	}
}

func TestQRZeroColumn(t *testing.T) {
	// A zero column must be handled (tau = 0 path) and reported as rank
	// deficient at solve time.
	a := NewDense(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
	}
	_, err := QRFactor(a).SolveLS([]float64{1, 2, 3, 4})
	if err != ErrRankDeficient {
		t.Fatalf("expected ErrRankDeficient, got %v", err)
	}
}

func TestEigJordanBlockDefective(t *testing.T) {
	// Defective matrix (Jordan block): eigenvalues must still come out
	// right even though the eigenvectors are degenerate.
	n := 4
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2)
		if i+1 < n {
			a.Set(i, i+1, 1)
		}
	}
	vals, err := EigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if cmplx.Abs(v-2) > 1e-3 {
			// Jordan blocks split eigenvalues like ε^{1/n}; 1e-3 is the
			// expected cluster radius at n=4 with double precision.
			t.Fatalf("Jordan eigenvalue %v too far from 2", v)
		}
	}
}

func TestEigSymmetricRealSpectrum(t *testing.T) {
	// Symmetric matrices have real spectra: imaginary parts ~ 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		a := randDense(rng, n, n)
		s := a.Add(a.T()).Scale(0.5)
		vals, err := EigValues(s)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if math.Abs(imag(v)) > 1e-7*(1+s.FrobNorm()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEigOrthogonalUnitCircle(t *testing.T) {
	// Eigenvalues of an orthogonal matrix lie on the unit circle.
	rng := rand.New(rand.NewSource(51))
	a := randDense(rng, 6, 6)
	q := QRFactor(a).Q()
	vals, err := EigValues(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if math.Abs(cmplx.Abs(v)-1) > 1e-8 {
			t.Fatalf("orthogonal eigenvalue %v off the unit circle", v)
		}
	}
}

func TestEigSimilarityInvariance(t *testing.T) {
	// Spectra are invariant under similarity transforms.
	rng := rand.New(rand.NewSource(52))
	n := 7
	a := randCDense(rng, n, n)
	// A well-conditioned transform.
	s := CEye(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s.Set(i, j, complex(0.1*rng.NormFloat64(), 0.1*rng.NormFloat64()))
			}
		}
	}
	sinv, err := CInverse(s)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Mul(a).Mul(sinv)
	va, err := CEigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := CEigValues(b)
	if err != nil {
		t.Fatal(err)
	}
	if !spectraMatch(va, vb, 1e-6*(1+a.FrobNorm())) {
		t.Fatalf("similar matrices with different spectra:\n%v\n%v", va, vb)
	}
}

func TestSVDOrthogonalHasUnitSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randDense(rng, 6, 6)
	q := QRFactor(a).Q()
	s, err := SingularValues(q.ToComplex())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if math.Abs(v-1) > 1e-10 {
			t.Fatalf("orthogonal singular value %v", v)
		}
	}
}

func TestSVDScalingProperty(t *testing.T) {
	// σ(c·A) = |c|·σ(A).
	f := func(seed int64, c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		a := randCDense(rng, 4, 3)
		s1, err := SingularValues(a)
		if err != nil {
			return false
		}
		s2, err := SingularValues(a.Scale(complex(c, 0)))
		if err != nil {
			return false
		}
		for i := range s1 {
			if math.Abs(s2[i]-math.Abs(c)*s1[i]) > 1e-9*(1+math.Abs(c)*s1[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVDWideMatrix(t *testing.T) {
	// m < n path (transposed decomposition).
	rng := rand.New(rand.NewSource(54))
	a := randCDense(rng, 3, 9)
	sv, err := CSVDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if sv.U.Rows != 3 || sv.V.Rows != 9 || len(sv.S) != 3 {
		t.Fatalf("wide SVD shapes: U %dx%d V %dx%d S %d",
			sv.U.Rows, sv.U.Cols, sv.V.Rows, sv.V.Cols, len(sv.S))
	}
	if !csvdReconstruct(sv).Equalish(a, 1e-9*(1+a.FrobNorm())) {
		t.Fatal("wide SVD reconstruction failed")
	}
}

func TestGivensZeroesSecondEntry(t *testing.T) {
	cases := [][2]complex128{
		{complex(3, 1), complex(-2, 4)},
		{0, complex(1, 1)},
		{complex(2, 0), 0},
		{complex(1e-300, 0), complex(1e-300, 0)},
	}
	for _, c := range cases {
		g := makeGivens(c[0], c[1])
		// Unitarity: c² + |s|² = 1.
		if math.Abs(g.c*g.c+real(g.s*cmplx.Conj(g.s))-1) > 1e-12 {
			t.Fatalf("rotation not unitary for %v", c)
		}
		// Application zeroes the second entry.
		lo := complex(g.c, 0)*c[0] + g.s*c[1]
		hi := -cmplx.Conj(g.s)*c[0] + complex(g.c, 0)*c[1]
		_ = lo
		if cmplx.Abs(hi) > 1e-12*(cmplx.Abs(c[0])+cmplx.Abs(c[1])+1e-300) {
			t.Fatalf("rotation failed to zero %v: %v", c, hi)
		}
	}
}

func TestCInverseIterationNilStartAndExactShift(t *testing.T) {
	d := NewCDense(3, 3)
	d.Set(0, 0, 1)
	d.Set(1, 1, 5)
	d.Set(2, 2, 9)
	// Shift exactly at an eigenvalue: the internal perturbation must cope.
	v, mu, err := CInverseIteration(d, 5, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(mu-5) > 1e-10 {
		t.Fatalf("mu = %v", mu)
	}
	if cmplx.Abs(v[1]) < 0.99 {
		t.Fatalf("eigenvector not concentrated: %v", v)
	}
}
