package mat

import (
	"fmt"
	"math/cmplx"
)

// CLU holds a complex LU factorization with partial pivoting: P·A = L·U.
type CLU struct {
	lu      *CDense
	piv     []int
	sign    int
	scratch []complex128 // permutation gather buffer for SolveInto
}

// CLUFactor computes the LU factorization of the square complex matrix a
// with partial pivoting. The input is not modified.
func CLUFactor(a *CDense) (*CLU, error) {
	return cluFactor(a.Clone())
}

// CLUFactorInPlace is CLUFactor without the defensive copy: the input is
// overwritten with the factors and owned by the returned CLU. Use it when a
// is a freshly built scratch matrix (e.g. the per-shift SMW capacitance).
func CLUFactorInPlace(a *CDense) (*CLU, error) {
	return cluFactor(a)
}

func cluFactor(lu *CDense) (*CLU, error) {
	if lu.Rows != lu.Cols {
		panic(fmt.Sprintf("mat: LU of non-square %d×%d matrix", lu.Rows, lu.Cols))
	}
	n := lu.Rows
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		p := k
		mx := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.At(i, k)); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.Row(k)
			rp := lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri := lu.Row(i)
			rk := lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &CLU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b and returns x.
func (f *CLU) Solve(b []complex128) []complex128 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: LU solve dimension mismatch %d vs %d", len(b), n))
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		var s complex128
		for j := 0; j < i; j++ {
			s += ri[j] * x[j]
		}
		x[i] -= s
	}
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		var s complex128
		for j := i + 1; j < n; j++ {
			s += ri[j] * x[j]
		}
		x[i] = (x[i] - s) / ri[i]
	}
	return x
}

// SolveInto solves A·x = b, writing the solution into dst (len n). dst and
// b may alias. The permutation gather uses a scratch buffer owned by the
// factorization (allocated on first use), so steady-state calls are
// allocation-free; as a consequence SolveInto is not safe for concurrent
// use on the same CLU. Concurrent callers sharing one factorization use
// SolveIntoScratch with per-caller scratch instead.
func (f *CLU) SolveInto(dst, b []complex128) {
	if f.scratch == nil {
		f.scratch = make([]complex128, f.lu.Rows)
	}
	f.SolveIntoScratch(dst, b, f.scratch)
}

// SolveIntoScratch is SolveInto with a caller-provided permutation gather
// buffer (len n). It only reads the factorization, so any number of
// goroutines may solve against the same CLU concurrently as long as each
// brings its own scratch — the property the shift-factorization cache
// relies on to share one factored SMW capacitance across in-flight Arnoldi
// runs.
func (f *CLU) SolveIntoScratch(dst, b, scratch []complex128) {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n || len(scratch) < n {
		panic("mat: CLU SolveIntoScratch dimension mismatch")
	}
	// Gather b through the permutation first so dst may alias b.
	tmp := scratch
	for i := 0; i < n; i++ {
		tmp[i] = b[f.piv[i]]
	}
	copy(dst, tmp)
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		var s complex128
		for j := 0; j < i; j++ {
			s += ri[j] * dst[j]
		}
		dst[i] -= s
	}
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		var s complex128
		for j := i + 1; j < n; j++ {
			s += ri[j] * dst[j]
		}
		dst[i] = (dst[i] - s) / ri[i]
	}
}

// SolveMat solves A·X = B column-by-column.
func (f *CLU) SolveMat(b *CDense) *CDense {
	n := f.lu.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("mat: LU solve dimension mismatch %d vs %d", b.Rows, n))
	}
	x := NewCDense(n, b.Cols)
	col := make([]complex128, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		sol := f.Solve(col)
		for i := 0; i < n; i++ {
			x.Set(i, j, sol[i])
		}
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *CLU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// CInverse returns A⁻¹ for the square complex matrix a.
func CInverse(a *CDense) (*CDense, error) {
	f, err := CLUFactor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMat(CEye(a.Rows)), nil
}
