package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers run on.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's tables for Files.
	Info *types.Info
}

// Loader parses and type-checks packages from source, with no dependence
// on export data or a module proxy. Import paths under Root's module are
// resolved to directories and loaded recursively; everything else is
// type-checked from GOROOT source via go/importer's "source" compiler
// mode. A Loader memoizes packages, so one Loader should serve a whole
// repolint run. It is not safe for concurrent use.
type Loader struct {
	// ModulePath is the import-path prefix served from ModuleDir. Empty
	// means "any import path that resolves to an existing directory under
	// ModuleDir" — the analysistest fixture layout (testdata/src).
	ModulePath string
	// ModuleDir is the root directory backing ModulePath.
	ModuleDir string
	// Fset positions every file loaded by this Loader.
	Fset *token.FileSet

	std      types.Importer
	pkgs     map[string]*Package
	inflight map[string]bool
}

// NewLoader returns a Loader serving modulePath from moduleDir.
func NewLoader(modulePath, moduleDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		inflight:   make(map[string]bool),
	}
}

// dirFor maps a local import path to its directory, or "" when the path
// is not served by this Loader.
func (l *Loader) dirFor(path string) string {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
		}
		return ""
	}
	// Fixture mode: serve any path whose directory exists under ModuleDir.
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer, routing local paths through the
// Loader and everything else through the source-mode stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at import path (which must be
// served by this Loader), memoized across calls.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.inflight[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: package %q is not under %q", path, l.ModuleDir)
	}
	l.inflight[path] = true
	defer delete(l.inflight, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// goFileNames lists dir's non-test .go files, sorted.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ModulePackages walks the module tree under root (a directory inside or
// at l.ModuleDir) and returns the import paths of every package holding
// at least one non-test Go file. testdata, vendor, hidden, and
// underscore-prefixed directories are skipped, mirroring the go tool.
func (l *Loader) ModulePackages(root string) ([]string, error) {
	if l.ModulePath == "" {
		return nil, fmt.Errorf("analysis: ModulePackages requires a module-rooted Loader")
	}
	var paths []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := goFileNames(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else if strings.HasPrefix(rel, "..") {
			return fmt.Errorf("analysis: %s is outside module dir %s", path, l.ModuleDir)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
