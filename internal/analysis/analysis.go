// Package analysis is the repo's compile-time invariant framework: a
// self-contained, stdlib-only mirror of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus a source-based package
// loader and a driver that honors //lint:ignore suppression directives.
//
// The analyzers under internal/analysis/... encode contracts that the
// runtime test batteries can only probe dynamically — determinism of the
// bit-identity packages (detfloat), the ShiftCache pin/release lifecycle
// (pinrelease), the context-threading cancellation contract (ctxflow),
// scheduler task hygiene (pooltask), and the documentation gate
// (doccheck). cmd/repolint runs them all, standalone or as a
// `go vet -vettool`.
//
// The framework is deliberately dependency-free: the build environment
// has no module proxy access, so the x/tools analysis machinery is
// re-derived here on top of go/ast, go/types, and go/importer. The API
// shape is kept close enough to x/tools that migrating later is a
// mechanical rename.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker: a name (used in findings and
// in //lint:ignore directives), a doc string, and the per-package Run
// function.
type Analyzer struct {
	// Name identifies the analyzer in output and suppression directives.
	// It must be a valid identifier-like word ("detfloat").
	Name string
	// Doc is the analyzer's one-paragraph documentation, shown by
	// `repolint -list`.
	Doc string
	// Run executes the analyzer against one type-checked package. It
	// reports findings through pass.Report and returns an error only for
	// internal failures (not findings).
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token.Pos values of Files to file positions.
	Fset *token.FileSet
	// Files are the package's parsed files (with comments).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression/object tables.
	TypesInfo *types.Info
	// Report delivers one finding. The driver filters suppressed
	// findings and attaches the analyzer name.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The analyzer name
// is attached by the driver.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states the violated invariant. It must not embed the
	// analyzer name; the driver prefixes it.
	Message string
}

// Finding is a resolved diagnostic as emitted by the driver: analyzer
// name, concrete file position, and message.
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Position is the resolved file:line:column location.
	Position token.Position
	// Message is the diagnostic message.
	Message string
}

// String formats a finding the way compilers and editors expect:
// "file:line:col: analyzer: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Analyzers use it to restrict themselves to production code: the
// invariants guard shipped behavior, and tests legitimately use wall
// clocks, map ranges, and context.Background.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PathHasSegment reports whether slash-separated path contains the exact
// segment seg. Analyzers use it to gate on package-path structure
// ("internal", "core", ...) without tying themselves to the module name.
func PathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// WalkStack traverses the AST rooted at root, invoking fn for every node
// with the stack of its ancestors (outermost first, not including n
// itself). If fn returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
