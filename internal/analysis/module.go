package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// FindModule walks up from dir to the nearest go.mod and returns the
// module root directory and the module path it declares. Drivers use it
// to root a Loader at the enclosing module.
func FindModule(dir string) (root, modulePath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}
