// Package core is a detfloat fixture standing in for a bit-identity
// package (its import path contains the gated segment "core").
package core

import (
	"math"
	"math/rand"
	"time"
)

// Accumulate sums map values — in nondeterministic order.
func Accumulate(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `range over map: iteration order is nondeterministic`
		s += v
	}
	for k := range m { // want `range over map`
		s += float64(k)
	}
	return s
}

// Fused uses the fused-multiply-add hardware path.
func Fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math\.FMA fuses rounding`
}

// Stamp folds the wall clock into a numeric value.
func Stamp() float64 {
	t := time.Now() // want `wall-clock read time\.Now`
	return float64(t.UnixNano())
}

// Age measures elapsed wall-clock time.
func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time\.Since`
}

// Jitter draws from the shared global source.
func Jitter() float64 {
	return rand.Float64() // want `global math/rand source \(rand\.Float64\)`
}

// Seeded draws from an explicitly seeded stream — the allowed idiom.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Telemetry demonstrates a documented suppression: the read feeds only
// a log line, and the directive keeps the exception auditable.
func Telemetry() time.Time {
	//lint:ignore detfloat wall-clock feeds telemetry only, never numeric state
	return time.Now()
}
