// Package arnoldi is detfloat's negative fixture: a gated package (path
// segment "arnoldi") written in the deterministic idiom, which must
// produce no findings.
package arnoldi

import (
	"math/rand"
	"sort"
)

// Sum folds a slice in index order — the deterministic iteration shape.
func Sum(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var s float64
	for _, v := range sorted {
		s += v
	}
	return s
}

// Start builds a deterministic start vector from a seeded stream.
func Start(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
