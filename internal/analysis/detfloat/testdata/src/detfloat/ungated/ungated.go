// Package ungated proves the bit-identity gate: its path has no gated
// segment, so the very constructs detfloat forbids elsewhere are legal
// here and must produce no findings.
package ungated

import "time"

// Stamp reads the wall clock, which is fine outside the numeric core.
func Stamp() time.Time {
	return time.Now()
}

// Count ranges a map, which is fine outside the numeric core.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
