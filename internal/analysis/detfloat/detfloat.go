// Package detfloat enforces the bit-identity contract of the numeric
// core: reports must be bit-identical to the paper's Table-I results
// under any worker count, cache state, or fleet scheduling. Inside the
// bit-identity packages (statespace, hamiltonian, arnoldi, core,
// passivity, fleet) it rejects the constructs that can silently break
// that guarantee:
//
//   - ranging over a map (iteration order is randomized per run);
//   - math.FMA (fused rounding differs from the a*b+c code path and from
//     non-FMA hardware);
//   - time.Now / time.Since (wall-clock values must never feed numeric
//     state);
//   - math/rand package-level functions (the global source is shared and
//     draw order is schedule-dependent) and all of math/rand/v2; seeded
//     *rand.Rand values via rand.New(rand.NewSource(seed)) remain
//     allowed — that is the repo's deterministic-stream idiom.
//
// Wall-clock reads that feed only telemetry (PhaseStats busy time,
// Result.Elapsed) are suppressed at the call site with //lint:ignore
// detfloat and a reason, keeping every exception documented.
package detfloat

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// bitIdentityPkgs are the package-path segments whose code must be
// schedule-independent down to the last float bit.
var bitIdentityPkgs = []string{"statespace", "hamiltonian", "arnoldi", "core", "passivity", "fleet"}

// randAllowed lists math/rand constructors that produce explicitly seeded
// deterministic streams and are therefore permitted.
var randAllowed = map[string]bool{"New": true, "NewSource": true}

// Analyzer is the detfloat instance registered with cmd/repolint.
var Analyzer = &analysis.Analyzer{
	Name: "detfloat",
	Doc: "forbid map iteration, math.FMA, wall-clock reads, and global math/rand " +
		"in the bit-identity packages (statespace, hamiltonian, arnoldi, core, passivity, fleet)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	gated := false
	for _, seg := range bitIdentityPkgs {
		if analysis.PathHasSegment(pass.Pkg.Path(), seg) {
			gated = true
			break
		}
	}
	if !gated {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.X.Pos(),
							"range over map: iteration order is nondeterministic and must not run in a bit-identity package")
					}
				}
			case *ast.SelectorExpr:
				pkgPath, ok := importedPackage(pass, n)
				if !ok {
					return true
				}
				name := n.Sel.Name
				switch {
				case pkgPath == "math" && name == "FMA":
					pass.Reportf(n.Pos(), "math.FMA fuses rounding and diverges bitwise from the scalar a*b+c path")
				case pkgPath == "time" && (name == "Now" || name == "Since"):
					pass.Reportf(n.Pos(), "wall-clock read time.%s in a bit-identity package; timing must not feed numeric state", name)
				case pkgPath == "math/rand/v2":
					pass.Reportf(n.Pos(), "math/rand/v2 (rand.%s) is auto-seeded and schedule-dependent; use a seeded math/rand.Rand", name)
				case pkgPath == "math/rand" && isPackageFunc(pass, n) && !randAllowed[name]:
					pass.Reportf(n.Pos(), "global math/rand source (rand.%s) draws in schedule-dependent order; use a seeded *rand.Rand", name)
				}
			}
			return true
		})
	}
	return nil
}

// importedPackage resolves sel's qualifier to an imported package path,
// when sel is of the form pkgname.Ident.
func importedPackage(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// isPackageFunc reports whether sel names a package-level function (as
// opposed to a type, var, or const of that package).
func isPackageFunc(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	_, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok
}
