package detfloat_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detfloat"
)

// TestDetfloat drives the analyzer over a dirty gated fixture, a clean
// gated fixture (negative case), and an ungated fixture exercising the
// package-path gate.
func TestDetfloat(t *testing.T) {
	analysistest.Run(t, "testdata", detfloat.Analyzer,
		"detfloat/core",
		"detfloat/arnoldi",
		"detfloat/ungated",
	)
}
