// Package analysistest runs an analyzer over fixture packages under the
// calling test's testdata/src directory and checks its findings against
// // want annotations, mirroring the x/tools analysistest contract on the
// repo's stdlib-only analysis framework.
//
// A fixture file marks expected findings with trailing comments:
//
//	for k := range m { // want `map iteration`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression; one finding on that line must match each. Lines without a
// want comment must produce no findings, so a fixture package with no
// annotations at all doubles as a negative (clean) case.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one want-regexp at a (file, line), matched at most once.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package path from dir/src, applies a, and fails
// t on any mismatch between findings and // want annotations. dir is
// usually "testdata".
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader("", src)
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		findings, err := analysis.RunAnalyzers(loader.Fset, pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		expects, err := wantComments(loader, pkg)
		if err != nil {
			t.Errorf("fixture %s: %v", path, err)
			continue
		}
		for _, f := range findings {
			if !consume(expects, f) {
				t.Errorf("%s: unexpected finding: %s: %s", path, f.Position, f.Message)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s: %s:%d: no finding matched want %q", path, e.file, e.line, e.raw)
			}
		}
	}
}

// consume marks the first unmatched expectation on the finding's line
// whose regexp matches the message, reporting whether one existed.
func consume(expects []*expectation, f analysis.Finding) bool {
	for _, e := range expects {
		if e.matched || e.file != f.Position.Filename || e.line != f.Position.Line {
			continue
		}
		if e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantComments extracts every // want expectation from the package.
func wantComments(loader *analysis.Loader, pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				raws, err := wantPatterns(strings.TrimPrefix(text, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, raw := range raws {
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return out, nil
}

// wantPatterns splits `"re" "re2"` / `` `re` `` sequences into their
// unquoted regexp sources.
func wantPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want pattern must be a quoted or backquoted string: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern: %q", s)
		}
		lit := s[:end+2]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
