// Package pinrelease enforces the ShiftCache refcount lifecycle from the
// shift-factorization cache: every pinned ShiftOp acquired through
// ShiftInvert must reach Release() on every path out of the acquiring
// function, including error returns — a leaked pin blocks LRU eviction
// forever and unbounds the cache.
//
// The check is a conservative intra-function path analysis over the AST:
//
//   - an acquisition is `x, err := recv.ShiftInvert(...)` (or `=`);
//   - a path is satisfied by `x.Release()`, `defer x.Release()`, or a
//     directly deferred closure calling x.Release();
//   - returning x transfers ownership to the caller and satisfies that
//     path;
//   - branches guarded by the acquisition's own error (`if err != nil`)
//     are exempt on the side where the acquisition failed (ShiftInvert
//     returns a nil ShiftOp on error and Release is nil-safe);
//   - re-acquiring into x while the previous pin is unreleased is itself
//     a finding (the first pin becomes unreachable);
//   - a ShiftOp that escapes — stored into a field, global, container,
//     or captured by a non-deferred closure, or handed to a goroutine —
//     is skipped: its lifecycle is no longer a function-local property.
//
// The cache_test.go lifecycle battery checks these properties
// dynamically for the cache itself; pinrelease checks every *call site*
// statically on every build.
package pinrelease

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the pinrelease instance registered with cmd/repolint.
var Analyzer = &analysis.Analyzer{
	Name: "pinrelease",
	Doc: "every ShiftOp pinned via ShiftInvert must reach Release() on all paths " +
		"out of the acquiring function, including error returns",
	Run: run,
}

// acquireMethod is the pinning acquisition's method name.
const acquireMethod = "ShiftInvert"

// releaseMethod unpins.
const releaseMethod = "Release"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkFunc(pass, body)
			return true
		})
	}
	return nil
}

// acquisition is one pinning assignment inside the function under check.
type acquisition struct {
	stmt   *ast.AssignStmt
	obj    any // types object of the pinned variable
	errObj any // types object of the paired error variable, or nil
}

// checkFunc finds every acquisition directly inside body (not in nested
// function literals — those are checked as their own functions) and
// verifies each one's release paths.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var acqs []*acquisition
	var collect func(s ast.Stmt)
	collectList := func(list []ast.Stmt) {
		for _, s := range list {
			collect(s)
		}
	}
	collect = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if a := asAcquisition(pass, s); a != nil {
				acqs = append(acqs, a)
			}
		case *ast.BlockStmt:
			collectList(s.List)
		case *ast.IfStmt:
			if s.Init != nil {
				collect(s.Init)
			}
			collect(s.Body)
			if s.Else != nil {
				collect(s.Else)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				collect(s.Init)
			}
			collect(s.Body)
		case *ast.RangeStmt:
			collect(s.Body)
		case *ast.SwitchStmt:
			collect(s.Body)
		case *ast.TypeSwitchStmt:
			collect(s.Body)
		case *ast.SelectStmt:
			collect(s.Body)
		case *ast.CaseClause:
			collectList(s.Body)
		case *ast.CommClause:
			collectList(s.Body)
		case *ast.LabeledStmt:
			collect(s.Stmt)
		}
	}
	collectList(body.List)

	for _, a := range acqs {
		if escapes(pass, body, a) {
			continue
		}
		checkAcquisition(pass, body, a)
	}
}

// asAcquisition matches `x, err := recv.ShiftInvert(...)` shapes.
func asAcquisition(pass *analysis.Pass, s *ast.AssignStmt) *acquisition {
	if len(s.Rhs) != 1 || len(s.Lhs) != 2 {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != acquireMethod {
		return nil
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	a := &acquisition{stmt: s, obj: pass.TypesInfo.ObjectOf(id)}
	if eid, ok := s.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
		a.errObj = pass.TypesInfo.ObjectOf(eid)
	}
	if a.obj == nil {
		return nil
	}
	return a
}

// isObj reports whether e is an identifier resolving to obj.
func isObj(pass *analysis.Pass, e ast.Expr, obj any) bool {
	id, ok := e.(*ast.Ident)
	return ok && obj != nil && pass.TypesInfo.ObjectOf(id) == obj
}

// escapes reports whether the pinned variable's lifecycle leaves the
// function by a route other than a plain return: stored into a non-local
// lvalue or composite, captured by a non-deferred closure, or passed to
// a goroutine. Such pins are skipped rather than guessed at.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, a *acquisition) bool {
	esc := false
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if esc {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n == a.stmt {
				return true
			}
			for i, rhs := range n.Rhs {
				if !exprMentions(pass, rhs, a.obj) {
					continue
				}
				// x on the RHS of an assignment to anything but a plain
				// local identifier escapes.
				if i < len(n.Lhs) {
					if _, ok := n.Lhs[i].(*ast.Ident); !ok {
						esc = true
					}
				} else {
					esc = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if exprMentions(pass, el, a.obj) {
					esc = true
				}
			}
		case *ast.GoStmt:
			if exprMentions(pass, n.Call, a.obj) {
				esc = true
			}
		case *ast.FuncLit:
			// A closure capturing x escapes it, unless the closure is the
			// immediate function of a defer statement (the defer-release
			// idiom, handled by the path simulation).
			if len(stack) >= 2 {
				if def, ok := stack[len(stack)-2].(*ast.DeferStmt); ok && def.Call.Fun == n {
					return true
				}
			}
			if nodeUses(pass, n, a.obj) {
				esc = true
			}
			return false
		}
		return true
	})
	return esc
}

// exprMentions reports whether e contains an identifier for obj.
func exprMentions(pass *analysis.Pass, e ast.Node, obj any) bool {
	return nodeUses(pass, e, obj)
}

// nodeUses reports whether any identifier under n resolves to obj.
func nodeUses(pass *analysis.Pass, n ast.Node, obj any) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkAcquisition simulates the statements that execute after the
// acquisition and reports every path — explicit return, loop-iteration
// end, or function end — the pin can leak through.
func checkAcquisition(pass *analysis.Pass, body *ast.BlockStmt, a *acquisition) {
	sim := &simulator{pass: pass, a: a}
	found, rel, term := sim.simFrom(body.List)
	if found && !rel && !term {
		pass.Reportf(body.Rbrace,
			"function ends without releasing the ShiftOp pinned at line %d (%s leaks its cache pin)",
			pass.Fset.Position(a.stmt.Pos()).Line, objName(a.obj))
	}
}

// simulator walks statement lists tracking whether the pin must have
// been released ("st" = must-released-by-here).
type simulator struct {
	pass *analysis.Pass
	a    *acquisition
	// iterScoped is true while simulating the body of the loop the
	// acquisition lives in: there, continue/break with a live pin ends
	// the iteration leaking. Cleared inside nested loops, whose
	// continue/break do not end the pin's iteration.
	iterScoped bool
}

// simFrom locates the acquisition inside list (possibly nested) and
// simulates the remainder of the list from there. Returns whether the
// acquisition was found, and if so the list's (must-released, terminated)
// post-state.
func (s *simulator) simFrom(list []ast.Stmt) (found, rel, term bool) {
	for i, stmt := range list {
		if !s.containsAcquisition(stmt) {
			continue
		}
		var st, terminated bool
		switch {
		case stmt == s.a.stmt:
			st = false
		default:
			if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Init == s.a.stmt {
				// `if x, err := recv.ShiftInvert(...); err == nil { ... }`
				st, terminated = s.simIf(ifs, false)
			} else {
				// Acquisition nested inside a construct: simulate its
				// local remainder and surface the construct's post-state.
				st, terminated = s.descend(stmt)
			}
		}
		if terminated {
			return true, true, true
		}
		rel, term = s.simList(list[i+1:], st)
		return true, rel, term
	}
	return false, false, false
}

// containsAcquisition reports whether stmt is or lexically contains the
// acquisition statement.
func (s *simulator) containsAcquisition(stmt ast.Stmt) bool {
	if stmt == s.a.stmt {
		return true
	}
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == s.a.stmt {
			found = true
		}
		_, isLit := n.(*ast.FuncLit)
		return !found && !isLit
	})
	return found
}

// descend recurses into the construct holding the acquisition to
// simulate the statements that follow it inside that construct, and
// reports the construct's post-state. Paths on which the acquisition
// never executed hold no pin and count as released.
func (s *simulator) descend(stmt ast.Stmt) (rel, term bool) {
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		_, rel, term = s.simFrom(st.List)
		return rel, term
	case *ast.IfStmt:
		if st.Init == s.a.stmt {
			return s.simIf(st, false)
		}
		if s.containsAcquisitionIn(st.Body) {
			_, rel, term = s.simFrom(st.Body.List)
		} else if st.Else != nil {
			rel, term = s.descend(st.Else)
		}
		if term {
			// The pinned branch left the function; any continuing path
			// never pinned.
			return true, false
		}
		return rel, false
	case *ast.ForStmt:
		return s.descendLoop(st.Body)
	case *ast.RangeStmt:
		return s.descendLoop(st.Body)
	case *ast.SwitchStmt:
		return s.descendBody(st.Body)
	case *ast.TypeSwitchStmt:
		return s.descendBody(st.Body)
	case *ast.SelectStmt:
		return s.descendBody(st.Body)
	case *ast.LabeledStmt:
		return s.descend(st.Stmt)
	}
	return false, false
}

// descendLoop handles a per-iteration acquisition: the pin must die
// within the iteration, or it accumulates a leak every pass.
func (s *simulator) descendLoop(body *ast.BlockStmt) (rel, term bool) {
	prev := s.iterScoped
	s.iterScoped = true
	found, rel, term := s.simFrom(body.List)
	s.iterScoped = prev
	if found && !rel && !term {
		s.pass.Reportf(body.Rbrace,
			"loop iteration ends without releasing the ShiftOp pinned at line %d (%s leaks one cache pin per iteration)",
			s.pass.Fset.Position(s.a.stmt.Pos()).Line, objName(s.a.obj))
	}
	// After the loop the iteration-scoped pin is gone either way.
	return true, false
}

func (s *simulator) descendBody(body *ast.BlockStmt) (rel, term bool) {
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			list = cl.Body
		case *ast.CommClause:
			list = cl.Body
		}
		if found, rel, term := s.simFrom(list); found {
			if term {
				return true, false
			}
			return rel, false
		}
	}
	return false, false
}

func (s *simulator) containsAcquisitionIn(b *ast.BlockStmt) bool {
	for _, st := range b.List {
		if s.containsAcquisition(st) {
			return true
		}
	}
	return false
}

// simList simulates a statement list with incoming must-released state
// st, returning (must-released-after, terminated).
func (s *simulator) simList(list []ast.Stmt, st bool) (bool, bool) {
	for _, stmt := range list {
		var term bool
		st, term = s.simStmt(stmt, st)
		if term {
			return true, true
		}
	}
	return st, false
}

// simStmt simulates one statement; (must-released-after, terminated).
func (s *simulator) simStmt(stmt ast.Stmt, st bool) (bool, bool) {
	switch n := stmt.(type) {
	case *ast.ExprStmt:
		if s.isRelease(n.X) {
			return true, false
		}
	case *ast.DeferStmt:
		if s.deferReleases(n) {
			return true, false
		}
	case *ast.AssignStmt:
		// Re-acquiring into the same variable while the previous pin is
		// live orphans the first pin.
		if !st && n != s.a.stmt {
			if a2 := asAcquisition(s.pass, n); a2 != nil && a2.obj == s.a.obj {
				s.pass.Reportf(n.Pos(),
					"%s reassigned by a new %s before the previous pin was released", objName(s.a.obj), acquireMethod)
				// The new pin is tracked by its own acquisition record.
				return true, false
			}
		}
	case *ast.ReturnStmt:
		if !st && !s.returnsPin(n) {
			s.pass.Reportf(n.Pos(),
				"return without releasing the ShiftOp pinned at line %d (%s leaks its cache pin on this path)",
				s.pass.Fset.Position(s.a.stmt.Pos()).Line, objName(s.a.obj))
		}
		return true, true
	case *ast.BlockStmt:
		return s.simList(n.List, st)
	case *ast.IfStmt:
		return s.simIf(n, st)
	case *ast.ForStmt:
		// The body may run zero times; simulate for reporting, keep st.
		// A nested loop's continue/break do not end the pin's iteration.
		prev := s.iterScoped
		s.iterScoped = false
		s.simList(n.Body.List, st)
		s.iterScoped = prev
		return st, false
	case *ast.RangeStmt:
		prev := s.iterScoped
		s.iterScoped = false
		s.simList(n.Body.List, st)
		s.iterScoped = prev
		return st, false
	case *ast.SwitchStmt:
		return s.simClauses(n.Body, st, hasDefault(n.Body))
	case *ast.TypeSwitchStmt:
		return s.simClauses(n.Body, st, hasDefault(n.Body))
	case *ast.SelectStmt:
		return s.simClauses(n.Body, st, false)
	case *ast.LabeledStmt:
		return s.simStmt(n.Stmt, st)
	case *ast.BranchStmt:
		// Inside the pin's own loop, continue/break end the iteration:
		// leaving with a live pin leaks one cache pin per pass.
		if !st && s.iterScoped && (n.Tok == token.CONTINUE || n.Tok == token.BREAK) {
			s.pass.Reportf(n.Pos(),
				"loop iteration ends without releasing the ShiftOp pinned at line %d (%s leaks one cache pin per iteration)",
				s.pass.Fset.Position(s.a.stmt.Pos()).Line, objName(s.a.obj))
			return true, true
		}
		// break/continue/goto end the linear path without leaving the
		// function; treat as terminated so outer state is not corrupted.
		return st, true
	}
	return st, false
}

// simIf simulates an if/else with error-guard awareness.
func (s *simulator) simIf(n *ast.IfStmt, st bool) (bool, bool) {
	thenSt, elseSt := st, st
	if n.Init == s.a.stmt {
		// Acquisition in the if-init: the guard decides which side holds
		// a live pin.
		thenSt, elseSt = false, false
	}
	switch s.errGuard(n.Cond) {
	case guardErrNonNil:
		thenSt = true // acquisition failed on this side: nothing pinned
	case guardErrNil:
		elseSt = true
	}
	tRel, tTerm := s.simList(n.Body.List, thenSt)
	eRel, eTerm := elseSt, false
	if n.Else != nil {
		switch e := n.Else.(type) {
		case *ast.BlockStmt:
			eRel, eTerm = s.simList(e.List, elseSt)
		case *ast.IfStmt:
			eRel, eTerm = s.simIf(e, elseSt)
		}
	}
	switch {
	case tTerm && eTerm:
		return true, true
	case tTerm:
		return eRel, false
	case eTerm:
		return tRel, false
	default:
		return tRel && eRel, false
	}
}

// simClauses simulates switch/select clause bodies. The merged state is
// released only when every clause releases or terminates and a default
// clause exists (otherwise fall-through keeps the incoming state).
func (s *simulator) simClauses(body *ast.BlockStmt, st bool, exhaustive bool) (bool, bool) {
	all := true
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			list = cl.Body
		case *ast.CommClause:
			list = cl.Body
		}
		rel, term := s.simList(list, st)
		if !rel && !term {
			all = false
		}
		_ = term
	}
	if exhaustive && all {
		return true, false
	}
	return st, false
}

// hasDefault reports whether a switch body carries a default clause.
func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

type errGuardKind int

const (
	guardNone errGuardKind = iota
	guardErrNonNil
	guardErrNil
)

// errGuard classifies `err != nil` / `err == nil` conditions over the
// acquisition's own error variable.
func (s *simulator) errGuard(cond ast.Expr) errGuardKind {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || s.a.errObj == nil {
		return guardNone
	}
	var other ast.Expr
	switch {
	case isObj(s.pass, bin.X, s.a.errObj):
		other = bin.Y
	case isObj(s.pass, bin.Y, s.a.errObj):
		other = bin.X
	default:
		return guardNone
	}
	id, ok := other.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return guardNone
	}
	switch bin.Op {
	case token.NEQ:
		return guardErrNonNil
	case token.EQL:
		return guardErrNil
	}
	return guardNone
}

// isRelease matches `x.Release()` for the pinned variable.
func (s *simulator) isRelease(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != releaseMethod {
		return false
	}
	return isObj(s.pass, sel.X, s.a.obj)
}

// deferReleases matches `defer x.Release()` and
// `defer func() { ...x.Release()... }()`.
func (s *simulator) deferReleases(d *ast.DeferStmt) bool {
	if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name == releaseMethod && isObj(s.pass, sel.X, s.a.obj)
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if e, ok := n.(*ast.ExprStmt); ok && s.isRelease(e.X) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// returnsPin reports whether the return hands the pinned variable to the
// caller (ownership transfer).
func (s *simulator) returnsPin(n *ast.ReturnStmt) bool {
	for _, r := range n.Results {
		if isObj(s.pass, r, s.a.obj) {
			return true
		}
	}
	return false
}

// objName renders the pinned variable's name for messages.
func objName(obj any) string {
	type named interface{ Name() string }
	if n, ok := obj.(named); ok {
		return n.Name()
	}
	return "value"
}
