// Package clean is pinrelease's negative fixture: every sanctioned
// release idiom from the real call sites, none of which may be flagged.
package clean

import "pinrelease/lib"

// DeferRelease is the canonical acquire-check-defer shape.
func DeferRelease(op *lib.Op) error {
	so, err := op.ShiftInvert(1i)
	if err != nil {
		return err
	}
	defer so.Release()
	return so.Apply(nil, nil)
}

// RetryReacquire mirrors runShift: on error, retry once with a nudged
// shift before giving up. The reacquire happens only on the arm where
// the first pin never existed.
func RetryReacquire(op *lib.Op) error {
	so, err := op.ShiftInvert(1i)
	if err != nil {
		so, err = op.ShiftInvert(1.0001i)
		if err != nil {
			return err
		}
	}
	defer so.Release()
	return so.Apply(nil, nil)
}

// IfInitAcquire mirrors the refinement probe: acquisition in the
// if-init, released before every exit of the then arm.
func IfInitAcquire(op *lib.Op) error {
	if so, err := op.ShiftInvert(2i); err == nil {
		e := so.Apply(nil, nil)
		so.Release()
		return e
	}
	return nil
}

// OwnershipTransfer returns the pin: the caller releases.
func OwnershipTransfer(op *lib.Op) (*lib.ShiftOp, error) {
	so, err := op.ShiftInvert(3i)
	if err != nil {
		return nil, err
	}
	return so, nil
}

// DeferClosure releases through a deferred cleanup closure.
func DeferClosure(op *lib.Op) error {
	so, err := op.ShiftInvert(4i)
	if err != nil {
		return err
	}
	defer func() {
		so.Release()
	}()
	return so.Apply(nil, nil)
}

// PerIterationRelease releases on every path out of each loop pass.
func PerIterationRelease(op *lib.Op, thetas []complex128) error {
	for _, th := range thetas {
		so, err := op.ShiftInvert(th)
		if err != nil {
			return err
		}
		if err := so.Apply(nil, nil); err != nil {
			so.Release()
			return err
		}
		so.Release()
	}
	return nil
}

// Handoff hands the pin to a registry that releases it after the batch;
// the finding is suppressed with a documented directive.
func Handoff(op *lib.Op, sink func(*lib.ShiftOp)) error {
	so, err := op.ShiftInvert(6i)
	if err != nil {
		return err
	}
	sink(so)
	//lint:ignore pinrelease the sink owns the pin and releases it after the batch drains
	return nil
}
