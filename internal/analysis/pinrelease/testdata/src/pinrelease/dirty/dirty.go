// Package dirty is pinrelease's positive fixture: call sites that leak
// a pinned ShiftOp on at least one path.
package dirty

import (
	"errors"

	"pinrelease/lib"
)

func cond() bool { return false }

// LeakOnErrorPath releases on the happy path but leaks when the early
// error return fires — the exact hazard of hand-rolled cleanup.
func LeakOnErrorPath(op *lib.Op) error {
	so, err := op.ShiftInvert(1i)
	if err != nil {
		return err
	}
	if cond() {
		return errors.New("mid-run failure") // want `return without releasing the ShiftOp pinned at line 16`
	}
	so.Release()
	return nil
}

// LeakEverywhere never releases at all.
func LeakEverywhere(op *lib.Op) error {
	so, err := op.ShiftInvert(2i)
	if err != nil {
		return err
	}
	return so.Apply(nil, nil) // want `return without releasing the ShiftOp pinned at line 29`
}

// LeakAtEnd falls off the end of the function with the pin live.
func LeakAtEnd(op *lib.Op) {
	so, err := op.ShiftInvert(3i)
	if err != nil {
		return
	}
	_ = so
} // want `function ends without releasing the ShiftOp pinned at line 38`

// Reacquire overwrites a live pin, orphaning the first entry.
func Reacquire(op *lib.Op) {
	so, err := op.ShiftInvert(4i)
	if err != nil {
		return
	}
	so, err = op.ShiftInvert(5i) // want `so reassigned by a new ShiftInvert before the previous pin was released`
	if err == nil {
		so.Release()
	}
}

// LeakPerIteration pins each loop pass and never releases: the pin
// falls off the end of every iteration.
func LeakPerIteration(op *lib.Op, thetas []complex128) {
	for _, th := range thetas {
		so, err := op.ShiftInvert(th)
		if err != nil {
			continue
		}
		_ = so
	} // want `loop iteration ends without releasing the ShiftOp pinned at line 61`
}

// LeakOnContinue releases on the fall-through path but skips the
// release when the iteration bails early.
func LeakOnContinue(op *lib.Op, thetas []complex128) {
	for _, th := range thetas {
		so, err := op.ShiftInvert(th)
		if err != nil {
			continue
		}
		if cond() {
			continue // want `loop iteration ends without releasing the ShiftOp pinned at line 73`
		}
		so.Release()
	}
}
