// Package lib is the fixture stand-in for the hamiltonian operator API:
// ShiftInvert pins a cache entry, Release unpins it.
package lib

import "errors"

// Op mimics hamiltonian.Op.
type Op struct{ bad bool }

// ShiftOp mimics a pinned hamiltonian.ShiftOp.
type ShiftOp struct{}

// ShiftInvert pins and returns a shift-invert operator, or an error when
// the shift collides with an eigenvalue.
func (o *Op) ShiftInvert(theta complex128) (*ShiftOp, error) {
	if o.bad {
		return nil, errors.New("singular")
	}
	return &ShiftOp{}, nil
}

// Release unpins. Safe on nil.
func (s *ShiftOp) Release() {}

// Apply stands in for the Arnoldi hot path.
func (s *ShiftOp) Apply(y, x []complex128) error { return nil }
