package pinrelease_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pinrelease"
)

func TestPinrelease(t *testing.T) {
	analysistest.Run(t, "testdata", pinrelease.Analyzer,
		"pinrelease/dirty", "pinrelease/clean")
}
