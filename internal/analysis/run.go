package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive is one parsed //lint:ignore suppression: the analyzers it
// silences, the reason the author gave, and the lines it covers.
type Directive struct {
	// Analyzers are the names the directive silences ("*" silences all).
	Analyzers []string
	// Reason is the mandatory justification text.
	Reason string
	// File and Lines locate the directive's coverage: the directive's own
	// line and, for a comment on a line of its own, the line below it.
	File  string
	Lines []int
}

// matches reports whether the directive silences analyzer name at
// (file, line).
func (d *Directive) matches(name, file string, line int) bool {
	if d.File != file {
		return false
	}
	covered := false
	for _, l := range d.Lines {
		if l == line {
			covered = true
			break
		}
	}
	if !covered {
		return false
	}
	for _, a := range d.Analyzers {
		if a == name || a == "*" {
			return true
		}
	}
	return false
}

// ignorePrefix introduces a suppression comment:
//
//	//lint:ignore detfloat reason text...
//	//lint:ignore detfloat,ctxflow reason text...
//
// The directive covers its own source line; a directive on a line of its
// own additionally covers the next line. A reason is mandatory —
// directives without one are themselves reported as findings, so every
// suppression stays documented.
const ignorePrefix = "//lint:ignore "

// directives extracts every suppression directive from the package,
// reporting malformed ones (missing reason) through report.
func directives(fset *token.FileSet, pkg *Package, report func(Finding)) []Directive {
	var out []Directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					report(Finding{
						Analyzer: "directive",
						Position: pos,
						Message:  "lint:ignore needs an analyzer list and a reason: //lint:ignore <name>[,<name>] <reason>",
					})
					continue
				}
				d := Directive{
					Analyzers: strings.Split(fields[0], ","),
					Reason:    strings.Join(fields[1:], " "),
					File:      pos.Filename,
					Lines:     []int{pos.Line},
				}
				if standaloneComment(fset, f, c) {
					d.Lines = append(d.Lines, pos.Line+1)
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// standaloneComment reports whether c has a source line of its own (no
// code token starts on the line before it), in which case the suppression
// also covers the following line. A trailing comment after code covers
// only its own line.
func standaloneComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	standalone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !standalone {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		np := fset.Position(n.Pos())
		if np.Line == pos.Line && np.Column < pos.Column {
			standalone = false
			return false
		}
		return true
	})
	return standalone
}

// RunAnalyzers executes the given analyzers over one loaded package and
// returns the surviving findings: suppressed diagnostics are dropped,
// malformed suppressions are themselves findings, and the result is
// sorted by position then analyzer name.
func RunAnalyzers(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	dirs := directives(fset, pkg, func(f Finding) { findings = append(findings, f) })
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			p := fset.Position(d.Pos)
			for i := range dirs {
				if dirs[i].matches(name, p.Filename, p.Line) {
					return
				}
			}
			findings = append(findings, Finding{Analyzer: name, Position: p, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
