// Package plumb is ctxflow's dirty fixture: an internal package that
// mints and drops contexts in ways the cancellation contract forbids,
// alongside the two sanctioned idioms.
package plumb

import "context"

// Work stands in for a context-threading callee.
func Work(ctx context.Context, n int) error {
	<-ctx.Done()
	return ctx.Err()
}

// Detached mints a context mid-stack instead of threading one.
func Detached(n int) error {
	ctx := context.Background() // want `context\.Background\(\) in internal non-test code`
	return Work(ctx, n)
}

// RunContext is the ctx-threading variant Run delegates to.
func RunContext(ctx context.Context, n int) error {
	return Work(ctx, n)
}

// Undecided punts with TODO.
func Undecided(n int) error {
	return Work(context.TODO(), n) // want `context\.TODO\(\) in internal non-test code`
}

// Dropped receives a ctx and throws it away.
func Dropped(ctx context.Context, n int) error {
	return Work(context.Background(), n) // want `context\.Background\(\) in internal non-test code`
}

// NilCtx passes a nil context, which disables cancellation silently.
func NilCtx(n int) error {
	return Work(nil, n) // want `nil context passed to ctx parameter`
}

// Defaulted shows the sanctioned nil-defaulting idiom: not flagged.
func Defaulted(ctx context.Context, n int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return Work(ctx, n)
}

// Run is the sanctioned context-less convenience wrapper: a single
// return delegating to its Context-suffixed variant. Not flagged.
func Run(n int) error {
	return RunContext(context.Background(), n)
}

// Fire demonstrates a documented suppression for a deliberate
// detachment point.
func Fire(n int) error {
	//lint:ignore ctxflow the tail must outlive the submitting context by design
	return Work(context.Background(), n)
}
