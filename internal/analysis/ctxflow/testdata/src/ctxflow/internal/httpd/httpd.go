// Package httpd is ctxflow's dirty HTTP fixture: handlers that mint a
// fresh context instead of threading the request's, alongside the
// sanctioned patterns a service layer actually needs.
package httpd

import (
	"context"
	"net/http"
)

// Work stands in for a context-threading callee.
func Work(ctx context.Context) error {
	return ctx.Err()
}

// HandleDetached drops the request context on the floor and mints its
// own, silently disabling per-request cancellation.
func HandleDetached(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context\.Background\(\) in internal non-test code`
	_ = Work(ctx)
}

// HandleTODO punts the same way with TODO.
func HandleTODO(w http.ResponseWriter, r *http.Request) {
	_ = Work(context.TODO()) // want `context\.TODO\(\) in internal non-test code`
}

// HandleThreaded is the correct shape: the request context flows into
// the work. Not flagged.
func HandleThreaded(w http.ResponseWriter, r *http.Request) {
	_ = Work(r.Context())
}

// Config carries an optional base context, mirroring the daemon's
// server.Config.
type Config struct {
	BaseContext context.Context
}

// NewBase shows the sanctioned nil-defaulting idiom on a struct field:
// copy to a local, default if nil. Not flagged.
func NewBase(cfg Config) context.Context {
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	return base
}

// Detach is a job whose lifetime must exceed the request's: the
// detachment is deliberate and carries a reasoned suppression.
func Detach(r *http.Request) error {
	//lint:ignore ctxflow job outlives the submitting request by design; cancellation is rewired via AfterFunc
	jctx := context.Background()
	return Work(jctx)
}
