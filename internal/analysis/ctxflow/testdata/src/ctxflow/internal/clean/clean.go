// Package clean is ctxflow's negative fixture: internal code that
// threads its contexts properly and must produce no findings.
package clean

import "context"

// Step stands in for a context-threading callee.
func Step(ctx context.Context) error {
	return ctx.Err()
}

// Pipeline threads the caller's ctx through every stage.
func Pipeline(ctx context.Context) error {
	if err := Step(ctx); err != nil {
		return err
	}
	return Step(ctx)
}
