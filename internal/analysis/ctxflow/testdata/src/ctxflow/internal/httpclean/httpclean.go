// Package httpclean is ctxflow's clean HTTP fixture: a handler chain
// that threads the request context end to end and must produce no
// findings.
package httpclean

import (
	"context"
	"net/http"
)

// Work stands in for a context-threading callee.
func Work(ctx context.Context) error {
	return ctx.Err()
}

// Handle threads r.Context() through every stage of the request.
func Handle(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if err := Work(ctx); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_ = Work(ctx)
}
