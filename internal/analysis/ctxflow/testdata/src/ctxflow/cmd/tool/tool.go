// Package tool proves the internal-only gate: a command entry point may
// legitimately mint its root context.
package tool

import "context"

// Main mints the process root context, which is fine outside internal.
func Main() context.Context {
	ctx := context.Background()
	return ctx
}
