package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

// TestCtxflow drives the analyzer over a dirty internal fixture (with
// both sanctioned idioms present), a clean internal fixture (negative
// case), and a non-internal fixture exercising the path gate.
func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"ctxflow/internal/plumb",
		"ctxflow/internal/clean",
		"ctxflow/cmd/tool",
	)
}
