package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

// TestCtxflow drives the analyzer over a dirty internal fixture (with
// both sanctioned idioms present), a clean internal fixture (negative
// case), a non-internal fixture exercising the path gate, and the
// HTTP-handler pair: handlers minting contexts instead of threading
// r.Context() (dirty) and a properly threaded handler chain (clean).
func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"ctxflow/internal/plumb",
		"ctxflow/internal/clean",
		"ctxflow/cmd/tool",
		"ctxflow/internal/httpd",
		"ctxflow/internal/httpclean",
	)
}
