// Package ctxflow enforces the PR-2 cancellation contract in internal
// packages: contexts are threaded from the caller down to the pool, never
// minted mid-stack. In any package whose import path contains the segment
// "internal" it reports:
//
//   - calls to context.Background() or context.TODO() in non-test code,
//     except the two sanctioned idioms — nil-context defaulting
//     (`if ctx == nil { ctx = context.Background() }`) and the
//     context-less convenience wrapper whose whole body is a single
//     return delegating to the Context-suffixed variant;
//   - passing a nil literal where the callee expects a context.Context
//     (nil contexts panic in select-based plumbing and silently disable
//     cancellation elsewhere).
//
// Deliberate detachment points — like the refinement tail in
// core.collect, which must not let a cancellation racing completion
// discard a finished result — carry //lint:ignore ctxflow directives
// with their justification.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow instance registered with cmd/repolint.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background()/TODO() and nil contexts in internal non-test code; " +
		"contexts must be threaded from the caller (nil-defaulting and single-return wrappers exempt)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasSegment(pass.Pkg.Path(), "internal") {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := contextMint(pass, call); ok {
				if !nilDefaultIdiom(pass, call, stack) && !wrapperIdiom(call, stack) {
					pass.Reportf(call.Pos(),
						"context.%s() in internal non-test code: thread the caller's ctx (cancellation contract)", name)
				}
			}
			reportNilContextArgs(pass, call)
			return true
		})
	}
	return nil
}

// contextMint reports whether call is context.Background() or
// context.TODO(), returning the function name.
func contextMint(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	if name := sel.Sel.Name; name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// nilDefaultIdiom recognizes `if ctx == nil { ctx = context.Background() }`:
// the call is the sole RHS of an assignment to a variable that the
// enclosing if statement's condition compares against nil.
func nilDefaultIdiom(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	var assigned *ast.Ident
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.AssignStmt:
			if assigned == nil && len(n.Rhs) == 1 && n.Rhs[0] == call && len(n.Lhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					assigned = id
				}
			}
		case *ast.IfStmt:
			if assigned != nil && comparesNil(pass, n.Cond, assigned) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// comparesNil reports whether cond is `x == nil` or `nil == x` for the
// same object as id.
func comparesNil(pass *analysis.Pass, cond ast.Expr, id *ast.Ident) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	side := func(e ast.Expr) bool {
		sid, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.ObjectOf(sid) == obj
	}
	isNil := func(e ast.Expr) bool {
		sid, ok := e.(*ast.Ident)
		return ok && sid.Name == "nil"
	}
	return (side(bin.X) && isNil(bin.Y)) || (side(bin.Y) && isNil(bin.X))
}

// wrapperIdiom recognizes the convenience-wrapper shape: the minting call
// sits in a top-level function whose entire body is one return statement
// delegating to its own Context-suffixed variant
// (e.g. `func Fit(...) { return FitContext(context.Background(), ...) }`).
func wrapperIdiom(call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return false
		case *ast.FuncDecl:
			if n.Body == nil || len(n.Body.List) != 1 {
				return false
			}
			ret, ok := n.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return false
			}
			outer, ok := ret.Results[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			return calleeName(outer.Fun) == n.Name.Name+"Context"
		}
	}
	return false
}

// calleeName extracts the bare function or method name of a call target.
func calleeName(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// reportNilContextArgs flags nil literals passed as context.Context
// parameters.
func reportNilContextArgs(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			continue
		}
		if params.At(pi).Type().String() == "context.Context" {
			pass.Reportf(arg.Pos(), "nil context passed to %s parameter; pass the caller's ctx", params.At(pi).Name())
		}
	}
}
