package doccheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/doccheck"
)

func TestDoccheck(t *testing.T) {
	analysistest.Run(t, "testdata", doccheck.Analyzer,
		"doccheck/dirty", "doccheck/clean")
}
