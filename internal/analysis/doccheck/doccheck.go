// Package doccheck is the documentation gate, ported from the standalone
// cmd/doclint tool into the analyzer suite so one driver runs it with the
// other invariants. It reports a package that lacks a package-level doc
// comment and every exported top-level identifier — function, method on
// an exported type, type, const, var — that lacks one. A doc comment on
// a grouped const/var/type declaration covers the whole group.
package doccheck

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the doccheck instance registered with cmd/repolint.
var Analyzer = &analysis.Analyzer{
	Name: "doccheck",
	Doc: "exported top-level identifiers and packages must carry doc comments " +
		"(a group doc covers grouped const/var/type specs)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	hasPkgDoc := false
	var first *ast.File
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		if first == nil {
			first = f
		}
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && first != nil {
		pass.Reportf(first.Name.Pos(), "package %s missing package doc comment", pass.Pkg.Name())
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

// checkFile reports every undocumented exported top-level identifier of
// one file.
func checkFile(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv := receiverType(d); recv != "" {
				if !ast.IsExported(recv) {
					continue // method on an unexported type: not API surface
				}
				pass.Reportf(d.Pos(), "exported method %s.%s missing doc comment", recv, d.Name.Name)
				continue
			}
			pass.Reportf(d.Pos(), "exported function %s missing doc comment", d.Name.Name)
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						pass.Reportf(s.Pos(), "exported type %s missing doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							pass.Reportf(n.Pos(), "exported const/var %s missing doc comment", n.Name)
						}
					}
				}
			}
		}
	}
}

// receiverType returns the bare receiver type name of a method ("" for
// plain functions), unwrapping pointers and type parameters.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return "(unknown)"
		}
	}
}
