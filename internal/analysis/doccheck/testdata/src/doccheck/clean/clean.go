// Package clean is doccheck's negative fixture: everything exported is
// documented, and unexported identifiers need nothing.
package clean

// Exported is documented.
func Exported() {}

// Thing is documented.
type Thing struct{}

// Do is documented.
func (t *Thing) Do() {}

type hidden struct{}

func (h hidden) Do() {}

// Count is documented.
var Count int

// Limits documents the group.
const (
	A = 1
	B = 2
)

func unexported() {}
