package dirty // want `package dirty missing package doc comment`

func Exported() {} // want `exported function Exported missing doc comment`

type Thing struct{} // want `exported type Thing missing doc comment`

func (t *Thing) Do() {} // want `exported method Thing.Do missing doc comment`

type hidden struct{}

func (h hidden) Do() {}

var Count int // want `exported const/var Count missing doc comment`

// Limits documents the group, which covers every spec in it.
const (
	A = 1
	B = 2
)

const C = 3 // want `exported const/var C missing doc comment`

func unexported() {}
