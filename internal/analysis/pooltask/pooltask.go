// Package pooltask enforces scheduler task hygiene at RunBatch call
// sites. Task closures handed to the worker pool run concurrently and
// are joined inside RunBatch, which makes two shapes reliably wrong:
//
//   - capturing a variable that is declared before the enclosing loop
//     and reassigned inside it: every task observes the variable's
//     final value, silently corrupting the batch (the pre-Go-1.22 loop
//     variable bug, still reproducible with a hand-hoisted variable);
//   - sending on an unbuffered channel made in the submitting function:
//     the submitter is blocked joining the batch and cannot receive, so
//     the worker parks forever and the pool deadlocks.
//
// The sanctioned result path is the result-slot idiom the scheduler
// documents: each task writes only its own pre-allocated slot, which is
// quiescent once RunBatch returns. Buffered channels sized to the batch
// are also fine and are not flagged.
package pooltask

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the pooltask instance registered with cmd/repolint.
var Analyzer = &analysis.Analyzer{
	Name: "pooltask",
	Doc: "RunBatch task closures must not capture loop-carried variables by reference " +
		"or send on unbuffered channels made in the submitting function",
	Run: run,
}

// batchMethod names the pool fan-out entry point.
const batchMethod = "RunBatch"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

// checkFile collects every task closure reaching a RunBatch call in f —
// literals inline in the call's arguments, and literals assigned or
// appended into a slice variable that the call submits — then checks
// each one once.
func checkFile(pass *analysis.Pass, f *ast.File) {
	tasks := map[*ast.FuncLit][]ast.Node{}
	analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBatchCall(call) {
			return true
		}
		for _, arg := range call.Args {
			switch a := arg.(type) {
			case *ast.CompositeLit:
				for _, el := range a.Elts {
					if lit, ok := el.(*ast.FuncLit); ok {
						if _, seen := tasks[lit]; !seen {
							tasks[lit] = append([]ast.Node(nil), stack...)
						}
					}
				}
			case *ast.Ident:
				obj := pass.TypesInfo.ObjectOf(a)
				fn := enclosingFunc(stack)
				if obj != nil && fn != nil {
					collectSliceTasks(pass, fn, obj, tasks)
				}
			}
		}
		return true
	})
	for lit, stack := range tasks {
		checkTask(pass, lit, stack)
	}
}

// isBatchCall matches `recv.RunBatch(...)`.
func isBatchCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == batchMethod
}

// enclosingFunc returns the innermost function node on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// collectSliceTasks finds, inside function node fn, every closure stored
// into the task slice obj — `fns[i] = func...` or
// `fns = append(fns, func...)` — and records it with its ancestor stack.
func collectSliceTasks(pass *analysis.Pass, fn ast.Node, obj types.Object, tasks map[*ast.FuncLit][]ast.Node) {
	analysis.WalkStack(fn, func(n ast.Node, stack []ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		record := func(lit *ast.FuncLit) {
			if _, seen := tasks[lit]; !seen {
				tasks[lit] = append([]ast.Node(nil), stack...)
			}
		}
		for i, rhs := range n.(*ast.AssignStmt).Rhs {
			switch r := rhs.(type) {
			case *ast.FuncLit:
				if i < len(asg.Lhs) && indexesObj(pass, asg.Lhs[i], obj) {
					record(r)
				}
			case *ast.CallExpr:
				// fns = append(fns, func..., func...)
				if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "append" &&
					len(r.Args) > 0 && identIsObj(pass, r.Args[0], obj) {
					for _, a := range r.Args[1:] {
						if lit, ok := a.(*ast.FuncLit); ok {
							record(lit)
						}
					}
				}
			}
		}
		return true
	})
}

// indexesObj reports whether e is `obj[...]`.
func indexesObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	ix, ok := e.(*ast.IndexExpr)
	return ok && identIsObj(pass, ix.X, obj)
}

// identIsObj reports whether e is an identifier resolving to obj.
func identIsObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

// checkTask runs both hygiene checks on one task closure. stack is the
// closure's ancestor chain (outermost first).
func checkTask(pass *analysis.Pass, lit *ast.FuncLit, stack []ast.Node) {
	fn := enclosingFunc(stack)
	if fn != nil {
		reportUnbufferedSends(pass, lit, fn)
	}
	reportStaleCaptures(pass, lit, stack, fn)
}

// reportUnbufferedSends flags `ch <- v` inside the task when ch is made
// without a capacity in the submitting function.
func reportUnbufferedSends(pass *analysis.Pass, lit *ast.FuncLit, fn ast.Node) {
	unbuffered := unbufferedChans(pass, fn)
	if len(unbuffered) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		id, ok := send.Chan.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil && unbuffered[obj] {
			pass.Reportf(send.Pos(),
				"task closure sends on unbuffered channel %s: the submitter is blocked joining the batch and cannot receive, deadlocking a pool worker (buffer it to the batch size or write to a per-task result slot)",
				id.Name)
		}
		return true
	})
}

// unbufferedChans collects local variables bound to `make(chan T)` with
// no capacity argument inside fn.
func unbufferedChans(pass *analysis.Pass, fn ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if _, ok := call.Args[0].(*ast.ChanType); !ok {
				continue
			}
			if i < len(asg.Lhs) {
				if id, ok := asg.Lhs[i].(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// reportStaleCaptures flags captures of variables that are declared
// before an enclosing loop and reassigned inside it: all tasks of the
// batch share the final value.
func reportStaleCaptures(pass *analysis.Pass, lit *ast.FuncLit, stack []ast.Node, fn ast.Node) {
	if fn == nil {
		return
	}
	reported := map[types.Object]bool{}
	for _, anc := range stack {
		var loopPos token.Pos
		var body *ast.BlockStmt
		switch l := anc.(type) {
		case *ast.ForStmt:
			loopPos, body = l.Pos(), l.Body
		case *ast.RangeStmt:
			loopPos, body = l.Pos(), l.Body
		default:
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
			if !ok || v.IsField() || reported[v] {
				return true
			}
			// Function-local, declared before the loop, mutated inside it.
			if v.Pos() < fn.Pos() || v.Pos() >= loopPos {
				return true
			}
			if assignedIn(pass, body, v, lit) {
				reported[v] = true
				pass.Reportf(lit.Pos(),
					"task closure captures %s, which is reassigned inside the loop: every task in the batch observes its final value; bind it per iteration (e.g. %s := %s) or index a slice instead",
					v.Name(), v.Name(), v.Name())
			}
			return true
		})
	}
}

// assignedIn reports whether v is reassigned (plain identifier on an
// assignment LHS, or ++/--) inside body, outside the task closure skip.
func assignedIn(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var, skip *ast.FuncLit) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == ast.Node(skip) {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if identIsObj(pass, lhs, v) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if identIsObj(pass, n.X, v) {
				found = true
			}
		}
		return !found
	})
	return found
}
