// Package clean is pooltask's negative fixture: the sanctioned batch
// shapes — result slots, per-iteration bindings, buffered fan-in, and a
// documented rendezvous suppression.
package clean

import (
	"context"

	"pooltask/lib"
)

// PerIterationBinding rebinds the captured value every pass and writes
// results to pre-allocated slots: the canonical RunBatch shape.
func PerIterationBinding(c *lib.Client, items []float64) ([]float64, error) {
	out := make([]float64, len(items))
	fns := make([]func(int) error, len(items))
	for i := range items {
		v := items[i]
		fns[i] = func(int) error {
			out[i] = v * v
			return nil
		}
	}
	if err := c.RunBatch(context.Background(), "sweep", fns); err != nil {
		return nil, err
	}
	return out, nil
}

// BufferedFanIn sizes the channel to the batch: sends never block.
func BufferedFanIn(c *lib.Client, items []float64) (float64, error) {
	res := make(chan float64, len(items))
	fns := make([]func(int) error, len(items))
	for i := range items {
		v := items[i]
		fns[i] = func(int) error {
			res <- v
			return nil
		}
	}
	if err := c.RunBatch(context.Background(), "sweep", fns); err != nil {
		return 0, err
	}
	close(res)
	var sum float64
	for v := range res {
		sum += v
	}
	return sum, nil
}

// Coordinated rendezvouses on an unbuffered channel on purpose: a
// dedicated drainer receives while the batch runs, so the send cannot
// park a worker. The deliberate exception carries a directive.
func Coordinated(c *lib.Client, items []float64) error {
	res := make(chan float64)
	done := make(chan struct{}, 1)
	go func() {
		for range res {
		}
		done <- struct{}{}
	}()
	fns := make([]func(int) error, len(items))
	for i := range items {
		v := items[i]
		fns[i] = func(int) error {
			//lint:ignore pooltask a dedicated drainer goroutine receives while the batch runs
			res <- v
			return nil
		}
	}
	err := c.RunBatch(context.Background(), "sweep", fns)
	close(res)
	<-done
	return err
}
