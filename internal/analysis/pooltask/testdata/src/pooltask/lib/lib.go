// Package lib is the fixture stand-in for the scheduler client:
// RunBatch fans closures out to pool workers and joins them.
package lib

import "context"

// Client mimics core.Client.
type Client struct{}

// RunBatch runs every task and returns the first error.
func (c *Client) RunBatch(ctx context.Context, phase string, fns []func(worker int) error) error {
	for _, fn := range fns {
		if err := fn(0); err != nil {
			return err
		}
	}
	return nil
}
