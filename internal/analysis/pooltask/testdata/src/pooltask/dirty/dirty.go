// Package dirty is pooltask's positive fixture: batch submissions that
// corrupt results through shared captures or deadlock on channel sends.
package dirty

import (
	"context"

	"pooltask/lib"
)

func sink(float64) {}

// StaleCapture hoists the per-item value out of the loop: every task
// sees the last item.
func StaleCapture(c *lib.Client, items []float64) error {
	var cur float64
	fns := make([]func(int) error, len(items))
	for i := range items {
		cur = items[i]
		fns[i] = func(int) error { // want `task closure captures cur, which is reassigned inside the loop`
			sink(cur)
			return nil
		}
	}
	return c.RunBatch(context.Background(), "sweep", fns)
}

// AppendStale appends tasks that all share a hand-advanced index.
func AppendStale(c *lib.Client, items []float64) error {
	var fns []func(int) error
	idx := 0
	for range items {
		fns = append(fns, func(int) error { // want `task closure captures idx, which is reassigned inside the loop`
			sink(items[idx])
			return nil
		})
		idx++
	}
	return c.RunBatch(context.Background(), "sweep", fns)
}

// UnbufferedResults streams task results through an unbuffered channel
// nobody can drain while RunBatch joins.
func UnbufferedResults(c *lib.Client, items []float64) error {
	res := make(chan float64)
	fns := make([]func(int) error, len(items))
	for i := range items {
		v := items[i]
		fns[i] = func(int) error {
			res <- v * v // want `task closure sends on unbuffered channel res`
			return nil
		}
	}
	err := c.RunBatch(context.Background(), "sweep", fns)
	close(res)
	return err
}

// InlineSend signals completion from a single inline task over an
// unbuffered channel.
func InlineSend(c *lib.Client) error {
	done := make(chan struct{})
	return c.RunBatch(context.Background(), "probe", []func(int) error{func(int) error {
		done <- struct{}{} // want `task closure sends on unbuffered channel done`
		return nil
	}})
}
