package pooltask_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pooltask"
)

func TestPooltask(t *testing.T) {
	analysistest.Run(t, "testdata", pooltask.Analyzer,
		"pooltask/dirty", "pooltask/clean")
}
