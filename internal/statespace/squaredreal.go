package statespace

import "repro/internal/mat"

// Real-arithmetic variants of the squared-operator kernels in squared.go.
// Every sweep shift on the half-size path is τ = −ω² — real — and the
// squared operator N = A² + U·V is itself real, so the entire shift-invert
// Arnoldi iteration can run on real state vectors: half the memory traffic
// and half the flops of the complex kernels at identical block structure.
// Expression ordering matches the complex kernels so the real path is
// deterministic for a fixed model/shift, and (A²−τI) block determinants are
// the same quantities, so singularity detection agrees with the complex
// route bit-for-bit.

// RApplyA2 computes y = A²·x blockwise on a real state vector.
func (m *Model) RApplyA2(y, x []float64) {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		y[off] = s * s * x[off]
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		s2, w2 := sg*sg-w*w, 2*sg*w
		x0, x1 := x[off], x[off+1]
		y[off] = s2*x0 + w2*x1
		y[off+1] = s2*x1 - w2*x0
	}
}

// RSolveShiftedA2 solves (A² − τI)·y = x blockwise in O(n) for a real
// shift τ. Returns mat.ErrSingular when τ coincides with a squared pole.
func (m *Model) RSolveShiftedA2(y, x []float64, tau float64) error {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		d := s*s - tau
		if d == 0 {
			return mat.ErrSingular
		}
		y[off] = x[off] / d
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		w2 := 2 * sg * w
		d := sg*sg - w*w - tau
		det := d*d + w2*w2
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		x0, x1 := x[off], x[off+1]
		y[off] = (d*x0 - w2*x1) * idet
		y[off+1] = (w2*x0 + d*x1) * idet
	}
	return nil
}

// RApplyABPair computes y = A·B·s1 + B·s2 for real s1, s2 ∈ R^p in O(n):
// the U-block apply of the half-size SMW correction on real vectors.
func (m *Model) RApplyABPair(y []float64, s1, s2 []float64) {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		b1 := pk.b11[i]
		u1, u2 := s1[pk.col1[i]], s2[pk.col1[i]]
		y[off] = s*b1*u1 + b1*u2
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		b1, b2 := pk.b21[i], pk.b22[i]
		// (A·B)_block = [[σ, ω], [−ω, σ]]·[b1; b2].
		ab1, ab2 := sg*b1+w*b2, -w*b1+sg*b2
		u1, u2 := s1[pk.col2[i]], s2[pk.col2[i]]
		y[off] = ab1*u1 + b1*u2
		y[off+1] = ab2*u1 + b2*u2
	}
}

// RResolventA2BPair computes the real q×2p capacitance panel
//
//	X = [ V·(A² − τI)⁻¹·A·B | V·(A² − τI)⁻¹·B ]
//
// into dst (row-major, len q·2p) for a real shift τ, with V supplied
// transposed as vt exactly as in VResolventA2BPair. Returns
// mat.ErrSingular when τ hits a squared pole.
func (m *Model) RResolventA2BPair(dst []float64, vt []float64, q int, tau float64) error {
	pk := m.packKernels()
	p := pk.p
	for i := range dst[:q*2*p] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		d := s*s - tau
		if d == 0 {
			return mat.ErrSingular
		}
		b1 := pk.b11[i]
		// Solves for the two right-hand sides A·B = σ·b1 and B = b1.
		gb := b1 / d
		ga := s * gb
		k := int(pk.col1[i])
		row := vt[int(off)*q : (int(off)+1)*q]
		for r, vv := range row {
			dst[r*2*p+k] += vv * ga
			dst[r*2*p+p+k] += vv * gb
		}
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		w2 := 2 * sg * w
		d := sg*sg - w*w - tau
		det := d*d + w2*w2
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		b1, b2 := pk.b21[i], pk.b22[i]
		ab1, ab2 := sg*b1+w*b2, -w*b1+sg*b2
		// Solve [[σ'−τ, ω'], [−ω', σ'−τ]]·x = rhs for rhs ∈ {A·B, B}.
		ga0 := (ab1*d - w2*ab2) * idet
		ga1 := (ab2*d + w2*ab1) * idet
		gb0 := (b1*d - w2*b2) * idet
		gb1 := (b2*d + w2*b1) * idet
		k := int(pk.col2[i])
		row0 := vt[int(off)*q : (int(off)+1)*q]
		row1 := vt[(int(off)+1)*q : (int(off)+2)*q]
		for r := 0; r < q; r++ {
			v0, v1 := row0[r], row1[r]
			dst[r*2*p+k] += v0*ga0 + v1*ga1
			dst[r*2*p+p+k] += v0*gb0 + v1*gb1
		}
	}
	return nil
}

// RResolventA2BPairMulti computes the RResolventA2BPair panel for every
// real shift in taus in one pass over the packed kernels: panel s lands in
// dst[s·q·2p : (s+1)·q·2p]. Error semantics match CResolventBMulti, and
// each panel is bit-identical to the corresponding single-shift call (same
// expression sequence, same block accumulation order).
func (m *Model) RResolventA2BPairMulti(dst []float64, vt []float64, q int, taus []float64, errs []error) {
	pk := m.packKernels()
	p := pk.p
	sz := q * 2 * p
	if len(dst) < len(taus)*sz || len(errs) != len(taus) {
		panic("statespace: RResolventA2BPairMulti buffer sizes")
	}
	for i := range dst[:len(taus)*sz] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		b1 := pk.b11[i]
		k := int(pk.col1[i])
		row := vt[int(off)*q : (int(off)+1)*q]
		for si, tau := range taus {
			if errs[si] != nil {
				continue
			}
			d := s*s - tau
			if d == 0 {
				errs[si] = mat.ErrSingular
				continue
			}
			gb := b1 / d
			ga := s * gb
			out := dst[si*sz : (si+1)*sz]
			for r, vv := range row {
				out[r*2*p+k] += vv * ga
				out[r*2*p+p+k] += vv * gb
			}
		}
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		w2 := 2 * sg * w
		sp := sg*sg - w*w
		b1, b2 := pk.b21[i], pk.b22[i]
		ab1, ab2 := sg*b1+w*b2, -w*b1+sg*b2
		k := int(pk.col2[i])
		row0 := vt[int(off)*q : (int(off)+1)*q]
		row1 := vt[(int(off)+1)*q : (int(off)+2)*q]
		for si, tau := range taus {
			if errs[si] != nil {
				continue
			}
			d := sp - tau
			det := d*d + w2*w2
			if det == 0 {
				errs[si] = mat.ErrSingular
				continue
			}
			idet := 1 / det
			ga0 := (ab1*d - w2*ab2) * idet
			ga1 := (ab2*d + w2*ab1) * idet
			gb0 := (b1*d - w2*b2) * idet
			gb1 := (b2*d + w2*b1) * idet
			out := dst[si*sz : (si+1)*sz]
			for r := 0; r < q; r++ {
				v0, v1 := row0[r], row1[r]
				out[r*2*p+k] += v0*ga0 + v1*ga1
				out[r*2*p+p+k] += v0*gb0 + v1*gb1
			}
		}
	}
}
