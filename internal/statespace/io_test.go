package statespace

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Generate(88, GenOptions{Ports: 2, Order: 10, TargetPeak: 1.02, GridPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.P != m.P || got.Order() != m.Order() {
		t.Fatal("shape mismatch after round trip")
	}
	if !got.D.Equalish(m.D, 0) {
		t.Fatal("D mismatch after round trip")
	}
	for k := range m.Cols {
		if !got.Cols[k].C.Equalish(m.Cols[k].C, 0) {
			t.Fatalf("column %d residue mismatch", k)
		}
		if len(got.Cols[k].Blocks) != len(m.Cols[k].Blocks) {
			t.Fatalf("column %d block count mismatch", k)
		}
		for b := range m.Cols[k].Blocks {
			if got.Cols[k].Blocks[b] != m.Cols[k].Blocks[b] {
				t.Fatalf("column %d block %d mismatch", k, b)
			}
		}
	}
	// Behavioural equality.
	w := 5e9
	if !got.EvalJW(w).Equalish(m.EvalJW(w), 1e-14) {
		t.Fatal("transfer mismatch after round trip")
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadModelCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err == nil {
		t.Fatal("expected error for corrupt file")
	}
}

func TestCachedCaseGeneratesThenReuses(t *testing.T) {
	dir := t.TempDir()
	spec := CaseSpec{ID: 99, N: 12, P: 2, TargetPeak: 1.02, Seed: 9}
	m1, err := CachedCase(spec, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Second call must hit the cache file (mutate the file's model? just
	// check the file exists and the models agree).
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one cache file, got %v (%v)", entries, err)
	}
	m2, err := CachedCase(spec, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.D.Equalish(m2.D, 0) {
		t.Fatal("cache reuse returned a different model")
	}
}

func TestFrequencyScaledPreservesTransfer(t *testing.T) {
	m, err := Generate(12, GenOptions{Ports: 2, Order: 8, TargetPeak: 1.05, GridPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	w0 := m.MaxPoleMagnitude()
	s := m.FrequencyScaled(w0)
	for _, w := range []float64{1e8, 2e9, 1.3e10} {
		h0 := m.EvalJW(w)
		h1 := s.EvalJW(w / w0)
		if !h1.Equalish(h0, 1e-10*(1+h0.MaxAbs())) {
			t.Fatalf("H'(ω/ω₀) != H(ω) at ω=%g", w)
		}
	}
}

func TestFrequencyScaledRejectsBadScale(t *testing.T) {
	m, err := Generate(13, GenOptions{Ports: 2, Order: 6, TargetPeak: 1.05, GridPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive scale")
		}
	}()
	m.FrequencyScaled(0)
}
