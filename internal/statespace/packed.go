package statespace

import "repro/internal/mat"

// packed is the flat, precomputed kernel representation of a Model. The
// Block/Column structs are convenient to build and mutate, but walking them
// per apply costs a pointer chase per column plus a struct load per block,
// and the residues sit behind column-strided At(i,j) access. packed lays
// everything out for the O(n·p) hot loops instead:
//
//   - block coefficients (σ, ω, b1, b2) in flat []float64, split by block
//     size so each kernel runs two branch-free loops;
//   - the global p×n C both row-major (c, streamed by CApplyC) and
//     transposed n×p (ct, streamed by CApplyCT and the SMW panels);
//   - per-block state offsets and owning port column.
//
// All coefficients are real, so every kernel uses real×complex arithmetic
// (2 real multiplies per element) instead of promoting to complex×complex
// (4 multiplies + 2 adds) via complex(x, 0).
//
// A packed is immutable once built; Model caches one lazily and drops the
// cache on in-place mutation (InvalidateKernels).
type packed struct {
	n, p int

	// backend is the dispatcher's resolution for this kernel generation
	// (never BackendAuto). It decides which of the C storages below is
	// populated and which loop family the C-touching kernels run.
	backend Backend

	// 1×1 blocks: state offset, pole, input weight, owning port column.
	off1 []int32
	sig1 []float64
	b11  []float64
	col1 []int32

	// 2×2 blocks: state offset, σ ± jω pair, input weights, owning column.
	off2 []int32
	sig2 []float64
	om2  []float64
	b21  []float64
	b22  []float64
	col2 []int32

	// Packed-dense C storage (nil under BackendSparse).
	c  []float64 // global C, p×n row-major
	ct []float64 // global Cᵀ, n×p row-major

	// CSR C storage (nil under BackendPackedDense): cr* compresses the
	// p×n C by rows, ct* compresses the n×p Cᵀ by rows (i.e. C by
	// columns). Column indices are ascending within each row, so sparse
	// accumulation visits entries in the same order as the dense loops —
	// the results differ only by the skipped structural-zero terms.
	crPtr []int32
	crIdx []int32
	crVal []float64
	ctPtr []int32
	ctIdx []int32
	ctVal []float64
}

// packKernels returns the cached packed representation, building it on
// first use. Safe for concurrent callers: a race builds the (identical)
// representation twice and one copy wins.
func (m *Model) packKernels() *packed {
	if pk := m.pack.Load(); pk != nil {
		return pk
	}
	pk := m.buildPacked()
	m.pack.Store(pk)
	return pk
}

// InvalidateKernels drops the cached packed kernel data and advances the
// kernel epoch (KernelEpoch), which invalidates every factorization-cache
// entry keyed on the previous generation. Callers that mutate a Model in
// place (pole or residue updates) must invalidate before the next
// structured-operator call; Clone/Balanced/FrequencyScaled return fresh
// models and need no invalidation. The epoch bump happens before the cache
// drop so a concurrent reader can rebuild against stale coefficients only
// under the already-superseded epoch, never under the new one.
func (m *Model) InvalidateKernels() {
	m.epoch.Add(1)
	m.pack.Store(nil)
}

func (m *Model) buildPacked() *packed {
	n := m.Order()
	pk := &packed{
		n:       n,
		p:       m.P,
		backend: m.resolveBackend(),
	}
	if pk.backend != BackendSparse {
		pk.c = make([]float64, m.P*n)
		pk.ct = make([]float64, n*m.P)
	}
	off := 0
	for k := range m.Cols {
		col := &m.Cols[k]
		mOrd := col.Order()
		if pk.backend != BackendSparse {
			for i := 0; i < m.P; i++ {
				ri := col.C.Row(i)
				copy(pk.c[i*n+off:i*n+off+mOrd], ri)
				for j := 0; j < mOrd; j++ {
					pk.ct[(off+j)*m.P+i] = ri[j]
				}
			}
		}
		boff := off
		for _, b := range col.Blocks {
			if b.Size == 1 {
				pk.off1 = append(pk.off1, int32(boff))
				pk.sig1 = append(pk.sig1, b.Sigma)
				pk.b11 = append(pk.b11, b.B1)
				pk.col1 = append(pk.col1, int32(k))
			} else {
				pk.off2 = append(pk.off2, int32(boff))
				pk.sig2 = append(pk.sig2, b.Sigma)
				pk.om2 = append(pk.om2, b.Omega)
				pk.b21 = append(pk.b21, b.B1)
				pk.b22 = append(pk.b22, b.B2)
				pk.col2 = append(pk.col2, int32(k))
			}
			boff += b.Size
		}
		off += mOrd
	}
	if pk.backend == BackendSparse {
		m.buildCSR(pk)
	}
	return pk
}

// scmul returns a·z for real a without promoting a to complex.
func scmul(a float64, z complex128) complex128 {
	return complex(a*real(z), a*imag(z))
}

// CApplyA computes y = A·x on a complex state vector, writing into y.
func (m *Model) CApplyA(y, x []complex128) {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		y[off] = scmul(pk.sig1[i], x[off])
	}
	for i, off := range pk.off2 {
		s, w := pk.sig2[i], pk.om2[i]
		x0, x1 := x[off], x[off+1]
		y[off] = complex(s*real(x0)+w*real(x1), s*imag(x0)+w*imag(x1))
		y[off+1] = complex(s*real(x1)-w*real(x0), s*imag(x1)-w*imag(x0))
	}
}

// CApplyAT computes y = Aᵀ·x on a complex state vector.
func (m *Model) CApplyAT(y, x []complex128) {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		y[off] = scmul(pk.sig1[i], x[off])
	}
	for i, off := range pk.off2 {
		s, w := pk.sig2[i], pk.om2[i]
		x0, x1 := x[off], x[off+1]
		y[off] = complex(s*real(x0)-w*real(x1), s*imag(x0)-w*imag(x1))
		y[off+1] = complex(s*real(x1)+w*real(x0), s*imag(x1)+w*imag(x0))
	}
}

// CSolveShiftedA solves (A − θI)·y = x blockwise in O(n). Returns an error
// if θ coincides with a pole (singular block).
func (m *Model) CSolveShiftedA(y, x []complex128, theta complex128) error {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		d := complex(pk.sig1[i], 0) - theta
		if d == 0 {
			return mat.ErrSingular
		}
		y[off] = x[off] / d
	}
	for i, off := range pk.off2 {
		// Solve [[σ−θ, ω], [−ω, σ−θ]]·y = x.
		w := pk.om2[i]
		d := complex(pk.sig2[i], 0) - theta
		det := d*d + complex(w*w, 0)
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		x0, x1 := x[off], x[off+1]
		y[off] = (d*x0 - scmul(w, x1)) * idet
		y[off+1] = (scmul(w, x0) + d*x1) * idet
	}
	return nil
}

// CSolveShiftedAT solves (Aᵀ − θI)·y = x blockwise in O(n).
func (m *Model) CSolveShiftedAT(y, x []complex128, theta complex128) error {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		d := complex(pk.sig1[i], 0) - theta
		if d == 0 {
			return mat.ErrSingular
		}
		y[off] = x[off] / d
	}
	for i, off := range pk.off2 {
		// Aᵀ block is [[σ, −ω], [ω, σ]]; solve (Aᵀ − θI)y = x.
		w := pk.om2[i]
		d := complex(pk.sig2[i], 0) - theta
		det := d*d + complex(w*w, 0)
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		x0, x1 := x[off], x[off+1]
		y[off] = (d*x0 + scmul(w, x1)) * idet
		y[off+1] = (d*x1 - scmul(w, x0)) * idet
	}
	return nil
}

// CApplyB computes y = B·u, u ∈ C^p, y ∈ C^n.
func (m *Model) CApplyB(y []complex128, u []complex128) {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		y[off] = scmul(pk.b11[i], u[pk.col1[i]])
	}
	for i, off := range pk.off2 {
		uk := u[pk.col2[i]]
		y[off] = scmul(pk.b21[i], uk)
		y[off+1] = scmul(pk.b22[i], uk)
	}
}

// CApplyBT computes y = Bᵀ·x, x ∈ C^n, y ∈ C^p.
func (m *Model) CApplyBT(y []complex128, x []complex128) {
	pk := m.packKernels()
	for k := 0; k < pk.p; k++ {
		y[k] = 0
	}
	for i, off := range pk.off1 {
		y[pk.col1[i]] += scmul(pk.b11[i], x[off])
	}
	for i, off := range pk.off2 {
		b1, b2 := pk.b21[i], pk.b22[i]
		x0, x1 := x[off], x[off+1]
		y[pk.col2[i]] += complex(b1*real(x0)+b2*real(x1), b1*imag(x0)+b2*imag(x1))
	}
}

// CApplyC computes y = C·x, x ∈ C^n, y ∈ C^p. Each output element streams
// one contiguous row of the packed C. The accumulation is sequential in j,
// which keeps the result bit-identical to the dense row·vector reference.
func (m *Model) CApplyC(y []complex128, x []complex128) {
	pk := m.packKernels()
	if pk.backend == BackendSparse {
		pk.sparseApplyC(y, x)
		return
	}
	n := pk.n
	for i := 0; i < pk.p; i++ {
		row := pk.c[i*n : (i+1)*n : (i+1)*n]
		var re, im float64
		for j, cj := range row {
			xj := x[j]
			re += cj * real(xj)
			im += cj * imag(xj)
		}
		y[i] = complex(re, im)
	}
}

// CApplyCT computes y = Cᵀ·u, u ∈ C^p, y ∈ C^n, streaming the transposed
// packing so every state reads one contiguous p-row.
func (m *Model) CApplyCT(y []complex128, u []complex128) {
	pk := m.packKernels()
	if pk.backend == BackendSparse {
		pk.sparseApplyCT(y, u)
		return
	}
	p := pk.p
	for j := 0; j < pk.n; j++ {
		row := pk.ct[j*p : (j+1)*p : (j+1)*p]
		var re, im float64
		for i, cij := range row {
			ui := u[i]
			re += cij * real(ui)
			im += cij * imag(ui)
		}
		y[j] = complex(re, im)
	}
}

// CResolventB computes the p×p panel X = C·(A − θI)⁻¹·B into dst
// (row-major, len p²) in O(n·p): B's k-th column is supported only on
// column k's states, so each per-column resolvent solve is block-local and
// feeds a rank-m_k update of X's k-th column through the packed Cᵀ rows.
// Note C·(A − θI)⁻¹·B = −(H(θ) − D). Returns mat.ErrSingular when θ hits a
// pole.
func (m *Model) CResolventB(dst []complex128, theta complex128) error {
	pk := m.packKernels()
	if pk.backend == BackendSparse {
		return pk.sparseResolventB(dst, theta)
	}
	p := pk.p
	for i := range dst[:p*p] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		d := complex(pk.sig1[i], 0) - theta
		if d == 0 {
			return mat.ErrSingular
		}
		x0 := complex(pk.b11[i], 0) / d
		k := int(pk.col1[i])
		r0, i0 := real(x0), imag(x0)
		row := pk.ct[int(off)*p : (int(off)+1)*p]
		for r, cv := range row {
			dst[r*p+k] += complex(cv*r0, cv*i0)
		}
	}
	for i, off := range pk.off2 {
		w := pk.om2[i]
		d := complex(pk.sig2[i], 0) - theta
		det := d*d + complex(w*w, 0)
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		b1, b2 := pk.b21[i], pk.b22[i]
		// [[σ−θ, ω], [−ω, σ−θ]]·x = b.
		x0 := (scmul(b1, d) - complex(w*b2, 0)) * idet
		x1 := (scmul(b2, d) + complex(w*b1, 0)) * idet
		k := int(pk.col2[i])
		r0, i0 := real(x0), imag(x0)
		r1, i1 := real(x1), imag(x1)
		row0 := pk.ct[int(off)*p : (int(off)+1)*p]
		row1 := pk.ct[(int(off)+1)*p : (int(off)+2)*p]
		for r := 0; r < p; r++ {
			c0, c1 := row0[r], row1[r]
			dst[r*p+k] += complex(c0*r0+c1*r1, c0*i0+c1*i1)
		}
	}
	return nil
}

// BTResolventCT computes the p×p panel X = Bᵀ·(Aᵀ − θI)⁻¹·Cᵀ into dst
// (row-major, len p²) in O(n·p): row k of Bᵀ selects column k's states, so
// the p right-hand sides of each block-local transposed solve come straight
// from the packed Cᵀ rows. For a 2×2 block the bilinear form collapses to
//
//	bᵀ·(Aᵀblk − θI)⁻¹·c = (d·(b₁c₀ + b₂c₁) + ω·(b₁c₁ − b₂c₀)) / (d² + ω²)
//
// with d = σ − θ, costing one complex multiply per (block, port) pair.
func (m *Model) BTResolventCT(dst []complex128, theta complex128) error {
	pk := m.packKernels()
	if pk.backend == BackendSparse {
		return pk.sparseBTResolventCT(dst, theta)
	}
	p := pk.p
	for i := range dst[:p*p] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		d := complex(pk.sig1[i], 0) - theta
		if d == 0 {
			return mat.ErrSingular
		}
		id := complex(pk.b11[i], 0) / d
		k := int(pk.col1[i])
		out := dst[k*p : (k+1)*p]
		row := pk.ct[int(off)*p : (int(off)+1)*p]
		for r, cv := range row {
			out[r] += scmul(cv, id)
		}
	}
	for i, off := range pk.off2 {
		w := pk.om2[i]
		d := complex(pk.sig2[i], 0) - theta
		det := d*d + complex(w*w, 0)
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		b1, b2 := pk.b21[i], pk.b22[i]
		k := int(pk.col2[i])
		out := dst[k*p : (k+1)*p]
		row0 := pk.ct[int(off)*p : (int(off)+1)*p]
		row1 := pk.ct[(int(off)+1)*p : (int(off)+2)*p]
		dr, di := real(d), imag(d)
		for r := 0; r < p; r++ {
			c0, c1 := row0[r], row1[r]
			u := b1*c0 + b2*c1
			v := b1*c1 - b2*c0
			out[r] += complex(dr*u+w*v, di*u) * idet
		}
	}
	return nil
}

// ---- batched multi-shift panels ----
//
// The per-shift SMW setup walks every packed kernel array once per panel.
// When a characterization schedules several shifts at once (the κT startup
// intervals, a warm-start crossing seed set), those walks are the same
// streams re-read per shift; the Multi variants hoist the shift loop inside
// the block loop so each block's coefficients and Cᵀ rows are loaded once
// and reused for every shift in the batch.
//
// Bit-identity contract: for every shift s, the panel written to
// dst[s·p² : (s+1)·p²] is bit-identical to the single-shift call with
// thetas[s] — the per-(block, shift) arithmetic is the same expression
// sequence and blocks accumulate in the same order, so a factorization
// built from a batched panel equals one built from a solo panel exactly.
// Equivalence is pinned by TestMultiShiftPanelsBitIdentical.

// CResolventBMulti computes the CResolventB panel for every shift in
// thetas in one pass over the packed kernels: panel s lands in
// dst[s·p² : (s+1)·p²] (dst must have length ≥ len(thetas)·p²). A shift
// that coincides with a pole gets mat.ErrSingular in errs[s] (len(errs)
// must equal len(thetas)) and its panel is left partial; the remaining
// shifts are unaffected.
func (m *Model) CResolventBMulti(dst []complex128, thetas []complex128, errs []error) {
	pk := m.packKernels()
	p := pk.p
	pp := p * p
	if len(dst) < len(thetas)*pp || len(errs) != len(thetas) {
		panic("statespace: CResolventBMulti buffer sizes")
	}
	if pk.backend == BackendSparse {
		pk.sparseResolventBMulti(dst, thetas, errs)
		return
	}
	for i := range dst[:len(thetas)*pp] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		sig := pk.sig1[i]
		b1 := pk.b11[i]
		k := int(pk.col1[i])
		row := pk.ct[int(off)*p : (int(off)+1)*p]
		for s, theta := range thetas {
			if errs[s] != nil {
				continue
			}
			d := complex(sig, 0) - theta
			if d == 0 {
				errs[s] = mat.ErrSingular
				continue
			}
			x0 := complex(b1, 0) / d
			r0, i0 := real(x0), imag(x0)
			out := dst[s*pp : (s+1)*pp]
			for r, cv := range row {
				out[r*p+k] += complex(cv*r0, cv*i0)
			}
		}
	}
	for i, off := range pk.off2 {
		sig, w := pk.sig2[i], pk.om2[i]
		b1, b2 := pk.b21[i], pk.b22[i]
		k := int(pk.col2[i])
		row0 := pk.ct[int(off)*p : (int(off)+1)*p]
		row1 := pk.ct[(int(off)+1)*p : (int(off)+2)*p]
		for s, theta := range thetas {
			if errs[s] != nil {
				continue
			}
			d := complex(sig, 0) - theta
			det := d*d + complex(w*w, 0)
			if det == 0 {
				errs[s] = mat.ErrSingular
				continue
			}
			idet := 1 / det
			// [[σ−θ, ω], [−ω, σ−θ]]·x = b.
			x0 := (scmul(b1, d) - complex(w*b2, 0)) * idet
			x1 := (scmul(b2, d) + complex(w*b1, 0)) * idet
			r0, i0 := real(x0), imag(x0)
			r1, i1 := real(x1), imag(x1)
			out := dst[s*pp : (s+1)*pp]
			for r := 0; r < p; r++ {
				c0, c1 := row0[r], row1[r]
				out[r*p+k] += complex(c0*r0+c1*r1, c0*i0+c1*i1)
			}
		}
	}
}

// BTResolventCTMulti computes the BTResolventCT panel for every shift in
// thetas in one pass over the packed kernels; layout and error semantics
// match CResolventBMulti.
func (m *Model) BTResolventCTMulti(dst []complex128, thetas []complex128, errs []error) {
	pk := m.packKernels()
	p := pk.p
	pp := p * p
	if len(dst) < len(thetas)*pp || len(errs) != len(thetas) {
		panic("statespace: BTResolventCTMulti buffer sizes")
	}
	if pk.backend == BackendSparse {
		pk.sparseBTResolventCTMulti(dst, thetas, errs)
		return
	}
	for i := range dst[:len(thetas)*pp] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		sig := pk.sig1[i]
		b1 := pk.b11[i]
		k := int(pk.col1[i])
		row := pk.ct[int(off)*p : (int(off)+1)*p]
		for s, theta := range thetas {
			if errs[s] != nil {
				continue
			}
			d := complex(sig, 0) - theta
			if d == 0 {
				errs[s] = mat.ErrSingular
				continue
			}
			id := complex(b1, 0) / d
			out := dst[s*pp+k*p : s*pp+(k+1)*p]
			for r, cv := range row {
				out[r] += scmul(cv, id)
			}
		}
	}
	for i, off := range pk.off2 {
		sig, w := pk.sig2[i], pk.om2[i]
		b1, b2 := pk.b21[i], pk.b22[i]
		k := int(pk.col2[i])
		row0 := pk.ct[int(off)*p : (int(off)+1)*p]
		row1 := pk.ct[(int(off)+1)*p : (int(off)+2)*p]
		for s, theta := range thetas {
			if errs[s] != nil {
				continue
			}
			d := complex(sig, 0) - theta
			det := d*d + complex(w*w, 0)
			if det == 0 {
				errs[s] = mat.ErrSingular
				continue
			}
			idet := 1 / det
			out := dst[s*pp+k*p : s*pp+(k+1)*p]
			dr, di := real(d), imag(d)
			for r := 0; r < p; r++ {
				c0, c1 := row0[r], row1[r]
				u := b1*c0 + b2*c1
				v := b1*c1 - b2*c0
				out[r] += complex(dr*u+w*v, di*u) * idet
			}
		}
	}
}
