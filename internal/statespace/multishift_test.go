package statespace

import (
	"testing"

	"repro/internal/mat"
)

// TestMultiShiftPanelsBitIdentical pins the contract the batched prefactor
// path relies on: for every shift, the Multi kernels' panel must equal the
// single-shift kernel's panel BIT FOR BIT — same block order, same
// expression sequence — so a factorization built from a batched panel is
// indistinguishable from a lazily built one and cached solves stay
// bit-identical to uncached ones.
func TestMultiShiftPanelsBitIdentical(t *testing.T) {
	m, err := Generate(31, GenOptions{Ports: 3, Order: 22, TargetPeak: 1.04, GridPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	wmax := m.MaxPoleMagnitude()
	thetas := []complex128{
		complex(0, 0.1*wmax),
		complex(0, 0.37*wmax),
		complex(1e-3*wmax, 0.7*wmax),
		complex(0, 1.2*wmax),
		complex(-2e-4*wmax, 0.02*wmax),
	}
	p := m.P
	pp := p * p
	multi := make([]complex128, len(thetas)*pp)
	errs := make([]error, len(thetas))
	single := make([]complex128, pp)

	m.CResolventBMulti(multi, thetas, errs)
	for s, th := range thetas {
		if errs[s] != nil {
			t.Fatalf("CResolventBMulti shift %d: %v", s, errs[s])
		}
		if err := m.CResolventB(single, th); err != nil {
			t.Fatalf("CResolventB shift %d: %v", s, err)
		}
		for i, v := range single {
			if got := multi[s*pp+i]; got != v {
				t.Fatalf("CResolventB panel %d entry %d: batched %v != single %v", s, i, got, v)
			}
		}
	}

	m.BTResolventCTMulti(multi, thetas, errs)
	for s, th := range thetas {
		if errs[s] != nil {
			t.Fatalf("BTResolventCTMulti shift %d: %v", s, errs[s])
		}
		if err := m.BTResolventCT(single, th); err != nil {
			t.Fatalf("BTResolventCT shift %d: %v", s, err)
		}
		for i, v := range single {
			if got := multi[s*pp+i]; got != v {
				t.Fatalf("BTResolventCT panel %d entry %d: batched %v != single %v", s, i, got, v)
			}
		}
	}
}

// TestMultiShiftPanelsSingularIsolation checks the per-shift error
// semantics: a shift sitting exactly on a pole reports mat.ErrSingular in
// its own slot while every other shift's panel stays bit-identical to the
// single-shift kernel.
func TestMultiShiftPanelsSingularIsolation(t *testing.T) {
	m, err := Generate(32, GenOptions{Ports: 2, Order: 12, TargetPeak: 1.02, GridPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Hit a real pole exactly (a 1×1 block's sigma), if the realization has
	// one; otherwise a 2×2 block's σ ± jω.
	var polehit complex128
	found := false
	for _, col := range m.Cols {
		for _, b := range col.Blocks {
			if b.Size == 1 {
				polehit = complex(b.Sigma, 0)
				found = true
				break
			}
			polehit = complex(b.Sigma, b.Omega)
			found = true
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("generated model has no blocks")
	}
	wmax := m.MaxPoleMagnitude()
	thetas := []complex128{complex(0, 0.3*wmax), polehit, complex(0, 0.9*wmax)}
	p := m.P
	pp := p * p
	multi := make([]complex128, len(thetas)*pp)
	errs := make([]error, len(thetas))
	single := make([]complex128, pp)
	for name, run := range map[string]struct {
		multiFn  func([]complex128, []complex128, []error)
		singleFn func([]complex128, complex128) error
	}{
		"CResolventB":   {m.CResolventBMulti, m.CResolventB},
		"BTResolventCT": {m.BTResolventCTMulti, m.BTResolventCT},
	} {
		run.multiFn(multi, thetas, errs)
		if errs[1] != mat.ErrSingular {
			t.Fatalf("%s: pole shift error = %v, want ErrSingular", name, errs[1])
		}
		for _, s := range []int{0, 2} {
			if errs[s] != nil {
				t.Fatalf("%s: healthy shift %d poisoned: %v", name, s, errs[s])
			}
			if err := run.singleFn(single, thetas[s]); err != nil {
				t.Fatal(err)
			}
			for i, v := range single {
				if got := multi[s*pp+i]; got != v {
					t.Fatalf("%s: healthy shift %d entry %d: %v != %v", name, s, i, got, v)
				}
			}
		}
		errs[1] = nil // reset for the second kernel
	}
}
