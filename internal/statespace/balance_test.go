package statespace

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestBalancedPreservesTransferExactly(t *testing.T) {
	m, err := Generate(17, GenOptions{Ports: 3, Order: 14, TargetPeak: 1.05, GridPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	b := m.Balanced()
	for _, w := range []float64{0, 1e8, 3e9, 5e10} {
		h0 := m.EvalJW(w)
		h1 := b.EvalJW(w)
		if !h1.Equalish(h0, 1e-12*(1+h0.MaxAbs())) {
			t.Fatalf("Balanced changed H(jω) at ω=%g", w)
		}
	}
	// Poles untouched.
	p0, p1 := m.Poles(), b.Poles()
	for i := range p0 {
		if p0[i] != p1[i] {
			t.Fatal("Balanced moved a pole")
		}
	}
}

func TestBalancedEqualizesBlockNorms(t *testing.T) {
	m, err := Generate(18, GenOptions{Ports: 2, Order: 10, TargetPeak: 1.02, GridPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	b := m.Balanced()
	for k := range b.Cols {
		col := &b.Cols[k]
		off := 0
		for _, blk := range col.Blocks {
			bnorm := math.Hypot(blk.B1, blk.B2)
			var cs float64
			for i := 0; i < b.P; i++ {
				for s := 0; s < blk.Size; s++ {
					v := col.C.At(i, off+s)
					cs += v * v
				}
			}
			cnorm := math.Sqrt(cs)
			if bnorm == 0 || cnorm == 0 {
				off += blk.Size
				continue
			}
			if math.Abs(bnorm-cnorm) > 1e-9*(bnorm+cnorm) {
				t.Fatalf("column %d block at %d: ‖b‖=%g vs ‖c‖=%g", k, off, bnorm, cnorm)
			}
			off += blk.Size
		}
	}
}

func TestBalancedHandlesZeroResidueBlock(t *testing.T) {
	m := &Model{
		P: 1,
		D: mat.NewDense(1, 1),
		Cols: []Column{{
			Blocks: []Block{{Size: 1, Sigma: -1e9, B1: 1}},
			C:      mat.NewDense(1, 1), // unobservable state: zero residue
		}},
	}
	b := m.Balanced() // must not divide by zero
	if b.Cols[0].Blocks[0].B1 != 1 {
		t.Fatal("zero-residue block should be left untouched")
	}
}

func TestBalancedDoesNotMutateOriginal(t *testing.T) {
	m, err := Generate(19, GenOptions{Ports: 2, Order: 8, TargetPeak: 1.02, GridPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Clone()
	_ = m.Balanced()
	if !m.Cols[0].C.Equalish(before.Cols[0].C, 0) || m.Cols[0].Blocks[0] != before.Cols[0].Blocks[0] {
		t.Fatal("Balanced mutated its receiver")
	}
}
