package statespace

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// smallModel builds a deterministic 2-port, order-5 model for tests.
func smallModel(t *testing.T) *Model {
	t.Helper()
	m, err := Generate(42, GenOptions{Ports: 2, Order: 5, TargetPeak: 1.05, GridPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerateBasicInvariants(t *testing.T) {
	m, err := Generate(7, GenOptions{Ports: 3, Order: 20, TargetPeak: 1.02, GridPoints: 80})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Order() != 20 {
		t.Fatalf("Order = %d, want 20", m.Order())
	}
	if m.P != 3 || len(m.Cols) != 3 {
		t.Fatalf("wrong port structure")
	}
	for _, p := range m.Poles() {
		if real(p) >= 0 {
			t.Fatalf("unstable pole %v", p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(9, GenOptions{Ports: 2, Order: 8, GridPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(9, GenOptions{Ports: 2, Order: 8, GridPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !a.D.Equalish(b.D, 0) {
		t.Fatal("same seed produced different D")
	}
	for k := range a.Cols {
		if !a.Cols[k].C.Equalish(b.Cols[k].C, 0) {
			t.Fatalf("same seed produced different residues in column %d", k)
		}
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	if _, err := Generate(1, GenOptions{Ports: 0, Order: 5}); err == nil {
		t.Fatal("expected error for zero ports")
	}
	if _, err := Generate(1, GenOptions{Ports: 10, Order: 5}); err == nil {
		t.Fatal("expected error for order < ports")
	}
	if _, err := Generate(1, GenOptions{Ports: 2, Order: 8, TargetPeak: 0.05, DNorm: 0.1}); err == nil {
		t.Fatal("expected error for target peak below D norm")
	}
}

func TestEvalMatchesDenseRealization(t *testing.T) {
	m := smallModel(t)
	a := m.DenseA().ToComplex()
	b := m.DenseB().ToComplex()
	c := m.DenseC().ToComplex()
	d := m.D.ToComplex()
	n := m.Order()
	for _, w := range []float64{0, 1e8, 3e9, 2e10} {
		s := complex(0, w)
		// H = D + C (sI − A)⁻¹ B, densely.
		si := mat.CEye(n).Scale(s).Sub(a)
		inv, err := mat.CInverse(si)
		if err != nil {
			t.Fatal(err)
		}
		want := d.Add(c.Mul(inv).Mul(b))
		got := m.Eval(s)
		if !got.Equalish(want, 1e-8*(1+want.FrobNorm())) {
			t.Fatalf("ω=%g: Eval mismatch", w)
		}
	}
}

func TestEvalConjugateSymmetry(t *testing.T) {
	// Real realization ⇒ H(conj(s)) = conj(H(s)).
	m := smallModel(t)
	s := complex(2e8, 7e9)
	h1 := m.Eval(s)
	h2 := m.Eval(cmplx.Conj(s))
	for i := 0; i < m.P; i++ {
		for j := 0; j < m.P; j++ {
			if cmplx.Abs(h2.At(i, j)-cmplx.Conj(h1.At(i, j))) > 1e-10*(1+cmplx.Abs(h1.At(i, j))) {
				t.Fatalf("conjugate symmetry violated at (%d,%d)", i, j)
			}
		}
	}
}

func TestStructuredOpsMatchDense(t *testing.T) {
	m := smallModel(t)
	n := m.Order()
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	u := make([]complex128, m.P)
	for i := range u {
		u[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	a := m.DenseA().ToComplex()
	bD := m.DenseB().ToComplex()
	cD := m.DenseC().ToComplex()

	y := make([]complex128, n)
	m.CApplyA(y, x)
	if d := diffNorm(y, a.MulVec(x)); d > 1e-10 {
		t.Fatalf("CApplyA mismatch %g", d)
	}
	m.CApplyAT(y, x)
	if d := diffNorm(y, a.T().MulVec(x)); d > 1e-10 {
		t.Fatalf("CApplyAT mismatch %g", d)
	}
	m.CApplyB(y, u)
	if d := diffNorm(y, bD.MulVec(u)); d > 1e-10 {
		t.Fatalf("CApplyB mismatch %g", d)
	}
	yp := make([]complex128, m.P)
	m.CApplyBT(yp, x)
	if d := diffNorm(yp, bD.T().MulVec(x)); d > 1e-10 {
		t.Fatalf("CApplyBT mismatch %g", d)
	}
	m.CApplyC(yp, x)
	if d := diffNorm(yp, cD.MulVec(x)); d > 1e-10 {
		t.Fatalf("CApplyC mismatch %g", d)
	}
	m.CApplyCT(y, u)
	if d := diffNorm(y, cD.T().MulVec(u)); d > 1e-10 {
		t.Fatalf("CApplyCT mismatch %g", d)
	}
}

func diffNorm(a, b []complex128) float64 {
	d := make([]complex128, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return mat.CNorm2(d)
}

func TestShiftedSolvesInvertApply(t *testing.T) {
	m := smallModel(t)
	n := m.Order()
	rng := rand.New(rand.NewSource(6))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	theta := complex(1e7, 5e9)
	y := make([]complex128, n)
	z := make([]complex128, n)
	// (A − θI)⁻¹ then (A − θI) applied should return x.
	if err := m.CSolveShiftedA(y, x, theta); err != nil {
		t.Fatal(err)
	}
	m.CApplyA(z, y)
	for i := range z {
		z[i] -= theta * y[i]
	}
	if d := diffNorm(z, x); d > 1e-9*mat.CNorm2(x) {
		t.Fatalf("CSolveShiftedA roundtrip error %g", d)
	}
	if err := m.CSolveShiftedAT(y, x, theta); err != nil {
		t.Fatal(err)
	}
	m.CApplyAT(z, y)
	for i := range z {
		z[i] -= theta * y[i]
	}
	if d := diffNorm(z, x); d > 1e-9*mat.CNorm2(x) {
		t.Fatalf("CSolveShiftedAT roundtrip error %g", d)
	}
}

func TestShiftedSolveSingularAtPole(t *testing.T) {
	m := &Model{
		P: 1,
		D: mat.NewDense(1, 1),
		Cols: []Column{{
			Blocks: []Block{{Size: 1, Sigma: -2, B1: 1}},
			C:      mat.DenseFromSlice(1, 1, []float64{1}),
		}},
	}
	y := make([]complex128, 1)
	if err := m.CSolveShiftedA(y, []complex128{1}, complex(-2, 0)); err != mat.ErrSingular {
		t.Fatalf("expected ErrSingular at the pole, got %v", err)
	}
}

func TestPoleResidueRoundTrip(t *testing.T) {
	// Build a column from poles/residues and verify the realization
	// reproduces the expansion at several frequencies.
	poles := []complex128{complex(-3e8, 0), complex(-5e8, 6e9)}
	res := mat.NewCDense(2, 2)
	res.Set(0, 0, complex(2e8, 0))
	res.Set(1, 0, complex(-1e8, 0))
	res.Set(0, 1, complex(3e8, 1e8))
	res.Set(1, 1, complex(-2e8, 5e7))
	col, err := ColumnFromPoleResidue(poles, res)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{P: 2, D: mat.NewDense(2, 2), Cols: []Column{col, {Blocks: []Block{{Size: 1, Sigma: -1e9, B1: 1}}, C: mat.NewDense(2, 1)}}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0, 1e9, 6e9, 3e10} {
		s := complex(0, w)
		h := m.Eval(s)
		for row := 0; row < 2; row++ {
			want := res.At(row, 0)/(s-poles[0]) +
				res.At(row, 1)/(s-poles[1]) +
				cmplx.Conj(res.At(row, 1))/(s-cmplx.Conj(poles[1]))
			if cmplx.Abs(h.At(row, 0)-want) > 1e-9*(1+cmplx.Abs(want)) {
				t.Fatalf("ω=%g row=%d: got %v want %v", w, row, h.At(row, 0), want)
			}
		}
	}
}

func TestColumnFromPoleResidueErrors(t *testing.T) {
	res := mat.NewCDense(1, 1)
	if _, err := ColumnFromPoleResidue([]complex128{complex(1, 0)}, res); err == nil {
		t.Fatal("expected unstable-pole error")
	}
	if _, err := ColumnFromPoleResidue([]complex128{complex(-1, -2)}, res); err == nil {
		t.Fatal("expected Im<0 rejection")
	}
	res.Set(0, 0, complex(1, 1))
	if _, err := ColumnFromPoleResidue([]complex128{complex(-1, 0)}, res); err == nil {
		t.Fatal("expected complex-residue-on-real-pole error")
	}
}

func TestCalibratedPeakHitsTarget(t *testing.T) {
	for _, target := range []float64{0.9, 1.05} {
		m, err := Generate(3, GenOptions{Ports: 2, Order: 12, TargetPeak: target, GridPoints: 120})
		if err != nil {
			t.Fatal(err)
		}
		grid := SweepGrid(m, 3e7, 3e10, 500)
		peak, err := PeakSigma(m, grid)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(peak-target) > 0.02*target {
			t.Fatalf("target %g: calibrated peak %g", target, peak)
		}
	}
}

func TestMaxSigmaMatchesSVD(t *testing.T) {
	m := smallModel(t)
	w := 5e9
	s1, err := m.MaxSigma(w)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := mat.SingularValues(m.EvalJW(w))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1-sv[0]) > 1e-12*(1+sv[0]) {
		t.Fatalf("MaxSigma %g vs SVD %g", s1, sv[0])
	}
}

func TestLogGrid(t *testing.T) {
	g := LogGrid(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12*want[i] {
			t.Fatalf("LogGrid = %v", g)
		}
	}
	if g := LogGrid(5, 50, 1); len(g) != 1 || g[0] != 5 {
		t.Fatalf("LogGrid n=1 = %v", g)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := smallModel(t)
	c := m.Clone()
	c.D.Set(0, 0, 99)
	c.Cols[0].C.Set(0, 0, 99)
	if m.D.At(0, 0) == 99 || m.Cols[0].C.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTableICaseSpecs(t *testing.T) {
	cases := TableICases()
	if len(cases) != 12 {
		t.Fatalf("expected 12 cases, got %d", len(cases))
	}
	// Spot-check the paper's (n, p) values.
	if cases[0].N != 1000 || cases[0].P != 20 {
		t.Fatal("case 1 wrong dims")
	}
	if cases[9].N != 4150 || cases[9].P != 83 {
		t.Fatal("case 10 wrong dims")
	}
	for _, c := range cases {
		if c.PaperNlambda == 0 && c.TargetPeak >= 1 {
			t.Fatalf("case %d: passive case with target peak ≥ 1", c.ID)
		}
		if c.PaperNlambda > 0 && c.TargetPeak <= 1 {
			t.Fatalf("case %d: non-passive case with target peak ≤ 1", c.ID)
		}
	}
	if _, err := FindCase(5); err != nil {
		t.Fatal(err)
	}
	if _, err := FindCase(13); err == nil {
		t.Fatal("expected error for unknown case")
	}
}

func TestRandomModelPassivityConsistencyProperty(t *testing.T) {
	// For random small models, peak σ over a fine grid must be within a few
	// percent of the calibration target (monotonicity sanity).
	f := func(seed int64) bool {
		target := 0.95
		if seed%2 == 0 {
			target = 1.08
		}
		m, err := Generate(seed, GenOptions{Ports: 2, Order: 10, TargetPeak: target, GridPoints: 100})
		if err != nil {
			return false
		}
		peak, err := PeakSigma(m, SweepGrid(m, 3e7, 3e10, 300))
		if err != nil {
			return false
		}
		return math.Abs(peak-target) < 0.05*target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
