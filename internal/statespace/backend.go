package statespace

// Backend selects which kernel implementation executes the structured-
// operator surface (CApply*/CSolveShifted*/CResolventB*). All backends
// implement the same contract against the same Model; they differ only in
// the storage and loop structure of the C-touching kernels. For any fixed
// backend the kernels are deterministic and bit-identical across worker
// counts; cross-backend results agree to round-off (pinned at 1e-12 by the
// property tests), not bit-exactly, because the sparse loops skip the
// structural zeros the dense loops accumulate.
type Backend int32

const (
	// BackendAuto defers the choice to the dispatcher: the sparse backend
	// is picked iff the model is large (n ≥ sparseMinOrder) AND C is at
	// most ¼ dense; everything else runs packed-dense. The rule is a pure
	// function of the model's structure, so the same model always resolves
	// to the same backend on every host and worker count.
	BackendAuto Backend = iota
	// BackendPackedDense forces the flat packed-dense kernels (packed.go):
	// C stored dense row-major both ways. The right choice for the paper's
	// Table-I models, whose C is fully dense.
	BackendPackedDense
	// BackendSparse forces the CSR kernels (sparse.go): C and Cᵀ stored
	// compressed, so applies and SMW panel setup cost O(nnz) instead of
	// O(n·p). The right choice for n ≳ 10⁴ models with port-local residues.
	BackendSparse
)

// String names the backend for reports and bench output.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendPackedDense:
		return "packed-dense"
	case BackendSparse:
		return "sparse"
	default:
		return "unknown"
	}
}

// sparseMinOrder is the smallest dynamic order at which BackendAuto will
// consider the sparse backend: below it the dense kernels win on constant
// factors regardless of sparsity.
const sparseMinOrder = 512

// SetBackend requests a kernel backend for the model. BackendAuto (the
// default) lets the dispatcher choose per the model's structure. Changing
// the request drops the packed kernel cache and advances the kernel epoch
// (factor caches keyed on the old backend age out); setting the value
// already in effect is a no-op.
func (m *Model) SetBackend(b Backend) {
	if Backend(m.backend.Load()) == b {
		return
	}
	m.backend.Store(int32(b))
	m.InvalidateKernels()
}

// BackendSelection returns the requested backend (BackendAuto unless
// SetBackend overrode it).
func (m *Model) BackendSelection() Backend { return Backend(m.backend.Load()) }

// ActiveBackend returns the backend actually executing kernels for the
// model — the dispatcher's resolution of BackendAuto, or the forced value.
// It never returns BackendAuto.
func (m *Model) ActiveBackend() Backend { return m.packKernels().backend }

// nnzC counts the structurally non-zero entries of the global C matrix.
func (m *Model) nnzC() int {
	nnz := 0
	for k := range m.Cols {
		col := &m.Cols[k]
		mOrd := col.Order()
		for i := 0; i < m.P; i++ {
			ri := col.C.Row(i)
			for j := 0; j < mOrd; j++ {
				if ri[j] != 0 {
					nnz++
				}
			}
		}
	}
	return nnz
}

// resolveBackend maps the request to a concrete backend. The auto rule is
// deterministic in the model structure alone: sparse iff the order clears
// sparseMinOrder and C is at most ¼ structurally dense.
func (m *Model) resolveBackend() Backend {
	switch Backend(m.backend.Load()) {
	case BackendPackedDense:
		return BackendPackedDense
	case BackendSparse:
		return BackendSparse
	default:
		n := m.Order()
		if n >= sparseMinOrder && 4*m.nnzC() <= m.P*n {
			return BackendSparse
		}
		return BackendPackedDense
	}
}
