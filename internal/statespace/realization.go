package statespace

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ColumnFromPoleResidue builds a real SIMO column realization from a
// pole–residue expansion of one column of H(s):
//
//	H[:,k](s) = Σ_i r_i/(s − p_i)
//
// Poles must be strictly stable. Real poles carry real residue vectors;
// complex poles must be supplied once with Im p > 0 together with their
// (complex) residue vector — the conjugate partner is implied. residues is
// p×len(poles) with column i the residue vector of pole i.
//
// The transformation to a real realization follows Grivet-Talocia & Ubolli
// 2006: a complex pair p = σ±jω with residue r = r'+jr” becomes the 2×2
// block [[σ, ω], [−ω, σ]] with input [2, 0]ᵀ and output row [r', r”].
func ColumnFromPoleResidue(poles []complex128, residues *mat.CDense) (Column, error) {
	p := residues.Rows
	if residues.Cols != len(poles) {
		return Column{}, fmt.Errorf("statespace: %d poles but %d residue columns", len(poles), residues.Cols)
	}
	var col Column
	order := 0
	for _, pl := range poles {
		if real(pl) >= 0 {
			return Column{}, fmt.Errorf("statespace: unstable pole %v", pl)
		}
		if imag(pl) < 0 {
			return Column{}, errors.New("statespace: supply complex poles with Im > 0 only (conjugate implied)")
		}
		if imag(pl) == 0 {
			order++
		} else {
			order += 2
		}
	}
	c := mat.NewDense(p, order)
	off := 0
	for i, pl := range poles {
		if imag(pl) == 0 {
			col.Blocks = append(col.Blocks, Block{Size: 1, Sigma: real(pl), B1: 1})
			for row := 0; row < p; row++ {
				ri := residues.At(row, i)
				if math.Abs(imag(ri)) > 1e-9*(1+math.Abs(real(ri))) {
					return Column{}, fmt.Errorf("statespace: real pole %v with complex residue %v", pl, ri)
				}
				c.Set(row, off, real(ri))
			}
			off++
			continue
		}
		col.Blocks = append(col.Blocks, Block{Size: 2, Sigma: real(pl), Omega: imag(pl), B1: 2, B2: 0})
		for row := 0; row < p; row++ {
			ri := residues.At(row, i)
			c.Set(row, off, real(ri))
			c.Set(row, off+1, imag(ri))
		}
		off += 2
	}
	col.C = c
	return col, nil
}

// FromPoleResidue assembles a full model from per-column pole–residue data.
// poles[k] and residues[k] describe column k; D is the direct coupling.
func FromPoleResidue(d *mat.Dense, poles [][]complex128, residues []*mat.CDense) (*Model, error) {
	p := d.Rows
	if d.Cols != p {
		return nil, errors.New("statespace: D must be square")
	}
	if len(poles) != p || len(residues) != p {
		return nil, fmt.Errorf("statespace: need %d columns of pole-residue data", p)
	}
	m := &Model{P: p, D: d.Clone(), Cols: make([]Column, p)}
	for k := 0; k < p; k++ {
		col, err := ColumnFromPoleResidue(poles[k], residues[k])
		if err != nil {
			return nil, fmt.Errorf("statespace: column %d: %w", k, err)
		}
		m.Cols[k] = col
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
