package statespace

import "repro/internal/mat"

// Squared-operator kernels for the half-size Hamiltonian path. For a
// reciprocal model the 2n×2n Hamiltonian M is similar to [0, P̃; Q̃, 0]
// with P̃ = A + B·Wp·C and Q̃ = A + B·Wq·C, so spec(M)² = spec(N) with
//
//	N = Q̃·P̃ = A² + U·V,  U = [A·B | B] (n×2p),
//	V = [Wp·C ; Wq·(C·A + (C·B)·Wp·C)] (2p×n, real).
//
// A² inherits A's block-diagonal form — each 2×2 rotation block squares to
// another rotation block with σ' = σ² − ω², ω' = 2σω — so (N − τI)⁻¹ is
// again a block-diagonal solve plus a rank-2p SMW correction, mirroring
// the full-size shift-invert setup at half the state dimension. V is
// precomputed by the hamiltonian package (it owns Wp/Wq); the kernels here
// provide the block-local pieces: A² applies/solves, the U-pair apply, and
// the V·(A² − τI)⁻¹·U capacitance panels (single and multi-shift).

// CApplyA2 computes y = A²·x blockwise on a complex state vector.
func (m *Model) CApplyA2(y, x []complex128) {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		y[off] = scmul(s*s, x[off])
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		s2, w2 := sg*sg-w*w, 2*sg*w
		x0, x1 := x[off], x[off+1]
		y[off] = complex(s2*real(x0)+w2*real(x1), s2*imag(x0)+w2*imag(x1))
		y[off+1] = complex(s2*real(x1)-w2*real(x0), s2*imag(x1)-w2*imag(x0))
	}
}

// CSolveShiftedA2 solves (A² − τI)·y = x blockwise in O(n). Returns
// mat.ErrSingular when τ coincides with a squared pole.
func (m *Model) CSolveShiftedA2(y, x []complex128, tau complex128) error {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		d := complex(s*s, 0) - tau
		if d == 0 {
			return mat.ErrSingular
		}
		y[off] = x[off] / d
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		w2 := 2 * sg * w
		d := complex(sg*sg-w*w, 0) - tau
		det := d*d + complex(w2*w2, 0)
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		x0, x1 := x[off], x[off+1]
		y[off] = (d*x0 - scmul(w2, x1)) * idet
		y[off+1] = (scmul(w2, x0) + d*x1) * idet
	}
	return nil
}

// CApplyABPair computes y = A·B·s1 + B·s2 for s1, s2 ∈ C^p in O(n): the
// U-block apply of the half-size SMW correction. B's k-th column lives on
// column k's states, and A·B keeps that support.
func (m *Model) CApplyABPair(y []complex128, s1, s2 []complex128) {
	pk := m.packKernels()
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		b1 := pk.b11[i]
		u1, u2 := s1[pk.col1[i]], s2[pk.col1[i]]
		y[off] = complex(s*b1*real(u1)+b1*real(u2), s*b1*imag(u1)+b1*imag(u2))
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		b1, b2 := pk.b21[i], pk.b22[i]
		// (A·B)_block = [[σ, ω], [−ω, σ]]·[b1; b2].
		ab1, ab2 := sg*b1+w*b2, -w*b1+sg*b2
		u1, u2 := s1[pk.col2[i]], s2[pk.col2[i]]
		y[off] = complex(ab1*real(u1)+b1*real(u2), ab1*imag(u1)+b1*imag(u2))
		y[off+1] = complex(ab2*real(u1)+b2*real(u2), ab2*imag(u1)+b2*imag(u2))
	}
}

// VResolventA2BPair computes the q×2p capacitance panel
//
//	X = [ V·(A² − τI)⁻¹·A·B | V·(A² − τI)⁻¹·B ]
//
// into dst (row-major, len q·2p) for a real q×n matrix V supplied
// TRANSPOSED as vt (n×q row-major, so each state reads one contiguous
// q-row). The per-column resolvent solves are block-local, so the panel
// costs O(n·q). Returns mat.ErrSingular when τ hits a squared pole.
func (m *Model) VResolventA2BPair(dst []complex128, vt []float64, q int, tau complex128) error {
	pk := m.packKernels()
	p := pk.p
	for i := range dst[:q*2*p] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		d := complex(s*s, 0) - tau
		if d == 0 {
			return mat.ErrSingular
		}
		b1 := pk.b11[i]
		// Solves for the two right-hand sides A·B = σ·b1 and B = b1.
		gb := complex(b1, 0) / d
		ga := scmul(s, gb)
		k := int(pk.col1[i])
		ar, ai := real(ga), imag(ga)
		br, bi := real(gb), imag(gb)
		row := vt[int(off)*q : (int(off)+1)*q]
		for r, vv := range row {
			dst[r*2*p+k] += complex(vv*ar, vv*ai)
			dst[r*2*p+p+k] += complex(vv*br, vv*bi)
		}
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		w2 := 2 * sg * w
		d := complex(sg*sg-w*w, 0) - tau
		det := d*d + complex(w2*w2, 0)
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		b1, b2 := pk.b21[i], pk.b22[i]
		ab1, ab2 := sg*b1+w*b2, -w*b1+sg*b2
		// Solve [[σ'−τ, ω'], [−ω', σ'−τ]]·x = rhs for rhs ∈ {A·B, B}.
		ga0 := (scmul(ab1, d) - complex(w2*ab2, 0)) * idet
		ga1 := (scmul(ab2, d) + complex(w2*ab1, 0)) * idet
		gb0 := (scmul(b1, d) - complex(w2*b2, 0)) * idet
		gb1 := (scmul(b2, d) + complex(w2*b1, 0)) * idet
		k := int(pk.col2[i])
		a0r, a0i := real(ga0), imag(ga0)
		a1r, a1i := real(ga1), imag(ga1)
		b0r, b0i := real(gb0), imag(gb0)
		b1r, b1i := real(gb1), imag(gb1)
		row0 := vt[int(off)*q : (int(off)+1)*q]
		row1 := vt[(int(off)+1)*q : (int(off)+2)*q]
		for r := 0; r < q; r++ {
			v0, v1 := row0[r], row1[r]
			dst[r*2*p+k] += complex(v0*a0r+v1*a1r, v0*a0i+v1*a1i)
			dst[r*2*p+p+k] += complex(v0*b0r+v1*b1r, v0*b0i+v1*b1i)
		}
	}
	return nil
}

// VResolventA2BPairMulti computes the VResolventA2BPair panel for every
// shift in taus in one pass over the packed kernels: panel s lands in
// dst[s·q·2p : (s+1)·q·2p]. Error semantics match CResolventBMulti, and
// each panel is bit-identical to the corresponding single-shift call (same
// expression sequence, same block accumulation order).
func (m *Model) VResolventA2BPairMulti(dst []complex128, vt []float64, q int, taus []complex128, errs []error) {
	pk := m.packKernels()
	p := pk.p
	sz := q * 2 * p
	if len(dst) < len(taus)*sz || len(errs) != len(taus) {
		panic("statespace: VResolventA2BPairMulti buffer sizes")
	}
	for i := range dst[:len(taus)*sz] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		s := pk.sig1[i]
		b1 := pk.b11[i]
		k := int(pk.col1[i])
		row := vt[int(off)*q : (int(off)+1)*q]
		for si, tau := range taus {
			if errs[si] != nil {
				continue
			}
			d := complex(s*s, 0) - tau
			if d == 0 {
				errs[si] = mat.ErrSingular
				continue
			}
			gb := complex(b1, 0) / d
			ga := scmul(s, gb)
			ar, ai := real(ga), imag(ga)
			br, bi := real(gb), imag(gb)
			out := dst[si*sz : (si+1)*sz]
			for r, vv := range row {
				out[r*2*p+k] += complex(vv*ar, vv*ai)
				out[r*2*p+p+k] += complex(vv*br, vv*bi)
			}
		}
	}
	for i, off := range pk.off2 {
		sg, w := pk.sig2[i], pk.om2[i]
		w2 := 2 * sg * w
		sp := sg*sg - w*w
		b1, b2 := pk.b21[i], pk.b22[i]
		ab1, ab2 := sg*b1+w*b2, -w*b1+sg*b2
		k := int(pk.col2[i])
		row0 := vt[int(off)*q : (int(off)+1)*q]
		row1 := vt[(int(off)+1)*q : (int(off)+2)*q]
		for si, tau := range taus {
			if errs[si] != nil {
				continue
			}
			d := complex(sp, 0) - tau
			det := d*d + complex(w2*w2, 0)
			if det == 0 {
				errs[si] = mat.ErrSingular
				continue
			}
			idet := 1 / det
			ga0 := (scmul(ab1, d) - complex(w2*ab2, 0)) * idet
			ga1 := (scmul(ab2, d) + complex(w2*ab1, 0)) * idet
			gb0 := (scmul(b1, d) - complex(w2*b2, 0)) * idet
			gb1 := (scmul(b2, d) + complex(w2*b1, 0)) * idet
			a0r, a0i := real(ga0), imag(ga0)
			a1r, a1i := real(ga1), imag(ga1)
			b0r, b0i := real(gb0), imag(gb0)
			b1r, b1i := real(gb1), imag(gb1)
			out := dst[si*sz : (si+1)*sz]
			for r := 0; r < q; r++ {
				v0, v1 := row0[r], row1[r]
				out[r*2*p+k] += complex(v0*a0r+v1*a1r, v0*a0i+v1*a1i)
				out[r*2*p+p+k] += complex(v0*b0r+v1*b1r, v0*b0i+v1*b1i)
			}
		}
	}
}
