package statespace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mat"
)

// GenOptions controls synthetic macromodel generation.
type GenOptions struct {
	// Ports is the port count p.
	Ports int
	// Order is the total dynamic order n (split evenly across columns).
	Order int
	// RealPoleFraction in [0,1] is the fraction of states realized by real
	// poles (the rest come in complex pairs). Default 0.2.
	RealPoleFraction float64
	// BandMin, BandMax bound the pole imaginary parts (rad/s). Defaults
	// 1e8 … 1e10 (typical packaging macromodel band).
	BandMin, BandMax float64
	// QFactor scales pole damping: Sigma ≈ −Omega/QFactor. Default 20.
	QFactor float64
	// TargetPeak is the desired max singular value of H(jω) over the band.
	// Values > 1 produce non-passive models, < 1 passive ones. Default 1.05.
	TargetPeak float64
	// EnvelopeJitter controls how uneven the per-resonance peak heights
	// are, as the log-standard-deviation of a lognormal factor. Small
	// values flatten the σ_max envelope so that many resonances sit close
	// to the calibrated peak, yielding violation-rich models like the
	// paper's industrial cases (Nλ up to ~125). Zero keeps the legacy
	// behaviour (Gaussian residues, envelope variation ~3–5×, few
	// crossings).
	EnvelopeJitter float64
	// DNorm is the norm of the direct coupling D (must stay < 1 for the
	// scattering Hamiltonian test to apply). Default 0.1.
	DNorm float64
	// GridPoints used when calibrating the peak. Default 400.
	GridPoints int
	// Reciprocal builds a model that is exactly reciprocal (H = Hᵀ at the
	// bit level): one shared pole/weight list across all columns, symmetric
	// per-block residue matrices, and a symmetric D. The total order is
	// rounded to Ports times the per-column order. Such models take the
	// half-size Hamiltonian path automatically.
	Reciprocal bool
	// PortsPerColumn, when positive, restricts each column's residues to
	// the ports within circular distance < PortsPerColumn of the column
	// index, yielding a banded (sparse) C with ~(2·PortsPerColumn−1)
	// non-zero ports per column — the structure the sparse backend targets.
	// The mask is symmetric in (port, column), so it composes with
	// Reciprocal. 0 (default) keeps C fully dense.
	PortsPerColumn int
}

func (o *GenOptions) setDefaults() {
	if o.RealPoleFraction == 0 {
		o.RealPoleFraction = 0.2
	}
	if o.BandMin == 0 {
		o.BandMin = 1e8
	}
	if o.BandMax == 0 {
		o.BandMax = 1e10
	}
	if o.QFactor == 0 {
		o.QFactor = 20
	}
	if o.TargetPeak == 0 {
		o.TargetPeak = 1.05
	}
	if o.DNorm == 0 {
		o.DNorm = 0.1
	}
	if o.GridPoints == 0 {
		o.GridPoints = 400
	}
}

// Generate builds a synthetic stable SIMO macromodel with the requested
// order, port count, and calibrated peak singular value. The same seed
// always yields the same model.
func Generate(seed int64, opts GenOptions) (*Model, error) {
	opts.setDefaults()
	if opts.Ports <= 0 || opts.Order <= 0 {
		return nil, errors.New("statespace: Ports and Order must be positive")
	}
	if opts.Ports > opts.Order {
		return nil, fmt.Errorf("statespace: order %d < ports %d", opts.Order, opts.Ports)
	}
	rng := rand.New(rand.NewSource(seed))
	p := opts.Ports
	m := &Model{P: p, D: randomContraction(rng, p, opts.DNorm)}
	m.Cols = make([]Column, p)

	if opts.Reciprocal {
		// Symmetrize D (a symmetric contraction of the same norm).
		m.D = symmetrize(m.D, opts.DNorm)
		buildReciprocalColumns(rng, m, opts)
	} else {
		// Split the order across columns as evenly as possible.
		base := opts.Order / p
		extra := opts.Order % p
		for k := 0; k < p; k++ {
			mk := base
			if k < extra {
				mk++
			}
			m.Cols[k] = buildColumn(rng, k, p, mk, opts)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := calibratePeak(m, opts); err != nil {
		return nil, err
	}
	return m, nil
}

// symmetrize returns (d + dᵀ)/2 rescaled back to spectral norm `norm`.
func symmetrize(d *mat.Dense, norm float64) *mat.Dense {
	p := d.Rows
	s := mat.NewDense(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j <= i; j++ {
			v := 0.5 * (d.At(i, j) + d.At(j, i))
			s.Set(i, j, v)
			s.Set(j, i, v)
		}
	}
	n2, err := mat.Norm2Mat(s)
	if err != nil || n2 == 0 {
		return s
	}
	return s.Scale(norm / n2)
}

// residueMaskAllows reports whether port i may carry residues of column k
// under the PortsPerColumn banded mask. The circular-distance rule is
// symmetric in (i, k), so masked models can still be exactly reciprocal.
func residueMaskAllows(i, k, p, ppc int) bool {
	if ppc <= 0 || ppc >= p {
		return true
	}
	d := i - k
	if d < 0 {
		d = -d
	}
	if p-d < d {
		d = p - d
	}
	return d < ppc
}

// buildReciprocalColumns fills all p columns with one shared block list of
// per-column order Order/p (rounded to fit the real/complex split) and
// symmetric B-weighted residues: for every block state the residue matrix
// Γ with Γ[i,k] = C_k[i, state] is drawn symmetric, which together with
// the shared input weights makes H(s) = H(s)ᵀ exactly (see reciprocal.go).
// Envelope jitter is applied per block with one shared factor, so the
// normalization preserves symmetry bit for bit.
func buildReciprocalColumns(rng *rand.Rand, m *Model, opts GenOptions) {
	p := opts.Ports
	ref := buildColumn(rng, 0, p, opts.Order/p, opts)
	mOrd := ref.Order()
	for k := 0; k < p; k++ {
		m.Cols[k].Blocks = append([]Block(nil), ref.Blocks...)
		m.Cols[k].C = mat.NewDense(p, mOrd)
	}
	off := 0
	for _, b := range ref.Blocks {
		scale := math.Abs(b.Sigma)
		// Symmetric residue draw per block state, honoring the banded mask.
		for s := 0; s < b.Size; s++ {
			for i := 0; i < p; i++ {
				for k := 0; k <= i; k++ {
					if !residueMaskAllows(i, k, p, opts.PortsPerColumn) {
						continue
					}
					v := rng.NormFloat64() * scale
					m.Cols[k].C.Set(i, off+s, v)
					m.Cols[i].C.Set(k, off+s, v)
				}
			}
		}
		if opts.EnvelopeJitter > 0 {
			// One normalization factor per block, shared by every column.
			var ss float64
			for k := 0; k < p; k++ {
				for i := 0; i < p; i++ {
					for s := 0; s < b.Size; s++ {
						v := m.Cols[k].C.At(i, off+s)
						ss += v * v
					}
				}
			}
			nrm := math.Sqrt(ss)
			if nrm > 0 {
				w := scale * math.Sqrt(float64(p)) * math.Exp(opts.EnvelopeJitter*rng.NormFloat64()) / nrm
				for k := 0; k < p; k++ {
					for i := 0; i < p; i++ {
						for s := 0; s < b.Size; s++ {
							m.Cols[k].C.Set(i, off+s, m.Cols[k].C.At(i, off+s)*w)
						}
					}
				}
			}
		}
		off += b.Size
	}
}

// buildColumn creates the SIMO column k of order mk with random stable
// poles and residues scaled so each pole's contribution to H stays O(1).
// Under a PortsPerColumn mask, residues outside the column's port band are
// left structurally zero.
func buildColumn(rng *rand.Rand, k, p, mk int, opts GenOptions) Column {
	var blocks []Block
	remaining := mk
	nReal := int(math.Round(opts.RealPoleFraction * float64(mk)))
	if (remaining-nReal)%2 != 0 {
		nReal++ // keep an even number of states for complex pairs
	}
	if nReal > remaining {
		nReal = remaining
	}
	logMin, logMax := math.Log(opts.BandMin), math.Log(opts.BandMax)
	for i := 0; i < nReal; i++ {
		w := math.Exp(logMin + rng.Float64()*(logMax-logMin))
		blocks = append(blocks, Block{Size: 1, Sigma: -w, B1: 1})
	}
	remaining -= nReal
	for remaining > 0 {
		w := math.Exp(logMin + rng.Float64()*(logMax-logMin))
		q := opts.QFactor * (0.5 + rng.Float64())
		blocks = append(blocks, Block{Size: 2, Sigma: -w / q, Omega: w, B1: 2, B2: 0})
		remaining -= 2
	}
	col := Column{Blocks: blocks}
	mOrd := col.Order()
	c := mat.NewDense(p, mOrd)
	// Residue magnitudes scale with |Sigma| so that r/(jω−p) peaks O(1):
	// for a real pole the peak of |r/(jω−p)| is |r|/|Sigma|; for a complex
	// pair the resonant peak is ≈ |r|/|Sigma| as well.
	off := 0
	for _, b := range blocks {
		scale := math.Abs(b.Sigma)
		for i := 0; i < p; i++ {
			if !residueMaskAllows(i, k, p, opts.PortsPerColumn) {
				continue
			}
			c.Set(i, off, rng.NormFloat64()*scale)
			if b.Size == 2 {
				c.Set(i, off+1, rng.NormFloat64()*scale)
			}
		}
		if opts.EnvelopeJitter > 0 {
			// Flat envelope: normalize the block's residue matrix to a
			// common per-resonance weight with lognormal jitter, so many
			// resonances end up near the calibrated peak.
			var ss float64
			for i := 0; i < p; i++ {
				for s := 0; s < b.Size; s++ {
					v := c.At(i, off+s)
					ss += v * v
				}
			}
			nrm := math.Sqrt(ss)
			if nrm > 0 {
				w := scale * math.Exp(opts.EnvelopeJitter*rng.NormFloat64()) / nrm
				for i := 0; i < p; i++ {
					for s := 0; s < b.Size; s++ {
						c.Set(i, off+s, c.At(i, off+s)*w)
					}
				}
			}
		}
		off += b.Size
	}
	col.C = c
	return col
}

// randomContraction returns a p×p matrix with spectral norm exactly norm.
func randomContraction(rng *rand.Rand, p int, norm float64) *mat.Dense {
	d := mat.NewDense(p, p)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	s, err := mat.Norm2Mat(d)
	if err != nil || s == 0 {
		return mat.NewDense(p, p)
	}
	return d.Scale(norm / s)
}

// calibratePeak rescales all residue matrices by a common factor γ so that
// the max singular value of H(jω) = D + γ·H_dyn(jω) over a resonance-aware
// grid matches TargetPeak. To keep large cases tractable, each grid point's
// dynamic-part norm σ_dyn is measured once; during the bisection on γ only
// points whose upper bound σ(D) + γ·σ_dyn can still beat the running peak
// are actually evaluated (typically a handful).
func calibratePeak(m *Model, opts GenOptions) error {
	grid := SweepGrid(m, opts.BandMin/3, opts.BandMax*3, opts.GridPoints)
	d := m.D.ToComplex()
	dNorm, err := mat.Norm2Mat(m.D)
	if err != nil {
		return err
	}
	if opts.TargetPeak <= dNorm {
		return fmt.Errorf("statespace: target peak %g below D norm %g", opts.TargetPeak, dNorm)
	}
	type pt struct {
		w    float64
		sdyn float64
	}
	pts := make([]pt, len(grid))
	var sdynMax float64
	for i, w := range grid {
		dyn := m.EvalJW(w).Sub(d)
		s := sigmaMaxEst(dyn)
		pts[i] = pt{w: w, sdyn: s}
		if s > sdynMax {
			sdynMax = s
		}
	}
	if sdynMax == 0 {
		return errors.New("statespace: degenerate model with zero response")
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].sdyn > pts[j].sdyn })
	peak := func(scale float64) float64 {
		best := 0.0
		g := complex(scale, 0)
		for _, p := range pts {
			if dNorm+scale*p.sdyn <= best {
				break // sorted: no later point can beat the running peak
			}
			dyn := m.EvalJW(p.w).Sub(d)
			if s := sigmaMaxEst(d.Add(dyn.Scale(g))); s > best {
				best = s
			}
		}
		return best
	}
	lo, hi := 0.0, 1.0
	for peak(hi) < opts.TargetPeak {
		hi *= 2
		if hi > 1e12 {
			return errors.New("statespace: peak calibration diverged")
		}
	}
	for iter := 0; iter < 40 && (hi-lo) > 1e-10*hi; iter++ {
		mid := 0.5 * (lo + hi)
		if peak(mid) < opts.TargetPeak {
			lo = mid
		} else {
			hi = mid
		}
	}
	scale := 0.5 * (lo + hi)
	for k := range m.Cols {
		m.Cols[k].C = m.Cols[k].C.Scale(scale)
	}
	return nil
}

// sigmaMaxEst estimates σ_max(h) by power iteration on hᴴh with a
// deterministic start vector. Accurate to ~1e-6 relative for the
// well-separated spectra produced by the generator; calibration only needs
// a monotone, reproducible estimate.
func sigmaMaxEst(h *mat.CDense) float64 {
	n := h.Cols
	if n == 0 {
		return 0
	}
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(1+float64(i%7)/7, float64(i%3)/3)
	}
	if nrm := mat.CNorm2(v); nrm > 0 {
		mat.CScaleVec(complex(1/nrm, 0), v)
	}
	hh := h.H()
	var sigma float64
	for iter := 0; iter < 50; iter++ {
		w := hh.MulVec(h.MulVec(v))
		nrm := mat.CNorm2(w)
		if nrm == 0 {
			return 0
		}
		mat.CScaleVec(complex(1/nrm, 0), w)
		next := math.Sqrt(nrm)
		if iter > 4 && math.Abs(next-sigma) <= 1e-9*next {
			return next
		}
		sigma = next
		v = w
	}
	return sigma
}

// LogGrid returns n log-spaced points in [lo, hi].
func LogGrid(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + float64(i)/float64(n-1)*(lhi-llo))
	}
	return out
}

// sweepAugmentCap bounds how many 2×2 blocks contribute resonance points
// to SweepGrid. Every Table-I case sits well under it; at n ≳ 10⁴ the
// uncapped augmentation would add tens of thousands of σ-evaluation
// points and dominate generation time, so blocks beyond the cap are
// stride-sampled deterministically instead.
const sweepAugmentCap = 4096

// SweepGrid returns a log grid over [lo, hi] augmented with the resonance
// frequency of every pole of m and its half-bandwidth neighbours, so that
// narrow high-Q peaks are never missed by a sweep. Above sweepAugmentCap
// 2×2 blocks the augmentation stride-samples the block list (deterministic
// in the model alone).
func SweepGrid(m *Model, lo, hi float64, n int) []float64 {
	grid := LogGrid(lo, hi, n)
	n2 := 0
	for k := range m.Cols {
		for _, b := range m.Cols[k].Blocks {
			if b.Size == 2 {
				n2++
			}
		}
	}
	stride := 1
	if n2 > sweepAugmentCap {
		stride = (n2 + sweepAugmentCap - 1) / sweepAugmentCap
	}
	idx := 0
	for k := range m.Cols {
		for _, b := range m.Cols[k].Blocks {
			if b.Size != 2 {
				continue
			}
			take := idx%stride == 0
			idx++
			if !take {
				continue
			}
			hw := math.Abs(b.Sigma)
			for _, w := range []float64{b.Omega - hw, b.Omega - hw/2, b.Omega, b.Omega + hw/2, b.Omega + hw} {
				if w > 0 {
					grid = append(grid, w)
				}
			}
		}
	}
	sort.Float64s(grid)
	return grid
}

// PeakSigma returns the max σ_max(H(jω)) over the grid.
func PeakSigma(m *Model, grid []float64) (float64, error) {
	var peak float64
	for _, w := range grid {
		s, err := m.MaxSigma(w)
		if err != nil {
			return 0, err
		}
		if s > peak {
			peak = s
		}
	}
	return peak, nil
}
