package statespace

import "math"

// Reciprocity detection. A macromodel is reciprocal when its transfer
// matrix is symmetric, H(s) = H(s)ᵀ for all s. In the multiple-SIMO
// realization the entry H[i,k] is
//
//	D[i,k] + Σ_b [ u_b(i,k)·(s−σ_b) + ω_b·v_b(i,k) ] / ((s−σ_b)² + ω_b²)
//
// summed over column k's blocks, with the B-weighted residue pair
//
//	u_b(i,k) = c₁·b₁ + c₂·b₂,  v_b(i,k) = c₁·b₂ − c₂·b₁
//
// (c₁,c₂ the i-th output row at the block's states, b₁,b₂ the block input
// weights; a 1×1 block contributes u = c₁·b₁ only). Matching partial
// fractions termwise, H is symmetric iff D is symmetric, every column
// realizes the same pole list, and for each shared pole the u and v
// matrices are symmetric in (i,k). The B weights themselves need not
// match across columns — they fold into u/v.
//
// Detection is structural and conservative: columns must list their
// blocks in the same order (no pole-matching search is attempted), so a
// reciprocal system realized with permuted block lists reports false.
// That is the right trade for a dispatcher gate — false negatives cost
// only the fast path, false positives would corrupt results.

// Reciprocal reports whether the model is reciprocal (symmetric H).
// With tol ≤ 0 every comparison is exact at the bit level — the mode for
// models built symmetric by construction. With tol > 0 pole mismatches
// are accepted up to tol·max|pole| and residue/D asymmetries up to
// tol·(block or matrix scale), gating models that are reciprocal up to
// round-off (e.g. after a fit). Detection runs on the as-constructed
// model; callers applying state scalings should detect first (any
// per-block diagonal scaling preserves reciprocity in exact arithmetic,
// but not bit-level symmetry of the scaled residues).
func (m *Model) Reciprocal(tol float64) bool {
	p := m.P
	if p != len(m.Cols) || m.D == nil {
		return false
	}
	// D symmetry.
	dScale := 0.0
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if a := math.Abs(m.D.At(i, j)); a > dScale {
				dScale = a
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			diff := m.D.At(i, j) - m.D.At(j, i)
			if tol <= 0 {
				if diff != 0 {
					return false
				}
			} else if math.Abs(diff) > tol*dScale {
				return false
			}
		}
	}
	// Common pole list: same block count, per-index Size/Sigma/Omega.
	nb := len(m.Cols[0].Blocks)
	for k := 1; k < p; k++ {
		if len(m.Cols[k].Blocks) != nb {
			return false
		}
	}
	poleScale := m.MaxPoleMagnitude()
	for b := 0; b < nb; b++ {
		ref := m.Cols[0].Blocks[b]
		for k := 1; k < p; k++ {
			blk := m.Cols[k].Blocks[b]
			if blk.Size != ref.Size {
				return false
			}
			if tol <= 0 {
				if blk.Sigma != ref.Sigma || blk.Omega != ref.Omega {
					return false
				}
			} else if math.Abs(blk.Sigma-ref.Sigma) > tol*poleScale ||
				math.Abs(blk.Omega-ref.Omega) > tol*poleScale {
				return false
			}
		}
	}
	// Per-pole B-weighted residue symmetry.
	u := make([]float64, p*p)
	v := make([]float64, p*p)
	offs := make([]int, p) // running state offset within each column
	for b := 0; b < nb; b++ {
		size := m.Cols[0].Blocks[b].Size
		scale := 0.0
		for k := 0; k < p; k++ {
			col := &m.Cols[k]
			blk := col.Blocks[b]
			off := offs[k]
			for i := 0; i < p; i++ {
				var ub, vb float64
				if size == 1 {
					ub = col.C.At(i, off) * blk.B1
				} else {
					c1, c2 := col.C.At(i, off), col.C.At(i, off+1)
					ub = c1*blk.B1 + c2*blk.B2
					vb = c1*blk.B2 - c2*blk.B1
				}
				u[i*p+k], v[i*p+k] = ub, vb
				if a := math.Abs(ub); a > scale {
					scale = a
				}
				if a := math.Abs(vb); a > scale {
					scale = a
				}
			}
			offs[k] += size
		}
		for i := 0; i < p; i++ {
			for k := i + 1; k < p; k++ {
				du := u[i*p+k] - u[k*p+i]
				dv := v[i*p+k] - v[k*p+i]
				if tol <= 0 {
					if du != 0 || dv != 0 {
						return false
					}
				} else if math.Abs(du) > tol*scale || math.Abs(dv) > tol*scale {
					return false
				}
			}
		}
	}
	return true
}
