// Package statespace implements the structured state-space macromodels of
// Grivet-Talocia & Ubolli (IEEE Trans. Adv. Packaging 2006) used by the
// DATE'11 parallel Hamiltonian eigensolver paper (Sec. II, Eqs. 1–2):
//
//	H(s) = D + C (sI − A)⁻¹ B
//
// with the multiple-SIMO realization
//
//	A = blkdiag{A_k}, B = blkdiag{u_k}, C = [C_1 … C_p]
//
// where A_k is real block-diagonal (1×1 blocks for real poles, 2×2 blocks
// for complex pole pairs), u_k carries the block input weights, and
// C_k ∈ R^{p×m_k} stores the residues of the k-th column of H(s). A has at
// most 2n non-zero entries and B has n, which enables O(n) shifted solves.
//
// Invariants: Block/Column are the construction representation; the flat
// packed kernel cache (packed.go) is the execution representation, built
// lazily and bit-equivalent to the dense reference (equivalence-tested to
// 1e-12). A Model whose blocks or residues are mutated in place MUST call
// InvalidateKernels before the next kernel call, or the stale cache will
// be used.
//
// Concurrency: a Model is safe for concurrent readers — the packed cache
// is published through an atomic pointer and a racing rebuild is harmless
// because the build is deterministic. Mutation (enforcement's residue
// perturbation) requires exclusive access; Clone/Balanced/FrequencyScaled
// return fresh models and need no invalidation.
package statespace

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/mat"
)

// Block is one real diagonal block of a column's A_k: either a 1×1 block
// holding a real pole, or a 2×2 block [[Sigma, Omega], [−Omega, Sigma]]
// realizing the complex pair Sigma ± j·Omega. The input entries are B1 (and
// B2 for 2×2 blocks).
type Block struct {
	Size   int // 1 or 2
	Sigma  float64
	Omega  float64 // 0 for real poles
	B1, B2 float64
}

// Poles returns the (one or two) complex poles realized by the block.
func (b Block) Poles() []complex128 {
	if b.Size == 1 {
		return []complex128{complex(b.Sigma, 0)}
	}
	return []complex128{complex(b.Sigma, b.Omega), complex(b.Sigma, -b.Omega)}
}

// Column is the SIMO realization of one column of H(s): the k-th column is
// D[:,k] + C·(sI − A_k)⁻¹·u_k.
type Column struct {
	Blocks []Block
	// C is the p×m residue matrix of this column, m = Order().
	C *mat.Dense
}

// Order returns the dynamic order m_k of the column.
func (c *Column) Order() int {
	m := 0
	for _, b := range c.Blocks {
		m += b.Size
	}
	return m
}

// Model is a structured state-space macromodel (Eqs. 1–2). The global state
// ordering is column-major: states of column 1's blocks first, then column
// 2's, and so on.
type Model struct {
	P    int        // number of ports
	D    *mat.Dense // p×p direct coupling
	Cols []Column   // one per port column, len == P

	// pack caches the flat kernel representation (see packed.go), built
	// lazily on first structured-operator call. In-place mutators must call
	// InvalidateKernels.
	pack atomic.Pointer[packed]
	// epoch counts InvalidateKernels calls. Factorization caches key their
	// entries on it so factored state derived from a superseded kernel
	// generation can never be served after an in-place mutation.
	epoch atomic.Uint64
	// backend holds the requested kernel Backend (see backend.go). Zero is
	// BackendAuto; SetBackend stores a new value and invalidates the packed
	// cache so the next kernel call re-resolves it.
	backend atomic.Int32
}

// KernelEpoch returns the model's kernel generation: it starts at zero and
// advances on every InvalidateKernels call. Any state derived from the
// packed kernels (e.g. a cached SMW shift factorization) is valid exactly
// as long as the epoch it was built under is still current.
func (m *Model) KernelEpoch() uint64 { return m.epoch.Load() }

// Order returns the total dynamic order n = Σ m_k.
func (m *Model) Order() int {
	n := 0
	for i := range m.Cols {
		n += m.Cols[i].Order()
	}
	return n
}

// Validate checks structural consistency and stability of the model.
func (m *Model) Validate() error {
	if m.P <= 0 {
		return errors.New("statespace: model has no ports")
	}
	if len(m.Cols) != m.P {
		return fmt.Errorf("statespace: %d columns for %d ports", len(m.Cols), m.P)
	}
	if m.D == nil || m.D.Rows != m.P || m.D.Cols != m.P {
		return errors.New("statespace: D has wrong shape")
	}
	for k := range m.Cols {
		col := &m.Cols[k]
		if col.C == nil || col.C.Rows != m.P || col.C.Cols != col.Order() {
			return fmt.Errorf("statespace: column %d residue matrix has wrong shape", k)
		}
		for _, b := range col.Blocks {
			if b.Size != 1 && b.Size != 2 {
				return fmt.Errorf("statespace: column %d has block of size %d", k, b.Size)
			}
			if b.Sigma >= 0 {
				return fmt.Errorf("statespace: column %d has unstable pole Re = %g", k, b.Sigma)
			}
			if b.Size == 1 && b.Omega != 0 {
				return fmt.Errorf("statespace: column %d: 1×1 block with Omega != 0", k)
			}
		}
	}
	return nil
}

// Poles returns all poles of the model (with multiplicity, column by column).
func (m *Model) Poles() []complex128 {
	var out []complex128
	for k := range m.Cols {
		for _, b := range m.Cols[k].Blocks {
			out = append(out, b.Poles()...)
		}
	}
	return out
}

// Eval computes the p×p transfer matrix H(s) at the complex frequency s.
// The cost is O(n·p) using the block structure.
func (m *Model) Eval(s complex128) *mat.CDense {
	h := m.D.ToComplex()
	x := make([]complex128, 0, 64)
	for k := range m.Cols {
		col := &m.Cols[k]
		mOrd := col.Order()
		if cap(x) < mOrd {
			x = make([]complex128, mOrd)
		}
		x = x[:mOrd]
		// x = (sI − A_k)⁻¹ u_k blockwise.
		off := 0
		for _, b := range col.Blocks {
			if b.Size == 1 {
				x[off] = complex(b.B1, 0) / (s - complex(b.Sigma, 0))
				off++
				continue
			}
			// Solve [[s−σ, −ω], [ω, s−σ]]·[x1;x2] = [b1;b2].
			d := (s - complex(b.Sigma, 0))
			det := d*d + complex(b.Omega*b.Omega, 0)
			x[off] = (d*complex(b.B1, 0) + complex(b.Omega*b.B2, 0)) / det
			x[off+1] = (d*complex(b.B2, 0) - complex(b.Omega*b.B1, 0)) / det
			off += 2
		}
		// H[:,k] += C_k·x.
		for i := 0; i < m.P; i++ {
			var acc complex128
			ri := col.C.Row(i)
			for j := 0; j < mOrd; j++ {
				acc += complex(ri[j], 0) * x[j]
			}
			h.Set(i, k, h.At(i, k)+acc)
		}
	}
	return h
}

// EvalJW computes H(jω).
func (m *Model) EvalJW(omega float64) *mat.CDense { return m.Eval(complex(0, omega)) }

// MaxSigma returns σ_max(H(jω)).
func (m *Model) MaxSigma(omega float64) (float64, error) {
	return mat.MaxSingularValue(m.EvalJW(omega))
}

// MinHermEig returns λ_min(H(jω) + H(jω)ᴴ), the immittance passivity
// margin: an admittance/impedance model is passive iff this stays ≥ 0 for
// all ω.
func (m *Model) MinHermEig(omega float64) (float64, error) {
	h := m.EvalJW(omega)
	g := h.Add(h.H())
	vals, err := mat.CEigValues(g)
	if err != nil {
		return 0, err
	}
	min := math.Inf(1)
	for _, v := range vals {
		// g is Hermitian: eigenvalues are real up to round-off.
		if real(v) < min {
			min = real(v)
		}
	}
	return min, nil
}

// DenseA assembles the full n×n A matrix (for tests and dense baselines).
func (m *Model) DenseA() *mat.Dense {
	n := m.Order()
	a := mat.NewDense(n, n)
	off := 0
	for k := range m.Cols {
		for _, b := range m.Cols[k].Blocks {
			if b.Size == 1 {
				a.Set(off, off, b.Sigma)
				off++
				continue
			}
			a.Set(off, off, b.Sigma)
			a.Set(off, off+1, b.Omega)
			a.Set(off+1, off, -b.Omega)
			a.Set(off+1, off+1, b.Sigma)
			off += 2
		}
	}
	return a
}

// DenseB assembles the full n×p B matrix.
func (m *Model) DenseB() *mat.Dense {
	n := m.Order()
	bm := mat.NewDense(n, m.P)
	off := 0
	for k := range m.Cols {
		for _, b := range m.Cols[k].Blocks {
			bm.Set(off, k, b.B1)
			if b.Size == 2 {
				bm.Set(off+1, k, b.B2)
			}
			off += b.Size
		}
	}
	return bm
}

// DenseC assembles the full p×n C matrix.
func (m *Model) DenseC() *mat.Dense {
	n := m.Order()
	cm := mat.NewDense(m.P, n)
	off := 0
	for k := range m.Cols {
		col := &m.Cols[k]
		mOrd := col.Order()
		for i := 0; i < m.P; i++ {
			for j := 0; j < mOrd; j++ {
				cm.Set(i, off+j, col.C.At(i, j))
			}
		}
		off += mOrd
	}
	return cm
}

// Clone returns a deep copy of the model (including its backend request).
func (m *Model) Clone() *Model {
	c := &Model{P: m.P, D: m.D.Clone(), Cols: make([]Column, len(m.Cols))}
	for k := range m.Cols {
		c.Cols[k].Blocks = append([]Block(nil), m.Cols[k].Blocks...)
		c.Cols[k].C = m.Cols[k].C.Clone()
	}
	c.backend.Store(m.backend.Load())
	return c
}

// ---- structured operator kernels (all O(n) or O(n·p)) ----

// ApplyA computes y = A·x on the real state vector x (len n).
func (m *Model) ApplyA(x []float64) []float64 {
	n := m.Order()
	if len(x) != n {
		panic(fmt.Sprintf("statespace: ApplyA length %d, want %d", len(x), n))
	}
	y := make([]float64, n)
	off := 0
	for k := range m.Cols {
		for _, b := range m.Cols[k].Blocks {
			if b.Size == 1 {
				y[off] = b.Sigma * x[off]
				off++
				continue
			}
			y[off] = b.Sigma*x[off] + b.Omega*x[off+1]
			y[off+1] = -b.Omega*x[off] + b.Sigma*x[off+1]
			off += 2
		}
	}
	return y
}

// MaxPoleMagnitude returns max |p_i| over the model poles; this bounds the
// spectral radius of A and seeds the ω_max estimate.
func (m *Model) MaxPoleMagnitude() float64 {
	var mx float64
	for k := range m.Cols {
		for _, b := range m.Cols[k].Blocks {
			mag := math.Hypot(b.Sigma, b.Omega)
			if mag > mx {
				mx = mag
			}
		}
	}
	return mx
}

// Balanced returns a diagonally state-scaled copy of the model in which
// every block's input weight and output-column norm are equalized:
// x' = T⁻¹x with T constant on each 1×1/2×2 block leaves A (and H(s))
// exactly invariant while B' = B/d and C' = C·d with d = √(‖b‖/‖c‖).
// Physical macromodels carry B ~ 1 and C ~ pole magnitude (1e9+), which
// makes the Hamiltonian so non-normal that projected eigenproblems lose
// all accuracy to cancellation; balancing removes that scale disparity.
func (m *Model) Balanced() *Model {
	c := m.Clone()
	for k := range c.Cols {
		col := &c.Cols[k]
		off := 0
		for bi := range col.Blocks {
			b := &col.Blocks[bi]
			bnorm := math.Hypot(b.B1, b.B2)
			var cs float64
			for i := 0; i < c.P; i++ {
				for s := 0; s < b.Size; s++ {
					v := col.C.At(i, off+s)
					cs += v * v
				}
			}
			cnorm := math.Sqrt(cs)
			if bnorm > 0 && cnorm > 0 {
				d := math.Sqrt(bnorm / cnorm)
				b.B1 /= d
				b.B2 /= d
				for i := 0; i < c.P; i++ {
					for s := 0; s < b.Size; s++ {
						col.C.Set(i, off+s, col.C.At(i, off+s)*d)
					}
				}
			}
			off += b.Size
		}
	}
	return c
}

// FrequencyScaled returns the model expressed in the dimensionless
// frequency s' = s/w0: {A/w0, B, C/w0, D}. The transfer function satisfies
// H'(s/w0) = H(s), so Hamiltonian eigenvalues scale as λ' = λ/w0. Working
// on a scaled model keeps dense eigensolvers well conditioned when the
// physical band sits at 1e8–1e10 rad/s.
func (m *Model) FrequencyScaled(w0 float64) *Model {
	if w0 <= 0 {
		panic(fmt.Sprintf("statespace: invalid frequency scale %g", w0))
	}
	c := m.Clone()
	for k := range c.Cols {
		col := &c.Cols[k]
		for i := range col.Blocks {
			col.Blocks[i].Sigma /= w0
			col.Blocks[i].Omega /= w0
		}
		col.C = col.C.Scale(1 / w0)
	}
	return c
}

// PoleResidueEval evaluates a pole-residue expansion directly (used to
// cross-check realizations): H_col(s) = Σ_i r_i/(s − p_i) summed over the
// column's poles, plus d.
func PoleResidueEval(s complex128, poles []complex128, residues []complex128, d complex128) complex128 {
	acc := d
	for i, p := range poles {
		acc += residues[i] / (s - p)
	}
	return acc
}
