package statespace

import "fmt"

// CaseSpec describes one of the twelve Table-I benchmark cases of the
// DATE'11 paper. The paper's models are proprietary industrial interconnect
// macromodels; we substitute synthetic models with the same dynamic order
// and port count, calibrated so that passive cases stay passive and
// non-passive cases exhibit unit-singular-value crossings (see DESIGN.md).
type CaseSpec struct {
	ID           int
	N            int     // dynamic order n
	P            int     // port count p
	PaperNlambda int     // number of imaginary Hamiltonian eigenvalues reported by the paper
	TargetPeak   float64 // calibrated max singular value of the synthetic model
	Seed         int64
	// Reciprocal generates the exactly-reciprocal (symmetric-H) variant of
	// the case, on which the half-size Hamiltonian path engages. The
	// generator rounds N to P times the per-column order.
	Reciprocal bool
	// SparsePorts, when positive, restricts each column's residues to the
	// ports within circular distance < SparsePorts of the column index
	// (GenOptions.PortsPerColumn), producing the banded sparse C the CSR
	// backend targets. 0 keeps C fully dense.
	SparsePorts int
}

// TableICases returns the twelve benchmark specifications of Table I.
// Cases 4 and 6 are passive (Nλ = 0) and are generated with peak < 1; the
// others are generated with peaks above 1 scaled loosely with the paper's
// violation count.
func TableICases() []CaseSpec {
	return []CaseSpec{
		{ID: 1, N: 1000, P: 20, PaperNlambda: 6, TargetPeak: 1.010, Seed: 1},
		{ID: 2, N: 1000, P: 20, PaperNlambda: 42, TargetPeak: 1.050, Seed: 2},
		{ID: 3, N: 1000, P: 20, PaperNlambda: 40, TargetPeak: 1.050, Seed: 3},
		{ID: 4, N: 1980, P: 18, PaperNlambda: 0, TargetPeak: 0.950, Seed: 4},
		{ID: 5, N: 2240, P: 56, PaperNlambda: 22, TargetPeak: 1.030, Seed: 5},
		{ID: 6, N: 1728, P: 18, PaperNlambda: 0, TargetPeak: 0.900, Seed: 6},
		{ID: 7, N: 1734, P: 83, PaperNlambda: 10, TargetPeak: 1.020, Seed: 7},
		{ID: 8, N: 1792, P: 56, PaperNlambda: 104, TargetPeak: 1.080, Seed: 8},
		{ID: 9, N: 1702, P: 56, PaperNlambda: 115, TargetPeak: 1.080, Seed: 9},
		{ID: 10, N: 4150, P: 83, PaperNlambda: 114, TargetPeak: 1.080, Seed: 10},
		{ID: 11, N: 1792, P: 56, PaperNlambda: 125, TargetPeak: 1.100, Seed: 11},
		{ID: 12, N: 2432, P: 83, PaperNlambda: 46, TargetPeak: 1.050, Seed: 12},
	}
}

// ReciprocalTableICases returns reciprocal (symmetric-H) variants of a
// representative subset of the Table-I cases: same order, port count, and
// calibrated peak, but generated with the shared-pole symmetric-residue
// structure of a reciprocal device. These are the inputs on which the
// half-size Hamiltonian path engages; cmd/fleetbench runs its half-path
// A/B on them. IDs are offset by 100 to keep model caches distinct.
func ReciprocalTableICases() []CaseSpec {
	var out []CaseSpec
	for _, c := range TableICases() {
		switch c.ID {
		case 1, 2, 5, 8:
			c.ID += 100
			c.Reciprocal = true
			out = append(out, c)
		}
	}
	return out
}

// BuildCase generates the synthetic macromodel for a Table-I case.
func BuildCase(spec CaseSpec) (*Model, error) {
	m, err := Generate(spec.Seed, GenOptions{
		Ports:          spec.P,
		Order:          spec.N,
		TargetPeak:     spec.TargetPeak,
		Reciprocal:     spec.Reciprocal,
		PortsPerColumn: spec.SparsePorts,
	})
	if err != nil {
		return nil, fmt.Errorf("statespace: case %d: %w", spec.ID, err)
	}
	return m, nil
}

// FindCase returns the spec with the given ID.
func FindCase(id int) (CaseSpec, error) {
	for _, c := range TableICases() {
		if c.ID == id {
			return c, nil
		}
	}
	return CaseSpec{}, fmt.Errorf("statespace: no Table-I case %d", id)
}
