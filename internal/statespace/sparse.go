package statespace

import "repro/internal/mat"

// Sparse (CSR) variants of the C-touching kernels. The A/B kernels are
// already O(n) regardless of backend; what distinguishes the backends is
// how the global p×n residue matrix C is stored and streamed. Under
// BackendSparse both orientations are compressed:
//
//   - crPtr/crIdx/crVal: C by rows (one row per port), used by CApplyC;
//   - ctPtr/ctIdx/ctVal: Cᵀ by rows (one row per state), used by CApplyCT
//     and by the SMW resolvent-panel kernels, whose per-block scatter reads
//     exactly one Cᵀ row per state.
//
// Entries within a row are stored in ascending column order, so every
// sparse accumulation visits the same terms in the same order as its dense
// counterpart minus the structural zeros. The dense loops add those zeros
// as +0.0 terms, which cannot change a finite float64 sum except for the
// sign of an exact zero — hence the cross-backend property tests pin
// agreement at 1e-12 rather than bit-identity, while within the sparse
// backend every kernel remains exactly deterministic.

// buildCSR populates the packed CSR arrays from the column residues in two
// passes (count, fill), leaving the dense c/ct storage nil.
func (m *Model) buildCSR(pk *packed) {
	n, p := pk.n, pk.p
	crPtr := make([]int32, p+1)
	ctPtr := make([]int32, n+1)
	off := 0
	for k := range m.Cols {
		col := &m.Cols[k]
		mOrd := col.Order()
		for i := 0; i < p; i++ {
			ri := col.C.Row(i)
			for j := 0; j < mOrd; j++ {
				if ri[j] != 0 {
					crPtr[i+1]++
					ctPtr[off+j+1]++
				}
			}
		}
		off += mOrd
	}
	for i := 0; i < p; i++ {
		crPtr[i+1] += crPtr[i]
	}
	for j := 0; j < n; j++ {
		ctPtr[j+1] += ctPtr[j]
	}
	nnz := int(crPtr[p])
	pk.crPtr, pk.ctPtr = crPtr, ctPtr
	pk.crIdx = make([]int32, nnz)
	pk.crVal = make([]float64, nnz)
	pk.ctIdx = make([]int32, nnz)
	pk.ctVal = make([]float64, nnz)
	crFill := append([]int32(nil), crPtr[:p]...)
	ctFill := append([]int32(nil), ctPtr[:n]...)
	off = 0
	for k := range m.Cols {
		col := &m.Cols[k]
		mOrd := col.Order()
		for i := 0; i < p; i++ {
			ri := col.C.Row(i)
			for j := 0; j < mOrd; j++ {
				v := ri[j]
				if v == 0 {
					continue
				}
				gj := off + j
				s := crFill[i]
				pk.crIdx[s], pk.crVal[s] = int32(gj), v
				crFill[i] = s + 1
				t := ctFill[gj]
				pk.ctIdx[t], pk.ctVal[t] = int32(i), v
				ctFill[gj] = t + 1
			}
		}
		off += mOrd
	}
}

// sparseApplyC computes y = C·x from the CSR rows of C.
func (pk *packed) sparseApplyC(y, x []complex128) {
	for i := 0; i < pk.p; i++ {
		var re, im float64
		for t := pk.crPtr[i]; t < pk.crPtr[i+1]; t++ {
			xj := x[pk.crIdx[t]]
			cv := pk.crVal[t]
			re += cv * real(xj)
			im += cv * imag(xj)
		}
		y[i] = complex(re, im)
	}
}

// sparseApplyCT computes y = Cᵀ·u from the CSR rows of Cᵀ.
func (pk *packed) sparseApplyCT(y, u []complex128) {
	for j := 0; j < pk.n; j++ {
		var re, im float64
		for t := pk.ctPtr[j]; t < pk.ctPtr[j+1]; t++ {
			ui := u[pk.ctIdx[t]]
			cv := pk.ctVal[t]
			re += cv * real(ui)
			im += cv * imag(ui)
		}
		y[j] = complex(re, im)
	}
}

// sparseResolventB is the CSR variant of CResolventB: the block-local
// solves are unchanged; the rank-m_k column update scatters through the
// non-zero Cᵀ entries of each block state, costing O(nnz) per panel.
func (pk *packed) sparseResolventB(dst []complex128, theta complex128) error {
	p := pk.p
	for i := range dst[:p*p] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		d := complex(pk.sig1[i], 0) - theta
		if d == 0 {
			return mat.ErrSingular
		}
		x0 := complex(pk.b11[i], 0) / d
		k := int(pk.col1[i])
		r0, i0 := real(x0), imag(x0)
		for t := pk.ctPtr[off]; t < pk.ctPtr[off+1]; t++ {
			cv := pk.ctVal[t]
			dst[int(pk.ctIdx[t])*p+k] += complex(cv*r0, cv*i0)
		}
	}
	for i, off := range pk.off2 {
		w := pk.om2[i]
		d := complex(pk.sig2[i], 0) - theta
		det := d*d + complex(w*w, 0)
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		b1, b2 := pk.b21[i], pk.b22[i]
		// [[σ−θ, ω], [−ω, σ−θ]]·x = b.
		x0 := (scmul(b1, d) - complex(w*b2, 0)) * idet
		x1 := (scmul(b2, d) + complex(w*b1, 0)) * idet
		k := int(pk.col2[i])
		r0, i0 := real(x0), imag(x0)
		r1, i1 := real(x1), imag(x1)
		for t := pk.ctPtr[off]; t < pk.ctPtr[off+1]; t++ {
			cv := pk.ctVal[t]
			dst[int(pk.ctIdx[t])*p+k] += complex(cv*r0, cv*i0)
		}
		for t := pk.ctPtr[off+1]; t < pk.ctPtr[off+2]; t++ {
			cv := pk.ctVal[t]
			dst[int(pk.ctIdx[t])*p+k] += complex(cv*r1, cv*i1)
		}
	}
	return nil
}

// sparseBTResolventCT is the CSR variant of BTResolventCT: row k of the
// output gathers the bilinear block forms over the non-zero Cᵀ entries.
func (pk *packed) sparseBTResolventCT(dst []complex128, theta complex128) error {
	p := pk.p
	for i := range dst[:p*p] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		d := complex(pk.sig1[i], 0) - theta
		if d == 0 {
			return mat.ErrSingular
		}
		id := complex(pk.b11[i], 0) / d
		out := dst[int(pk.col1[i])*p : (int(pk.col1[i])+1)*p]
		for t := pk.ctPtr[off]; t < pk.ctPtr[off+1]; t++ {
			out[pk.ctIdx[t]] += scmul(pk.ctVal[t], id)
		}
	}
	for i, off := range pk.off2 {
		w := pk.om2[i]
		d := complex(pk.sig2[i], 0) - theta
		det := d*d + complex(w*w, 0)
		if det == 0 {
			return mat.ErrSingular
		}
		idet := 1 / det
		b1, b2 := pk.b21[i], pk.b22[i]
		out := dst[int(pk.col2[i])*p : (int(pk.col2[i])+1)*p]
		dr, di := real(d), imag(d)
		// Split the dense bilinear form by Cᵀ row: the c0 (state off) and
		// c1 (state off+1) contributions accumulate separately over each
		// row's non-zeros.
		for t := pk.ctPtr[off]; t < pk.ctPtr[off+1]; t++ {
			c0 := pk.ctVal[t]
			u, v := b1*c0, -b2*c0
			out[pk.ctIdx[t]] += complex(dr*u+w*v, di*u) * idet
		}
		for t := pk.ctPtr[off+1]; t < pk.ctPtr[off+2]; t++ {
			c1 := pk.ctVal[t]
			u, v := b2*c1, b1*c1
			out[pk.ctIdx[t]] += complex(dr*u+w*v, di*u) * idet
		}
	}
	return nil
}

// sparseResolventBMulti is the CSR variant of CResolventBMulti: the shift
// loop is hoisted inside the block loop exactly as in the dense kernel, so
// each panel is bit-identical to the corresponding sparseResolventB call.
func (pk *packed) sparseResolventBMulti(dst []complex128, thetas []complex128, errs []error) {
	p := pk.p
	pp := p * p
	for i := range dst[:len(thetas)*pp] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		sig := pk.sig1[i]
		b1 := pk.b11[i]
		k := int(pk.col1[i])
		lo, hi := pk.ctPtr[off], pk.ctPtr[off+1]
		for s, theta := range thetas {
			if errs[s] != nil {
				continue
			}
			d := complex(sig, 0) - theta
			if d == 0 {
				errs[s] = mat.ErrSingular
				continue
			}
			x0 := complex(b1, 0) / d
			r0, i0 := real(x0), imag(x0)
			out := dst[s*pp : (s+1)*pp]
			for t := lo; t < hi; t++ {
				cv := pk.ctVal[t]
				out[int(pk.ctIdx[t])*p+k] += complex(cv*r0, cv*i0)
			}
		}
	}
	for i, off := range pk.off2 {
		sig, w := pk.sig2[i], pk.om2[i]
		b1, b2 := pk.b21[i], pk.b22[i]
		k := int(pk.col2[i])
		lo0, hi0 := pk.ctPtr[off], pk.ctPtr[off+1]
		lo1, hi1 := pk.ctPtr[off+1], pk.ctPtr[off+2]
		for s, theta := range thetas {
			if errs[s] != nil {
				continue
			}
			d := complex(sig, 0) - theta
			det := d*d + complex(w*w, 0)
			if det == 0 {
				errs[s] = mat.ErrSingular
				continue
			}
			idet := 1 / det
			x0 := (scmul(b1, d) - complex(w*b2, 0)) * idet
			x1 := (scmul(b2, d) + complex(w*b1, 0)) * idet
			r0, i0 := real(x0), imag(x0)
			r1, i1 := real(x1), imag(x1)
			out := dst[s*pp : (s+1)*pp]
			for t := lo0; t < hi0; t++ {
				cv := pk.ctVal[t]
				out[int(pk.ctIdx[t])*p+k] += complex(cv*r0, cv*i0)
			}
			for t := lo1; t < hi1; t++ {
				cv := pk.ctVal[t]
				out[int(pk.ctIdx[t])*p+k] += complex(cv*r1, cv*i1)
			}
		}
	}
}

// sparseBTResolventCTMulti is the CSR variant of BTResolventCTMulti;
// layout and error semantics match the dense kernel.
func (pk *packed) sparseBTResolventCTMulti(dst []complex128, thetas []complex128, errs []error) {
	p := pk.p
	pp := p * p
	for i := range dst[:len(thetas)*pp] {
		dst[i] = 0
	}
	for i, off := range pk.off1 {
		sig := pk.sig1[i]
		b1 := pk.b11[i]
		k := int(pk.col1[i])
		lo, hi := pk.ctPtr[off], pk.ctPtr[off+1]
		for s, theta := range thetas {
			if errs[s] != nil {
				continue
			}
			d := complex(sig, 0) - theta
			if d == 0 {
				errs[s] = mat.ErrSingular
				continue
			}
			id := complex(b1, 0) / d
			out := dst[s*pp+k*p : s*pp+(k+1)*p]
			for t := lo; t < hi; t++ {
				out[pk.ctIdx[t]] += scmul(pk.ctVal[t], id)
			}
		}
	}
	for i, off := range pk.off2 {
		sig, w := pk.sig2[i], pk.om2[i]
		b1, b2 := pk.b21[i], pk.b22[i]
		k := int(pk.col2[i])
		lo0, hi0 := pk.ctPtr[off], pk.ctPtr[off+1]
		lo1, hi1 := pk.ctPtr[off+1], pk.ctPtr[off+2]
		for s, theta := range thetas {
			if errs[s] != nil {
				continue
			}
			d := complex(sig, 0) - theta
			det := d*d + complex(w*w, 0)
			if det == 0 {
				errs[s] = mat.ErrSingular
				continue
			}
			idet := 1 / det
			out := dst[s*pp+k*p : s*pp+(k+1)*p]
			dr, di := real(d), imag(d)
			for t := lo0; t < hi0; t++ {
				c0 := pk.ctVal[t]
				u, v := b1*c0, -b2*c0
				out[pk.ctIdx[t]] += complex(dr*u+w*v, di*u) * idet
			}
			for t := lo1; t < hi1; t++ {
				c1 := pk.ctVal[t]
				u, v := b2*c1, b1*c1
				out[pk.ctIdx[t]] += complex(dr*u+w*v, di*u) * idet
			}
		}
	}
}
