package statespace

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// SaveModel serializes a model to a file with encoding/gob.
func SaveModel(path string, m *Model) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(m); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("statespace: encoding model: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadModel reads a model saved by SaveModel and validates it.
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Model
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("statespace: decoding model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("statespace: cached model invalid: %w", err)
	}
	return &m, nil
}

// CachedCase returns the Table-I case model, generating it on first use and
// caching it under dir (generation of the large cases costs seconds to
// minutes; the cache makes benchmark reruns cheap).
func CachedCase(spec CaseSpec, dir string) (*Model, error) {
	path := filepath.Join(dir, fmt.Sprintf("case%02d_n%d_p%d.gob", spec.ID, spec.N, spec.P))
	if m, err := LoadModel(path); err == nil {
		return m, nil
	}
	m, err := BuildCase(spec)
	if err != nil {
		return nil, err
	}
	if err := SaveModel(path, m); err != nil {
		return nil, err
	}
	return m, nil
}
