package statespace

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// randModel builds a random structured model with a mix of real poles and
// complex pairs, exercising every packed-kernel layout case (columns with
// only 1×1 blocks, only 2×2 blocks, and both).
func randModel(rng *rand.Rand, p int) *Model {
	m := &Model{P: p, D: mat.NewDense(p, p), Cols: make([]Column, p)}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			m.D.Set(i, j, 0.1*rng.NormFloat64())
		}
	}
	for k := 0; k < p; k++ {
		nb := 1 + rng.Intn(4)
		col := &m.Cols[k]
		for b := 0; b < nb; b++ {
			blk := Block{Sigma: -0.1 - 2*rng.Float64(), B1: rng.NormFloat64()}
			if rng.Intn(2) == 0 {
				blk.Size = 1
			} else {
				blk.Size = 2
				blk.Omega = 0.5 + 3*rng.Float64()
				blk.B2 = rng.NormFloat64()
			}
			col.Blocks = append(col.Blocks, blk)
		}
		mOrd := col.Order()
		col.C = mat.NewDense(p, mOrd)
		for i := 0; i < p; i++ {
			for j := 0; j < mOrd; j++ {
				col.C.Set(i, j, rng.NormFloat64())
			}
		}
	}
	return m
}

func maxAbsDiff(a, b []complex128) float64 {
	var mx float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func vecScale(a []complex128) float64 {
	s := 1.0
	for _, v := range a {
		if d := cmplx.Abs(v); d > s {
			s = d
		}
	}
	return s
}

// TestPackedKernelEquivalence property-checks every packed kernel against
// the dense DenseA/DenseB/DenseC reference realization on randomized
// models with mixed real/complex pole content, p = 1…8, to 1e-12.
func TestPackedKernelEquivalence(t *testing.T) {
	const tol = 1e-12
	rng := rand.New(rand.NewSource(99))
	for p := 1; p <= 8; p++ {
		for trial := 0; trial < 4; trial++ {
			t.Run(fmt.Sprintf("p%d/trial%d", p, trial), func(t *testing.T) {
				m := randModel(rng, p)
				if err := m.Validate(); err != nil {
					t.Fatal(err)
				}
				n := m.Order()
				a := m.DenseA().ToComplex()
				bD := m.DenseB().ToComplex()
				cD := m.DenseC().ToComplex()

				x := make([]complex128, n)
				for i := range x {
					x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				u := make([]complex128, p)
				for i := range u {
					u[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				theta := complex(0.3*rng.NormFloat64(), 1+rng.Float64())

				y := make([]complex128, n)
				m.CApplyA(y, x)
				if d := maxAbsDiff(y, a.MulVec(x)); d > tol*vecScale(x) {
					t.Fatalf("CApplyA mismatch %g", d)
				}
				m.CApplyAT(y, x)
				if d := maxAbsDiff(y, a.T().MulVec(x)); d > tol*vecScale(x) {
					t.Fatalf("CApplyAT mismatch %g", d)
				}
				m.CApplyB(y, u)
				if d := maxAbsDiff(y, bD.MulVec(u)); d > tol*vecScale(u) {
					t.Fatalf("CApplyB mismatch %g", d)
				}
				yp := make([]complex128, p)
				m.CApplyBT(yp, x)
				if d := maxAbsDiff(yp, bD.T().MulVec(x)); d > tol*vecScale(x) {
					t.Fatalf("CApplyBT mismatch %g", d)
				}
				m.CApplyC(yp, x)
				want := cD.MulVec(x)
				if d := maxAbsDiff(yp, want); d > tol*vecScale(want) {
					t.Fatalf("CApplyC mismatch %g", d)
				}
				m.CApplyCT(y, u)
				want = cD.T().MulVec(u)
				if d := maxAbsDiff(y, want); d > tol*vecScale(want) {
					t.Fatalf("CApplyCT mismatch %g", d)
				}

				// Shifted solves against a dense complex LU of (A − θI).
				shifted := a.Clone()
				for i := 0; i < n; i++ {
					shifted.Set(i, i, shifted.At(i, i)-theta)
				}
				f, err := mat.CLUFactor(shifted)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.CSolveShiftedA(y, x, theta); err != nil {
					t.Fatal(err)
				}
				want = f.Solve(x)
				if d := maxAbsDiff(y, want); d > tol*vecScale(want) {
					t.Fatalf("CSolveShiftedA mismatch %g", d)
				}
				shiftedT := a.T()
				for i := 0; i < n; i++ {
					shiftedT.Set(i, i, shiftedT.At(i, i)-theta)
				}
				ft, err := mat.CLUFactor(shiftedT)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.CSolveShiftedAT(y, x, theta); err != nil {
					t.Fatal(err)
				}
				want = ft.Solve(x)
				if d := maxAbsDiff(y, want); d > tol*vecScale(want) {
					t.Fatalf("CSolveShiftedAT mismatch %g", d)
				}

				// SMW panels: X1 = C·(A−θI)⁻¹·B and X2 = Bᵀ·(Aᵀ−θI)⁻¹·Cᵀ.
				x1 := make([]complex128, p*p)
				if err := m.CResolventB(x1, theta); err != nil {
					t.Fatal(err)
				}
				x1want := cD.Mul(f.SolveMat(bD))
				if d := maxAbsDiff(x1, x1want.Data); d > tol*vecScale(x1want.Data) {
					t.Fatalf("CResolventB mismatch %g", d)
				}
				x2 := make([]complex128, p*p)
				if err := m.BTResolventCT(x2, theta); err != nil {
					t.Fatal(err)
				}
				x2want := bD.T().Mul(ft.SolveMat(cD.T()))
				if d := maxAbsDiff(x2, x2want.Data); d > tol*vecScale(x2want.Data) {
					t.Fatalf("BTResolventCT mismatch %g", d)
				}
			})
		}
	}
}

// TestPackedCacheInvalidation verifies that mutating residues in place and
// calling InvalidateKernels picks up the new coefficients.
func TestPackedCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randModel(rng, 3)
	n := m.Order()
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := make([]complex128, m.P)
	m.CApplyC(y, x) // builds the cache
	m.Cols[0].C.Set(0, 0, m.Cols[0].C.At(0, 0)+1)
	m.InvalidateKernels()
	m.CApplyC(y, x)
	want := m.DenseC().ToComplex().MulVec(x)
	if d := maxAbsDiff(y, want); d > 1e-12*vecScale(want) {
		t.Fatalf("stale kernel cache after InvalidateKernels: %g", d)
	}
}
