package statespace

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// randSparsifiedModel builds a random model and zeroes a fraction of its
// residue entries, producing the port-local C patterns the sparse backend
// targets. density 1 keeps C fully dense.
func randSparsifiedModel(rng *rand.Rand, p int, density float64) *Model {
	m := randModel(rng, p)
	for k := range m.Cols {
		col := &m.Cols[k]
		mOrd := col.Order()
		for i := 0; i < p; i++ {
			for j := 0; j < mOrd; j++ {
				if rng.Float64() >= density {
					col.C.Set(i, j, 0)
				}
			}
		}
	}
	return m
}

// TestSparseKernelEquivalence property-checks every sparse C-touching
// kernel against the packed-dense backend on the same model, across
// p = 1…8 and random sparsity patterns, at 1e-12. The A/B kernels are
// backend-independent, so the C surface is the whole contract.
func TestSparseKernelEquivalence(t *testing.T) {
	const tol = 1e-12
	rng := rand.New(rand.NewSource(17))
	for p := 1; p <= 8; p++ {
		for _, density := range []float64{0.05, 0.3, 1.0} {
			t.Run(fmt.Sprintf("p%d/density%g", p, density), func(t *testing.T) {
				m := randSparsifiedModel(rng, p, density)
				sp := m.Clone()
				m.SetBackend(BackendPackedDense)
				sp.SetBackend(BackendSparse)
				if got := sp.ActiveBackend(); got != BackendSparse {
					t.Fatalf("forced sparse backend resolved to %v", got)
				}
				n := m.Order()
				x := make([]complex128, n)
				for i := range x {
					x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				u := make([]complex128, p)
				for i := range u {
					u[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				theta := complex(0.3*rng.NormFloat64(), 1+rng.Float64())

				yd := make([]complex128, p)
				ys := make([]complex128, p)
				m.CApplyC(yd, x)
				sp.CApplyC(ys, x)
				if d := maxAbsDiff(yd, ys); d > tol*vecScale(yd) {
					t.Fatalf("CApplyC backend mismatch %g", d)
				}
				zd := make([]complex128, n)
				zs := make([]complex128, n)
				m.CApplyCT(zd, u)
				sp.CApplyCT(zs, u)
				if d := maxAbsDiff(zd, zs); d > tol*vecScale(zd) {
					t.Fatalf("CApplyCT backend mismatch %g", d)
				}

				pd := make([]complex128, p*p)
				ps := make([]complex128, p*p)
				if err := m.CResolventB(pd, theta); err != nil {
					t.Fatal(err)
				}
				if err := sp.CResolventB(ps, theta); err != nil {
					t.Fatal(err)
				}
				if d := maxAbsDiff(pd, ps); d > tol*vecScale(pd) {
					t.Fatalf("CResolventB backend mismatch %g", d)
				}
				if err := m.BTResolventCT(pd, theta); err != nil {
					t.Fatal(err)
				}
				if err := sp.BTResolventCT(ps, theta); err != nil {
					t.Fatal(err)
				}
				if d := maxAbsDiff(pd, ps); d > tol*vecScale(pd) {
					t.Fatalf("BTResolventCT backend mismatch %g", d)
				}

				// Multi panels: cross-backend at 1e-12, and bit-identical
				// to the sparse single-shift calls.
				thetas := []complex128{theta, theta + 0.5i, complex(-0.2, 2.1)}
				nd := make([]complex128, len(thetas)*p*p)
				ns := make([]complex128, len(thetas)*p*p)
				errs := make([]error, len(thetas))
				m.CResolventBMulti(nd, thetas, errs)
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
				errs = make([]error, len(thetas))
				sp.CResolventBMulti(ns, thetas, errs)
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
				if d := maxAbsDiff(nd, ns); d > tol*vecScale(nd) {
					t.Fatalf("CResolventBMulti backend mismatch %g", d)
				}
				for s, th := range thetas {
					if err := sp.CResolventB(ps, th); err != nil {
						t.Fatal(err)
					}
					for i, v := range ps {
						if ns[s*p*p+i] != v {
							t.Fatalf("sparse CResolventBMulti shift %d not bit-identical to single-shift", s)
						}
					}
				}
				errs = make([]error, len(thetas))
				m.BTResolventCTMulti(nd, thetas, errs)
				errs = make([]error, len(thetas))
				sp.BTResolventCTMulti(ns, thetas, errs)
				if d := maxAbsDiff(nd, ns); d > tol*vecScale(nd) {
					t.Fatalf("BTResolventCTMulti backend mismatch %g", d)
				}
				for s, th := range thetas {
					if err := sp.BTResolventCT(ps, th); err != nil {
						t.Fatal(err)
					}
					for i, v := range ps {
						if ns[s*p*p+i] != v {
							t.Fatalf("sparse BTResolventCTMulti shift %d not bit-identical to single-shift", s)
						}
					}
				}
			})
		}
	}
}

// TestBackendDispatch pins the deterministic auto rule and the override
// semantics: small or dense models run packed-dense, large sparse models
// flip to CSR, and SetBackend both forces the choice and advances the
// kernel epoch so stale factors age out.
func TestBackendDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := randModel(rng, 4)
	if got := small.ActiveBackend(); got != BackendPackedDense {
		t.Fatalf("small model auto-resolved to %v, want packed-dense", got)
	}

	// A large model with banded (1-port-per-column) C clears both auto gates.
	big, err := Generate(11, GenOptions{Ports: 4, Order: sparseMinOrder, PortsPerColumn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.Order() < sparseMinOrder {
		t.Fatalf("generated order %d below sparse threshold", big.Order())
	}
	if 4*big.nnzC() > big.P*big.Order() {
		t.Fatalf("generated C not sparse enough: nnz=%d", big.nnzC())
	}
	if got := big.ActiveBackend(); got != BackendSparse {
		t.Fatalf("large sparse model auto-resolved to %v, want sparse", got)
	}
	if got := big.BackendSelection(); got != BackendAuto {
		t.Fatalf("selection reports %v, want auto", got)
	}

	epoch := big.KernelEpoch()
	big.SetBackend(BackendPackedDense)
	if big.KernelEpoch() == epoch {
		t.Fatal("SetBackend did not advance the kernel epoch")
	}
	if got := big.ActiveBackend(); got != BackendPackedDense {
		t.Fatalf("forced packed-dense resolved to %v", got)
	}
	epoch = big.KernelEpoch()
	big.SetBackend(BackendPackedDense) // no-op
	if big.KernelEpoch() != epoch {
		t.Fatal("redundant SetBackend advanced the kernel epoch")
	}

	clone := big.Clone()
	if got := clone.BackendSelection(); got != BackendPackedDense {
		t.Fatalf("Clone dropped the backend request: %v", got)
	}
}

// TestSquaredKernelEquivalence validates the half-size path's block-local
// kernels against dense references: A² applies/solves, the [A·B | B] pair
// apply, and the V·(A² − τI)⁻¹·[A·B | B] capacitance panels (single and
// multi-shift, with the multi panels bit-identical to single calls).
func TestSquaredKernelEquivalence(t *testing.T) {
	const tol = 1e-12
	rng := rand.New(rand.NewSource(23))
	for p := 1; p <= 6; p++ {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			m := randModel(rng, p)
			n := m.Order()
			a := m.DenseA().ToComplex()
			a2 := a.Mul(a)
			bD := m.DenseB().ToComplex()
			abD := a.Mul(bD)

			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			y := make([]complex128, n)
			m.CApplyA2(y, x)
			want := a2.MulVec(x)
			if d := maxAbsDiff(y, want); d > tol*vecScale(want) {
				t.Fatalf("CApplyA2 mismatch %g", d)
			}

			tau := complex(-1-rng.Float64(), 0.3*rng.NormFloat64())
			shifted := a2.Clone()
			for i := 0; i < n; i++ {
				shifted.Set(i, i, shifted.At(i, i)-tau)
			}
			f, err := mat.CLUFactor(shifted)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.CSolveShiftedA2(y, x, tau); err != nil {
				t.Fatal(err)
			}
			want = f.Solve(x)
			if d := maxAbsDiff(y, want); d > tol*vecScale(want) {
				t.Fatalf("CSolveShiftedA2 mismatch %g", d)
			}

			s1 := make([]complex128, p)
			s2 := make([]complex128, p)
			for i := 0; i < p; i++ {
				s1[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				s2[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			m.CApplyABPair(y, s1, s2)
			want = abD.MulVec(s1)
			wb := bD.MulVec(s2)
			for i := range want {
				want[i] += wb[i]
			}
			if d := maxAbsDiff(y, want); d > tol*vecScale(want) {
				t.Fatalf("CApplyABPair mismatch %g", d)
			}

			// Capacitance panel against dense V·(A²−τI)⁻¹·[A·B | B].
			q := 2 * p
			vt := make([]float64, n*q)
			vD := mat.NewDense(q, n)
			for r := 0; r < q; r++ {
				for j := 0; j < n; j++ {
					v := rng.NormFloat64()
					vD.Set(r, j, v)
					vt[j*q+r] = v
				}
			}
			dst := make([]complex128, q*2*p)
			if err := m.VResolventA2BPair(dst, vt, q, tau); err != nil {
				t.Fatal(err)
			}
			vC := vD.ToComplex()
			ga := vC.Mul(f.SolveMat(abD))
			gb := vC.Mul(f.SolveMat(bD))
			for r := 0; r < q; r++ {
				for k := 0; k < p; k++ {
					if d := cAbs(dst[r*2*p+k] - ga.At(r, k)); d > tol*vecScale(ga.Data) {
						t.Fatalf("VResolventA2BPair A·B col mismatch %g", d)
					}
					if d := cAbs(dst[r*2*p+p+k] - gb.At(r, k)); d > tol*vecScale(gb.Data) {
						t.Fatalf("VResolventA2BPair B col mismatch %g", d)
					}
				}
			}

			taus := []complex128{tau, tau - 0.7, complex(-3, 0.1)}
			multi := make([]complex128, len(taus)*q*2*p)
			errs := make([]error, len(taus))
			m.VResolventA2BPairMulti(multi, vt, q, taus, errs)
			for s, th := range taus {
				if errs[s] != nil {
					t.Fatal(errs[s])
				}
				if err := m.VResolventA2BPair(dst, vt, q, th); err != nil {
					t.Fatal(err)
				}
				for i, v := range dst {
					if multi[s*q*2*p+i] != v {
						t.Fatalf("VResolventA2BPairMulti shift %d not bit-identical", s)
					}
				}
			}
		})
	}
}

func cAbs(z complex128) float64 { return cmplx.Abs(z) }

// randReciprocalModel builds a model that is reciprocal by construction:
// one shared pole/weight list across columns and symmetric B-weighted
// residue matrices per block.
func randReciprocalModel(rng *rand.Rand, p, nb int) *Model {
	m := &Model{P: p, D: mat.NewDense(p, p), Cols: make([]Column, p)}
	for i := 0; i < p; i++ {
		for j := 0; j <= i; j++ {
			v := 0.1 * rng.NormFloat64()
			m.D.Set(i, j, v)
			m.D.Set(j, i, v)
		}
	}
	blocks := make([]Block, nb)
	for b := range blocks {
		blk := Block{Sigma: -0.1 - 2*rng.Float64(), B1: rng.NormFloat64()}
		if rng.Intn(2) == 0 {
			blk.Size = 1
		} else {
			blk.Size = 2
			blk.Omega = 0.5 + 3*rng.Float64()
			blk.B2 = rng.NormFloat64()
		}
		blocks[b] = blk
	}
	mOrd := 0
	for _, b := range blocks {
		mOrd += b.Size
	}
	for k := 0; k < p; k++ {
		m.Cols[k].Blocks = append([]Block(nil), blocks...)
		m.Cols[k].C = mat.NewDense(p, mOrd)
	}
	// Symmetric residue matrices Γ per block state, written into each
	// column's C so that C_k[i, off+s] = Γ_s[i, k].
	off := 0
	for _, b := range blocks {
		for s := 0; s < b.Size; s++ {
			for i := 0; i < p; i++ {
				for k := 0; k <= i; k++ {
					v := rng.NormFloat64()
					m.Cols[k].C.Set(i, off+s, v)
					m.Cols[i].C.Set(k, off+s, v)
				}
			}
		}
		off += b.Size
	}
	return m
}

// TestReciprocalDetection pins the detector: symmetric-by-construction
// models detect exactly, any single perturbed residue or D entry breaks
// exact detection, small perturbations pass only under a tolerance, and
// 1-port models are always reciprocal.
func TestReciprocalDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for p := 2; p <= 6; p++ {
		m := randReciprocalModel(rng, p, 3)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if !m.Reciprocal(0) {
			t.Fatalf("p=%d symmetric model not detected as reciprocal", p)
		}
		// Symmetry of H itself, as a semantic cross-check.
		h := m.Eval(complex(0.2, 1.3))
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if d := cAbs(h.At(i, j) - h.At(j, i)); d > 1e-12 {
					t.Fatalf("detected-reciprocal model has asymmetric H: %g", d)
				}
			}
		}

		pert := m.Clone()
		pert.Cols[0].C.Set(p-1, 0, pert.Cols[0].C.At(p-1, 0)+1e-6)
		if pert.Reciprocal(0) {
			t.Fatal("perturbed residue still detected as exactly reciprocal")
		}
		if !pert.Reciprocal(1e-3) {
			t.Fatal("small perturbation rejected under loose tolerance")
		}
		if pert.Reciprocal(1e-12) {
			t.Fatal("perturbation accepted under tight tolerance")
		}

		dpert := m.Clone()
		dpert.D.Set(0, p-1, dpert.D.At(0, p-1)+1e-6)
		if dpert.Reciprocal(0) {
			t.Fatal("asymmetric D still detected as reciprocal")
		}
	}

	one := randModel(rng, 1)
	if !one.Reciprocal(0) {
		t.Fatal("1-port model must always be reciprocal")
	}
	if asym := randModel(rng, 4); asym.Reciprocal(1e-9) {
		t.Fatal("generic random 4-port model detected as reciprocal")
	}
}

// TestSparseApplyZeroAllocs pins the sparse backend's apply hot path —
// the CSR C and Cᵀ products executed once per Arnoldi step — at zero
// steady-state allocations, matching the packed-dense pins in
// hamiltonian's alloc tests. A regression here multiplies straight into
// GC pressure on n ≳ 10⁴ solves.
func TestSparseApplyZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randSparsifiedModel(rng, 6, 0.2)
	m.SetBackend(BackendSparse)
	if got := m.ActiveBackend(); got != BackendSparse {
		t.Fatalf("forced sparse backend resolved to %v", got)
	}
	n := m.Order()
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	u := make([]complex128, m.P)
	for i := range u {
		u[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	yp := make([]complex128, m.P)
	yn := make([]complex128, n)
	m.CApplyC(yp, x)  // warm the CSR build and kernel cache
	m.CApplyCT(yn, u)
	if avg := testing.AllocsPerRun(100, func() { m.CApplyC(yp, x) }); avg != 0 {
		t.Fatalf("sparse CApplyC allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { m.CApplyCT(yn, u) }); avg != 0 {
		t.Fatalf("sparse CApplyCT allocates %.1f objects per call, want 0", avg)
	}
}
