package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// TestFleetAdmissionBlocksUntilSlotFrees: with MaxQueued=1 the second
// Submit must not be admitted while the first job is still in flight, and
// must proceed once it finishes.
func TestFleetAdmissionBlocksUntilSlotFrees(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2, MaxQueued: 1})
	defer e.Close()

	j1, err := e.Submit(context.Background(), Request{
		Model: genModel(t, 101, 40, 1.05),
		Char:  charOpts(2),
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		j   *Job
		err error
	}
	admitted := make(chan outcome, 1)
	go func() {
		j2, err := e.Submit(context.Background(), Request{
			Model: genModel(t, 102, 10, 1.0),
			Char:  charOpts(1),
		})
		admitted <- outcome{j2, err}
	}()

	select {
	case o := <-admitted:
		// Legal only if job 1 already finished (fast machine).
		select {
		case <-j1.Done():
		default:
			t.Fatalf("second submit admitted while the slot was held (err=%v)", o.err)
		}
		if o.err != nil {
			t.Fatal(o.err)
		}
		if _, err := o.j.Wait(); err != nil {
			t.Fatal(err)
		}
		return
	case <-time.After(5 * time.Millisecond):
		// Expected: still blocked.
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-admitted:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if _, err := o.j.Wait(); err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("second submit never admitted after the slot freed")
	}
}

// TestFleetAdmissionFailFast: a FailFast engine rejects the over-cap
// submit with ErrQueueFull instead of blocking.
func TestFleetAdmissionFailFast(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 1, MaxQueued: 1, FailFast: true})
	defer e.Close()

	j1, err := e.Submit(context.Background(), Request{
		Model: genModel(t, 103, 40, 1.05),
		Char:  charOpts(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(context.Background(), Request{
		Model: genModel(t, 104, 10, 1.0),
		Char:  charOpts(1),
	}); !errors.Is(err, ErrQueueFull) {
		// The only legal alternative is that job 1 finished already.
		select {
		case <-j1.Done():
		default:
			t.Fatalf("want ErrQueueFull, got %v", err)
		}
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetAdmissionSubmitCtxCancel: a canceled context unblocks a Submit
// waiting for admission.
func TestFleetAdmissionSubmitCtxCancel(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 1, MaxQueued: 1})
	defer e.Close()

	if _, err := e.Submit(context.Background(), Request{
		Model: genModel(t, 105, 40, 1.05),
		Char:  charOpts(1),
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := e.Submit(ctx, Request{Model: genModel(t, 106, 10, 1.0), Char: charOpts(1)})
		errCh <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) && err != nil {
			t.Fatalf("want context.Canceled (or admitted nil), got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled Submit never returned")
	}
}

// TestFleetCloseWhileSubmitBlocked is the regression test for the
// Close / in-flight Submit race surface: closing the engine while a
// Submit is blocked on admission must wake it with ErrEngineClosed —
// never deadlock or panic.
func TestFleetCloseWhileSubmitBlocked(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 1, MaxQueued: 1})

	// Hold the only admission slot with a job big enough to outlive the
	// blocked Submit below.
	j1, err := e.Submit(context.Background(), Request{
		Model: genModel(t, 107, 60, 1.05),
		Char:  charOpts(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		_, err := e.Submit(context.Background(), Request{
			Model: genModel(t, 108, 10, 1.0),
			Char:  charOpts(1),
		})
		blocked <- err
	}()
	time.Sleep(2 * time.Millisecond) // let the second Submit reach the admission wait

	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()

	select {
	case err := <-blocked:
		if !errors.Is(err, ErrEngineClosed) {
			t.Fatalf("blocked Submit: want ErrEngineClosed, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Submit blocked on admission deadlocked across Close")
	}
	select {
	case <-closed:
	case <-time.After(60 * time.Second):
		t.Fatal("Close deadlocked")
	}
	// The in-flight job was allowed to finish.
	if _, err := j1.Wait(); err != nil {
		t.Fatalf("in-flight job failed across Close: %v", err)
	}
	// Double close is safe.
	e.Close()
}

// TestFleetInteractiveOvertakesBatch: an interactive characterization
// submitted mid-batch must complete before the queued batch jobs drain —
// the fleet-level view of the pool's priority classes.
func TestFleetInteractiveOvertakesBatch(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 1})
	defer e.Close()

	batch := make([]*Job, 4)
	for i := range batch {
		j, err := e.Submit(context.Background(), Request{
			Model:    genModel(t, int64(110+i), 60, 1.05),
			Char:     charOpts(1),
			Priority: core.PriorityBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = j
	}
	inter, err := e.Submit(context.Background(), Request{
		Model:    genModel(t, 120, 12, 1.0),
		Char:     charOpts(1),
		Priority: core.PriorityInteractive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inter.Wait(); err != nil {
		t.Fatal(err)
	}
	// A single worker grinding four order-60 solves cannot have drained
	// the whole batch before the order-12 interactive job — unless the
	// interactive tasks overtook the queued batch tasks, at least the last
	// batch job must still be unfinished here.
	stillQueued := 0
	for _, j := range batch {
		select {
		case <-j.Done():
		default:
			stillQueued++
		}
	}
	if stillQueued == 0 {
		t.Fatal("interactive job finished after the entire batch: priority had no effect")
	}
	for i, j := range batch {
		if _, err := j.Wait(); err != nil {
			t.Fatalf("batch job %d: %v", i, err)
		}
	}
}
