// Package fleet is the multi-model job engine: it accepts many passivity
// characterization and enforcement jobs and runs all of them on ONE shared
// worker pool (internal/core.Pool) sized to the machine, instead of letting
// each solve spin up its own thread pool and oversubscribe the host.
//
// The workloads are embarrassingly parallel across models (the
// Grivet-Talocia adaptive-sampling baseline, paper ref. [17], exploits the
// same structure), but per-solve pools compose badly: N concurrent solves
// × T threads each is N·T runnable goroutines fighting for T cores,
// trashing caches exactly in the memory-bound Arnoldi hot path. Here every
// compute phase of every job — eigensolver shifts, σ_max band probes,
// enforcement constraint assembly — feeds the one pool as tasks of the
// job's scheduling client, so the machine stays exactly full and a small
// job finishing early immediately donates its workers to the big ones.
//
// The engine adds production semantics on top of the pool:
//
//   - bounded admission: EngineOptions.MaxQueued caps admitted-but-
//     unfinished jobs; Submit blocks (or fails fast with ErrQueueFull)
//     until a slot frees, and errors cleanly with ErrEngineClosed if the
//     engine closes while it waits;
//   - per-job priority classes: a Request with core.PriorityInteractive
//     overtakes queued batch work at task-pop granularity;
//   - weighted round-robin fairness across equal-priority jobs, instead
//     of the oldest job monopolizing the workers.
//
// Cancellation is per-job via contexts; the completion guarantee (the
// certified disks of a finished job cover its whole search band) is
// per-job and unaffected by sharing.
//
// Invariants: one scheduling client spans every compute phase of a job
// (shifts, probes, constraints, refinement tails), so priority and
// fairness apply to the job as a whole; job results are bit-identical to
// standalone runs of the same request (fleetbench asserts this across all
// twelve Table-I cases).
//
// Concurrency: Engine methods are safe for concurrent use. Submit may
// block on admission; each job is coordinated by one goroutine that is
// NOT a pool worker, so batch joins inside the job cannot deadlock the
// pool. NewClient hands out identities for pool-routed work outside
// Submit (e.g. Vector Fitting on the engine's pool).
package fleet

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hamiltonian"
	"repro/internal/passivity"
	"repro/internal/statespace"
)

// ErrEngineClosed is returned by Submit after (or during) Close.
var ErrEngineClosed = errors.New("fleet: engine closed")

// ErrQueueFull is returned by Submit on a FailFast engine whose admission
// queue is at MaxQueued.
var ErrQueueFull = errors.New("fleet: admission queue full")

// EngineOptions configures an engine.
type EngineOptions struct {
	// Workers sizes the shared pool (≤ 0 means GOMAXPROCS).
	Workers int
	// MaxQueued caps the number of admitted-but-unfinished jobs; further
	// Submits block until a slot frees (or fail fast, see FailFast).
	// 0 means unbounded — the pre-admission-control behavior.
	//
	// Admission is priority-blind: it bounds resources, not latency, so a
	// PriorityInteractive Submit waits for a slot behind batch jobs like
	// any other. Priority takes effect after admission, at task-pop
	// granularity. Deployments that must never stall interactive submits
	// should size MaxQueued with headroom for them (or keep it 0).
	MaxQueued int
	// FailFast makes Submit return ErrQueueFull immediately instead of
	// blocking when MaxQueued jobs are in flight.
	FailFast bool
	// ShiftCacheSize sizes the engine-wide shift-factorization cache
	// shared by every job (hamiltonian.OpCache): jobs characterizing the
	// same model share one balanced operator, one packed-kernel epoch, and
	// one LRU of factored SMW shifts. 0 means DefaultShiftCacheSize;
	// < 0 disables cross-job sharing (each job then runs with the
	// per-solve cache policy of its own core.Options.ShiftCacheSize).
	// Results are bit-identical either way — the cache only skips
	// redundant factorization work.
	ShiftCacheSize int
}

// DefaultShiftCacheSize is the engine-wide factorization-cache capacity
// when EngineOptions.ShiftCacheSize is zero: four per-solve defaults, so a
// handful of concurrent jobs can keep their startup shifts resident at
// once.
const DefaultShiftCacheSize = 4 * core.DefaultShiftCacheSize

// Engine owns the shared worker pool and tracks in-flight jobs.
type Engine struct {
	pool     *core.Pool
	ops      *hamiltonian.OpCache // engine-wide operator + shift-factor cache, nil when disabled
	sem      chan struct{}        // admission slots, nil when unbounded
	failFast bool

	mu       sync.Mutex
	closed   bool
	closedCh chan struct{} // closed by Close; wakes Submits blocked on admission
	wg       sync.WaitGroup
}

// New starts an engine whose shared pool has the given worker count
// (≤ 0 means GOMAXPROCS) and unbounded admission. Close it to release the
// workers.
func New(workers int) *Engine {
	return NewEngine(EngineOptions{Workers: workers})
}

// NewEngine starts an engine with full production options.
func NewEngine(o EngineOptions) *Engine {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		pool:     core.NewPool(w),
		failFast: o.FailFast,
		closedCh: make(chan struct{}),
	}
	if o.ShiftCacheSize >= 0 {
		size := o.ShiftCacheSize
		if size == 0 {
			size = DefaultShiftCacheSize
		}
		e.ops = hamiltonian.NewOpCache(size)
	}
	if o.MaxQueued > 0 {
		e.sem = make(chan struct{}, o.MaxQueued)
	}
	return e
}

// ShiftCacheStats snapshots the engine-wide factorization cache's
// counters (zero-valued when cross-job sharing is disabled).
func (e *Engine) ShiftCacheStats() hamiltonian.CacheStats {
	if e.ops == nil {
		return hamiltonian.CacheStats{}
	}
	return e.ops.ShiftCache().Stats()
}

// ModelCacheStats attributes the engine-wide cache's traffic to one
// model's shared scattering operator — the hits and misses that model's
// jobs generated, regardless of what the rest of the fleet did. Zero when
// cross-job sharing is disabled or the model never ran through this
// engine. cmd/fleetbench uses it for per-case cache columns.
func (e *Engine) ModelCacheStats(m *statespace.Model) hamiltonian.CacheStats {
	if e.ops == nil {
		return hamiltonian.CacheStats{}
	}
	return e.ops.StatsFor(m, hamiltonian.Scattering)
}

// Workers returns the shared pool's worker count.
func (e *Engine) Workers() int { return e.pool.Workers() }

// QueueDepth returns the number of tasks currently queued on the shared
// pool (all jobs, all phases). Observational only.
func (e *Engine) QueueDepth() int { return e.pool.QueueDepth() }

// Admission reports the admission queue's occupancy: slots in use by
// admitted-but-unfinished jobs and the total capacity (0, 0 when the
// engine was built with unbounded admission). Observational only.
func (e *Engine) Admission() (used, capacity int) {
	if e.sem == nil {
		return 0, 0
	}
	return len(e.sem), cap(e.sem)
}

// PhaseStats snapshots the shared pool's per-phase execution counters
// (tasks + busy time per compute phase: core.PhaseEig, core.PhaseProbe,
// core.PhaseConstraint, ...). cmd/fleetbench derives per-phase worker
// utilization from it.
func (e *Engine) PhaseStats() map[string]core.PhaseStat { return e.pool.PhaseStats() }

// NewClient registers a scheduling identity on the engine's shared pool
// for pool-routed work that does not go through Submit — e.g. a Vector
// Fitting run (vectfit.Options.Client) feeding models into the fleet, or a
// solve driven directly via core.Options.Client. Tasks submitted under the
// client compete with the engine's jobs under the same priority/fairness
// policy. Clients hold no resources and need no teardown, but they become
// useless once the engine is closed (their batches fail with
// core.ErrPoolClosed).
func (e *Engine) NewClient(pri core.PriorityClass, weight int) *core.Client {
	return e.pool.NewClient(core.ClientOptions{Priority: pri, Weight: weight})
}

// Request is one unit of work for the engine.
type Request struct {
	// Model to analyze. Required.
	Model *statespace.Model
	// Char configures the characterization when Enforce is nil. Its
	// Core.Pool/Core.Client fields are managed by the engine; Core.Threads
	// may stay zero to default to the pool width.
	Char passivity.Options
	// Enforce, when non-nil, turns the job into an enforcement run with
	// these options (the characterization options then come from
	// Enforce.Char, not from the Char field above).
	Enforce *passivity.EnforceOptions
	// Priority selects the job's scheduling class on the shared pool:
	// core.PriorityInteractive tasks pop before any queued batch-class
	// task, so a characterization a user is waiting on overtakes bulk
	// enforcement at task granularity. Default core.PriorityBatch. Note
	// that priority applies after admission — see EngineOptions.MaxQueued
	// for the interaction with a bounded queue.
	Priority core.PriorityClass
	// Weight is the job's weighted-round-robin share against other jobs
	// of the same class (a weight-2 job gets twice the task pops of a
	// weight-1 job while both have work queued). Minimum (and default) 1.
	Weight int
	// Progress, when non-nil, receives observational solver-progress
	// events for this job (see core.Options.Progress for the delivery
	// contract: concurrent, post-commit, never able to perturb the
	// result). It overrides any callback already set in Char.Core /
	// Enforce.Char.Core.
	Progress func(core.ProgressEvent)
	// Checkpoint, when non-nil, receives the job's durable eigensolver
	// checkpoints (see core.Options.Checkpoint). For characterization jobs
	// it observes the whole solve; for enforcement jobs the engine leaves
	// it unset on the inner re-characterizations (enforcement persists at
	// iteration granularity instead — see EnforceCheckpoint). It overrides
	// any callback already set in Char.Core.
	Checkpoint func(core.Checkpoint)
	// Resume, when non-nil, restarts a characterization job from a replayed
	// checkpoint prefix (see core.Options.Resume). Ignored for enforcement
	// jobs.
	Resume *core.ResumeState
	// EnforceCheckpoint, when non-nil, receives an enforcement job's
	// iteration-boundary checkpoints (see
	// passivity.EnforceOptions.Checkpoint). Ignored for characterization
	// jobs.
	EnforceCheckpoint func(passivity.EnforceCheckpoint)
	// EnforceResume, when non-nil, restarts an enforcement job from its
	// last persisted iteration boundary (see
	// passivity.EnforceOptions.Resume). Ignored for characterization jobs.
	EnforceResume *passivity.EnforceCheckpoint
}

// Result is the outcome of a fleet job.
type Result struct {
	// Report is the passivity characterization — for enforcement jobs, the
	// final (or, on enforcement failure, last) characterization.
	Report *passivity.Report
	// Model is the enforced model, set for enforcement jobs only. On an
	// ErrEnforcementFailed error this is the partially-enforced model.
	Model *statespace.Model
	// EnforceReport summarizes the enforcement run (enforcement jobs only).
	EnforceReport *passivity.EnforceReport
}

// Job is a handle to one submitted request.
type Job struct {
	done   chan struct{}
	res    Result
	err    error
	client *core.Client
	wall   time.Duration // submit-to-finish latency, set before done closes
}

// Done returns a channel closed when the job has finished.
func (j *Job) Done() <-chan struct{} { return j.done }

// BusyTime returns the cumulative pool-worker time spent on this job's
// tasks — its actual compute cost. On a contended pool this is far below
// WallTime, which also counts time queued behind other jobs.
func (j *Job) BusyTime() time.Duration { return j.client.BusyTime() }

// WallTime returns the submit-to-finish latency of the job. Zero until
// the job finishes.
func (j *Job) WallTime() time.Duration {
	select {
	case <-j.done:
		return j.wall
	default:
		return 0
	}
}

// Wait blocks until the job finishes. On error the Result may still be
// partially populated (notably passivity.ErrEnforcementFailed, which
// carries the partially-enforced model and its report).
func (j *Job) Wait() (*Result, error) {
	<-j.done
	return &j.res, j.err
}

// Submit registers a request and returns a handle; the heavy solver work
// runs on the shared pool under the request's priority class and fairness
// weight, coordinated by one lightweight goroutine per job. The context
// cancels the job (shift-granular, like core.SolveContext).
//
// With MaxQueued set, Submit first takes an admission slot: it blocks
// until one frees, the context is canceled, or the engine closes
// (ErrEngineClosed — never a deadlock, see TestFleetCloseWhileSubmitBlocked);
// with FailFast it returns ErrQueueFull instead of blocking. The slot is
// released when the job finishes.
func (e *Engine) Submit(ctx context.Context, req Request) (*Job, error) {
	if req.Model == nil {
		return nil, errors.New("fleet: nil model")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	release := func() {}
	if e.sem != nil {
		if e.failFast {
			select {
			case <-e.closedCh:
				return nil, ErrEngineClosed
			default:
			}
			select {
			case e.sem <- struct{}{}:
			default:
				return nil, ErrQueueFull
			}
		} else {
			select {
			case e.sem <- struct{}{}:
			case <-e.closedCh:
				return nil, ErrEngineClosed
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		release = func() { <-e.sem }
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		release()
		return nil, ErrEngineClosed
	}
	e.wg.Add(1)
	e.mu.Unlock()

	// One scheduling identity spans every compute phase of the job.
	client := e.pool.NewClient(core.ClientOptions{Priority: req.Priority, Weight: req.Weight})
	j := &Job{done: make(chan struct{}), client: client}
	//lint:ignore detfloat job wall-time telemetry only; it never feeds numeric state
	start := time.Now()
	go func() {
		defer e.wg.Done()
		defer release()
		defer close(j.done)
		defer func() {
			//lint:ignore detfloat job wall-time telemetry only; it never feeds numeric state
			j.wall = time.Since(start)
		}()
		if req.Enforce != nil {
			opts := *req.Enforce
			opts.Char.Core.Pool = e.pool
			opts.Char.Core.Client = client
			if opts.Char.Ops == nil {
				opts.Char.Ops = e.ops
			}
			if req.Progress != nil {
				opts.Char.Core.Progress = req.Progress
			}
			if req.EnforceCheckpoint != nil {
				opts.Checkpoint = req.EnforceCheckpoint
			}
			if req.EnforceResume != nil {
				opts.Resume = req.EnforceResume
			}
			// Enforcement durability is iteration-granular: the inner
			// re-characterizations must not emit (or consume) per-shift
			// checkpoints of their own.
			opts.Char.Core.Checkpoint = nil
			opts.Char.Core.Resume = nil
			model, rep, err := passivity.EnforceContext(ctx, req.Model, opts)
			j.res.Model = model
			j.res.EnforceReport = rep
			if rep != nil {
				j.res.Report = rep.FinalReport
			}
			j.err = err
			return
		}
		opts := req.Char
		opts.Core.Pool = e.pool
		opts.Core.Client = client
		if opts.Ops == nil {
			opts.Ops = e.ops
		}
		if req.Progress != nil {
			opts.Core.Progress = req.Progress
		}
		if req.Checkpoint != nil {
			opts.Core.Checkpoint = req.Checkpoint
		}
		if req.Resume != nil {
			opts.Core.Resume = req.Resume
		}
		rep, err := passivity.CharacterizeContext(ctx, req.Model, opts)
		j.res.Report = rep
		j.err = err
	}()
	return j, nil
}

// Close waits for every submitted job to finish, then shuts the shared
// pool down. Submits blocked on admission are woken and fail with
// ErrEngineClosed. Jobs the caller wants aborted should be canceled via
// their contexts before Close. Closing twice is safe.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.closedCh)
	}
	e.mu.Unlock()
	e.wg.Wait()
	e.pool.Close()
}
