// Package fleet is the multi-model job engine: it accepts many passivity
// characterization and enforcement jobs and runs all of them on ONE shared
// worker pool (internal/core.Pool) sized to the machine, instead of letting
// each solve spin up its own thread pool and oversubscribe the host.
//
// The workloads are embarrassingly parallel across models (the
// Grivet-Talocia adaptive-sampling baseline, paper ref. [17], exploits the
// same structure), but per-solve pools compose badly: N concurrent solves
// × T threads each is N·T runnable goroutines fighting for T cores,
// trashing caches exactly in the memory-bound Arnoldi hot path. Here every
// solve feeds its tentative shift intervals into the one pool queue;
// whichever worker frees up next takes the oldest interval of any job, so
// the machine stays exactly full and a small job finishing early
// immediately donates its workers to the big ones.
//
// Cancellation is per-job via contexts; the completion guarantee (the
// certified disks of a finished job cover its whole search band) is
// per-job and unaffected by sharing.
package fleet

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/passivity"
	"repro/internal/statespace"
)

// ErrEngineClosed is returned by Submit after Close.
var ErrEngineClosed = errors.New("fleet: engine closed")

// Engine owns the shared worker pool and tracks in-flight jobs.
type Engine struct {
	pool *core.Pool

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// New starts an engine whose shared pool has the given worker count
// (≤ 0 means GOMAXPROCS). Close it to release the workers.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{pool: core.NewPool(workers)}
}

// Workers returns the shared pool's worker count.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Request is one unit of work for the engine.
type Request struct {
	// Model to analyze. Required.
	Model *statespace.Model
	// Char configures the characterization when Enforce is nil. Its
	// Core.Pool field is managed by the engine; Core.Threads may stay zero
	// to default to the pool width.
	Char passivity.Options
	// Enforce, when non-nil, turns the job into an enforcement run with
	// these options (the characterization options then come from
	// Enforce.Char, not from the Char field above).
	Enforce *passivity.EnforceOptions
}

// Result is the outcome of a fleet job.
type Result struct {
	// Report is the passivity characterization — for enforcement jobs, the
	// final (or, on enforcement failure, last) characterization.
	Report *passivity.Report
	// Model is the enforced model, set for enforcement jobs only. On an
	// ErrEnforcementFailed error this is the partially-enforced model.
	Model *statespace.Model
	// EnforceReport summarizes the enforcement run (enforcement jobs only).
	EnforceReport *passivity.EnforceReport
}

// Job is a handle to one submitted request.
type Job struct {
	done chan struct{}
	res  Result
	err  error
}

// Done returns a channel closed when the job has finished.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes. On error the Result may still be
// partially populated (notably passivity.ErrEnforcementFailed, which
// carries the partially-enforced model and its report).
func (j *Job) Wait() (*Result, error) {
	<-j.done
	return &j.res, j.err
}

// Submit registers a request and returns immediately; the heavy solver work
// runs on the shared pool, coordinated by one lightweight goroutine per
// job. The context cancels the job (shift-granular, like
// core.SolveContext).
func (e *Engine) Submit(ctx context.Context, req Request) (*Job, error) {
	if req.Model == nil {
		return nil, errors.New("fleet: nil model")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	e.wg.Add(1)
	e.mu.Unlock()

	j := &Job{done: make(chan struct{})}
	go func() {
		defer e.wg.Done()
		defer close(j.done)
		if req.Enforce != nil {
			opts := *req.Enforce
			opts.Char.Core.Pool = e.pool
			model, rep, err := passivity.EnforceContext(ctx, req.Model, opts)
			j.res.Model = model
			j.res.EnforceReport = rep
			if rep != nil {
				j.res.Report = rep.FinalReport
			}
			j.err = err
			return
		}
		opts := req.Char
		opts.Core.Pool = e.pool
		rep, err := passivity.CharacterizeContext(ctx, req.Model, opts)
		j.res.Report = rep
		j.err = err
	}()
	return j, nil
}

// Close waits for every submitted job to finish, then shuts the shared pool
// down. Jobs the caller wants aborted should be canceled via their contexts
// before Close.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.wg.Wait()
	e.pool.Close()
}
