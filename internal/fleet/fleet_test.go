package fleet

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/arnoldi"
	"repro/internal/core"
	"repro/internal/passivity"
	"repro/internal/statespace"
)

func genModel(t *testing.T, seed int64, order int, peak float64) *statespace.Model {
	t.Helper()
	m, err := statespace.Generate(seed, statespace.GenOptions{
		Ports: 2, Order: order, TargetPeak: peak, GridPoints: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func charOpts(threads int) passivity.Options {
	return passivity.Options{Core: core.Options{
		Threads: threads, Seed: 11,
		Arnoldi: arnoldi.SingleShiftParams{NWanted: 4, MaxDim: 40},
	}}
}

// TestFleetMatchesSerialPerModel: N concurrent jobs on the shared pool must
// produce crossings bit-identical to serial per-model characterizations.
func TestFleetMatchesSerialPerModel(t *testing.T) {
	type spec struct {
		seed  int64
		order int
		peak  float64
	}
	specs := []spec{
		{81, 24, 1.06},
		{82, 30, 1.04},
		{83, 26, 0.92},
		{84, 28, 1.05},
		{85, 22, 1.03},
		{86, 20, 1.07},
	}
	// Serial per-model references, one standalone Characterize each.
	refs := make([]*passivity.Report, len(specs))
	for i, s := range specs {
		rep, err := passivity.Characterize(genModel(t, s.seed, s.order, s.peak), charOpts(2))
		if err != nil {
			t.Fatalf("serial %d: %v", i, err)
		}
		refs[i] = rep
	}
	// All jobs concurrently on one shared pool.
	e := New(4)
	defer e.Close()
	jobs := make([]*Job, len(specs))
	for i, s := range specs {
		j, err := e.Submit(context.Background(), Request{
			Model: genModel(t, s.seed, s.order, s.peak),
			Char:  charOpts(2),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		got, want := res.Report.Crossings, refs[i].Crossings
		if len(got) != len(want) {
			t.Fatalf("job %d: %d crossings, serial found %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("job %d crossing %d: fleet %v != serial %v (not bit-identical)",
					i, k, got[k], want[k])
			}
		}
		if res.Report.Passive != refs[i].Passive {
			t.Fatalf("job %d: passivity verdict diverged", i)
		}
	}
}

// TestFleetCancellationNoGoroutineLeak: canceling a job mid-solve must
// propagate ctx.Err() and, after Close, leave the goroutine count at the
// baseline.
func TestFleetCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	// A model big enough that the solve is still running when we cancel.
	j, err := e.Submit(ctx, Request{
		Model: genModel(t, 87, 80, 1.05),
		Char:  charOpts(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A second, uncanceled job sharing the pool must be unaffected.
	j2, err := e.Submit(context.Background(), Request{
		Model: genModel(t, 88, 20, 1.04),
		Char:  charOpts(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	cancel()
	if _, err := j.Wait(); err == nil {
		t.Log("job finished before cancellation took effect")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := j2.Wait(); err != nil {
		t.Fatalf("sibling job failed after cancellation of another: %v", err)
	}
	e.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after close", before, runtime.NumGoroutine())
}

// TestFleetWarmEnforceMatchesCold: warm-started enforcement (the default)
// must converge to the same enforced model as a cold-start run.
func TestFleetWarmEnforceMatchesCold(t *testing.T) {
	mkOpts := func(cold bool) *passivity.EnforceOptions {
		return &passivity.EnforceOptions{Char: charOpts(2), ColdStart: cold}
	}
	e := New(4)
	defer e.Close()
	jWarm, err := e.Submit(context.Background(), Request{
		Model: genModel(t, 89, 22, 1.05), Enforce: mkOpts(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	jCold, err := e.Submit(context.Background(), Request{
		Model: genModel(t, 89, 22, 1.05), Enforce: mkOpts(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := jWarm.Wait()
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	cold, err := jCold.Wait()
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if !warm.Report.Passive || !cold.Report.Passive {
		t.Fatal("enforcement did not reach passivity")
	}
	if warm.EnforceReport.Iterations != cold.EnforceReport.Iterations {
		t.Fatalf("iteration counts diverged: warm %d, cold %d",
			warm.EnforceReport.Iterations, cold.EnforceReport.Iterations)
	}
	// Same perturbed model: the warm start changes only shift placement,
	// never the characterization outcome the perturbation is built from.
	for k := range warm.Model.Cols {
		if !warm.Model.Cols[k].C.Equalish(cold.Model.Cols[k].C, 1e-12) {
			t.Fatalf("column %d residues diverged between warm and cold enforcement", k)
		}
	}
	// The point of the warm start: it must not cost more solver work.
	w, c := warm.EnforceReport.SolverTotals.ShiftsProcessed, cold.EnforceReport.SolverTotals.ShiftsProcessed
	t.Logf("ShiftsProcessed: warm %d, cold %d", w, c)
	if w > c {
		t.Fatalf("warm start processed MORE shifts than cold start: %d > %d", w, c)
	}
}

// TestFleetSubmitAfterClose: Submit on a closed engine fails cleanly.
func TestFleetSubmitAfterClose(t *testing.T) {
	e := New(1)
	e.Close()
	if _, err := e.Submit(context.Background(), Request{Model: genModel(t, 90, 10, 1.0)}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed, got %v", err)
	}
}

// TestFleetNilModelRejected: a nil model errors at Submit, not at Wait.
func TestFleetNilModelRejected(t *testing.T) {
	e := New(1)
	defer e.Close()
	if _, err := e.Submit(context.Background(), Request{}); err == nil {
		t.Fatal("nil model accepted")
	}
}
