package arnoldi

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"

	"repro/internal/mat"
)

// Real-arithmetic Arnoldi for the half-size Hamiltonian path. Every sweep
// shift there is τ = −ω² — real — and the squared operator N is real, so
// (N − τI)⁻¹ maps R^n to R^n and the whole Krylov iteration can run on
// real vectors: half the memory traffic and half the flops per apply, MGS
// projection and reorthogonalization compared to the complex path, which
// on a real operator just carries a redundant second lane. Eigenvalues of
// the projected (real) Hessenberg are still complex in general — they come
// in conjugate pairs — so Ritz extraction promotes H to complex and reuses
// mat.CEig, and deflation locks the real span {Re x, Im x} of each
// converged complex Ritz vector, which removes both pair members from the
// real iteration at once.
//
// The certification semantics of SingleShiftReal are those of SingleShift,
// verbatim: same convergence test, disk-radius shrink/grow rules, ghost
// purging, stagnation and exhaustion handling. Only the vector arithmetic
// is real.

// RealOperator is a linear operator on R^dim. Apply computes y = Op·x; x
// and y are distinct slices of length Dim().
type RealOperator interface {
	Dim() int
	Apply(y, x []float64) error
}

// RealShiftInverter abstracts a factored real operator (N − τI)⁻¹ for real
// τ (hamiltonian.HalfShiftOp satisfies it).
type RealShiftInverter interface {
	RealOperator
	Theta() complex128
}

// RealBaseOperator is optionally implemented by a RealShiftInverter that
// can also apply the original operator N; SingleShiftReal then reports
// per-eigenvalue residuals in N.
type RealBaseOperator interface {
	ApplyBase(y, x []float64) error
}

// RealFactorization holds one real Arnoldi sweep: an orthonormal real
// basis V, the projected Hessenberg H promoted to complex (so Ritz
// extraction shares mat.CEig with the complex path), the next-vector
// coupling hNext, and the invariant-subspace flag.
type RealFactorization struct {
	Steps     int
	V         [][]float64
	H         *mat.CDense
	HNext     float64
	Invariant bool
	OpApplies int
}

// RunReal performs one Arnoldi factorization of a real operator, mirroring
// Run step for step: MGS with fused project-subtract, Kahan–Parlett
// selective reorthogonalization, relative breakdown test, and the periodic
// StopEarly check on the (promoted) projected problem.
func RunReal(op RealOperator, start []float64, locked [][]float64, cfg Config) (*RealFactorization, error) {
	cfg.setDefaults()
	n := op.Dim()
	if len(start) != n {
		panic(fmt.Sprintf("arnoldi: start vector length %d, want %d", len(start), n))
	}
	d := cfg.MaxDim
	if lim := n - len(locked); d > lim {
		d = lim
	}
	if d <= 0 {
		return nil, ErrBreakdownEmpty
	}
	v0 := make([]float64, n)
	copy(v0, start)
	orthogonalizeReal(v0, locked)
	nrm := mat.Norm2(v0)
	if nrm < 1e-300 {
		return nil, ErrBreakdownEmpty
	}
	mat.ScaleVec(1/nrm, v0)

	v := make([][]float64, 0, d+1)
	v = append(v, v0)
	h := mat.NewDense(d, d)
	w := make([]float64, n)
	fac := &RealFactorization{}
	for j := 0; j < d; j++ {
		if err := op.Apply(w, v[j]); err != nil {
			return nil, err
		}
		fac.OpApplies++
		wNormBefore := mat.Norm2(w)
		// Deflate against locked, then MGS against the basis (fused
		// project-and-subtract kernel).
		orthogonalizeReal(w, locked)
		for i := 0; i <= j; i++ {
			h.Set(i, j, mat.ProjSub(v[i], w))
		}
		// Selective reorthogonalization (Kahan–Parlett "twice is enough"
		// criterion): a second pass is only needed when cancellation ate a
		// substantial part of the vector.
		if mat.Norm2(w) < 0.5*wNormBefore {
			orthogonalizeReal(w, locked)
			for i := 0; i <= j; i++ {
				c := mat.ProjSub(v[i], w)
				h.Set(i, j, h.At(i, j)+c)
			}
		}
		hn := mat.Norm2(w)
		fac.Steps = j + 1
		// Relative breakdown test against the column norm of H.
		var colScale float64
		for i := 0; i <= j; i++ {
			colScale += math.Abs(h.At(i, j))
		}
		if hn <= 1e-12*(colScale+1e-300) {
			fac.Invariant = true
			fac.HNext = 0
			break
		}
		fac.HNext = hn
		// Periodic early-exit check on the projected problem.
		if cfg.StopEarly != nil && cfg.CheckEvery > 0 && (j+1)%cfg.CheckEvery == 0 && j+1 < d {
			k := j + 1
			if cfg.StopEarly(promoteHessenberg(h, k), hn, k) {
				next := make([]float64, n)
				copy(next, w)
				mat.ScaleVec(1/hn, next)
				v = append(v, next)
				break
			}
		}
		if j+1 < d {
			h.Set(j+1, j, hn)
		}
		next := make([]float64, n)
		copy(next, w)
		mat.ScaleVec(1/hn, next)
		v = append(v, next)
	}
	fac.V = v
	fac.H = promoteHessenberg(h, fac.Steps)
	return fac, nil
}

// promoteHessenberg copies the leading k×k block of a real Hessenberg into
// a complex matrix for mat.CEig.
func promoteHessenberg(h *mat.Dense, k int) *mat.CDense {
	hk := mat.NewCDense(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			hk.Set(i, j, complex(h.At(i, j), 0))
		}
	}
	return hk
}

// RitzPairs extracts the Ritz pairs of the real factorization: complex
// eigenpairs of the promoted H lifted through the real basis. Conjugate
// Ritz values carry conjugate vectors and identical residuals.
func (f *RealFactorization) RitzPairs() ([]RitzPair, error) {
	k := f.Steps
	if k == 0 {
		return nil, nil
	}
	vals, vecs, err := mat.CEig(f.H)
	if err != nil {
		return nil, err
	}
	n := len(f.V[0])
	out := make([]RitzPair, k)
	for idx := 0; idx < k; idx++ {
		res := f.HNext * cmplx.Abs(vecs.At(k-1, idx))
		if f.Invariant {
			res = 0
		}
		x := make([]complex128, n)
		for i := 0; i < k; i++ {
			yr, yi := real(vecs.At(i, idx)), imag(vecs.At(i, idx))
			vi := f.V[i]
			for a, va := range vi {
				x[a] = complex(real(x[a])+yr*va, imag(x[a])+yi*va)
			}
		}
		out[idx] = RitzPair{Value: vals[idx], Residual: res, Vector: x}
	}
	return out, nil
}

// orthogonalizeReal removes the components of w along each unit vector in q.
func orthogonalizeReal(w []float64, q [][]float64) {
	for _, u := range q {
		mat.ProjSub(u, w)
	}
}

// RandomStartReal fills a deterministic random real unit vector.
func RandomStartReal(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	nrm := mat.Norm2(v)
	if nrm > 0 {
		mat.ScaleVec(1/nrm, v)
	}
	return v
}

// lockRealSpan appends the orthonormalized real span {Re x, Im x} of a
// complex Ritz vector to the locked set. For a conjugate Ritz pair both
// members share the same real span, so the second member's parts deflate
// to (numerical) zero and are skipped — the pair costs two locked vectors
// total, exactly the two complex vectors the full path would lock. Real
// Ritz values (arbitrary complex phase) contribute one direction.
func lockRealSpan(locked [][]float64, x []complex128) [][]float64 {
	n := len(x)
	for part := 0; part < 2; part++ {
		v := make([]float64, n)
		if part == 0 {
			for i, z := range x {
				v[i] = real(z)
			}
		} else {
			for i, z := range x {
				v[i] = imag(z)
			}
		}
		orthogonalizeReal(v, locked)
		// x has unit norm, so a genuinely new direction keeps O(1) mass;
		// 1e-6 absolute separates that from deflation residue.
		if nrm := mat.Norm2(v); nrm > 1e-6 {
			mat.ScaleVec(1/nrm, v)
			locked = append(locked, v)
		}
	}
	return locked
}

// realRestartDirection reduces a complex Ritz vector to a real restart
// direction: whichever of its real or imaginary part carries more mass
// (deterministic, and nonzero whenever the vector is).
func realRestartDirection(x []complex128) []float64 {
	n := len(x)
	vr := make([]float64, n)
	vi := make([]float64, n)
	for i, z := range x {
		vr[i] = real(z)
		vi[i] = imag(z)
	}
	if mat.Norm2(vi) > mat.Norm2(vr) {
		return vi
	}
	return vr
}

// SingleShiftReal runs the restarted, deflated shift-invert Arnoldi
// iteration of SingleShift on a real operator, with identical parameters,
// certification rules and result semantics. inv.Theta() must be real
// (imaginary part zero); the returned Ritz values are complex as usual.
func SingleShiftReal(inv RealShiftInverter, rho0 float64, params SingleShiftParams) (*SingleShiftResult, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	params.setDefaults()
	theta := inv.Theta()
	res := &SingleShiftResult{Theta: theta, Radius: rho0}
	cfg := Config{MaxDim: params.MaxDim, Tol: params.Tol, Rng: newRng(params.Seed)}

	type conv struct {
		lambda complex128
		dist   float64
		residM float64
	}
	var converged []conv
	var locked [][]float64
	// dedupTol is relative to the local frequency scale.
	scale := cmplx.Abs(theta) + rho0
	if scale == 0 {
		scale = 1
	}
	dedupTol := 1e-7 * scale

	minUnconv := math.Inf(1)
	stagnant := 0
	var warmStart []float64
	for restart := 0; restart < params.MaxRestarts; restart++ {
		if params.Yield != nil && restart > 0 {
			params.Yield()
		}
		res.Restarts++
		start := RandomStartReal(cfg.Rng, inv.Dim())
		if warmStart != nil {
			// Explicit restart toward the closest unconverged Ritz vector,
			// with a small random component to escape invariant traps.
			for i := range start {
				start[i] = warmStart[i] + 0.02*start[i]
			}
		}
		// Early within-sweep exit: most of the sweep cost is basis
		// orthogonalization, so stop as soon as the projected problem
		// certifies NWanted eigenvalues (or certifies the initial disk
		// empty once the subspace is rich enough).
		convDists := make([]float64, len(converged))
		for i, c := range converged {
			convDists[i] = c.dist
		}
		cfg.CheckEvery = 10
		cfg.StopEarly = func(h *mat.CDense, hNext float64, steps int) bool {
			vals, vecs, err := mat.CEig(h)
			if err != nil {
				return false
			}
			minU := math.Inf(1)
			var newConv []float64
			for idx, mu := range vals {
				if mu == 0 {
					continue
				}
				dist := 1 / cmplx.Abs(mu)
				resid := hNext * cmplx.Abs(vecs.At(steps-1, idx))
				if resid <= params.Tol*cmplx.Abs(mu) {
					newConv = append(newConv, dist)
				} else if dist < minU {
					minU = dist
				}
			}
			certNow := 0.9 * minU
			count := 0
			for _, d := range convDists {
				if d < certNow {
					count++
				}
			}
			for _, d := range newConv {
				if d < certNow {
					count++
				}
			}
			if count >= params.NWanted {
				return true
			}
			// Emptiness certification needs a richer subspace before the
			// unconverged Ritz estimates can be trusted.
			return steps >= 30 && certNow >= 1.05*rho0
		}
		fac, err := RunReal(inv, start, locked, cfg)
		if err == ErrBreakdownEmpty {
			res.Exhausted = true
			break
		}
		if err != nil {
			return nil, err
		}
		res.OpApplies += fac.OpApplies
		pairs, err := fac.RitzPairs()
		if err != nil {
			return nil, err
		}
		minUnconv = math.Inf(1)
		newConv := 0
		ghosts := 0
		warmStart = nil
		for _, p := range pairs {
			if p.Value == 0 {
				continue
			}
			lambda := theta + 1/p.Value
			dist := 1 / cmplx.Abs(p.Value)
			if p.Residual <= params.Tol*cmplx.Abs(p.Value) {
				dup := false
				for _, c := range converged {
					if cmplx.Abs(c.lambda-lambda) <= dedupTol {
						dup = true
						break
					}
				}
				// Lock the span either way: a duplicate is a numerical
				// "ghost" of an already-locked direction (the locked Ritz
				// vector is only tol-accurate); purging it keeps later
				// sweeps exploring fresh directions.
				locked = lockRealSpan(locked, p.Vector)
				if !dup {
					converged = append(converged, conv{
						lambda: lambda,
						dist:   dist,
						residM: baseResidualReal(inv, lambda, p.Vector),
					})
					newConv++
				} else {
					ghosts++
				}
				continue
			}
			if dist < minUnconv {
				minUnconv = dist
				warmStart = realRestartDirection(p.Vector)
			}
		}
		if fac.Invariant && newConv == 0 {
			res.Exhausted = true
			break
		}
		if newConv == 0 && ghosts == 0 {
			stagnant++
			if stagnant >= 3 {
				break
			}
		} else {
			stagnant = 0
		}
		// Early exit uses the same certification rule as the final radius:
		// only eigenvalues closer than 0.9× the nearest unconverged Ritz
		// estimate are certifiable. Stop when NWanted of them are, or when
		// the certifiable region already covers the whole initial disk.
		certNow := 0.9 * minUnconv
		certCount := 0
		for _, c := range converged {
			if c.dist < certNow {
				certCount++
			}
		}
		if certCount >= params.NWanted {
			break
		}
		if restart >= 1 && certNow >= rho0 {
			break
		}
	}

	sort.Slice(converged, func(i, j int) bool { return converged[i].dist < converged[j].dist })

	// Certified radius: nothing unconverged may hide inside the disk.
	certified := math.Inf(1)
	if !math.IsInf(minUnconv, 1) {
		certified = 0.9 * minUnconv
	}
	if res.Exhausted && math.IsInf(certified, 1) {
		// Entire reachable spectrum resolved: certify everything seen.
		certified = math.Inf(1)
	}

	rho := rho0
	nw := params.NWanted
	if len(converged) > nw {
		// Shrink: enclose exactly NWanted, midway to the next one out.
		rho = 0.5 * (converged[nw-1].dist + converged[nw].dist)
	} else if len(converged) > 0 {
		// Grow to the farthest converged eigenvalue (paper rule), bounded
		// by certification.
		far := converged[len(converged)-1].dist
		if far > rho {
			rho = far * (1 + 1e-9)
		}
	}
	if rho > certified {
		rho = certified
	}
	if math.IsInf(rho, 1) {
		// Fully resolved spectrum: choose a radius covering all converged.
		if len(converged) > 0 {
			rho = converged[len(converged)-1].dist * (1 + 1e-9)
			if rho < rho0 {
				rho = rho0
			}
		} else {
			rho = rho0
		}
	}
	for _, c := range converged {
		if c.dist <= rho {
			res.Eigenvalues = append(res.Eigenvalues, c.lambda)
			res.ResidualsM = append(res.ResidualsM, c.residM)
		}
	}
	res.Radius = rho
	return res, nil
}

// baseResidualReal computes ‖N·x − μ·x‖ for a complex Ritz pair of a real
// operator via two real applies (N·Re x and N·Im x); x must have unit
// norm. Returns 0 when the base operator is unavailable.
func baseResidualReal(inv RealShiftInverter, mu complex128, x []complex128) float64 {
	bo, ok := inv.(RealBaseOperator)
	if !ok {
		return 0
	}
	n := len(x)
	xr := make([]float64, n)
	xi := make([]float64, n)
	for i, z := range x {
		xr[i] = real(z)
		xi[i] = imag(z)
	}
	yr := make([]float64, n)
	yi := make([]float64, n)
	if err := bo.ApplyBase(yr, xr); err != nil {
		return 0
	}
	if err := bo.ApplyBase(yi, xi); err != nil {
		return 0
	}
	mr, mi := real(mu), imag(mu)
	var ss float64
	for i := 0; i < n; i++ {
		dr := yr[i] - (mr*xr[i] - mi*xi[i])
		di := yi[i] - (mr*xi[i] + mi*xr[i])
		ss += dr*dr + di*di
	}
	return math.Sqrt(ss)
}
