package arnoldi

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// ringInv builds a shift inverter over a diagonal matrix whose 100
// eigenvalues ring the origin: asking for many of them through a small
// Krylov subspace forces several explicit restarts, giving the Yield hook
// real boundaries to fire at.
func ringInv(t *testing.T) ShiftInverter {
	t.Helper()
	n := 100
	d := mat.NewCDense(n, n)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < n; i++ {
		ang := rng.Float64() * 2 * math.Pi
		r := 0.1 + 0.9*rng.Float64()
		d.Set(i, i, cmplx.Rect(r, ang))
	}
	return newDenseShiftInv(t, d, 0)
}

// realDiagShiftInv is (A − τI)⁻¹ for a real diagonal A.
type realDiagShiftInv struct {
	d   []float64
	tau float64
}

func (r realDiagShiftInv) Dim() int          { return len(r.d) }
func (r realDiagShiftInv) Theta() complex128 { return complex(r.tau, 0) }
func (r realDiagShiftInv) Apply(y, x []float64) error {
	for i := range x {
		y[i] = x[i] / (r.d[i] - r.tau)
	}
	return nil
}

// TestSingleShiftYieldAtRestartBoundaries pins the Yield contract of the
// complex sweep: the hook fires exactly once per restart after the first,
// and its presence leaves the iteration bit-identical — Yield only
// borrows the goroutine, it must never perturb solver state.
func TestSingleShiftYieldAtRestartBoundaries(t *testing.T) {
	params := SingleShiftParams{NWanted: 8, MaxDim: 12, Seed: 3, MaxRestarts: 20}
	base, err := SingleShift(ringInv(t), 1.0, params)
	if err != nil {
		t.Fatal(err)
	}
	if base.Restarts < 2 {
		t.Fatalf("setup: %d restarts, no yield boundary to observe", base.Restarts)
	}
	yields := 0
	params.Yield = func() { yields++ }
	res, err := SingleShift(ringInv(t), 1.0, params)
	if err != nil {
		t.Fatal(err)
	}
	if yields != res.Restarts-1 {
		t.Fatalf("%d yields for %d restarts, want one per restart after the first", yields, res.Restarts)
	}
	assertSweepIdentical(t, res, base)
}

// TestSingleShiftRealYieldAtRestartBoundaries pins the same contract on
// the real (half-size) sweep.
func TestSingleShiftRealYieldAtRestartBoundaries(t *testing.T) {
	d := make([]float64, 80)
	rng := rand.New(rand.NewSource(5))
	for i := range d {
		d[i] = -2 + 4*rng.Float64()
	}
	inv := realDiagShiftInv{d: d, tau: 0.05}
	params := SingleShiftParams{NWanted: 8, MaxDim: 12, Seed: 3, MaxRestarts: 20}
	base, err := SingleShiftReal(inv, 1.0, params)
	if err != nil {
		t.Fatal(err)
	}
	if base.Restarts < 2 {
		t.Fatalf("setup: %d restarts, no yield boundary to observe", base.Restarts)
	}
	yields := 0
	params.Yield = func() { yields++ }
	res, err := SingleShiftReal(inv, 1.0, params)
	if err != nil {
		t.Fatal(err)
	}
	if yields != res.Restarts-1 {
		t.Fatalf("%d yields for %d restarts, want one per restart after the first", yields, res.Restarts)
	}
	assertSweepIdentical(t, res, base)
}

// assertSweepIdentical requires two sweep results to be bit-identical.
func assertSweepIdentical(t *testing.T, got, want *SingleShiftResult) {
	t.Helper()
	if got.Restarts != want.Restarts || got.OpApplies != want.OpApplies {
		t.Fatalf("work counters diverged: %d/%d restarts, %d/%d applies",
			got.Restarts, want.Restarts, got.OpApplies, want.OpApplies)
	}
	if got.Radius != want.Radius {
		t.Fatalf("radius %v != %v (not bit-identical)", got.Radius, want.Radius)
	}
	if len(got.Eigenvalues) != len(want.Eigenvalues) {
		t.Fatalf("%d eigenvalues vs %d", len(got.Eigenvalues), len(want.Eigenvalues))
	}
	for i := range got.Eigenvalues {
		if got.Eigenvalues[i] != want.Eigenvalues[i] {
			t.Fatalf("eigenvalue %d: %v != %v (not bit-identical)", i, got.Eigenvalues[i], want.Eigenvalues[i])
		}
	}
}
