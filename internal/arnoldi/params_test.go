package arnoldi

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestSingleShiftParamsDefaults(t *testing.T) {
	var p SingleShiftParams
	p.setDefaults()
	if p.NWanted != 5 || p.MaxDim != 60 || p.MaxRestarts != 12 || p.Tol != 1e-9 || p.Seed != 1 {
		t.Fatalf("bad defaults: %+v", p)
	}
	p2 := SingleShiftParams{NWanted: 3, MaxDim: 20, MaxRestarts: 4, Tol: 1e-6, Seed: 9}
	p2.setDefaults()
	if p2.NWanted != 3 || p2.MaxDim != 20 || p2.MaxRestarts != 4 || p2.Tol != 1e-6 || p2.Seed != 9 {
		t.Fatalf("explicit params clobbered: %+v", p2)
	}
}

func TestSingleShiftParamsValidate(t *testing.T) {
	for _, p := range []SingleShiftParams{
		{NWanted: -1},
		{MaxDim: -5},
		{MaxRestarts: -1},
		{Tol: -1e-9},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v: negative parameter accepted", p)
		}
		rng := rand.New(rand.NewSource(1))
		inv := newDenseShiftInv(t, randomCMat(rng, 8), 0)
		if _, err := SingleShift(inv, 0.5, p); err == nil {
			t.Errorf("%+v: SingleShift ran with invalid params", p)
		}
	}
	var ok SingleShiftParams
	if err := ok.Validate(); err != nil {
		t.Fatalf("zero params rejected: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.MaxDim != 60 || c.Tol != 1e-9 || c.Rng == nil {
		t.Fatalf("bad defaults: %+v", c)
	}
}

func TestRandomStartUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 5, 100} {
		v := RandomStart(rng, n)
		if math.Abs(mat.CNorm2(v)-1) > 1e-12 {
			t.Fatalf("n=%d: norm %v", n, mat.CNorm2(v))
		}
	}
}

func TestStopEarlyTerminatesSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 40
	a := randomCMat(rng, n)
	calls := 0
	cfg := Config{
		MaxDim:     30,
		Rng:        rng,
		CheckEvery: 5,
		StopEarly: func(h *mat.CDense, hNext float64, steps int) bool {
			calls++
			return steps >= 10
		},
	}
	fac, err := Run(denseOp{a}, RandomStart(rng, n), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fac.Steps != 10 {
		t.Fatalf("Steps = %d, want early stop at 10", fac.Steps)
	}
	if calls != 2 {
		t.Fatalf("StopEarly called %d times, want 2", calls)
	}
	// The truncated factorization must still satisfy the Arnoldi relation.
	pairs, err := fac.RitzPairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		ax := a.MulVec(p.Vector)
		mat.CAxpy(-p.Value, p.Vector, ax)
		if r := mat.CNorm2(ax); math.Abs(r-p.Residual) > 1e-6*(1+r) {
			t.Fatalf("early-stopped residual estimate off: %g vs %g", p.Residual, r)
		}
	}
}

func TestLargestMagnitudeOnNormalMatrix(t *testing.T) {
	// Diagonal with one dominant entry: must find it almost exactly.
	n := 30
	d := mat.NewCDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, complex(float64(i+1), 0))
	}
	d.Set(n-1, n-1, complex(100, 50))
	rng := rand.New(rand.NewSource(3))
	got, err := LargestMagnitude(denseOp{d}, Config{MaxDim: 12, Rng: rng}, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got-complex(100, 50)) > 1e-6*cmplx.Abs(got) {
		t.Fatalf("LargestMagnitude = %v, want 100+50i", got)
	}
}

func TestSingleShiftRespectsMaxRestarts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 60
	a := randomCMat(rng, n)
	inv := newDenseShiftInv(t, a, complex(0.1, 0.1))
	res, err := SingleShift(inv, 0.5, SingleShiftParams{
		NWanted: 50, MaxDim: 8, MaxRestarts: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts > 2 {
		t.Fatalf("Restarts = %d > MaxRestarts", res.Restarts)
	}
}

func TestSingleShiftOpApplyCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	a := randomCMat(rng, n)
	inv := newDenseShiftInv(t, a, 0)
	res, err := SingleShift(inv, 0.5, SingleShiftParams{NWanted: 3, MaxDim: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.OpApplies <= 0 || res.OpApplies > res.Restarts*15 {
		t.Fatalf("implausible OpApplies=%d for %d restarts", res.OpApplies, res.Restarts)
	}
}
