// Package arnoldi implements the restarted, deflated shift-invert Arnoldi
// process of the DATE'11 paper (Sec. III): a Krylov eigensolver on the
// structured operator (M − ϑI)⁻¹ that stabilizes a small number n_ϑ of
// Hamiltonian eigenvalues closest to the shift ϑ, together with a certified
// disk radius ρ such that the returned set contains every eigenvalue in
// C_{ϑ,ρ} = {s : |s − ϑ| < ρ}.
//
// Invariants: the disk certificate is what the multi-shift scheduler's
// coverage guarantee rests on — SingleShift may shrink ρ, never report a
// radius containing unreturned eigenvalues. All randomness flows from the
// caller-provided seed (SingleShiftParams.Seed / Config.Rng), so a call is
// a pure function of (operator, parameters): repeated runs are
// bit-identical, which the pool scheduler depends on.
//
// Concurrency: the package holds no global state. Each SingleShift /
// LargestMagnitude call owns its operator, workspace and RNG for the
// duration of the call; concurrent calls are safe as long as they use
// distinct Operator instances (core's pool runs one shift per worker).
package arnoldi

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/mat"
)

// Operator is a linear operator on C^dim. Apply computes y = Op·x; x and y
// are distinct slices of length Dim().
type Operator interface {
	Dim() int
	Apply(y, x []complex128) error
}

// RitzPair is one approximate eigenpair of the operator.
type RitzPair struct {
	Value    complex128 // Ritz value μ
	Residual float64    // ‖Op·x − μ·x‖ estimate (|h_{d+1,d}·y_d|)
	Vector   []complex128
}

// Config controls one Arnoldi factorization sweep.
type Config struct {
	// MaxDim is the Krylov subspace dimension d (paper: 60).
	MaxDim int
	// Tol is the relative residual threshold for Ritz convergence.
	Tol float64
	// Rng drives the random start vectors; must not be shared across
	// goroutines.
	Rng *rand.Rand
	// CheckEvery, when positive, evaluates StopEarly every CheckEvery
	// steps so a sweep can end as soon as the caller has what it needs
	// (the projected problem is tiny compared to the basis updates).
	CheckEvery int
	// StopEarly receives the current projected Hessenberg matrix, the
	// next-vector coupling h_{j+1,j}, and the step count; returning true
	// terminates the sweep at that dimension.
	StopEarly func(h *mat.CDense, hNext float64, steps int) bool
}

func (c *Config) setDefaults() {
	if c.MaxDim == 0 {
		c.MaxDim = 60
	}
	if c.Tol == 0 {
		c.Tol = 1e-9
	}
	if c.Rng == nil {
		c.Rng = rand.New(rand.NewSource(1))
	}
}

// ErrBreakdownEmpty is returned when the start vector lies entirely in the
// locked subspace and no Krylov direction remains.
var ErrBreakdownEmpty = errors.New("arnoldi: start vector fully deflated")

// Factorization holds the result of one Arnoldi sweep: an orthonormal basis
// V of the Krylov space (deflated against the locked vectors), the
// projected Hessenberg matrix H (dim steps×steps), the next-vector coupling
// hNext = h_{d+1,d}, and whether an invariant subspace was hit (lucky
// breakdown: the Ritz values are then exact for the deflated operator).
type Factorization struct {
	Steps     int
	V         [][]complex128
	H         *mat.CDense
	HNext     float64
	Invariant bool
	OpApplies int
}

// Run performs one Arnoldi factorization of op with the given start vector,
// orthogonalizing every basis vector against locked (modified Gram-Schmidt
// with one reorthogonalization pass).
func Run(op Operator, start []complex128, locked [][]complex128, cfg Config) (*Factorization, error) {
	cfg.setDefaults()
	n := op.Dim()
	if len(start) != n {
		panic(fmt.Sprintf("arnoldi: start vector length %d, want %d", len(start), n))
	}
	d := cfg.MaxDim
	if lim := n - len(locked); d > lim {
		d = lim
	}
	if d <= 0 {
		return nil, ErrBreakdownEmpty
	}
	v0 := mat.CCopy(start)
	orthogonalize(v0, locked)
	nrm := mat.CNorm2(v0)
	if nrm < 1e-300 {
		return nil, ErrBreakdownEmpty
	}
	mat.CScaleVec(complex(1/nrm, 0), v0)

	v := make([][]complex128, 0, d+1)
	v = append(v, v0)
	h := mat.NewCDense(d, d)
	w := make([]complex128, n)
	fac := &Factorization{}
	for j := 0; j < d; j++ {
		if err := op.Apply(w, v[j]); err != nil {
			return nil, err
		}
		fac.OpApplies++
		wNormBefore := mat.CNorm2(w)
		// Deflate against locked, then MGS against the basis (fused
		// project-and-subtract kernel).
		orthogonalize(w, locked)
		for i := 0; i <= j; i++ {
			h.Set(i, j, mat.CProjSub(v[i], w))
		}
		// Selective reorthogonalization (Kahan–Parlett "twice is enough"
		// criterion): a second pass is only needed when cancellation ate a
		// substantial part of the vector.
		if mat.CNorm2(w) < 0.5*wNormBefore {
			orthogonalize(w, locked)
			for i := 0; i <= j; i++ {
				c := mat.CProjSub(v[i], w)
				h.Set(i, j, h.At(i, j)+c)
			}
		}
		hn := mat.CNorm2(w)
		fac.Steps = j + 1
		// Relative breakdown test against the column norm of H.
		var colScale float64
		for i := 0; i <= j; i++ {
			colScale += cmplx.Abs(h.At(i, j))
		}
		if hn <= 1e-12*(colScale+1e-300) {
			fac.Invariant = true
			fac.HNext = 0
			break
		}
		fac.HNext = hn
		// Periodic early-exit check on the projected problem.
		if cfg.StopEarly != nil && cfg.CheckEvery > 0 && (j+1)%cfg.CheckEvery == 0 && j+1 < d {
			k := j + 1
			hk := mat.NewCDense(k, k)
			for a := 0; a < k; a++ {
				for b := 0; b < k; b++ {
					hk.Set(a, b, h.At(a, b))
				}
			}
			if cfg.StopEarly(hk, hn, k) {
				next := mat.CCopy(w)
				mat.CScaleVec(complex(1/hn, 0), next)
				v = append(v, next)
				break
			}
		}
		if j+1 < d {
			h.Set(j+1, j, complex(hn, 0))
		}
		next := mat.CCopy(w)
		mat.CScaleVec(complex(1/hn, 0), next)
		v = append(v, next)
	}
	fac.V = v
	// Trim H to the achieved size.
	k := fac.Steps
	hk := mat.NewCDense(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			hk.Set(i, j, h.At(i, j))
		}
	}
	fac.H = hk
	return fac, nil
}

// RitzPairs extracts the Ritz pairs of the factorization: eigenpairs of the
// projected H lifted back through the basis.
func (f *Factorization) RitzPairs() ([]RitzPair, error) {
	k := f.Steps
	if k == 0 {
		return nil, nil
	}
	vals, vecs, err := mat.CEig(f.H)
	if err != nil {
		return nil, err
	}
	n := len(f.V[0])
	out := make([]RitzPair, k)
	for idx := 0; idx < k; idx++ {
		y := make([]complex128, k)
		for i := 0; i < k; i++ {
			y[i] = vecs.At(i, idx)
		}
		res := f.HNext * cmplx.Abs(y[k-1])
		if f.Invariant {
			res = 0
		}
		x := make([]complex128, n)
		for i := 0; i < k; i++ {
			mat.CAxpy(y[i], f.V[i], x)
		}
		out[idx] = RitzPair{Value: vals[idx], Residual: res, Vector: x}
	}
	return out, nil
}

// orthogonalize removes the components of w along each (unit) vector in q.
func orthogonalize(w []complex128, q [][]complex128) {
	for _, u := range q {
		mat.CProjSub(u, w)
	}
}

// newRng builds a deterministic source for restart vectors.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RandomStart fills a deterministic random complex unit vector.
func RandomStart(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	nrm := mat.CNorm2(v)
	if nrm > 0 {
		mat.CScaleVec(complex(1/nrm, 0), v)
	}
	return v
}

// LargestMagnitude estimates the largest-modulus eigenvalue of op by a
// restarted Arnoldi iteration on op itself (no inversion). Used to obtain
// the search bound ω_max (paper Sec. IV-A). relTol is the relative change
// threshold between restarts.
func LargestMagnitude(op Operator, cfg Config, restarts int, relTol float64) (complex128, error) {
	cfg.setDefaults()
	if restarts <= 0 {
		restarts = 6
	}
	if relTol == 0 {
		relTol = 1e-6
	}
	var best complex128
	start := RandomStart(cfg.Rng, op.Dim())
	for r := 0; r < restarts; r++ {
		fac, err := Run(op, start, nil, cfg)
		if err != nil {
			return 0, err
		}
		pairs, err := fac.RitzPairs()
		if err != nil {
			return 0, err
		}
		var top RitzPair
		for _, p := range pairs {
			if cmplx.Abs(p.Value) > cmplx.Abs(top.Value) {
				top = p
			}
		}
		if top.Vector == nil {
			return 0, errors.New("arnoldi: no Ritz pairs extracted")
		}
		if r > 0 && math.Abs(cmplx.Abs(top.Value)-cmplx.Abs(best)) <= relTol*cmplx.Abs(top.Value) {
			return top.Value, nil
		}
		best = top.Value
		start = top.Vector // restart in the dominant direction
		if fac.Invariant {
			break
		}
	}
	return best, nil
}
