package arnoldi

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/mat"
)

// SingleShiftParams configures the S(ϑ, ρ₀) iteration (paper Sec. III).
type SingleShiftParams struct {
	// NWanted is n_ϑ, the number of eigenvalues stabilized per shift
	// (paper: 4–6). Default 5.
	NWanted int
	// MaxDim is the Krylov dimension d (paper: 60).
	MaxDim int
	// MaxRestarts bounds the number of explicit restarts. Default 12.
	MaxRestarts int
	// Tol is the relative Ritz residual convergence threshold.
	Tol float64
	// Seed drives the random restart vectors of this shift.
	Seed int64
	// Yield, when non-nil, is called at the top of every restart sweep
	// after the first — the sweep's natural checkpoint boundary. It is a
	// cooperative preemption point: the multi-shift scheduler uses it to
	// let a long batch-class shift execute queued interactive-class tasks
	// mid-shift instead of holding a worker until the shift completes. The
	// callback must not mutate solver state; it only borrows the calling
	// goroutine, so the iteration resumes bit-identically when it returns.
	Yield func()
}

// Validate rejects negative parameter values, which setDefaults would pass
// through and which silently break the iteration (a negative NWanted makes
// every certification count trivially satisfied, a negative MaxDim runs
// zero Arnoldi steps, a negative Tol never converges anything).
func (p *SingleShiftParams) Validate() error {
	switch {
	case p.NWanted < 0:
		return fmt.Errorf("arnoldi: NWanted must be ≥ 0, got %d", p.NWanted)
	case p.MaxDim < 0:
		return fmt.Errorf("arnoldi: MaxDim must be ≥ 0, got %d", p.MaxDim)
	case p.MaxRestarts < 0:
		return fmt.Errorf("arnoldi: MaxRestarts must be ≥ 0, got %d", p.MaxRestarts)
	case !(p.Tol >= 0) || math.IsInf(p.Tol, 1):
		// !(x ≥ 0) also catches NaN, which every plain comparison passes.
		return fmt.Errorf("arnoldi: Tol must be finite and ≥ 0, got %g", p.Tol)
	}
	return nil
}

func (p *SingleShiftParams) setDefaults() {
	if p.NWanted == 0 {
		p.NWanted = 5
	}
	if p.MaxDim == 0 {
		p.MaxDim = 60
	}
	if p.MaxRestarts == 0 {
		p.MaxRestarts = 12
	}
	if p.Tol == 0 {
		p.Tol = 1e-9
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// SingleShiftResult is the output of the S operator: the complete set of
// eigenvalues inside the certified disk C_{ϑ,ρ}, the final radius ρ
// (which may be larger or smaller than ρ₀), and work counters.
type SingleShiftResult struct {
	Theta       complex128
	Eigenvalues []complex128 // all eigenvalues with |λ−ϑ| < Radius
	// ResidualsM[i] is ‖M·x − λ_i·x‖ for the returned eigenpair, measured
	// on the ORIGINAL operator when the ShiftInverter exposes it (see
	// BaseOperator); 0 when unavailable. Callers use it as the error bar
	// of Eigenvalues[i] — shift-invert Ritz residuals certify μ, not λ,
	// and badly conditioned eigenvalues can be off by orders of magnitude
	// more than the μ tolerance suggests.
	ResidualsM []float64
	Radius     float64
	Restarts   int
	OpApplies  int
	// Exhausted reports that the Krylov process resolved an invariant
	// subspace containing the full reachable spectrum near the shift.
	Exhausted bool
}

// ShiftInverter abstracts the per-shift factored operator (M − ϑI)⁻¹
// (hamiltonian.ShiftOp satisfies it via an adapter in the caller).
type ShiftInverter interface {
	Operator
	Theta() complex128
}

// BaseOperator is optionally implemented by a ShiftInverter that can also
// apply the original (non-inverted) operator M; SingleShift then reports
// per-eigenvalue residuals in M.
type BaseOperator interface {
	ApplyBase(y, x []complex128) error
}

// SingleShift runs the restarted, deflated shift-invert Arnoldi iteration
// around ϑ = inv.Theta() and returns ({λ_k}, ρ) per the paper's S operator:
//
//   - eigenvalues are stabilized in order of proximity to ϑ;
//   - if more than NWanted stabilize inside the current disk, the radius is
//     reduced to enclose exactly NWanted and the rest are discarded;
//   - if some of the NWanted stabilized eigenvalues fall outside ρ₀, the
//     radius grows to the largest converged distance;
//   - the certified radius never exceeds a safety fraction of the distance
//     to the nearest unconverged Ritz estimate, so that the returned set is
//     complete within C_{ϑ,ρ}.
func SingleShift(inv ShiftInverter, rho0 float64, params SingleShiftParams) (*SingleShiftResult, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	params.setDefaults()
	theta := inv.Theta()
	res := &SingleShiftResult{Theta: theta, Radius: rho0}
	cfg := Config{MaxDim: params.MaxDim, Tol: params.Tol, Rng: newRng(params.Seed)}

	type conv struct {
		lambda complex128
		dist   float64
		residM float64
	}
	var converged []conv
	var locked [][]complex128
	// dedupTol is relative to the local frequency scale.
	scale := cmplx.Abs(theta) + rho0
	if scale == 0 {
		scale = 1
	}
	dedupTol := 1e-7 * scale

	minUnconv := math.Inf(1)
	stagnant := 0
	var warmStart []complex128
	for restart := 0; restart < params.MaxRestarts; restart++ {
		if params.Yield != nil && restart > 0 {
			params.Yield()
		}
		res.Restarts++
		start := RandomStart(cfg.Rng, inv.Dim())
		if warmStart != nil {
			// Explicit restart toward the closest unconverged Ritz vector,
			// with a small random component to escape invariant traps.
			for i := range start {
				start[i] = warmStart[i] + 0.02*start[i]
			}
		}
		// Early within-sweep exit: most of the sweep cost is basis
		// orthogonalization, so stop as soon as the projected problem
		// certifies NWanted eigenvalues (or certifies the initial disk
		// empty once the subspace is rich enough).
		convDists := make([]float64, len(converged))
		for i, c := range converged {
			convDists[i] = c.dist
		}
		cfg.CheckEvery = 10
		cfg.StopEarly = func(h *mat.CDense, hNext float64, steps int) bool {
			vals, vecs, err := mat.CEig(h)
			if err != nil {
				return false
			}
			minU := math.Inf(1)
			var newConv []float64
			for idx, mu := range vals {
				if mu == 0 {
					continue
				}
				dist := 1 / cmplx.Abs(mu)
				resid := hNext * cmplx.Abs(vecs.At(steps-1, idx))
				if resid <= params.Tol*cmplx.Abs(mu) {
					newConv = append(newConv, dist)
				} else if dist < minU {
					minU = dist
				}
			}
			certNow := 0.9 * minU
			count := 0
			for _, d := range convDists {
				if d < certNow {
					count++
				}
			}
			for _, d := range newConv {
				if d < certNow {
					count++
				}
			}
			if count >= params.NWanted {
				return true
			}
			// Emptiness certification needs a richer subspace before the
			// unconverged Ritz estimates can be trusted.
			return steps >= 30 && certNow >= 1.05*rho0
		}
		fac, err := Run(inv, start, locked, cfg)
		if err == ErrBreakdownEmpty {
			res.Exhausted = true
			break
		}
		if err != nil {
			return nil, err
		}
		res.OpApplies += fac.OpApplies
		pairs, err := fac.RitzPairs()
		if err != nil {
			return nil, err
		}
		minUnconv = math.Inf(1)
		newConv := 0
		ghosts := 0
		warmStart = nil
		for _, p := range pairs {
			if p.Value == 0 {
				continue
			}
			lambda := theta + 1/p.Value
			dist := 1 / cmplx.Abs(p.Value)
			if p.Residual <= params.Tol*cmplx.Abs(p.Value) {
				dup := false
				for _, c := range converged {
					if cmplx.Abs(c.lambda-lambda) <= dedupTol {
						dup = true
						break
					}
				}
				// Lock the vector either way: a duplicate is a numerical
				// "ghost" of an already-locked direction (the locked Ritz
				// vector is only tol-accurate); purging it keeps later
				// sweeps exploring fresh directions.
				locked = append(locked, normalized(p.Vector))
				if !dup {
					converged = append(converged, conv{
						lambda: lambda,
						dist:   dist,
						residM: baseResidual(inv, lambda, p.Vector),
					})
					newConv++
				} else {
					ghosts++
				}
				continue
			}
			if dist < minUnconv {
				minUnconv = dist
				warmStart = p.Vector
			}
		}
		if fac.Invariant && newConv == 0 {
			res.Exhausted = true
			break
		}
		if newConv == 0 && ghosts == 0 {
			stagnant++
			if stagnant >= 3 {
				break
			}
		} else {
			stagnant = 0
		}
		// Early exit uses the same certification rule as the final radius:
		// only eigenvalues closer than 0.9× the nearest unconverged Ritz
		// estimate are certifiable. Stop when NWanted of them are, or when
		// the certifiable region already covers the whole initial disk.
		certNow := 0.9 * minUnconv
		certCount := 0
		for _, c := range converged {
			if c.dist < certNow {
				certCount++
			}
		}
		if certCount >= params.NWanted {
			break
		}
		if restart >= 1 && certNow >= rho0 {
			break
		}
	}

	sort.Slice(converged, func(i, j int) bool { return converged[i].dist < converged[j].dist })

	// Certified radius: nothing unconverged may hide inside the disk.
	certified := math.Inf(1)
	if !math.IsInf(minUnconv, 1) {
		certified = 0.9 * minUnconv
	}
	if res.Exhausted && math.IsInf(certified, 1) {
		// Entire reachable spectrum resolved: certify everything seen.
		certified = math.Inf(1)
	}

	rho := rho0
	nw := params.NWanted
	if len(converged) > nw {
		// Shrink: enclose exactly NWanted, midway to the next one out.
		rho = 0.5 * (converged[nw-1].dist + converged[nw].dist)
	} else if len(converged) > 0 {
		// Grow to the farthest converged eigenvalue (paper rule), bounded
		// by certification.
		far := converged[len(converged)-1].dist
		if far > rho {
			rho = far * (1 + 1e-9)
		}
	}
	if rho > certified {
		rho = certified
	}
	if math.IsInf(rho, 1) {
		// Fully resolved spectrum: choose a radius covering all converged.
		if len(converged) > 0 {
			rho = converged[len(converged)-1].dist * (1 + 1e-9)
			if rho < rho0 {
				rho = rho0
			}
		} else {
			rho = rho0
		}
	}
	for _, c := range converged {
		if c.dist <= rho {
			res.Eigenvalues = append(res.Eigenvalues, c.lambda)
			res.ResidualsM = append(res.ResidualsM, c.residM)
		}
	}
	res.Radius = rho
	return res, nil
}

// baseResidual computes ‖M·x − λ·x‖ when the inverter can apply M; x must
// have unit norm. Returns 0 when the base operator is unavailable.
func baseResidual(inv ShiftInverter, lambda complex128, x []complex128) float64 {
	bo, ok := inv.(BaseOperator)
	if !ok {
		return 0
	}
	y := make([]complex128, len(x))
	if err := bo.ApplyBase(y, x); err != nil {
		return 0
	}
	mat.CAxpy(-lambda, x, y)
	return mat.CNorm2(y)
}

func normalized(v []complex128) []complex128 {
	out := make([]complex128, len(v))
	copy(out, v)
	var ss float64
	for _, z := range out {
		ss += real(z)*real(z) + imag(z)*imag(z)
	}
	n := math.Sqrt(ss)
	if n > 0 {
		inv := complex(1/n, 0)
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}
