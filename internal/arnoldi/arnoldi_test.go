package arnoldi

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// denseOp wraps a dense complex matrix as an Operator.
type denseOp struct{ m *mat.CDense }

func (d denseOp) Dim() int { return d.m.Rows }
func (d denseOp) Apply(y, x []complex128) error {
	copy(y, d.m.MulVec(x))
	return nil
}

// denseShiftInv is a dense (A − θI)⁻¹ used as a reference ShiftInverter.
type denseShiftInv struct {
	f     *mat.CLU
	theta complex128
	n     int
}

func newDenseShiftInv(t *testing.T, a *mat.CDense, theta complex128) *denseShiftInv {
	t.Helper()
	s := a.Clone()
	for i := 0; i < a.Rows; i++ {
		s.Set(i, i, s.At(i, i)-theta)
	}
	f, err := mat.CLUFactor(s)
	if err != nil {
		t.Fatal(err)
	}
	return &denseShiftInv{f: f, theta: theta, n: a.Rows}
}

func (d *denseShiftInv) Dim() int          { return d.n }
func (d *denseShiftInv) Theta() complex128 { return d.theta }
func (d *denseShiftInv) Apply(y, x []complex128) error {
	d.f.SolveInto(y, x)
	return nil
}

func randomCMat(rng *rand.Rand, n int) *mat.CDense {
	a := mat.NewCDense(n, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

func TestArnoldiRelationAndOrthonormality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 30
	a := randomCMat(rng, n)
	op := denseOp{a}
	cfg := Config{MaxDim: 12, Rng: rng}
	fac, err := Run(op, RandomStart(rng, n), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := fac.Steps
	if k != 12 {
		t.Fatalf("Steps = %d, want 12", k)
	}
	// Orthonormality.
	for i := 0; i <= k; i++ {
		for j := 0; j <= k; j++ {
			if i >= len(fac.V) || j >= len(fac.V) {
				continue
			}
			d := mat.CDot(fac.V[i], fac.V[j])
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(d-want) > 1e-10 {
				t.Fatalf("V not orthonormal at (%d,%d): %v", i, j, d)
			}
		}
	}
	// Arnoldi relation A·v_j = Σ_i h_ij v_i + h_{j+1,j} v_{j+1} for j<k-1,
	// and with HNext for the last column.
	for j := 0; j < k; j++ {
		av := a.MulVec(fac.V[j])
		for i := 0; i < k; i++ {
			mat.CAxpy(-fac.H.At(i, j), fac.V[i], av)
		}
		if j < k-1 {
			// Residual must vanish (the H subdiagonal term).
			if r := mat.CNorm2(av); r > 1e-9*(1+a.FrobNorm()) {
				t.Fatalf("Arnoldi relation violated in column %d: %g", j, r)
			}
		} else {
			if len(fac.V) > k {
				mat.CAxpy(-complex(fac.HNext, 0), fac.V[k], av)
			}
			if r := mat.CNorm2(av); r > 1e-9*(1+a.FrobNorm()) {
				t.Fatalf("Arnoldi relation violated in last column: %g", r)
			}
		}
	}
}

func TestFullDimensionRecoverASpectrum(t *testing.T) {
	// d = n: Ritz values must be the exact eigenvalues.
	rng := rand.New(rand.NewSource(2))
	n := 10
	a := randomCMat(rng, n)
	fac, err := Run(denseOp{a}, RandomStart(rng, n), nil, Config{MaxDim: n, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := fac.RitzPairs()
	if err != nil {
		t.Fatal(err)
	}
	want, err := mat.CEigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, len(pairs))
	for i, p := range pairs {
		got[i] = p.Value
	}
	sortC := func(v []complex128) {
		sort.Slice(v, func(i, j int) bool {
			if real(v[i]) != real(v[j]) {
				return real(v[i]) < real(v[j])
			}
			return imag(v[i]) < imag(v[j])
		})
	}
	sortC(got)
	sortC(want)
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-7*(1+cmplx.Abs(want[i])) {
			t.Fatalf("Ritz %v vs eig %v", got[i], want[i])
		}
	}
}

func TestRitzResidualEstimateIsAccurate(t *testing.T) {
	// The cheap |h_{d+1,d} y_d| estimate must match the true residual
	// ‖A x − μ x‖ for each Ritz pair.
	rng := rand.New(rand.NewSource(3))
	n := 40
	a := randomCMat(rng, n)
	fac, err := Run(denseOp{a}, RandomStart(rng, n), nil, Config{MaxDim: 15, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := fac.RitzPairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		ax := a.MulVec(p.Vector)
		mat.CAxpy(-p.Value, p.Vector, ax)
		truth := mat.CNorm2(ax)
		if math.Abs(truth-p.Residual) > 1e-6*(1+truth) {
			t.Fatalf("residual estimate %g, true %g", p.Residual, truth)
		}
	}
}

func TestDeflationLockedDirectionsExcluded(t *testing.T) {
	// Lock an exact eigenvector; the restarted process must not
	// re-converge to its eigenvalue.
	rng := rand.New(rand.NewSource(4))
	n := 8
	d := mat.NewCDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, complex(float64(i+1), 0))
	}
	// Eigenvector of eigenvalue 1 is e_0.
	locked := [][]complex128{make([]complex128, n)}
	locked[0][0] = 1
	fac, err := Run(denseOp{d}, RandomStart(rng, n), locked, Config{MaxDim: n - 1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := fac.RitzPairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if cmplx.Abs(p.Value-1) < 1e-6 {
			t.Fatalf("deflated eigenvalue 1 reappeared: %v", p.Value)
		}
	}
}

func TestBreakdownOnInvariantSubspace(t *testing.T) {
	// Start vector inside a 2-dimensional invariant subspace: the process
	// must stop early and flag Invariant with exact Ritz values.
	n := 6
	d := mat.NewCDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, complex(float64(i+1), 0))
	}
	start := make([]complex128, n)
	start[0] = 1
	start[1] = 1
	fac, err := Run(denseOp{d}, start, nil, Config{MaxDim: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !fac.Invariant || fac.Steps != 2 {
		t.Fatalf("Invariant=%v Steps=%d, want true/2", fac.Invariant, fac.Steps)
	}
	pairs, err := fac.RitzPairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.Residual != 0 {
			t.Fatalf("invariant Ritz pair with nonzero residual")
		}
		if cmplx.Abs(p.Value-1) > 1e-10 && cmplx.Abs(p.Value-2) > 1e-10 {
			t.Fatalf("unexpected Ritz value %v", p.Value)
		}
	}
}

func TestFullyDeflatedStart(t *testing.T) {
	n := 3
	locked := make([][]complex128, n)
	for i := range locked {
		locked[i] = make([]complex128, n)
		locked[i][i] = 1
	}
	_, err := Run(denseOp{mat.CEye(n)}, []complex128{1, 1, 1}, locked, Config{MaxDim: 2})
	if err != ErrBreakdownEmpty {
		t.Fatalf("expected ErrBreakdownEmpty, got %v", err)
	}
}

func TestLargestMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 50
	a := randomCMat(rng, n)
	want, err := mat.CEigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	var wantMax float64
	for _, v := range want {
		if m := cmplx.Abs(v); m > wantMax {
			wantMax = m
		}
	}
	got, err := LargestMagnitude(denseOp{a}, Config{MaxDim: 25, Rng: rng}, 8, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmplx.Abs(got)-wantMax) > 1e-5*wantMax {
		t.Fatalf("LargestMagnitude |λ| = %g, want %g", cmplx.Abs(got), wantMax)
	}
}

func TestSingleShiftFindsClosestEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 40
	a := randomCMat(rng, n)
	theta := complex(0.3, -0.2)
	inv := newDenseShiftInv(t, a, theta)
	res, err := SingleShift(inv, 0.5, SingleShiftParams{NWanted: 4, MaxDim: 25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: all eigenvalues sorted by distance from theta.
	all, err := mat.CEigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(all, func(i, j int) bool {
		return cmplx.Abs(all[i]-theta) < cmplx.Abs(all[j]-theta)
	})
	// Completeness within the certified disk: every true eigenvalue with
	// |λ−θ| < Radius must appear in the result.
	for _, v := range all {
		if cmplx.Abs(v-theta) >= res.Radius {
			continue
		}
		found := false
		for _, g := range res.Eigenvalues {
			if cmplx.Abs(g-v) < 1e-6 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("true eigenvalue %v (dist %g) inside certified disk ρ=%g missing",
				v, cmplx.Abs(v-theta), res.Radius)
		}
	}
	// Soundness: every returned eigenvalue is a true eigenvalue.
	for _, g := range res.Eigenvalues {
		best := math.Inf(1)
		for _, v := range all {
			if d := cmplx.Abs(g - v); d < best {
				best = d
			}
		}
		if best > 1e-6 {
			t.Fatalf("returned eigenvalue %v is not in the spectrum (dist %g)", g, best)
		}
	}
	if len(res.Eigenvalues) == 0 {
		t.Fatal("no eigenvalues returned for a dense random matrix")
	}
}

func TestSingleShiftRadiusShrinksWithManyEigenvalues(t *testing.T) {
	// 100 eigenvalues uniformly in a ring around the shift: asking for 4
	// must shrink the radius below the initial one.
	n := 100
	d := mat.NewCDense(n, n)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < n; i++ {
		ang := rng.Float64() * 2 * math.Pi
		r := 0.1 + 0.9*rng.Float64()
		d.Set(i, i, cmplx.Rect(r, ang))
	}
	inv := newDenseShiftInv(t, d, 0)
	res, err := SingleShift(inv, 1.0, SingleShiftParams{NWanted: 4, MaxDim: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius >= 1.0 {
		t.Fatalf("radius %g did not shrink below 1.0 with 100 enclosed eigenvalues", res.Radius)
	}
	if len(res.Eigenvalues) < 4 {
		t.Fatalf("returned %d eigenvalues, want ≥ 4", len(res.Eigenvalues))
	}
}

func TestSingleShiftEmptyDisk(t *testing.T) {
	// Spectrum far away from the shift: the result must be empty and the
	// certified radius must not reach the nearest eigenvalue.
	n := 20
	d := mat.NewCDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, complex(10+float64(i), 0))
	}
	inv := newDenseShiftInv(t, d, complex(0, 0))
	res, err := SingleShift(inv, 1.0, SingleShiftParams{NWanted: 4, MaxDim: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Eigenvalues {
		if cmplx.Abs(g) < 10-1e-6 {
			t.Fatalf("phantom eigenvalue %v", g)
		}
	}
	if res.Radius < 1.0 {
		t.Fatalf("radius %g shrank although the disk is empty", res.Radius)
	}
}

func TestSingleShiftExhaustsSmallSpectrum(t *testing.T) {
	// n smaller than the Krylov budget: everything converges; the radius
	// should certify the full spectrum (Exhausted or large radius).
	n := 6
	d := mat.NewCDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, complex(float64(i), float64(i)))
	}
	inv := newDenseShiftInv(t, d, complex(-1, -1))
	res, err := SingleShift(inv, 20, SingleShiftParams{NWanted: 10, MaxDim: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Eigenvalues) != n {
		t.Fatalf("returned %d eigenvalues, want %d", len(res.Eigenvalues), n)
	}
}

func TestArnoldiBasisOrthonormalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		dim := 3 + rng.Intn(7)
		a := randomCMat(rng, n)
		fac, err := Run(denseOp{a}, RandomStart(rng, n), nil, Config{MaxDim: dim, Rng: rng})
		if err != nil {
			return false
		}
		for i := range fac.V {
			for j := range fac.V {
				d := mat.CDot(fac.V[i], fac.V[j])
				want := complex128(0)
				if i == j {
					want = 1
				}
				if cmplx.Abs(d-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
