package passivity

import (
	"testing"

	"repro/internal/arnoldi"
	"repro/internal/core"
)

// reportsBitIdentical fails the test unless the two reports agree bit for
// bit on every field that characterization computes.
func reportsBitIdentical(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if got.Passive != want.Passive {
		t.Fatalf("%s: Passive %v != %v", label, got.Passive, want.Passive)
	}
	if got.OmegaMax != want.OmegaMax {
		t.Fatalf("%s: OmegaMax %v != %v", label, got.OmegaMax, want.OmegaMax)
	}
	if len(got.Crossings) != len(want.Crossings) {
		t.Fatalf("%s: %d crossings != %d: %v vs %v",
			label, len(got.Crossings), len(want.Crossings), got.Crossings, want.Crossings)
	}
	for i := range got.Crossings {
		if got.Crossings[i] != want.Crossings[i] {
			t.Fatalf("%s: crossing %d: %v != %v (bit-identity)", label, i, got.Crossings[i], want.Crossings[i])
		}
	}
	if len(got.Bands) != len(want.Bands) {
		t.Fatalf("%s: %d bands != %d", label, len(got.Bands), len(want.Bands))
	}
	for i := range got.Bands {
		if got.Bands[i] != want.Bands[i] {
			t.Fatalf("%s: band %d: %+v != %+v (bit-identity)", label, i, got.Bands[i], want.Bands[i])
		}
	}
}

// TestCharacterizeCacheInvariant is the ISSUE's headline acceptance test at
// package scope: the shift-factorization cache (disabled / default / a
// pathological capacity-1 LRU) and the worker count must have NO effect on
// the report — the cache only skips redundant factorization work.
func TestCharacterizeCacheInvariant(t *testing.T) {
	m := genModel(t, 42, 26, 1.06)
	var want *Report
	for _, cacheSize := range []int{-1, 0, 1} {
		for _, threads := range []int{1, 2, 8} {
			rep, err := Characterize(m, Options{Core: core.Options{
				Threads: threads, Seed: 11,
				Arnoldi:        arnoldi.SingleShiftParams{NWanted: 4, MaxDim: 40},
				ShiftCacheSize: cacheSize,
			}})
			if err != nil {
				t.Fatalf("cache=%d threads=%d: %v", cacheSize, threads, err)
			}
			if want == nil {
				want = rep
				if rep.Passive {
					t.Fatal("construction drifted: reference model is passive, test would be vacuous")
				}
				continue
			}
			label := "cache=" + itoa(cacheSize) + " threads=" + itoa(threads)
			reportsBitIdentical(t, label, rep, want)
		}
	}
}

// TestCharacterizeMultiShiftBatchInvariant: the batched prefactor pass is a
// warm-up only — any chunk size (including disabled) yields the same report.
func TestCharacterizeMultiShiftBatchInvariant(t *testing.T) {
	m := genModel(t, 43, 24, 1.05)
	var want *Report
	for _, batch := range []int{-1, 1, 4, 64} {
		rep, err := Characterize(m, Options{Core: core.Options{
			Threads: 2, Seed: 11,
			Arnoldi:         arnoldi.SingleShiftParams{NWanted: 4, MaxDim: 40},
			MultiShiftBatch: batch,
		}})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if want == nil {
			want = rep
			continue
		}
		reportsBitIdentical(t, "batch="+itoa(batch), rep, want)
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}
