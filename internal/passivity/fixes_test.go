package passivity

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
)

// probeClient provides a small worker pool for driving classifyBands
// directly (production callers pass the characterization's pool client).
func probeClient(t *testing.T) *core.Client {
	t.Helper()
	p := core.NewPool(2)
	t.Cleanup(p.Close)
	return p.NewClient(core.ClientOptions{})
}

// TestClassifyBandsClampsTerminalProbe: with a crossing near the certified
// search bound, the terminal band's probe window (previously 2·lo) must be
// clamped to omegaMax instead of sampling frequencies the Hamiltonian test
// never certified.
func TestClassifyBandsClampsTerminalProbe(t *testing.T) {
	m := genModel(t, 57, 20, 1.05)
	omegaMax := 3 * m.MaxPoleMagnitude()
	// Synthetic crossing at 90% of the bound: 2·lo would overshoot by 80%.
	crossing := 0.9 * omegaMax
	bands, err := classifyBands(context.Background(), probeClient(t), m, []float64{crossing}, omegaMax, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 2 {
		t.Fatalf("%d bands, want 2", len(bands))
	}
	term := bands[1]
	if !math.IsInf(term.Hi, 1) {
		t.Fatal("terminal band must extend to +Inf")
	}
	if term.PeakOmega > omegaMax {
		t.Fatalf("terminal probe escaped the certified bound: peak ω %g > ω_max %g",
			term.PeakOmega, omegaMax)
	}
	if term.PeakOmega <= crossing {
		t.Fatalf("terminal probe did not search past the crossing: peak ω %g", term.PeakOmega)
	}
}

// TestClassifyBandsCrossingAtBound: the degenerate case — a crossing at the
// bound itself — must classify via a thin sliver instead of erroring out.
func TestClassifyBandsCrossingAtBound(t *testing.T) {
	m := genModel(t, 58, 16, 1.03)
	omegaMax := 2 * m.MaxPoleMagnitude()
	bands, err := classifyBands(context.Background(), probeClient(t), m, []float64{omegaMax}, omegaMax, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	term := bands[len(bands)-1]
	if term.PeakOmega < omegaMax || term.PeakOmega > omegaMax*(1+2e-6) {
		t.Fatalf("sliver probe at %g outside [ω_max, ω_max·(1+2e-6)]", term.PeakOmega)
	}
}

// TestEnforceFailureReturnsPartialModel: when the iteration budget runs out
// the partially-enforced model and the last characterization must come back
// with the error — previously both were discarded and a full extra
// characterization ran just to format the message.
func TestEnforceFailureReturnsPartialModel(t *testing.T) {
	m := genModel(t, 46, 22, 1.30)
	work, rep, err := Enforce(m, EnforceOptions{Char: charOpts(), MaxIters: 1})
	if err == nil {
		t.Skip("enforcement converged in one pass")
	}
	if !errors.Is(err, ErrEnforcementFailed) {
		t.Fatalf("want ErrEnforcementFailed, got %v", err)
	}
	if work == nil {
		t.Fatal("partial model discarded on failure")
	}
	if rep == nil || rep.FinalReport == nil {
		t.Fatal("report discarded on failure")
	}
	if rep.Iterations != 1 {
		t.Fatalf("Iterations = %d, want the exhausted budget 1", rep.Iterations)
	}
	if rep.FinalWorst <= 1 {
		t.Fatalf("failed run reports FinalWorst %g ≤ 1", rep.FinalWorst)
	}
	// The partial model must actually be perturbed (progress was made).
	same := true
	for k := range m.Cols {
		if !work.Cols[k].C.Equalish(m.Cols[k].C, 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("partial model identical to input: no perturbation applied")
	}
	if rep.SolverTotals.ShiftsProcessed == 0 {
		t.Fatal("SolverTotals not accumulated")
	}
}

// TestEnforceAccumulatesSolverTotals: SolverTotals must cover every
// characterization of a successful run (≥ the final report's own stats,
// and > them when more than one iteration ran).
func TestEnforceAccumulatesSolverTotals(t *testing.T) {
	m := genModel(t, 44, 22, 1.05)
	_, rep, err := Enforce(m, EnforceOptions{Char: charOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SolverTotals.ShiftsProcessed < rep.FinalReport.Solver.ShiftsProcessed {
		t.Fatalf("SolverTotals %d < final iteration's %d",
			rep.SolverTotals.ShiftsProcessed, rep.FinalReport.Solver.ShiftsProcessed)
	}
	if rep.Iterations > 0 && rep.SolverTotals.ShiftsProcessed <= rep.FinalReport.Solver.ShiftsProcessed {
		t.Fatal("SolverTotals does not include earlier iterations")
	}
}

// TestEnforceNegativeOptionsRejected: negative enforcement options must
// error instead of (for MaxIters < 0) skipping the loop and panicking on
// the nil last characterization.
func TestEnforceNegativeOptionsRejected(t *testing.T) {
	m := genModel(t, 59, 10, 1.02)
	for _, o := range []EnforceOptions{
		{MaxIters: -1},
		{Margin: -1e-3},
		{MaxSigmaPerBand: -2},
		{Char: Options{ProbePoints: -5}},
	} {
		o.Char.Core.Threads = 1
		if _, _, err := Enforce(m, o); err == nil {
			t.Errorf("%+v: negative option accepted", o)
		}
	}
	if _, err := Characterize(m, Options{ProbePoints: -5}); err == nil {
		t.Error("Characterize accepted negative ProbePoints")
	}
}

// TestEnforceContextCancel: a canceled context aborts enforcement with
// ctx.Err().
func TestEnforceContextCancel(t *testing.T) {
	m := genModel(t, 44, 22, 1.05)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := EnforceContext(ctx, m, EnforceOptions{Char: charOpts()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
