package passivity

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/arnoldi"
	"repro/internal/core"
	"repro/internal/hamiltonian"
	"repro/internal/mat"
	"repro/internal/statespace"
)

// EnforceOptions configures iterative passivity enforcement.
type EnforceOptions struct {
	// Characterize options used at every iteration.
	Char Options
	// MaxIters bounds the outer perturbation loop. Default 20.
	MaxIters int
	// Margin is the distance below 1 the violated singular values are
	// pushed to (σ target = 1 − Margin). Default 1e-3.
	Margin float64
	// MaxSigmaPerBand bounds how many violated singular values per band
	// peak enter the constraint set. Default 4.
	MaxSigmaPerBand int
	// ColdStart disables warm-starting the re-characterizations. Warm
	// starts are the default: violations only shrink under residue
	// perturbation, so iteration k's crossings seed iteration k+1's
	// startup shifts, and because the spectrum is already mapped, each
	// shift runs a deeper Krylov sweep that certifies more eigenvalues per
	// factorization (see warmArnoldi) — the total Stats.ShiftsProcessed
	// drops measurably. ColdStart exists for A/B benchmarking
	// (cmd/fleetbench) and as an escape hatch.
	ColdStart bool
	// Checkpoint, when non-nil, receives one durable-resume snapshot after
	// every completed enforcement iteration (characterize → perturb →
	// carry): the full perturbed residue state plus the loop's carried
	// bookkeeping (see EnforceCheckpoint). The callback runs on the
	// coordinator goroutine between iterations, never concurrently, and is
	// observational — it carries copies and cannot perturb the run.
	Checkpoint func(EnforceCheckpoint)
	// Resume, when non-nil, restarts the enforcement loop from a persisted
	// checkpoint: the residue matrices are restored bit-exactly onto a
	// fresh clone of the input model and the loop continues at the
	// checkpoint's iteration with the same warm-start seeds and carried
	// ω_max bound the uninterrupted run would have used, so the remaining
	// iterations characterize bit-identically. Enforcement resume is
	// iteration-granular: work inside an interrupted iteration is re-run.
	Resume *EnforceCheckpoint
	// ReestimateOmegaMax disables carrying the certified spectral-radius
	// bound across iterations. By default (false, and with Char.Core.
	// OmegaMax zero) every re-characterization reuses the previous
	// iteration's certified ω_max inflated by the relative perturbation
	// norm (see carryOmegaMax) instead of re-running the estimation
	// Arnoldi — one fewer Arnoldi sweep per enforcement iteration; one
	// confirming estimate still runs before passivity is certified on a
	// carried bound (see EnforceContext). The carry applies to cold-start
	// runs too (it is independent of shift placement), so warm and cold
	// runs keep seeing identical bounds and hence bit-identical
	// characterizations.
	ReestimateOmegaMax bool
}

func (o *EnforceOptions) setDefaults() {
	o.Char.setDefaults()
	if o.MaxIters == 0 {
		o.MaxIters = 20
	}
	if o.Margin == 0 {
		o.Margin = 1e-3
	}
	if o.MaxSigmaPerBand == 0 {
		o.MaxSigmaPerBand = 4
	}
}

// validate rejects negative values that setDefaults passes through — a
// negative MaxIters would skip the loop entirely and report on a nil
// characterization.
func (o *EnforceOptions) validate() error {
	switch {
	case o.MaxIters < 0:
		return fmt.Errorf("passivity: MaxIters must be ≥ 0, got %d", o.MaxIters)
	case o.Margin < 0:
		return fmt.Errorf("passivity: Margin must be ≥ 0, got %g", o.Margin)
	case o.MaxSigmaPerBand < 0:
		return fmt.Errorf("passivity: MaxSigmaPerBand must be ≥ 0, got %d", o.MaxSigmaPerBand)
	}
	return o.Char.validate()
}

// EnforceReport summarizes an enforcement run.
type EnforceReport struct {
	Iterations    int
	InitialWorst  float64 // worst σ_max before enforcement
	FinalWorst    float64 // worst σ_max after
	ResidueChange float64 // ‖ΔC‖_F / ‖C‖_F cumulative relative perturbation
	FinalReport   *Report
	// SolverTotals accumulates the eigensolver work counters over every
	// characterization of the run — the cost metric that warm-started
	// re-characterizations reduce (see EnforceOptions.ColdStart).
	SolverTotals core.Stats
}

// ErrEnforcementFailed is returned when the iteration cap is reached with
// violations still present.
var ErrEnforcementFailed = errors.New("passivity: enforcement did not converge within the iteration budget")

// EnforceCheckpoint is the durable state of an enforcement run at an
// iteration boundary — everything iteration Iter needs to run exactly as
// it would have in the uninterrupted run. Unlike the eigensolver's
// per-shift checkpoints, it is self-contained (no prefix accumulation):
// the latest checkpoint alone restores the loop.
type EnforceCheckpoint struct {
	// Iter is the next iteration to run (checkpoints are emitted after an
	// iteration completes, so Iter ≥ 1).
	Iter int
	// Cumulative is the accumulated ‖δC‖_F over the completed iterations.
	Cumulative float64
	// CarriedOmegaMax is the carried spectral-radius bound for iteration
	// Iter (meaningful when Carried is set; see carryOmegaMax).
	CarriedOmegaMax float64
	// Carried records whether the ω_max carry was active.
	Carried bool
	// InitialWorst is the worst σ_max before enforcement (captured at
	// iteration 0).
	InitialWorst float64
	// SolverTotals accumulates the eigensolver work counters of the
	// completed iterations.
	SolverTotals core.Stats
	// LastCrossings are the previous characterization's crossings — the
	// warm-start shift seeds for iteration Iter.
	LastCrossings []float64
	// Residues are the perturbed residue matrices after the completed
	// iterations: one row-major p×m_k block per model column, float bits
	// preserved exactly so the restored model characterizes
	// bit-identically.
	Residues [][]float64
}

// snapshotEnforce captures the loop state after one completed iteration.
func snapshotEnforce(iter int, cumulative, carriedOmegaMax float64, carried bool,
	rep *EnforceReport, chr *Report, work *statespace.Model) EnforceCheckpoint {
	ck := EnforceCheckpoint{
		Iter:            iter,
		Cumulative:      cumulative,
		CarriedOmegaMax: carriedOmegaMax,
		Carried:         carried,
		InitialWorst:    rep.InitialWorst,
		SolverTotals:    rep.SolverTotals,
		LastCrossings:   append([]float64(nil), chr.Crossings...),
		Residues:        make([][]float64, len(work.Cols)),
	}
	for k := range work.Cols {
		ck.Residues[k] = append([]float64(nil), work.Cols[k].C.Data...)
	}
	return ck
}

// restore overwrites the working model's residue matrices with the
// checkpoint's (bit-exact) and invalidates the packed kernels so the
// next structured-operator call sees the restored state.
func (ck *EnforceCheckpoint) restore(work *statespace.Model) error {
	if ck.Iter < 1 {
		return fmt.Errorf("passivity: resume checkpoint iteration %d < 1", ck.Iter)
	}
	if len(ck.Residues) != len(work.Cols) {
		return fmt.Errorf("passivity: resume checkpoint has %d residue columns for a %d-column model",
			len(ck.Residues), len(work.Cols))
	}
	for k := range work.Cols {
		c := work.Cols[k].C
		if len(ck.Residues[k]) != len(c.Data) {
			return fmt.Errorf("passivity: resume residue column %d has %d entries, want %d",
				k, len(ck.Residues[k]), len(c.Data))
		}
	}
	for k := range work.Cols {
		copy(work.Cols[k].C.Data, ck.Residues[k])
	}
	work.InvalidateKernels()
	return nil
}

// Enforce perturbs the residue matrices C of a non-passive macromodel until
// the Hamiltonian characterization reports no imaginary eigenvalues. Each
// pass linearizes the violated singular values at the in-band peaks,
//
//	σ_i(ω*) + Re(u_iᴴ · δC (jω*I − A)⁻¹B · v_i) ≤ 1 − margin,
//
// and applies the minimum-Frobenius-norm residue update satisfying these
// constraints (least-norm solve through the small Gram matrix). The model
// poles are untouched, preserving stability; D is untouched, preserving
// asymptotic passivity. The input model is not modified.
func Enforce(m *statespace.Model, opts EnforceOptions) (*statespace.Model, *EnforceReport, error) {
	return EnforceContext(context.Background(), m, opts)
}

// EnforceContext is Enforce with cancellation/deadline support (threaded
// into every re-characterization).
//
// When the iteration budget runs out with violations still present, the
// partially-enforced model and its EnforceReport are returned alongside an
// error wrapping ErrEnforcementFailed: the partial model is often close to
// passive and callers may retry with a larger budget or accept it. The
// report's FinalReport/FinalWorst come from the last characterization, i.e.
// they describe the model state *before* the final perturbation pass (a
// re-characterization just to freshen a failure report would double the
// cost of every failed run).
func EnforceContext(ctx context.Context, m *statespace.Model, opts EnforceOptions) (*statespace.Model, *EnforceReport, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	opts.setDefaults()
	work := m.Clone()
	rep := &EnforceReport{}

	baseNorm := residueNorm(m)
	var cumulative float64

	charOpts := opts.Char
	// One pool and one client span the whole run: eigensolver shifts,
	// σ probes, and constraint assembly of every iteration are tasks of
	// the same scheduling identity (a fleet engine passes its own).
	defer ensurePoolClient(&charOpts.Core)()
	carried := false
	var lastChr *Report
	iterStart := 0
	if r := opts.Resume; r != nil {
		if r.Iter > opts.MaxIters {
			return nil, nil, fmt.Errorf("passivity: resume iteration %d exceeds MaxIters %d", r.Iter, opts.MaxIters)
		}
		if err := r.restore(work); err != nil {
			return nil, nil, err
		}
		iterStart = r.Iter
		cumulative = r.Cumulative
		rep.InitialWorst = r.InitialWorst
		rep.SolverTotals = r.SolverTotals
		if r.Carried {
			charOpts.Core.OmegaMax = r.CarriedOmegaMax
			carried = true
		}
		// Synthetic previous report: only the crossings matter (they seed
		// the warm start exactly as the uninterrupted run's would have).
		lastChr = &Report{Crossings: append([]float64(nil), r.LastCrossings...)}
	}
	if iterStart >= opts.MaxIters {
		// The budget was already exhausted when the run was interrupted —
		// the crash hit between the final checkpoint and the terminal
		// record. Re-characterize once to rebuild the failure report; it
		// describes the post-final-perturbation state, so it may even
		// certify passivity that the uninterrupted run never checked for.
		if !opts.ColdStart {
			charOpts.Core.InitialShifts = lastChr.Crossings
			charOpts.Core.Arnoldi = warmArnoldi(opts.Char.Core.Arnoldi)
		}
		chr, err := CharacterizeContext(ctx, work, charOpts)
		if err != nil {
			return nil, nil, err
		}
		rep.SolverTotals.Add(chr.Solver)
		rep.Iterations = opts.MaxIters
		rep.FinalWorst = chr.WorstViolation()
		rep.ResidueChange = cumulative / baseNorm
		rep.FinalReport = chr
		if chr.Passive {
			return work, rep, nil
		}
		return work, rep, fmt.Errorf("%w (worst σ still %g after %d iterations)",
			ErrEnforcementFailed, rep.FinalWorst, opts.MaxIters)
	}
	for iter := iterStart; iter < opts.MaxIters; iter++ {
		if !opts.ColdStart && lastChr != nil {
			// Warm start: seed this iteration's shifts from the previous
			// crossings and deepen the per-shift certification. The band and
			// its coverage guarantee are unchanged — only the startup shift
			// placement and the shifts-vs-sweep-depth tradeoff differ, and
			// the canonical crossing polish keeps the reported crossings
			// bit-identical either way.
			charOpts.Core.InitialShifts = lastChr.Crossings
			charOpts.Core.Arnoldi = warmArnoldi(opts.Char.Core.Arnoldi)
		}
		chr, err := CharacterizeContext(ctx, work, charOpts)
		if err != nil {
			return nil, nil, err
		}
		lastChr = chr
		rep.SolverTotals.Add(chr.Solver)
		if iter == 0 {
			rep.InitialWorst = chr.WorstViolation()
		}
		if chr.Passive && carried {
			// The carried bound is a heuristic: before certifying the
			// perturbed model as passive on its strength, confirm it with
			// ONE fresh spectral-radius estimate (the cost the carry saved
			// on every non-final iteration). If the true radius escaped
			// the carried bound, re-characterize over the full band — a
			// crossing could be hiding just above it.
			est, err := freshOmegaMax(ctx, charOpts.Core.Client, work, charOpts.Core.Seed)
			if err != nil {
				return nil, nil, err
			}
			if est > charOpts.Core.OmegaMax {
				charOpts.Core.OmegaMax = est
				chr, err = CharacterizeContext(ctx, work, charOpts)
				if err != nil {
					return nil, nil, err
				}
				lastChr = chr
				rep.SolverTotals.Add(chr.Solver)
			}
		}
		if chr.Passive {
			rep.Iterations = iter
			rep.FinalWorst = chr.WorstViolation()
			rep.ResidueChange = cumulative / baseNorm
			rep.FinalReport = chr
			return work, rep, nil
		}
		step, err := perturbationStep(ctx, charOpts.Core.Client, work, chr, opts)
		if err != nil {
			return nil, nil, err
		}
		cumulative += step
		if opts.Char.Core.OmegaMax == 0 && !opts.ReestimateOmegaMax {
			// Warm-start the next iteration's ω_max: carry the certified
			// bound instead of re-running the estimation Arnoldi.
			charOpts.Core.OmegaMax = carryOmegaMax(chr.OmegaMax, step, baseNorm)
			carried = true
		}
		if opts.Checkpoint != nil {
			opts.Checkpoint(snapshotEnforce(iter+1, cumulative, charOpts.Core.OmegaMax, carried, rep, chr, work))
		}
	}
	rep.Iterations = opts.MaxIters
	rep.FinalWorst = lastChr.WorstViolation()
	rep.ResidueChange = cumulative / baseNorm
	rep.FinalReport = lastChr
	return work, rep, fmt.Errorf("%w (worst σ still %g after %d iterations)",
		ErrEnforcementFailed, rep.FinalWorst, opts.MaxIters)
}

// warmArnoldi is the per-shift profile for warm re-characterizations: the
// number of shifts a solve needs is roughly (eigenvalues near the band) /
// NWanted, because every certified disk is shrunk to enclose exactly
// NWanted eigenvalues — so shift placement alone cannot reduce it. Since
// iteration k already mapped the spectrum and each shift carries a fixed
// O(n·p²) SMW factorization cost, the re-characterization certifies more
// eigenvalues per factorization instead: NWanted grows 1.5× while MaxDim
// stays put (the default d = 60 basis already has room for 8 wanted
// eigenvalues; growing d would inflate the O(d²n) orthogonalization cost
// that dominates each sweep). Measured on the Table-I case 2 enforcement
// A/B (cmd/fleetbench, BENCH_fleet.json): 13.2% fewer total shifts,
// crossings bit-identical.
func warmArnoldi(p arnoldi.SingleShiftParams) arnoldi.SingleShiftParams {
	nw := p.NWanted
	if nw == 0 {
		nw = 5
	}
	d := p.MaxDim
	if d == 0 {
		d = 60
	}
	p.NWanted = nw + (nw+1)/2
	if min := 6 * p.NWanted; d < min {
		d = min
	}
	p.MaxDim = d
	return p
}

// freshOmegaMax re-runs the spectral-radius estimation Arnoldi on the
// (perturbed) model — used once per enforcement run to confirm a carried
// bound before it certifies passivity. Like Submit's startup estimate, it
// runs as a PhaseEig task of the run's client so the sweep obeys the
// shared pool's scheduling policy instead of running on the coordinator
// goroutine.
func freshOmegaMax(ctx context.Context, client *core.Client, m *statespace.Model, seed int64) (float64, error) {
	op, err := hamiltonian.New(m, hamiltonian.Scattering)
	if err != nil {
		return 0, err
	}
	if seed == 0 {
		seed = 1 // mirror core.Options.setDefaults so the estimate matches Submit's
	}
	var est float64
	err = client.RunBatch(ctx, core.PhaseEig, []func(int) error{func(int) error {
		e, err := core.EstimateOmegaMax(op, seed)
		if err != nil {
			return err
		}
		est = e
		return nil
	}})
	return est, err
}

// carryOmegaMax inflates a certified spectral-radius bound so it stays a
// bound after a residue perturbation of Frobenius norm step: eigenvalue
// motion under the rank-limited δC update is proportional to the relative
// residue change, so the bound grows by twice that ratio (safety factor)
// plus a small absolute floor covering the non-normal tail. The previous
// bound already carries the estimator's own 1.02 margin, and enforcement
// only shrinks violations inward. Because the eigenvalues of the
// non-normal Hamiltonian can in principle outrun any residue-norm bound,
// the carry is a heuristic — which is why EnforceContext confirms it with
// one fresh estimate before certifying passivity on its strength.
func carryOmegaMax(prev, step, baseNorm float64) float64 {
	rel := 0.0
	if baseNorm > 0 {
		rel = step / baseNorm
	}
	return prev * (1 + 2*rel + 1e-3)
}

// perturbationStep builds and applies one least-norm residue update.
// Returns ‖δC‖_F.
//
// The per-band constraint assembly (SVD at the band peak + one shifted
// solve per violated σ) fans out across the pool as PhaseConstraint tasks
// and joins; bands write index-assigned slots that are concatenated in
// band order, so the constraint set — and hence the update — is
// bit-identical to the sequential assembly under any worker count.
func perturbationStep(ctx context.Context, client *core.Client, work *statespace.Model, chr *Report, opts EnforceOptions) (float64, error) {
	n := work.Order()
	p := work.P
	nvars := n * p // δC is p×n, row-major flattening index i*n + s

	type constraint struct {
		row []float64
		rhs float64
	}
	viol := chr.Violations()
	perBand := make([][]constraint, len(viol))
	fns := make([]func(int) error, len(viol))
	for bi := range viol {
		w := viol[bi].PeakOmega
		fns[bi] = func(int) error {
			h := work.EvalJW(w)
			sv, err := mat.CSVDecompose(h)
			if err != nil {
				return err
			}
			// Precompute g_v = (jωI − A)⁻¹ B v for each violated σ.
			count := 0
			for sidx, sigma := range sv.S {
				if sigma <= 1 || count >= opts.MaxSigmaPerBand {
					break
				}
				count++
				u := make([]complex128, p)
				v := make([]complex128, p)
				for r := 0; r < p; r++ {
					u[r] = sv.U.At(r, sidx)
					v[r] = sv.V.At(r, sidx)
				}
				bv := make([]complex128, n)
				work.CApplyB(bv, v)
				g := make([]complex128, n)
				// (jωI − A) g = B v  ⇔  (A − jωI) g = −B v.
				for i := range bv {
					bv[i] = -bv[i]
				}
				if err := work.CSolveShiftedA(g, bv, complex(0, w)); err != nil {
					return err
				}
				// δσ = Σ_{i,s} δC[i,s]·Re(conj(u_i)·g_s); target σ+δσ = 1−margin.
				row := make([]float64, nvars)
				for i := 0; i < p; i++ {
					cu := real(u[i])
					cuIm := imag(u[i])
					for s := 0; s < n; s++ {
						// Re(conj(u_i)·g_s)
						row[i*n+s] = cu*real(g[s]) + cuIm*imag(g[s])
					}
				}
				perBand[bi] = append(perBand[bi], constraint{row: row, rhs: (1 - opts.Margin) - sigma})
			}
			return nil
		}
	}
	if err := client.RunBatch(ctx, core.PhaseConstraint, fns); err != nil {
		return 0, err
	}
	var cons []constraint
	for _, bc := range perBand {
		cons = append(cons, bc...)
	}
	if len(cons) == 0 {
		return 0, errors.New("passivity: violation bands reported but no σ > 1 found at peaks")
	}
	// Least-norm solution δc = Aᵀ(AAᵀ)⁻¹ r.
	k := len(cons)
	gram := mat.NewDense(k, k)
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			d := mat.Dot(cons[a].row, cons[b].row)
			gram.Set(a, b, d)
			gram.Set(b, a, d)
		}
	}
	// Tikhonov floor keeps near-parallel constraints solvable.
	trace := 0.0
	for a := 0; a < k; a++ {
		trace += gram.At(a, a)
	}
	ridge := 1e-12 * trace / float64(k)
	for a := 0; a < k; a++ {
		gram.Set(a, a, gram.At(a, a)+ridge)
	}
	rhs := make([]float64, k)
	for a := 0; a < k; a++ {
		rhs[a] = cons[a].rhs
	}
	f, err := mat.LUFactor(gram)
	if err != nil {
		return 0, fmt.Errorf("passivity: singular constraint Gram matrix: %w", err)
	}
	y := f.Solve(rhs)
	delta := make([]float64, nvars)
	for a := 0; a < k; a++ {
		mat.Axpy(y[a], cons[a].row, delta)
	}
	// Apply δC to the per-column residue blocks.
	off := 0
	for kcol := range work.Cols {
		col := &work.Cols[kcol]
		mOrd := col.Order()
		for i := 0; i < p; i++ {
			for s := 0; s < mOrd; s++ {
				col.C.Set(i, s, col.C.At(i, s)+delta[i*n+off+s])
			}
		}
		off += mOrd
	}
	// The residues changed in place: drop the cached packed kernel data so
	// the next structured-operator call rebuilds it.
	work.InvalidateKernels()
	return mat.Norm2(delta), nil
}

// residueNorm returns the Frobenius norm of the stacked residue matrices.
func residueNorm(m *statespace.Model) float64 {
	var ss float64
	for k := range m.Cols {
		f := m.Cols[k].C.FrobNorm()
		ss += f * f
	}
	return math.Sqrt(ss)
}
