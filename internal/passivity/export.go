package passivity

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// jsonBand mirrors Band with an encodable upper edge (null = +Inf).
type jsonBand struct {
	Lo        float64  `json:"lo"`
	Hi        *float64 `json:"hi"` // null encodes +Inf
	PeakOmega float64  `json:"peak_omega"`
	PeakSigma float64  `json:"peak_sigma"`
	Violating bool     `json:"violating"`
}

// jsonReport is the serialized characterization.
type jsonReport struct {
	Passive   bool       `json:"passive"`
	Crossings []float64  `json:"crossings"`
	Bands     []jsonBand `json:"bands"`
	OmegaMax  float64    `json:"omega_max"`
	Solver    jsonSolver `json:"solver"`
}

type jsonSolver struct {
	Shifts           int     `json:"shifts"`
	TentativeDeleted int     `json:"tentative_deleted"`
	Restarts         int     `json:"restarts"`
	OpApplies        int     `json:"op_applies"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
}

// WriteJSON serializes the report for downstream tooling. Infinite band
// edges are encoded as null.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		Passive:   r.Passive,
		Crossings: append([]float64{}, r.Crossings...),
		OmegaMax:  r.OmegaMax,
		Solver: jsonSolver{
			Shifts:           r.Solver.ShiftsProcessed,
			TentativeDeleted: r.Solver.TentativeDeleted,
			Restarts:         r.Solver.Restarts,
			OpApplies:        r.Solver.OpApplies,
			ElapsedSeconds:   r.Solver.Elapsed.Seconds(),
		},
	}
	for _, b := range r.Bands {
		jb := jsonBand{
			Lo:        b.Lo,
			PeakOmega: b.PeakOmega,
			PeakSigma: b.PeakSigma,
			Violating: b.Violating,
		}
		if !math.IsInf(b.Hi, 1) {
			hi := b.Hi
			jb.Hi = &hi
		}
		out.Bands = append(out.Bands, jb)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits the crossing list as two-column CSV (index, omega).
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "index,omega_rad_s"); err != nil {
		return err
	}
	for i, x := range r.Crossings {
		if _, err := fmt.Fprintf(w, "%d,%.12g\n", i, x); err != nil {
			return err
		}
	}
	return nil
}
