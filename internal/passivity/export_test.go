package passivity

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func sampleReport() *Report {
	return &Report{
		Passive:   false,
		Crossings: []float64{1e8, 2e8},
		Bands: []Band{
			{Lo: 0, Hi: 1e8, PeakOmega: 5e7, PeakSigma: 0.9},
			{Lo: 1e8, Hi: 2e8, PeakOmega: 1.5e8, PeakSigma: 1.04, Violating: true},
			{Lo: 2e8, Hi: math.Inf(1), PeakOmega: 4e8, PeakSigma: 0.8},
		},
		OmegaMax: 1e10,
		Solver: core.Stats{
			ShiftsProcessed: 12, Restarts: 14, OpApplies: 700,
			TentativeDeleted: 2, Elapsed: 1500 * time.Millisecond,
		},
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded["passive"] != false {
		t.Fatal("passive flag wrong")
	}
	bands := decoded["bands"].([]any)
	if len(bands) != 3 {
		t.Fatalf("%d bands", len(bands))
	}
	last := bands[2].(map[string]any)
	if last["hi"] != nil {
		t.Fatalf("infinite hi not encoded as null: %v", last["hi"])
	}
	mid := bands[1].(map[string]any)
	if mid["violating"] != true {
		t.Fatal("violating flag lost")
	}
	solver := decoded["solver"].(map[string]any)
	if solver["elapsed_seconds"].(float64) != 1.5 {
		t.Fatalf("elapsed %v", solver["elapsed_seconds"])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "index,omega_rad_s" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,1e+08") && !strings.HasPrefix(lines[1], "0,100000000") {
		t.Fatalf("row %q", lines[1])
	}
}
