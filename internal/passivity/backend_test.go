package passivity

import (
	"math"
	"testing"

	"repro/internal/hamiltonian"
	"repro/internal/statespace"
)

// TestHalfPathMatchesFullOnReciprocalCases characterizes scaled-down
// reciprocal Table-I variants twice — full 2n×2n path forced with HalfOff
// vs the half-size squared path under HalfAuto — and requires the same
// crossing count with frequencies agreeing within 1e-9·ω_max. The two
// legs solve different eigenproblems (λ vs μ = λ²), so agreement is to
// round-off, not bit-exact; 1e-9·ω_max is the cross-path pin the bench
// suite also enforces.
func TestHalfPathMatchesFullOnReciprocalCases(t *testing.T) {
	for _, spec := range statespace.ReciprocalTableICases() {
		if spec.P > 20 {
			continue // keep unit-test generation cost bounded
		}
		spec.N = 3 * spec.P // shrink: 3 states per column at full port count
		m, err := statespace.BuildCase(spec)
		if err != nil {
			t.Fatalf("case %d: %v", spec.ID, err)
		}
		if !m.Reciprocal(0) {
			t.Fatalf("case %d: generated model is not bit-exactly reciprocal", spec.ID)
		}
		leg := func(half hamiltonian.HalfMode) *Report {
			o := charOpts()
			o.Half = half
			rep, err := Characterize(m, o)
			if err != nil {
				t.Fatalf("case %d (mode %v): %v", spec.ID, half, err)
			}
			return rep
		}
		full := leg(hamiltonian.HalfOff)
		half := leg(hamiltonian.HalfAuto)
		if full.HalfPath {
			t.Fatalf("case %d: HalfOff leg reports HalfPath", spec.ID)
		}
		if !half.HalfPath {
			t.Fatalf("case %d: HalfAuto leg did not engage the half path on a reciprocal model", spec.ID)
		}
		if len(full.Crossings) != len(half.Crossings) {
			t.Fatalf("case %d: %d crossings on the full path vs %d on the half path\nfull: %v\nhalf: %v",
				spec.ID, len(full.Crossings), len(half.Crossings), full.Crossings, half.Crossings)
		}
		tol := 1e-9 * full.OmegaMax
		for k := range full.Crossings {
			if d := math.Abs(full.Crossings[k] - half.Crossings[k]); d > tol {
				t.Fatalf("case %d: crossing %d differs by %.3e (> %.3e): full %v vs half %v",
					spec.ID, k, d, tol, full.Crossings[k], half.Crossings[k])
			}
		}
	}
}

// TestBackendBitIdentityAcrossThreadsAndCache pins the determinism
// contract of the kernel backends: for a FIXED backend, crossings are
// bit-identical across worker counts {1, 2, 8} and with the shift-
// factorization cache off and on; across backends, counts match and
// frequencies agree within 1e-9·ω_max.
func TestBackendBitIdentityAcrossThreadsAndCache(t *testing.T) {
	m, err := statespace.Generate(53, statespace.GenOptions{
		Ports: 4, Order: 32, TargetPeak: 1.05, GridPoints: 100,
		PortsPerColumn: 2, // banded C: the sparse backend has real zeros to skip
	})
	if err != nil {
		t.Fatal(err)
	}
	perBackend := make(map[statespace.Backend][]float64)
	var omegaMax float64
	for _, backend := range []statespace.Backend{statespace.BackendPackedDense, statespace.BackendSparse} {
		var ref *Report
		for _, threads := range []int{1, 2, 8} {
			for _, cacheSize := range []int{-1, 0} { // off, default LRU
				o := charOpts()
				o.Core.Threads = threads
				o.Core.ShiftCacheSize = cacheSize
				o.Backend = backend
				rep, err := Characterize(m, o)
				if err != nil {
					t.Fatalf("%v threads=%d cache=%d: %v", backend, threads, cacheSize, err)
				}
				if rep.Backend != backend {
					t.Fatalf("forced %v, report says %v", backend, rep.Backend)
				}
				if ref == nil {
					ref = rep
					continue
				}
				if len(rep.Crossings) != len(ref.Crossings) {
					t.Fatalf("%v threads=%d cache=%d: %d crossings vs %d at the reference config",
						backend, threads, cacheSize, len(rep.Crossings), len(ref.Crossings))
				}
				for k := range rep.Crossings {
					if rep.Crossings[k] != ref.Crossings[k] {
						t.Fatalf("%v threads=%d cache=%d: crossing %d not bit-identical: %v vs %v",
							backend, threads, cacheSize, k, rep.Crossings[k], ref.Crossings[k])
					}
				}
			}
		}
		perBackend[backend] = ref.Crossings
		omegaMax = ref.OmegaMax
	}
	dense := perBackend[statespace.BackendPackedDense]
	sparse := perBackend[statespace.BackendSparse]
	if len(dense) != len(sparse) {
		t.Fatalf("backend disagreement on crossing count: packed-dense %d vs sparse %d", len(dense), len(sparse))
	}
	tol := 1e-9 * omegaMax
	for k := range dense {
		if d := math.Abs(dense[k] - sparse[k]); d > tol {
			t.Fatalf("crossing %d differs across backends by %.3e (> %.3e)", k, d, tol)
		}
	}
	if len(dense) == 0 {
		t.Fatal("test model produced no crossings; the bit-identity matrix asserted nothing")
	}
}
