// Package passivity turns the Hamiltonian eigensolver output into a full
// passivity characterization of a scattering macromodel (violation bands
// between unit singular-value crossings) and enforces passivity by
// iterative residue perturbation, re-running the characterization after
// each perturbation pass (DATE'11 Sec. II; enforcement per refs. [8]/[15]).
//
// Invariants: the violation bands partition [0, ∞) at the crossing
// frequencies; σ probes never leave the certified search bound; and the
// whole report — crossings, band peaks, enforced model — is bit-identical
// under any worker count, because every parallel step writes only
// index-assigned slots.
//
// Concurrency: all heavy work runs as pool task batches under one
// scheduling client per characterization/enforcement — σ_max band probes
// (core.PhaseProbe) and per-band constraint assembly (core.PhaseConstraint)
// here, shifts/refinements inside the solver. Without an explicit
// Options.Core.Pool/Client a private pool of Core.Threads workers spans
// the call. Characterize/Enforce block on batch joins and must not be
// called from a pool worker goroutine.
package passivity

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hamiltonian"
	"repro/internal/statespace"
)

// Band is a frequency interval on which σ_max(H(jω)) stays on one side of
// the unit threshold.
type Band struct {
	Lo, Hi    float64 // Hi = +Inf for the terminal band
	PeakOmega float64 // frequency of the largest sampled σ_max inside the band
	PeakSigma float64 // the largest sampled σ_max
	Violating bool    // PeakSigma > 1
}

// Report is a full passivity characterization.
type Report struct {
	Passive   bool
	Crossings []float64 // unit-crossing frequencies from the Hamiltonian spectrum
	Bands     []Band
	OmegaMax  float64 // searched band upper edge
	Solver    core.Stats
	// Backend is the kernel backend that executed the structured-operator
	// surface (never BackendAuto — the dispatcher's resolution is recorded).
	Backend statespace.Backend
	// HalfPath reports whether the half-size (squared, reciprocal-only)
	// eigenproblem was available to the solver for this characterization.
	HalfPath bool
}

// Violations returns only the violating bands.
func (r *Report) Violations() []Band {
	var out []Band
	for _, b := range r.Bands {
		if b.Violating {
			out = append(out, b)
		}
	}
	return out
}

// Options configures characterization.
type Options struct {
	// Core configures the parallel eigensolver.
	Core core.Options
	// ProbePoints is the number of σ samples per band when locating the
	// in-band peak. Default 40.
	ProbePoints int
	// Ops optionally shares Hamiltonian operators (and their shift-
	// factorization cache) across characterizations: when set, the
	// operator comes from the cache instead of being rebuilt, so
	// concurrent jobs on the same model reuse one balanced realization,
	// one packed-kernel build, and one pool of factored shifts. The fleet
	// engine wires its engine-wide cache here. Nil (the default) builds a
	// private operator per characterization — the standalone semantics.
	Ops *hamiltonian.OpCache
	// Backend forces a kernel backend on the model before the operator is
	// built. The zero value (BackendAuto) leaves the model's current
	// selection untouched, so callers that pre-configured the model via
	// SetBackend keep their choice.
	Backend statespace.Backend
	// Half selects the half-size reciprocal fast path: HalfAuto (default)
	// engages it when the model is detected reciprocal, HalfOff disables
	// it, HalfForce errors on non-reciprocal models.
	Half hamiltonian.HalfMode
	// HalfTol widens reciprocity detection under HalfAuto/HalfForce from
	// bit-exact symmetry to a relative tolerance. Zero means exact.
	HalfTol float64
}

func (o *Options) setDefaults() {
	if o.ProbePoints == 0 {
		o.ProbePoints = 40
	}
}

// validate rejects negative option values (the core solver validates its
// own on Submit; doing it here surfaces the error before any solver work).
func (o *Options) validate() error {
	if o.ProbePoints < 0 {
		return fmt.Errorf("passivity: ProbePoints must be ≥ 0, got %d", o.ProbePoints)
	}
	return nil
}

// Characterize computes the full passivity characterization of the model:
// the imaginary Hamiltonian eigenvalues give the exact crossing
// frequencies, and a σ_max probe in every enclosed band classifies it.
func Characterize(m *statespace.Model, opts Options) (*Report, error) {
	return CharacterizeContext(context.Background(), m, opts)
}

// CharacterizeContext is Characterize with cancellation/deadline support:
// the context is threaded into the eigensolver (which drops its remaining
// shifts on cancellation) and into the per-band σ probe batch.
//
// Every compute phase runs on one worker pool: the eigensolver shifts AND
// the per-band σ_max probes are pool tasks, so a shared (fleet) pool stays
// full through the probe phase instead of idling while the submitting
// goroutine probes alone. Without Core.Pool/Core.Client a private pool of
// Core.Threads workers spans the whole characterization.
func CharacterizeContext(ctx context.Context, m *statespace.Model, opts Options) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	if opts.Backend != statespace.BackendAuto {
		m.SetBackend(opts.Backend)
	}
	hopts := hamiltonian.NewOptions{Half: opts.Half, HalfTol: opts.HalfTol}
	var op *hamiltonian.Op
	var err error
	if opts.Ops != nil {
		op, err = opts.Ops.GetWith(m, hamiltonian.Scattering, hopts)
	} else {
		op, err = hamiltonian.NewWith(m, hamiltonian.Scattering, hopts)
	}
	if err != nil {
		return nil, err
	}
	defer ensurePoolClient(&opts.Core)()
	res, err := core.SolveContext(ctx, op, opts.Core)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Crossings: res.Crossings,
		OmegaMax:  res.OmegaMax,
		Solver:    res.Stats,
		Backend:   m.ActiveBackend(),
		HalfPath:  op.Half() != nil,
	}
	rep.Bands, err = classifyBands(ctx, opts.Core.Client, m, res.Crossings, res.OmegaMax, opts.ProbePoints, opts.Core.Progress)
	if err != nil {
		return nil, err
	}
	rep.Passive = len(rep.Violations()) == 0
	return rep, nil
}

// ensurePoolClient defaults the Pool/Client pair of solver options in
// place — derive the pool from a given client, else create a private pool
// of Threads workers (NewPool clamps < 1 to one; invalid options are
// still rejected by the solver's Submit before any work runs), and mint
// an ephemeral default-priority client when none was passed. Returns the
// cleanup that closes a private pool (a no-op for shared pools); callers
// defer it around everything that uses the options.
func ensurePoolClient(o *core.Options) func() {
	if o.Pool == nil && o.Client != nil {
		o.Pool = o.Client.Pool()
	}
	cleanup := func() {}
	if o.Pool == nil {
		private := core.NewPool(o.Threads)
		o.Pool = private
		cleanup = private.Close
	}
	if o.Client == nil {
		o.Client = o.Pool.NewClient(core.ClientOptions{})
	}
	return cleanup
}

// classifyBands cuts [0, ∞) at the crossing frequencies and probes σ_max
// inside each band. Probe windows are clamped to the certified search
// bound omegaMax: beyond it the Hamiltonian test has certified no further
// crossings, but σ values out there are outside the certificate and once
// probed could misclassify the terminal band (e.g. a crossing just below
// omegaMax whose doubled window 2·lo used to overshoot the bound). The one
// exception is the degenerate terminal band opening at omegaMax itself,
// which has no certified interior and is classified from a thin sliver
// just past the edge.
//
// The probes fan out per band as one pool task batch under the caller's
// client and join: every probePeak runs on a pool worker, and because each
// task writes only its own index-assigned Band slot, the report is
// bit-identical under any worker count (the window layout is computed
// sequentially up front; probePeak itself is deterministic).
// When progress is non-nil it receives one observational PhaseProbe event
// per classified band, after the band's slot has been written — a consumer
// never sees a count ahead of the data it describes (though it may read a
// sibling slot mid-write; events only vouch for their own band).
func classifyBands(ctx context.Context, c *core.Client, m *statespace.Model, crossings []float64, omegaMax float64, probes int, progress func(core.ProgressEvent)) ([]Band, error) {
	edges := append([]float64{0}, crossings...)
	bands := make([]Band, len(edges))
	fns := make([]func(int) error, len(edges))
	var probed atomic.Int64
	for i := range edges {
		lo := edges[i]
		hi := math.Inf(1)
		probeHi := math.Min(2*lo, omegaMax)
		if i+1 < len(edges) {
			hi = edges[i+1]
			probeHi = hi
		} else if lo == 0 {
			probeHi = omegaMax // passive model: probe the whole searched band
		}
		if probeHi <= lo {
			// Terminal band opening at (or within rounding of) the certified
			// bound: probe a thin sliver just past the edge — the closest
			// window that still classifies which side of the threshold the
			// band sits on.
			probeHi = lo * (1 + 1e-6)
		}
		bands[i] = Band{Lo: lo, Hi: hi}
		fns[i] = func(int) error {
			peakW, peakS, err := probePeak(m, lo, probeHi, probes)
			if err != nil {
				return err
			}
			bands[i].PeakOmega = peakW
			bands[i].PeakSigma = peakS
			bands[i].Violating = peakS > 1
			if progress != nil {
				progress(core.ProgressEvent{
					Phase: core.PhaseProbe,
					Omega: peakW,
					Done:  int(probed.Add(1)),
					Total: len(edges),
				})
			}
			return nil
		}
	}
	if err := c.RunBatch(ctx, core.PhaseProbe, fns); err != nil {
		return nil, err
	}
	return bands, nil
}

// probePeak samples σ_max on (lo, hi) and refines the best sample with a
// short golden-section search.
func probePeak(m *statespace.Model, lo, hi float64, probes int) (float64, float64, error) {
	if probes < 3 {
		probes = 3
	}
	if hi <= lo {
		return lo, 0, errors.New("passivity: empty probe interval")
	}
	bestW, bestS := lo, -1.0
	// Interior samples only: the band edges are exact crossings (σ = 1).
	for i := 1; i <= probes; i++ {
		w := lo + (hi-lo)*float64(i)/float64(probes+1)
		s, err := m.MaxSigma(w)
		if err != nil {
			return 0, 0, err
		}
		if s > bestS {
			bestW, bestS = w, s
		}
	}
	// Golden-section refinement around the best sample.
	step := (hi - lo) / float64(probes+1)
	a, b := math.Max(lo, bestW-step), math.Min(hi, bestW+step)
	const phi = 0.6180339887498949
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, err := m.MaxSigma(x1)
	if err != nil {
		return 0, 0, err
	}
	f2, err := m.MaxSigma(x2)
	if err != nil {
		return 0, 0, err
	}
	for iter := 0; iter < 25 && (b-a) > 1e-9*(hi-lo); iter++ {
		if f1 > f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			if f1, err = m.MaxSigma(x1); err != nil {
				return 0, 0, err
			}
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			if f2, err = m.MaxSigma(x2); err != nil {
				return 0, 0, err
			}
		}
	}
	w := 0.5 * (a + b)
	s, err := m.MaxSigma(w)
	if err != nil {
		return 0, 0, err
	}
	if s < bestS {
		w, s = bestW, bestS
	}
	return w, s, nil
}

// VerifyBySampling is an independent cross-check of a characterization: it
// sweeps σ_max over a resonance-aware grid and reports every grid point
// violating the threshold together with the band classification implied by
// the report. Used by tests and by the CLI --verify flag.
func VerifyBySampling(m *statespace.Model, rep *Report, points int) error {
	if points <= 0 {
		points = 500
	}
	maxW := rep.OmegaMax
	if maxW == 0 {
		maxW = 3 * m.MaxPoleMagnitude()
	}
	grid := statespace.SweepGrid(m, maxW*1e-4, maxW, points)
	for _, w := range grid {
		s, err := m.MaxSigma(w)
		if err != nil {
			return err
		}
		inViolation := false
		for _, b := range rep.Bands {
			if b.Violating && w > b.Lo && (math.IsInf(b.Hi, 1) || w < b.Hi) {
				inViolation = true
				break
			}
		}
		// Allow slack near crossings where σ ≈ 1.
		const slack = 1e-3
		if s > 1+slack && !inViolation {
			return fmt.Errorf("passivity: σ=%g at ω=%g outside any reported violation band", s, w)
		}
		if s < 1-slack && inViolation {
			return fmt.Errorf("passivity: σ=%g at ω=%g inside a reported violation band", s, w)
		}
	}
	return nil
}

// WorstViolation returns the largest σ_max over all violating bands (1 if
// the model is passive).
func (r *Report) WorstViolation() float64 {
	worst := 1.0
	for _, b := range r.Bands {
		if b.Violating && b.PeakSigma > worst {
			worst = b.PeakSigma
		}
	}
	return worst
}
