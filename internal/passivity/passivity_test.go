package passivity

import (
	"math"
	"testing"

	"repro/internal/arnoldi"
	"repro/internal/core"
	"repro/internal/statespace"
)

func genModel(t *testing.T, seed int64, order int, peak float64) *statespace.Model {
	t.Helper()
	m, err := statespace.Generate(seed, statespace.GenOptions{
		Ports: 2, Order: order, TargetPeak: peak, GridPoints: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func charOpts() Options {
	return Options{Core: core.Options{
		Threads: 2, Seed: 11,
		Arnoldi: arnoldi.SingleShiftParams{NWanted: 4, MaxDim: 40},
	}}
}

func TestCharacterizePassiveModel(t *testing.T) {
	m := genModel(t, 41, 20, 0.9)
	rep, err := Characterize(m, charOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatalf("passive model reported non-passive: crossings %v", rep.Crossings)
	}
	if len(rep.Crossings) != 0 {
		t.Fatalf("passive model with crossings %v", rep.Crossings)
	}
	if len(rep.Bands) != 1 || rep.Bands[0].Violating {
		t.Fatalf("expected a single clean band, got %+v", rep.Bands)
	}
	if rep.WorstViolation() != 1 {
		t.Fatalf("WorstViolation = %g, want 1", rep.WorstViolation())
	}
	if err := VerifyBySampling(m, rep, 300); err != nil {
		t.Fatal(err)
	}
}

func TestCharacterizeNonPassiveModel(t *testing.T) {
	m := genModel(t, 42, 26, 1.06)
	rep, err := Characterize(m, charOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passive {
		t.Fatal("non-passive model reported passive")
	}
	if len(rep.Crossings) == 0 || len(rep.Crossings)%2 != 0 {
		// Crossings of a model with σ(D) < 1 come in pairs (bands open and
		// close; σ starts and ends below 1).
		t.Fatalf("expected an even, positive crossing count, got %v", rep.Crossings)
	}
	viol := rep.Violations()
	if len(viol) == 0 {
		t.Fatal("no violating bands reported")
	}
	for _, b := range viol {
		if b.PeakSigma <= 1 {
			t.Fatalf("violating band with peak σ %g", b.PeakSigma)
		}
		if b.PeakOmega <= b.Lo || (!math.IsInf(b.Hi, 1) && b.PeakOmega >= b.Hi) {
			t.Fatalf("peak ω %g outside band [%g, %g]", b.PeakOmega, b.Lo, b.Hi)
		}
	}
	if rep.WorstViolation() <= 1.0 || rep.WorstViolation() > 1.2 {
		t.Fatalf("worst violation %g out of expected range", rep.WorstViolation())
	}
	if err := VerifyBySampling(m, rep, 300); err != nil {
		t.Fatal(err)
	}
}

func TestBandsPartitionFrequencyAxis(t *testing.T) {
	m := genModel(t, 43, 24, 1.05)
	rep, err := Characterize(m, charOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bands) != len(rep.Crossings)+1 {
		t.Fatalf("%d bands for %d crossings", len(rep.Bands), len(rep.Crossings))
	}
	if rep.Bands[0].Lo != 0 {
		t.Fatal("first band must start at 0")
	}
	for i := 1; i < len(rep.Bands); i++ {
		if rep.Bands[i].Lo != rep.Bands[i-1].Hi {
			t.Fatalf("band %d not contiguous", i)
		}
	}
	if !math.IsInf(rep.Bands[len(rep.Bands)-1].Hi, 1) {
		t.Fatal("last band must extend to +Inf")
	}
}

func TestEnforceMakesModelPassive(t *testing.T) {
	m := genModel(t, 44, 22, 1.05)
	enforced, erep, err := Enforce(m, EnforceOptions{Char: charOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if erep.InitialWorst <= 1 {
		t.Fatalf("initial model unexpectedly passive (worst %g)", erep.InitialWorst)
	}
	if !erep.FinalReport.Passive {
		t.Fatal("final report not passive")
	}
	// Independent verification: σ_max below 1 (+tiny slack) on a fine sweep.
	grid := statespace.SweepGrid(enforced, 1e6, 3*enforced.MaxPoleMagnitude(), 800)
	peak, err := statespace.PeakSigma(enforced, grid)
	if err != nil {
		t.Fatal(err)
	}
	if peak > 1+1e-9 {
		t.Fatalf("enforced model still has σ_max = %g", peak)
	}
	// The original model must be untouched.
	origPeak, err := statespace.PeakSigma(m, statespace.SweepGrid(m, 1e6, 3*m.MaxPoleMagnitude(), 400))
	if err != nil {
		t.Fatal(err)
	}
	if origPeak <= 1 {
		t.Fatal("Enforce modified its input model")
	}
	// Perturbation should be small relative to the residues.
	if erep.ResidueChange <= 0 || erep.ResidueChange > 0.5 {
		t.Fatalf("relative residue change %g out of expected range", erep.ResidueChange)
	}
	// Poles must be identical (stability preserved by construction).
	origPoles := m.Poles()
	newPoles := enforced.Poles()
	for i := range origPoles {
		if origPoles[i] != newPoles[i] {
			t.Fatal("enforcement moved a pole")
		}
	}
}

func TestEnforceOnPassiveModelIsNoop(t *testing.T) {
	m := genModel(t, 45, 18, 0.9)
	enforced, erep, err := Enforce(m, EnforceOptions{Char: charOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if erep.Iterations != 0 || erep.ResidueChange != 0 {
		t.Fatalf("passive model perturbed: %+v", erep)
	}
	for k := range m.Cols {
		if !enforced.Cols[k].C.Equalish(m.Cols[k].C, 0) {
			t.Fatal("residues changed on a passive model")
		}
	}
}

func TestEnforceIterationBudget(t *testing.T) {
	m := genModel(t, 46, 22, 1.08)
	_, _, err := Enforce(m, EnforceOptions{Char: charOpts(), MaxIters: 1})
	if err == nil {
		// A single pass may legitimately succeed on an easy model; make the
		// violation nastier to be sure the budget path is exercised.
		m2 := genModel(t, 46, 22, 1.30)
		if _, _, err2 := Enforce(m2, EnforceOptions{Char: charOpts(), MaxIters: 1}); err2 == nil {
			t.Skip("enforcement converged in one pass on both models")
		}
	}
}
