package passivity

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
)

// TestCharacterizeThreadCountInvariance: pool-routed band probes must keep
// the full report — crossings AND per-band peaks — bit-identical across
// worker counts, exactly like the pre-refactor sequential probe loop.
func TestCharacterizeThreadCountInvariance(t *testing.T) {
	models := []struct {
		seed  int64
		order int
		peak  float64
	}{
		{141, 28, 1.06},
		{142, 24, 1.04},
		{143, 20, 0.92}, // passive: single band over the whole band
	}
	for _, mc := range models {
		m := genModel(t, mc.seed, mc.order, mc.peak)
		var ref *Report
		for _, threads := range []int{1, 2, 8} {
			o := charOpts()
			o.Core.Threads = threads
			rep, err := Characterize(m, o)
			if err != nil {
				t.Fatalf("seed %d threads %d: %v", mc.seed, threads, err)
			}
			if ref == nil {
				ref = rep
				continue
			}
			if len(rep.Crossings) != len(ref.Crossings) || len(rep.Bands) != len(ref.Bands) {
				t.Fatalf("seed %d threads %d: %d crossings/%d bands vs %d/%d at Threads=1",
					mc.seed, threads, len(rep.Crossings), len(rep.Bands), len(ref.Crossings), len(ref.Bands))
			}
			for k := range rep.Crossings {
				if rep.Crossings[k] != ref.Crossings[k] {
					t.Fatalf("seed %d threads %d: crossing %d not bit-identical: %v vs %v",
						mc.seed, threads, k, rep.Crossings[k], ref.Crossings[k])
				}
			}
			for k := range rep.Bands {
				got, want := rep.Bands[k], ref.Bands[k]
				if got.Lo != want.Lo || got.PeakOmega != want.PeakOmega ||
					got.PeakSigma != want.PeakSigma || got.Violating != want.Violating ||
					(got.Hi != want.Hi && !(math.IsInf(got.Hi, 1) && math.IsInf(want.Hi, 1))) {
					t.Fatalf("seed %d threads %d: band %d not bit-identical:\n got %+v\nwant %+v",
						mc.seed, threads, k, got, want)
				}
			}
		}
	}
}

// TestCharacterizeProbesRunAsPoolTasks: on a shared pool, every band probe
// must be accounted as a PhaseProbe pool task (i.e. executed by a pool
// worker, not the submitting goroutine — the worker-goroutine property
// itself is asserted by core.TestRunBatchExecutesOnWorkers) and every
// eigensolver shift as a PhaseEig task.
func TestCharacterizeProbesRunAsPoolTasks(t *testing.T) {
	p := core.NewPool(2)
	defer p.Close()
	m := genModel(t, 144, 24, 1.05)
	o := charOpts()
	o.Core.Pool = p
	rep, err := CharacterizeContext(context.Background(), m, o)
	if err != nil {
		t.Fatal(err)
	}
	st := p.PhaseStats()
	if st[core.PhaseProbe].Tasks != len(rep.Bands) {
		t.Fatalf("PhaseProbe counted %d tasks, report has %d bands",
			st[core.PhaseProbe].Tasks, len(rep.Bands))
	}
	// One extra PhaseEig task is the pool-routed ω_max estimation sweep.
	if st[core.PhaseEig].Tasks != rep.Solver.ShiftsProcessed+1 {
		t.Fatalf("PhaseEig counted %d tasks, want %d shifts + 1 estimate",
			st[core.PhaseEig].Tasks, rep.Solver.ShiftsProcessed)
	}
	// The collect tail (refinements + canonical polish) books PhaseRefine.
	if st[core.PhaseRefine].Tasks == 0 {
		t.Fatal("no PhaseRefine tasks executed on the pool")
	}
}

// TestEnforceConstraintsRunAsPoolTasks: enforcement constraint assembly
// must fan out as PhaseConstraint tasks on the shared pool.
func TestEnforceConstraintsRunAsPoolTasks(t *testing.T) {
	p := core.NewPool(2)
	defer p.Close()
	m := genModel(t, 145, 22, 1.06)
	eo := EnforceOptions{Char: charOpts()}
	eo.Char.Core.Pool = p
	_, rep, err := EnforceContext(context.Background(), m, eo)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations == 0 {
		t.Skip("model came out passive; no perturbation pass ran")
	}
	if n := p.PhaseStats()[core.PhaseConstraint].Tasks; n == 0 {
		t.Fatal("no PhaseConstraint tasks executed on the pool")
	}
}

// TestEnforceOmegaMaxWarmStart: the carried spectral-radius bound must
// not change the enforcement outcome vs re-estimating every iteration —
// same iteration count, same passivity verdict, same final model within
// round-off — while the carried run provably skips the per-iteration
// estimation (its iteration-1+ OmegaMax values come from carryOmegaMax).
func TestEnforceOmegaMaxWarmStart(t *testing.T) {
	mk := func(reestimate bool) (*EnforceReport, []float64) {
		m := genModel(t, 146, 22, 1.06)
		_, rep, err := Enforce(m, EnforceOptions{Char: charOpts(), ReestimateOmegaMax: reestimate})
		if err != nil {
			t.Fatal(err)
		}
		return rep, nil
	}
	carried, _ := mk(false)
	fresh, _ := mk(true)
	if carried.Iterations != fresh.Iterations {
		t.Fatalf("carried bound changed the iteration count: %d vs %d",
			carried.Iterations, fresh.Iterations)
	}
	if !carried.FinalReport.Passive || !fresh.FinalReport.Passive {
		t.Fatal("enforcement did not reach passivity")
	}
	// Outcomes must agree physically; bit-identity is not required here
	// because the search bound (and hence the polish grid) differs.
	if math.Abs(carried.FinalWorst-fresh.FinalWorst) > 1e-6 {
		t.Fatalf("final worst σ diverged: carried %v, fresh %v",
			carried.FinalWorst, fresh.FinalWorst)
	}
}

// TestCarryOmegaMaxInflates: the carried bound must strictly grow with
// the perturbation and never shrink below the previous bound.
func TestCarryOmegaMaxInflates(t *testing.T) {
	if got := carryOmegaMax(100, 0, 1); got <= 100 {
		t.Fatalf("zero-step carry %v must still add the absolute floor", got)
	}
	small := carryOmegaMax(100, 1e-3, 1)
	large := carryOmegaMax(100, 1e-1, 1)
	if !(large > small && small > 100) {
		t.Fatalf("carry not monotone in the step norm: %v vs %v", small, large)
	}
	if got := carryOmegaMax(100, 1, 0); got < 100 {
		t.Fatalf("zero base norm must not shrink the bound: %v", got)
	}
}
