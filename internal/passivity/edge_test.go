package passivity

import (
	"math"
	"strings"
	"testing"

	"repro/internal/statespace"
)

func TestProbePeakFindsResonance(t *testing.T) {
	// A single high-Q resonance: probePeak must locate the resonant
	// frequency accurately via the golden-section refinement.
	m := genModel(t, 51, 6, 1.05)
	// Find the strongest resonance directly with a fine sweep.
	grid := statespace.SweepGrid(m, 1e7, 1e11, 4000)
	var bestW, bestS float64
	for _, w := range grid {
		s, err := m.MaxSigma(w)
		if err != nil {
			t.Fatal(err)
		}
		if s > bestS {
			bestW, bestS = w, s
		}
	}
	w, s, err := probePeak(m, bestW/3, bestW*3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-bestS) > 2e-3*bestS {
		t.Fatalf("probePeak σ=%g, sweep σ=%g", s, bestS)
	}
	if math.Abs(w-bestW)/bestW > 0.02 {
		t.Fatalf("probePeak ω=%g, sweep ω=%g", w, bestW)
	}
}

func TestProbePeakEmptyInterval(t *testing.T) {
	m := genModel(t, 52, 6, 1.02)
	if _, _, err := probePeak(m, 10, 10, 5); err == nil {
		t.Fatal("expected error for empty interval")
	}
}

func TestVerifyBySamplingDetectsTamperedReport(t *testing.T) {
	m := genModel(t, 53, 22, 1.06)
	rep, err := Characterize(m, charOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passive {
		t.Skip("model came out passive")
	}
	// Tamper: claim the model is clean.
	bad := *rep
	bad.Bands = []Band{{Lo: 0, Hi: math.Inf(1), Violating: false, PeakSigma: 0.9}}
	err = VerifyBySampling(m, &bad, 400)
	if err == nil || !strings.Contains(err.Error(), "outside any reported violation band") {
		t.Fatalf("tampered report not detected: %v", err)
	}
	// Tamper the other way: claim a violation where there is none.
	bad2 := *rep
	bad2.Bands = append([]Band(nil), rep.Bands...)
	for i := range bad2.Bands {
		bad2.Bands[i].Violating = true
	}
	err = VerifyBySampling(m, &bad2, 400)
	if err == nil || !strings.Contains(err.Error(), "inside a reported violation band") {
		t.Fatalf("phantom violation not detected: %v", err)
	}
}

func TestEnforceMarginControlsHeadroom(t *testing.T) {
	m := genModel(t, 54, 20, 1.04)
	if testing.Short() {
		t.Skip("short mode")
	}
	enforced, _, err := Enforce(m, EnforceOptions{Char: charOpts(), Margin: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	// With a 5e-3 margin the peaks should sit visibly below 1.
	grid := statespace.SweepGrid(enforced, 1e7, 3*enforced.MaxPoleMagnitude(), 600)
	peak, err := statespace.PeakSigma(enforced, grid)
	if err != nil {
		t.Fatal(err)
	}
	if peak > 1 {
		t.Fatalf("peak %g above 1 after margin enforcement", peak)
	}
}

func TestCharacterizeSolverStatsPropagated(t *testing.T) {
	m := genModel(t, 55, 16, 1.05)
	rep, err := Characterize(m, charOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solver.ShiftsProcessed == 0 || rep.Solver.Elapsed <= 0 {
		t.Fatalf("solver stats missing: %+v", rep.Solver)
	}
	if rep.OmegaMax <= 0 {
		t.Fatal("OmegaMax not set")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.ProbePoints != 40 {
		t.Fatalf("ProbePoints default = %d", o.ProbePoints)
	}
	var e EnforceOptions
	e.setDefaults()
	if e.MaxIters != 20 || e.Margin != 1e-3 || e.MaxSigmaPerBand != 4 {
		t.Fatalf("enforce defaults: %+v", e)
	}
}

func TestResidueNorm(t *testing.T) {
	m := genModel(t, 56, 8, 1.02)
	n := residueNorm(m)
	if n <= 0 {
		t.Fatal("zero residue norm for a non-degenerate model")
	}
	var ss float64
	for k := range m.Cols {
		f := m.Cols[k].C.FrobNorm()
		ss += f * f
	}
	if math.Abs(n-math.Sqrt(ss)) > 1e-12*n {
		t.Fatal("residueNorm formula mismatch")
	}
}
