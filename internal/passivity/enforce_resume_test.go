package passivity

import (
	"errors"
	"strings"
	"testing"
)

// TestEnforceResumeBitIdentical: an enforcement resumed from any of its
// iteration checkpoints must converge to the same iteration count, the
// same residues, and a bit-identical final report as the uninterrupted
// run — the durability guarantee the job store builds on.
func TestEnforceResumeBitIdentical(t *testing.T) {
	m := genModel(t, 46, 22, 1.08)
	var cks []EnforceCheckpoint
	refModel, refRep, err := Enforce(m, EnforceOptions{
		Char:       charOpts(),
		Checkpoint: func(ck EnforceCheckpoint) { cks = append(cks, ck) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) < 2 {
		t.Fatalf("setup: %d checkpoints, want a multi-iteration enforcement", len(cks))
	}
	for i := range cks {
		rm, rrep, err := Enforce(m, EnforceOptions{Char: charOpts(), Resume: &cks[i]})
		if err != nil {
			t.Fatalf("resume from iter %d: %v", cks[i].Iter, err)
		}
		if rrep.Iterations != refRep.Iterations {
			t.Fatalf("resume from iter %d: %d iterations vs %d uninterrupted",
				cks[i].Iter, rrep.Iterations, refRep.Iterations)
		}
		if rrep.InitialWorst != refRep.InitialWorst || rrep.FinalWorst != refRep.FinalWorst ||
			rrep.ResidueChange != refRep.ResidueChange {
			t.Fatalf("resume from iter %d: report scalars diverged: %+v vs %+v",
				cks[i].Iter, rrep, refRep)
		}
		got, want := rrep.FinalReport.Crossings, refRep.FinalReport.Crossings
		if len(got) != len(want) {
			t.Fatalf("resume from iter %d: %d crossings vs %d", cks[i].Iter, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("resume from iter %d crossing %d: %v != %v (not bit-identical)",
					cks[i].Iter, k, got[k], want[k])
			}
		}
		for c := range rm.Cols {
			for j, v := range rm.Cols[c].C.Data {
				if v != refModel.Cols[c].C.Data[j] {
					t.Fatalf("resume from iter %d: residue col %d elem %d %v != %v",
						cks[i].Iter, c, j, v, refModel.Cols[c].C.Data[j])
				}
			}
		}
	}
}

// TestEnforceResumeExhaustedBudget: resuming from a checkpoint taken at
// the iteration budget re-characterizes once to rebuild the terminal
// report instead of silently skipping the loop.
func TestEnforceResumeExhaustedBudget(t *testing.T) {
	m := genModel(t, 46, 22, 1.30)
	var cks []EnforceCheckpoint
	_, _, err := Enforce(m, EnforceOptions{
		Char: charOpts(), MaxIters: 2,
		Checkpoint: func(ck EnforceCheckpoint) { cks = append(cks, ck) },
	})
	if !errors.Is(err, ErrEnforcementFailed) {
		t.Fatalf("setup: want ErrEnforcementFailed, got %v", err)
	}
	if len(cks) != 2 || cks[1].Iter != 2 {
		t.Fatalf("setup: checkpoints %d (last iter %d), want 2 ending at the budget",
			len(cks), cks[len(cks)-1].Iter)
	}
	rm, rrep, err := Enforce(m, EnforceOptions{Char: charOpts(), MaxIters: 2, Resume: &cks[1]})
	if !errors.Is(err, ErrEnforcementFailed) {
		t.Fatalf("resumed exhausted run: want ErrEnforcementFailed, got %v", err)
	}
	if rm == nil || rrep == nil {
		t.Fatal("resumed exhausted run returned no partial model/report")
	}
	if rrep.Iterations != 2 || rrep.FinalReport == nil || rrep.FinalWorst <= 1 {
		t.Fatalf("resumed exhausted run report inconsistent: %+v", rrep)
	}
}

// TestEnforceResumeRejectsCorrupt: resume states that do not match the
// run are rejected up front.
func TestEnforceResumeRejectsCorrupt(t *testing.T) {
	m := genModel(t, 46, 22, 1.08)
	var cks []EnforceCheckpoint
	if _, _, err := Enforce(m, EnforceOptions{
		Char:       charOpts(),
		Checkpoint: func(ck EnforceCheckpoint) { cks = append(cks, ck) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("setup: no checkpoints")
	}
	over := cks[0]
	over.Iter = 5
	if _, _, err := Enforce(m, EnforceOptions{Char: charOpts(), MaxIters: 2, Resume: &over}); err == nil ||
		!strings.Contains(err.Error(), "budget") && !strings.Contains(err.Error(), "MaxIters") && !strings.Contains(err.Error(), "iteration") {
		t.Fatalf("over-budget resume: want iteration-budget error, got %v", err)
	}
	short := cks[0]
	short.Residues = short.Residues[:len(short.Residues)-1]
	if _, _, err := Enforce(m, EnforceOptions{Char: charOpts(), Resume: &short}); err == nil {
		t.Fatal("shape-mismatched resume state accepted")
	}
	zero := cks[0]
	zero.Iter = 0
	if _, _, err := Enforce(m, EnforceOptions{Char: charOpts(), Resume: &zero}); err == nil {
		t.Fatal("iter-0 resume state accepted")
	}
}
