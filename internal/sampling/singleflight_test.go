package sampling

import (
	"sync"
	"testing"

	"repro/internal/statespace"
)

// TestSamplerSingleFlight: concurrent requests for the same ω must share
// one evaluation — the old implementation dropped the lock around MaxSigma
// and double-evaluated (and double-counted) concurrent misses.
func TestSamplerSingleFlight(t *testing.T) {
	m, err := statespace.Generate(71, statespace.GenOptions{
		Ports: 2, Order: 16, TargetPeak: 1.02, GridPoints: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &sampler{m: m, cache: make(map[float64]*sampleEntry)}
	freqs := []float64{1e8, 2e8, 3e8}
	const goroutinesPerFreq = 16
	var wg sync.WaitGroup
	vals := make([][]float64, len(freqs))
	for fi := range freqs {
		vals[fi] = make([]float64, goroutinesPerFreq)
		for g := 0; g < goroutinesPerFreq; g++ {
			wg.Add(1)
			go func(fi, g int) {
				defer wg.Done()
				v, err := s.sigma(freqs[fi])
				if err != nil {
					t.Error(err)
					return
				}
				vals[fi][g] = v
			}(fi, g)
		}
	}
	wg.Wait()
	if s.evals != len(freqs) {
		t.Fatalf("evals = %d, want exactly %d (one per distinct ω)", s.evals, len(freqs))
	}
	for fi := range freqs {
		for g := 1; g < goroutinesPerFreq; g++ {
			if vals[fi][g] != vals[fi][0] {
				t.Fatalf("ω %g: inconsistent cached values", freqs[fi])
			}
		}
	}
}
