package sampling

import (
	"math"
	"testing"

	"repro/internal/hamiltonian"
	"repro/internal/mat"
	"repro/internal/statespace"
)

func genModel(t *testing.T, seed int64, order int, peak float64) *statespace.Model {
	t.Helper()
	m, err := statespace.Generate(seed, statespace.GenOptions{
		Ports: 2, Order: order, TargetPeak: peak, GridPoints: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSamplingFindsCrossingsOfNonPassiveModel(t *testing.T) {
	m := genModel(t, 71, 20, 1.06)
	op, err := hamiltonian.New(m, hamiltonian.Scattering)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := op.FullImagEigs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) == 0 {
		t.Skip("model came out passive")
	}
	res, err := Characterize(m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passive {
		t.Fatal("sampling missed all violations")
	}
	// Every sampled crossing must match a true Hamiltonian crossing.
	for _, c := range res.Crossings {
		best := math.Inf(1)
		for _, w := range truth {
			if d := math.Abs(c.Omega - w); d < best {
				best = d
			}
		}
		if best > 1e-4*res.Crossings[len(res.Crossings)-1].Omega+1e3 {
			t.Fatalf("sampled crossing %g has no Hamiltonian counterpart (gap %g)", c.Omega, best)
		}
	}
	if res.Evaluations == 0 {
		t.Fatal("evaluation counter broken")
	}
}

func TestSamplingPassiveModel(t *testing.T) {
	m := genModel(t, 72, 16, 0.9)
	res, err := Characterize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passive || len(res.Crossings) != 0 {
		t.Fatalf("passive model flagged: %+v", res.Frequencies())
	}
}

// TestSamplingMissesNarrowViolation demonstrates the fundamental weakness
// the paper's Hamiltonian approach fixes: a violation band much narrower
// than the sweep resolution is invisible to sampling but is found exactly
// by the eigensolver.
func TestSamplingMissesNarrowViolation(t *testing.T) {
	// Hand-build a 1-port model: a single extremely high-Q resonance
	// produces a violation band of relative width ~1/Q.
	q := 1e7
	w0 := 1e9
	sigma := -w0 / q // half-width ~100 rad/s on a 1e9 band
	col := statespace.Column{
		Blocks: []statespace.Block{{Size: 2, Sigma: sigma, Omega: w0, B1: 2}},
		C:      mat.NewDense(1, 2),
	}
	// Residue tuned so the resonance peaks just above 1: with b = [2,0]
	// the resonant gain is H(jω₀) ≈ c₁/|σ|, so c₁ = 1.1|σ| peaks at ≈1.1.
	col.C.Set(0, 0, 1.1*math.Abs(sigma))
	m := &statespace.Model{P: 1, D: mat.NewDense(1, 1), Cols: []statespace.Column{col}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Confirm the violation exists at the resonance.
	peak, err := m.MaxSigma(w0)
	if err != nil {
		t.Fatal(err)
	}
	if peak <= 1 {
		t.Fatalf("setup bug: σ(jω₀) = %g ≤ 1", peak)
	}

	// A plain log sweep at a realistic resolution misses it: don't seed
	// with the pole locations (InitialPoints grid only). We emulate a
	// blind sweep by removing the model's resonance hints — build the
	// sweep manually over a wide band.
	blind := 0
	for _, w := range statespace.LogGrid(1e7, 1e11, 2000) {
		s, err := m.MaxSigma(w)
		if err != nil {
			t.Fatal(err)
		}
		if s > 1 {
			blind++
		}
	}
	if blind != 0 {
		t.Fatalf("blind 2000-point sweep unexpectedly caught the %g-rad/s-wide band", 2*math.Abs(sigma))
	}

	// The Hamiltonian eigensolver finds the band edges exactly.
	op, err := hamiltonian.New(m, hamiltonian.Scattering)
	if err != nil {
		t.Fatal(err)
	}
	crossings, err := op.FullImagEigs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) != 2 {
		t.Fatalf("Hamiltonian found %d crossings, want 2 (band edges): %v", len(crossings), crossings)
	}
	width := crossings[1] - crossings[0]
	if width <= 0 || width > 1e4 {
		t.Fatalf("violation band width %g implausible", width)
	}
}

func TestSamplingEmptyBandError(t *testing.T) {
	m := genModel(t, 73, 10, 1.02)
	if _, err := Characterize(m, Options{OmegaMin: 10, OmegaMax: 5}); err == nil {
		t.Fatal("expected error for empty band")
	}
}

func TestSamplingCrossingsComeInPairs(t *testing.T) {
	m := genModel(t, 74, 24, 1.08)
	res, err := Characterize(m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crossings)%2 != 0 {
		t.Fatalf("odd crossing count %d", len(res.Crossings))
	}
	// Rising/falling must alternate starting with rising (σ(D) < 1 at ω=0).
	for i, c := range res.Crossings {
		wantRising := i%2 == 0
		if c.Rising != wantRising {
			t.Fatalf("crossing %d direction %v, want %v", i, c.Rising, wantRising)
		}
	}
}
