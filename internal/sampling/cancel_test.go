package sampling

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestCharacterizeContextPreCanceled: a canceled context aborts the
// sequential sweep before any refinement and surfaces context.Canceled
// (the ctxflow contract: the sweep is cancelable end to end).
func TestCharacterizeContextPreCanceled(t *testing.T) {
	m := genModel(t, 71, 20, 1.06)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CharacterizeContext(ctx, m, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential sweep err = %v, want context.Canceled", err)
	}
	if _, err := CharacterizeContext(ctx, m, Options{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("worker sweep err = %v, want context.Canceled", err)
	}
}

// TestCharacterizeContextNilAndBackgroundAgree: a nil ctx defaults to
// context.Background(), and the context-free wrapper is byte-identical
// to it.
func TestCharacterizeContextNilAndBackgroundAgree(t *testing.T) {
	m := genModel(t, 71, 20, 1.06)
	plain, err := Characterize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := CharacterizeContext(nil, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, viaNil) {
		t.Fatalf("nil-ctx sweep diverged from wrapper: %+v vs %+v", viaNil, plain)
	}
}
