// Package sampling implements adaptive-frequency-sampling passivity
// characterization (Grivet-Talocia 2007, ref. [17] of the DATE'11 paper):
// the pre-Hamiltonian approach that hunts for singular-value threshold
// crossings by recursively refining a frequency sweep. It serves as the
// baseline the Hamiltonian eigensolver is motivated against — sampling is
// simple and embarrassingly parallel, but it can only certify passivity up
// to the resolution of the sweep and famously misses narrow violation
// bands (demonstrated in this package's tests).
//
// Invariants: each distinct ω is evaluated exactly once per sweep
// (single-flight memoization), and refinement decisions depend only on the
// evaluated values — results are independent of evaluation order and
// therefore of the worker count.
//
// Concurrency: with Options.Pool/Client set, the bootstrap grid runs as
// one core.PhaseSample task batch on the shared pool (each task writes an
// index-assigned slot); otherwise evaluation is sequential on the calling
// goroutine. Characterize must not be called from a pool worker.
package sampling

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/statespace"
)

// Options controls the adaptive sweep.
type Options struct {
	// OmegaMin, OmegaMax bound the searched band. OmegaMax = 0 uses
	// 3× the largest pole magnitude.
	OmegaMin, OmegaMax float64
	// InitialPoints is the size of the coarse bootstrap grid. Default 128.
	InitialPoints int
	// MaxRefinements bounds the number of interval subdivisions. Default
	// 4096.
	MaxRefinements int
	// RelResolution stops refining an interval once it is narrower than
	// RelResolution × OmegaMax. Default 1e-6.
	RelResolution float64
	// Threshold is the passivity threshold on σ_max. Default 1.
	Threshold float64
	// Workers parallelizes the σ evaluations with private goroutines when
	// no Pool is given. Default 1.
	Workers int
	// Pool routes the bootstrap-grid σ evaluations through a shared
	// worker pool as one PhaseSample task batch instead of private
	// goroutines, so a fleet machine stays full during sampling sweeps.
	// The adaptive refinement stays on the calling goroutine (each
	// subdivision depends on the previous σ values); the per-ω cache and
	// results are identical either way.
	Pool *core.Pool
	// Client optionally pins the pool scheduling identity (priority +
	// fairness weight) the sweep's tasks are charged to; an ephemeral
	// default-priority client of Pool is used when nil.
	Client *core.Client
}

func (o *Options) setDefaults(m *statespace.Model) {
	if o.OmegaMax == 0 {
		o.OmegaMax = 3 * m.MaxPoleMagnitude()
	}
	if o.InitialPoints == 0 {
		o.InitialPoints = 128
	}
	if o.MaxRefinements == 0 {
		o.MaxRefinements = 4096
	}
	if o.RelResolution == 0 {
		o.RelResolution = 1e-6
	}
	if o.Threshold == 0 {
		o.Threshold = 1
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
}

// Crossing is a detected threshold crossing, bracketed between two sampled
// frequencies and refined by bisection.
type Crossing struct {
	Omega  float64 // refined crossing estimate
	Rising bool    // σ_max crosses upward with increasing ω
}

// Result of an adaptive sweep.
type Result struct {
	Crossings []Crossing
	// Evaluations counts σ_max evaluations (the cost unit of this method).
	Evaluations int
	// Resolution is the finest interval width the sweep reached.
	Resolution float64
	// Passive is the sweep's verdict — only as trustworthy as the
	// resolution allows.
	Passive bool
}

// sampleEntry is one single-flight σ_max evaluation: the first goroutine to
// request ω owns the computation; later requesters block on done.
type sampleEntry struct {
	done chan struct{}
	val  float64
	err  error
}

// sampler caches σ_max evaluations on demand with per-ω single-flight:
// concurrent misses on the same frequency used to race past the lock and
// evaluate (and count) the same σ twice.
type sampler struct {
	m     *statespace.Model
	mu    sync.Mutex
	cache map[float64]*sampleEntry
	evals int
}

func (s *sampler) sigma(w float64) (float64, error) {
	s.mu.Lock()
	if e, ok := s.cache[w]; ok {
		s.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &sampleEntry{done: make(chan struct{})}
	s.cache[w] = e
	s.evals++
	s.mu.Unlock()
	e.val, e.err = s.m.MaxSigma(w)
	close(e.done)
	return e.val, e.err
}

// Characterize runs the adaptive sweep and returns the detected crossings.
func Characterize(m *statespace.Model, opts Options) (*Result, error) {
	return CharacterizeContext(context.Background(), m, opts)
}

// CharacterizeContext is Characterize with cancellation: ctx aborts the
// bootstrap batch between tasks, the refinement loop between
// subdivisions, and the bisection loop between evaluations. A nil ctx
// behaves like context.Background().
func CharacterizeContext(ctx context.Context, m *statespace.Model, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.setDefaults(m)
	if opts.OmegaMax <= opts.OmegaMin {
		return nil, errors.New("sampling: empty band")
	}
	s := &sampler{m: m, cache: make(map[float64]*sampleEntry)}

	// Bootstrap grid: log-spaced plus the resonance frequencies (an
	// adaptive sampler in the spirit of [17] seeds on the model poles).
	grid := statespace.SweepGrid(m, math.Max(opts.OmegaMin, opts.OmegaMax*1e-6), opts.OmegaMax, opts.InitialPoints)
	if opts.OmegaMin == 0 {
		grid = append([]float64{0}, grid...)
	}
	sort.Float64s(grid)
	// Deduplicate.
	pts := grid[:0]
	for _, w := range grid {
		if len(pts) == 0 || w > pts[len(pts)-1] {
			pts = append(pts, w)
		}
	}

	// Parallel pre-evaluation of the bootstrap grid: one pool task per ω
	// when a shared pool is wired up, private goroutines otherwise. Either
	// way the per-ω single-flight cache makes the evaluation set — and the
	// Evaluations counter — identical to a serial sweep.
	switch {
	case opts.Pool != nil || opts.Client != nil:
		client := opts.Client
		if client != nil && opts.Pool != nil && client.Pool() != opts.Pool {
			// Mirror core.Pool.Submit: a client of another pool must not
			// silently reroute the sweep.
			return nil, errors.New("sampling: Options.Client is registered with a different pool")
		}
		if client == nil {
			client = opts.Pool.NewClient(core.ClientOptions{})
		}
		fns := make([]func(int) error, len(pts))
		for i, w := range pts {
			fns[i] = func(int) error {
				_, err := s.sigma(w)
				return err
			}
		}
		if err := client.RunBatch(ctx, core.PhaseSample, fns); err != nil {
			return nil, err
		}
	case opts.Workers > 1:
		var wg sync.WaitGroup
		sem := make(chan struct{}, opts.Workers)
		var firstErr error
		var errMu sync.Mutex
		for _, w := range pts {
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(w float64) {
				defer wg.Done()
				defer func() { <-sem }()
				if _, err := s.sigma(w); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Refinement queue: intervals whose endpoints disagree about the
	// threshold, or whose curvature suggests a hidden excursion.
	type iv struct{ lo, hi float64 }
	var queue []iv
	for i := 1; i < len(pts); i++ {
		queue = append(queue, iv{pts[i-1], pts[i]})
	}
	minWidth := opts.RelResolution * opts.OmegaMax
	resolution := opts.OmegaMax
	var brackets []iv
	refines := 0
	for len(queue) > 0 && refines < opts.MaxRefinements {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		w := g.hi - g.lo
		if w < resolution {
			resolution = w
		}
		slo, err := s.sigma(g.lo)
		if err != nil {
			return nil, err
		}
		shi, err := s.sigma(g.hi)
		if err != nil {
			return nil, err
		}
		crossed := (slo-opts.Threshold)*(shi-opts.Threshold) < 0
		if w <= minWidth {
			if crossed {
				brackets = append(brackets, g)
			}
			continue
		}
		mid := 0.5 * (g.lo + g.hi)
		smid, err := s.sigma(mid)
		if err != nil {
			return nil, err
		}
		refines++
		// Refine when a crossing is bracketed on either half, or when the
		// midpoint bulges toward the threshold (possible hidden band).
		loCross := (slo-opts.Threshold)*(smid-opts.Threshold) < 0
		hiCross := (smid-opts.Threshold)*(shi-opts.Threshold) < 0
		bulge := smid > math.Max(slo, shi) && smid > opts.Threshold*0.97
		if loCross || bulge || w > 4*minWidth && smid > 0.9*opts.Threshold {
			queue = append(queue, iv{g.lo, mid})
		}
		if hiCross || bulge || w > 4*minWidth && smid > 0.9*opts.Threshold {
			queue = append(queue, iv{mid, g.hi})
		}
	}

	// Bisect each bracket to the resolution limit.
	res := &Result{Resolution: resolution}
	for _, b := range brackets {
		lo, hi := b.lo, b.hi
		slo, err := s.sigma(lo)
		if err != nil {
			return nil, err
		}
		for hi-lo > minWidth/16 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			mid := 0.5 * (lo + hi)
			smid, err := s.sigma(mid)
			if err != nil {
				return nil, err
			}
			if (slo-opts.Threshold)*(smid-opts.Threshold) < 0 {
				hi = mid
			} else {
				lo, slo = mid, smid
			}
		}
		shiFinal, err := s.sigma(b.hi)
		if err != nil {
			return nil, err
		}
		res.Crossings = append(res.Crossings, Crossing{
			Omega:  0.5 * (lo + hi),
			Rising: shiFinal > opts.Threshold,
		})
	}
	sort.Slice(res.Crossings, func(i, j int) bool { return res.Crossings[i].Omega < res.Crossings[j].Omega })
	res.Evaluations = s.evals
	res.Passive = len(res.Crossings) == 0
	return res, nil
}

// Frequencies returns just the crossing frequencies, sorted.
func (r *Result) Frequencies() []float64 {
	out := make([]float64, len(r.Crossings))
	for i, c := range r.Crossings {
		out[i] = c.Omega
	}
	return out
}
