package sampling

import (
	"testing"

	"repro/internal/core"
)

// TestSamplingPoolRoutedMatchesLocal: routing the bootstrap σ-sweep
// through a shared pool must leave crossings, verdict, and the evaluation
// count identical to the private-goroutine path — the pool changes where
// the per-ω tasks run, never what they compute.
func TestSamplingPoolRoutedMatchesLocal(t *testing.T) {
	m := genModel(t, 77, 24, 1.06)
	local, err := Characterize(m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	p := core.NewPool(4)
	defer p.Close()
	pooled, err := Characterize(m, Options{Pool: p})
	if err != nil {
		t.Fatal(err)
	}

	if len(pooled.Crossings) != len(local.Crossings) {
		t.Fatalf("pooled found %d crossings, local %d", len(pooled.Crossings), len(local.Crossings))
	}
	for i := range pooled.Crossings {
		if pooled.Crossings[i] != local.Crossings[i] {
			t.Fatalf("crossing %d: pooled %+v != local %+v", i, pooled.Crossings[i], local.Crossings[i])
		}
	}
	if pooled.Passive != local.Passive || pooled.Evaluations != local.Evaluations {
		t.Fatalf("pooled verdict/evals (%v, %d) diverged from local (%v, %d)",
			pooled.Passive, pooled.Evaluations, local.Passive, local.Evaluations)
	}
	// The grid points must have been executed as pool tasks.
	if st := p.PhaseStats()[core.PhaseSample]; st.Tasks == 0 {
		t.Fatal("no PhaseSample tasks executed on the pool")
	}
}

// TestSamplingRejectsForeignClient: a Client of another pool alongside an
// explicit Pool must error, not silently reroute the sweep.
func TestSamplingRejectsForeignClient(t *testing.T) {
	m := genModel(t, 78, 12, 1.0)
	a := core.NewPool(1)
	defer a.Close()
	b := core.NewPool(1)
	defer b.Close()
	if _, err := Characterize(m, Options{Pool: a, Client: b.NewClient(core.ClientOptions{})}); err == nil {
		t.Fatal("foreign client accepted")
	}
}
