// Package touchstone reads and writes Touchstone® .snp files (version
// 1.x), the industry interchange format for tabulated scattering data. It
// is the bridge between real measurement/EM-solver outputs and the Vector
// Fitting front end of this library (paper Sec. II: "frequency samples of
// the scattering matrix ... via electromagnetic simulation or direct
// measurement").
//
// Supported: # HZ/KHZ/MHZ/GHZ S RI/MA/DB R <ref>, comment lines, the
// standard column layouts for 1- and 2-port files and the row-wrapped
// layout for n ≥ 3 ports. Only S-parameters are accepted (Y/Z/H/G data is
// rejected), matching the scattering representation used throughout.
package touchstone

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"strconv"
	"strings"

	"repro/internal/mat"
	"repro/internal/vectfit"
)

// Format is the number-pair encoding of the data columns.
type Format int

const (
	// RI encodes real/imaginary pairs.
	RI Format = iota
	// MA encodes magnitude/angle-in-degrees pairs.
	MA
	// DB encodes 20·log10(magnitude)/angle-in-degrees pairs.
	DB
)

func (f Format) String() string {
	switch f {
	case RI:
		return "RI"
	case MA:
		return "MA"
	case DB:
		return "DB"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Data is a parsed Touchstone file.
type Data struct {
	Ports     int
	Reference float64 // reference impedance in ohms
	Samples   []vectfit.Sample
}

// dbFloor is the magnitude floor used by Write in DB format: exact zeros
// (|S| = 0 ⇒ −Inf dB) are clamped here so the emitted file stays parseable.
const dbFloor = -300

var unitScale = map[string]float64{
	"HZ": 2 * math.Pi, "KHZ": 2 * math.Pi * 1e3,
	"MHZ": 2 * math.Pi * 1e6, "GHZ": 2 * math.Pi * 1e9,
}

// Parse reads a Touchstone stream with the given port count (the count is
// conventionally encoded in the file extension .sNp, so callers must
// supply it).
func Parse(r io.Reader, ports int) (*Data, error) {
	if ports < 1 {
		return nil, errors.New("touchstone: ports must be ≥ 1")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	d := &Data{Ports: ports, Reference: 50}
	format := MA // Touchstone default
	scale := 2 * math.Pi * 1e9
	sawOption := false
	var values []float64
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "!"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if sawOption {
				return nil, errors.New("touchstone: multiple option lines")
			}
			sawOption = true
			toks := strings.Fields(strings.ToUpper(line[1:]))
			for i := 0; i < len(toks); i++ {
				switch tok := toks[i]; tok {
				case "HZ", "KHZ", "MHZ", "GHZ":
					scale = unitScale[tok]
				case "S":
					// scattering — accepted
				case "Y", "Z", "H", "G":
					return nil, fmt.Errorf("touchstone: %s-parameters not supported (scattering only)", tok)
				case "RI":
					format = RI
				case "MA":
					format = MA
				case "DB":
					format = DB
				case "R":
					if i+1 >= len(toks) {
						return nil, errors.New("touchstone: R without impedance value")
					}
					v, err := strconv.ParseFloat(toks[i+1], 64)
					if err != nil {
						return nil, fmt.Errorf("touchstone: bad reference impedance %q", toks[i+1])
					}
					d.Reference = v
					i++
				default:
					return nil, fmt.Errorf("touchstone: unknown option token %q", tok)
				}
			}
			continue
		}
		if !sawOption {
			// The spec puts the option line before any data. Guessing the
			// GHz/MA defaults for headerless data silently misscales every
			// frequency when the file was actually Hz/RI.
			return nil, errors.New("touchstone: data before the # option line")
		}
		for _, f := range strings.Fields(line) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("touchstone: bad number %q", f)
			}
			values = append(values, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	perSample := 1 + 2*ports*ports
	if len(values) == 0 || len(values)%perSample != 0 {
		return nil, fmt.Errorf("touchstone: %d values is not a multiple of %d (1 freq + %d pairs)",
			len(values), perSample, ports*ports)
	}
	nSamples := len(values) / perSample
	var lastFreq float64
	for s := 0; s < nSamples; s++ {
		chunk := values[s*perSample : (s+1)*perSample]
		freq := chunk[0] * scale
		if s > 0 && freq <= lastFreq {
			return nil, fmt.Errorf("touchstone: frequencies not strictly increasing at sample %d", s)
		}
		lastFreq = freq
		h := mat.NewCDense(ports, ports)
		for k := 0; k < ports*ports; k++ {
			a, b := chunk[1+2*k], chunk[2+2*k]
			var v complex128
			switch format {
			case RI:
				v = complex(a, b)
			case MA:
				v = cmplx.Rect(a, b*math.Pi/180)
			case DB:
				v = cmplx.Rect(math.Pow(10, a/20), b*math.Pi/180)
			}
			// Touchstone order: row-major S11 S12 … except 2-port files,
			// which historically store S11 S21 S12 S22 (column-major).
			i, j := k/ports, k%ports
			if ports == 2 {
				i, j = k%ports, k/ports
			}
			h.Set(i, j, v)
		}
		d.Samples = append(d.Samples, vectfit.Sample{Omega: freq, H: h})
	}
	return d, nil
}

// Write emits the samples as a Touchstone file in the requested format,
// with frequencies in GHz.
func Write(w io.Writer, samples []vectfit.Sample, format Format, reference float64) error {
	if len(samples) == 0 {
		return errors.New("touchstone: no samples")
	}
	ports := samples[0].H.Rows
	if reference <= 0 {
		reference = 50
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "! generated by repro (DATE'11 Hamiltonian eigensolver reproduction)\n")
	fmt.Fprintf(bw, "# GHz S %s R %g\n", format, reference)
	for _, s := range samples {
		if s.H.Rows != ports || s.H.Cols != ports {
			return errors.New("touchstone: inconsistent sample dimensions")
		}
		fmt.Fprintf(bw, "%.9g", s.Omega/(2*math.Pi*1e9))
		for k := 0; k < ports*ports; k++ {
			i, j := k/ports, k%ports
			if ports == 2 {
				i, j = k%ports, k/ports
			}
			v := s.H.At(i, j)
			var a, b float64
			switch format {
			case RI:
				a, b = real(v), imag(v)
			case MA:
				a, b = cmplx.Abs(v), cmplx.Phase(v)*180/math.Pi
			case DB:
				a, b = 20*math.Log10(cmplx.Abs(v)), cmplx.Phase(v)*180/math.Pi
				// 20·log10(0) = −Inf, which Parse (and every other reader)
				// rejects; clamp exact zeros and denormal magnitudes to a
				// floor far below any physical S-parameter dynamic range.
				if a < dbFloor {
					a = dbFloor
				}
			}
			fmt.Fprintf(bw, " %.12g %.12g", a, b)
			// Wrap rows for n≥3 ports per the spec's readability rule.
			if ports >= 3 && (k+1)%ports == 0 && k+1 < ports*ports {
				fmt.Fprintf(bw, "\n")
			}
		}
		fmt.Fprintf(bw, "\n")
	}
	return bw.Flush()
}
