package touchstone

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/cmplx"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/vectfit"
)

// seedCorpus feeds every checked-in golden .snp file plus handcrafted
// format/unit/layout variants into a fuzz target. The goldens cover
// RI/MA/DB × ports 1–4 (including the 2-port column-major quirk and the
// row-wrapped n≥3 layout); the handcrafted seeds cover the unit keywords,
// header quirks and each rejection path.
func seedCorpus(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.s*p"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no golden seed files: %v", err)
	}
	ext := regexp.MustCompile(`\.s(\d)p$`)
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		m := ext.FindStringSubmatch(p)
		f.Add(b, m[1][0]-'0')
	}
	for _, s := range []struct {
		src   string
		ports byte
	}{
		{"# HZ S RI R 50\n1e9 0.5 0.1\n2e9 0.4 -0.2\n", 1},
		{"# KHz S MA\n100 0.5 45\n200 0.4 -90\n", 1},
		{"# MHz S DB R 75\n100 -3.0 10\n", 1},
		{"#GHz S RI\n1 11 0 21 0 12 0 22 0\n", 2}, // 2-port column-major
		{"! c\n# GHz S RI ! trailing\n1 0.5 0.1\n", 1},
		{"# GHz S RI\n1 0.5\n", 1},            // truncated sample
		{"# GHz S RI\n2 1 0\n1 1 0\n", 1},     // non-monotone
		{"# GHz Y RI\n1 0.5 0.1\n", 1},        // rejected representation
		{"# GHz S RI R\n1 0.5 0.1\n", 1},      // R without value
		{"# GHz S RI\n# GHz S RI\n1 1 0\n", 1} /* double option */, {"1 1 0\n", 1}, // data first
		{"# GHz S RI\n1 NaN 0\n", 1},
		{"#DB\n0 7000 0", 1},             // finite token, 10^(a/20) overflows (found by fuzzing)
		{"# GHz S RI\n1e308 1 0\n", 1},   // finite freq token overflows after unit scaling
		{"# Hz S RI\n1e300 1 0\n2e300 1 0\n", 1}, // large but finite after scaling — accepted
		{"", 3},
	} {
		f.Add([]byte(s.src), s.ports)
	}
}

// readerCollect drains a streaming parse of data, mirroring Parse's
// accept/reject contract (including the ≥1-sample rule).
func readerCollect(data []byte, ports int) ([]vectfit.Sample, float64, error) {
	rd, err := NewReader(bytes.NewReader(data), ports)
	if err != nil {
		return nil, 0, err
	}
	var out []vectfit.Sample
	if err := rd.Each(func(s vectfit.Sample) error { out = append(out, s); return nil }); err != nil {
		return nil, 0, err
	}
	if len(out) == 0 {
		return nil, 0, errors.New("no data samples")
	}
	return out, rd.Reference(), nil
}

// FuzzParse cross-checks the buffered and streaming entry points on
// arbitrary input: no panics, no hangs, identical accept/reject decisions,
// and bit-identical samples when accepted — plus the parsed-data
// invariants every downstream consumer (vectfit, the Hamiltonian tools)
// relies on.
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte, pb byte) {
		// Identity on 1–4 so every seed parses at its declared port count.
		ports := (int(pb)+3)%4 + 1
		d, perr := Parse(bytes.NewReader(data), ports)
		streamed, ref, serr := readerCollect(data, ports)
		if (perr == nil) != (serr == nil) {
			t.Fatalf("accept/reject disagreement: Parse=%v Reader=%v", perr, serr)
		}
		if perr != nil {
			return
		}
		if d.Reference != ref {
			t.Fatalf("reference disagreement: %g vs %g", d.Reference, ref)
		}
		if len(d.Samples) != len(streamed) {
			t.Fatalf("sample count disagreement: %d vs %d", len(d.Samples), len(streamed))
		}
		last := math.Inf(-1)
		for i, s := range d.Samples {
			if s.Omega != streamed[i].Omega || !bytes.Equal(complexBits(s.H.Data), complexBits(streamed[i].H.Data)) {
				t.Fatalf("sample %d differs between buffered and streaming paths", i)
			}
			// Invariants: strictly increasing finite frequencies, square
			// finite matrices of the requested size.
			if !(s.Omega > last) || math.IsInf(s.Omega, 0) {
				t.Fatalf("sample %d: frequency %g not strictly increasing/finite", i, s.Omega)
			}
			last = s.Omega
			if s.H.Rows != ports || s.H.Cols != ports {
				t.Fatalf("sample %d: %d×%d matrix for %d ports", i, s.H.Rows, s.H.Cols, ports)
			}
			for _, v := range s.H.Data {
				if math.IsNaN(real(v)) || math.IsNaN(imag(v)) || cmplx.IsInf(v) {
					t.Fatalf("sample %d: non-finite entry %v", i, v)
				}
			}
		}
	})
}

// complexBits views a complex slice as raw bytes for exact comparison.
func complexBits(v []complex128) []byte {
	out := make([]byte, 0, 16*len(v))
	for _, c := range v {
		r, i := math.Float64bits(real(c)), math.Float64bits(imag(c))
		for s := 0; s < 64; s += 8 {
			out = append(out, byte(r>>s), byte(i>>s))
		}
	}
	return out
}

// FuzzReader hammers the streaming reader alone: errors must be positioned
// *ParseErrors within the input's bounds (or io.EOF / the underlying
// error), must be sticky, and the reader must terminate on every input.
func FuzzReader(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte, pb byte) {
		// Identity on 1–6 so every seed parses at its declared port count.
		ports := (int(pb)+5)%6 + 1
		rd, err := NewReader(bytes.NewReader(data), ports)
		if err != nil {
			checkPositioned(t, err, len(data))
			return
		}
		n := 0
		for {
			s, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				checkPositioned(t, err, len(data))
				// Sticky: the identical error again, no further samples.
				if _, err2 := rd.Next(); err2 == nil || err2.Error() != err.Error() {
					t.Fatalf("error not sticky: %v then %v", err, err2)
				}
				return
			}
			n++
			if s.H.Rows != ports || s.H.Cols != ports {
				t.Fatalf("sample %d: wrong shape", n)
			}
		}
		if rd.Samples() != n {
			t.Fatalf("Samples() = %d after %d samples", rd.Samples(), n)
		}
	})
}

func checkPositioned(t *testing.T, err error, inputLen int) {
	t.Helper()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T) is not a *ParseError", err, err)
	}
	if pe.Line < 1 || pe.Byte < 0 || pe.Byte > int64(inputLen) {
		t.Fatalf("error position out of bounds: line %d byte %d (input %d bytes): %v",
			pe.Line, pe.Byte, inputLen, err)
	}
}
