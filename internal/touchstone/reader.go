package touchstone

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"strconv"
	"strings"

	"repro/internal/mat"
	"repro/internal/vectfit"
)

// ParseError is the error type of the streaming reader: every syntax or
// validation failure carries the 1-based line and 0-based byte offset of
// the offending input so multi-GB sweeps can be debugged without bisecting
// the file.
type ParseError struct {
	Line int   // 1-based line of the offending token (or current position)
	Byte int64 // 0-based byte offset into the stream
	Msg  string
}

// Error formats the failure with its 1-based line and 0-based byte offset.
func (e *ParseError) Error() string {
	return fmt.Sprintf("touchstone: line %d (byte %d): %s", e.Line, e.Byte, e.Msg)
}

// Reader parses a Touchstone stream one sample at a time with O(ports²)
// working memory: the tokenizer runs byte-by-byte (logical rows may be
// arbitrarily long — no line-length cap), the option line / monotone
// frequency / value-count invariants are checked incrementally, and every
// error is a *ParseError with line+byte offsets.
//
// The option line is consumed eagerly by NewReader, so Format, Scale and
// Reference are available before the first sample. Next returns io.EOF at
// a clean end of stream; any other error is sticky.
type Reader struct {
	br        *bufio.Reader
	ports     int
	perSample int // values per sample: 1 freq + 2·ports² pair entries

	format    Format
	scale     float64 // raw frequency → rad/s
	reference float64

	line        int   // 1-based line of the next unread byte
	off         int64 // 0-based byte offset of the next unread byte
	atLineStart bool  // only whitespace seen on the current line

	vals       []float64 // accumulated values of the current sample
	tok        []byte    // token scratch, reused across calls
	tokLine    int       // position of the current token's first byte
	tokByte    int64
	sampleLine int // position of the current sample's frequency token
	sampleByte int64

	n        int // samples emitted so far
	lastFreq float64
	err      error // sticky
}

// NewReader wraps r for streaming Touchstone parsing with the given port
// count (conventionally encoded in the .sNp file extension). It reads and
// validates the header — comments and the # option line — before
// returning, so data before the option line is rejected here.
func NewReader(r io.Reader, ports int) (*Reader, error) {
	if ports < 1 {
		return nil, errors.New("touchstone: ports must be ≥ 1")
	}
	rd := &Reader{
		br:          bufio.NewReaderSize(r, 1<<16),
		ports:       ports,
		perSample:   1 + 2*ports*ports,
		format:      MA, // Touchstone defaults
		scale:       unitScale["GHZ"],
		reference:   50,
		line:        1,
		atLineStart: true,
	}
	rd.vals = make([]float64, 0, rd.perSample)
	if err := rd.readHeader(); err != nil {
		rd.err = err
		return nil, err
	}
	return rd, nil
}

// Ports returns the port count the reader was built with.
func (r *Reader) Ports() int { return r.ports }

// Format returns the column encoding declared by the option line.
func (r *Reader) Format() Format { return r.format }

// Reference returns the reference impedance in ohms (option-line R token,
// default 50).
func (r *Reader) Reference() float64 { return r.reference }

// Samples returns the number of samples emitted so far.
func (r *Reader) Samples() int { return r.n }

// pe builds a ParseError at the current stream position.
func (r *Reader) pe(format string, args ...any) error {
	return r.peAt(r.line, r.off, format, args...)
}

// peAt builds a ParseError at an explicit position.
func (r *Reader) peAt(line int, off int64, format string, args ...any) error {
	return &ParseError{Line: line, Byte: off, Msg: fmt.Sprintf(format, args...)}
}

// readByte consumes one byte, tracking the byte offset. Line accounting is
// done by the callers that interpret '\n'.
func (r *Reader) readByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

// skipComment consumes a '!' comment through its terminating newline (or
// EOF), updating line accounting.
func (r *Reader) skipComment() error {
	for {
		b, err := r.readByte()
		if err != nil {
			return err // io.EOF included
		}
		if b == '\n' {
			r.line++
			r.atLineStart = true
			return nil
		}
	}
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\v' || b == '\f'
}

// readHeader skips leading whitespace and comments, then parses the #
// option line. Data encountered first is an error: guessing the GHz/MA
// defaults for headerless data would silently misscale every frequency of
// an Hz/RI file.
func (r *Reader) readHeader() error {
	for {
		b, err := r.readByte()
		if err == io.EOF {
			return r.pe("missing # option line")
		}
		if err != nil {
			return err
		}
		switch {
		case b == '\n':
			r.line++
			r.atLineStart = true
		case isSpace(b):
			// keep scanning
		case b == '!':
			if err := r.skipComment(); err != nil && err != io.EOF {
				return err
			}
		case b == '#':
			return r.parseOptionLine()
		default:
			return r.peAt(r.line, r.off-1, "data before the # option line")
		}
	}
}

// parseOptionLine tokenizes the remainder of the option line in place
// (token-at-a-time — a pathological multi-GB option line costs O(1)
// memory) and applies each token to the reader's format/scale/reference
// state.
func (r *Reader) parseOptionLine() error {
	wantR := false // previous token was "R": next token is the impedance
	tok := r.tok[:0]
	flush := func() error {
		if len(tok) == 0 {
			return nil
		}
		s := strings.ToUpper(string(tok))
		tok = tok[:0]
		if wantR {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return r.pe("bad reference impedance %q", s)
			}
			r.reference = v
			wantR = false
			return nil
		}
		switch s {
		case "HZ", "KHZ", "MHZ", "GHZ":
			r.scale = unitScale[s]
		case "S":
			// scattering — accepted
		case "Y", "Z", "H", "G":
			return r.pe("%s-parameters not supported (scattering only)", s)
		case "RI":
			r.format = RI
		case "MA":
			r.format = MA
		case "DB":
			r.format = DB
		case "R":
			wantR = true
		default:
			return r.pe("unknown option token %q", s)
		}
		return nil
	}
	end := func() error {
		if err := flush(); err != nil {
			return err
		}
		if wantR {
			return r.pe("R without impedance value")
		}
		return nil
	}
	for {
		b, err := r.readByte()
		if err == io.EOF {
			return end()
		}
		if err != nil {
			return err
		}
		switch {
		case b == '\n':
			r.line++
			r.atLineStart = true
			return end()
		case isSpace(b):
			if err := flush(); err != nil {
				return err
			}
		case b == '!':
			if err := flush(); err != nil {
				return err
			}
			if cerr := r.skipComment(); cerr != nil && cerr != io.EOF {
				return cerr
			}
			return end()
		default:
			tok = append(tok, b)
		}
	}
}

// readToken returns the next data token, handling whitespace, newlines and
// comments. A second option line is rejected here. Returns io.EOF at a
// clean end of stream. The returned slice aliases the reader's scratch and
// is only valid until the next call.
func (r *Reader) readToken() ([]byte, error) {
	r.tok = r.tok[:0]
	for {
		b, err := r.readByte()
		if err == io.EOF {
			if len(r.tok) > 0 {
				return r.tok, nil
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		switch {
		case b == '\n':
			r.line++
			r.atLineStart = true
			if len(r.tok) > 0 {
				return r.tok, nil
			}
		case isSpace(b):
			if len(r.tok) > 0 {
				return r.tok, nil
			}
		case b == '!':
			if cerr := r.skipComment(); cerr != nil && cerr != io.EOF {
				return nil, cerr
			}
			if len(r.tok) > 0 {
				return r.tok, nil
			}
		case b == '#' && r.atLineStart && len(r.tok) == 0:
			return nil, r.peAt(r.line, r.off-1, "multiple option lines")
		default:
			if len(r.tok) == 0 {
				r.tokLine, r.tokByte = r.line, r.off-1
			}
			r.atLineStart = false
			r.tok = append(r.tok, b)
		}
	}
}

// Next returns the next sample, converted to rad/s and the complex matrix
// form used throughout the library (including the 2-port column-major
// quirk). It returns io.EOF at a clean end of stream; any other error is
// sticky and carries line+byte offsets.
func (r *Reader) Next() (vectfit.Sample, error) {
	if r.err != nil {
		return vectfit.Sample{}, r.err
	}
	for len(r.vals) < r.perSample {
		tok, err := r.readToken()
		if err == io.EOF {
			if len(r.vals) != 0 {
				r.err = r.peAt(r.sampleLine, r.sampleByte,
					"truncated sample %d: got %d of %d values (1 freq + %d pairs)",
					r.n, len(r.vals), r.perSample, r.ports*r.ports)
				return vectfit.Sample{}, r.err
			}
			r.err = io.EOF
			return vectfit.Sample{}, io.EOF
		}
		if err != nil {
			r.err = err
			return vectfit.Sample{}, err
		}
		v, perr := strconv.ParseFloat(string(tok), 64)
		if perr != nil {
			r.err = r.peAt(r.tokLine, r.tokByte, "bad number %q", tok)
			return vectfit.Sample{}, r.err
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			r.err = r.peAt(r.tokLine, r.tokByte, "non-finite value %q", tok)
			return vectfit.Sample{}, r.err
		}
		if len(r.vals) == 0 {
			r.sampleLine, r.sampleByte = r.tokLine, r.tokByte
		}
		r.vals = append(r.vals, v)
	}
	freq := r.vals[0] * r.scale
	// The raw token is finite (checked above), but a large value can still
	// overflow once the Hz/kHz/MHz/GHz unit scale is applied.
	if math.IsInf(freq, 0) {
		r.err = r.peAt(r.sampleLine, r.sampleByte,
			"sample %d: frequency overflows after unit scaling", r.n)
		return vectfit.Sample{}, r.err
	}
	if r.n > 0 && freq <= r.lastFreq {
		r.err = r.peAt(r.sampleLine, r.sampleByte,
			"frequencies not strictly increasing at sample %d", r.n)
		return vectfit.Sample{}, r.err
	}
	ports := r.ports
	h := mat.NewCDense(ports, ports)
	for k := 0; k < ports*ports; k++ {
		a, b := r.vals[1+2*k], r.vals[2+2*k]
		var v complex128
		switch r.format {
		case RI:
			v = complex(a, b)
		case MA:
			v = cmplx.Rect(a, b*math.Pi/180)
		case DB:
			v = cmplx.Rect(math.Pow(10, a/20), b*math.Pi/180)
		}
		// Touchstone order: row-major S11 S12 … except 2-port files, which
		// historically store S11 S21 S12 S22 (column-major).
		i, j := k/ports, k%ports
		if ports == 2 {
			i, j = k%ports, k/ports
		}
		// Finite tokens can still decode to Inf (e.g. 7000 dB overflows
		// 10^(a/20)); downstream consumers require finite matrices.
		if math.IsNaN(real(v)) || math.IsNaN(imag(v)) || cmplx.IsInf(v) {
			r.err = r.peAt(r.sampleLine, r.sampleByte,
				"sample %d entry (%d,%d) decodes to the non-finite value %v", r.n, i, j, v)
			return vectfit.Sample{}, r.err
		}
		h.Set(i, j, v)
	}
	r.lastFreq = freq
	r.n++
	r.vals = r.vals[:0]
	return vectfit.Sample{Omega: freq, H: h}, nil
}

// Each streams every remaining sample through fn, stopping at the first
// parse error or the first error returned by fn (returned as-is). A clean
// end of stream returns nil. Combined with vectfit.Fitter.Add this
// overlaps file I/O with fit-system accumulation:
//
//	rd, _ := touchstone.NewReader(f, ports)
//	ft := vectfit.NewFitter(order, opts)
//	if err := rd.Each(ft.Add); err != nil { ... }
//	fit, err := ft.Finish()
func (r *Reader) Each(fn func(vectfit.Sample) error) error {
	for {
		s, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(s); err != nil {
			return err
		}
	}
}
