package touchstone

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/vectfit"
)

func collect(t *testing.T, src string, ports int) ([]vectfit.Sample, *Reader) {
	t.Helper()
	rd, err := NewReader(strings.NewReader(src), ports)
	if err != nil {
		t.Fatal(err)
	}
	var out []vectfit.Sample
	if err := rd.Each(func(s vectfit.Sample) error { out = append(out, s); return nil }); err != nil {
		t.Fatal(err)
	}
	return out, rd
}

func TestReaderBasic(t *testing.T) {
	src := "! hdr\n# MHz S RI R 75\n100 0.5 0.1\n200 0.4 -0.2\n"
	samples, rd := collect(t, src, 1)
	if len(samples) != 2 || rd.Samples() != 2 {
		t.Fatalf("%d samples", len(samples))
	}
	if rd.Format() != RI || rd.Reference() != 75 || rd.Ports() != 1 {
		t.Fatalf("header state: %v %g %d", rd.Format(), rd.Reference(), rd.Ports())
	}
	wantW := 2 * math.Pi * 100e6
	if math.Abs(samples[0].Omega-wantW) > 1e-3 {
		t.Fatalf("omega %g want %g", samples[0].Omega, wantW)
	}
	if samples[0].H.At(0, 0) != complex(0.5, 0.1) {
		t.Fatalf("S11 %v", samples[0].H.At(0, 0))
	}
}

// positioned asserts that parsing src fails with a *ParseError at the given
// line carrying a plausible byte offset and the msg substring.
func positioned(t *testing.T, src string, ports, wantLine int, wantByte int64, msgPart string) {
	t.Helper()
	rd, err := NewReader(strings.NewReader(src), ports)
	if err == nil {
		err = rd.Each(func(vectfit.Sample) error { return nil })
	}
	if err == nil {
		t.Fatalf("expected error for %q", src)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("%q: error %v is not a *ParseError", src, err)
	}
	if pe.Line != wantLine {
		t.Fatalf("%q: error at line %d, want %d (%v)", src, pe.Line, wantLine, err)
	}
	if wantByte >= 0 && pe.Byte != wantByte {
		t.Fatalf("%q: error at byte %d, want %d (%v)", src, pe.Byte, wantByte, err)
	}
	if !strings.Contains(pe.Msg, msgPart) {
		t.Fatalf("%q: error %q does not mention %q", src, pe.Msg, msgPart)
	}
}

func TestReaderErrorOffsets(t *testing.T) {
	opt := "# GHz S RI R 50\n" // 16 bytes, line 1
	// Bad token on line 3; its byte offset is len(opt) + len("1 0.5 0.25\n") + 2.
	positioned(t, opt+"1 0.5 0.25\n2 bad 0.5\n", 1, 3, int64(len(opt))+13, `bad number "bad"`)
	// Non-monotone frequency: reported at the offending sample's freq token.
	positioned(t, opt+"2 0.5 0.1\n1 0.4 0.2\n", 1, 3, int64(len(opt))+10, "not strictly increasing")
	// Truncated trailing sample: positioned at the sample's first token.
	positioned(t, opt+"1 0.5 0.1\n2 0.5\n", 1, 3, int64(len(opt))+10, "truncated sample 1")
	// Second option line.
	positioned(t, opt+"# GHz S RI\n1 0.5 0.1\n", 1, 2, int64(len(opt)), "multiple option lines")
	// Non-finite value.
	positioned(t, opt+"1 NaN 0.1\n", 1, 2, int64(len(opt))+2, "non-finite")
	// A finite frequency token that overflows once the unit scale is
	// applied: positioned at the sample's frequency token.
	positioned(t, opt+"1e308 0.5 0.1\n", 1, 2, int64(len(opt)), "overflows after unit scaling")
	// Header problems are positioned too (the offending byte itself).
	positioned(t, "1 0.5 0.1\n", 1, 1, 0, "data before the # option line")
	positioned(t, "# GHz S RI R\n1 0.5 0.1\n", 1, 2, -1, "R without impedance value")
	positioned(t, "! only comments\n", 1, 2, -1, "missing # option line")
}

func TestReaderStickyError(t *testing.T) {
	rd, err := NewReader(strings.NewReader("# GHz S RI\n1 bad 0\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err1 := rd.Next()
	_, err2 := rd.Next()
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("error not sticky: %v vs %v", err1, err2)
	}
}

func TestReaderEOFAfterDone(t *testing.T) {
	rd, err := NewReader(strings.NewReader("# GHz S RI\n1 0.5 0.1\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rd.Next(); err != io.EOF {
			t.Fatalf("want io.EOF, got %v", err)
		}
	}
}

func TestReaderEachCallbackError(t *testing.T) {
	rd, err := NewReader(strings.NewReader("# GHz S RI\n1 0.5 0.1\n2 0.5 0.1\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	n := 0
	if got := rd.Each(func(vectfit.Sample) error { n++; return sentinel }); got != sentinel {
		t.Fatalf("Each returned %v, want sentinel", got)
	}
	if n != 1 {
		t.Fatalf("callback ran %d times", n)
	}
}

func TestReaderOptionLineVariants(t *testing.T) {
	// Comment on the option line, no space after '#', lowercase tokens,
	// CRLF endings, samples split across physical lines.
	src := "!hdr\r\n#mhz s ri r 75 ! trailing comment\r\n100 0.5 0.1\r\n200\r\n0.4 -0.2\r\n"
	samples, rd := collect(t, src, 1)
	if len(samples) != 2 || rd.Reference() != 75 || rd.Format() != RI {
		t.Fatalf("variant parse: %d samples ref %g fmt %v", len(samples), rd.Reference(), rd.Format())
	}
	if samples[1].H.At(0, 0) != complex(0.4, -0.2) {
		t.Fatalf("wrapped sample: %v", samples[1].H.At(0, 0))
	}
}

// TestParseUnboundedLogicalLine is the regression test for the old
// bufio.Scanner 1 MiB line cap: Parse used to fail with "token too long"
// on wide n-port rows emitted as one physical line. The streaming
// tokenizer has no line-length limit.
func TestParseUnboundedLogicalLine(t *testing.T) {
	const ports = 180 // 1 + 2·180² = 64801 values on one line
	var b strings.Builder
	b.WriteString("# GHz S RI R 50\n1")
	for k := 0; k < ports*ports; k++ {
		// Padded fixed-width pairs push the single data line past 1 MiB.
		fmt.Fprintf(&b, "%20d%20d", k+1, 0)
	}
	b.WriteString("\n")
	if b.Len() < 1<<20 {
		t.Fatalf("regression input only %d bytes — below the old 1 MiB cap", b.Len())
	}
	d, err := Parse(strings.NewReader(b.String()), ports)
	if err != nil {
		t.Fatalf("wide single-line row: %v", err)
	}
	if len(d.Samples) != 1 {
		t.Fatalf("%d samples", len(d.Samples))
	}
	h := d.Samples[0].H
	// Row-major mapping for n≥3 ports: entry (i,j) carries value i·p+j+1.
	for _, ij := range [][2]int{{0, 0}, {0, 179}, {97, 42}, {179, 179}} {
		want := complex(float64(ij[0]*ports+ij[1]+1), 0)
		if h.At(ij[0], ij[1]) != want {
			t.Fatalf("entry %v = %v, want %v", ij, h.At(ij[0], ij[1]), want)
		}
	}
}

// synthSNP procedurally generates a 2-port RI Touchstone stream of n
// samples without materializing it, so memory tests see only the Reader's
// own allocations.
type synthSNP struct {
	n, i    int
	buf     []byte
	scratch []byte
}

func newSynthSNP(n int) *synthSNP {
	s := &synthSNP{n: n, scratch: make([]byte, 0, 128)}
	s.buf = []byte("# GHz S RI R 50\n")
	return s
}

func (s *synthSNP) Read(p []byte) (int, error) {
	for len(s.buf) == 0 {
		if s.i >= s.n {
			return 0, io.EOF
		}
		b := s.scratch[:0]
		b = strconv.AppendInt(b, int64(s.i+1), 10)
		b = append(b, " 0.1 0.2 0.3 0.4 0.5 0.6 0.7 0.8\n"...)
		s.scratch = b
		s.buf = b
		s.i++
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

// TestReaderBoundedMemory asserts the acceptance criterion: streaming a
// ≥100k-sample .snp file leaves the live heap where it started — peak
// working memory is O(ports²), independent of sample count.
func TestReaderBoundedMemory(t *testing.T) {
	const n = 120_000
	rd, err := NewReader(newSynthSNP(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	count := 0
	for {
		s, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.H.Rows != 2 {
			t.Fatal("bad sample")
		}
		count++
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if count != n {
		t.Fatalf("parsed %d of %d samples", count, n)
	}
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > 1<<20 {
		t.Fatalf("live heap grew %d bytes across a %d-sample stream — working memory is not bounded", growth, n)
	}
}

// TestReaderNextAllocsConstant pins the per-sample allocation count: it
// must not depend on how much of the stream has already been consumed.
func TestReaderNextAllocsConstant(t *testing.T) {
	perNext := func(warmup int) float64 {
		rd, err := NewReader(newSynthSNP(warmup+300), 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < warmup; i++ {
			if _, err := rd.Next(); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := rd.Next(); err != nil {
				t.Fatal(err)
			}
		})
	}
	early, late := perNext(10), perNext(50_000)
	// 2-port sample: 9 number tokens + one p×p matrix → well under 20.
	if early > 20 || late > 20 {
		t.Fatalf("allocs per Next: early %.1f late %.1f — want < 20", early, late)
	}
	if math.Abs(early-late) > 2 {
		t.Fatalf("allocs per Next drift with stream position: early %.1f late %.1f", early, late)
	}
}

func TestParseReaderAgreeOnFixtures(t *testing.T) {
	// Buffered and streaming paths must agree sample-for-sample, bitwise.
	for _, ports := range []int{1, 2, 3, 4} {
		for _, f := range []Format{RI, MA, DB} {
			in := sampleSet(t, ports)
			var buf bytes.Buffer
			if err := Write(&buf, in, f, 50); err != nil {
				t.Fatal(err)
			}
			d, err := Parse(bytes.NewReader(buf.Bytes()), ports)
			if err != nil {
				t.Fatal(err)
			}
			streamed, _ := collect(t, buf.String(), ports)
			if len(streamed) != len(d.Samples) {
				t.Fatalf("p=%d %v: %d streamed vs %d parsed", ports, f, len(streamed), len(d.Samples))
			}
			for i := range streamed {
				if streamed[i].Omega != d.Samples[i].Omega {
					t.Fatalf("p=%d %v sample %d: omega mismatch", ports, f, i)
				}
				for e := range streamed[i].H.Data {
					if streamed[i].H.Data[e] != d.Samples[i].H.Data[e] {
						t.Fatalf("p=%d %v sample %d entry %d mismatch", ports, f, i, e)
					}
				}
			}
		}
	}
}
